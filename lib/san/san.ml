exception Violation of string

type finding = { san_code : string; san_message : string }

(* Mode flags live in atomics: the disabled probe is one load and a
   branch, safe to read from any domain, and the test hook [set] can
   flip them without synchronising with in-flight readers. *)
let race_on = Atomic.make false

let fp_on = Atomic.make false

let race () = Atomic.get race_on

let fp () = Atomic.get fp_on

let enabled () = race () || fp ()

let set ?race ?fp () =
  (match race with Some v -> Atomic.set race_on v | None -> ());
  match fp with Some v -> Atomic.set fp_on v | None -> ()

(* fp findings: appended under a mutex (cold path — a finding means
   the run is already broken), read the same way. *)
let findings_mutex = Mutex.create ()

let recorded : finding list ref = ref []

let max_findings = 100

let record ~code msg =
  if Obs.tracing () then Obs.instant ~args:[ ("msg", Obs.Str msg) ] ("san." ^ code);
  Obs.count ("san." ^ code) 1;
  Mutex.lock findings_mutex;
  if List.length !recorded < max_findings then
    recorded := !recorded @ [ { san_code = code; san_message = msg } ];
  Mutex.unlock findings_mutex

let findings () =
  Mutex.lock findings_mutex;
  let fs = !recorded in
  Mutex.unlock findings_mutex;
  fs

let clear_findings () =
  Mutex.lock findings_mutex;
  recorded := [];
  Mutex.unlock findings_mutex

let () =
  match Sys.getenv_opt "SYMOR_SAN" with
  | None -> ()
  | Some s ->
    List.iter
      (fun tok ->
        match String.trim tok with
        | "" -> ()
        | "race" -> Atomic.set race_on true
        | "fp" -> Atomic.set fp_on true
        | tok ->
          record ~code:"SAN001"
            (Printf.sprintf "unknown SYMOR_SAN mode %S (known: race, fp)" tok))
      (String.split_on_char ',' s)

module Race = struct
  type batch = { slots : int Atomic.t array }

  (* kernel-level write registry: (tag, slot) -> writer domain. Only
     touched in race mode, always under the mutex — correctness of the
     checker itself must not depend on the property it is checking. *)
  let writes_mutex = Mutex.create ()

  let writes : (string * int, int) Hashtbl.t = Hashtbl.create 64

  (* > 0 while a checked batch is open, so [note_write] can be called
     unconditionally from kernels that also run outside the pool *)
  let active = Atomic.make 0

  let self () = (Domain.self () :> int)

  let batch_begin ~n =
    Mutex.lock writes_mutex;
    Hashtbl.reset writes;
    Mutex.unlock writes_mutex;
    Atomic.incr active;
    { slots = Array.init n (fun _ -> Atomic.make (-1)) }

  let claim b i =
    let me = self () in
    if not (Atomic.compare_and_set b.slots.(i) (-1) me) then
      raise
        (Violation
           (Printf.sprintf
              "SAN201: overlapping writers for batch slot %d (domain %d vs %d)" i
              (Atomic.get b.slots.(i)) me))

  let close b =
    ignore b;
    Atomic.decr active;
    Mutex.lock writes_mutex;
    Hashtbl.reset writes;
    Mutex.unlock writes_mutex

  let batch_end b =
    let n = Array.length b.slots in
    let unclaimed = ref (-1) in
    for i = n - 1 downto 0 do
      if Atomic.get b.slots.(i) < 0 then unclaimed := i
    done;
    close b;
    if !unclaimed >= 0 then
      raise
        (Violation
           (Printf.sprintf
              "SAN202: batch slot %d of %d was never written (read of unwritten slot)"
              !unclaimed n))

  let batch_abort b = close b

  let note_write ~tag i =
    if Atomic.get active > 0 then begin
      let me = self () in
      Mutex.lock writes_mutex;
      let prev = Hashtbl.find_opt writes (tag, i) in
      (match prev with None -> Hashtbl.add writes (tag, i) me | Some _ -> ());
      Mutex.unlock writes_mutex;
      match prev with
      | None -> ()
      | Some d ->
        raise
          (Violation
             (Printf.sprintf
                "SAN203: output slot %s[%d] written twice (domain %d, then %d)" tag i d
                me))
    end

  let default_seed = 0x53414e (* "SAN" *)

  let schedule_seed () =
    match Sys.getenv_opt "SYMOR_SAN_SEED" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> default_seed)
    | None -> default_seed

  (* splitmix64 step — self-contained so the sanitizer never touches
     the ambient Random state (SRC002) *)
  let mix state =
    let z = Int64.add !state 0x9E3779B97F4A7C15L in
    state := z;
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let permute ~seed n =
    let p = Array.init n (fun i -> i) in
    let st = ref (Int64.of_int seed) in
    for i = n - 1 downto 1 do
      let r = Int64.to_int (Int64.rem (mix st) (Int64.of_int (i + 1))) in
      let j = if r < 0 then r + i + 1 else r in
      let t = p.(i) in
      p.(i) <- p.(j);
      p.(j) <- t
    done;
    p
end

module Fp = struct
  let check ~name x =
    if not (Float.is_finite x) then
      record ~code:"SAN101" (Printf.sprintf "%s: non-finite value %h" name x)

  let check_array ~name a =
    let bad = ref (-1) in
    for i = Array.length a - 1 downto 0 do
      if not (Float.is_finite a.(i)) then bad := i
    done;
    if !bad >= 0 then
      record ~code:"SAN101"
        (Printf.sprintf "%s: non-finite value %h at index %d" name a.(!bad) !bad)

  let growth_limit = 1e10

  let growth ~name ~scale ~lmax ~dmax =
    if not (Float.is_finite lmax && Float.is_finite dmax && Float.is_finite scale) then
      record ~code:"SAN101"
        (Printf.sprintf "%s: non-finite factor (|L|max %h, |D|max %h, scale %h)" name
           lmax dmax scale)
    else begin
      let ratio = Float.max lmax (dmax /. Float.max scale 1e-300) in
      if ratio > growth_limit then
        record ~code:"SAN102"
          (Printf.sprintf
             "%s: element growth %.3e exceeds %.0e (|L|max %.3e, |D|max %.3e, input \
              scale %.3e) — the factorisation is numerically unreliable"
             name ratio growth_limit lmax dmax scale)
    end
end
