(** Runtime sanitizers for the domain-parallel kernels.

    Two independent checked modes, selected by the [SYMOR_SAN]
    environment variable (comma-separated, e.g. [SYMOR_SAN=race,fp])
    or programmatically via {!set}:

    {ul
    {- [race] — the {e checked pool}: every pooled batch registers a
       per-slot ownership map, loop bodies claim their slot before
       running, kernels note their output-slot writes, and the batch
       join verifies full coverage. Overlapping writers, writes to a
       slot owned by another domain, and unwritten slots all raise
       {!Violation}. The pool additionally perturbs the chunk claim
       order with a seeded permutation ([SYMOR_SAN_SEED]), so
       schedule-dependent bugs surface under adversarial interleavings
       while results must stay bitwise identical.}
    {- [fp] — the floating-point sanitizer: factorisation and solve
       kernels ([Sparse.Skyline], [Sympvl.Factor]'s skyline backend,
       the split-complex AC kernel) scan their outputs for NaN/Inf and
       monitor element growth. Violations are {e recorded} as
       {!findings} (and as [Obs] instants when tracing), never raised
       — a golden run under [SYMOR_SAN=fp] fails only if the harness
       checks {!findings} and finds any.}}

    {b Cost model.} With both modes off every probe is a single
    [Atomic.get] load and a branch — no allocation (gated by a unit
    test, the same idiom as the [Obs] disabled-probe gate) — and no
    checked code path is taken, so results are bitwise identical to a
    build without the sanitizer. With [race] on, the chunk schedule is
    perturbed but slot→index assignment is not, so pooled results
    remain bitwise identical to sequential runs; [fp] only reads
    kernel outputs. *)

exception Violation of string
(** A race-checker violation (codes SAN201–SAN203 in the message).
    Raised in the offending domain; the pool re-raises it in the
    caller after the batch has drained. *)

val race : unit -> bool
(** Whether the checked-pool race mode is on. *)

val fp : unit -> bool
(** Whether the floating-point sanitizer is on. *)

val enabled : unit -> bool
(** [race () || fp ()]. *)

val set : ?race:bool -> ?fp:bool -> unit -> unit
(** Override the [SYMOR_SAN] environment parse (test hook). Omitted
    flags are left unchanged. *)

type finding = {
  san_code : string;  (** Stable code, e.g. ["SAN101"]. *)
  san_message : string;
}

val findings : unit -> finding list
(** Recorded fp-sanitizer findings, oldest first (capped at 100). *)

val clear_findings : unit -> unit

(** Checked-pool primitives. [Parallel.Pool] drives the batch
    life-cycle; kernels only call {!Race.note_write}. *)
module Race : sig
  type batch
  (** Ownership map of one pooled batch: one slot per loop index. *)

  val batch_begin : n:int -> batch
  (** Open a checked batch of [n] slots and clear the kernel
      write registry. *)

  val claim : batch -> int -> unit
  (** [claim b i] marks slot [i] as owned by the calling domain.
      @raise Violation if the slot is already claimed (SAN201:
      overlapping writer — the same index ran twice). *)

  val batch_end : batch -> unit
  (** Verify every slot was claimed exactly once.
      @raise Violation on an unclaimed slot (SAN202: an output slot
      would be read without ever having been written). *)

  val batch_abort : batch -> unit
  (** Drop the batch without the coverage check (the batch died on an
      unrelated exception). *)

  val note_write : tag:string -> int -> unit
  (** [note_write ~tag i] records that the calling kernel wrote output
      slot [i] of the array identified by [tag] (e.g. ["ac.point"]).
      No-op outside an active checked batch, so sequential paths can
      call it unconditionally under a [race ()] guard.
      @raise Violation if the slot was already written this batch
      (SAN203: two writers for one output slot). *)

  val schedule_seed : unit -> int
  (** The adversarial-schedule seed: [SYMOR_SAN_SEED] if set to an
      integer, otherwise a fixed default. *)

  val permute : seed:int -> int -> int array
  (** [permute ~seed n] is a deterministic pseudo-random permutation
      of [0 .. n-1] (splitmix-style, independent of [Stdlib.Random]) —
      the chunk claim order of a perturbed batch. *)
end

(** Floating-point sanitizer probes. All are no-ops unless {!fp}. *)
module Fp : sig
  val check : name:string -> float -> unit
  (** Record SAN101 if the value is NaN or infinite. *)

  val check_array : name:string -> float array -> unit
  (** Record SAN101 (once) if any element is NaN or infinite. *)

  val growth_limit : float
  (** Element-growth ratio above which SAN102 is recorded ([1e10]). *)

  val growth : name:string -> scale:float -> lmax:float -> dmax:float -> unit
  (** [growth ~name ~scale ~lmax ~dmax] monitors a factorisation:
      [scale] is the input magnitude (max |A| diagonal), [lmax] the
      largest off-diagonal |L|, [dmax] the largest |D|. Records SAN102
      when [max lmax (dmax / scale)] exceeds {!growth_limit}, SAN101
      when any of them is non-finite. *)
end
