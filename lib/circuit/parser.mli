(** SPICE-like netlist parser.

    Supported grammar (case-insensitive element letters, [*] and [;]
    comments, blank lines ignored):

    {v
    Rname n1 n2 value        resistor
    Cname n1 n2 value        capacitor
    Lname n1 n2 value        inductor
    Kname L1 L2 k            mutual coupling
    Iname n1 n2 DC v         current source (also PWL(t v ...),
                             PULSE(lo hi del tr tf w per),
                             SIN(off ampl freq [delay]))
    Vname n1 n2 <source>     voltage source (same source grammar)
    Gname op on ip in gm     VCCS
    .subckt NAME pin ...     subcircuit definition (until .ends);
                             local nodes are private per instance
    Xname n1 ... NAME        subcircuit instantiation (pins bound in
                             definition order); nested instantiation
                             is supported up to depth 20
    .port name node [node]   port declaration (default minus = 0)
    .end                     optional terminator
    v}

    Values accept engineering suffixes [f p n u m k meg g t] (e.g.
    [2.5n], [1MEG], [10k]). *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val value : string -> float
(** Parse a single engineering-notation value. Raises [Failure]. *)

val parse_string : string -> Netlist.t

val parse_file : string -> Netlist.t

val to_string : ?precision:int -> Netlist.t -> string
(** Render a linear netlist back to the textual format (sources are
    rendered via {!Waveform.pp}; VCCS uses a [G] card; nonlinear
    elements are not representable and raise [Invalid_argument]).
    [precision] is the [%g] significant-digit count for element
    values (default 9, enough for hand-authored netlists). Synthesised
    netlists should pass 17: their element values are derived
    quantities — e.g. the near-cancelling susceptance branches of
    [Synth.Rlck] — whose quantisation error is amplified through
    reassembly, so round-trip fidelity needs the full double. *)
