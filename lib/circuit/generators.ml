let rc_line ?(r_per_section = 1.0) ?(c_per_section = 1e-12) ?(output_port = true)
    ~sections () =
  assert (sections >= 1);
  let nl = Netlist.create () in
  let node_at i = Netlist.node nl (Printf.sprintf "n%d" i) in
  let input = node_at 0 in
  for i = 0 to sections - 1 do
    let a = node_at i and b = node_at (i + 1) in
    Netlist.add_resistor nl a b r_per_section;
    Netlist.add_capacitor nl b 0 c_per_section
  done;
  Netlist.add_port nl "in" input;
  if output_port then Netlist.add_port nl "out" (node_at sections);
  nl

let rc_tree ?(r_per_segment = 1.0) ?(c_per_segment = 0.5e-12) ~depth () =
  assert (depth >= 1);
  let nl = Netlist.create () in
  let root = Netlist.node nl "root" in
  (* nodes labelled by their path from the root; heap-style indices *)
  let rec build parent level path =
    if level < depth then begin
      List.iter
        (fun dir ->
          let child = Netlist.node nl (Printf.sprintf "t%s%s" path dir) in
          Netlist.add_resistor nl parent child r_per_segment;
          Netlist.add_capacitor nl child 0 c_per_segment;
          build child (level + 1) (path ^ dir))
        [ "0"; "1" ]
    end
  in
  Netlist.add_capacitor nl root 0 c_per_segment;
  build root 0 "";
  Netlist.add_port nl "root" root;
  let leftmost = Netlist.node nl ("t" ^ String.concat "" (List.init depth (fun _ -> "0"))) in
  Netlist.add_port nl "leaf" leftmost;
  nl

let coupled_rc_bus ?(r_per_section = 10.0) ?(c_ground = 5e-15) ?(c_coupling = 25e-15)
    ?(coupling_span = 1) ?terminate ~wires ~sections () =
  assert (wires >= 1 && sections >= 1);
  let nl = Netlist.create () in
  let node_at w s = Netlist.node nl (Printf.sprintf "w%ds%d" w s) in
  for w = 0 to wires - 1 do
    for s = 0 to sections - 1 do
      let b = node_at w (s + 1) in
      Netlist.add_resistor nl (node_at w s) b r_per_section;
      Netlist.add_capacitor nl b 0 c_ground
    done;
    Netlist.add_capacitor nl (node_at w 0) 0 c_ground
  done;
  (* dense inter-wire coupling: every wire pair, every section, offsets
     0..coupling_span *)
  for w1 = 0 to wires - 1 do
    for w2 = w1 + 1 to wires - 1 do
      for s = 0 to sections do
        for off = 0 to coupling_span do
          if s + off <= sections then begin
            let scale = 1.0 /. float_of_int (1 + off) in
            Netlist.add_capacitor nl (node_at w1 s) (node_at w2 (s + off))
              (c_coupling *. scale);
            if off > 0 then
              Netlist.add_capacitor nl (node_at w1 (s + off)) (node_at w2 s)
                (c_coupling *. scale)
          end
        done
      done
    done
  done;
  (match terminate with
  | Some r_load ->
    for w = 0 to wires - 1 do
      Netlist.add_resistor nl (node_at w sections) 0 r_load
    done
  | None -> ());
  for w = 0 to wires - 1 do
    Netlist.add_port nl (Printf.sprintf "port%d" w) (node_at w 0)
  done;
  nl

let package_model ?(sections = 10) ?(l_section = 1e-9) ?(c_section = 0.2e-12)
    ?(r_section = 0.05) ?(k_neighbour = 0.35) ?(c_coupling = 0.1e-12) ?(pins = 64)
    ?(signal_pins = 8) () =
  assert (pins >= 1 && signal_pins <= pins && sections >= 1);
  let nl = Netlist.create () in
  let node_at p s = Netlist.node nl (Printf.sprintf "p%dn%d" p s) in
  let l_name p s = Printf.sprintf "Lp%ds%d" p s in
  for p = 0 to pins - 1 do
    for s = 0 to sections - 1 do
      (* series R then L per section *)
      let a = node_at p (2 * s) in
      let mid = node_at p ((2 * s) + 1) in
      let b = node_at p ((2 * s) + 2) in
      Netlist.add_resistor nl a mid r_section;
      Netlist.add_inductor nl ~name:(l_name p s) mid b l_section;
      Netlist.add_capacitor nl b 0 c_section
    done;
    Netlist.add_capacitor nl (node_at p 0) 0 c_section
  done;
  (* neighbour-pin coupling: mutual inductance between matching
     sections, coupling capacitance between matching nodes *)
  for p = 0 to pins - 2 do
    for s = 0 to sections - 1 do
      Netlist.add_mutual nl (l_name p s) (l_name (p + 1) s) k_neighbour;
      Netlist.add_capacitor nl (node_at p ((2 * s) + 2)) (node_at (p + 1) ((2 * s) + 2))
        c_coupling
    done
  done;
  for p = 0 to signal_pins - 1 do
    Netlist.add_port nl (Printf.sprintf "P%dext" (p + 1)) (node_at p 0);
    Netlist.add_port nl (Printf.sprintf "P%dint" (p + 1)) (node_at p (2 * sections))
  done;
  nl

let peec_mesh ?(l_segment = 1e-9) ?(c_node = 1e-12) ?(k0 = 0.12) ?(chord_every = 7)
    ~segments () =
  assert (segments >= 3);
  let nl = Netlist.create () in
  let node_at i = Netlist.node nl (Printf.sprintf "m%d" (i mod segments)) in
  let seg_name i = Printf.sprintf "Ls%d" i in
  for i = 0 to segments - 1 do
    Netlist.add_inductor nl ~name:(seg_name i) (node_at i) (node_at (i + 1)) l_segment;
    Netlist.add_capacitor nl (node_at i) 0 c_node
  done;
  (* stiffening chords make the spectrum less regular (more PEEC-like) *)
  let n_chords = ref 0 in
  if chord_every > 0 then begin
    let i = ref 0 in
    while !i + (segments / 3) < segments do
      Netlist.add_inductor nl
        ~name:(Printf.sprintf "Lc%d" !n_chords)
        (node_at !i)
        (node_at (!i + (segments / 3)))
        (1.7 *. l_segment);
      incr n_chords;
      i := !i + chord_every
    done
  end;
  (* distance-decaying mutual coupling between ring segments *)
  for i = 0 to segments - 1 do
    for j = i + 1 to segments - 1 do
      let d = min (j - i) (segments - (j - i)) in
      if d >= 1 then begin
        let k = k0 /. (float_of_int d ** 1.5) in
        if k > 1e-4 then Netlist.add_mutual nl (seg_name i) (seg_name j) k
      end
    done
  done;
  Netlist.add_port nl "drive" (node_at 1);
  (* output: the current of the segment diametrically opposite the
     drive, as in the paper's "current through one of the inductors" *)
  (nl, seg_name (segments / 2))

let peec_partial ?(r_segment = 0.05) ?(l_segment = 1e-9) ?(c_node = 2e-13)
    ?(k0 = 0.08) ?(k_cross = 0.04) ?(coupling_window = 4) ?(r_term = 25.0) ?ports
    ~conductors ~segments () =
  assert (conductors >= 1 && segments >= 2);
  assert (coupling_window >= 1);
  let nl = Netlist.create () in
  let node_at c s = Netlist.node nl (Printf.sprintf "w%d_%d" c s) in
  let l_name c s = Printf.sprintf "Lp%d_%d" c s in
  for c = 0 to conductors - 1 do
    for s = 0 to segments - 1 do
      let a = node_at c (2 * s) in
      let mid = node_at c ((2 * s) + 1) in
      let b = node_at c ((2 * s) + 2) in
      Netlist.add_resistor nl ~name:(Printf.sprintf "Rp%d_%d" c s) a mid r_segment;
      Netlist.add_inductor nl ~name:(l_name c s) mid b l_segment;
      Netlist.add_capacitor nl ~name:(Printf.sprintf "Cp%d_%d" c s) b 0 c_node
    done;
    (* far-end termination: every node gets a resistive DC path, so the
       general-form G is nonsingular at s0 = 0 (no shift needed) *)
    Netlist.add_resistor nl
      ~name:(Printf.sprintf "Rterm%d" c)
      (node_at c (2 * segments))
      0 r_term
  done;
  (* Windowed partial-inductance coupling, MORCIC-style: every segment
     couples to the next [coupling_window] segments of its own
     conductor with k(d) = k0/d^1.5 and to nearby segments of the
     adjacent conductor with k(o) = k_cross/(1+|o|)^1.5. The defaults
     keep every ℒ row strictly diagonally dominant (coupling row sums
     ≈ 0.47 < 1), so ℒ is positive definite by Gershgorin. Raw
     [Netlist.add] (not [add_mutual]) keeps this O(1) per card — the
     strict wrapper's by-name inductor lookup is a linear scan, which
     is quadratic at the 10⁴–10⁵ cards generated here; validity is by
     construction. *)
  let nk = ref 0 in
  let couple l1 l2 k =
    incr nk;
    Netlist.add nl (Netlist.Mutual { name = Printf.sprintf "Kp%d" !nk; l1; l2; k })
  in
  for c = 0 to conductors - 1 do
    for s = 0 to segments - 1 do
      for d = 1 to min coupling_window (segments - 1 - s) do
        couple (l_name c s) (l_name c (s + d)) (k0 /. (float_of_int d ** 1.5))
      done;
      if c + 1 < conductors then
        for o = -coupling_window to coupling_window do
          let s' = s + o in
          if s' >= 0 && s' < segments then
            couple (l_name c s)
              (l_name (c + 1) s')
              (k_cross /. ((1.0 +. Float.abs (float_of_int o)) ** 1.5))
        done
    done
  done;
  let np = match ports with Some p -> p | None -> min conductors 4 in
  assert (np >= 1 && np <= conductors);
  for c = 0 to np - 1 do
    Netlist.add_port nl (Printf.sprintf "drv%d" (c + 1)) (node_at c 0)
  done;
  nl

let rlc_line ?(r_per_section = 0.1) ?(l_per_section = 1e-9) ?(c_per_section = 1e-12)
    ?r_load ~sections () =
  assert (sections >= 1);
  let nl = Netlist.create () in
  let node_at i = Netlist.node nl (Printf.sprintf "n%d" i) in
  for i = 0 to sections - 1 do
    let a = node_at (2 * i) in
    let mid = node_at ((2 * i) + 1) in
    let b = node_at ((2 * i) + 2) in
    Netlist.add_resistor nl a mid r_per_section;
    Netlist.add_inductor nl mid b l_per_section;
    Netlist.add_capacitor nl b 0 c_per_section
  done;
  (match r_load with
  | Some r -> Netlist.add_resistor nl (node_at (2 * sections)) 0 r
  | None -> ());
  Netlist.add_port nl "in" (node_at 0);
  Netlist.add_port nl "out" (node_at (2 * sections));
  nl

let rl_ladder ?(r_per_section = 1.0) ?(l_per_section = 1e-9) ?(shorted_end = false)
    ~sections () =
  assert (sections >= 1);
  let nl = Netlist.create () in
  let node_at i = Netlist.node nl (Printf.sprintf "n%d" i) in
  for i = 0 to sections - 1 do
    let a = node_at i and b = node_at (i + 1) in
    Netlist.add_inductor nl a b l_per_section;
    Netlist.add_resistor nl b 0 r_per_section
  done;
  (* an inductive short at the far end gives every node an inductive
     DC path to ground: the RL-form G = AˡᵀL⁻¹Aˡ becomes nonsingular
     and the unshifted (certified) expansion applies *)
  if shorted_end then Netlist.add_inductor nl (node_at sections) 0 l_per_section;
  Netlist.add_port nl "in" (node_at 0);
  nl

let rc_grid ?(r_per_edge = 2.0) ?(c_per_node = 10e-15) ?(pitch_pads = 4) ~rows ~cols () =
  assert (rows >= 2 && cols >= 2 && pitch_pads >= 1);
  let nl = Netlist.create () in
  let node_at r c = Netlist.node nl (Printf.sprintf "g%d_%d" r c) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let u = node_at r c in
      Netlist.add_capacitor nl u 0 c_per_node;
      if r + 1 < rows then Netlist.add_resistor nl u (node_at (r + 1) c) r_per_edge;
      if c + 1 < cols then Netlist.add_resistor nl u (node_at r (c + 1)) r_per_edge
    done
  done;
  Netlist.add_resistor nl (node_at 0 0) 0 r_per_edge;
  (* pads along the top and bottom boundary rows *)
  let pad = ref 0 in
  let c = ref 0 in
  while !c < cols do
    Netlist.add_port nl (Printf.sprintf "padT%d" !pad) (node_at 0 !c);
    Netlist.add_port nl (Printf.sprintf "padB%d" !pad) (node_at (rows - 1) !c);
    incr pad;
    c := !c + pitch_pads
  done;
  nl

let random_rc ?(ports = 2) ~nodes ~extra_edges ~seed () =
  assert (nodes >= 1 && ports >= 1 && ports <= nodes);
  let rng = Linalg.Rng.create seed in
  let nl = Netlist.create () in
  let node_at i = Netlist.node nl (Printf.sprintf "n%d" i) in
  (* ensure every node is interned in order *)
  for i = 0 to nodes - 1 do
    ignore (node_at i)
  done;
  (* random spanning tree: connect node i to a random earlier node
     (or ground for node 0) *)
  Netlist.add_resistor nl (node_at 0) 0 (Linalg.Rng.log_uniform rng 1.0 100.0);
  for i = 1 to nodes - 1 do
    let j = Linalg.Rng.int rng i in
    Netlist.add_resistor nl (node_at i) (node_at j) (Linalg.Rng.log_uniform rng 1.0 100.0)
  done;
  for _ = 1 to extra_edges do
    let i = Linalg.Rng.int rng nodes and j = Linalg.Rng.int rng nodes in
    if i <> j then begin
      if Linalg.Rng.float rng < 0.5 then
        Netlist.add_resistor nl (node_at i) (node_at j)
          (Linalg.Rng.log_uniform rng 1.0 100.0)
      else
        Netlist.add_capacitor nl (node_at i) (node_at j)
          (Linalg.Rng.log_uniform rng 1e-14 1e-12)
    end
  done;
  for i = 0 to nodes - 1 do
    ignore i;
    Netlist.add_capacitor nl (node_at i) 0 (Linalg.Rng.log_uniform rng 1e-13 1e-12)
  done;
  (* distinct random port nodes *)
  let chosen = Array.make nodes false in
  let placed = ref 0 in
  while !placed < ports do
    let i = Linalg.Rng.int rng nodes in
    if not chosen.(i) then begin
      chosen.(i) <- true;
      Netlist.add_port nl (Printf.sprintf "port%d" !placed) (node_at i);
      incr placed
    end
  done;
  nl
