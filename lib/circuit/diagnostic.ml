type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  message : string;
  line : int option;
}

exception User_error of string

let user_errorf fmt = Printf.ksprintf (fun s -> raise (User_error s)) fmt

let make ?line ~code ~severity message = { code; severity; message; line }

let error ?line code message = { code; severity = Error; message; line }

let warning ?line code message = { code; severity = Warning; message; line }

let info ?line code message = { code; severity = Info; message; line }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let line = function Some l -> l | None -> max_int in
    let c = Int.compare (line a.line) (line b.line) in
    if c <> 0 then c else String.compare a.code b.code

let sort ds = List.sort compare ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let worst ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
        if severity_rank d.severity < severity_rank s then Some d.severity else acc)
    None ds

let exit_code ~strict ds =
  match worst ds with
  | Some Error -> 2
  | Some Warning -> if strict then 2 else 1
  | Some Info | None -> 0

let pp ppf d =
  match d.line with
  | Some l ->
    Format.fprintf ppf "%s %s (line %d): %s" (severity_to_string d.severity) d.code l
      d.message
  | None ->
    Format.fprintf ppf "%s %s: %s" (severity_to_string d.severity) d.code d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf "{\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"line\":%s}"
    (json_escape d.code)
    (severity_to_string d.severity)
    (json_escape d.message)
    (match d.line with Some l -> string_of_int l | None -> "null")

let list_to_json ds =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (to_json d))
    ds;
  if ds <> [] then Buffer.add_string buf "\n";
  Buffer.add_string buf "]";
  Buffer.contents buf
