exception Parse_error of int * string

let suffixes =
  [
    ("meg", 1e6);
    ("f", 1e-15);
    ("p", 1e-12);
    ("n", 1e-9);
    ("u", 1e-6);
    ("m", 1e-3);
    ("k", 1e3);
    ("g", 1e9);
    ("t", 1e12);
  ]

let value s =
  let s = String.lowercase_ascii (String.trim s) in
  let try_suffix (suf, mult) =
    let ls = String.length s and lf = String.length suf in
    if ls > lf && String.sub s (ls - lf) lf = suf then
      match float_of_string_opt (String.sub s 0 (ls - lf)) with
      | Some v -> Some (v *. mult)
      | None -> None
    else None
  in
  match float_of_string_opt s with
  | Some v -> v
  | None -> (
    match List.find_map try_suffix suffixes with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Parser.value: cannot parse %S" s))

(* split a card into tokens; parenthesised argument lists become one
   token each, e.g. "PWL(0 0 1n 1)" *)
let tokenize line =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | '(' ->
        incr depth;
        Buffer.add_char buf ch
      | ')' ->
        decr depth;
        Buffer.add_char buf ch
      | ' ' | '\t' | ',' when !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !tokens

let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_args_of tok =
  (* "PWL(0 0 1n 2)" -> ("pwl", ["0";"0";"1n";"2"]) *)
  match String.index_opt tok '(' with
  | None -> (String.lowercase_ascii tok, [])
  | Some i ->
    let head = String.lowercase_ascii (String.sub tok 0 i) in
    let inner = String.sub tok (i + 1) (String.length tok - i - 2) in
    let args =
      String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) inner)
      |> List.filter (fun s -> s <> "")
    in
    (head, args)

let parse_waveform lineno tokens =
  let err msg = raise (Parse_error (lineno, msg)) in
  match tokens with
  | [] -> err "missing source value"
  | [ v ] when fst (parse_args_of v) = "pwl" || fst (parse_args_of v) = "pulse"
               || fst (parse_args_of v) = "sin" -> (
    let head, args = parse_args_of v in
    let vals = List.map value args in
    match (head, vals) with
    | "pwl", vs ->
      let rec pair = function
        | [] -> []
        | t :: v :: rest -> (t, v) :: pair rest
        | [ _ ] -> err "PWL needs an even number of values"
      in
      Waveform.Pwl (pair vs)
    | "pulse", [ low; high; delay; rise; fall; width; period ] ->
      Waveform.Pulse { low; high; delay; rise; fall; width; period }
    | "pulse", _ -> err "PULSE needs 7 values"
    | "sin", [ offset; amplitude; freq ] ->
      Waveform.Sine { offset; amplitude; freq; delay = 0.0 }
    | "sin", [ offset; amplitude; freq; delay ] ->
      Waveform.Sine { offset; amplitude; freq; delay }
    | "sin", _ -> err "SIN needs 3 or 4 values"
    | _, _ -> err ("unknown source function " ^ head))
  | [ "DC"; v ] | [ "dc"; v ] | [ v ] -> Waveform.Dc (value v)
  | _ -> err "cannot parse source specification"

(* subcircuit definitions: name -> (pins, body cards with line numbers) *)
type subckt = { pins : string list; body : (int * string list) list }

(* split raw lines into (subckt table, toplevel cards) *)
let gather_subckts lines =
  let defs = Hashtbl.create 4 in
  let top = ref [] in
  let current = ref None in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" && line.[0] <> '*' then begin
        let toks = tokenize line in
        match (toks, !current) with
        | [], _ -> ()
        | head :: rest, None when String.lowercase_ascii head = ".subckt" -> (
          match rest with
          | name :: pins when pins <> [] ->
            current := Some (name, pins, ref [])
          | _ -> raise (Parse_error (lineno, ".subckt needs: name pin [pin ...]")))
        | head :: _, Some (name, pins, body) when String.lowercase_ascii head = ".ends" ->
          Hashtbl.replace defs name { pins; body = List.rev !body };
          current := None
        | head :: _, Some (_, _, _) when String.lowercase_ascii head = ".subckt" ->
          raise (Parse_error (lineno, "nested .subckt definitions are not allowed"))
        | toks, Some (_, _, body) -> body := (lineno, toks) :: !body
        | toks, None -> top := (lineno, toks) :: !top
      end)
    lines;
  (match !current with
  | Some (name, _, _) -> raise (Parse_error (0, ".subckt " ^ name ^ " missing .ends"))
  | None -> ());
  (defs, List.rev !top)

(* expand subcircuit instantiations into flat cards, renaming local
   nodes and element names with the instance prefix *)
let rec expand_cards defs depth inst_path pin_map cards =
  if depth > 20 then
    raise (Parse_error (0, "subcircuit nesting deeper than 20 (recursive definition?)"));
  let rename_node n =
    let lower = String.lowercase_ascii n in
    if lower = "0" || lower = "gnd" then n
    else
      match List.assoc_opt n pin_map with
      | Some outer -> outer
      | None -> if inst_path = "" then n else inst_path ^ "." ^ n
  in
  (* element names keep their leading type character and carry the
     instance path as a suffix: R1 inside X2 becomes R1@X2 *)
  let rename_name n = if inst_path = "" then n else n ^ "@" ^ inst_path in
  List.concat_map
    (fun (lineno, toks) ->
      match toks with
      | [] -> []
      | head :: rest -> (
        let lower = String.lowercase_ascii head in
        if lower = ".end" then []
        else if lower = ".port" then begin
          if inst_path <> "" then
            raise (Parse_error (lineno, ".port inside a subcircuit is not allowed"));
          [ (lineno, toks) ]
        end
        else if String.length lower > 0 && lower.[0] = '.' then
          raise (Parse_error (lineno, "unknown directive " ^ head))
        else begin
          match (Char.lowercase_ascii head.[0], rest) with
          | 'x', args when List.length args >= 2 -> (
            let rec split_last acc = function
              | [ last ] -> (List.rev acc, last)
              | a :: more -> split_last (a :: acc) more
              | [] -> assert false
            in
            let outer_nodes, sub_name = split_last [] args in
            match Hashtbl.find_opt defs sub_name with
            | None ->
              raise (Parse_error (lineno, "unknown subcircuit " ^ sub_name))
            | Some def ->
              if List.length def.pins <> List.length outer_nodes then
                raise
                  (Parse_error
                     ( lineno,
                       Printf.sprintf "%s expects %d pins, got %d" sub_name
                         (List.length def.pins) (List.length outer_nodes) ));
              let bound =
                List.map2 (fun pin node -> (pin, rename_node node)) def.pins outer_nodes
              in
              let child_path =
                if inst_path = "" then head else inst_path ^ "." ^ head
              in
              expand_cards defs (depth + 1) child_path bound def.body)
          | ('r' | 'c' | 'l' | 'i' | 'v'), n1 :: n2 :: tail ->
            [ (lineno, rename_name head :: rename_node n1 :: rename_node n2 :: tail) ]
          | 'k', [ l1; l2; kv ] ->
            [ (lineno, [ rename_name head; rename_name l1; rename_name l2; kv ]) ]
          | 'g', [ a; b; c; d; gm ] ->
            [
              ( lineno,
                [
                  rename_name head;
                  rename_node a;
                  rename_node b;
                  rename_node c;
                  rename_node d;
                  gm;
                ] );
            ]
          | _, _ -> [ (lineno, toks) ]
        end))
    cards

let parse_string text =
  let nl = Netlist.create () in
  let lines = String.split_on_char '\n' text in
  let defs, top = gather_subckts lines in
  let flat = expand_cards defs 0 "" [] top in
  List.iter
    (fun (lineno, toks) ->
      begin
        let err msg = raise (Parse_error (lineno, msg)) in
        let origin = { Netlist.line = lineno } in
        (* value-parse failures and netlist validation errors surface
           as parse errors with the offending line number *)
        try
        match toks with
        | [] -> ()
        | head :: rest -> (
          let lower = String.lowercase_ascii head in
          if lower = ".end" then ()
          else if lower = ".port" then begin
            match rest with
            | [ name; plus ] -> Netlist.add_port nl ~origin name (Netlist.node nl plus)
            | [ name; plus; minus ] ->
              Netlist.add_port nl ~origin name
                ~minus:(Netlist.node nl minus)
                (Netlist.node nl plus)
            | _ -> err ".port needs: name node [node]"
          end
          else if String.length lower > 0 && lower.[0] = '.' then
            err ("unknown directive " ^ head)
          else begin
            (* elements go through the raw constructor: netlists on
               disk may carry negative-valued synthesized elements *)
            match (Char.lowercase_ascii head.[0], rest) with
            | 'r', [ n1; n2; v ] ->
              Netlist.add nl ~origin
                (Netlist.Resistor
                   {
                     name = head;
                     n1 = Netlist.node nl n1;
                     n2 = Netlist.node nl n2;
                     ohms = value v;
                   })
            | 'c', [ n1; n2; v ] ->
              Netlist.add nl ~origin
                (Netlist.Capacitor
                   {
                     name = head;
                     n1 = Netlist.node nl n1;
                     n2 = Netlist.node nl n2;
                     farads = value v;
                   })
            | 'l', [ n1; n2; v ] ->
              Netlist.add nl ~origin
                (Netlist.Inductor
                   {
                     name = head;
                     n1 = Netlist.node nl n1;
                     n2 = Netlist.node nl n2;
                     henries = value v;
                   })
            | 'k', [ l1; l2; kv ] ->
              (* raw add: out-of-range k is parsed and left for lint *)
              Netlist.add nl ~origin
                (Netlist.Mutual { name = head; l1; l2; k = value kv })
            | 'i', n1 :: n2 :: spec ->
              let wave = parse_waveform lineno spec in
              Netlist.add nl ~origin
                (Netlist.Current_source
                   { name = head; n1 = Netlist.node nl n1; n2 = Netlist.node nl n2; wave })
            | 'v', n1 :: n2 :: spec ->
              let wave = parse_waveform lineno spec in
              Netlist.add nl ~origin
                (Netlist.Voltage_source
                   { name = head; n1 = Netlist.node nl n1; n2 = Netlist.node nl n2; wave })
            | 'g', [ op; on; ip; inn; gm ] ->
              Netlist.add nl ~origin
                (Netlist.Vccs
                   {
                     name = head;
                     out_p = Netlist.node nl op;
                     out_n = Netlist.node nl on;
                     in_p = Netlist.node nl ip;
                     in_n = Netlist.node nl inn;
                     gm = value gm;
                   })
            | c, _ ->
              err (Printf.sprintf "cannot parse element card %c (%d tokens)" c
                     (List.length rest))
          end)
        with
        | Failure msg | Invalid_argument msg -> err msg
      end)
    flat;
  nl

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let to_string ?(precision = 9) nl =
  let buf = Buffer.create 1024 in
  let name_of n = Netlist.node_name nl n in
  let value v = Printf.sprintf "%.*g" precision v in
  List.iter
    (fun e ->
      (match e with
      | Netlist.Resistor { name; n1; n2; ohms } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s" name (name_of n1) (name_of n2) (value ohms))
      | Netlist.Capacitor { name; n1; n2; farads } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s" name (name_of n1) (name_of n2) (value farads))
      | Netlist.Inductor { name; n1; n2; henries } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s" name (name_of n1) (name_of n2) (value henries))
      | Netlist.Mutual { name; l1; l2; k } ->
        Buffer.add_string buf (Printf.sprintf "%s %s %s %s" name l1 l2 (value k))
      | Netlist.Current_source { name; n1; n2; wave }
      | Netlist.Voltage_source { name; n1; n2; wave } ->
        Buffer.add_string buf
          (Format.asprintf "%s %s %s %a" name (name_of n1) (name_of n2) Waveform.pp wave)
      | Netlist.Vccs { name; out_p; out_n; in_p; in_n; gm } ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s %s %s %s %s" name (name_of out_p) (name_of out_n)
             (name_of in_p) (name_of in_n) (value gm))
      | Netlist.Nonlinear_conductance { name; _ } ->
        invalid_arg ("Parser.to_string: nonlinear element " ^ name ^ " not representable"));
      Buffer.add_char buf '\n')
    (Netlist.elements nl);
  List.iter
    (fun { Netlist.port_name; plus; minus } ->
      Buffer.add_string buf
        (if minus = 0 then Printf.sprintf ".port %s %s\n" port_name (name_of plus)
         else Printf.sprintf ".port %s %s %s\n" port_name (name_of plus) (name_of minus)))
    (Netlist.ports nl);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf
