(** Circuit netlists.

    A netlist is a mutable builder over named nodes; node 0 is the
    datum (ground). Elements are the passive RLC set of the paper plus
    the source/controlled/nonlinear elements needed by the transient
    simulator and by reduced-circuit synthesis. *)

type node = int
(** 0 is ground; positive integers are circuit nodes. *)

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Inductor of { name : string; n1 : node; n2 : node; henries : float }
  | Mutual of { name : string; l1 : string; l2 : string; k : float }
      (** Inductive coupling between two named inductors,
          [M = k·√(L1·L2)], [|k| < 1]. *)
  | Current_source of { name : string; n1 : node; n2 : node; wave : Waveform.t }
      (** Positive current flows from [n1] through the source to [n2]
          (i.e. is injected into [n2]). *)
  | Voltage_source of { name : string; n1 : node; n2 : node; wave : Waveform.t }
      (** Ideal voltage source: [v(n1) − v(n2) = wave(t)]. Supported
          by the transient simulator (an extra branch-current
          unknown); the MOR path follows the paper and accepts only
          current excitations. *)
  | Vccs of {
      name : string;
      out_p : node;
      out_n : node;
      in_p : node;
      in_n : node;
      gm : float;
    }  (** Current [gm·(v_inp − v_inn)] from [out_p] to [out_n]. *)
  | Nonlinear_conductance of {
      name : string;
      n1 : node;
      n2 : node;
      i_of_v : float -> float;
      di_dv : float -> float;
    }
      (** Two-terminal nonlinear element: branch current as a function
          of branch voltage, plus its derivative (for Newton). *)

type port = { port_name : string; plus : node; minus : node }

type origin = { line : int }
(** Source provenance of an element or port: 1-based line number in
    the netlist file it was parsed from. Programmatically built
    netlists carry no origin. *)

type t

val create : unit -> t

val node : t -> string -> node
(** Intern a node by name; ["0"], ["gnd"] and ["GND"] are ground. *)

val fresh_node : t -> string -> node
(** Intern a fresh node with a unique name derived from the prefix. *)

val num_nodes : t -> int
(** Number of non-ground nodes. *)

val node_name : t -> node -> string

val add : t -> ?origin:origin -> element -> unit
(** Add an element, optionally tagged with its source {!origin}.
    Raises [Invalid_argument] for zero or non-finite R/L/C values,
    unknown-node references, and non-finite coupling coefficients.
    Negative values, [|k| >= 1] couplings, self-couplings and
    [Mutual] references to unknown inductors are {e accepted} here —
    synthesized reduced circuits legitimately carry negative elements
    (paper Section 6), and the linter ({!module:Analysis.Lint} in the
    analysis library) reports all of them with line provenance
    (NET007/NET008/NET017); the [add_*] wrappers below stay strict,
    and the MNA assembly refuses netlists with
    {!coupling_problems}. *)

val add_resistor : t -> ?name:string -> node -> node -> float -> unit

val add_capacitor : t -> ?name:string -> node -> node -> float -> unit

val add_inductor : t -> ?name:string -> node -> node -> float -> unit

val add_mutual : t -> ?name:string -> string -> string -> float -> unit
(** Strict wrapper: requires [0 < |k| < 1] and two distinct inductor
    names already present in the netlist. *)

val add_current_source : t -> ?name:string -> node -> node -> Waveform.t -> unit

val add_voltage_source : t -> ?name:string -> node -> node -> Waveform.t -> unit

val add_thevenin_driver : t -> ?name:string -> node -> float -> Waveform.t -> unit
(** [add_thevenin_driver t node r wave] — a voltage source with
    series resistance [r] driving [node] (a gate-driver model). *)

val add_port : t -> ?origin:origin -> string -> ?minus:node -> node -> unit
(** Declare a terminal pair as a port (default [minus] is ground).
    Port order is declaration order — it fixes the row/column order of
    the transfer-function matrix [Z(s)]. *)

val elements : t -> element list
(** In insertion order. *)

val elements_with_origin : t -> (element * origin option) list
(** In insertion order, with source provenance. *)

val ports : t -> port list

val ports_with_origin : t -> (port * origin option) list

val element_name : element -> string

val origin_of : t -> string -> origin option
(** Source origin of the first element with the given name. *)

val port_count : t -> int

val inductors : t -> (string * node * node * float) list
(** Name, nodes and value of every inductor, in insertion order. *)

val find_inductor : t -> string -> int
(** Index of an inductor in the {!inductors} order. Raises
    [Not_found]. *)

val coupling_problems : t -> (string * string) list
(** Mutual-coupling defects that make the inductance matrix
    ill-defined: zero coupling coefficient, self-coupling, or a
    reference to an unknown inductor. Each entry is
    [(element_name, message)], in insertion order; line provenance is
    recoverable via {!origin_of}. Out-of-range [|k| >= 1] is not
    listed here (the matrix stays well-defined, merely indefinite —
    lint rule NET008 reports it). *)

type stats = {
  nodes : int;
  resistors : int;
  capacitors : int;
  inductors_ : int;
  mutuals : int;
  sources : int;
  vsources : int;
  vccs_ : int;
  nonlinear : int;
}

val stats : t -> stats

val all_values_positive : t -> bool
(** False when the netlist contains negative-valued R/L/C — possible
    for synthesized reduced circuits (paper Section 6), in which case
    the PSD structure of the MNA matrices is lost. *)

val is_linear_rlc : t -> bool
(** True when only R/L/C/K and current sources are present (the class
    the MOR front-end accepts). *)

val classify : t -> [ `Rc | `Rl | `Lc | `Rlc | `General ]
(** Topology class used to pick the specialised MNA form. [`General]
    means controlled/nonlinear elements are present. *)

val pp_stats : Format.formatter -> stats -> unit
