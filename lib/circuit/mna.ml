type gain = Unit | Times_s

type variable = S | S_squared

type t = {
  n : int;
  n_nodes : int;
  g : Sparse.Csr.t;
  c : Sparse.Csr.t;
  b : Linalg.Mat.t;
  port_names : string array;
  gain : gain;
  variable : variable;
  spd : bool;
}

(* stamp a two-terminal admittance-like value into a nodal matrix;
   MNA index of node n is n - 1, ground (0) is dropped *)
let stamp_pair tr n1 n2 v =
  let i = n1 - 1 and j = n2 - 1 in
  if i >= 0 then Sparse.Triplet.add tr i i v;
  if j >= 0 then Sparse.Triplet.add tr j j v;
  if i >= 0 && j >= 0 then begin
    Sparse.Triplet.add tr i j (-.v);
    Sparse.Triplet.add tr j i (-.v)
  end

let require_ports nl =
  if Netlist.port_count nl = 0 then
    Diagnostic.user_errorf
      "Mna: netlist has no ports — declare at least one with .port/add_port"

(* name the first offending element, with its source line when the
   netlist was parsed from a file *)
let where_of = function
  | Some { Netlist.line } -> Printf.sprintf " (line %d)" line
  | None -> ""

let require_linear nl =
  if not (Netlist.is_linear_rlc nl) then begin
    let offender =
      List.find_opt
        (fun (e, _) ->
          match e with
          | Netlist.Voltage_source _ | Netlist.Vccs _ | Netlist.Nonlinear_conductance _
            ->
            true
          | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
          | Netlist.Mutual _ | Netlist.Current_source _ ->
            false)
        (Netlist.elements_with_origin nl)
    in
    match offender with
    | Some (e, o) ->
      Diagnostic.user_errorf
        "Mna: %s%s is not admissible in the MOR path — only R/L/C/K elements and \
         current excitations are (run `symor lint` for the full report)"
        (Netlist.element_name e) (where_of o)
    | None ->
      Diagnostic.user_errorf
        "Mna: controlled/nonlinear elements are not allowed in the MOR path"
  end

(* A malformed K card (zero k, self-coupling, unknown inductor) makes
   the inductance matrix ill-defined; the raw parser accepts such
   cards so the linter can report them (NET017), so every assembly
   entry point re-checks here. *)
let require_couplings nl =
  match Netlist.coupling_problems nl with
  | [] -> ()
  | (name, msg) :: _ ->
    Diagnostic.user_errorf
      "Mna: coupling %s%s %s (run `symor lint` for the full NET017 report)" name
      (where_of (Netlist.origin_of nl name))
      msg

let port_matrix nl n =
  let ports = Netlist.ports nl in
  let p = List.length ports in
  let b = Linalg.Mat.create n p in
  List.iteri
    (fun j { Netlist.plus; minus; _ } ->
      if plus > 0 then Linalg.Mat.add_to b (plus - 1) j 1.0;
      if minus > 0 then Linalg.Mat.add_to b (minus - 1) j (-1.0))
    ports;
  b

let port_names nl =
  Array.of_list (List.map (fun pt -> pt.Netlist.port_name) (Netlist.ports nl))

(* Above this inductor count the −ℒ block of the general form is
   stamped straight from the K cards instead of via a dense ℒ (which
   would be O(ni²) memory — ~800 MB at ni = 10⁴). Kept well above
   every shipped example so their assembly, and hence the committed
   goldens, are bit-identical to before. *)
let dense_inductance_max = 2048

(* hashed inductor-name → index map; [Netlist.find_inductor] is a
   linear scan and quadratic over many K cards *)
let inductor_index nl =
  let index = Hashtbl.create 256 in
  List.iteri (fun i (name, _, _, _) -> Hashtbl.replace index name i) (Netlist.inductors nl);
  index

let inductance_matrix nl =
  let inds = Netlist.inductors nl in
  let nl_count = List.length inds in
  let values = Array.of_list (List.map (fun (_, _, _, h) -> h) inds) in
  let index = inductor_index nl in
  let m = Linalg.Mat.create nl_count nl_count in
  for i = 0 to nl_count - 1 do
    Linalg.Mat.set m i i values.(i)
  done;
  List.iter
    (fun e ->
      match e with
      | Netlist.Mutual { l1; l2; k; _ } ->
        let i = Hashtbl.find index l1 and j = Hashtbl.find index l2 in
        let mij = k *. sqrt (values.(i) *. values.(j)) in
        Linalg.Mat.add_to m i j mij;
        Linalg.Mat.add_to m j i mij
      | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
      | Netlist.Current_source _ | Netlist.Voltage_source _ | Netlist.Vccs _
      | Netlist.Nonlinear_conductance _ ->
        ())
    (Netlist.elements nl);
  m

(* Aˡ incidence matrix of inductor branches over non-ground nodes *)
let inductor_incidence nl =
  let inds = Netlist.inductors nl in
  let nn = Netlist.num_nodes nl in
  let al = Linalg.Mat.create (List.length inds) nn in
  List.iteri
    (fun k (_, n1, n2, _) ->
      if n1 > 0 then Linalg.Mat.add_to al k (n1 - 1) 1.0;
      if n2 > 0 then Linalg.Mat.add_to al k (n2 - 1) (-1.0))
    inds;
  al

(* Aˡᵀ ℒ⁻¹ Aˡ as a CSR matrix (dense intermediate; the inductor count
   is moderate even in the PEEC workloads) *)
let inductive_nodal_g nl =
  let lmat = inductance_matrix nl in
  let al = inductor_incidence nl in
  let chol = Linalg.Chol.factor lmat in
  let linv_al = Linalg.Chol.solve_mat chol al in
  let g = Linalg.Mat.mul (Linalg.Mat.transpose al) linv_al in
  Sparse.Csr.of_dense g

let conductance_nodal nl nn =
  let tr = Sparse.Triplet.create nn nn in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { n1; n2; ohms; _ } -> stamp_pair tr n1 n2 (1.0 /. ohms)
      | Netlist.Capacitor _ | Netlist.Inductor _ | Netlist.Mutual _
      | Netlist.Current_source _ | Netlist.Voltage_source _ | Netlist.Vccs _
      | Netlist.Nonlinear_conductance _ ->
        ())
    (Netlist.elements nl);
  Sparse.Csr.of_triplet tr

let capacitance_nodal nl nn =
  let tr = Sparse.Triplet.create nn nn in
  List.iter
    (fun e ->
      match e with
      | Netlist.Capacitor { n1; n2; farads; _ } -> stamp_pair tr n1 n2 farads
      | Netlist.Resistor _ | Netlist.Inductor _ | Netlist.Mutual _
      | Netlist.Current_source _ | Netlist.Voltage_source _ | Netlist.Vccs _
      | Netlist.Nonlinear_conductance _ ->
        ())
    (Netlist.elements nl);
  Sparse.Csr.of_triplet tr

let assemble nl =
  require_linear nl;
  require_ports nl;
  require_couplings nl;
  let nn = Netlist.num_nodes nl in
  let inds = Netlist.inductors nl in
  let ni = List.length inds in
  let n = nn + ni in
  (* G = [[AᵍᵀGAᵍ, Aˡᵀ]; [Aˡ, 0]] *)
  let gtr = Sparse.Triplet.create n n in
  List.iter
    (fun e ->
      match e with
      | Netlist.Resistor { n1; n2; ohms; _ } -> stamp_pair gtr n1 n2 (1.0 /. ohms)
      | Netlist.Capacitor _ | Netlist.Inductor _ | Netlist.Mutual _
      | Netlist.Current_source _ | Netlist.Voltage_source _ | Netlist.Vccs _
      | Netlist.Nonlinear_conductance _ ->
        ())
    (Netlist.elements nl);
  List.iteri
    (fun k (_, n1, n2, _) ->
      let row = nn + k in
      if n1 > 0 then Sparse.Triplet.add_sym gtr row (n1 - 1) 1.0;
      if n2 > 0 then Sparse.Triplet.add_sym gtr row (n2 - 1) (-1.0))
    inds;
  let g = Sparse.Csr.of_triplet gtr in
  (* C = [[AᶜᵀCAᶜ, 0]; [0, −ℒ]] *)
  let ctr = Sparse.Triplet.create n n in
  List.iter
    (fun e ->
      match e with
      | Netlist.Capacitor { n1; n2; farads; _ } -> stamp_pair ctr n1 n2 farads
      | Netlist.Resistor _ | Netlist.Inductor _ | Netlist.Mutual _
      | Netlist.Current_source _ | Netlist.Voltage_source _ | Netlist.Vccs _
      | Netlist.Nonlinear_conductance _ ->
        ())
    (Netlist.elements nl);
  if ni > 0 && ni <= dense_inductance_max then begin
    let lmat = inductance_matrix nl in
    for i = 0 to ni - 1 do
      for j = 0 to ni - 1 do
        let v = Linalg.Mat.get lmat i j in
        if v <> 0.0 then Sparse.Triplet.add ctr (nn + i) (nn + j) (-.v)
      done
    done
  end
  else if ni > 0 then begin
    (* sparse ℒ stamping for the 10⁴–10⁵ partial-inductance regime: a
       dense ℒ would be O(ni²) memory; windowed k-coupling keeps the
       triplet linear in the K-card count. The dense branch above is
       kept verbatim for small ni so existing goldens stay
       bit-identical. *)
    let values = Array.of_list (List.map (fun (_, _, _, h) -> h) inds) in
    let index = inductor_index nl in
    Array.iteri
      (fun i h -> Sparse.Triplet.add ctr (nn + i) (nn + i) (-.h))
      values;
    List.iter
      (fun e ->
        match e with
        | Netlist.Mutual { l1; l2; k; _ } ->
          let i = Hashtbl.find index l1 and j = Hashtbl.find index l2 in
          let mij = k *. sqrt (values.(i) *. values.(j)) in
          Sparse.Triplet.add ctr (nn + i) (nn + j) (-.mij);
          Sparse.Triplet.add ctr (nn + j) (nn + i) (-.mij)
        | Netlist.Resistor _ | Netlist.Capacitor _ | Netlist.Inductor _
        | Netlist.Current_source _ | Netlist.Voltage_source _ | Netlist.Vccs _
        | Netlist.Nonlinear_conductance _ ->
          ())
      (Netlist.elements nl)
  end;
  let c = Sparse.Csr.of_triplet ctr in
  let b_nodal = port_matrix nl nn in
  let b = Linalg.Mat.create n (Netlist.port_count nl) in
  for i = 0 to nn - 1 do
    for j = 0 to Netlist.port_count nl - 1 do
      Linalg.Mat.set b i j (Linalg.Mat.get b_nodal i j)
    done
  done;
  {
    n;
    n_nodes = nn;
    g;
    c;
    b;
    port_names = port_names nl;
    gain = Unit;
    variable = S;
    spd = false;
  }

let assemble_rc nl =
  require_linear nl;
  require_ports nl;
  require_couplings nl;
  let s = Netlist.stats nl in
  if s.Netlist.inductors_ > 0 then begin
    let offender =
      List.find_opt
        (fun (e, _) -> match e with Netlist.Inductor _ -> true | _ -> false)
        (Netlist.elements_with_origin nl)
    in
    match offender with
    | Some (e, o) ->
      Diagnostic.user_errorf "Mna.assemble_rc: netlist contains inductor %s%s"
        (Netlist.element_name e) (where_of o)
    | None -> Diagnostic.user_errorf "Mna.assemble_rc: netlist contains inductors"
  end;
  let nn = Netlist.num_nodes nl in
  {
    n = nn;
    n_nodes = nn;
    g = conductance_nodal nl nn;
    c = capacitance_nodal nl nn;
    b = port_matrix nl nn;
    port_names = port_names nl;
    gain = Unit;
    variable = S;
    spd = Netlist.all_values_positive nl;
  }

let assemble_rl nl =
  require_linear nl;
  require_ports nl;
  require_couplings nl;
  let s = Netlist.stats nl in
  if s.Netlist.capacitors > 0 then
    Diagnostic.user_errorf "Mna.assemble_rl: netlist contains capacitors";
  let nn = Netlist.num_nodes nl in
  {
    n = nn;
    n_nodes = nn;
    g = inductive_nodal_g nl;
    c = conductance_nodal nl nn;
    b = port_matrix nl nn;
    port_names = port_names nl;
    gain = Times_s;
    variable = S;
    spd = Netlist.all_values_positive nl;
  }

let assemble_lc nl =
  require_linear nl;
  require_ports nl;
  require_couplings nl;
  let s = Netlist.stats nl in
  if s.Netlist.resistors > 0 then
    Diagnostic.user_errorf "Mna.assemble_lc: netlist contains resistors";
  let nn = Netlist.num_nodes nl in
  {
    n = nn;
    n_nodes = nn;
    g = inductive_nodal_g nl;
    c = capacitance_nodal nl nn;
    b = port_matrix nl nn;
    port_names = port_names nl;
    gain = Times_s;
    variable = S_squared;
    spd = Netlist.all_values_positive nl;
  }

let auto nl =
  match Netlist.classify nl with
  | `Rc -> assemble_rc nl
  | `Rl -> assemble_rl nl
  | `Lc -> assemble_lc nl
  | `Rlc -> assemble nl
  | `General ->
    Diagnostic.user_errorf
      "Mna.auto: nonlinear/controlled elements present — run `symor lint` for \
       the offending cards"

let pencil_pattern m =
  let tr = Sparse.Triplet.create m.n m.n in
  for i = 0 to m.n - 1 do
    Sparse.Csr.iter_row m.g i (fun j _ -> Sparse.Triplet.add tr i j 1.0);
    Sparse.Csr.iter_row m.c i (fun j _ -> Sparse.Triplet.add tr i j 1.0)
  done;
  Sparse.Csr.of_triplet tr

let unknown_label m row =
  if row < 0 || row >= m.n then invalid_arg "Mna.unknown_label: row out of range"
  else if row < m.n_nodes then Printf.sprintf "node-voltage unknown %d" (row + 1)
  else Printf.sprintf "inductor-current unknown %d" (row - m.n_nodes + 1)

let observe_inductor_current nl mna l_name =
  let idx = Netlist.find_inductor nl l_name in
  match (mna.variable, mna.gain) with
  | S, Unit ->
    (* general form: inductor currents are trailing unknowns *)
    if mna.n = mna.n_nodes then
      Diagnostic.user_errorf
        "Mna.observe_inductor_current: no inductor unknowns in this form";
    Linalg.Vec.basis mna.n (mna.n_nodes + idx)
  | S_squared, _ ->
    (* LC form: w = Aˡᵀ ℒ⁻¹ b (paper Section 7.1) *)
    let lmat = inductance_matrix nl in
    let al = inductor_incidence nl in
    let chol = Linalg.Chol.factor lmat in
    let bsel = Linalg.Vec.basis (List.length (Netlist.inductors nl)) idx in
    let linv_b = Linalg.Chol.solve chol bsel in
    Linalg.Mat.mul_trans_vec al linv_b
  | S, Times_s ->
    Diagnostic.user_errorf
      "Mna.observe_inductor_current: not available for the RL form"

let append_output_column mna w name =
  assert (Linalg.Vec.dim w = mna.n);
  let p = mna.b.Linalg.Mat.cols in
  let b = Linalg.Mat.create mna.n (p + 1) in
  for i = 0 to mna.n - 1 do
    for j = 0 to p - 1 do
      Linalg.Mat.set b i j (Linalg.Mat.get mna.b i j)
    done;
    Linalg.Mat.set b i p w.(i)
  done;
  { mna with b; port_names = Array.append mna.port_names [| name |] }

(* ---------- second-order (susceptance) form ---------- *)

type second_order = {
  so_n : int;
  so_ni : int;
  so_m : Sparse.Csr.t;
  so_d : Sparse.Csr.t;
  so_k : Sparse.Csr.t;
  so_b : Linalg.Mat.t;
  so_ports : string array;
  so_gain : gain;
  so_variable : variable;
}

let assemble_second_order nl =
  require_linear nl;
  require_ports nl;
  require_couplings nl;
  let nn = Netlist.num_nodes nl in
  let ni = List.length (Netlist.inductors nl) in
  let k2 =
    if ni = 0 then Sparse.Csr.of_triplet (Sparse.Triplet.create nn nn)
    else inductive_nodal_g nl
  in
  {
    so_n = nn;
    so_ni = ni;
    so_m = capacitance_nodal nl nn;
    so_d = conductance_nodal nl nn;
    so_k = k2;
    so_b = port_matrix nl nn;
    so_ports = port_names nl;
    so_gain = Times_s;
    so_variable = S;
  }

let linearize so =
  let nn = so.so_n in
  let n = 2 * nn in
  (* G' = [[K, 0]; [0, I]],  C' = [[D, I]; [−M, 0]] — the companion
     state is w = s·M·v, so the pencil G' + s·C' is nonsingular
     exactly where the quadratic pencil s²M + sD + K is, even for a
     singular M (nodes without capacitors). Schur elimination of w
     recovers (s²M + sD + K)·v = B·u, hence Z(s) = s·Bᵀv matches the
     second-order transfer function identically. *)
  let gtr = Sparse.Triplet.create n n in
  for i = 0 to nn - 1 do
    Sparse.Csr.iter_row so.so_k i (fun j v -> Sparse.Triplet.add gtr i j v);
    Sparse.Triplet.add gtr (nn + i) (nn + i) 1.0
  done;
  let ctr = Sparse.Triplet.create n n in
  for i = 0 to nn - 1 do
    Sparse.Csr.iter_row so.so_d i (fun j v -> Sparse.Triplet.add ctr i j v);
    Sparse.Triplet.add ctr i (nn + i) 1.0;
    Sparse.Csr.iter_row so.so_m i (fun j v -> Sparse.Triplet.add ctr (nn + i) j (-.v))
  done;
  let p = so.so_b.Linalg.Mat.cols in
  let b = Linalg.Mat.create n p in
  for i = 0 to nn - 1 do
    for j = 0 to p - 1 do
      Linalg.Mat.set b i j (Linalg.Mat.get so.so_b i j)
    done
  done;
  {
    n;
    n_nodes = nn;
    g = Sparse.Csr.of_triplet gtr;
    c = Sparse.Csr.of_triplet ctr;
    b;
    port_names = so.so_ports;
    gain = so.so_gain;
    variable = so.so_variable;
    spd = false;
  }

type second_order_stats = {
  inductor_loops : int;
  coupling_density : float;
  chosen_form : string;
}

(* independent cycles in the inductor subgraph (ground included as a
   vertex): every inductor branch whose endpoints are already
   connected closes one loop *)
let count_inductor_loops nl =
  let nn = Netlist.num_nodes nl in
  let parent = Array.init (nn + 1) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let loops = ref 0 in
  List.iter
    (fun (_, n1, n2, _) ->
      let a = find n1 and b = find n2 in
      if a = b then incr loops else parent.(a) <- b)
    (Netlist.inductors nl);
  !loops

let second_order_stats nl =
  let s = Netlist.stats nl in
  let ni = s.Netlist.inductors_ in
  let pairs = ni * (ni - 1) / 2 in
  let coupling_density =
    if pairs = 0 then 0.0 else float_of_int s.Netlist.mutuals /. float_of_int pairs
  in
  let chosen_form =
    match Netlist.classify nl with
    | `Rc -> "first-order RC (G + sC)"
    | `Rl -> "susceptance RL (Γ + sG, gain s)"
    | `Lc -> "s²-variable LC (Γ + s²C, gain s)"
    | `Rlc -> "second-order susceptance (s²M + sD + K) via linearised general form"
    | `General -> "general (not reducible)"
  in
  { inductor_loops = count_inductor_loops nl; coupling_density; chosen_form }
