(** Severity-graded, machine-readable findings.

    One diagnostic type is shared by the whole findings pipeline: the
    static netlist linter ([Analysis.Lint]), the numerical contract
    checker ([Sympvl.Contract]) and the [symor] CLI. A diagnostic
    carries a stable rule [code] (documented in README "Diagnostics &
    linting"), a severity, a human-readable message and, when the
    finding traces back to a netlist card, the 1-based source [line]
    (see {!Netlist.origin}). *)

type severity = Error | Warning | Info

type t = {
  code : string;  (** Stable rule identifier, e.g. ["NET005"]. *)
  severity : severity;
  message : string;
  line : int option;  (** 1-based netlist line, when known. *)
}

exception User_error of string
(** A user-level problem (bad input, unsupported element class, …) —
    the CLI reports these as one-line errors without a backtrace.
    Internal invariant violations must {e not} use this exception. *)

val user_errorf : ('a, unit, string, 'b) format4 -> 'a
(** [user_errorf fmt …] raises {!User_error} with a formatted message. *)

val make : ?line:int -> code:string -> severity:severity -> string -> t

val error : ?line:int -> string -> string -> t
(** [error code message]. *)

val warning : ?line:int -> string -> string -> t

val info : ?line:int -> string -> string -> t

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Orders by severity (errors first), then source line, then code. *)

val sort : t list -> t list

val count : severity -> t list -> int

val worst : t list -> severity option
(** Highest severity present; [None] for an empty report. *)

val exit_code : strict:bool -> t list -> int
(** CLI exit-code contract: [0] when no errors or warnings are
    present (infos are fine), [1] for warnings only, [2] when errors
    are present — or when warnings are present and [strict] promotes
    them to errors. *)

val pp : Format.formatter -> t -> unit
(** [error NET004 (line 7): duplicate element name "R1"]. *)

val to_json : t -> string
(** One finding as a JSON object
    [{"code":…,"severity":…,"message":…,"line":…}] ([line] is [null]
    when unknown). *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects, one per line. *)
