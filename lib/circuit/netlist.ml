type node = int

type element =
  | Resistor of { name : string; n1 : node; n2 : node; ohms : float }
  | Capacitor of { name : string; n1 : node; n2 : node; farads : float }
  | Inductor of { name : string; n1 : node; n2 : node; henries : float }
  | Mutual of { name : string; l1 : string; l2 : string; k : float }
  | Current_source of { name : string; n1 : node; n2 : node; wave : Waveform.t }
  | Voltage_source of { name : string; n1 : node; n2 : node; wave : Waveform.t }
  | Vccs of {
      name : string;
      out_p : node;
      out_n : node;
      in_p : node;
      in_n : node;
      gm : float;
    }
  | Nonlinear_conductance of {
      name : string;
      n1 : node;
      n2 : node;
      i_of_v : float -> float;
      di_dv : float -> float;
    }

type port = { port_name : string; plus : node; minus : node }

type origin = { line : int }

type t = {
  names : (string, node) Hashtbl.t;
  mutable rev_names : string list; (* non-ground node names, newest first *)
  mutable next : node;
  mutable rev_elements : (element * origin option) list;
  mutable rev_ports : (port * origin option) list;
  mutable counter : int;
}

let create () =
  let names = Hashtbl.create 64 in
  Hashtbl.add names "0" 0;
  Hashtbl.add names "gnd" 0;
  Hashtbl.add names "GND" 0;
  { names; rev_names = []; next = 1; rev_elements = []; rev_ports = []; counter = 0 }

let node t name =
  match Hashtbl.find_opt t.names name with
  | Some n -> n
  | None ->
    let n = t.next in
    t.next <- n + 1;
    Hashtbl.add t.names name n;
    t.rev_names <- name :: t.rev_names;
    n

let fresh_node t prefix =
  let rec try_ k =
    let name = Printf.sprintf "%s#%d" prefix k in
    if Hashtbl.mem t.names name then try_ (k + 1) else node t name
  in
  t.counter <- t.counter + 1;
  try_ t.counter

let num_nodes t = t.next - 1

let node_name t n =
  if n = 0 then "0"
  else begin
    let names = Array.of_list (List.rev t.rev_names) in
    if n - 1 < Array.length names then names.(n - 1) else Printf.sprintf "<node %d>" n
  end

let check_node t n what =
  if n < 0 || n >= t.next then
    invalid_arg (Printf.sprintf "Netlist: %s references unknown node %d" what n)

let gen_name t prefix =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s%d" prefix t.counter

let element_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Inductor { name; _ }
  | Mutual { name; _ }
  | Current_source { name; _ }
  | Voltage_source { name; _ }
  | Vccs { name; _ }
  | Nonlinear_conductance { name; _ } ->
    name

let inductors t =
  List.rev
    (List.filter_map
       (fun (e, _) ->
         match e with
         | Inductor { name; n1; n2; henries } -> Some (name, n1, n2, henries)
         | Resistor _ | Capacitor _ | Mutual _ | Current_source _ | Voltage_source _
         | Vccs _ | Nonlinear_conductance _ ->
           None)
       t.rev_elements)

let find_inductor t name =
  let rec go i = function
    | [] -> raise Not_found
    | (n, _, _, _) :: rest -> if String.equal n name then i else go (i + 1) rest
  in
  go 0 (inductors t)

(* Coupling defects that make the inductance matrix ill-defined (as
   opposed to merely indefinite, which |k| >= 1 causes and the linter
   reports as NET008). In insertion order, one entry per defect. *)
let coupling_problems t =
  (* hashed name set: this runs inside every MNA assembly, including
     the 10⁵-inductor PEEC generators where a linear scan per K card
     would be quadratic *)
  let known = Hashtbl.create 256 in
  List.iter
    (fun (e, _) ->
      match e with
      | Inductor { name; _ } -> Hashtbl.replace known name ()
      | Resistor _ | Capacitor _ | Mutual _ | Current_source _ | Voltage_source _
      | Vccs _ | Nonlinear_conductance _ ->
        ())
    t.rev_elements;
  let has_inductor name = Hashtbl.mem known name in
  List.rev
    (List.fold_left
       (fun acc (e, _) ->
         match e with
         | Mutual { name; l1; l2; k } ->
           let acc =
             if k = 0.0 then (name, "zero coupling coefficient") :: acc else acc
           in
           let acc =
             if String.equal l1 l2 then
               (name, Printf.sprintf "couples inductor %s to itself" l1) :: acc
             else acc
           in
           List.fold_left
             (fun acc l ->
               if has_inductor l then acc
               else (name, Printf.sprintf "references unknown inductor %s" l) :: acc)
             acc
             (if String.equal l1 l2 then [ l1 ] else [ l1; l2 ])
         | Resistor _ | Capacitor _ | Inductor _ | Current_source _
         | Voltage_source _ | Vccs _ | Nonlinear_conductance _ ->
           acc)
       [] (List.rev t.rev_elements))

(* The raw [add] accepts negative element values (reduced-circuit
   synthesis legitimately produces them, paper Section 6) and
   out-of-range coupling coefficients (so files carrying them can be
   parsed and then reported by the linter with line provenance). The
   named wrappers below enforce positivity / |k| < 1 for hand-written
   circuits. *)
let add t ?origin e =
  (match e with
  | Resistor { name; n1; n2; ohms } ->
    check_node t n1 name;
    check_node t n2 name;
    if ohms = 0.0 || not (Float.is_finite ohms) then
      invalid_arg (name ^ ": resistance must be finite and nonzero")
  | Capacitor { name; n1; n2; farads } ->
    check_node t n1 name;
    check_node t n2 name;
    if farads = 0.0 || not (Float.is_finite farads) then
      invalid_arg (name ^ ": capacitance must be finite and nonzero")
  | Inductor { name; n1; n2; henries } ->
    check_node t n1 name;
    check_node t n2 name;
    if henries = 0.0 || not (Float.is_finite henries) then
      invalid_arg (name ^ ": inductance must be finite and nonzero")
  | Mutual { name; k; _ } ->
    (* Self-coupling and unknown-inductor references are accepted here
       so parsed files carrying them reach the linter (NET017) with
       line provenance; [add_mutual] below stays strict, and the MNA
       assembly guards on {!coupling_problems}. *)
    if not (Float.is_finite k) then invalid_arg (name ^ ": coupling must be finite")
  | Current_source { name; n1; n2; _ } | Voltage_source { name; n1; n2; _ } ->
    check_node t n1 name;
    check_node t n2 name
  | Vccs { name; out_p; out_n; in_p; in_n; _ } ->
    check_node t out_p name;
    check_node t out_n name;
    check_node t in_p name;
    check_node t in_n name
  | Nonlinear_conductance { name; n1; n2; _ } ->
    check_node t n1 name;
    check_node t n2 name);
  t.rev_elements <- (e, origin) :: t.rev_elements

let add_resistor t ?name n1 n2 ohms =
  let name = match name with Some n -> n | None -> gen_name t "R" in
  if ohms <= 0.0 then invalid_arg (name ^ ": resistance must be positive");
  add t (Resistor { name; n1; n2; ohms })

let add_capacitor t ?name n1 n2 farads =
  let name = match name with Some n -> n | None -> gen_name t "C" in
  if farads <= 0.0 then invalid_arg (name ^ ": capacitance must be positive");
  add t (Capacitor { name; n1; n2; farads })

let add_inductor t ?name n1 n2 henries =
  let name = match name with Some n -> n | None -> gen_name t "L" in
  if henries <= 0.0 then invalid_arg (name ^ ": inductance must be positive");
  add t (Inductor { name; n1; n2; henries })

let add_mutual t ?name l1 l2 k =
  let name = match name with Some n -> n | None -> gen_name t "K" in
  if k = 0.0 || Float.abs k >= 1.0 then
    invalid_arg (name ^ ": coupling must satisfy 0 < |k| < 1");
  if String.equal l1 l2 then invalid_arg (name ^ ": self-coupling");
  (try
     ignore (find_inductor t l1);
     ignore (find_inductor t l2)
   with Not_found -> invalid_arg (name ^ ": coupling references unknown inductor"));
  add t (Mutual { name; l1; l2; k })

let add_current_source t ?name n1 n2 wave =
  let name = match name with Some n -> n | None -> gen_name t "I" in
  add t (Current_source { name; n1; n2; wave })

let add_voltage_source t ?name n1 n2 wave =
  let name = match name with Some n -> n | None -> gen_name t "V" in
  add t (Voltage_source { name; n1; n2; wave })

let add_thevenin_driver t ?name node r wave =
  let name = match name with Some n -> n | None -> gen_name t "V" in
  let internal = fresh_node t (name ^ "_drv") in
  add t (Voltage_source { name; n1 = internal; n2 = 0; wave });
  add_resistor t ~name:(name ^ "_rs") internal node r

let add_port t ?origin port_name ?(minus = 0) plus =
  check_node t plus port_name;
  check_node t minus port_name;
  t.rev_ports <- ({ port_name; plus; minus }, origin) :: t.rev_ports

let elements t = List.rev_map fst t.rev_elements

let elements_with_origin t = List.rev t.rev_elements

let ports t = List.rev_map fst t.rev_ports

let ports_with_origin t = List.rev t.rev_ports

let origin_of t name =
  let rec go = function
    | [] -> None
    | (e, o) :: rest -> if String.equal (element_name e) name then Some o else go rest
  in
  (* walk in insertion order so duplicates resolve to the first one *)
  match go (List.rev t.rev_elements) with Some o -> o | None -> None

let port_count t = List.length t.rev_ports

type stats = {
  nodes : int;
  resistors : int;
  capacitors : int;
  inductors_ : int;
  mutuals : int;
  sources : int;
  vsources : int;
  vccs_ : int;
  nonlinear : int;
}

let stats t =
  let z =
    {
      nodes = num_nodes t;
      resistors = 0;
      capacitors = 0;
      inductors_ = 0;
      mutuals = 0;
      sources = 0;
      vsources = 0;
      vccs_ = 0;
      nonlinear = 0;
    }
  in
  List.fold_left
    (fun s (e, _) ->
      match e with
      | Resistor _ -> { s with resistors = s.resistors + 1 }
      | Capacitor _ -> { s with capacitors = s.capacitors + 1 }
      | Inductor _ -> { s with inductors_ = s.inductors_ + 1 }
      | Mutual _ -> { s with mutuals = s.mutuals + 1 }
      | Current_source _ -> { s with sources = s.sources + 1 }
      | Voltage_source _ -> { s with vsources = s.vsources + 1 }
      | Vccs _ -> { s with vccs_ = s.vccs_ + 1 }
      | Nonlinear_conductance _ -> { s with nonlinear = s.nonlinear + 1 })
    z t.rev_elements

let all_values_positive t =
  List.for_all
    (fun (e, _) ->
      match e with
      | Resistor { ohms; _ } -> ohms > 0.0
      | Capacitor { farads; _ } -> farads > 0.0
      | Inductor { henries; _ } -> henries > 0.0
      | Mutual _ | Current_source _ | Voltage_source _ | Vccs _
      | Nonlinear_conductance _ ->
        true)
    t.rev_elements

let is_linear_rlc t =
  List.for_all
    (fun (e, _) ->
      match e with
      | Resistor _ | Capacitor _ | Inductor _ | Mutual _ | Current_source _ -> true
      | Voltage_source _ | Vccs _ | Nonlinear_conductance _ -> false)
    t.rev_elements

let classify t =
  let s = stats t in
  if s.vccs_ > 0 || s.nonlinear > 0 then `General
  else begin
    match (s.resistors > 0, s.capacitors > 0, s.inductors_ > 0) with
    | _, _, false -> `Rc (* R and/or C only (pure R / pure C degenerate here) *)
    | true, false, true -> `Rl
    | false, true, true -> `Lc
    | false, false, true -> `Rl (* pure L treated via the RL form *)
    | true, true, true -> `Rlc
  end

let pp_stats ppf s =
  Format.fprintf ppf
    "nodes=%d R=%d C=%d L=%d K=%d I=%d V=%d VCCS=%d NL=%d" s.nodes s.resistors
    s.capacitors s.inductors_ s.mutuals s.sources s.vsources s.vccs_ s.nonlinear
