(** Modified nodal analysis (MNA) assembly.

    Builds the symmetric matrix pencil [(G, C)] and terminal incidence
    [B] of the paper's eq. (3), either in the general RLC form (node
    voltages plus inductor currents as unknowns) or in the specialised
    positive-semi-definite forms for RC, RL and LC circuits
    (Section 2.2). The multi-port transfer function is

      [Z(s) = Bᵀ (G + sC)⁻¹ B]              (general RLC, RC)
      [Z(s) = s · Bᵀ (G + sC)⁻¹ B]          (RL, eq. (7))
      [Z(s) = s · Bᵀ (G + s²C)⁻¹ B]         (LC, eq. (9))

    The [gain] field records which of these applies. *)

type gain =
  | Unit  (** [Z = BᵀK⁻¹B] directly. *)
  | Times_s  (** Multiply by [s] after evaluation (RL and LC forms). *)

type variable =
  | S  (** Pencil in [s]. *)
  | S_squared  (** Pencil in [σ = s²] (LC form, eq. (9)). *)

type t = {
  n : int;  (** Pencil dimension. *)
  n_nodes : int;  (** Leading node-voltage unknowns. *)
  g : Sparse.Csr.t;  (** Symmetric [G]. *)
  c : Sparse.Csr.t;  (** Symmetric [C]. *)
  b : Linalg.Mat.t;  (** [n × p] terminal incidence. *)
  port_names : string array;
  gain : gain;
  variable : variable;
  spd : bool;
      (** True when both [G] and [C] are positive semi-definite by
          construction (RC/RL/LC forms) — the provably stable/passive
          path of Section 5. *)
}

val assemble : Netlist.t -> t
(** General RLC form (eq. (3)): unknowns are node voltages followed by
    inductor currents; [G], [C] symmetric indefinite. Requires a
    linear RLC netlist with at least one port; raises
    {!Diagnostic.User_error} otherwise, naming the first offending
    element with its source line when available. *)

val assemble_rc : Netlist.t -> t
(** RC form: [G = Aᵍᵀ𝒢Aᵍ], [C = Aᶜᵀ𝒞Aᶜ], both PSD. Rejects netlists
    containing inductors. *)

val assemble_rl : Netlist.t -> t
(** RL form (eq. (7)): [G = Aˡᵀℒ⁻¹Aˡ], [C = Aᵍᵀ𝒢Aᵍ], both PSD;
    [Z(s) = s·Bᵀ(G+sC)⁻¹B]. Rejects capacitors. *)

val assemble_lc : Netlist.t -> t
(** LC form (eq. (9)): [G = Aˡᵀℒ⁻¹Aˡ], [C = Aᶜᵀ𝒞Aᶜ], both PSD, pencil
    in [σ = s²]; [Z(s) = s·Bᵀ(G+s²C)⁻¹B]. Rejects resistors. *)

val auto : Netlist.t -> t
(** Dispatch on {!Netlist.classify}: the specialised PSD form when the
    topology allows it, the general form otherwise. *)

val pencil_pattern : t -> Sparse.Csr.t
(** The union sparsity pattern of [G] and [C] (all values 1): the
    structure of [G + sC] for generic [s ≠ 0], exactly as stamped —
    entries that happen to cancel numerically are still structural
    nonzeros. This is what the structural analyzer
    ([Analysis.Struct_rules], [symor analyze]) certifies solvability
    and predicts factorisation fill on. *)

val unknown_label : t -> int -> string
(** Human-readable label of pencil row/column [row]:
    ["node-voltage unknown k"] (1-based MNA node index) for the
    leading [n_nodes] rows, ["inductor-current unknown k"] for the
    trailing ones. Use [Analysis.Struct_rules] when the netlist is
    available — it resolves actual node names and source lines. *)

val inductance_matrix : Netlist.t -> Linalg.Mat.t
(** The (dense) inductance matrix [ℒ] including mutual couplings, in
    {!Netlist.inductors} order. Symmetric positive definite for
    [|k| < 1]. *)

val observe_inductor_current : Netlist.t -> t -> string -> Linalg.Vec.t
(** [observe_inductor_current nl mna l_name] is a vector [w] of length
    [mna.n] such that [wᵀ x] reproduces the current through the named
    inductor:

    - general RLC form: the canonical basis vector selecting that
      inductor-current unknown;
    - LC form: [Aˡᵀ ℒ⁻¹ b] with [b] selecting the inductor — the
      column the paper appends to [B] for the PEEC two-port output
      ([l] in Section 7.1).

    Raises {!Diagnostic.User_error} for the RC/RL forms. *)

val append_output_column : t -> Linalg.Vec.t -> string -> t
(** Widen [B] with an extra observation column (generalised port). *)
