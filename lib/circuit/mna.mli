(** Modified nodal analysis (MNA) assembly.

    Builds the symmetric matrix pencil [(G, C)] and terminal incidence
    [B] of the paper's eq. (3), either in the general RLC form (node
    voltages plus inductor currents as unknowns) or in the specialised
    positive-semi-definite forms for RC, RL and LC circuits
    (Section 2.2). The multi-port transfer function is

      [Z(s) = Bᵀ (G + sC)⁻¹ B]              (general RLC, RC)
      [Z(s) = s · Bᵀ (G + sC)⁻¹ B]          (RL, eq. (7))
      [Z(s) = s · Bᵀ (G + s²C)⁻¹ B]         (LC, eq. (9))

    The [gain] field records which of these applies. *)

type gain =
  | Unit  (** [Z = BᵀK⁻¹B] directly. *)
  | Times_s  (** Multiply by [s] after evaluation (RL and LC forms). *)

type variable =
  | S  (** Pencil in [s]. *)
  | S_squared  (** Pencil in [σ = s²] (LC form, eq. (9)). *)

type t = {
  n : int;  (** Pencil dimension. *)
  n_nodes : int;  (** Leading node-voltage unknowns. *)
  g : Sparse.Csr.t;  (** Symmetric [G]. *)
  c : Sparse.Csr.t;  (** Symmetric [C]. *)
  b : Linalg.Mat.t;  (** [n × p] terminal incidence. *)
  port_names : string array;
  gain : gain;
  variable : variable;
  spd : bool;
      (** True when both [G] and [C] are positive semi-definite by
          construction (RC/RL/LC forms) — the provably stable/passive
          path of Section 5. *)
}

val assemble : Netlist.t -> t
(** General RLC form (eq. (3)): unknowns are node voltages followed by
    inductor currents; [G], [C] symmetric indefinite. Requires a
    linear RLC netlist with at least one port; raises
    {!Diagnostic.User_error} otherwise, naming the first offending
    element with its source line when available. *)

val assemble_rc : Netlist.t -> t
(** RC form: [G = Aᵍᵀ𝒢Aᵍ], [C = Aᶜᵀ𝒞Aᶜ], both PSD. Rejects netlists
    containing inductors. *)

val assemble_rl : Netlist.t -> t
(** RL form (eq. (7)): [G = Aˡᵀℒ⁻¹Aˡ], [C = Aᵍᵀ𝒢Aᵍ], both PSD;
    [Z(s) = s·Bᵀ(G+sC)⁻¹B]. Rejects capacitors. *)

val assemble_lc : Netlist.t -> t
(** LC form (eq. (9)): [G = Aˡᵀℒ⁻¹Aˡ], [C = Aᶜᵀ𝒞Aᶜ], both PSD, pencil
    in [σ = s²]; [Z(s) = s·Bᵀ(G+s²C)⁻¹B]. Rejects resistors. *)

val auto : Netlist.t -> t
(** Dispatch on {!Netlist.classify}: the specialised PSD form when the
    topology allows it, the general form otherwise. *)

val pencil_pattern : t -> Sparse.Csr.t
(** The union sparsity pattern of [G] and [C] (all values 1): the
    structure of [G + sC] for generic [s ≠ 0], exactly as stamped —
    entries that happen to cancel numerically are still structural
    nonzeros. This is what the structural analyzer
    ([Analysis.Struct_rules], [symor analyze]) certifies solvability
    and predicts factorisation fill on. *)

val unknown_label : t -> int -> string
(** Human-readable label of pencil row/column [row]:
    ["node-voltage unknown k"] (1-based MNA node index) for the
    leading [n_nodes] rows, ["inductor-current unknown k"] for the
    trailing ones. Use [Analysis.Struct_rules] when the netlist is
    available — it resolves actual node names and source lines. *)

val inductance_matrix : Netlist.t -> Linalg.Mat.t
(** The (dense) inductance matrix [ℒ] including mutual couplings, in
    {!Netlist.inductors} order. Symmetric positive definite for
    [|k| < 1]. *)

val observe_inductor_current : Netlist.t -> t -> string -> Linalg.Vec.t
(** [observe_inductor_current nl mna l_name] is a vector [w] of length
    [mna.n] such that [wᵀ x] reproduces the current through the named
    inductor:

    - general RLC form: the canonical basis vector selecting that
      inductor-current unknown;
    - LC form: [Aˡᵀ ℒ⁻¹ b] with [b] selecting the inductor — the
      column the paper appends to [B] for the PEEC two-port output
      ([l] in Section 7.1).

    Raises {!Diagnostic.User_error} for the RC/RL forms. *)

val append_output_column : t -> Linalg.Vec.t -> string -> t
(** Widen [B] with an extra observation column (generalised port). *)

(** {1 Second-order (susceptance) form}

    Eliminating the inductor currents from the general RLC form yields
    the quadratic (second-order) pencil of Freund's SPRIM line of
    work:

      [(s²M + sD + K)·v = s·B·u],   [Z(s) = s·Bᵀ(s²M + sD + K)⁻¹B]

    with [M = Aᶜᵀ𝒞Aᶜ] (nodal capacitance), [D = Aᵍᵀ𝒢Aᵍ] (nodal
    conductance) and [K = Aˡᵀℒ⁻¹Aˡ] (nodal inductive susceptance,
    mutual k-couplings folded into [ℒ]). All three blocks are
    symmetric PSD for positive element values, which is what the
    structure-preserving [`Sprim] engine and RLCk re-synthesis rely
    on. *)

type second_order = {
  so_n : int;  (** Node count — dimension of the quadratic pencil. *)
  so_ni : int;  (** Inductor branches eliminated into [so_k]. *)
  so_m : Sparse.Csr.t;  (** [M] — nodal capacitance, symmetric PSD. *)
  so_d : Sparse.Csr.t;  (** [D] — nodal conductance, symmetric PSD. *)
  so_k : Sparse.Csr.t;  (** [K] — nodal susceptance [Aˡᵀℒ⁻¹Aˡ]. *)
  so_b : Linalg.Mat.t;  (** [so_n × p] nodal terminal incidence. *)
  so_ports : string array;
  so_gain : gain;  (** Always [Times_s] — the honest transfer gain. *)
  so_variable : variable;  (** Always [S]: quadratic pencil in [s]. *)
}

val assemble_second_order : Netlist.t -> second_order
(** Susceptance-form assembly. Requires a linear RLC netlist with
    ports and well-formed couplings (raises {!Diagnostic.User_error}
    otherwise). Inductor-free netlists get [K = 0]. The [ℒ⁻¹]
    elimination uses a dense Cholesky of [ℒ] — intended for the small
    and mid-size regime; the 10⁴⁺-inductor PEEC workloads should stay
    on {!assemble}, whose [−ℒ] block is stamped sparsely. *)

val linearize : second_order -> t
(** Companion-form linearisation back to a first-order pencil, with
    state [x = (v, s·M·v)]:

      [G' = [[K, 0]; [0, I]]],  [C' = [[D, I]; [−M, 0]]]

    The pencil [G' + sC'] is nonsingular exactly where the quadratic
    pencil is (even for singular [M]), and the transfer function
    matches {!assemble} on the same netlist exactly (the qcheck suite
    pins this). Metadata: [gain = Times_s], [variable = S],
    [n_nodes = so_n].

    {b The companion pencil is nonsymmetric} (the symmetric companion
    [[[K,0];[0,−M]] + s[[D,M];[M,0]]] is singular for every [s]
    whenever a node carries no capacitance). Evaluate it with dense
    complex solves; do not feed it to the symmetric skyline AC /
    reduction fast paths, which assume [G = Gᵀ], [C = Cᵀ]. *)

type second_order_stats = {
  inductor_loops : int;
      (** Independent cycles in the inductor subgraph (ground
          included) — each closes an inductor loop that the
          susceptance form resolves through [ℒ⁻¹]. *)
  coupling_density : float;
      (** K cards over inductor pairs: [mutuals / (ni·(ni−1)/2)]. *)
  chosen_form : string;
      (** Human-readable name of the MNA form {!auto} would pick. *)
}

val second_order_stats : Netlist.t -> second_order_stats
(** Second-order structure report used by [symor info] / [symor
    analyze]. *)
