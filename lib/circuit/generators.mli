(** Synthetic circuit generators.

    These stand in for the paper's proprietary test circuits (see
    DESIGN.md §3): a PEEC-style LC structure, a multi-pin package
    model, and an extracted crosstalk RC interconnect, plus smaller
    parametric families used by tests and ablations. All generators
    are deterministic (any randomness flows through an explicit
    seed). *)

val rc_line :
  ?r_per_section:float ->
  ?c_per_section:float ->
  ?output_port:bool ->
  sections:int ->
  unit ->
  Netlist.t
(** Uniform RC ladder; port [in] at the driving end and, when
    [output_port] (default true), port [out] at the far end.
    Defaults: 1 Ω / 1 pF per section. *)

val rc_tree :
  ?r_per_segment:float -> ?c_per_segment:float -> depth:int -> unit -> Netlist.t
(** Balanced binary RC tree of the given depth; port [root] at the
    root, port [leaf] at the left-most leaf. A classic clock-tree
    shape with multiple time constants. *)

val coupled_rc_bus :
  ?r_per_section:float ->
  ?c_ground:float ->
  ?c_coupling:float ->
  ?coupling_span:int ->
  ?terminate:float ->
  wires:int ->
  sections:int ->
  unit ->
  Netlist.t
(** The Fig.-5-class workload: [wires] parallel RC lines, each
    [sections] long, with dense wire-to-wire coupling capacitors at
    every section between every pair of wires whose section offset is
    at most [coupling_span] (default 1, i.e. same and adjacent
    sections). One port at the near end of every wire; [terminate]
    adds a load resistor of that value from the far end of every wire
    to ground (a nonsingular conductance matrix: no expansion shift
    needed). Defaults: 10 Ω, 5 fF ground, 25 fF coupling. *)

val package_model :
  ?sections:int ->
  ?l_section:float ->
  ?c_section:float ->
  ?r_section:float ->
  ?k_neighbour:float ->
  ?c_coupling:float ->
  ?pins:int ->
  ?signal_pins:int ->
  unit ->
  Netlist.t
(** The Fig.-3/4-class workload: [pins] package pins, each an RLC
    ladder ([sections] series R–L segments with shunt C), with mutual
    inductance [k_neighbour] and coupling capacitance [c_coupling]
    between neighbouring pins. The first [signal_pins] pins get two
    ports each: [P<i>ext] (board side) and [P<i>int] (die side).
    Defaults: 64 pins, 8 signal pins, 10 sections, 1 nH / 0.2 pF /
    0.05 Ω per section, k = 0.35, 0.1 pF coupling — resonances in the
    0.1–10 GHz band like the paper's package. *)

val peec_mesh :
  ?l_segment:float ->
  ?c_node:float ->
  ?k0:float ->
  ?chord_every:int ->
  segments:int ->
  unit ->
  Netlist.t * string
(** The Fig.-1/2-class workload: a closed ring of [segments] inductive
    conductor segments (plus stiffening chords every [chord_every]
    segments, default 7) with a capacitor to ground at every node and
    distance-decaying mutual coupling [k(d) = k0 / d^1.5] between all
    segment pairs — a PEEC-flavoured dense [ℒ]. No node has a DC path
    to ground, so the nodal [G = AˡᵀL⁻¹Aˡ] is singular exactly as in
    the paper (frequency shift required). Port [drive] sits at node 1;
    the returned string names the output inductor whose current is the
    paper's second observation column. Defaults: 1 nH segments, 1 pF
    nodes, k0 = 0.12. *)

val peec_partial :
  ?r_segment:float ->
  ?l_segment:float ->
  ?c_node:float ->
  ?k0:float ->
  ?k_cross:float ->
  ?coupling_window:int ->
  ?r_term:float ->
  ?ports:int ->
  conductors:int ->
  segments:int ->
  unit ->
  Netlist.t
(** Partial-inductance RLCk bus, the MORCIC regime (10⁴–10⁵ coupled
    partial inductances): [conductors] parallel conductors of
    [segments] series R–L segments with shunt C, every partial
    inductance k-coupled to the next [coupling_window] segments of its
    own conductor ([k(d) = k0/d^1.5]) and to the adjacent conductor
    within the same window ([k(o) = k_cross/(1+|o|)^1.5]) — a sparse,
    strictly diagonally dominant ℒ (positive definite by
    construction). Far ends are terminated with [r_term] to ground, so
    the general-form [G] is nonsingular at DC. Ports [drv<i>] at the
    near end of the first [ports] conductors (default
    [min conductors 4]). Defaults: 0.05 Ω / 1 nH / 0.2 pF per segment,
    k0 = 0.08, k_cross = 0.04, window 4 — total element count
    ≈ [conductors·segments·(3 + 3·coupling_window + 1)]. *)

val rlc_line :
  ?r_per_section:float ->
  ?l_per_section:float ->
  ?c_per_section:float ->
  ?r_load:float ->
  sections:int ->
  unit ->
  Netlist.t
(** Lossy LC transmission-line ladder (general RLC form exercises the
    indefinite-[J] path). Ports at both ends; [r_load] terminates the
    far end to ground (making [G] nonsingular). Defaults:
    0.1 Ω / 1 nH / 1 pF. *)

val rl_ladder :
  ?r_per_section:float ->
  ?l_per_section:float ->
  ?shorted_end:bool ->
  sections:int ->
  unit ->
  Netlist.t
(** RL ladder (the paper's RL special case). Port at the near end;
    [shorted_end] adds an inductive short to ground at the far end,
    which makes the RL-form [G] nonsingular (unshifted expansion,
    provable stability/passivity). *)

val rc_grid :
  ?r_per_edge:float -> ?c_per_node:float -> ?pitch_pads:int -> rows:int -> cols:int ->
  unit -> Netlist.t
(** Power-grid-style 2D RC mesh: resistors along the grid edges, a
    grounded capacitor at every node, and a port every [pitch_pads]
    nodes along the boundary (default 4) — a workload with genuinely
    two-dimensional sparsity (exercises RCM / skyline fill). The
    corner node is tied to ground through [r_per_edge] so the grid has
    a DC path. Defaults: 2 Ω edges, 10 fF nodes. *)

val random_rc :
  ?ports:int -> nodes:int -> extra_edges:int -> seed:int -> unit -> Netlist.t
(** Random connected RC network: a random resistor spanning tree over
    [nodes] nodes plus [extra_edges] random resistors, a grounded
    capacitor at every node and random coupling capacitors. [ports]
    (default 2) random distinct port nodes. Deterministic in [seed];
    used by property tests. *)
