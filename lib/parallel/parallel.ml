module Pool = struct
  type t = {
    jobs : int;
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable job : (unit -> unit) option; (* every worker runs the same thunk *)
    mutable generation : int; (* bumped once per submitted batch *)
    mutable pending : int; (* workers still inside the current batch *)
    mutable stop : bool;
    mutable domains : unit Domain.t array;
    busy : Mutex.t; (* held while a loop runs; nested loops degrade to sequential *)
  }

  let jobs t = t.jobs

  let rec worker t last_gen =
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = last_gen do
      Condition.wait t.work_ready t.mutex
    done;
    if t.stop then Mutex.unlock t.mutex
    else begin
      let gen = t.generation in
      let job = match t.job with Some f -> f | None -> fun () -> () in
      Mutex.unlock t.mutex;
      (* the thunk traps its own exceptions; this is a backstop so a
         worker domain can never die and leave a batch hanging. A trap
         firing means the thunk's own handler failed — record it so a
         dying batch is at least visible in --stats instead of being
         silently dropped. *)
      (try job ()
       with e ->
         if Obs.tracing () then
           Obs.instant
             ~args:[ ("exn", Obs.Str (Printexc.to_string e)) ]
             "pool.worker_trap";
         Obs.count "pool.worker_trap" 1);
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.work_done;
      Mutex.unlock t.mutex;
      worker t gen
    end

  let create ~jobs =
    let jobs = max 1 jobs in
    let t =
      {
        jobs;
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        job = None;
        generation = 0;
        pending = 0;
        stop = false;
        domains = [||];
        busy = Mutex.create ();
      }
    in
    (* never oversubscribe the machine: a spawned domain beyond the
       recommended count only adds scheduling overhead to every batch
       (measured 8% per-point regression at jobs=2 on a 1-core box).
       The pool keeps the requested job count for chunk sizing; with no
       spawned workers parallel_for degrades to the sequential loop —
       results are bitwise identical either way. *)
    let spawn = max 0 (min jobs (Domain.recommended_domain_count ()) - 1) in
    if spawn > 0 then
      t.domains <- Array.init spawn (fun _ -> Domain.spawn (fun () -> worker t 0));
    t

  let shutdown t =
    if Array.length t.domains > 0 then begin
      Mutex.lock t.mutex;
      t.stop <- true;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      Array.iter Domain.join t.domains;
      t.domains <- [||]
    end

  let with_pool ~jobs f =
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

  (* run [job] on every worker plus the calling domain, return when all
     are done. Caller holds [t.busy]. *)
  let run_batch t job =
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    t.pending <- Array.length t.domains;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.mutex;
    job ();
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.work_done t.mutex
    done;
    t.job <- None;
    Mutex.unlock t.mutex

  let parallel_for t ?chunk n body =
    if n > 0 then
      (* in race mode a multi-job loop goes through the checked batch
         even when no worker was actually spawned (1-core box):
         run_batch degenerates to running the thunk on the caller, and
         the claim/coverage checks still hold. With sanitizers off the
         degrade condition is exactly the historical one. *)
      if
        t.jobs = 1 || n = 1
        || (Array.length t.domains = 0 && not (San.race ()))
        || not (Mutex.try_lock t.busy)
      then
        for i = 0 to n - 1 do
          body i
        done
      else
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.busy)
          (fun () ->
            let chunk =
              match chunk with
              | Some c -> max 1 c
              | None -> max 1 (n / (4 * t.jobs))
            in
            let nchunks = (n + chunk - 1) / chunk in
            if Obs.tracing () then
              Obs.span_begin
                ~args:
                  [ ("n", Obs.Int n); ("chunks", Obs.Int nchunks); ("jobs", Obs.Int t.jobs) ]
                "pool.batch";
            (* checked-pool mode (SYMOR_SAN=race): every index claims
               its ownership slot before the body runs, the chunk claim
               order is perturbed by a seeded permutation so schedule-
               dependent bugs surface, and the join verifies coverage.
               Slot→index assignment is untouched, so results stay
               bitwise identical. *)
            let batch = if San.race () then Some (San.Race.batch_begin ~n) else None in
            let perm =
              match batch with
              | Some _ -> San.Race.permute ~seed:(San.Race.schedule_seed ()) nchunks
              | None -> [||]
            in
            let body =
              match batch with
              | Some b ->
                fun i ->
                  San.Race.claim b i;
                  body i
              | None -> body
            in
            let next = Atomic.make 0 in
            let err = Atomic.make None in
            let thunk () =
              let continue = ref true in
              while !continue do
                let c = Atomic.fetch_and_add next 1 in
                if c >= nchunks || Atomic.get err <> None then continue := false
                else begin
                  let c = match batch with Some _ -> perm.(c) | None -> c in
                  try
                    for i = c * chunk to min n ((c + 1) * chunk) - 1 do
                      body i
                    done
                  with e ->
                    let bt = Printexc.get_raw_backtrace () in
                    ignore (Atomic.compare_and_set err None (Some (e, bt)))
                end
              done
            in
            run_batch t thunk;
            if Obs.tracing () then Obs.span_end ();
            match Atomic.get err with
            | Some (e, bt) ->
              Option.iter San.Race.batch_abort batch;
              Printexc.raise_with_backtrace e bt
            | None -> Option.iter San.Race.batch_end batch)

  let parallel_map t ?chunk n f =
    if n <= 0 then [||]
    else begin
      (* evaluate slot 0 on the caller to seed the result array; the
         remaining slots are filled in place, so out.(i) = f i holds
         regardless of which domain computed it *)
      let out = Array.make n (f 0) in
      if n > 1 then parallel_for t ?chunk (n - 1) (fun i -> out.(i + 1) <- f (i + 1));
      out
    end
end

let default_jobs () =
  let auto () = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "SYMOR_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | _ -> auto ())
  | None -> auto ()

(* All process-wide pool state — the shared pool, the requested job
   count and the per-count pool cache — is guarded by one mutex:
   [pool_for] and [get] are safe to call from a worker domain (a
   nested kernel asking for an explicit-jobs pool), and two racing
   callers must agree on one pool per job count or determinism is
   gone. The mutex is never held while waiting for pool work, so it
   cannot deadlock against a running batch. *)
let state_mutex = Mutex.create ()

let shared : Pool.t option ref = ref None (* guarded by state_mutex *)

let requested : int option ref = ref None (* guarded by state_mutex *)

(* explicit-jobs pools, cached by job count: an AC sweep called in a
   loop (bench, adaptive reduction) must not pay domain spawn/join per
   call — that cost dwarfs the sweep itself at small point counts *)
let sized : (int, Pool.t) Hashtbl.t = Hashtbl.create 4 (* guarded by state_mutex *)

let jobs () =
  Mutex.lock state_mutex;
  let j =
    match !shared with
    | Some p -> Pool.jobs p
    | None -> ( match !requested with Some j -> j | None -> default_jobs ())
  in
  Mutex.unlock state_mutex;
  j

let set_jobs j =
  let j = max 1 j in
  Mutex.lock state_mutex;
  requested := Some j;
  let stale =
    match !shared with
    | Some p when Pool.jobs p <> j ->
      shared := None;
      Some p
    | _ -> None
  in
  Mutex.unlock state_mutex;
  (* join the replaced pool's domains outside the lock: a worker of
     some other pool may be blocked on [jobs ()] right now *)
  Option.iter Pool.shutdown stale

let pool_for ~jobs =
  let jobs = max 1 jobs in
  Mutex.lock state_mutex;
  match Hashtbl.find_opt sized jobs with
  | Some p ->
    Mutex.unlock state_mutex;
    p
  | None -> (
    (* create under the lock: two racing callers must get the same
       pool, not spawn one each (the san race test pins this) *)
    match Pool.create ~jobs with
    | p ->
      Hashtbl.add sized jobs p;
      Mutex.unlock state_mutex;
      p
    | exception e ->
      Mutex.unlock state_mutex;
      raise e)

let pool_count () =
  Mutex.lock state_mutex;
  let n = Hashtbl.length sized in
  Mutex.unlock state_mutex;
  n

let get () =
  Mutex.lock state_mutex;
  match !shared with
  | Some p ->
    Mutex.unlock state_mutex;
    p
  | None -> (
    let j = match !requested with Some j -> j | None -> default_jobs () in
    match Pool.create ~jobs:j with
    | p ->
      shared := Some p;
      Mutex.unlock state_mutex;
      p
    | exception e ->
      Mutex.unlock state_mutex;
      raise e)

let () =
  at_exit (fun () ->
      Mutex.lock state_mutex;
      let pools = Hashtbl.fold (fun _ p acc -> p :: acc) sized [] in
      Hashtbl.reset sized;
      let s = !shared in
      shared := None;
      Mutex.unlock state_mutex;
      Option.iter Pool.shutdown s;
      List.iter Pool.shutdown pools)
