(** Fixed domain pool for deterministic data-parallel loops.

    A {!Pool.t} owns [jobs − 1] worker domains (the calling domain is
    the remaining worker); independent loop iterations are distributed
    over index chunks claimed from an atomic counter. Results are a
    pure function of the iteration index, so any computation whose
    iterations do not communicate produces output {e bitwise identical}
    to a sequential run at every job count — the pool changes the
    schedule, never the arithmetic.

    Built on the OCaml 5 stdlib only ([Domain], [Mutex], [Condition],
    [Atomic]); at [jobs = 1] no domain is ever spawned and every loop
    degrades to a plain sequential [for]. *)

module Pool : sig
  type t

  val create : jobs:int -> t
  (** [create ~jobs] starts a pool of [max 1 jobs] workers. At most
      [Domain.recommended_domain_count () − 1] domains are actually
      spawned (the calling domain is always a worker): oversubscribing
      the machine only slows every batch down, and with no spawned
      workers the loops degrade to sequential — bitwise-identical
      results either way. *)

  val jobs : t -> int

  val shutdown : t -> unit
  (** Stop and join the worker domains. Idempotent. The pool must not
      be used afterwards. *)

  val with_pool : jobs:int -> (t -> 'a) -> 'a
  (** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
      afterwards (also on exception). *)

  val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
  (** [parallel_for pool n body] runs [body i] for [i ∈ [0, n)],
      distributing chunks of [chunk] consecutive indices (default
      [n / (4·jobs)], at least 1) over the workers. Iterations must be
      independent. The first exception raised by any iteration is
      re-raised in the caller after all workers have stopped. Nested
      calls (from inside a [body]) run sequentially rather than
      deadlock.

      Under [SYMOR_SAN=race] ({!San.race}) pooled batches run {e
      checked}: every index claims a per-batch ownership slot before
      its body runs, the chunk claim order is perturbed by a seeded
      permutation ([SYMOR_SAN_SEED]) to surface schedule-dependent
      bugs, and the join verifies every slot ran exactly once —
      violations raise {!San.Violation} in the caller. Slot→index
      assignment is unchanged, so checked results are still bitwise
      identical to sequential runs. *)

  val parallel_map : t -> ?chunk:int -> int -> (int -> 'a) -> 'a array
  (** [parallel_map pool n f] is [Array.init n f] with the iterations
      distributed as in {!parallel_for}; slot [i] always holds [f i],
      so the result is independent of the schedule. *)
end

val default_jobs : unit -> int
(** [$SYMOR_JOBS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count () − 1] (at least 1). *)

val set_jobs : int -> unit
(** Fix the job count of the shared pool (the [--jobs] CLI flag).
    Replaces an already-running shared pool. *)

val get : unit -> Pool.t
(** The lazily-created shared pool, sized by {!set_jobs} if called,
    else {!default_jobs}. Shut down automatically at exit. *)

val pool_for : jobs:int -> Pool.t
(** A pool with an explicit job count, cached per count and reused
    across calls (shut down at exit) — callers that pass [?jobs]
    repeatedly must not pay domain spawn/join on every invocation.
    Safe to call from a worker domain: the process-wide pool state is
    mutex-guarded, and concurrent callers always agree on one pool per
    job count. *)

val pool_count : unit -> int
(** Number of distinct explicit-jobs pools currently cached — the san
    race test pins that concurrent {!pool_for} calls never duplicate a
    pool. *)

val jobs : unit -> int
(** Job count {!get} uses (without forcing pool creation). *)
