(** Zero-dependency observability: hierarchical spans, counters,
    gauges, instant events — exported as Chrome-trace JSON
    ([symor … --trace out.json], load in [chrome://tracing] or
    [ui.perfetto.dev]) or as a human summary table ([--stats]).

    {b Cost model.} Tracing is {e disabled by default}: every probe is
    a single load-and-branch on {!tracing} and performs {e no
    allocation} (verified by the [bench obs] gate and a unit test).
    Probe calls whose arguments must be computed (a float timestamp, an
    args list) are guarded at the call site:

    {[ if Obs.tracing () then Obs.countf "ac.point_seconds" dt ]}

    so the disabled path never evaluates them.

    {b Determinism under the domain pool.} Every probe writes only to a
    buffer local to the calling domain ([Domain.DLS]); a global
    registry mutex is taken exactly once per domain, when its buffer is
    first created. No probe reads or writes shared mutable state on the
    hot path, so enabling tracing cannot reorder, serialise, or
    otherwise perturb a parallel computation — pooled results stay
    bitwise identical to sequential ones with tracing on. The
    per-domain buffers are merged (concatenated per domain, counters
    summed, gauges resolved by latest timestamp) only at the join —
    i.e. when {!export_chrome}, {!stats_table}, {!counters} or
    {!counter_value} is called after the parallel region. *)

(** {1 Switch} *)

val tracing : unit -> bool
(** Whether probes record anything. Read on every probe; when [false]
    each probe is a branch and nothing else. *)

val enable : unit -> unit
(** Turn tracing on and (re)anchor the trace epoch. *)

val disable : unit -> unit
(** Turn tracing off. Recorded data is kept until {!reset}. *)

val reset : unit -> unit
(** Drop all recorded events, counters and gauges (all domains). Call
    only outside parallel regions. *)

val now : unit -> float
(** The clock used for span timestamps, in seconds. Monotonic for the
    purposes of a trace (wall clock; sub-microsecond resolution). *)

(** {1 Probes}

    All probes are no-ops when tracing is disabled. *)

type arg = Int of int | Float of float | Str of string
(** Typed argument attached to a span or instant event; rendered into
    the Chrome-trace [args] object. *)

val span_begin : ?args:(string * arg) list -> string -> unit
(** Open a span on the calling domain's track. Spans nest: a
    [span_begin] inside an open span becomes its child in the trace. *)

val span_end : unit -> unit
(** Close the innermost open span on the calling domain's track. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] = [span_begin name; f ()] with the span closed
    on return {e and} on exception. Convenience for non-hot paths (the
    closure allocates; hot loops should use explicit begin/end under a
    [tracing ()] guard). *)

val instant : ?args:(string * arg) list -> string -> unit
(** A point event (deflation, breakdown near-miss, order escalation…)
    on the calling domain's track. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the named counter (per-domain, summed
    at the join). *)

val countf : string -> float -> unit
(** Float-valued counter add (accumulated seconds, flop estimates). *)

val gauge : string -> float -> unit
(** [gauge name v] records the current value of a quantity (final
    order, envelope nnz). Merge rule: the latest write (by timestamp)
    across all domains wins. *)

(** {1 Join / export} *)

val counter_value : string -> float
(** Merged value of a counter (sum over domains; [0.] if never
    written). *)

val counters : unit -> (string * float) list
(** All merged counters, sorted by name. *)

val gauge_value : string -> float option
(** Latest-write value of a gauge across all domains. *)

val gauges : unit -> (string * float) list
(** All merged gauges, sorted by name. *)

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;  (** Wall seconds, summed over calls and domains. *)
  min_s : float;
  max_s : float;
}

val span_stats : unit -> span_stat list
(** Aggregate statistics per span name, sorted by descending
    [total_s]. Computed by replaying each domain's buffer. *)

val stats_table : unit -> string
(** Human-readable summary: span table (calls / total / mean / max),
    counters and gauges — the [--stats] output. *)

val export_chrome : unit -> string
(** The recorded trace as Chrome-trace-format JSON: one [pid], one
    [tid] per domain, [B]/[E] span events, [i] instant events, and a
    final [C] counter sample per counter. *)

val write_trace : string -> unit
(** Write {!export_chrome} to a file. *)

(** {1 Per-request subtrees}

    A long-lived process (the [symor serve] daemon) records spans for
    every request it handles; without a way to export and then {e
    drop} the events of one request, the per-domain buffers grow
    without bound. A {!mark} snapshots the current length of every
    domain buffer; {!export_chrome_since} renders only the events
    recorded after the mark (the request's span subtree, including
    events recorded by pool worker domains on the request's behalf),
    and {!truncate} discards them — counters and gauges are {e not}
    touched, so cumulative [serve.*] statistics survive.

    Both {!truncate} and {!mark} must be called outside parallel
    regions (like {!reset}), and spans opened before the mark should
    be closed before it too — an [E] event without its [B] on the
    same side of the mark is dropped by trace viewers. *)

type mark

val mark : unit -> mark
(** Snapshot every domain buffer's current event count. *)

val export_chrome_since : mark -> string
(** Chrome-trace JSON of the events recorded after [mark] (buffers
    created after the mark are included in full). Counter samples are
    cumulative, as in {!export_chrome}. *)

val truncate : mark -> unit
(** Drop every event recorded after [mark] on every domain buffer,
    shrinking oversized buffer capacity back down so a long-lived
    process's resident set stays bounded. Counters and gauges are
    kept. *)

val buffered_events : unit -> int
(** Total number of buffered events across all domains — the quantity
    {!truncate} keeps bounded in a long-lived process (regression
    tested by the serve harness). *)
