type arg = Int of int | Float of float | Str of string

(* The switch. An atomic bool: every disabled probe is one load and
   one branch, no allocation (the [bench obs] gate and test_obs verify
   this), and flipping it from one domain is immediately sound to
   observe from any other. *)
let on = Atomic.make false

let tracing () = Atomic.get on [@@inline]

let now = Unix.gettimeofday

(* Trace epoch: Chrome-trace timestamps are microseconds since this.
   Atomic for the same reason as [on]: enable/reset may race with a
   worker domain stamping an event. *)
let t0 = Atomic.make (now ())

(* ------------------------------------------------------------------ *)
(* Per-domain buffers                                                  *)

type ev =
  | B of string * float * (string * arg) list  (* span begin *)
  | E of float  (* span end (innermost open span) *)
  | I of string * float * (string * arg) list  (* instant event *)

type buf = {
  dom : int;  (* Domain.self of the owning domain *)
  mutable evs : ev array;
  mutable len : int;
  counters : (string, float ref) Hashtbl.t;
  gauges : (string, float * float) Hashtbl.t;  (* name -> ts, value *)
}

(* Registry of every buffer ever created, so the join (export/stats)
   can merge them. The mutex is taken once per domain — at buffer
   creation — never on the probe path. *)
let registry : buf list ref = ref []

let registry_mutex = Mutex.create ()

let dls_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          evs = [||];
          len = 0;
          counters = Hashtbl.create 32;
          gauges = Hashtbl.create 16;
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buf () = Domain.DLS.get dls_key

let push b e =
  if b.len = Array.length b.evs then begin
    let cap = max 256 (2 * b.len) in
    let evs = Array.make cap e in
    Array.blit b.evs 0 evs 0 b.len;
    b.evs <- evs
  end;
  b.evs.(b.len) <- e;
  b.len <- b.len + 1

let enable () =
  Atomic.set t0 (now ());
  Atomic.set on true

let disable () = Atomic.set on false

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      b.evs <- [||];
      b.len <- 0;
      Hashtbl.reset b.counters;
      Hashtbl.reset b.gauges)
    !registry;
  Mutex.unlock registry_mutex;
  Atomic.set t0 (now ())

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)

let span_begin ?(args = []) name =
  if Atomic.get on then push (buf ()) (B (name, now (), args))

let span_end () = if Atomic.get on then push (buf ()) (E (now ()))

let with_span name f =
  if not (Atomic.get on) then f ()
  else begin
    span_begin name;
    Fun.protect ~finally:span_end f
  end

let instant ?(args = []) name =
  if Atomic.get on then push (buf ()) (I (name, now (), args))

let count name n =
  if Atomic.get on then begin
    let b = buf () in
    match Hashtbl.find_opt b.counters name with
    | Some r -> r := !r +. float_of_int n
    | None -> Hashtbl.add b.counters name (ref (float_of_int n))
  end

let countf name x =
  if Atomic.get on then begin
    let b = buf () in
    match Hashtbl.find_opt b.counters name with
    | Some r -> r := !r +. x
    | None -> Hashtbl.add b.counters name (ref x)
  end

let gauge name v = if Atomic.get on then Hashtbl.replace (buf ()).gauges name (now (), v)

(* ------------------------------------------------------------------ *)
(* Join: merge the per-domain buffers                                  *)

let all_bufs () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  (* stable presentation order: by domain id *)
  List.sort (fun a b -> Int.compare a.dom b.dom) bs

let counters () =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt merged name with
          | Some m -> m := !m +. !r
          | None -> Hashtbl.add merged name (ref !r))
        b.counters)
    (all_bufs ());
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter_value name =
  List.fold_left
    (fun acc b ->
      match Hashtbl.find_opt b.counters name with Some r -> acc +. !r | None -> acc)
    0.0 (all_bufs ())

let gauges_merged () =
  let merged = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun name (ts, v) ->
          match Hashtbl.find_opt merged name with
          | Some (ts', _) when ts' >= ts -> ()
          | _ -> Hashtbl.replace merged name (ts, v))
        b.gauges)
    (all_bufs ());
  merged

let gauge_value name =
  match Hashtbl.find_opt (gauges_merged ()) name with
  | Some (_, v) -> Some v
  | None -> None

let gauges () =
  Hashtbl.fold (fun name (_, v) acc -> (name, v) :: acc) (gauges_merged ()) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

type span_stat = {
  span_name : string;
  calls : int;
  total_s : float;
  min_s : float;
  max_s : float;
}

(* replay one buffer with an explicit span stack, folding closed spans
   into the per-name aggregate *)
let span_stats () =
  let agg : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  let record name dt =
    match Hashtbl.find_opt agg name with
    | Some r ->
      let s = !r in
      r :=
        {
          s with
          calls = s.calls + 1;
          total_s = s.total_s +. dt;
          min_s = Float.min s.min_s dt;
          max_s = Float.max s.max_s dt;
        }
    | None ->
      Hashtbl.add agg name
        (ref { span_name = name; calls = 1; total_s = dt; min_s = dt; max_s = dt })
  in
  List.iter
    (fun b ->
      let stack = ref [] in
      for k = 0 to b.len - 1 do
        match b.evs.(k) with
        | B (name, ts, _) -> stack := (name, ts) :: !stack
        | E ts -> (
          match !stack with
          | (name, ts0) :: rest ->
            stack := rest;
            record name (ts -. ts0)
          | [] -> () (* unmatched end: dropped *))
        | I _ -> ()
      done)
    (all_bufs ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) agg []
  |> List.sort (fun a b -> Float.compare b.total_s a.total_s)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_arg = function
  | Int i -> string_of_int i
  | Float x ->
    if Float.is_finite x then Printf.sprintf "%.17g" x
    else Printf.sprintf "\"%h\"" x
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let json_args args =
  match args with
  | [] -> ""
  | _ ->
    let fields =
      List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_of_arg v)) args
    in
    Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)

let us ts = (ts -. Atomic.get t0) *. 1e6

(* export the events of every buffer from a per-buffer start index on
   — the whole trace ([export_chrome]) and a per-request subtree
   ([export_chrome_since]) share this one renderer *)
let export_from start_of =
  let out = Buffer.create 65536 in
  Buffer.add_string out "{\"traceEvents\":[\n";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string out ",\n";
    Buffer.add_string out s
  in
  let bufs = all_bufs () in
  List.iter
    (fun b ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
            \"args\":{\"name\":\"domain %d\"}}"
           b.dom b.dom);
      for k = max 0 (start_of b) to b.len - 1 do
        match b.evs.(k) with
        | B (name, ts, args) ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
               (json_escape name) (us ts) b.dom (json_args args))
        | E ts ->
          emit
            (Printf.sprintf "{\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}" (us ts)
               b.dom)
        | I (name, ts, args) ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":1,\
                \"tid\":%d%s}"
               (json_escape name) (us ts) b.dom (json_args args))
      done)
    bufs;
  let ts_end = us (now ()) in
  List.iter
    (fun (name, v) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":0,\
            \"args\":{\"value\":%.17g}}"
           (json_escape name) ts_end v))
    (counters ());
  Buffer.add_string out "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents out

let export_chrome () = export_from (fun _ -> 0)

(* ------------------------------------------------------------------ *)
(* Per-request subtrees: mark / export-since / truncate                *)

type mark = (buf * int) list

let mark () =
  Mutex.lock registry_mutex;
  let m = List.map (fun b -> (b, b.len)) !registry in
  Mutex.unlock registry_mutex;
  m

(* buffers created after the mark start at 0 *)
let mark_start m b = match List.assq_opt b m with Some l -> l | None -> 0

let export_chrome_since m = export_from (mark_start m)

(* keep a long-lived process's buffers small: after dropping a
   request's events, give back capacity a burst left behind *)
let shrink_cap = 4096

let truncate m =
  Mutex.lock registry_mutex;
  List.iter
    (fun b ->
      let l = min b.len (mark_start m b) in
      b.len <- l;
      if Array.length b.evs > shrink_cap && l < shrink_cap / 2 then begin
        let evs = Array.make (max 256 l) (E 0.0) in
        Array.blit b.evs 0 evs 0 l;
        b.evs <- evs
      end)
    !registry;
  Mutex.unlock registry_mutex

let buffered_events () =
  List.fold_left (fun acc b -> acc + b.len) 0 (all_bufs ())

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_chrome ()))

let stats_table () =
  let b = Buffer.create 4096 in
  let spans = span_stats () in
  if spans <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-28s %8s %12s %12s %12s\n" "span" "calls" "total[ms]"
         "mean[us]" "max[us]");
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "%-28s %8d %12.3f %12.2f %12.2f\n" s.span_name s.calls
             (s.total_s *. 1e3)
             (s.total_s /. float_of_int s.calls *. 1e6)
             (s.max_s *. 1e6)))
      spans
  end;
  (match counters () with
  | [] -> ()
  | cs ->
    Buffer.add_string b (Printf.sprintf "%-28s %20s\n" "counter" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "%-28s %20.6g\n" name v))
      cs);
  (match gauges () with
  | [] -> ()
  | gs ->
    Buffer.add_string b (Printf.sprintf "%-28s %20s\n" "gauge" "value");
    List.iter
      (fun (name, v) ->
        Buffer.add_string b (Printf.sprintf "%-28s %20.6g\n" name v))
      gs);
  Buffer.contents b
