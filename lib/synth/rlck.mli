(** RLCk re-synthesis of structure-preserving [`Sprim] models.

    This is the payoff of SPRIM's block congruence: because the
    reduced model keeps the node/current block structure with
    symmetric [Ĝn], [Ĉn], [ℒ̂] and a genuine incidence block [Â], its
    transfer function has the second-order susceptance form

      [Z(s) = s·B̂ᵀ(s²Ĉn + sĜn + Âᵀℒ̂⁻¹Â)⁻¹B̂]

    (cf. {!Circuit.Mna.assemble_second_order}), which is exactly the
    nodal analysis of an RLC netlist over [n₁] nodes. A port-aligning
    congruence within the node block ({!Multiport.port_aligning_transform},
    [B̂ᵀS₁ = [I_p 0]]) makes the first [p] states the port voltages,
    after which [D' = S₁ᵀĜnS₁] realises as resistors,
    [M' = S₁ᵀĈnS₁] as capacitors and the nodal susceptance
    [K' = S₁ᵀÂᵀℒ̂⁻¹ÂS₁] as branch inductors [L = 1/γ] — the same
    row-sum stamping as {!Multiport.synthesize}. The susceptance
    expansion folds the reduced mutual couplings of [ℒ̂] into the
    branch values exactly, so the output needs no K cards even though
    the input model is fully coupled; re-assembling the output with
    {!Circuit.Mna.assemble} reproduces [Z(s)] to [drop_tol].
    Elements may be negative-valued (expected, harmless for
    simulation — same caveat as the paper's Section 6 synthesis). *)

type stats = {
  nodes : int;  (** Total circuit nodes (ports + internal). *)
  resistors : int;
  capacitors : int;
  inductors : int;
  negative_elements : int;
  dropped_entries : int;  (** Matrix entries below [drop_tol]. *)
}

exception Not_synthesizable of string
(** Alias of {!Multiport.Not_synthesizable} — the two synthesis paths
    share one failure exception. *)

val synthesize :
  ?drop_tol:float ->
  port_names:string array ->
  Sympvl.Sprim.t ->
  Circuit.Netlist.t * stats
(** [synthesize ~port_names model] builds the equivalent RLC(k)
    netlist with one port per model port (named as given). [drop_tol]
    (default [1e-9], relative to the largest entry of each realised
    matrix) sparsifies the conductance/capacitance/susceptance
    stamps; the introduced error is of the same relative order.
    Raises {!Not_synthesizable} when [B̂] is rank-deficient or the
    reduced inductance block is not positive definite. *)
