type stats = {
  nodes : int;
  resistors : int;
  capacitors : int;
  inductors : int;
  negative_elements : int;
  dropped_entries : int;
}

exception Not_synthesizable = Multiport.Not_synthesizable

(* The SPRIM model keeps the node/current block structure, so we can
   eliminate the reduced current block analytically:

     Z(s) = s·B̂ᵀ(s²Ĉn + sĜn + Âᵀℒ̂⁻¹Â)⁻¹B̂

   Port-align within the node block only (z = S₁v with B̂ᵀS₁ = [I_p 0])
   and the three transformed matrices are exactly the nodal
   conductance D' = S₁ᵀĜnS₁, capacitance M' = S₁ᵀĈnS₁ and inductive
   susceptance K' = S₁ᵀÂᵀℒ̂⁻¹ÂS₁ of an RLC netlist over n₁ nodes —
   realised branch-by-branch below. The susceptance expansion absorbs
   the reduced mutual couplings: Γ = K' is reproduced exactly by
   uncoupled branch inductors L = 1/γ, so no K cards are needed in
   the output even though the input model carries a dense ℒ̂. *)
let synthesize ?(drop_tol = 1e-9) ~port_names (m : Sympvl.Sprim.t) =
  let p = m.Sympvl.Sprim.p in
  if Array.length port_names <> p then invalid_arg "Rlck.synthesize: port name count";
  let n1 = m.Sympvl.Sprim.n1 and n2 = m.Sympvl.Sprim.n2 in
  if n1 < p then raise (Not_synthesizable "node block smaller than port count");
  let s1 = Multiport.port_aligning_transform m.Sympvl.Sprim.bn in
  let d' = Linalg.Mat.sym_part (Linalg.Mat.congruence s1 m.Sympvl.Sprim.gn) in
  let m' = Linalg.Mat.sym_part (Linalg.Mat.congruence s1 m.Sympvl.Sprim.cn) in
  let k' =
    if n2 = 0 then Linalg.Mat.create n1 n1
    else begin
      let a' = Linalg.Mat.mul m.Sympvl.Sprim.a s1 in
      let ch =
        try Linalg.Chol.factor m.Sympvl.Sprim.lmat
        with Linalg.Chol.Not_positive_definite _ ->
          raise
            (Not_synthesizable "reduced inductance block is not positive definite")
      in
      Linalg.Mat.sym_part
        (Linalg.Mat.mul (Linalg.Mat.transpose a') (Linalg.Chol.solve_mat ch a'))
    end
  in
  let nl = Circuit.Netlist.create () in
  let nodes =
    Array.init n1 (fun i ->
        if i < p then Circuit.Netlist.node nl port_names.(i)
        else Circuit.Netlist.node nl (Printf.sprintf "x%d" (i - p + 1)))
  in
  let r_count = ref 0
  and c_count = ref 0
  and l_count = ref 0
  and neg = ref 0
  and dropped = ref 0 in
  (* Identical stamping convention to Multiport.realize: off-diagonal
     entry m_ij (i < j) ↦ branch of value −m_ij between nodes i and j,
     row-sum remainder ↦ branch to ground. For the inductor layer the
     branch value is a susceptance γ, stored as L = 1/γ. *)
  let realize mat kind =
    let scale = Float.max (Linalg.Mat.max_abs mat) 1e-300 in
    let add_branch na nb v name =
      (match kind with
      | `Resistor ->
        Circuit.Netlist.add nl
          (Circuit.Netlist.Resistor { name; n1 = na; n2 = nb; ohms = 1.0 /. v });
        incr r_count
      | `Capacitor ->
        Circuit.Netlist.add nl
          (Circuit.Netlist.Capacitor { name; n1 = na; n2 = nb; farads = v });
        incr c_count
      | `Inductor ->
        Circuit.Netlist.add nl
          (Circuit.Netlist.Inductor { name; n1 = na; n2 = nb; henries = 1.0 /. v });
        incr l_count);
      if v < 0.0 then incr neg
    in
    let prefix =
      match kind with `Resistor -> "Rs" | `Capacitor -> "Cs" | `Inductor -> "Ls"
    in
    for i = 0 to n1 - 1 do
      let row_sum = ref 0.0 in
      for j = 0 to n1 - 1 do
        if j <> i then row_sum := !row_sum +. Linalg.Mat.get mat i j
      done;
      let gnd = Linalg.Mat.get mat i i +. !row_sum in
      if Float.abs gnd > drop_tol *. scale then
        add_branch nodes.(i) 0 gnd (Printf.sprintf "%sg%d" prefix (i + 1))
      else if gnd <> 0.0 then incr dropped;
      for j = i + 1 to n1 - 1 do
        let v = -.Linalg.Mat.get mat i j in
        if Float.abs v > drop_tol *. scale then
          add_branch nodes.(i) nodes.(j) v
            (Printf.sprintf "%s%d_%d" prefix (i + 1) (j + 1))
        else if v <> 0.0 then incr dropped
      done
    done
  in
  realize d' `Resistor;
  realize m' `Capacitor;
  realize k' `Inductor;
  Array.iteri
    (fun i name -> if i < p then Circuit.Netlist.add_port nl name nodes.(i))
    port_names;
  ( nl,
    {
      nodes = Circuit.Netlist.num_nodes nl;
      resistors = !r_count;
      capacitors = !c_count;
      inductors = !l_count;
      negative_elements = !neg;
      dropped_entries = !dropped;
    } )
