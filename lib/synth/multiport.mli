(** Multiport reduced-circuit synthesis (paper Section 6).

    Realises the reduced pencil [(ĝ, ĉ, ρ)] of eq. (23) as an RC
    netlist with no controlled sources. A congruence [x = S z] with
    [ρᵀS = [I_p 0]] turns the first [p] states into the port voltages
    themselves; the transformed [SᵀĝS] / [SᵀĉS] matrices are then
    realised entry-by-entry as (possibly negative-valued) resistors
    and capacitors between state nodes — a generalisation of the
    Cauer-form synthesis that the paper refers to. Only definite
    [s]-variable models are supported (the RC/RL cases with expansion
    at 0). *)

type stats = {
  nodes : int;  (** Total circuit nodes (ports + internal). *)
  resistors : int;
  capacitors : int;
  negative_elements : int;
  dropped_entries : int;  (** Matrix entries below [drop_tol]. *)
}

exception Not_synthesizable of string

val port_aligning_transform : Linalg.Mat.t -> Linalg.Mat.t
(** [port_aligning_transform rho] for an [n × p] full-column-rank
    [rho] is the [n × n] congruence [S] with [ρᵀS = [I_p 0]]: after
    [x = S z] the first [p] transformed states are the port voltages
    themselves. Shared with the RLCk path ({!Rlck}). Raises
    {!Not_synthesizable} when [rho] is rank-deficient. *)

val synthesize :
  ?drop_tol:float -> port_names:string array -> Sympvl.Model.t ->
  Circuit.Netlist.t * stats
(** [synthesize ~port_names model] builds the equivalent netlist with
    one port per model port (named as given). [drop_tol] (default
    [1e-9], relative to the largest matrix entry) sparsifies the
    realised conductance/capacitance matrices; the introduced error
    is of the same relative order. *)
