(** Maximum transversal (maximum bipartite matching between rows and
    columns of a sparsity pattern) via depth-first augmenting paths —
    the MC21 algorithm.

    The size of a maximum transversal is the {e structural rank}: the
    largest numerical rank the matrix can attain over all choices of
    values at its nonzero positions (and the rank it attains for
    generic values). A square matrix with structural rank < n is
    singular for {e every} choice of values — no frequency shift or
    pivoting strategy can repair it — which is exactly the defect the
    [STR001] analyzer rule reports before any factorisation is
    attempted. *)

type t = {
  row_match : int array;
      (** [row_match.(i)] is the column matched to row [i], or [-1]. *)
  col_match : int array;
      (** [col_match.(j)] is the row matched to column [j], or [-1]. *)
  rank : int;  (** Number of matched pairs = structural rank. *)
}

val maximum : Csr.t -> t
(** A maximum matching of the stored-entry pattern (values are
    ignored; explicit zeros count as structural nonzeros). Runs a
    cheap greedy pass first, then MC21 augmenting depth-first search —
    worst case [O(n · nnz)], near-linear on MNA patterns where the
    greedy pass matches almost everything via the diagonal. *)

val structural_rank : Csr.t -> int
(** [structural_rank a = (maximum a).rank]. *)

val unmatched_rows : t -> int list
(** Rows left unmatched, ascending — for a square matrix these are
    the (structurally) redundant equations. *)

val unmatched_cols : t -> int list
(** Columns left unmatched, ascending — unknowns no equation can
    determine. *)
