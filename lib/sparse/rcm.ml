let identity n = Array.init n (fun i -> i)

(* adjacency lists of the symmetrised pattern, self-loops dropped *)
let adjacency a =
  let n = a.Csr.rows in
  let sets = Array.make n [] in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j _ ->
        if i <> j then begin
          sets.(i) <- j :: sets.(i);
          sets.(j) <- i :: sets.(j)
        end)
  done;
  Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) sets

(* BFS from [root]; returns (order of visit, last level list) *)
let bfs adj visited root =
  let order = ref [ root ] in
  visited.(root) <- true;
  let frontier = ref [ root ] in
  let last_level = ref [ root ] in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun u ->
        Array.iter
          (fun v ->
            if not visited.(v) then begin
              visited.(v) <- true;
              next := v :: !next
            end)
          adj.(u))
      !frontier;
    (* visit neighbours in increasing degree for the CM property *)
    let next_sorted =
      List.sort (fun a b -> Int.compare (Array.length adj.(a)) (Array.length adj.(b))) !next
    in
    if next_sorted <> [] then begin
      order := List.rev_append next_sorted !order;
      last_level := next_sorted
    end;
    frontier := next_sorted
  done;
  (List.rev !order, !last_level)

(* heuristic pseudo-peripheral node: start anywhere in the component,
   repeatedly jump to a minimum-degree node of the last BFS level *)
let pseudo_peripheral adj n_nodes start =
  let node = ref start in
  let improved = ref true in
  let guard = ref 0 in
  while !improved && !guard < 8 do
    incr guard;
    let visited = Array.make n_nodes false in
    let _, last = bfs adj visited !node in
    let best =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some b -> if Array.length adj.(v) < Array.length adj.(b) then Some v else acc)
        None last
    in
    match best with
    | Some b when b <> !node ->
      (* accept the jump only while eccentricity can grow; the guard
         bounds the iteration in any case *)
      node := b
    | _ -> improved := false
  done;
  !node

let order a =
  let n = a.Csr.rows in
  let adj = adjacency a in
  let visited = Array.make n false in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if not visited.(i) then begin
      let root = pseudo_peripheral adj n i in
      (* the pseudo-peripheral search used its own visited marks *)
      let comp, _ = bfs adj visited root in
      acc := List.rev_append comp !acc
    end
  done;
  (* !acc is already the reversed concatenation: Cuthill–McKee order
     reversed per component — exactly RCM *)
  let cand = Array.of_list !acc in
  (* never-worse guarantee: RCM is a heuristic, and on patterns that
     are already well ordered it can enlarge the envelope — fall back
     to the natural order whenever it does *)
  if n = 0 || Csr.profile (Csr.permute_sym a cand) <= Csr.profile a then cand
  else identity n
