type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let nnz t = t.row_ptr.(t.rows)

let of_triplet tr =
  let rows = Triplet.rows tr and cols = Triplet.cols tr in
  let n = Triplet.nnz tr in
  (* bucket by row *)
  let count = Array.make (rows + 1) 0 in
  Triplet.iter tr (fun i _ _ -> count.(i + 1) <- count.(i + 1) + 1);
  for i = 0 to rows - 1 do
    count.(i + 1) <- count.(i + 1) + count.(i)
  done;
  let cj = Array.make n 0 and cx = Array.make n 0.0 in
  let fill = Array.copy count in
  Triplet.iter tr (fun i j x ->
      let k = fill.(i) in
      cj.(k) <- j;
      cx.(k) <- x;
      fill.(i) <- k + 1);
  (* sort each row by column and merge duplicates *)
  let row_ptr = Array.make (rows + 1) 0 in
  let out_j = Array.make n 0 and out_x = Array.make n 0.0 in
  let pos = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !pos;
    let lo = count.(i) and hi = count.(i + 1) in
    let len = hi - lo in
    if len > 0 then begin
      let idx = Array.init len (fun k -> lo + k) in
      Array.sort (fun a b -> Int.compare cj.(a) cj.(b)) idx;
      let k = ref 0 in
      while !k < len do
        let j = cj.(idx.(!k)) in
        let s = ref 0.0 in
        while !k < len && cj.(idx.(!k)) = j do
          s := !s +. cx.(idx.(!k));
          incr k
        done;
        out_j.(!pos) <- j;
        out_x.(!pos) <- !s;
        incr pos
      done
    end
  done;
  row_ptr.(rows) <- !pos;
  {
    rows;
    cols;
    row_ptr;
    col_idx = Array.sub out_j 0 !pos;
    values = Array.sub out_x 0 !pos;
  }

let of_dense m = of_triplet (Triplet.of_dense m)

let to_dense t =
  let m = Linalg.Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Linalg.Mat.add_to m i t.col_idx.(k) t.values.(k)
    done
  done;
  m

let get t i j =
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0.0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let mul_vec_into t x y =
  assert (Linalg.Vec.dim x = t.cols && Linalg.Vec.dim y = t.rows);
  for i = 0 to t.rows - 1 do
    let s = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      s := !s +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !s
  done

let mul_vec t x =
  let y = Linalg.Vec.create t.rows in
  mul_vec_into t x y;
  y

let transpose t =
  let tr = Triplet.create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Triplet.add tr t.col_idx.(k) i t.values.(k)
    done
  done;
  of_triplet tr

let add ?(alpha = 1.0) ?(beta = 1.0) a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  let tr = Triplet.create a.rows a.cols in
  for i = 0 to a.rows - 1 do
    for k = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      Triplet.add tr i a.col_idx.(k) (alpha *. a.values.(k))
    done;
    for k = b.row_ptr.(i) to b.row_ptr.(i + 1) - 1 do
      Triplet.add tr i b.col_idx.(k) (beta *. b.values.(k))
    done
  done;
  of_triplet tr

let scale alpha t = { t with values = Array.map (fun x -> alpha *. x) t.values }

let identity n =
  {
    rows = n;
    cols = n;
    row_ptr = Array.init (n + 1) (fun i -> i);
    col_idx = Array.init n (fun i -> i);
    values = Array.make n 1.0;
  }

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let is_symmetric ?(tol = 1e-12) t =
  t.rows = t.cols
  &&
  let scale_ref =
    Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1.0 t.values
  in
  let ok = ref true in
  for i = 0 to t.rows - 1 do
    iter_row t i (fun j x ->
        if Float.abs (x -. get t j i) > tol *. scale_ref then ok := false)
  done;
  !ok

let permute_sym t perm =
  assert (t.rows = t.cols && Array.length perm = t.rows);
  let inv = Array.make t.rows 0 in
  Array.iteri (fun new_i old_i -> inv.(old_i) <- new_i) perm;
  let tr = Triplet.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    iter_row t i (fun j x -> Triplet.add tr inv.(i) inv.(j) x)
  done;
  of_triplet tr

let bandwidth t =
  let b = ref 0 in
  for i = 0 to t.rows - 1 do
    iter_row t i (fun j _ -> b := max !b (abs (i - j)))
  done;
  !b

let profile t =
  let p = ref 0 in
  for i = 0 to t.rows - 1 do
    let first = ref i in
    iter_row t i (fun j _ -> if j < !first then first := j);
    p := !p + (i - !first)
  done;
  !p
