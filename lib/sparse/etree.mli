(** Elimination tree and exact symbolic fill prediction for symmetric
    patterns.

    For a symmetric matrix [A] factored as [L D Lᵀ] {e without}
    pivoting, the sparsity structure of [L] is determined by the
    pattern of [A] alone: [L(i,j) ≠ 0] (barring exact numerical
    cancellation) iff [j] lies on the elimination-tree path from some
    [k] with [A(i,k) ≠ 0, k ≤ j] up to [i] (Schreiber's row-subtree
    characterisation). This module computes the tree with Liu's
    path-compression algorithm and the per-column factor counts by
    walking each row subtree — [O(nnz(L))] total, no numerical work —
    so the cost of a sparse Cholesky/LDLᵀ under any candidate ordering
    can be predicted {e exactly} before committing to it. *)

type t = {
  parent : int array;
      (** [parent.(j)] is the elimination-tree parent of column [j],
          or [-1] for a root. *)
  col_counts : int array;
      (** [col_counts.(j)] = number of structural nonzeros in column
          [j] of the Cholesky factor [L], diagonal included. *)
}

val of_pattern : Csr.t -> t
(** Build from a stored-entry pattern; the pattern is symmetrised
    internally (values are ignored), so slightly unsymmetric inputs
    are accepted. *)

val factor_nnz : t -> int
(** Predicted [nnz(L)] (lower triangle, diagonal included) — exactly
    the nonzero count of a no-pivoting LDLᵀ/Cholesky factor of any
    matrix with this pattern, absent exact cancellation. *)

val postorder : t -> int array
(** Depth-first postorder of the elimination forest (children in
    ascending index order, so the result is deterministic), in the
    {!Csr.permute_sym} convention: [post.(new_index) = old_index].
    Relabelling a matrix by its etree postorder preserves the factor
    nonzero count {e exactly} while making every subtree — hence every
    fundamental supernode — a contiguous index range, which is what
    the supernodal factorisation requires of its input ordering. *)

val predicted_nnz : Csr.t -> int array -> int
(** [predicted_nnz a perm] — factor nnz of [P A Pᵀ] under the
    ordering [perm] (old indices in new order, as {!Csr.permute_sym}
    takes). The cheap way to compare candidate orderings. *)
