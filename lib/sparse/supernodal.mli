(** Left-looking supernodal sparse LDLᵀ with dense BLAS-style panel
    kernels — the scattered-sparsity backend.

    Where {!Skyline} stores each row's contiguous envelope segment
    (the right shape after an {!Rcm} ordering), this module groups
    columns with nested factor structure — {e fundamental supernodes}
    — into dense row-major [len×w] panels and runs the factorisation
    as dot-product kernels on contiguous float arrays. Combined with
    an {!Amd} fill-reducing ordering (whose scattered sparsity an
    envelope cannot represent), it is the backend that scales to the
    10⁵-unknown circuits the paper's reduction targets; the skyline
    kernel remains the accuracy oracle it is tested against.

    The symbolic phase is exact: with [relax = 0] the stored factor
    nonzero count equals {!Etree.predicted_nnz} of the input pattern
    — no padding, no overallocation. A positive [relax] budget merges
    near-fundamental chains (relaxed amalgamation), trading at most
    [relax] stored zeros per supernode for wider panels.

    Input matrices must already be permuted by a fill-reducing
    ordering composed with an elimination-tree postorder — {!order}
    builds exactly that — since the postorder is what makes every
    fundamental supernode a contiguous column range. *)

exception Singular of int
(** Pivot breakdown at the given (permuted) column, same relative
    test as {!Skyline.Singular}. *)

type symbolic
(** The symbolic phase of a pencil factorisation: supernode
    partition, per-supernode row patterns, and [G]/[C] pre-scattered
    into panel slots, so every numeric factorisation of [G + s₀C] is
    free of pattern analysis. Immutable and shareable across shifts
    and threads. *)

val order : ?c:Csr.t -> Csr.t -> int array
(** [order ?c g] — the ordering this backend wants: {!Amd.order} of
    the merged [G]/[C] pattern composed with the elimination-tree
    postorder of the AMD-permuted pattern. Returns [perm] in the
    {!Csr.permute_sym} convention ([perm.(new_index) = old_index]);
    the postorder composition leaves the factor nonzero count of the
    AMD ordering unchanged. *)

val symbolic : ?relax:int -> ?extra_pattern:(int * int) array -> ?c:Csr.t -> Csr.t -> symbolic
(** [symbolic ?relax ?extra_pattern ?c g] — supernode detection and
    symbolic factorisation of the merged (structural-union) pattern
    of [g] and [c], both already permuted. [relax] (default [0]) is
    the relaxed-amalgamation padding budget in stored zeros per
    supernode; supernode width is capped at 128 columns regardless.
    [extra_pattern] positions (permuted coordinates, either triangle)
    are merged into the pattern as structural zeros — how
    [Pencil.reserve] makes room for Newton-Jacobian stamps. Raises
    [Invalid_argument] on non-square or mismatched inputs. *)

val nnz : symbolic -> int
(** Stored lower-triangle factor nonzeros, diagonal included. Equals
    {!Etree.predicted_nnz} of the input pattern exactly when
    [relax = 0]. *)

val supernodes : symbolic -> int
val dim : symbolic -> int

(** Real factorisation of [G + s₀C] — the reduction and transient
    workhorse. *)
module Real : sig
  type t

  val factor : ?pivot_tol:float -> ?extra:(int * int * float) array -> symbolic -> float -> t
  (** [factor sym s0] — the numeric phase. Optional [extra] entries
      [(i, j, v)] (either triangle, permuted coordinates) are
      accumulated onto the assembled matrix — the transient engine's
      Newton-Jacobian stamps; an entry outside the factor pattern
      raises [Invalid_argument] (rebuild the symbolic phase with the
      stamp positions in the pattern instead). Raises {!Singular}
      when a pivot falls below [pivot_tol] (relative, default
      [1e-14]) times the largest assembled diagonal magnitude. *)

  val dim : t -> int

  val solve : t -> float array -> float array
  (** Solve [A x = b] (permuted coordinates). *)

  val solve_lower : t -> float array -> float array
  (** Forward substitution with the unit-lower factor [L] only. *)

  val solve_lower_t : t -> float array -> float array
  (** Back substitution with [Lᵀ] only. *)

  val d : t -> float array
  (** The diagonal of [D] (a copy). *)

  val fill : t -> int
  (** Stored factor nonzeros — the cost measure, comparable with
      {!Skyline.SOLVER.fill}. *)
end

(** Split-complex (structure-of-arrays) kernels for the AC path: the
    same supernodal recurrences on the complex-symmetric [G + sC]
    with re/im in separate unboxed float arrays.
    {!Skyline.Complex_sym} is the oracle they are tested against. *)
module Complex_soa : sig
  type t

  val factor : ?pivot_tol:float -> symbolic -> Complex.t -> t
  (** Factor [G + sC] from the shared symbolic phase. Raises
      {!Singular} under the same relative pivot test as {!Real}. *)

  val solve_split : t -> float array -> float array -> unit
  (** [solve_split fac re im] solves [A x = b] in place on the split
      right-hand side ([re], [im]). *)

  val dim : t -> int

  val d : t -> Complex.t array
  (** The diagonal of [D]. *)

  val fill : t -> int
end
