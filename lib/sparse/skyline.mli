(** Symmetric skyline (envelope) LDLᵀ factorisation.

    Stores, for each row, the contiguous segment from the first
    structurally nonzero column up to the diagonal. LDLᵀ fill-in is
    confined to this envelope, so after an RCM pre-ordering the
    factorisation of MNA matrices is cheap.

    The factorisation is generic over the scalar field: {!Real} works
    on [G(+s₀C)] (symmetric real, possibly indefinite — no pivoting
    is performed, so genuinely ill-ordered saddle points may raise
    [Singular]; apply a shift as the paper does), while {!Complex_sym}
    factors the *complex symmetric* (not Hermitian) matrices
    [(G + sC)] arising in AC analysis. *)

exception Singular of int

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val abs : t -> float
end

module type SOLVER = sig
  type elt
  (** The scalar field. *)

  type t
  (** A factored matrix [A = L D Lᵀ] within the envelope. *)

  val factor :
    ?pivot_tol:float -> n:int -> first:int array -> get:(int -> int -> elt) -> unit -> t
  (** [factor ~n ~first ~get ()] factors the symmetric matrix whose
      lower-envelope rows span columns [first.(i) .. i]; [get i j]
      yields entry (i, j) for [j ≤ i]. Raises {!Singular} when a
      diagonal pivot falls below [pivot_tol] (relative, default
      [1e-14]) times the largest diagonal magnitude. *)

  val dim : t -> int

  val solve : t -> elt array -> elt array
  (** Solve [A x = b]. *)

  val solve_lower : t -> elt array -> elt array
  (** Forward substitution with the unit-lower factor [L] only. *)

  val solve_lower_t : t -> elt array -> elt array
  (** Back substitution with [Lᵀ] only. *)

  val d : t -> elt array
  (** The diagonal of [D]. *)

  val fill : t -> int
  (** Stored envelope size (profile), a cost measure. *)
end

module Make (F : FIELD) : SOLVER with type elt = F.t

module Real : SOLVER with type elt = float

module Complex_sym : SOLVER with type elt = Complex.t

val envelope_of_csr : Csr.t -> int array
(** First-nonzero-column array (clipped to the diagonal) of a
    symmetric CSR matrix — the [first] argument for [factor]. *)

type pencil_env = {
  pe_n : int;
  pe_first : int array;  (** Merged [G]/[C] envelope. *)
  pe_g : float array array;
      (** Row [i] holds [G(i, first.(i) .. i)], diagonal in the last slot. *)
  pe_c : float array array;  (** [C], same layout. *)
}
(** Symbolic phase of a pencil factorisation: the merged envelope of
    [G] and [C] with both matrices pre-scattered into envelope-aligned
    rows. Computed once, it makes every subsequent numeric
    factorisation of [G + sC] free of pattern analysis and of
    per-entry {!Csr.get} row searches. *)

val pencil_env : Csr.t -> Csr.t -> pencil_env
(** [pencil_env g c] — one pass over each matrix's stored entries. *)

val factor_real : ?pivot_tol:float -> Csr.t -> Real.t
(** Convenience: envelope + factor of a symmetric real CSR matrix.
    Assembly reads pre-scattered envelope rows (no [Csr.get]). *)

val factor_pencil_real :
  ?pivot_tol:float -> ?extra:(int * int * float) array -> pencil_env -> float -> Real.t
(** [factor_pencil_real env s0] is the numeric phase of a real
    shifted-pencil factorisation [G + s₀C = L D Lᵀ] against a reused
    symbolic phase: assembly reads the pre-scattered envelope rows, so
    repeated factorisations at different shifts share one pattern
    analysis. Optional [extra] entries [(i, j, v)] (either triangle;
    positions must lie inside the envelope — widen with {!widen_env}
    first if needed) are accumulated onto the assembled matrix, which
    lets the transient engine poke Newton-Jacobian stamps without
    rebuilding a CSR. Raises [Invalid_argument] on an out-of-envelope
    extra entry and {!Singular} on pivot breakdown. *)

val widen_env : pencil_env -> int array -> pencil_env
(** [widen_env env extra_first] returns a copy of [env] whose row [i]
    spans down to [min env.pe_first.(i) extra_first.(i)], left-padding
    the scattered [G]/[C] rows with structural zeros. Use it to make
    room for {!factor_pencil_real}'s [extra] entries that fall outside
    the linear pencil's envelope. *)

val factor_complex :
  ?pivot_tol:float -> Complex.t -> Csr.t -> Csr.t -> Complex_sym.t
(** [factor_complex s g c] factors [G + sC] (complex symmetric). The
    envelope is the union of both patterns. Delegates to
    {!factor_complex_env} on a freshly built {!pencil_env}. *)

val factor_complex_env :
  ?pivot_tol:float -> pencil_env -> Complex.t -> Complex_sym.t
(** Numeric phase against a reused symbolic phase — the boxed
    reference kernel ({!Complex_sym}). *)

(** Split-complex (structure-of-arrays) specialisation of
    {!Complex_sym}: the same LDLᵀ recurrences with re/im stored in
    separate unboxed [float array]s. This is the AC-path production
    kernel; {!Complex_sym} remains the oracle it is tested against. *)
module Complex_soa : sig
  type t

  val factor_pencil : ?pivot_tol:float -> pencil_env -> Complex.t -> t
  (** Factor [G + sC] from a precomputed symbolic phase. Raises
      {!Singular} under the same relative pivot test as the generic
      kernel. *)

  val solve_split : t -> float array -> float array -> unit
  (** [solve_split fac re im] solves [A x = b] in place on the split
      right-hand side ([re], [im]). *)

  val dim : t -> int

  val d : t -> Complex.t array
  (** The diagonal of [D]. *)

  val fill : t -> int
end
