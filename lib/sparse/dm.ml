type t = {
  matching : Matching.t;
  hor_rows : int array;
  hor_cols : int array;
  sq_rows : int array;
  sq_cols : int array;
  ver_rows : int array;
  ver_cols : int array;
  blocks : (int array * int array) array;
}

(* rows incident to each column (the transpose adjacency) *)
let col_rows a =
  let cols = Array.make a.Csr.cols [] in
  for i = a.Csr.rows - 1 downto 0 do
    Csr.iter_row a i (fun j _ -> cols.(j) <- i :: cols.(j))
  done;
  cols

(* iterative Tarjan SCC; [adj] is an array of successor arrays.
   Returns the components in topological order of the condensation
   (each component only reaches components listed after it). *)
let tarjan_scc adj =
  let nv = Array.length adj in
  let index = Array.make nv (-1) in
  let low = Array.make nv 0 in
  let on_stack = Array.make nv false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let frame_v = Array.make (max nv 1) 0 in
  let frame_e = Array.make (max nv 1) 0 in
  for s = 0 to nv - 1 do
    if index.(s) = -1 then begin
      let sp = ref 0 in
      frame_v.(0) <- s;
      frame_e.(0) <- 0;
      index.(s) <- !counter;
      low.(s) <- !counter;
      incr counter;
      stack := s :: !stack;
      on_stack.(s) <- true;
      while !sp >= 0 do
        let v = frame_v.(!sp) in
        let ei = frame_e.(!sp) in
        if ei < Array.length adj.(v) then begin
          frame_e.(!sp) <- ei + 1;
          let w = adj.(v).(ei) in
          if index.(w) = -1 then begin
            index.(w) <- !counter;
            low.(w) <- !counter;
            incr counter;
            stack := w :: !stack;
            on_stack.(w) <- true;
            incr sp;
            frame_v.(!sp) <- w;
            frame_e.(!sp) <- 0
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w)
        end
        else begin
          if low.(v) = index.(v) then begin
            let comp = ref [] in
            let popping = ref true in
            while !popping do
              match !stack with
              | w :: rest ->
                stack := rest;
                on_stack.(w) <- false;
                comp := w :: !comp;
                if w = v then popping := false
              | [] -> popping := false
            done;
            comps := Array.of_list !comp :: !comps
          end;
          decr sp;
          if !sp >= 0 then begin
            let u = frame_v.(!sp) in
            low.(u) <- min low.(u) low.(v)
          end
        end
      done
    end
  done;
  (* Tarjan emits sinks first; the prepend-accumulator reverses that
     into topological (sources-first) order *)
  Array.of_list !comps

let collect flags =
  let acc = ref [] in
  for i = Array.length flags - 1 downto 0 do
    if flags.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let decompose a =
  let m = a.Csr.rows and n = a.Csr.cols in
  let matching = Matching.maximum a in
  let by_col = col_rows a in
  (* horizontal part: alternating BFS from every unmatched column
     (column → incident row → that row's matched column → …) *)
  let row_h = Array.make m false and col_h = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun j ->
      col_h.(j) <- true;
      Queue.add j q)
    (Matching.unmatched_cols matching);
  while not (Queue.is_empty q) do
    let j = Queue.pop q in
    List.iter
      (fun r ->
        if not row_h.(r) then begin
          row_h.(r) <- true;
          let c = matching.Matching.row_match.(r) in
          if c >= 0 && not col_h.(c) then begin
            col_h.(c) <- true;
            Queue.add c q
          end
        end)
      by_col.(j)
  done;
  (* vertical part: alternating BFS from every unmatched row
     (row → incident column → that column's matched row → …) *)
  let row_v = Array.make m false and col_v = Array.make n false in
  List.iter
    (fun i ->
      row_v.(i) <- true;
      Queue.add i q)
    (Matching.unmatched_rows matching);
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    Csr.iter_row a i (fun j _ ->
        if not col_v.(j) then begin
          col_v.(j) <- true;
          let r = matching.Matching.col_match.(j) in
          if r >= 0 && not row_v.(r) then begin
            row_v.(r) <- true;
            Queue.add r q
          end
        end)
  done;
  (* square part: everything the two searches did not claim *)
  let row_s = Array.init m (fun i -> (not row_h.(i)) && not row_v.(i)) in
  let col_s = Array.init n (fun j -> (not col_h.(j)) && not col_v.(j)) in
  let sq_rows = collect row_s and sq_cols = collect col_s in
  (* fine decomposition: SCCs of the square pairing graph — vertex
     u = (row rᵤ, col row_match rᵤ), edge u → v when A(rᵤ, c_v) ≠ 0 *)
  let vertex_of_col = Array.make n (-1) in
  Array.iteri
    (fun u r -> vertex_of_col.(matching.Matching.row_match.(r)) <- u)
    sq_rows;
  let adj =
    Array.mapi
      (fun u r ->
        let succ = ref [] in
        Csr.iter_row a r (fun j _ ->
            let v = vertex_of_col.(j) in
            if v >= 0 && v <> u then succ := v :: !succ);
        Array.of_list (List.sort_uniq Int.compare !succ))
      sq_rows
  in
  let comps = tarjan_scc adj in
  let blocks =
    Array.map
      (fun comp ->
        ( Array.map (fun u -> sq_rows.(u)) comp,
          Array.map (fun u -> matching.Matching.row_match.(sq_rows.(u))) comp ))
      comps
  in
  {
    matching;
    hor_rows = collect row_h;
    hor_cols = collect col_h;
    sq_rows;
    sq_cols;
    ver_rows = collect row_v;
    ver_cols = collect col_v;
    blocks;
  }

let is_structurally_nonsingular t =
  Array.length t.hor_cols = 0
  && Array.length t.ver_rows = 0
  && Array.length t.sq_rows = Array.length t.sq_cols
