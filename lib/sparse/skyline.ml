exception Singular of int

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val abs : t -> float
end

module type SOLVER = sig
  type elt
  type t

  val factor :
    ?pivot_tol:float -> n:int -> first:int array -> get:(int -> int -> elt) -> unit -> t

  val dim : t -> int
  val solve : t -> elt array -> elt array
  val solve_lower : t -> elt array -> elt array
  val solve_lower_t : t -> elt array -> elt array
  val d : t -> elt array
  val fill : t -> int
end

module Make (F : FIELD) = struct
  type elt = F.t

  type t = {
    n : int;
    first : int array; (* first envelope column of each row *)
    rows : F.t array array; (* rows.(i) holds L(i, first.(i) .. i-1) *)
    diag : F.t array; (* D *)
  }

  let dim t = t.n

  let d t = Array.copy t.diag

  let fill t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.rows

  (* Row-wise envelope LDLᵀ:
       L(i,j) = (A(i,j) - Σ_{k<j} L(i,k) D(k) L(j,k)) / D(j)
       D(i)   = A(i,i) - Σ_{k<i} L(i,k)² D(k)
     with k restricted to max(first.(i), first.(j)). *)
  let factor ?(pivot_tol = 1e-14) ~n ~first ~get () =
    let rows = Array.init n (fun i -> Array.make (i - first.(i)) F.zero) in
    let diag = Array.make n F.zero in
    let dmax = ref 0.0 in
    for i = 0 to n - 1 do
      dmax := Float.max !dmax (F.abs (get i i))
    done;
    (* relative to the diagonal scale so femto-scale matrices factor *)
    let breakdown = pivot_tol *. !dmax in
    for i = 0 to n - 1 do
      let fi = first.(i) in
      let ri = rows.(i) in
      for j = fi to i - 1 do
        let fj = first.(j) in
        let k0 = max fi fj in
        let s = ref (get i j) in
        for k = k0 to j - 1 do
          s := F.sub !s (F.mul (F.mul ri.(k - fi) diag.(k)) rows.(j).(k - fj))
        done;
        ri.(j - fi) <- F.div !s diag.(j)
      done;
      let s = ref (get i i) in
      for k = fi to i - 1 do
        let lik = ri.(k - fi) in
        s := F.sub !s (F.mul (F.mul lik lik) diag.(k))
      done;
      if F.abs !s <= breakdown then raise (Singular i);
      diag.(i) <- !s
    done;
    (* fp sanitizer (SYMOR_SAN=fp): scan the factor for NaN/Inf and
       monitor element growth against the input diagonal scale — reads
       only, so sanitized results are bitwise identical *)
    if San.fp () then begin
      let lmax = ref 0.0 and dmax_out = ref 0.0 and finite = ref true in
      Array.iter
        (fun r ->
          Array.iter
            (fun x ->
              let a = F.abs x in
              if Float.is_finite a then begin
                if a > !lmax then lmax := a
              end
              else finite := false)
            r)
        rows;
      Array.iter
        (fun x ->
          let a = F.abs x in
          if Float.is_finite a then begin
            if a > !dmax_out then dmax_out := a
          end
          else finite := false)
        diag;
      if !finite then San.Fp.growth ~name:"skyline.factor" ~scale:!dmax ~lmax:!lmax ~dmax:!dmax_out
      else San.Fp.growth ~name:"skyline.factor" ~scale:!dmax ~lmax:Float.nan ~dmax:Float.nan
    end;
    { n; first; rows; diag }

  let solve_lower t b =
    assert (Array.length b = t.n);
    let y = Array.copy b in
    for i = 0 to t.n - 1 do
      let fi = t.first.(i) in
      let ri = t.rows.(i) in
      let s = ref y.(i) in
      for k = fi to i - 1 do
        s := F.sub !s (F.mul ri.(k - fi) y.(k))
      done;
      y.(i) <- !s
    done;
    y

  let solve_lower_t t b =
    assert (Array.length b = t.n);
    let y = Array.copy b in
    for i = t.n - 1 downto 0 do
      let yi = y.(i) in
      let fi = t.first.(i) in
      let ri = t.rows.(i) in
      for k = fi to i - 1 do
        y.(k) <- F.sub y.(k) (F.mul ri.(k - fi) yi)
      done
    done;
    y

  let solve t b =
    let y = solve_lower t b in
    for i = 0 to t.n - 1 do
      y.(i) <- F.div y.(i) t.diag.(i)
    done;
    let y = solve_lower_t t y in
    if San.fp () then begin
      let finite = ref true in
      Array.iter (fun x -> if not (Float.is_finite (F.abs x)) then finite := false) y;
      if not !finite then San.Fp.check ~name:"skyline.solve" Float.nan
    end;
    y
end

module Real = Make (struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let abs = Float.abs
end)

module Complex_sym = Make (struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let abs = Complex.norm
end)

let envelope_of_csr a =
  let n = a.Csr.rows in
  let first = Array.init n (fun i -> i) in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j _ ->
        if j < first.(i) then first.(i) <- j;
        (* symmetrise the pattern: an upper entry (i, j), j > i, puts
           column i into row j's envelope *)
        if j > i && i < first.(j) then first.(j) <- i)
  done;
  first

(* scatter the lower triangle (plus diagonal) of a symmetric CSR matrix
   into envelope-aligned rows: row i spans columns first.(i) .. i, with
   the diagonal in the last slot. One pass over the stored entries — no
   per-entry row search. *)
let scatter_env n first a =
  let rows = Array.init n (fun i -> Array.make (i - first.(i) + 1) 0.0) in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j v ->
        if j <= i then rows.(i).(j - first.(i)) <- v
        else rows.(j).(i - first.(j)) <- v)
  done;
  rows

type pencil_env = {
  pe_n : int;
  pe_first : int array; (* merged G/C envelope *)
  pe_g : float array array; (* G(i, first.(i) .. i), diagonal last *)
  pe_c : float array array; (* C, same layout *)
}

let pencil_env g c =
  assert (g.Csr.rows = g.Csr.cols && c.Csr.rows = c.Csr.cols && g.Csr.rows = c.Csr.rows);
  if Obs.tracing () then Obs.span_begin "skyline.symbolic";
  let fg = envelope_of_csr g and fc = envelope_of_csr c in
  let n = g.Csr.rows in
  let first = Array.init n (fun i -> min fg.(i) fc.(i)) in
  let env =
    { pe_n = n; pe_first = first; pe_g = scatter_env n first g; pe_c = scatter_env n first c }
  in
  if Obs.tracing () then begin
    let nnz = ref 0 in
    for i = 0 to n - 1 do
      nnz := !nnz + (i - first.(i) + 1)
    done;
    Obs.gauge "skyline.env_nnz" (float_of_int !nnz);
    Obs.span_end ()
  end;
  env

let factor_real ?pivot_tol a =
  assert (a.Csr.rows = a.Csr.cols);
  let n = a.Csr.rows in
  let first = envelope_of_csr a in
  let rows = scatter_env n first a in
  Real.factor ?pivot_tol ~n ~first ~get:(fun i j -> rows.(i).(j - first.(i))) ()

let factor_pencil_real ?pivot_tol ?(extra = [||]) env s0 =
  let n = env.pe_n and first = env.pe_first in
  (* numeric assembly A = G + s₀·C into envelope-aligned rows; [extra]
     entries (lower triangle, inside the envelope) are accumulated on
     top — the Newton-Jacobian hook of the transient engine *)
  let rows =
    Array.init n (fun i ->
        let ge = env.pe_g.(i) and ce = env.pe_c.(i) in
        Array.init (i - first.(i) + 1) (fun k -> ge.(k) +. (s0 *. ce.(k))))
  in
  Array.iter
    (fun (i, j, v) ->
      let i, j = if i >= j then (i, j) else (j, i) in
      if j < first.(i) then invalid_arg "Skyline.factor_pencil_real: extra entry outside envelope";
      rows.(i).(j - first.(i)) <- rows.(i).(j - first.(i)) +. v)
    extra;
  Real.factor ?pivot_tol ~n ~first ~get:(fun i j -> rows.(i).(j - first.(i))) ()

let widen_env env extra_first =
  let n = env.pe_n in
  assert (Array.length extra_first = n);
  let first = Array.init n (fun i -> min env.pe_first.(i) (min extra_first.(i) i)) in
  let pad rows =
    Array.init n (fun i ->
        let shift = env.pe_first.(i) - first.(i) in
        if shift = 0 then rows.(i)
        else begin
          let r = Array.make (i - first.(i) + 1) 0.0 in
          Array.blit rows.(i) 0 r shift (Array.length rows.(i));
          r
        end)
  in
  { pe_n = n; pe_first = first; pe_g = pad env.pe_g; pe_c = pad env.pe_c }

let factor_complex_env ?pivot_tol env s =
  let first = env.pe_first in
  let get i j =
    let k = j - first.(i) in
    Complex.add
      { Complex.re = env.pe_g.(i).(k); im = 0.0 }
      (Complex.mul s { Complex.re = env.pe_c.(i).(k); im = 0.0 })
  in
  Complex_sym.factor ?pivot_tol ~n:env.pe_n ~first ~get ()

let factor_complex ?pivot_tol s g c = factor_complex_env ?pivot_tol (pencil_env g c) s

(* Split-complex (SoA) specialisation of the complex-symmetric LDLᵀ:
   re/im live in separate float arrays, so the recurrences run on
   unboxed floats instead of boxed Complex.t. Used by the AC hot path;
   Complex_sym stays as the reference oracle. *)
module Complex_soa = struct
  type t = {
    n : int;
    first : int array;
    rows_re : float array array; (* L(i, first.(i) .. i-1) *)
    rows_im : float array array;
    diag_re : float array; (* D *)
    diag_im : float array;
  }

  let dim t = t.n

  let fill t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.rows_re

  let d t = Array.init t.n (fun i -> { Complex.re = t.diag_re.(i); im = t.diag_im.(i) })

  let factor_pencil_numeric ~pivot_tol env s =
    let n = env.pe_n and first = env.pe_first in
    let s_re = s.Complex.re and s_im = s.Complex.im in
    let rows_re = Array.init n (fun i -> Array.make (i - first.(i)) 0.0) in
    let rows_im = Array.init n (fun i -> Array.make (i - first.(i)) 0.0) in
    let diag_re = Array.make n 0.0 and diag_im = Array.make n 0.0 in
    (* numeric assembly A = G + s·C straight into the factor storage;
       the strictly-lower slots are overwritten in place by L below *)
    for i = 0 to n - 1 do
      let ge = env.pe_g.(i) and ce = env.pe_c.(i) in
      let rre = rows_re.(i) and rim = rows_im.(i) in
      let len = i - first.(i) in
      for k = 0 to len - 1 do
        rre.(k) <- ge.(k) +. (s_re *. ce.(k));
        rim.(k) <- s_im *. ce.(k)
      done;
      diag_re.(i) <- ge.(len) +. (s_re *. ce.(len));
      diag_im.(i) <- s_im *. ce.(len)
    done;
    let dmax = ref 0.0 in
    for i = 0 to n - 1 do
      dmax := Float.max !dmax (Float.hypot diag_re.(i) diag_im.(i))
    done;
    let breakdown = pivot_tol *. !dmax in
    for i = 0 to n - 1 do
      let fi = first.(i) in
      let rire = rows_re.(i) and riim = rows_im.(i) in
      for j = fi to i - 1 do
        let fj = first.(j) in
        let rjre = rows_re.(j) and rjim = rows_im.(j) in
        let sre = ref rire.(j - fi) and sim = ref riim.(j - fi) in
        for k = max fi fj to j - 1 do
          (* s -= L(i,k) · D(k) · L(j,k) *)
          let are = rire.(k - fi) and aim = riim.(k - fi) in
          let bre = diag_re.(k) and bim = diag_im.(k) in
          let tre = (are *. bre) -. (aim *. bim) in
          let tim = (are *. bim) +. (aim *. bre) in
          let cre = rjre.(k - fj) and cim = rjim.(k - fj) in
          sre := !sre -. ((tre *. cre) -. (tim *. cim));
          sim := !sim -. ((tre *. cim) +. (tim *. cre))
        done;
        let dre = diag_re.(j) and dim = diag_im.(j) in
        let den = (dre *. dre) +. (dim *. dim) in
        rire.(j - fi) <- ((!sre *. dre) +. (!sim *. dim)) /. den;
        riim.(j - fi) <- ((!sim *. dre) -. (!sre *. dim)) /. den
      done;
      let sre = ref diag_re.(i) and sim = ref diag_im.(i) in
      for k = fi to i - 1 do
        (* s -= L(i,k)² · D(k) *)
        let lre = rire.(k - fi) and lim = riim.(k - fi) in
        let l2re = (lre *. lre) -. (lim *. lim) in
        let l2im = 2.0 *. lre *. lim in
        let bre = diag_re.(k) and bim = diag_im.(k) in
        sre := !sre -. ((l2re *. bre) -. (l2im *. bim));
        sim := !sim -. ((l2re *. bim) +. (l2im *. bre))
      done;
      if Float.hypot !sre !sim <= breakdown then raise (Singular i);
      diag_re.(i) <- !sre;
      diag_im.(i) <- !sim
    done;
    if San.fp () then begin
      let lmax = ref 0.0 and dmax_out = ref 0.0 and finite = ref true in
      let scan acc re im =
        Array.iteri
          (fun k x ->
            let a = Float.hypot x im.(k) in
            if Float.is_finite a then begin
              if a > !acc then acc := a
            end
            else finite := false)
          re
      in
      for i = 0 to n - 1 do
        scan lmax rows_re.(i) rows_im.(i)
      done;
      scan dmax_out diag_re diag_im;
      if !finite then
        San.Fp.growth ~name:"skyline.complex_soa" ~scale:!dmax ~lmax:!lmax ~dmax:!dmax_out
      else San.Fp.growth ~name:"skyline.complex_soa" ~scale:!dmax ~lmax:Float.nan ~dmax:Float.nan
    end;
    { n; first; rows_re; rows_im; diag_re; diag_im }

  (* the traced entry point: one "skyline.numeric" span per frequency
     point plus an O(n) envelope flop estimate — all behind the
     tracing branch, so the disabled path is the bare kernel *)
  let factor_pencil ?(pivot_tol = 1e-14) env s =
    if Obs.tracing () then begin
      Obs.span_begin "skyline.numeric";
      Obs.count "skyline.factor_points" 1;
      let first = env.pe_first in
      let fl = ref 0.0 in
      for i = 0 to env.pe_n - 1 do
        let len = float_of_int (i - first.(i)) in
        fl := !fl +. (len *. len /. 2.0)
      done;
      (* a complex mul-add is ~8 real flops on the split representation *)
      Obs.countf "skyline.flops_est" (8.0 *. !fl)
    end;
    match factor_pencil_numeric ~pivot_tol env s with
    | fac ->
      if Obs.tracing () then Obs.span_end ();
      fac
    | exception e ->
      if Obs.tracing () then Obs.span_end ();
      raise e

  let solve_split t b_re b_im =
    assert (Array.length b_re = t.n && Array.length b_im = t.n);
    (* forward substitution with unit-lower L, in place *)
    for i = 0 to t.n - 1 do
      let fi = t.first.(i) in
      let rre = t.rows_re.(i) and rim = t.rows_im.(i) in
      let sre = ref b_re.(i) and sim = ref b_im.(i) in
      for k = fi to i - 1 do
        let lre = rre.(k - fi) and lim = rim.(k - fi) in
        let yre = b_re.(k) and yim = b_im.(k) in
        sre := !sre -. ((lre *. yre) -. (lim *. yim));
        sim := !sim -. ((lre *. yim) +. (lim *. yre))
      done;
      b_re.(i) <- !sre;
      b_im.(i) <- !sim
    done;
    (* diagonal *)
    for i = 0 to t.n - 1 do
      let dre = t.diag_re.(i) and dim = t.diag_im.(i) in
      let den = (dre *. dre) +. (dim *. dim) in
      let yre = b_re.(i) and yim = b_im.(i) in
      b_re.(i) <- ((yre *. dre) +. (yim *. dim)) /. den;
      b_im.(i) <- ((yim *. dre) -. (yre *. dim)) /. den
    done;
    (* back substitution with Lᵀ *)
    for i = t.n - 1 downto 0 do
      let fi = t.first.(i) in
      let rre = t.rows_re.(i) and rim = t.rows_im.(i) in
      let yre = b_re.(i) and yim = b_im.(i) in
      for k = fi to i - 1 do
        let lre = rre.(k - fi) and lim = rim.(k - fi) in
        b_re.(k) <- b_re.(k) -. ((lre *. yre) -. (lim *. yim));
        b_im.(k) <- b_im.(k) -. ((lre *. yim) +. (lim *. yre))
      done
    done;
    if San.fp () then begin
      San.Fp.check_array ~name:"skyline.solve_split.re" b_re;
      San.Fp.check_array ~name:"skyline.solve_split.im" b_im
    end
end
