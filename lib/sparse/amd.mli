(** Minimum-degree fill-reducing ordering.

    Symbolically eliminates one vertex of minimum degree at a time,
    replacing its neighbourhood by a clique — the greedy heuristic
    behind AMD/MMD. Unlike {!Rcm}, which minimises the {e envelope}
    (profile) a skyline factorisation fills, minimum degree targets
    total factor fill, which is the right objective for genuinely
    two-dimensional patterns (grids, meshes, package models) where
    any banded ordering must fill the whole band.

    Use {!Etree.predicted_nnz} to compare the two on a concrete
    pattern — [symor analyze] does exactly that and reports the
    recommendation as [STR006]. *)

val order : Csr.t -> int array
(** [order a] returns [perm] with [perm.(new_index) = old_index]
    (the {!Csr.permute_sym} convention). The structure is
    symmetrised; disconnected patterns are fine. Guarantee: the
    {!Etree.predicted_nnz} of the returned ordering never exceeds
    the natural order's — when the greedy elimination loses to
    natural (possible on tiny or already-optimal patterns), the
    identity permutation is returned instead.

    Ties are broken by smallest vertex index, so the ordering is
    deterministic. Complexity [O(n²)] selection plus clique-update
    set work — fine up to a few thousand unknowns; swap in a
    bucketed degree structure before pointing it at larger MNA
    systems. *)

val identity : int -> int array
(** The identity permutation (ordering disabled). *)
