(** Minimum-degree fill-reducing ordering.

    Symbolically eliminates one vertex of minimum degree at a time,
    replacing its neighbourhood by a clique — the greedy heuristic
    behind AMD/MMD. Unlike {!Rcm}, which minimises the {e envelope}
    (profile) a skyline factorisation fills, minimum degree targets
    total factor fill, which is the right objective for genuinely
    two-dimensional patterns (grids, meshes, package models) where
    any banded ordering must fill the whole band.

    Use {!Etree.predicted_nnz} to compare the two on a concrete
    pattern — [symor analyze] does exactly that and reports the
    recommendation as [STR006]. *)

val order : Csr.t -> int array
(** [order a] returns [perm] with [perm.(new_index) = old_index]
    (the {!Csr.permute_sym} convention). The structure is
    symmetrised; disconnected patterns are fine. Guarantee: the
    {!Etree.predicted_nnz} of the returned ordering never exceeds
    the natural order's — when the greedy elimination loses to
    natural (possible on tiny or already-optimal patterns), the
    identity permutation is returned instead.

    Ties are broken deterministically. Two implementations sit behind
    this entry point: up to 1024 unknowns the exact greedy
    minimum-degree (O(n²) selection, smallest-index tie-break — the
    behaviour existing fixtures pin); beyond that the quotient-graph
    approximate minimum degree ({!order_approx}), which is what makes
    AMD usable at the 10⁵–10⁶-unknown scale the supernodal backend
    targets. *)

val order_approx : Csr.t -> int array
(** Approximate minimum degree (Amestoy–Davis–Duff) on a quotient
    graph: eliminated pivots become hyperedge {e elements}, external
    degrees are maintained by the AMD upper bound
    [|A_i∖Lp| + |Lp∖i| + Σ_e |Le∖Lp|] instead of exact set unions,
    fully covered elements are absorbed aggressively, and
    indistinguishable variables (identical edge + element lists) merge
    into supervariables ordered consecutively. Near-linear in
    [nnz(L)]; deterministic. No never-worse guard — {!order} applies
    it. *)

val identity : int -> int array
(** The identity permutation (ordering disabled). *)
