(** Dulmage–Mendelsohn decomposition of a sparsity pattern.

    The coarse decomposition splits the rows and columns of any
    rectangular pattern into three parts, canonically and
    value-independently:

    - the {e horizontal} (underdetermined) part — columns reachable
      from unmatched columns by alternating paths, together with the
      rows they touch: more columns than rows, so those unknowns are
      not determined by any value assignment;
    - the {e vertical} (overdetermined) part — rows reachable from
      unmatched rows: structurally redundant/conflicting equations;
    - the {e square} well-determined part, which carries a perfect
      matching and is further split ({e fine} decomposition) into the
      strongly connected components of its directed pairing graph —
      the block-triangular form (BTF) that a factorisation can exploit
      block by block.

    A square pattern is structurally nonsingular iff both the
    horizontal and vertical parts are empty. *)

type t = {
  matching : Matching.t;
  hor_rows : int array;
  hor_cols : int array;
      (** Underdetermined part: [hor_cols] strictly outnumber
          [hor_rows] when nonempty. *)
  sq_rows : int array;
  sq_cols : int array;  (** Perfectly matched square part. *)
  ver_rows : int array;
  ver_cols : int array;
      (** Overdetermined part: [ver_rows] strictly outnumber
          [ver_cols] when nonempty. *)
  blocks : (int array * int array) array;
      (** Fine decomposition of the square part: one [(rows, cols)]
          pair per diagonal block of the BTF, in topological order
          (each block depends only on later blocks). Row/column
          indices refer to the original matrix. *)
}

val decompose : Csr.t -> t
(** Decompose the stored-entry pattern (values ignored). *)

val is_structurally_nonsingular : t -> bool
(** True iff the matrix is square with a perfect matching. *)
