(** Reverse Cuthill–McKee fill-reducing ordering.

    Produces a permutation that clusters a sparse symmetric matrix
    around its diagonal, shrinking the envelope that the skyline
    factorisation fills in. *)

val order : Csr.t -> int array
(** [order a] returns [perm] such that [Csr.permute_sym a perm] has a
    small profile; [perm.(new_index) = old_index]. The structure of
    [a] is symmetrised internally, so slightly unsymmetric patterns
    are accepted. Disconnected graphs are handled component by
    component. Guarantee: the returned ordering's {!Csr.profile}
    never exceeds the natural order's — when the heuristic loses,
    the identity permutation is returned instead. *)

val identity : int -> int array
(** The identity permutation (ordering disabled). *)
