(* Left-looking supernodal sparse LDLᵀ.

   Columns with nested factor structure (fundamental supernodes, plus
   an optional relaxed-amalgamation budget) are grouped into dense
   row-major panels; the numeric phase then runs on contiguous float
   arrays with dot-product inner kernels instead of per-entry index
   chasing. The skyline envelope kernel remains the accuracy oracle —
   this module is the scattered-sparsity (AMD-ordered) backend.

   Input matrices are expected already permuted by a fill-reducing
   ordering composed with an elimination-tree postorder ({!order}
   builds one); the postorder is what makes every fundamental
   supernode a contiguous column range. *)

exception Singular of int

let width_cap = 128

type symbolic = {
  sy_n : int;
  sy_nsuper : int;
  sy_start : int array; (* length nsuper+1; supernode s spans columns
                           [sy_start.(s), sy_start.(s+1)) *)
  sy_colsn : int array; (* column -> supernode *)
  sy_rows : int array array;
      (* per supernode: sorted panel row indices; the first w entries
         are the supernode's own columns, the rest the below rows *)
  sy_g : float array array; (* G pre-scattered into row-major len×w panels *)
  sy_c : float array array; (* C, same layout; empty panels without C *)
  sy_has_c : bool;
  sy_nnz : int; (* stored lower-triangle nnz, diagonal included *)
  sy_maxw : int;
}

let structural_union (g : Csr.t) c extra =
  let tr = Triplet.create g.Csr.rows g.Csr.cols in
  let add (m : Csr.t) =
    for i = 0 to m.Csr.rows - 1 do
      for k = m.Csr.row_ptr.(i) to m.Csr.row_ptr.(i + 1) - 1 do
        Triplet.add tr i m.Csr.col_idx.(k) 1.0
      done
    done
  in
  add g;
  (match c with Some cm -> add cm | None -> ());
  (match extra with
  | Some positions -> Array.iter (fun (i, j) -> Triplet.add_sym tr i j 1.0) positions
  | None -> ());
  Csr.of_triplet tr

let merged_pattern ?extra g c =
  match (c, extra) with None, None -> g | _ -> structural_union g c extra

let order ?c g =
  let pat = merged_pattern g c in
  let p1 = Amd.order pat in
  let post = Etree.postorder (Etree.of_pattern (Csr.permute_sym pat p1)) in
  Array.map (fun k -> p1.(k)) post

let symbolic ?(relax = 0) ?extra_pattern ?c g =
  let n = g.Csr.rows in
  if g.Csr.cols <> n then invalid_arg "Supernodal.symbolic: square matrix expected";
  (match c with
  | Some cm ->
    if cm.Csr.rows <> n || cm.Csr.cols <> n then
      invalid_arg "Supernodal.symbolic: G/C dimension mismatch"
  | None -> ());
  let has_c = Option.is_some c in
  if n = 0 then
    {
      sy_n = 0;
      sy_nsuper = 0;
      sy_start = [| 0 |];
      sy_colsn = [||];
      sy_rows = [||];
      sy_g = [||];
      sy_c = [||];
      sy_has_c = has_c;
      sy_nnz = 0;
      sy_maxw = 0;
    }
  else begin
    let pat = merged_pattern ?extra:extra_pattern g c in
    let et = Etree.of_pattern pat in
    let parent = et.Etree.parent and cc = et.Etree.col_counts in
    (* supernode boundaries: column j joins the running supernode when
       it continues an elimination-tree chain and either has exactly
       nested structure (the fundamental rule, padding delta = 0) or
       fits the relaxed-amalgamation padding budget *)
    let starts = Array.make (n + 1) 0 in
    let nsuper = ref 1 in
    let start = ref 0 in
    let pad = ref 0 in
    for j = 1 to n - 1 do
      let w = j - !start in
      let delta = w * (cc.(j) + 1 - cc.(j - 1)) in
      if parent.(j - 1) = j && w < width_cap && !pad + delta <= relax then
        pad := !pad + delta
      else begin
        starts.(!nsuper) <- j;
        incr nsuper;
        start := j;
        pad := 0
      end
    done;
    let ns = !nsuper in
    let sy_start = Array.make (ns + 1) n in
    Array.blit starts 0 sy_start 0 ns;
    let colsn = Array.make n 0 in
    for s = 0 to ns - 1 do
      for j = sy_start.(s) to sy_start.(s + 1) - 1 do
        colsn.(j) <- s
      done
    done;
    (* child supernodes: t is a child of the supernode owning the
       elimination-tree parent of t's last column *)
    let child_head = Array.make ns (-1) in
    let child_next = Array.make ns (-1) in
    for t = 0 to ns - 1 do
      let p = parent.(sy_start.(t + 1) - 1) in
      if p <> -1 then begin
        let s = colsn.(p) in
        child_next.(t) <- child_head.(s);
        child_head.(s) <- t
      end
    done;
    (* panel patterns: own columns ∪ stored entries below the diagonal
       ∪ the below rows of every child supernode (symbolic
       factorisation by supernode-wise row merging) *)
    let rows = Array.make ns [||] in
    let mark = Array.make n (-1) in
    let scratch = Array.make n 0 in
    for s = 0 to ns - 1 do
      let st = sy_start.(s) and en = sy_start.(s + 1) in
      let cnt = ref 0 in
      for j = st to en - 1 do
        mark.(j) <- s;
        scratch.(!cnt) <- j;
        incr cnt
      done;
      for j = st to en - 1 do
        for k = pat.Csr.row_ptr.(j) to pat.Csr.row_ptr.(j + 1) - 1 do
          let i = pat.Csr.col_idx.(k) in
          if i > j && mark.(i) <> s then begin
            mark.(i) <- s;
            scratch.(!cnt) <- i;
            incr cnt
          end
        done
      done;
      let t = ref child_head.(s) in
      while !t <> -1 do
        let rt = rows.(!t) in
        let wt = sy_start.(!t + 1) - sy_start.(!t) in
        for k = wt to Array.length rt - 1 do
          let i = rt.(k) in
          if mark.(i) <> s then begin
            mark.(i) <- s;
            scratch.(!cnt) <- i;
            incr cnt
          end
        done;
        t := child_next.(!t)
      done;
      let r = Array.sub scratch 0 !cnt in
      Array.sort Int.compare r;
      rows.(s) <- r
    done;
    let nnz = ref 0 and maxw = ref 0 in
    for s = 0 to ns - 1 do
      let w = sy_start.(s + 1) - sy_start.(s) in
      let len = Array.length rows.(s) in
      nnz := !nnz + (w * len) - (w * (w - 1) / 2);
      if w > !maxw then maxw := w
    done;
    (* pre-scatter G and C into panel slots so every numeric
       factorisation of G + s₀C is free of pattern analysis *)
    let pos = Array.make n 0 in
    let gpan = Array.make ns [||] in
    let cpan = Array.make ns [||] in
    let scatter (m : Csr.t) s panel =
      let st = sy_start.(s) and en = sy_start.(s + 1) in
      let w = en - st in
      for j = st to en - 1 do
        let cl = j - st in
        for k = m.Csr.row_ptr.(j) to m.Csr.row_ptr.(j + 1) - 1 do
          let i = m.Csr.col_idx.(k) in
          if i >= j then begin
            let slot = (pos.(i) * w) + cl in
            panel.(slot) <- panel.(slot) +. m.Csr.values.(k)
          end
        done
      done
    in
    for s = 0 to ns - 1 do
      let r = rows.(s) in
      let len = Array.length r in
      let w = sy_start.(s + 1) - sy_start.(s) in
      for k = 0 to len - 1 do
        pos.(r.(k)) <- k
      done;
      let gp = Array.make (len * w) 0.0 in
      scatter g s gp;
      gpan.(s) <- gp;
      match c with
      | Some cm ->
        let cp = Array.make (len * w) 0.0 in
        scatter cm s cp;
        cpan.(s) <- cp
      | None -> ()
    done;
    {
      sy_n = n;
      sy_nsuper = ns;
      sy_start;
      sy_colsn = colsn;
      sy_rows = rows;
      sy_g = gpan;
      sy_c = cpan;
      sy_has_c = has_c;
      sy_nnz = !nnz;
      sy_maxw = !maxw;
    }
  end

let nnz sym = sym.sy_nnz
let supernodes sym = sym.sy_nsuper
let dim sym = sym.sy_n

let bsearch (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = x then begin
      res := mid;
      lo := !hi + 1
    end
    else if v < x then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let stamp_extra sym (pan : float array array) entries =
  Array.iter
    (fun (i, j, v) ->
      let r = if i >= j then i else j in
      let cgl = if i >= j then j else i in
      if r < 0 || r >= sym.sy_n then invalid_arg "Supernodal: extra entry out of range";
      let s = sym.sy_colsn.(cgl) in
      let st = sym.sy_start.(s) in
      let w = sym.sy_start.(s + 1) - st in
      let k = bsearch sym.sy_rows.(s) r in
      if k < 0 then invalid_arg "Supernodal: extra entry outside the factor pattern";
      let p = pan.(s) in
      let slot = (k * w) + (cgl - st) in
      p.(slot) <- p.(slot) +. v)
    entries

module Real = struct
  type t = { sym : symbolic; pan : float array array; d : float array }

  let factor ?(pivot_tol = 1e-14) ?extra sym s0 =
    let n = sym.sy_n in
    let ns = sym.sy_nsuper in
    (* numeric assembly: panels = G + s₀C, straight axpy over the
       pre-scattered symbolic panels *)
    let pan = Array.make ns [||] in
    for s = 0 to ns - 1 do
      let gp = sym.sy_g.(s) in
      let p = Array.copy gp in
      if sym.sy_has_c && s0 <> 0.0 then begin
        let cp = sym.sy_c.(s) in
        for k = 0 to Array.length p - 1 do
          Array.unsafe_set p k (Array.unsafe_get p k +. (s0 *. Array.unsafe_get cp k))
        done
      end;
      pan.(s) <- p
    done;
    (match extra with None -> () | Some entries -> stamp_extra sym pan entries);
    let dmax = ref 0.0 in
    for s = 0 to ns - 1 do
      let w = sym.sy_start.(s + 1) - sym.sy_start.(s) in
      let p = pan.(s) in
      for cl = 0 to w - 1 do
        let a = Float.abs p.((cl * w) + cl) in
        if a > !dmax then dmax := a
      done
    done;
    let breakdown = pivot_tol *. !dmax in
    let d = Array.make n 0.0 in
    let pos = Array.make n 0 in
    let head = Array.make ns (-1) in
    let next = Array.make ns (-1) in
    let ptr = Array.make ns 0 in
    let tmp = Array.make (max sym.sy_maxw 1) 0.0 in
    for s = 0 to ns - 1 do
      let st = sym.sy_start.(s) in
      let en = sym.sy_start.(s + 1) in
      let w = en - st in
      let rs = sym.sy_rows.(s) in
      let len = Array.length rs in
      let p = pan.(s) in
      for k = 0 to len - 1 do
        pos.(Array.unsafe_get rs k) <- k
      done;
      (* drain the pending-update list: every factored supernode whose
         next unconsumed row lands in this column range scatters its
         rank-w_t outer-product contribution into the panel; the
         fill-path theorem guarantees every (row, col) pair it touches
         is inside this panel's pattern, so the pos map needs no
         membership test *)
      let t = ref head.(s) in
      head.(s) <- -1;
      while !t <> -1 do
        let tt = !t in
        let nx = next.(tt) in
        let rt = sym.sy_rows.(tt) in
        let lent = Array.length rt in
        let stt = sym.sy_start.(tt) in
        let wt = sym.sy_start.(tt + 1) - stt in
        let pt = pan.(tt) in
        let p0 = ptr.(tt) in
        let q = ref p0 in
        while !q < lent && Array.unsafe_get rt !q < en do
          incr q
        done;
        let q = !q in
        for jj = p0 to q - 1 do
          let cj = Array.unsafe_get pos (Array.unsafe_get rt jj) in
          let base_j = jj * wt in
          for cx = 0 to wt - 1 do
            Array.unsafe_set tmp cx
              (Array.unsafe_get d (stt + cx) *. Array.unsafe_get pt (base_j + cx))
          done;
          for kk = jj to lent - 1 do
            let ki = Array.unsafe_get pos (Array.unsafe_get rt kk) in
            let base_k = kk * wt in
            let acc = ref 0.0 in
            for cx = 0 to wt - 1 do
              acc := !acc +. (Array.unsafe_get pt (base_k + cx) *. Array.unsafe_get tmp cx)
            done;
            let slot = (ki * w) + cj in
            Array.unsafe_set p slot (Array.unsafe_get p slot -. !acc)
          done
        done;
        ptr.(tt) <- q;
        if q < lent then begin
          let s' = sym.sy_colsn.(Array.unsafe_get rt q) in
          next.(tt) <- head.(s');
          head.(s') <- tt
        end;
        t := nx
      done;
      (* dense panel LDLᵀ: for each local column, finish the pivot
         against earlier columns of this supernode, then the
         trsm-shaped below-diagonal column scaled by 1/d *)
      for cl = 0 to w - 1 do
        let base_c = cl * w in
        let piv = ref (Array.unsafe_get p (base_c + cl)) in
        for c2 = 0 to cl - 1 do
          let l = Array.unsafe_get p (base_c + c2) in
          piv := !piv -. (l *. l *. Array.unsafe_get d (st + c2))
        done;
        if Float.abs !piv <= breakdown then raise (Singular (st + cl));
        Array.unsafe_set d (st + cl) !piv;
        let inv = 1.0 /. !piv in
        for kk = cl + 1 to len - 1 do
          let base_k = kk * w in
          let acc = ref (Array.unsafe_get p (base_k + cl)) in
          for c2 = 0 to cl - 1 do
            acc :=
              !acc
              -. (Array.unsafe_get p (base_k + c2)
                 *. Array.unsafe_get d (st + c2)
                 *. Array.unsafe_get p (base_c + c2))
          done;
          Array.unsafe_set p (base_k + cl) (!acc *. inv)
        done
      done;
      if w < len then begin
        ptr.(s) <- w;
        let s' = sym.sy_colsn.(rs.(w)) in
        next.(s) <- head.(s');
        head.(s') <- s
      end
    done;
    (* fp sanitizer (SYMOR_SAN=fp): scan the factor for NaN/Inf and
       monitor element growth — reads only, results bitwise identical *)
    if San.fp () then begin
      let lmax = ref 0.0 and dmax_out = ref 0.0 and finite = ref true in
      Array.iter
        (fun pnl ->
          Array.iter
            (fun x ->
              let a = Float.abs x in
              if Float.is_finite a then begin
                if a > !lmax then lmax := a
              end
              else finite := false)
            pnl)
        pan;
      Array.iter
        (fun x ->
          let a = Float.abs x in
          if Float.is_finite a then begin
            if a > !dmax_out then dmax_out := a
          end
          else finite := false)
        d;
      if !finite then
        San.Fp.growth ~name:"supernodal.factor" ~scale:!dmax ~lmax:!lmax ~dmax:!dmax_out
      else San.Fp.growth ~name:"supernodal.factor" ~scale:!dmax ~lmax:Float.nan ~dmax:Float.nan
    end;
    { sym; pan; d }

  let dim t = t.sym.sy_n

  let solve_lower t b =
    assert (Array.length b = t.sym.sy_n);
    let x = Array.copy b in
    for s = 0 to t.sym.sy_nsuper - 1 do
      let st = t.sym.sy_start.(s) in
      let w = t.sym.sy_start.(s + 1) - st in
      let rs = t.sym.sy_rows.(s) in
      let len = Array.length rs in
      let p = t.pan.(s) in
      for cl = 0 to w - 1 do
        let xj = Array.unsafe_get x (st + cl) in
        for kk = cl + 1 to len - 1 do
          let i = Array.unsafe_get rs kk in
          Array.unsafe_set x i
            (Array.unsafe_get x i -. (Array.unsafe_get p ((kk * w) + cl) *. xj))
        done
      done
    done;
    x

  let solve_lower_t t b =
    assert (Array.length b = t.sym.sy_n);
    let x = Array.copy b in
    for s = t.sym.sy_nsuper - 1 downto 0 do
      let st = t.sym.sy_start.(s) in
      let w = t.sym.sy_start.(s + 1) - st in
      let rs = t.sym.sy_rows.(s) in
      let len = Array.length rs in
      let p = t.pan.(s) in
      for cl = w - 1 downto 0 do
        let acc = ref (Array.unsafe_get x (st + cl)) in
        for kk = cl + 1 to len - 1 do
          acc :=
            !acc
            -. (Array.unsafe_get p ((kk * w) + cl)
               *. Array.unsafe_get x (Array.unsafe_get rs kk))
        done;
        Array.unsafe_set x (st + cl) !acc
      done
    done;
    x

  let solve t b =
    let y = solve_lower t b in
    for i = 0 to t.sym.sy_n - 1 do
      y.(i) <- y.(i) /. t.d.(i)
    done;
    let y = solve_lower_t t y in
    if San.fp () then San.Fp.check_array ~name:"supernodal.solve" y;
    y

  let d t = Array.copy t.d
  let fill t = t.sym.sy_nnz
end

(* Split-complex (structure-of-arrays) kernels for the AC path: the
   same supernodal recurrences on [G + sC] with re/im in separate
   unboxed float arrays. [Skyline.Complex_sym] is the oracle. *)
module Complex_soa = struct
  type t = {
    sym : symbolic;
    pre : float array array;
    pim : float array array;
    dre : float array;
    dim_ : float array;
  }

  let factor ?(pivot_tol = 1e-14) sym (s : Complex.t) =
    let n = sym.sy_n in
    let ns = sym.sy_nsuper in
    let sre = s.Complex.re and sim = s.Complex.im in
    let pre = Array.make ns [||] in
    let pim = Array.make ns [||] in
    for sn = 0 to ns - 1 do
      let gp = sym.sy_g.(sn) in
      let m = Array.length gp in
      let re = Array.copy gp in
      let im = Array.make m 0.0 in
      if sym.sy_has_c then begin
        let cp = sym.sy_c.(sn) in
        for k = 0 to m - 1 do
          let cv = Array.unsafe_get cp k in
          Array.unsafe_set re k (Array.unsafe_get re k +. (sre *. cv));
          Array.unsafe_set im k (sim *. cv)
        done
      end;
      pre.(sn) <- re;
      pim.(sn) <- im
    done;
    let dmax = ref 0.0 in
    for sn = 0 to ns - 1 do
      let w = sym.sy_start.(sn + 1) - sym.sy_start.(sn) in
      let re = pre.(sn) and im = pim.(sn) in
      for cl = 0 to w - 1 do
        let slot = (cl * w) + cl in
        let a = Float.hypot re.(slot) im.(slot) in
        if a > !dmax then dmax := a
      done
    done;
    let breakdown = pivot_tol *. !dmax in
    let dre = Array.make n 0.0 in
    let dim_ = Array.make n 0.0 in
    let pos = Array.make n 0 in
    let head = Array.make ns (-1) in
    let next = Array.make ns (-1) in
    let ptr = Array.make ns 0 in
    let mw = max sym.sy_maxw 1 in
    let tre = Array.make mw 0.0 in
    let tim = Array.make mw 0.0 in
    for sn = 0 to ns - 1 do
      let st = sym.sy_start.(sn) in
      let en = sym.sy_start.(sn + 1) in
      let w = en - st in
      let rs = sym.sy_rows.(sn) in
      let len = Array.length rs in
      let re = pre.(sn) and im = pim.(sn) in
      for k = 0 to len - 1 do
        pos.(Array.unsafe_get rs k) <- k
      done;
      let t = ref head.(sn) in
      head.(sn) <- -1;
      while !t <> -1 do
        let tt = !t in
        let nx = next.(tt) in
        let rt = sym.sy_rows.(tt) in
        let lent = Array.length rt in
        let stt = sym.sy_start.(tt) in
        let wt = sym.sy_start.(tt + 1) - stt in
        let tr = pre.(tt) and ti = pim.(tt) in
        let p0 = ptr.(tt) in
        let q = ref p0 in
        while !q < lent && Array.unsafe_get rt !q < en do
          incr q
        done;
        let q = !q in
        for jj = p0 to q - 1 do
          let cj = Array.unsafe_get pos (Array.unsafe_get rt jj) in
          let base_j = jj * wt in
          for cx = 0 to wt - 1 do
            let ar = Array.unsafe_get tr (base_j + cx)
            and ai = Array.unsafe_get ti (base_j + cx) in
            let br = Array.unsafe_get dre (stt + cx)
            and bi = Array.unsafe_get dim_ (stt + cx) in
            Array.unsafe_set tre cx ((ar *. br) -. (ai *. bi));
            Array.unsafe_set tim cx ((ar *. bi) +. (ai *. br))
          done;
          for kk = jj to lent - 1 do
            let ki = Array.unsafe_get pos (Array.unsafe_get rt kk) in
            let base_k = kk * wt in
            let accr = ref 0.0 and acci = ref 0.0 in
            for cx = 0 to wt - 1 do
              let ar = Array.unsafe_get tr (base_k + cx)
              and ai = Array.unsafe_get ti (base_k + cx) in
              let br = Array.unsafe_get tre cx and bi = Array.unsafe_get tim cx in
              accr := !accr +. ((ar *. br) -. (ai *. bi));
              acci := !acci +. ((ar *. bi) +. (ai *. br))
            done;
            let slot = (ki * w) + cj in
            Array.unsafe_set re slot (Array.unsafe_get re slot -. !accr);
            Array.unsafe_set im slot (Array.unsafe_get im slot -. !acci)
          done
        done;
        ptr.(tt) <- q;
        if q < lent then begin
          let s' = sym.sy_colsn.(Array.unsafe_get rt q) in
          next.(tt) <- head.(s');
          head.(s') <- tt
        end;
        t := nx
      done;
      for cl = 0 to w - 1 do
        let base_c = cl * w in
        let pr = ref (Array.unsafe_get re (base_c + cl)) in
        let pi = ref (Array.unsafe_get im (base_c + cl)) in
        for c2 = 0 to cl - 1 do
          let lr = Array.unsafe_get re (base_c + c2)
          and li = Array.unsafe_get im (base_c + c2) in
          let dr = Array.unsafe_get dre (st + c2) and di = Array.unsafe_get dim_ (st + c2) in
          (* l² d, complex symmetric (no conjugation) *)
          let l2r = (lr *. lr) -. (li *. li) in
          let l2i = 2.0 *. lr *. li in
          pr := !pr -. ((l2r *. dr) -. (l2i *. di));
          pi := !pi -. ((l2r *. di) +. (l2i *. dr))
        done;
        if Float.hypot !pr !pi <= breakdown then raise (Singular (st + cl));
        Array.unsafe_set dre (st + cl) !pr;
        Array.unsafe_set dim_ (st + cl) !pi;
        let den = (!pr *. !pr) +. (!pi *. !pi) in
        let ir = !pr /. den and ii = -.(!pi /. den) in
        for kk = cl + 1 to len - 1 do
          let base_k = kk * w in
          let accr = ref (Array.unsafe_get re (base_k + cl)) in
          let acci = ref (Array.unsafe_get im (base_k + cl)) in
          for c2 = 0 to cl - 1 do
            let ar = Array.unsafe_get re (base_k + c2)
            and ai = Array.unsafe_get im (base_k + c2) in
            let dr = Array.unsafe_get dre (st + c2) and di = Array.unsafe_get dim_ (st + c2) in
            let br = Array.unsafe_get re (base_c + c2)
            and bi = Array.unsafe_get im (base_c + c2) in
            let mr = (ar *. dr) -. (ai *. di) in
            let mi = (ar *. di) +. (ai *. dr) in
            accr := !accr -. ((mr *. br) -. (mi *. bi));
            acci := !acci -. ((mr *. bi) +. (mi *. br))
          done;
          Array.unsafe_set re (base_k + cl) ((!accr *. ir) -. (!acci *. ii));
          Array.unsafe_set im (base_k + cl) ((!accr *. ii) +. (!acci *. ir))
        done
      done;
      if w < len then begin
        ptr.(sn) <- w;
        let s' = sym.sy_colsn.(rs.(w)) in
        next.(sn) <- head.(s');
        head.(s') <- sn
      end
    done;
    if San.fp () then begin
      let lmax = ref 0.0 and dmax_out = ref 0.0 and finite = ref true in
      let scan_pair rs is =
        for k = 0 to Array.length rs - 1 do
          let a = Float.hypot rs.(k) is.(k) in
          if Float.is_finite a then begin
            if a > !lmax then lmax := a
          end
          else finite := false
        done
      in
      Array.iteri (fun i rp -> scan_pair rp pim.(i)) pre;
      for i = 0 to n - 1 do
        let a = Float.hypot dre.(i) dim_.(i) in
        if Float.is_finite a then begin
          if a > !dmax_out then dmax_out := a
        end
        else finite := false
      done;
      if !finite then
        San.Fp.growth ~name:"supernodal.complex_soa" ~scale:!dmax ~lmax:!lmax
          ~dmax:!dmax_out
      else
        San.Fp.growth ~name:"supernodal.complex_soa" ~scale:!dmax ~lmax:Float.nan
          ~dmax:Float.nan
    end;
    { sym; pre; pim; dre; dim_ }

  let dim t = t.sym.sy_n

  let solve_split t b_re b_im =
    let n = t.sym.sy_n in
    assert (Array.length b_re = n && Array.length b_im = n);
    for s = 0 to t.sym.sy_nsuper - 1 do
      let st = t.sym.sy_start.(s) in
      let w = t.sym.sy_start.(s + 1) - st in
      let rs = t.sym.sy_rows.(s) in
      let len = Array.length rs in
      let re = t.pre.(s) and im = t.pim.(s) in
      for cl = 0 to w - 1 do
        let xr = Array.unsafe_get b_re (st + cl) in
        let xi = Array.unsafe_get b_im (st + cl) in
        for kk = cl + 1 to len - 1 do
          let i = Array.unsafe_get rs kk in
          let lr = Array.unsafe_get re ((kk * w) + cl)
          and li = Array.unsafe_get im ((kk * w) + cl) in
          Array.unsafe_set b_re i (Array.unsafe_get b_re i -. ((lr *. xr) -. (li *. xi)));
          Array.unsafe_set b_im i (Array.unsafe_get b_im i -. ((lr *. xi) +. (li *. xr)))
        done
      done
    done;
    for i = 0 to n - 1 do
      let dr = t.dre.(i) and di = t.dim_.(i) in
      let den = (dr *. dr) +. (di *. di) in
      let xr = b_re.(i) and xi = b_im.(i) in
      b_re.(i) <- ((xr *. dr) +. (xi *. di)) /. den;
      b_im.(i) <- ((xi *. dr) -. (xr *. di)) /. den
    done;
    for s = t.sym.sy_nsuper - 1 downto 0 do
      let st = t.sym.sy_start.(s) in
      let w = t.sym.sy_start.(s + 1) - st in
      let rs = t.sym.sy_rows.(s) in
      let len = Array.length rs in
      let re = t.pre.(s) and im = t.pim.(s) in
      for cl = w - 1 downto 0 do
        let accr = ref (Array.unsafe_get b_re (st + cl)) in
        let acci = ref (Array.unsafe_get b_im (st + cl)) in
        for kk = cl + 1 to len - 1 do
          let i = Array.unsafe_get rs kk in
          let lr = Array.unsafe_get re ((kk * w) + cl)
          and li = Array.unsafe_get im ((kk * w) + cl) in
          let xr = Array.unsafe_get b_re i and xi = Array.unsafe_get b_im i in
          accr := !accr -. ((lr *. xr) -. (li *. xi));
          acci := !acci -. ((lr *. xi) +. (li *. xr))
        done;
        Array.unsafe_set b_re (st + cl) !accr;
        Array.unsafe_set b_im (st + cl) !acci
      done
    done;
    if San.fp () then begin
      San.Fp.check_array ~name:"supernodal.solve_split.re" b_re;
      San.Fp.check_array ~name:"supernodal.solve_split.im" b_im
    end

  let d t =
    Array.init (dim t) (fun i -> { Complex.re = t.dre.(i); im = t.dim_.(i) })

  let fill t = t.sym.sy_nnz
end
