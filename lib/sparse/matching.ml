type t = { row_match : int array; col_match : int array; rank : int }

(* MC21: for each unmatched row, search for an augmenting alternating
   path (row → unvisited column → its matched row → …) and flip the
   matching along it. The DFS is iterative: [stack] holds the rows on
   the current path, [via.(d)] the column used to advance from
   [stack.(d)], and [ptr.(i)] the next untried edge of row [i].
   Columns carry a visit stamp per root so each is explored once per
   augmentation attempt. *)
let maximum a =
  let m = a.Csr.rows and n = a.Csr.cols in
  let row_ptr = a.Csr.row_ptr and col_idx = a.Csr.col_idx in
  let row_match = Array.make m (-1) and col_match = Array.make n (-1) in
  (* cheap greedy pass: matches the diagonal-dominant bulk of MNA
     patterns, leaving the DFS only the hard leftovers *)
  for i = 0 to m - 1 do
    let k = ref row_ptr.(i) in
    while row_match.(i) = -1 && !k < row_ptr.(i + 1) do
      let j = col_idx.(!k) in
      if col_match.(j) = -1 then begin
        row_match.(i) <- j;
        col_match.(j) <- i
      end;
      incr k
    done
  done;
  let visited = Array.make n (-1) in
  let stack = Array.make (m + 1) 0 in
  let via = Array.make (m + 1) 0 in
  let ptr = Array.make (max m 1) 0 in
  for root = 0 to m - 1 do
    if row_match.(root) = -1 then begin
      let depth = ref 0 in
      stack.(0) <- root;
      ptr.(root) <- row_ptr.(root);
      let augmented = ref false in
      while !depth >= 0 && not !augmented do
        let i = stack.(!depth) in
        if ptr.(i) >= row_ptr.(i + 1) then
          (* row exhausted: backtrack *)
          decr depth
        else begin
          let j = col_idx.(ptr.(i)) in
          ptr.(i) <- ptr.(i) + 1;
          if visited.(j) <> root then begin
            visited.(j) <- root;
            if col_match.(j) = -1 then begin
              (* free column: flip the matching along the path *)
              row_match.(i) <- j;
              col_match.(j) <- i;
              for d = !depth - 1 downto 0 do
                let c = via.(d) in
                row_match.(stack.(d)) <- c;
                col_match.(c) <- stack.(d)
              done;
              augmented := true
            end
            else begin
              let r = col_match.(j) in
              via.(!depth) <- j;
              incr depth;
              stack.(!depth) <- r;
              ptr.(r) <- row_ptr.(r)
            end
          end
        end
      done
    end
  done;
  let rank = Array.fold_left (fun acc c -> if c >= 0 then acc + 1 else acc) 0 row_match in
  { row_match; col_match; rank }

let structural_rank a = (maximum a).rank

let unmatched indices =
  let acc = ref [] in
  for i = Array.length indices - 1 downto 0 do
    if indices.(i) = -1 then acc := i :: !acc
  done;
  !acc

let unmatched_rows t = unmatched t.row_match

let unmatched_cols t = unmatched t.col_match
