type t = { parent : int array; col_counts : int array }

(* strict-lower adjacency of the symmetrised pattern: for each row i,
   the columns k < i with A(i,k) or A(k,i) stored. Duplicates are
   harmless: both walks below stop at already-visited nodes. *)
let lower_adjacency a =
  let n = a.Csr.rows in
  let lower = Array.make n [] in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j _ ->
        if i <> j then begin
          let hi = max i j and lo = min i j in
          lower.(hi) <- lo :: lower.(hi)
        end)
  done;
  lower

let of_pattern a =
  assert (a.Csr.rows = a.Csr.cols);
  let n = a.Csr.rows in
  let lower = lower_adjacency a in
  (* Liu's algorithm with path compression: process rows in order;
     for each entry k in the strict lower part of row i, climb the
     partially built tree from k, splicing every traversed node's
     [ancestor] pointer to i *)
  let parent = Array.make n (-1) in
  let ancestor = Array.make n (-1) in
  for i = 0 to n - 1 do
    List.iter
      (fun k ->
        let j = ref k in
        let climbing = ref true in
        while !climbing do
          if !j = i || ancestor.(!j) = i then climbing := false
          else begin
            let next = ancestor.(!j) in
            ancestor.(!j) <- i;
            if next = -1 then begin
              parent.(!j) <- i;
              climbing := false
            end
            else j := next
          end
        done)
      lower.(i)
  done;
  (* column counts by the row-subtree walk: row i of L is nonzero
     exactly at the nodes on the tree paths k → i for the lower
     entries k of row i; mark nodes per row so shared path segments
     are counted once *)
  let col_counts = Array.make n 1 in
  let mark = Array.make n (-1) in
  for i = 0 to n - 1 do
    mark.(i) <- i;
    List.iter
      (fun k ->
        let j = ref k in
        while mark.(!j) <> i do
          mark.(!j) <- i;
          col_counts.(!j) <- col_counts.(!j) + 1;
          j := (if parent.(!j) = -1 then i else parent.(!j))
        done)
      lower.(i)
  done;
  { parent; col_counts }

let factor_nnz t = Array.fold_left ( + ) 0 t.col_counts

(* depth-first postorder of the elimination forest, children visited in
   ascending index order. Iterative: [child]/[sibling] turn the parent
   array into explicit first-child lists (built by descending scan, so
   each list comes out ascending), then an explicit stack walks them. *)
let postorder t =
  let n = Array.length t.parent in
  let child = Array.make n (-1) in
  let sibling = Array.make n (-1) in
  let roots = ref [] in
  for j = n - 1 downto 0 do
    let p = t.parent.(j) in
    if p = -1 then roots := j :: !roots
    else begin
      sibling.(j) <- child.(p);
      child.(p) <- j
    end
  done;
  let post = Array.make n 0 in
  let k = ref 0 in
  let stack = Stack.create () in
  List.iter
    (fun r ->
      (* two-phase node visits: [Enter] pushes children, [Leave] emits *)
      Stack.push (r, false) stack;
      while not (Stack.is_empty stack) do
        let j, expanded = Stack.pop stack in
        if expanded then begin
          post.(!k) <- j;
          incr k
        end
        else begin
          Stack.push (j, true) stack;
          let c = ref child.(j) in
          (* push descending so the ascending-order child is on top *)
          let cs = ref [] in
          while !c <> -1 do
            cs := !c :: !cs;
            c := sibling.(!c)
          done;
          List.iter (fun c -> Stack.push (c, false) stack) !cs
        end
      done)
    !roots;
  assert (!k = n);
  post

let predicted_nnz a perm = factor_nnz (of_pattern (Csr.permute_sym a perm))
