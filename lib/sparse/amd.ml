module Int_set = Set.Make (Int)

let identity n = Array.init n (fun i -> i)

(* greedy minimum-degree elimination on an explicit quotient-free
   graph: pick the minimum-degree vertex, join its neighbours into a
   clique, remove it. Exact external degrees, smallest-index
   tie-break. *)
let min_degree a =
  let n = a.Csr.rows in
  let adj = Array.make n Int_set.empty in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j _ ->
        if i <> j then begin
          adj.(i) <- Int_set.add j adj.(i);
          adj.(j) <- Int_set.add i adj.(j)
        end)
  done;
  let deg = Array.map Int_set.cardinal adj in
  let alive = Array.make n true in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if alive.(i) && (!best = -1 || deg.(i) < deg.(!best)) then best := i
    done;
    let p = !best in
    order.(k) <- p;
    alive.(p) <- false;
    let nbrs = adj.(p) in
    Int_set.iter
      (fun u ->
        adj.(u) <- Int_set.remove u (Int_set.remove p (Int_set.union adj.(u) nbrs));
        deg.(u) <- Int_set.cardinal adj.(u))
      nbrs;
    adj.(p) <- Int_set.empty
  done;
  order

let order a =
  let n = a.Csr.rows in
  if n = 0 then [||]
  else begin
    let cand = min_degree a in
    if Etree.predicted_nnz a cand <= Etree.factor_nnz (Etree.of_pattern a) then cand
    else identity n
  end
