module Int_set = Set.Make (Int)

let identity n = Array.init n (fun i -> i)

(* greedy minimum-degree elimination on an explicit quotient-free
   graph: pick the minimum-degree vertex, join its neighbours into a
   clique, remove it. Exact external degrees, smallest-index
   tie-break. O(n²) selection — the reference path for small systems
   and the oracle [order_approx] is property-tested against. *)
let min_degree a =
  let n = a.Csr.rows in
  let adj = Array.make n Int_set.empty in
  for i = 0 to n - 1 do
    Csr.iter_row a i (fun j _ ->
        if i <> j then begin
          adj.(i) <- Int_set.add j adj.(i);
          adj.(j) <- Int_set.add i adj.(j)
        end)
  done;
  let deg = Array.map Int_set.cardinal adj in
  let alive = Array.make n true in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if alive.(i) && (!best = -1 || deg.(i) < deg.(!best)) then best := i
    done;
    let p = !best in
    order.(k) <- p;
    alive.(p) <- false;
    let nbrs = adj.(p) in
    Int_set.iter
      (fun u ->
        adj.(u) <- Int_set.remove u (Int_set.remove p (Int_set.union adj.(u) nbrs));
        deg.(u) <- Int_set.cardinal adj.(u))
      nbrs;
    adj.(p) <- Int_set.empty
  done;
  order

(* ------------------------------------------------------------------ *)
(* Approximate minimum degree (Amestoy–Davis–Duff) on a quotient
   graph. Near-linear in nnz(L): eliminated pivots become *elements*
   (hyperedges holding their Schur-complement clique), adjacency
   between remaining variables is the union of explicit edges and
   shared elements, external degrees are maintained by the AMD upper
   bound |A_i\Lp| + |Lp\i| + Σ_e |Le\Lp| instead of exact set unions,
   and indistinguishable variables (identical element + edge lists)
   are merged into supervariables so grid-like cliques collapse to a
   single representative. *)

(* variable states *)
let st_live = 0

let st_eliminated = 1

let st_absorbed = 2

let order_approx a =
  let n = a.Csr.rows in
  if n = 0 then [||]
  else begin
    (* deduplicated symmetrised strict adjacency *)
    let cnt = Array.make n 0 in
    let touch i j =
      if i <> j then begin
        cnt.(i) <- cnt.(i) + 1;
        cnt.(j) <- cnt.(j) + 1
      end
    in
    for i = 0 to n - 1 do
      Csr.iter_row a i (fun j _ -> touch i j)
    done;
    let adj = Array.init n (fun i -> Array.make cnt.(i) 0) in
    let fill = Array.make n 0 in
    for i = 0 to n - 1 do
      Csr.iter_row a i (fun j _ ->
          if i <> j then begin
            adj.(i).(fill.(i)) <- j;
            fill.(i) <- fill.(i) + 1;
            adj.(j).(fill.(j)) <- i;
            fill.(j) <- fill.(j) + 1
          end)
    done;
    let alen = Array.make n 0 in
    (* sort + dedupe each list in place *)
    for i = 0 to n - 1 do
      let r = adj.(i) in
      Array.sort Int.compare r;
      let m = ref 0 in
      for k = 0 to Array.length r - 1 do
        if !m = 0 || r.(!m - 1) <> r.(k) then begin
          r.(!m) <- r.(k);
          incr m
        end
      done;
      alen.(i) <- !m
    done;
    let elts = Array.make n [||] in
    (* per-variable element list *)
    let elen = Array.make n 0 in
    let evar = Array.make n [||] in
    (* element id = pivot variable id *)
    let evlen = Array.make n 0 in
    let esize = Array.make n 0 in
    (* Σ nv over the element's variables — kept exact, see below *)
    let edead = Array.make n false in
    let nv = Array.make n 1 in
    let state = Array.make n st_live in
    let degree = Array.init n (fun i -> alen.(i)) in
    let merged_into = Array.make n (-1) in
    (* degree buckets: doubly linked lists by current degree *)
    let head = Array.make n (-1) in
    let dnext = Array.make n (-1) in
    let dprev = Array.make n (-1) in
    let bucket_insert i d =
      let d = if d < 0 then 0 else if d > n - 1 then n - 1 else d in
      dnext.(i) <- head.(d);
      dprev.(i) <- -1;
      if head.(d) <> -1 then dprev.(head.(d)) <- i;
      head.(d) <- i;
      degree.(i) <- d
    in
    let bucket_remove i =
      let d = degree.(i) in
      if dprev.(i) <> -1 then dnext.(dprev.(i)) <- dnext.(i) else head.(d) <- dnext.(i);
      if dnext.(i) <> -1 then dprev.(dnext.(i)) <- dprev.(i);
      dprev.(i) <- -1;
      dnext.(i) <- -1
    in
    for i = 0 to n - 1 do
      bucket_insert i degree.(i)
    done;
    (* epoch-marked scratch *)
    let mark = Array.make n (-1) in
    let wepoch = Array.make n (-1) in
    let wval = Array.make n 0 in
    let epoch = ref 0 in
    let lp = Array.make n 0 in
    (* current pivot's live neighbourhood *)
    let pivots = Array.make n 0 in
    let npiv = ref 0 in
    let kelim = ref 0 in
    let mindeg = ref 0 in
    while !kelim < n do
      (* pick the minimum-approximate-degree supervariable; [mindeg]
         is a sticky lower bound, so the scan is amortised O(n) total *)
      while head.(!mindeg) = -1 do
        incr mindeg
      done;
      let p = head.(!mindeg) in
      bucket_remove p;
      state.(p) <- st_eliminated;
      pivots.(!npiv) <- p;
      incr npiv;
      incr epoch;
      let cur = !epoch in
      mark.(p) <- cur;
      (* Lp: live supervariables adjacent to p via edges or elements *)
      let lplen = ref 0 in
      let lpw = ref 0 in
      let consider j =
        if state.(j) = st_live && mark.(j) <> cur then begin
          mark.(j) <- cur;
          lp.(!lplen) <- j;
          incr lplen;
          lpw := !lpw + nv.(j)
        end
      in
      let ap = adj.(p) in
      for k = 0 to alen.(p) - 1 do
        consider ap.(k)
      done;
      let ep = elts.(p) in
      for k = 0 to elen.(p) - 1 do
        let e = ep.(k) in
        if not edead.(e) then begin
          let ev = evar.(e) in
          for m = 0 to evlen.(e) - 1 do
            consider ev.(m)
          done;
          (* absorbed into the new element *)
          edead.(e) <- true;
          evar.(e) <- [||];
          evlen.(e) <- 0
        end
      done;
      adj.(p) <- [||];
      alen.(p) <- 0;
      elts.(p) <- [||];
      elen.(p) <- 0;
      kelim := !kelim + nv.(p);
      let lplen = !lplen and lpw = !lpw in
      if lplen > 0 then begin
        (* create element p *)
        let le = Array.sub lp 0 lplen in
        Array.sort Int.compare le;
        evar.(p) <- le;
        evlen.(p) <- lplen;
        esize.(p) <- lpw;
        (* pass A: w(e) := |Le \ Lp| in supervariable weights *)
        for x = 0 to lplen - 1 do
          let i = le.(x) in
          let ei = elts.(i) in
          for k = 0 to elen.(i) - 1 do
            let e = ei.(k) in
            if not edead.(e) then begin
              if wepoch.(e) <> cur then begin
                wepoch.(e) <- cur;
                wval.(e) <- esize.(e)
              end;
              wval.(e) <- wval.(e) - nv.(i)
            end
          done
        done;
        (* pass B: compact lists, aggressive element absorption,
           approximate degree update *)
        for x = 0 to lplen - 1 do
          let i = le.(x) in
          (* elements: drop dead and fully-covered ones, then add p *)
          let ei = elts.(i) in
          let m = ref 0 in
          let d_elems = ref 0 in
          for k = 0 to elen.(i) - 1 do
            let e = ei.(k) in
            if not edead.(e) then begin
              if wepoch.(e) = cur && wval.(e) <= 0 then begin
                (* Le ⊆ Lp ∪ {p}: absorbed by the new element *)
                edead.(e) <- true;
                evar.(e) <- [||];
                evlen.(e) <- 0
              end
              else begin
                ei.(!m) <- e;
                incr m;
                d_elems := !d_elems + (if wepoch.(e) = cur then wval.(e) else esize.(e))
              end
            end
          done;
          let ei =
            if !m + 1 <= Array.length ei then ei
            else begin
              let bigger = Array.make (!m + 1) 0 in
              Array.blit ei 0 bigger 0 !m;
              elts.(i) <- bigger;
              bigger
            end
          in
          ei.(!m) <- p;
          elen.(i) <- !m + 1;
          (* edges: drop eliminated/absorbed vars and vars inside Lp
             (now covered by element p) *)
          let ai = adj.(i) in
          let m = ref 0 in
          let d_adj = ref 0 in
          for k = 0 to alen.(i) - 1 do
            let j = ai.(k) in
            if state.(j) = st_live && mark.(j) <> cur then begin
              ai.(!m) <- j;
              incr m;
              d_adj := !d_adj + nv.(j)
            end
          done;
          alen.(i) <- !m;
          (* AMD degree bound: min of n-left, old + |Lp\i|, and the
             element-wise approximation *)
          let ext_lp = lpw - nv.(i) in
          let d_approx = !d_adj + ext_lp + !d_elems in
          let d_old = degree.(i) + ext_lp in
          let d_left = n - !kelim - nv.(i) in
          let d = min d_left (min d_old d_approx) in
          let d = if d < 0 then 0 else d in
          bucket_remove i;
          bucket_insert i d;
          if d < !mindeg then mindeg := d
        done;
        (* supervariable detection: hash the compacted lists, verify
           exact equality within hash groups, merge duplicates *)
        let htbl = Hashtbl.create (2 * lplen) in
        for x = 0 to lplen - 1 do
          let i = le.(x) in
          if state.(i) = st_live then begin
            let h = ref 0 in
            let ai = adj.(i) in
            for k = 0 to alen.(i) - 1 do
              h := !h + ai.(k) + 1
            done;
            let ei = elts.(i) in
            for k = 0 to elen.(i) - 1 do
              h := !h + ei.(k) + 1
            done;
            let key = !h land 0x3fffffff in
            let prev = try Hashtbl.find htbl key with Not_found -> [] in
            (* exact set comparison against previous bucket members *)
            let same j =
              alen.(i) = alen.(j)
              && elen.(i) = elen.(j)
              && begin
                incr epoch;
                let c = !epoch in
                let aj = adj.(j) and ej = elts.(j) in
                for k = 0 to alen.(j) - 1 do
                  mark.(aj.(k)) <- c
                done;
                for k = 0 to elen.(j) - 1 do
                  wepoch.(ej.(k)) <- c
                done;
                let ok = ref true in
                for k = 0 to alen.(i) - 1 do
                  if mark.(ai.(k)) <> c then ok := false
                done;
                for k = 0 to elen.(i) - 1 do
                  if wepoch.(ei.(k)) <> c then ok := false
                done;
                !ok
              end
            in
            match List.find_opt same prev with
            | Some j ->
              (* absorb i into j: total supervariable weight is
                 preserved, so every esize stays exact *)
              nv.(j) <- nv.(j) + nv.(i);
              nv.(i) <- 0;
              state.(i) <- st_absorbed;
              merged_into.(i) <- j;
              bucket_remove i;
              adj.(i) <- [||];
              alen.(i) <- 0;
              elts.(i) <- [||];
              elen.(i) <- 0
            | None -> Hashtbl.replace htbl key (i :: prev)
          end
        done
      end
    done;
    (* expand supervariables: pivots in elimination order, each
       followed by the variables merged into it (transitively) *)
    let children = Array.make n [] in
    for i = n - 1 downto 0 do
      if merged_into.(i) <> -1 then children.(merged_into.(i)) <- i :: children.(merged_into.(i))
    done;
    let order = Array.make n 0 in
    let pos = ref 0 in
    let rec emit i =
      order.(!pos) <- i;
      incr pos;
      List.iter emit children.(i)
    in
    for k = 0 to !npiv - 1 do
      emit pivots.(k)
    done;
    assert (!pos = n);
    order
  end

(* the exact greedy wins on quality for small systems and is the
   behaviour existing fixtures pin; the quotient-graph AMD takes over
   where O(n²) selection would dominate the factorisation itself *)
let exact_cutoff = 1024

let order a =
  let n = a.Csr.rows in
  if n = 0 then [||]
  else begin
    let cand = if n <= exact_cutoff then min_degree a else order_approx a in
    if Etree.predicted_nnz a cand <= Etree.factor_nnz (Etree.of_pattern a) then cand
    else identity n
  end
