(** Shared pencil-solve context: one symbolic phase, one shift policy.

    Every engine in the pipeline — SyMPVL/MPVL Lanczos, PRIMA Arnoldi,
    AWE moments, exact moment checks, AC sweeps, transient integration
    — is a loop over solves with the shifted pencil [K(s₀) = G + s₀C].
    A [Pencil.t] is built {e once} from [(G, C, B)] and owns everything
    those loops share:

    - the structural pre-flight (STR001: a pattern with structural
      rank < n is singular for every element value and shift);
    - the {!Factor.plan} backend decision over the merged [G]/[C]
      pattern: RCM ordering + skyline envelope, or AMD ordering +
      supernodal panels ({!Sparse.Supernodal}) for large scattered
      patterns — forced either way by [SYMOR_FACTOR] / [--factor];
    - the backend's shared symbolic phase (both matrices pre-scattered
      into envelope rows or panel slots), so each factorisation —
      real at any shift, or complex at any frequency — is a pure
      numeric phase;
    - a memo table of real factorisations keyed by shift, so a moment
      check after a reduction at the same expansion point costs only
      triangular solves ([pencil.cache_hit]/[pencil.cache_miss]
      counters; [factor.symbolic]/[factor.numeric] spans).

    {!with_auto_shift} is the {e only} implementation of the paper's
    eq. (26) singular→shift retry; [Factor.Singular] is not caught
    anywhere else in the library. *)

type t

val create : ?ordering:bool -> Circuit.Mna.t -> t
(** Build the context from an assembled pencil: structural pre-flight
    (raises {!Circuit.Diagnostic.User_error} with an [STR001] message
    on structural singularity), backend plan + ordering of the merged
    pattern (identity-ordered skyline when [ordering:false]), the
    chosen symbolic phase, and the per-port sparse patterns of the
    permuted [B]. *)

val of_matrices :
  ?ordering:bool ->
  ?variable:Circuit.Mna.variable ->
  ?b:Linalg.Mat.t ->
  Sparse.Csr.t ->
  Sparse.Csr.t ->
  t
(** Context over a raw symmetric pair [(G, C)] — the transient
    engine's stamped system, say — without the MNA-level structural
    pre-flight. [variable] (default [S]) only affects
    {!with_auto_shift}'s band heuristic. *)

(** {1 Accessors} *)

val n : t -> int

val p : t -> int
(** Number of ports ([0] when built without [B]). *)

val perm : t -> int array
(** Fill-reducing permutation: new index → old index. *)

val backend_kind : t -> [ `Skyline | `Supernodal ]
(** Which sparse backend's symbolic phase this context carries. *)

val port_idx : t -> int array array
(** Per port, the permuted rows carrying a nonzero of [B] (ascending).
    Do not mutate. *)

val port_val : t -> float array array
(** The matching [B] entries. Do not mutate. *)

val variable : t -> Circuit.Mna.variable

val g : t -> Sparse.Csr.t
(** The original (unpermuted) [G]. *)

val c : t -> Sparse.Csr.t
(** The original (unpermuted) [C]. *)

(** {1 Shift policy (paper eq. (26))} *)

val auto_shift : Circuit.Mna.t -> float
(** Fallback heuristic shift [max |diag G| / max |diag C|] when no
    band is known — the right order of magnitude to make [G + s₀C]
    well conditioned, though usually far from the band of interest
    (prefer passing [band]). *)

val band_shift : Circuit.Mna.t -> float * float -> float
(** The geometric mid-band expansion point [2π√(f_lo·f_hi)] in the
    pencil variable (squared for the LC [σ = s²] form). *)

val with_auto_shift :
  ?shift:float -> ?band:float * float -> t -> (float -> Factor.t -> 'a) -> 'a
(** [with_auto_shift t f] runs [f s₀ fac] with the resolved expansion
    shift and its factorisation. With an explicit [shift] there is no
    retry: {!Factor.Singular} propagates. Otherwise the pencil is
    factored at [0]; if singular, the shift falls back to
    {!band_shift} (when [band] is given) or {!auto_shift} and the
    factorisation is retried once — the single implementation of the
    retry policy shared by every engine. *)

(** {1 Real factorisations} *)

val factor : t -> shift:float -> Factor.t
(** Factor [G + s₀C = M J Mᵀ] (the context's sparse backend against
    the shared symbolic phase; dense Bunch–Kaufman fallback on pivot
    breakdown, recorded as the [factor.fallback_dense] counter).
    Results — including singular outcomes — are memoized by shift:
    a repeat call is a cache hit returning the identical factor.
    Raises {!Factor.Singular} when both backends fail. *)

val factor_with :
  t -> shift:float -> extra:(int * int * float) array -> Factor.t
(** Like {!factor} but accumulates [extra] [(row, col, v)] entries
    (original coordinates, either triangle) onto the assembled matrix
    before factoring — the transient engine's Newton-Jacobian stamps.
    Never cached. Positions must have been declared with {!reserve}
    unless they fall inside the symbolic pattern already. Sparse
    backends only: raises {!Factor.Singular} on breakdown. *)

val reserve : t -> (int * int) array -> unit
(** Grow the shared symbolic phase so the given (original-coordinate)
    positions can be stamped by {!factor_with} — envelope widening
    under skyline, a pattern-augmented symbolic rebuild (same
    ordering) under supernodal. The added slots are structural zeros,
    so subsequent stamp-free factorisations are numerically
    unchanged. *)

(** {1 Complex pencil solves} *)

type cfactor
(** A factored complex pencil [(G + sC)] in permuted coordinates —
    skyline or supernodal split-complex, matching the context's
    backend. *)

val factor_complex : ?pivot_tol:float -> t -> Complex.t -> cfactor
(** Numeric phase of [G + sC] at a complex point against the shared
    symbolic phase — the split-complex AC production kernel. The
    returned factor lives in {e permuted} coordinates; combine with
    {!perm} / {!port_idx} and {!csolve_split} (as [Simulate.Ac]
    does) or use {!solve_complex}. *)

val csolve_split : cfactor -> float array -> float array -> unit
(** [csolve_split fac re im] solves [(G + sC) x = b] in place on the
    split (permuted-coordinate) right-hand side. *)

val solve_complex :
  t -> Complex.t -> float array -> float array -> float array * float array
(** [solve_complex t s b_re b_im] solves [(G + sC) x = b] in original
    coordinates, returning [(x_re, x_im)]. One factorisation per call
    — for repeated solves at one frequency, use {!factor_complex}. *)
