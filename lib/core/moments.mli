(** Exact matrix moments of a pencil, and the moment-matching
    certificate of the matrix-Padé property (paper Section 3.2).

    With [K = G + s₀C], the exact expansion about the shift is

      [Z(σ) = Σₖ (−σ)ᵏ Bᵀ(K⁻¹C)ᵏK⁻¹B],

    so the k-th matrix moment is [(−1)ᵏ Bᵀ(K⁻¹C)ᵏK⁻¹B]. SyMPVL must
    match at least [2⌊n/p⌋] of these. *)

val exact : ?ctx:Pencil.t -> ?shift:float -> Circuit.Mna.t -> int -> Linalg.Mat.t array
(** [exact ~shift m k] computes moments 0 … k−1 ([p × p] each). Pass
    the [ctx] of a reduction at the same shift and the factorisation
    is a cache hit — the check then costs only triangular solves. *)

val matched_count : ?ctx:Pencil.t -> ?shift:float -> ?rtol:float -> Model.t -> Circuit.Mna.t -> int
(** Number of leading moments of the model that agree with the exact
    ones to relative tolerance [rtol] (default [1e-6], measured in the
    max norm relative to the moment's scale). The shift defaults to
    the model's own. *)

val relative_errors : ?ctx:Pencil.t -> ?shift:float -> Model.t -> Circuit.Mna.t -> int -> float array
(** Per-moment relative errors for the first [k] moments. *)

val relative_errors_scaled :
  ?ctx:Pencil.t -> ?shift:float -> Model.t -> Circuit.Mna.t -> int -> float array
(** Like {!relative_errors} but with per-step renormalisation of both
    Krylov recurrences, so that moment sequences spanning hundreds of
    decades (high orders, strongly shifted pencils) can be compared
    without under/overflow. Each moment is compared after rescaling by
    its own running magnitude. *)

val matched_count_scaled : ?ctx:Pencil.t -> ?shift:float -> ?rtol:float -> Model.t -> Circuit.Mna.t -> int
(** {!matched_count} on the scaled comparison — use this to verify
    the [2⌊n/p⌋] property at large orders (e.g. the paper's n = 50
    PEEC run matching 50 moments). *)
