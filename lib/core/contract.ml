module D = Circuit.Diagnostic

let enabled () =
  match Sys.getenv_opt "SYMOR_CHECK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let max_abs_values (a : Sparse.Csr.t) =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a.Sparse.Csr.values

let symmetry_residual a =
  let d = Sparse.Csr.add ~alpha:1.0 ~beta:(-1.0) a (Sparse.Csr.transpose a) in
  max_abs_values d /. Float.max (max_abs_values a) 1e-300

let check_sym ~tol code name a =
  let r = symmetry_residual a in
  if r > tol then
    D.error code
      (Printf.sprintf
         "%s is not symmetric: relative residual ‖%s − %sᵀ‖ = %.3e (tol %.1e) — \
          the symmetric Lanczos recurrence is invalid on this pencil"
         name name name r tol)
  else
    D.info code
      (Printf.sprintf "%s symmetry residual %.3e (tol %.1e): ok" name r tol)

let check_mna ?(tol = 1e-8) (m : Circuit.Mna.t) =
  [
    check_sym ~tol "NUM001" "G" m.Circuit.Mna.g;
    check_sym ~tol "NUM002" "C" m.Circuit.Mna.c;
  ]

let check_lanczos ?(drift_tol = 1e-6) ~j ~dtol ~ctol (res : Band_lanczos.result) =
  let v = res.Band_lanczos.vectors in
  let n = res.Band_lanczos.order in
  let big_n = v.Linalg.Mat.rows in
  let jv =
    Linalg.Mat.init big_n n (fun i k -> j.(i) *. Linalg.Mat.get v i k)
  in
  let vtjv = Linalg.Mat.mul (Linalg.Mat.transpose v) jv in
  let scale = Float.max (Linalg.Mat.max_abs res.Band_lanczos.delta) 1e-300 in
  let drift =
    Linalg.Mat.max_abs (Linalg.Mat.sub vtjv res.Band_lanczos.delta) /. scale
  in
  let drift_diag =
    if drift > drift_tol then
      D.warning "NUM003"
        (Printf.sprintf
           "J-orthogonality drift ‖VᵀJV − Δ‖/‖Δ‖ = %.3e exceeds %.1e — the \
           Lanczos basis has lost orthogonality (tighten dtol/ctol or enable \
           full reorthogonalisation)"
           drift drift_tol)
    else
      D.info "NUM003"
        (Printf.sprintf "J-orthogonality drift %.3e (tol %.1e): ok" drift drift_tol)
  in
  let tol_diags =
    (if dtol < ctol then
       [
         D.warning "NUM004"
           (Printf.sprintf
              "deflation tolerance dtol = %.1e is finer than the cluster-closing \
               tolerance ctol = %.1e — candidates can be kept inside clusters \
               that never close; use dtol >= ctol"
              dtol ctol);
       ]
     else [])
    @
    if dtol < 100.0 *. epsilon_float then
      [
        D.warning "NUM004"
          (Printf.sprintf
             "deflation tolerance dtol = %.1e is at machine-precision level — \
              exact deflations will be missed and the basis will degenerate"
             dtol);
      ]
    else []
  in
  let defl =
    match res.Band_lanczos.deflations with
    | [] ->
      D.info "NUM004"
        (Printf.sprintf "no deflations (dtol %.1e, ctol %.1e): block size held" dtol
           ctol)
    | ds ->
      let shown = List.filteri (fun i _ -> i < 8) ds in
      D.info "NUM004"
        (Printf.sprintf "%d deflation(s) at iteration(s) %s%s (dtol %.1e)"
           (List.length ds)
           (String.concat ", " (List.map string_of_int shown))
           (if List.length ds > 8 then ", …" else "")
           dtol)
  in
  let exhausted =
    if res.Band_lanczos.exhausted then
      [
        D.info "NUM004"
          "Krylov space exhausted: the reduced model matches the original \
           transfer function exactly";
      ]
    else []
  in
  (drift_diag :: tol_diags) @ (defl :: exhausted)

let check_model (model : Model.t) =
  let stable = Stability.is_stable model in
  let max_re = Stability.max_pole_re model in
  let stab =
    if stable then
      D.info "NUM005"
        (Printf.sprintf
           "stability certificate: all %d poles in the closed left half-plane \
            (max Re = %.3e)"
           (Array.length (Model.poles model))
           max_re)
    else if model.Model.definite && model.Model.shift = 0.0 then
      D.error "NUM005"
        (Printf.sprintf
           "unstable pole (Re = %.3e) on the definite unshifted path — the \
            structural stability theorem is violated, which indicates a \
            numerical breakdown in the factorisation or recurrence"
           max_re)
    else
      D.warning "NUM005"
        (Printf.sprintf
           "unstable pole(s), max Re = %.3e (indefinite or shifted expansion: \
            no structural guarantee) — consider post-processing or a different \
            shift"
           max_re)
  in
  let pasv =
    match Stability.passivity_certificate model with
    | Stability.Certified ->
      D.info "NUM006"
        "passivity certificate: T is symmetric PSD on the J = I path — every \
         truncation is passive"
    | Stability.Indefinite_t x ->
      D.warning "NUM006"
        (Printf.sprintf
           "passivity certificate failed: T has a negative eigenvalue (%.3e) on \
            the definite path"
           x)
    | Stability.Not_applicable ->
      D.info "NUM006"
        "passivity: no structural certificate (indefinite J or shifted \
         expansion); use sampled passivity checks if required"
  in
  [ stab; pasv ]

let check_pencil ?(tol = 1e-7) ctx ~shift =
  (* backward-residual probe of the shared pencil context: solve
     K(s₀)x = b through the (cached) factorisation and measure
     ‖K x − b‖∞ against ‖K‖·‖x‖ — a cheap end-to-end consistency
     check of ordering, envelope scatter and numeric factor *)
  let n = Pencil.n ctx in
  let g = Pencil.g ctx and c = Pencil.c ctx in
  let b = Array.init n (fun i -> 1.0 +. float_of_int (i mod 3)) in
  let fac = Pencil.factor ctx ~shift in
  let x = fac.Factor.solve b in
  let gx = Sparse.Csr.mul_vec g x in
  let cx = Sparse.Csr.mul_vec c x in
  let inf a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a in
  let resid =
    let worst = ref 0.0 in
    for i = 0 to n - 1 do
      worst := Float.max !worst (Float.abs (gx.(i) +. (shift *. cx.(i)) -. b.(i)))
    done;
    !worst
  in
  let kscale = max_abs_values g +. (Float.abs shift *. max_abs_values c) in
  let rel = resid /. Float.max ((kscale *. inf x) +. inf b) 1e-300 in
  [
    (if rel > tol then
       D.warning "NUM007"
         (Printf.sprintf
            "pencil factor-solve residual ‖K(s₀)x − b‖/(‖K‖‖x‖+‖b‖) = %.3e \
             exceeds %.1e at shift %.3e — the factorisation of the shared \
             context is inaccurate (ill-conditioned pencil; try another shift)"
            rel tol shift)
     else
       D.info "NUM007"
         (Printf.sprintf "pencil factor-solve residual %.3e at shift %.3e (tol %.1e): ok"
            rel shift tol));
  ]

let check_reduction ~mna ~j ~lanczos ~dtol ~ctol ~model =
  D.sort
    (check_mna mna @ check_lanczos ~j ~dtol ~ctol lanczos @ check_model model)
