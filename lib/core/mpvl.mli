(** MPVL — matrix-Padé via a (two-sided) block Lanczos process.

    The paper's predecessor algorithm (Feldmann & Freund, DAC 1995,
    ref. [6]): a matrix-Padé approximant of [Z(s) = Bᵀ(G + sC)⁻¹B]
    computed with a {e two-sided} block Krylov process that makes no
    use of symmetry. SyMPVL is its symmetric specialisation — at
    roughly half the work and memory, which is this module's role in
    the benches: validate that both compute the same approximant on
    symmetric input, and quantify SyMPVL's advantage.

    This implementation biorthogonalises fully against all previous
    vectors (numerically robust; identical output in exact
    arithmetic) and deflates dependent candidates, but implements no
    look-ahead: an exact biorthogonality breakdown raises
    {!Breakdown} (SyMPVL's cluster look-ahead is one of the paper's
    refinements over this baseline). *)

type t = {
  t_mat : Linalg.Mat.t;  (** [n × n] projected operator. *)
  d : Linalg.Mat.t;  (** [WᵀV] diagonal (as a matrix). *)
  mu : Linalg.Mat.t;  (** [Wᵀ(K⁻¹B)], [n × p]. *)
  eta : Linalg.Mat.t;  (** [VᵀB], [n × p]. *)
  order : int;
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
  deflations : int;
}

exception Breakdown of int
(** Exact biorthogonality breakdown at the reported step (would need
    look-ahead). *)

val reduce :
  ?ctx:Pencil.t -> ?shift:float -> ?band:float * float -> ?dtol:float -> order:int ->
  Circuit.Mna.t -> t
(** Reduce to (at most) the requested order. Shift resolution is
    {!Pencil.with_auto_shift} — the same policy as {!Reduce.mna}:
    explicit [shift] wins; otherwise 0 with band-guided automatic
    retry when [G] is singular. Pass [ctx] to reuse a context (and
    its cached factorisations) across engines. *)

val eval : t -> Complex.t -> Linalg.Cmat.t
(** Evaluate [Zₙ] at a physical complex frequency (same conventions
    as {!Model.eval}): [ηᵀ(D + σ·T·D)⁻¹... ] — concretely
    [ηᵀ·(I + σT)⁻¹·D⁻¹·μ] with the variable/gain mapping applied. *)

val poles : t -> Complex.t array
(** Physical poles ([−1/λ(T)] mapped through shift/variable). *)
