type t = {
  gn : Linalg.Mat.t;
  cn : Linalg.Mat.t;
  a : Linalg.Mat.t;
  lmat : Linalg.Mat.t;
  bn : Linalg.Mat.t;
  ghat : Linalg.Mat.t;
  chat : Linalg.Mat.t;
  bhat : Linalg.Mat.t;
  n1 : int;
  n2 : int;
  order : int;
  p : int;
  shift : float;
  krylov_cols : int;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
}

(* Pad a node-block (resp. current-block) vector to full pencil length
   so the structured blocks of G/C can be read off one sparse mat-vec:
   for the general RLC form G = [[Gn, Aᵀ]; [A, 0]], C = [[Cn, 0];
   [0, −ℒ]], applying G to [v; 0] yields [Gn·v; A·v] and applying C to
   [0; w] yields [0; −ℒ·w] — no dense n×n materialisation. *)
let pad_top n v1 =
  let v = Linalg.Vec.create n in
  Array.blit v1 0 v 0 (Array.length v1);
  v

let pad_bottom n nn v2 =
  let v = Linalg.Vec.create n in
  Array.blit v2 0 v nn (Array.length v2);
  v

let reduce ?ctx ?shift ?band ~order (m : Circuit.Mna.t) =
  let g = m.Circuit.Mna.g and c = m.Circuit.Mna.c in
  let n = m.Circuit.Mna.n in
  let nn = m.Circuit.Mna.n_nodes in
  let ni = n - nn in
  if m.Circuit.Mna.variable <> Circuit.Mna.S || m.Circuit.Mna.gain <> Circuit.Mna.Unit
  then
    invalid_arg
      "Sprim.reduce: needs the general RLC form (variable s, unit gain)";
  if ni = 0 then
    invalid_arg "Sprim.reduce: no inductor-current block to preserve";
  let ctx = match ctx with Some p -> p | None -> Pencil.create m in
  Pencil.with_auto_shift ?shift ?band ctx @@ fun s0 fac ->
  let solve_k v = fac.Factor.solve v in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  (* Phase 1 — plain block-Arnoldi basis on the linearised pencil,
     exactly as PRIMA would build it (same expansion point, same MGS),
     capped at [order] columns. *)
  let basis = ref [] in
  let nb = ref 0 in
  let push v =
    if !nb < order then begin
      let w = Linalg.Vec.copy v in
      let n0 = Linalg.Vec.norm2 w in
      for _pass = 1 to 2 do
        List.iter
          (fun q ->
            let h = Linalg.Vec.dot q w in
            Linalg.Vec.axpy (-.h) q w)
          !basis
      done;
      let n1 = Linalg.Vec.norm2 w in
      if n1 > 1e-10 *. Float.max n0 1e-300 then begin
        Linalg.Vec.scale_ip (1.0 /. n1) w;
        basis := !basis @ [ w ];
        incr nb;
        true
      end
      else false
    end
    else false
  in
  let current = ref [] in
  for k = 0 to p - 1 do
    let v = solve_k (Linalg.Mat.col m.Circuit.Mna.b k) in
    if push v then current := !current @ [ List.nth !basis (!nb - 1) ]
  done;
  let continue_ = ref (!current <> []) in
  while !nb < order && !continue_ do
    let next = ref [] in
    List.iter
      (fun v ->
        if !nb < order then begin
          let w = solve_k (Sparse.Csr.mul_vec c v) in
          if push w then next := !next @ [ List.nth !basis (!nb - 1) ]
        end)
      !current;
    current := !next;
    if !current = [] then continue_ := false
  done;
  let krylov_cols = !nb in
  let v = Linalg.Mat.create n krylov_cols in
  List.iteri (fun k q -> Linalg.Mat.set_col v k q) !basis;
  (* Phase 2 — SPRIM split-and-re-block: partition the Krylov basis
     rows at the node/current boundary and orthonormalise each part.
     span(blkdiag(V₁, V₂)) ⊇ span(V), so the projection matches at
     least as many moments as PRIMA's, while the projector now
     commutes with the 2×2 block structure of (G, C). *)
  let v1, rank1 = Linalg.Qr.orthonormalize (Linalg.Mat.submatrix v 0 0 nn krylov_cols) in
  let v2, rank2 =
    Linalg.Qr.orthonormalize (Linalg.Mat.submatrix v nn 0 ni krylov_cols)
  in
  let n1 = rank1 and n2 = rank2 in
  (* Structured congruence blocks, each via sparse mat-vecs on padded
     columns. The exact values are symmetric (congruences of Gn, Cn,
     ℒ); [sym_part] removes only the last-bit rounding asymmetry so
     structure preservation holds exactly, not just to 1e-16. *)
  let cols1 = Array.init n1 (fun i -> Linalg.Mat.col v1 i) in
  let cols2 = Array.init n2 (fun i -> Linalg.Mat.col v2 i) in
  let dot_range q w off len =
    let s = ref 0.0 in
    for r = 0 to len - 1 do
      s := !s +. (q.(r) *. w.(off + r))
    done;
    !s
  in
  let gn = Linalg.Mat.create n1 n1 in
  let a = Linalg.Mat.create n2 n1 in
  let cn = Linalg.Mat.create n1 n1 in
  for j = 0 to n1 - 1 do
    let vj = pad_top n cols1.(j) in
    let gw = Sparse.Csr.mul_vec g vj in
    let cw = Sparse.Csr.mul_vec c vj in
    for i = 0 to n1 - 1 do
      Linalg.Mat.set gn i j (dot_range cols1.(i) gw 0 nn);
      Linalg.Mat.set cn i j (dot_range cols1.(i) cw 0 nn)
    done;
    for i = 0 to n2 - 1 do
      Linalg.Mat.set a i j (dot_range cols2.(i) gw nn ni)
    done
  done;
  let lmat = Linalg.Mat.create n2 n2 in
  for j = 0 to n2 - 1 do
    let wj = pad_bottom n nn cols2.(j) in
    let cw = Sparse.Csr.mul_vec c wj in
    for i = 0 to n2 - 1 do
      (* C's current block is −ℒ; store ℒ̂ itself *)
      Linalg.Mat.set lmat i j (-.(dot_range cols2.(i) cw nn ni))
    done
  done;
  let gn = Linalg.Mat.sym_part gn in
  let cn = Linalg.Mat.sym_part cn in
  let lmat = Linalg.Mat.sym_part lmat in
  let bn =
    Linalg.Mat.mul (Linalg.Mat.transpose v1)
      (Linalg.Mat.submatrix m.Circuit.Mna.b 0 0 nn p)
  in
  (* Re-blocked reduced pencil: the same first-order shape as the full
     model, so every downstream consumer (eval, certify, synth) sees a
     genuine small RLC descriptor. *)
  let nr = n1 + n2 in
  let ghat = Linalg.Mat.create nr nr in
  let chat = Linalg.Mat.create nr nr in
  for i = 0 to n1 - 1 do
    for j = 0 to n1 - 1 do
      Linalg.Mat.set ghat i j (Linalg.Mat.get gn i j);
      Linalg.Mat.set chat i j (Linalg.Mat.get cn i j)
    done
  done;
  for i = 0 to n2 - 1 do
    for j = 0 to n1 - 1 do
      Linalg.Mat.set ghat (n1 + i) j (Linalg.Mat.get a i j);
      Linalg.Mat.set ghat j (n1 + i) (Linalg.Mat.get a i j)
    done;
    for j = 0 to n2 - 1 do
      Linalg.Mat.set chat (n1 + i) (n1 + j) (-.Linalg.Mat.get lmat i j)
    done
  done;
  let bhat = Linalg.Mat.create nr p in
  for i = 0 to n1 - 1 do
    for j = 0 to p - 1 do
      Linalg.Mat.set bhat i j (Linalg.Mat.get bn i j)
    done
  done;
  if Obs.tracing () then begin
    Obs.gauge "sprim.krylov_cols" (float_of_int krylov_cols);
    Obs.gauge "sprim.n1" (float_of_int n1);
    Obs.gauge "sprim.n2" (float_of_int n2);
    (* columns the split basis carries beyond the PRIMA basis it was
       cut from — the price of re-blocking (order nr vs krylov_cols) *)
    Obs.gauge "sprim.split_overhead" (float_of_int (n1 + n2 - krylov_cols))
  end;
  {
    gn;
    cn;
    a;
    lmat;
    bn;
    ghat;
    chat;
    bhat;
    n1;
    n2;
    order = nr;
    p;
    shift = s0;
    krylov_cols;
    variable = m.Circuit.Mna.variable;
    gain = m.Circuit.Mna.gain;
  }

let eval t s =
  let k = Linalg.Cmat.lincomb Linalg.Cx.one t.ghat s t.chat in
  let b = Linalg.Cmat.of_real t.bhat in
  let z =
    Linalg.Cmat.mul (Linalg.Cmat.transpose b)
      (Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor k) b)
  in
  match t.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

let structure_error t =
  let rel m =
    let s = Float.max (Linalg.Mat.max_abs m) 1e-300 in
    let d = Linalg.Mat.dist_max m (Linalg.Mat.transpose m) in
    d /. s
  in
  Float.max (rel t.gn) (Float.max (rel t.cn) (rel t.lmat))

let poles t =
  match Linalg.Lu.factor t.chat with
  | lu ->
    let n = t.order in
    let m = Linalg.Mat.create n n in
    for j = 0 to n - 1 do
      let col = Linalg.Lu.solve_vec lu (Linalg.Mat.col t.ghat j) in
      Linalg.Mat.set_col m j (Linalg.Vec.scale (-1.0) col)
    done;
    Linalg.Eig_gen.eigenvalues m
  | exception Linalg.Lu.Singular _ -> [||]
