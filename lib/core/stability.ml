let max_pole_re model =
  Array.fold_left
    (fun acc p -> Float.max acc p.Complex.re)
    neg_infinity (Model.poles model)

let pole_scale model =
  Array.fold_left
    (fun acc p -> Float.max acc (Linalg.Cx.abs p))
    1.0 (Model.poles model)

let is_stable ?(tol = 1e-9) model = max_pole_re model <= tol *. pole_scale model

type passivity_certificate = Certified | Indefinite_t of float | Not_applicable

let passivity_certificate ?(tol = 1e-9) model =
  if (not model.Model.definite) || model.Model.shift <> 0.0 then Not_applicable
  else begin
    let tmin = Linalg.Eig_sym.min_eigenvalue model.Model.t_mat in
    let scale =
      Float.max (Linalg.Mat.max_abs model.Model.t_mat) 1e-300
    in
    if tmin >= -.tol *. scale then Certified else Indefinite_t tmin
  end

(* the SyMPVL arm of the engine-uniform certify adapter, inlined:
   Z(var) = ρᵀΔ(I − s₀T + var·T)⁻¹ρ, then augmented to physical s.
   (Certify sits above this module in the dependency order — Contract
   needs Stability — so the construction is mirrored here; the certify
   test pins the two against each other.) *)
let model_pencil (model : Model.t) =
  let module Mat = Linalg.Mat in
  let n = model.Model.order in
  let g1 = model.Model.t_mat in
  let g0 =
    if model.Model.shift = 0.0 then Mat.identity n
    else Mat.sub (Mat.identity n) (Mat.scale model.Model.shift g1)
  in
  Linalg.Hamiltonian.augment
    ~square_var:(model.Model.variable = Circuit.Mna.S_squared)
    ~times_s:(model.Model.gain = Circuit.Mna.Times_s)
    {
      Linalg.Hamiltonian.a0 = g0;
      a1 = g1;
      b = model.Model.rho;
      c = Mat.mul (Mat.transpose model.Model.rho) model.Model.delta;
    }

let passivity_bands ?tol model =
  Linalg.Hamiltonian.violation_bands ?tol (model_pencil model)

let unstable_poles model =
  let scale = pole_scale model in
  Array.of_list
    (List.filter
       (fun p -> p.Complex.re > 1e-9 *. scale)
       (Array.to_list (Model.poles model)))
