(** SPRIM — structure-preserving reduced-order interconnect
    macromodeling (Freund's second-order line of work, math/0410195).

    PRIMA projects the general RLC pencil with one orthonormal Krylov
    basis [V] and loses the 2×2 block structure of

      [G = [[Gn, Aᵀ]; [A, 0]]],   [C = [[Cn, 0]; [0, −ℒ]]]

    (node voltages over inductor currents). SPRIM instead {e splits}
    the same basis at the node/current boundary, re-orthonormalises
    the two parts [V₁] (nodes) and [V₂] (currents), and projects with
    the block-diagonal congruence [blkdiag(V₁, V₂)]:

      [Ĝn = V₁ᵀGnV₁], [Â = V₂ᵀAV₁], [Ĉn = V₁ᵀCnV₁], [ℒ̂ = V₂ᵀℒV₂],
      [B̂ = V₁ᵀB].

    Because [span(blkdiag(V₁,V₂)) ⊇ span(V)], the reduced model
    matches at least as many moments as PRIMA at the same Krylov
    depth, and because the projection is a block congruence of a
    passive descriptor, the reduced model inherits symmetry, the
    block structure {e and} passivity by construction — which is also
    what makes RLCk re-synthesis ({!Synth.Rlck} in the synth library)
    possible. Eliminating the reduced current block recovers the
    second-order susceptance form
    [Z(s) = s·B̂ᵀ(s²Ĉn + sĜn + Âᵀℒ̂⁻¹Â)⁻¹B̂]
    (cf. {!Circuit.Mna.assemble_second_order}). *)

type t = {
  gn : Linalg.Mat.t;  (** [Ĝn] — reduced nodal conductance, symmetric. *)
  cn : Linalg.Mat.t;  (** [Ĉn] — reduced nodal capacitance, symmetric. *)
  a : Linalg.Mat.t;  (** [Â] — reduced inductor incidence, [n2 × n1]. *)
  lmat : Linalg.Mat.t;  (** [ℒ̂] — reduced inductance, symmetric. *)
  bn : Linalg.Mat.t;  (** [B̂] — reduced terminal incidence, [n1 × p]. *)
  ghat : Linalg.Mat.t;  (** Re-assembled [[Ĝn, Âᵀ]; [Â, 0]]. *)
  chat : Linalg.Mat.t;  (** Re-assembled [[Ĉn, 0]; [0, −ℒ̂]]. *)
  bhat : Linalg.Mat.t;  (** Re-assembled [[B̂]; [0]]. *)
  n1 : int;  (** Node-block dimension (rank of the split basis top). *)
  n2 : int;  (** Current-block dimension. *)
  order : int;  (** [n1 + n2] — full reduced dimension. *)
  p : int;
  shift : float;
  krylov_cols : int;
      (** Columns of the underlying Krylov basis before the split —
          the moment count matched is ≥ [krylov_cols / p] (the PRIMA
          floor). *)
  variable : Circuit.Mna.variable;  (** Always [S]. *)
  gain : Circuit.Mna.gain;  (** Always [Unit]. *)
}

val reduce :
  ?ctx:Pencil.t ->
  ?shift:float ->
  ?band:float * float ->
  order:int ->
  Circuit.Mna.t ->
  t
(** Reduce the general RLC form to (at most) [order] Krylov columns
    before the split (the final dimension [n1 + n2] can reach twice
    that, and saturates at the full model). Shift resolution is
    {!Pencil.with_auto_shift}, identical to every other engine; pass
    [ctx] to share the factorisation context. Raises
    [Invalid_argument] unless the model is the general form
    ([variable = S], [gain = Unit]) with a non-empty inductor-current
    block — {!Rom.supports} reports the reason first. *)

val eval : t -> Complex.t -> Linalg.Cmat.t
(** [B̂ᵀ(Ĝ + s·Ĉ)⁻¹B̂] on the re-assembled blocks (general-form
    conventions: unit gain, pencil in [s]). *)

val structure_error : t -> float
(** Largest relative asymmetry over [Ĝn], [Ĉn], [ℒ̂] — exactly 0.0 up
    to the explicit symmetrisation of the congruence blocks; the
    bench gate pins it. *)

val poles : t -> Complex.t array
(** Physical poles of the reduced pencil. *)
