module D = Circuit.Diagnostic
module H = Linalg.Hamiltonian
module Mat = Linalg.Mat
module Cmat = Linalg.Cmat
module Cx = Linalg.Cx

type realisation = {
  engine : Rom.engine;
  g0 : Mat.t;
  g1 : Mat.t;
  bin : Mat.t;
  cout : Mat.t;
  nx : int;
  np : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
  sym : (Mat.t * Mat.t * Mat.t) option;
  foster : (Complex.t array * Complex.t array) option;
  definite : bool;
}

let sym_tol = 1e-8

let near_symmetric m = Mat.is_symmetric ~tol:sym_tol m

(* g0 = K(s₀) − s₀·g1 folds the expansion shift into the constant
   coefficient, so the realisation lives directly in the pencil
   variable [var] with no σ bookkeeping left *)
let fold_shift ~shift k g1 = if shift = 0.0 then k else Mat.sub k (Mat.scale shift g1)

let of_sympvl (m : Model.t) =
  let n = m.Model.order in
  let g1 = m.Model.t_mat in
  let g0 = fold_shift ~shift:m.Model.shift (Mat.identity n) g1 in
  let cout = Mat.mul (Mat.transpose m.Model.rho) m.Model.delta in
  (* Δ-congruence: Z = ρᵀΔ(g0 + var·g1)⁻¹ρ = (Δρ)ᵀ[Δg0 + var·Δg1]⁻¹(Δρ),
     a symmetric sandwich whenever Δ and ΔT come out symmetric (exact
     arithmetic guarantees both; roundoff is checked) *)
  let sym =
    let dt = Mat.mul m.Model.delta g1 in
    if near_symmetric m.Model.delta && near_symmetric dt then
      Some
        ( fold_shift ~shift:m.Model.shift m.Model.delta dt,
          dt,
          Mat.mul m.Model.delta m.Model.rho )
    else None
  in
  {
    engine = `Sympvl;
    g0;
    g1;
    bin = m.Model.rho;
    cout;
    nx = n;
    np = m.Model.p;
    shift = m.Model.shift;
    variable = m.Model.variable;
    gain = m.Model.gain;
    sym;
    foster = None;
    definite = m.Model.definite && m.Model.shift = 0.0;
  }

let of_mpvl (m : Mpvl.t) =
  let n = m.Mpvl.order in
  let g1 = m.Mpvl.t_mat in
  let g0 = fold_shift ~shift:m.Mpvl.shift (Mat.identity n) g1 in
  let dinv_mu =
    Mat.init n m.Mpvl.p (fun i j -> Mat.get m.Mpvl.mu i j /. Mat.get m.Mpvl.d i i)
  in
  (* Λ-recovery: unit-norm two-sided Lanczos vectors of a symmetric
     operator satisfy w_j = ±v_j, i.e. η = Λμ with Λ = diag(λ_j);
     per-row least squares estimates λ_j, and when the fit is tight
     with every λ_j > 0, Z = ηᵀ(ΛD + var·ΛDT)⁻¹η is a symmetric
     sandwich again *)
  let sym =
    let p = m.Mpvl.p in
    let lam = Array.make n 0.0 in
    let ok = ref (n > 0) in
    for i = 0 to n - 1 do
      let num = ref 0.0 and den = ref 0.0 in
      for j = 0 to p - 1 do
        let mu = Mat.get m.Mpvl.mu i j and eta = Mat.get m.Mpvl.eta i j in
        num := !num +. (eta *. mu);
        den := !den +. (mu *. mu)
      done;
      if !den <= 0.0 then ok := false
      else begin
        lam.(i) <- !num /. !den;
        if lam.(i) <= 0.0 then ok := false
      end
    done;
    if not !ok then None
    else begin
      let escale = Float.max (Mat.max_abs m.Mpvl.eta) 1e-300 in
      let resid = ref 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to p - 1 do
          let r = Mat.get m.Mpvl.eta i j -. (lam.(i) *. Mat.get m.Mpvl.mu i j) in
          resid := Float.max !resid (Float.abs r)
        done
      done;
      if !resid > sym_tol *. escale then None
      else begin
        let s_mat = Mat.mul m.Mpvl.d g1 in
        let st = Mat.init n n (fun i j -> lam.(i) *. Mat.get s_mat i j) in
        let dt = Mat.init n n (fun i j -> lam.(i) *. Mat.get m.Mpvl.d i j) in
        if near_symmetric st then
          Some (fold_shift ~shift:m.Mpvl.shift dt st, st, m.Mpvl.eta)
        else None
      end
    end
  in
  {
    engine = `Mpvl;
    g0;
    g1;
    bin = dinv_mu;
    cout = Mat.transpose m.Mpvl.eta;
    nx = n;
    np = m.Mpvl.p;
    shift = m.Mpvl.shift;
    variable = m.Mpvl.variable;
    gain = m.Mpvl.gain;
    sym;
    foster = None;
    definite = false;
  }

let of_prima (m : Arnoldi.t) =
  (* the congruence projection already lives in the physical pencil
     variable — the shift only chose the Krylov space *)
  let sym =
    if near_symmetric m.Arnoldi.ghat && near_symmetric m.Arnoldi.chat then
      Some (m.Arnoldi.ghat, m.Arnoldi.chat, m.Arnoldi.bhat)
    else None
  in
  {
    engine = `Prima;
    g0 = m.Arnoldi.ghat;
    g1 = m.Arnoldi.chat;
    bin = m.Arnoldi.bhat;
    cout = Mat.transpose m.Arnoldi.bhat;
    nx = m.Arnoldi.order;
    np = m.Arnoldi.p;
    shift = m.Arnoldi.shift;
    variable = m.Arnoldi.variable;
    gain = m.Arnoldi.gain;
    sym;
    foster = None;
    definite = false;
  }

let of_sprim (m : Sprim.t) =
  (* like PRIMA, the split-and-re-blocked congruence lives in the
     physical pencil variable; ghat/chat are symmetric by construction
     (the blocks were explicitly symmetrised after projection), so the
     symmetric-form certificate always applies. The pencil is
     indefinite (−ℒ̂ block), so MOD002 correctly reports "no definite
     certificate" and MOD003's Hamiltonian band test carries the
     passivity claim. *)
  let sym =
    if near_symmetric m.Sprim.ghat && near_symmetric m.Sprim.chat then
      Some (m.Sprim.ghat, m.Sprim.chat, m.Sprim.bhat)
    else None
  in
  {
    engine = `Sprim;
    g0 = m.Sprim.ghat;
    g1 = m.Sprim.chat;
    bin = m.Sprim.bhat;
    cout = Mat.transpose m.Sprim.bhat;
    nx = m.Sprim.order;
    np = m.Sprim.p;
    shift = m.Sprim.shift;
    variable = m.Sprim.variable;
    gain = m.Sprim.gain;
    sym;
    foster = None;
    definite = false;
  }

let of_bt (m : Btruncation.t) =
  let n = m.Btruncation.order in
  {
    engine = `Bt;
    g0 = m.Btruncation.ahat;
    g1 = Mat.identity n;
    bin = m.Btruncation.bhat;
    cout = Mat.transpose m.Btruncation.bhat;
    nx = n;
    np = m.Btruncation.p;
    shift = 0.0;
    variable = Circuit.Mna.S;
    gain = Circuit.Mna.Unit;
    sym = Some (m.Btruncation.ahat, Mat.identity n, m.Btruncation.bhat);
    foster = None;
    definite = true;
  }

let of_awe (m : Awe.t) =
  (* modal realisation of the σ-domain pole/residue form: one 1×1
     block per real pole (r/(σ−p)), one 2×2 rotation block per
     conjugate pair (2[ρ(σ−α) − γβ]/((σ−α)² + β²)); each positive-
     imaginary pole stands for its pair *)
  let pscale =
    Array.fold_left (fun acc p -> Float.max acc (Cx.abs p)) 1e-300 m.Awe.poles
  in
  let blocks = ref [] in
  Array.iteri
    (fun i p ->
      let r = m.Awe.residues.(i) in
      if Float.abs p.Complex.im <= 1e-9 *. pscale then
        blocks := `Real (p.Complex.re, r.Complex.re) :: !blocks
      else if p.Complex.im > 0.0 then
        blocks := `Pair (p.Complex.re, p.Complex.im, r.Complex.re, r.Complex.im) :: !blocks)
    m.Awe.poles;
  let blocks = List.rev !blocks in
  let nx = List.fold_left (fun acc b -> acc + match b with `Real _ -> 1 | `Pair _ -> 2) 0 blocks in
  let g0s = Mat.create nx nx in
  let g1 = Mat.identity nx in
  let bin = Mat.create nx 1 in
  let cout = Mat.create 1 nx in
  let k = ref 0 in
  List.iter
    (fun b ->
      (match b with
      | `Real (p, r) ->
        Mat.set g0s !k !k (-.p);
        Mat.set bin !k 0 r;
        Mat.set cout 0 !k 1.0;
        incr k
      | `Pair (alpha, beta, rho, gamma) ->
        Mat.set g0s !k !k (-.alpha);
        Mat.set g0s !k (!k + 1) (-.beta);
        Mat.set g0s (!k + 1) !k beta;
        Mat.set g0s (!k + 1) (!k + 1) (-.alpha);
        Mat.set bin !k 0 1.0;
        Mat.set cout 0 !k (2.0 *. rho);
        Mat.set cout 0 (!k + 1) (2.0 *. gamma);
        k := !k + 2))
    blocks;
  let s0 = m.Awe.shift in
  let s_poles = Array.map (fun p -> Cx.(p +: re s0)) m.Awe.poles in
  {
    engine = `Awe;
    g0 = fold_shift ~shift:s0 g0s g1;
    g1;
    bin;
    cout;
    nx;
    np = 1;
    shift = s0;
    variable = Circuit.Mna.S;
    gain = m.Awe.gain;
    sym = None;
    foster = Some (s_poles, Array.copy m.Awe.residues);
    definite = false;
  }

let state_space = function
  | Rom.Sympvl_model m -> of_sympvl m
  | Rom.Mpvl_model m -> of_mpvl m
  | Rom.Prima_model m -> of_prima m
  | Rom.Sprim_model m -> of_sprim m
  | Rom.Awe_model m -> of_awe m
  | Rom.Bt_model m -> of_bt m

let phys_pencil r =
  H.augment
    ~square_var:(r.variable = Circuit.Mna.S_squared)
    ~times_s:(r.gain = Circuit.Mna.Times_s)
    { H.a0 = r.g0; a1 = r.g1; b = r.bin; c = r.cout }

let eval r s = H.eval (phys_pencil r) s

(* ------------------------------------------------------------------ *)
(* MOD002: structural certificate                                      *)

type certificate =
  | Certified of string
  | Violated of string * float
  | No_certificate of string

let min_eig_rel m =
  let scale = Float.max (Mat.max_abs m) 1e-300 in
  (Linalg.Eig_sym.min_eigenvalue (Mat.sym_part m) /. scale, scale)

let foster_certificate ~tol poles residues =
  let pscale =
    Array.fold_left (fun acc p -> Float.max acc (Cx.abs p)) 1e-300 poles
  in
  let rscale =
    Array.fold_left (fun acc r -> Float.max acc (Cx.abs r)) 1e-300 residues
  in
  let worst = ref 0.0 in
  Array.iter
    (fun p ->
      worst := Float.max !worst (Float.abs p.Complex.im /. pscale);
      worst := Float.max !worst (p.Complex.re /. pscale))
    poles;
  Array.iter
    (fun r ->
      worst := Float.max !worst (Float.abs r.Complex.im /. rscale);
      worst := Float.max !worst (-.r.Complex.re /. rscale))
    residues;
  if !worst <= tol then
    Certified
      "Foster form is positive-real: every pole is real negative and every \
       residue real nonnegative"
  else
    Violated
      ( "pole/residue form is not a nonnegative Foster expansion (complex or \
         right-half-plane pole, or negative residue)",
        !worst )

let structural_certificate ?(tol = 1e-9) ?definite r =
  let definite = match definite with Some d -> d | None -> r.definite in
  match (r.foster, r.sym) with
  | Some (poles, residues), _ -> (
    match foster_certificate ~tol:(Float.max tol 1e-6) poles residues with
    | Violated (why, _) when not definite ->
      (* a non-Foster pole/residue form (complex poles, mixed-sign
         residues) proves nothing either way for an engine that never
         promised passivity — MOD003 is the authority then *)
      No_certificate (why ^ " — no structural argument applies")
    | c -> c)
  | None, None ->
    No_certificate
      "no symmetric-form recovery for this realisation (two-sided recurrence \
       lost the congruence structure)"
  | None, Some (h0, h1, _) ->
    if r.variable = Circuit.Mna.S_squared && r.gain = Circuit.Mna.Unit then
      No_certificate
        "the s² pencil without the lossless gain factor admits no structural \
         passivity argument"
    else begin
      let e0, _ = min_eig_rel h0 and e1, _ = min_eig_rel h1 in
      let emin = Float.min e0 e1 in
      if emin >= -.tol then
        Certified
          (Printf.sprintf
             "recovered symmetric form w'(H0 + var*H1)^-1 w with H0 >= 0 (min \
              eig %.2e rel) and H1 >= 0 (min eig %.2e rel)"
             e0 e1)
      else if definite then
        Violated
          ( Printf.sprintf
              "recovered symmetric form is indefinite: min eig H0 %.2e rel, H1 \
               %.2e rel"
              e0 e1,
            emin )
      else
        (* an indefinite sandwich on a path that never promised
           definiteness (J ≠ I, shifted expansion, indefinite source
           pencil) contradicts no theorem — there is just nothing to
           certify structurally; the Hamiltonian test (MOD003) is the
           authority then *)
        No_certificate
          (Printf.sprintf
             "recovered symmetric form is indefinite (min eig H0 %.2e rel, H1 \
              %.2e rel), as expected outside the definite unshifted path"
             e0 e1)
    end

(* ------------------------------------------------------------------ *)
(* the certification pass                                              *)

type report = {
  findings : D.t list;
  bands : H.band list;
  safe_order : int option;
}

let pencil_freq_scale (pen : H.pencil) =
  let n0 = Mat.max_abs pen.H.a0 and n1 = Mat.max_abs pen.H.a1 in
  if n0 > 0.0 && n1 > 0.0 then n0 /. n1 else 1.0

(* the realisation's natural frequency scale, from the *core* pencil —
   the augmentation's unit coupling blocks hide it in the physical
   pencil (max|a1| saturates at 1), so |g0|/|g1| and the expansion
   point are the meaningful magnitudes *)
let core_freq_scale r =
  let n0 = Mat.max_abs r.g0 and n1 = Mat.max_abs r.g1 in
  let pencil = if n0 > 0.0 && n1 > 0.0 then n0 /. n1 else 1.0 in
  Float.max pencil (Float.abs r.shift)

(* finite physical poles of the augmented pencil, through the same
   shift-and-invert eigensolver the crossing test uses (pre-scaled so
   the O(1) seeds are meaningful). A singular a1 pushes part of the
   spectrum to infinity; eigenvalues that come back merely ~huge
   (|s| > 1e8 in scaled units) are that infinity seen through
   roundoff, not model poles — drop them. *)
let poles_of (pen : H.pencil) =
  let ws = pencil_freq_scale pen in
  H.gen_eigenvalues pen.H.a0 (Mat.scale ws pen.H.a1)
  |> Array.to_list
  |> List.filter (fun s -> Cx.abs s <= 1e8)
  |> List.map (fun s -> Cx.smul ws s)
  |> Array.of_list

let var_of_s variable s =
  match variable with Circuit.Mna.S -> s | Circuit.Mna.S_squared -> Cx.(s *: s)

(* exact p×p transfer function of the full MNA pencil at jω — the
   same split-complex production kernel as Simulate.Ac, kept local
   because lib/simulate sits above this library *)
let exact_z ctx (mna : Circuit.Mna.t) w =
  let s = Cx.im w in
  let var = var_of_s mna.Circuit.Mna.variable s in
  let n = Pencil.n ctx and p = Pencil.p ctx in
  let port_idx = Pencil.port_idx ctx and port_val = Pencil.port_val ctx in
  let fac = Pencil.factor_complex ctx var in
  let z = Cmat.create p p in
  let x_re = Array.make n 0.0 and x_im = Array.make n 0.0 in
  for c = 0 to p - 1 do
    Array.fill x_re 0 n 0.0;
    Array.fill x_im 0 n 0.0;
    let ci = port_idx.(c) and cv = port_val.(c) in
    for k = 0 to Array.length ci - 1 do
      x_re.(ci.(k)) <- cv.(k)
    done;
    Pencil.csolve_split fac x_re x_im;
    for r = 0 to p - 1 do
      let ri = port_idx.(r) and rv = port_val.(r) in
      let sre = ref 0.0 and sim = ref 0.0 in
      for k = 0 to Array.length ri - 1 do
        let i = ri.(k) in
        sre := !sre +. (rv.(k) *. x_re.(i));
        sim := !sim +. (rv.(k) *. x_im.(i))
      done;
      Cmat.set z r c { Complex.re = !sre; im = !sim }
    done
  done;
  match mna.Circuit.Mna.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Cmat.scale s z

(* compare a (possibly scalar) model matrix against the exact p×p one:
   a single-port realisation of a multi-port pencil reads entry (0,0)
   — the same convention as the cross-engine golden test *)
let rel_dist_mat ~scalar got want =
  let want =
    if scalar then Mat.init 1 1 (fun _ _ -> Mat.get want 0 0) else want
  in
  Mat.dist_max got want /. Float.max (Mat.max_abs want) 1e-300

(* first q moments of the realisation about its expansion point:
   m_k = (−1)ᵏ·cout·(K⁻¹g1)ᵏ·K⁻¹·bin with K = g0 + s₀·g1 *)
let realisation_moments r q =
  let k_mat = Mat.add r.g0 (Mat.scale r.shift r.g1) in
  let fac = Linalg.Lu.factor k_mat in
  let x = ref (Linalg.Lu.solve_mat fac r.bin) in
  Array.init q (fun k ->
      if k > 0 then x := Linalg.Lu.solve_mat fac (Mat.mul r.g1 !x);
      Mat.scale (if k land 1 = 1 then -1.0 else 1.0) (Mat.mul r.cout !x))

let fmt_hz w = Printf.sprintf "%.4g Hz" (w /. (2.0 *. Float.pi))

let run ?ctx ?(tol = 1e-9) ?(drift_points = 4) ?drift_band
    ?(shift_requested = false) ?(check_bands = true) model (mna : Circuit.Mna.t) =
  Obs.with_span "certify.run" @@ fun () ->
  let r = state_space model in
  let engine = Rom.name r.engine in
  let phys = phys_pencil r in
  let scalar = r.np = 1 && mna.Circuit.Mna.b.Mat.cols > 1 in
  let findings = ref [] in
  let emit d = findings := d :: !findings in
  (* -------- MOD002: structural certificate (first: MOD001 severity
     depends on whether stability was promised) -------- *)
  let definite =
    (* the congruence projection of an SPD source pencil promises
       semidefiniteness — only the source (mna) knows *)
    match r.engine with `Prima -> mna.Circuit.Mna.spd | _ -> r.definite
  in
  let cert = structural_certificate ~tol ~definite r in
  let promised = match cert with Certified _ -> true | _ -> false in
  (match cert with
  | Certified why ->
    emit (D.info "MOD002" (Printf.sprintf "%s: passivity certified — %s" engine why))
  | No_certificate why ->
    emit
      (D.info "MOD002"
         (Printf.sprintf "%s: no structural passivity certificate — %s" engine why))
  | Violated (why, e) ->
    let mk =
      (* a violated certificate on the definite unshifted SyMPVL path
         contradicts the paper's Theorem 5.1 — that is an error; on the
         other certified engines it degrades to a warning *)
      match model with
      | Rom.Sympvl_model m when m.Model.definite && m.Model.shift = 0.0 -> D.error
      | _ -> D.warning
    in
    emit
      (mk "MOD002"
         (Printf.sprintf "%s: passivity certificate violated (%.2e): %s" engine e why)));
  (* -------- MOD001: pole stability -------- *)
  let poles = poles_of phys in
  (* a pole within tol of the axis *relative to the pencil's frequency
     scale* is numerically on the axis: a shifted expansion computes
     s = σ + s₀ as a difference of large numbers, so its roundoff is
     scaled by s₀, not by |s| *)
  let pscale =
    Array.fold_left
      (fun acc p -> Float.max acc (Cx.abs p))
      (Float.max 1.0 (core_freq_scale r))
      poles
  in
  let unstable =
    Array.to_list poles |> List.filter (fun p -> p.Complex.re > tol *. pscale)
  in
  (match unstable with
  | [] ->
    emit
      (D.info "MOD001"
         (Printf.sprintf "%s: all %d finite poles in the closed left half-plane"
            engine (Array.length poles)))
  | worst :: _ as us ->
    let worst =
      List.fold_left (fun a p -> if p.Complex.re > a.Complex.re then p else a) worst us
    in
    let mk = if promised then D.error else D.warning in
    emit
      (mk "MOD001"
         (Printf.sprintf
            "%s: %d unstable pole(s), worst Re = %.3e%s — the reduced model \
             diverges in time domain"
            engine (List.length us) worst.Complex.re
            (if promised then " (structural theorem promised stability)" else ""))));
  (* -------- MOD003/MOD007: Hamiltonian violation bands -------- *)
  let bands =
    if not check_bands then []
    else
      Obs.with_span "certify.hamiltonian" @@ fun () ->
      H.violation_bands ~tol phys
  in
  if check_bands then begin
    match bands with
    | [] ->
      emit
        (D.info "MOD003"
           (Printf.sprintf
              "%s: Hamiltonian test found no passivity violation on the whole \
               imaginary axis (tol %.1e)"
              engine tol))
    | bs ->
      Obs.count "certify.violation_band" (List.length bs);
      emit
        (D.warning "MOD003"
           (Printf.sprintf
              "%s: Hamiltonian test located %d passivity violation band(s) — \
               grid sampling can miss these entirely"
              engine (List.length bs)));
      List.iter
        (fun (b : H.band) ->
          let lo = if b.H.w_lo > 0.0 then fmt_hz b.H.w_lo else "DC" in
          let hi = if Float.is_finite b.H.w_hi then fmt_hz b.H.w_hi else "infinity" in
          emit
            (D.warning "MOD007"
               (Printf.sprintf
                  "%s: violation band [%s, %s], worst at %s: min eig Re Z = \
                   %.3e (relative to |Z| = %.3e)"
                  engine lo hi (fmt_hz b.H.w_worst) b.H.lambda_min b.H.scale)))
        bs
  end;
  (* suggested safe order: walk the SyMPVL truncation down until the
     band test comes back clean (every order is a cluster boundary on
     the J = I path) *)
  let safe_order =
    match (model, bands) with
    | Rom.Sympvl_model m, _ :: _ ->
      let rec search k attempts =
        if k < 1 || attempts <= 0 then None
        else begin
          let rt = state_space (Rom.Sympvl_model (Model.truncate m k)) in
          match H.violation_bands ~tol (phys_pencil rt) with
          | [] -> Some k
          | _ -> search (k - 1) (attempts - 1)
        end
      in
      search (m.Model.order - 1) 12
    | _ -> None
  in
  (match safe_order with
  | Some k ->
    emit
      (D.info "MOD007"
         (Printf.sprintf
            "%s: truncating to order %d removes every violation band — \
             consider reducing the order"
            engine k))
  | None -> ());
  (* -------- MOD004: reciprocity -------- *)
  if r.np > 1 then begin
    let wsc = core_freq_scale r in
    let worst = ref 0.0 in
    List.iter
      (fun mult ->
        match H.herm_min_eig phys (mult *. wsc) with
        | None -> ()
        | Some _ ->
          let z = H.eval phys (Cx.im (mult *. wsc)) in
          let res =
            Cmat.dist_max z (Cmat.transpose z) /. Float.max (Cmat.max_abs z) 1e-300
          in
          worst := Float.max !worst res)
      [ 0.01; 0.1; 1.0; 10.0; 100.0 ];
    if !worst > 1e-6 then
      emit
        (D.warning "MOD004"
           (Printf.sprintf
              "%s: reciprocity residual max |Z - Z^T|/|Z| = %.2e — a reciprocal \
               network must have a symmetric impedance matrix"
              engine !worst))
    else
      emit
        (D.info "MOD004"
           (Printf.sprintf "%s: reciprocal (max |Z - Z^T|/|Z| = %.2e)" engine !worst))
  end
  else
    emit (D.info "MOD004" (Printf.sprintf "%s: single-port model — reciprocity is trivial" engine));
  (* -------- MOD005: moment matching -------- *)
  let mom_rtol = match r.engine with `Awe -> 1e-3 | _ -> 1e-6 in
  let expected = Rom.expected_moments model in
  let q = min expected 6 in
  if q = 0 then
    emit
      (D.info "MOD005"
         (Printf.sprintf
            "%s: matches no prescribed moments by construction — check skipped"
            engine))
  else begin
    match
      let exact = Moments.exact ?ctx ~shift:r.shift mna q in
      let got = realisation_moments r q in
      (exact, got)
    with
    | exact, got ->
      let j = ref 0 in
      (try
         for k = 0 to q - 1 do
           if rel_dist_mat ~scalar got.(k) exact.(k) <= mom_rtol then incr j
           else raise Exit
         done
       with Exit -> ());
      if !j >= q then
        emit
          (D.info "MOD005"
             (Printf.sprintf
                "%s: matches the first %d moment(s) at s0 = %.3g to rtol %.0e \
                 (%d promised)"
                engine !j r.shift mom_rtol expected))
      else
        emit
          (D.warning "MOD005"
             (Printf.sprintf
                "%s: only %d of the first %d moment(s) match at s0 = %.3g \
                 (rtol %.0e) — the Pade property is not holding numerically"
                engine !j q r.shift mom_rtol))
    | exception (Factor.Singular _ | Linalg.Lu.Singular _ | Sparse.Skyline.Singular _) ->
      emit
        (D.info "MOD005"
           (Printf.sprintf
              "%s: pencil singular at the expansion point — moment check skipped"
              engine))
  end;
  (* -------- MOD006: DC exactness (gain-free cores on both sides) ---- *)
  (match
     let exact0 = (Moments.exact ?ctx ~shift:0.0 mna 1).(0) in
     let z0 = Linalg.Lu.solve_mat (Linalg.Lu.factor r.g0) r.bin in
     (exact0, Mat.mul r.cout z0)
   with
  | exact0, got0 ->
    let rel = rel_dist_mat ~scalar got0 exact0 in
    let dc_rtol = match r.engine with `Awe -> 1e-3 | _ -> 1e-6 in
    if rel <= dc_rtol then
      emit
        (D.info "MOD006"
           (Printf.sprintf "%s: DC point exact to %.2e relative" engine rel))
    else
      emit
        (D.warning "MOD006"
           (Printf.sprintf
              "%s: DC mismatch %.2e relative vs the exact zeroth moment at s = 0"
              engine rel))
  | exception (Factor.Singular _ | Linalg.Lu.Singular _ | Sparse.Skyline.Singular _) ->
    emit
      (D.info "MOD006"
         (Printf.sprintf
            "%s: G (or the reduced g0) is singular at DC — netlist has no DC \
             path; check skipped"
            engine)));
  (* -------- MOD008: shift vs certified regime -------- *)
  if r.shift <> 0.0 then begin
    let mk = if shift_requested && mna.Circuit.Mna.spd then D.warning else D.info in
    emit
      (mk "MOD008"
         (Printf.sprintf
            "%s: expansion point s0 = %.3g is outside the certified regime — \
             the structural passivity theorem needs the definite pencil at \
             s0 = 0%s"
            engine r.shift
            (if shift_requested && mna.Circuit.Mna.spd then
               " (the pencil is SPD, so the certified path was available)"
             else "")))
  end;
  (* -------- MOD009: drift vs the exact transfer function -------- *)
  (match ctx with
  | None -> ()
  | Some ctx ->
    let k = max drift_points 2 in
    let w_of i =
      let t = float_of_int i /. float_of_int (k - 1) in
      match drift_band with
      | Some (f_lo, f_hi) ->
        2.0 *. Float.pi *. (10.0 ** (log10 f_lo +. (t *. (log10 f_hi -. log10 f_lo))))
      | None ->
        (* no band known: two decades around the realisation's own scale *)
        core_freq_scale r *. (10.0 ** (-2.0 +. (4.0 *. t)))
    in
    (* a lossless (LC) pencil is exactly singular at its resonances —
       a sample that lands on one is dropped, not an error *)
    let exacts =
      Array.init k (fun i ->
          match exact_z ctx mna (w_of i) with
          | z -> Some z
          | exception Sparse.Skyline.Singular _ -> None)
    in
    (* same error metric as the golden fixtures: the denominator is
       floored at 1e-3 of the sweep-wide |Z| scale, so a deep null in
       one sample cannot blow up the relative error *)
    let zsweep =
      Array.fold_left
        (fun acc z ->
          match z with Some z -> Float.max acc (Cmat.max_abs z) | None -> acc)
        1e-300 exacts
    in
    let worst = ref 0.0 and used = ref 0 in
    Array.iteri
      (fun i exact ->
        match exact with
        | None -> ()
        | Some exact ->
          incr used;
          let got = H.eval phys (Cx.im (w_of i)) in
          let want =
            if scalar then Cmat.init 1 1 (fun _ _ -> Cmat.get exact 0 0) else exact
          in
          let err =
            Cmat.dist_max got want
            /. Float.max (Cmat.max_abs want) (1e-3 *. zsweep)
          in
          worst := Float.max !worst err)
      exacts;
    let rtol = Rom.golden_rtol r.engine in
    if !used = 0 then
      emit
        (D.info "MOD009"
           (Printf.sprintf
              "%s: every drift sample landed on a singular pencil (lossless \
               resonances) — check skipped"
              engine))
    else if !worst <= rtol then
      emit
        (D.info "MOD009"
           (Printf.sprintf
              "%s: drift vs the exact transfer function %.2e over %d sample(s) \
               (within the documented %.0e)"
              engine !worst !used rtol))
    else
      emit
        (D.warning "MOD009"
           (Printf.sprintf
              "%s: drift %.2e vs the exact transfer function exceeds the \
               documented %.0e — the model has left its validated regime"
              engine !worst rtol)));
  { findings = D.sort (List.rev !findings); bands; safe_order }
