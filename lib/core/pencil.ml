(* the shared symbolic phase, one per backend: both carry the merged
   G/C pattern with the matrices pre-scattered so each numeric
   factorisation is free of pattern analysis *)
type backend_sym =
  | Sky of Sparse.Skyline.pencil_env
  | Super of Sparse.Supernodal.symbolic

(* LDLᵀ without pivoting breaks down iff a leading principal minor is
   singular, which depends on the ordering alone: an AMD ordering can
   eliminate an exactly-cancelling MNA node pair before the current
   variable that couples it, where RCM's level sets happen to
   interleave them. When the supernodal backend hits such a pivot the
   pencil retries on an RCM-ordered skyline envelope — a different
   elimination sequence, not just different storage. Built lazily on
   first breakdown and memoized; the Atomic makes the memo safe under
   pooled AC sweeps (both racers compute identical values). *)
type sky_fallback = {
  sf_perm : int array; (* RCM: new index -> old index *)
  sf_remap : int array; (* backend-permuted index of sf_perm.(k) *)
  sf_env : Sparse.Skyline.pencil_env;
}

type t = {
  g : Sparse.Csr.t;
  c : Sparse.Csr.t;
  variable : Circuit.Mna.variable;
  n : int;
  p : int;
  perm : int array; (* new index -> old index *)
  inv : int array; (* old index -> new index *)
  mutable backend : backend_sym; (* mutable only via [reserve] *)
  fallback : sky_fallback option Atomic.t;
  port_idx : int array array;
  port_val : float array array;
  cache : (float, (Factor.t, int) result) Hashtbl.t;
}

let log_src = Logs.Src.create "sympvl.pencil" ~doc:"shared pencil-solve context"

module Log = (val Logs.src_log log_src : Logs.LOG)

let n t = t.n

let p t = t.p

let perm t = t.perm

let backend_kind t = match t.backend with Sky _ -> `Skyline | Super _ -> `Supernodal

let port_idx t = t.port_idx

let port_val t = t.port_val

let variable t = t.variable

let g t = t.g

let c t = t.c

(* structural pre-flight: a pencil whose pattern has structural rank
   < n is singular for every element value and every expansion shift
   (Matching.mli) — fail up front with a located user error instead of
   a late Factor.Singular from some shifted retry *)
let check_structure (m : Circuit.Mna.t) =
  let mm = Sparse.Matching.maximum (Circuit.Mna.pencil_pattern m) in
  let n = m.Circuit.Mna.n in
  if mm.Sparse.Matching.rank < n then begin
    let rows = Sparse.Matching.unmatched_rows mm in
    let shown = List.filteri (fun i _ -> i < 4) rows in
    let labels = String.concat ", " (List.map (Circuit.Mna.unknown_label m) shown) in
    let extra = List.length rows - List.length shown in
    Circuit.Diagnostic.user_errorf
      "[STR001] G + sC is structurally singular (structural rank %d of %d): \
       %s%s cannot be matched to independent equations — no element values or \
       expansion shift can repair this; run `symor analyze` for source-line \
       provenance"
      mm.Sparse.Matching.rank n labels
      (if extra > 0 then Printf.sprintf " (and %d more)" extra else "")
  end

let auto_shift_gc g c =
  let diag_max a =
    let worst = ref 0.0 in
    for i = 0 to a.Sparse.Csr.rows - 1 do
      worst := Float.max !worst (Float.abs (Sparse.Csr.get a i i))
    done;
    !worst
  in
  let g = diag_max g and c = diag_max c in
  if c <= 0.0 then 1.0 else Float.max (g /. c) 1.0

let auto_shift (m : Circuit.Mna.t) = auto_shift_gc m.Circuit.Mna.g m.Circuit.Mna.c

let band_shift_var variable (f_lo, f_hi) =
  assert (f_lo > 0.0 && f_hi >= f_lo);
  let w = 2.0 *. Float.pi *. sqrt (f_lo *. f_hi) in
  match variable with Circuit.Mna.S -> w | Circuit.Mna.S_squared -> w *. w

let band_shift (m : Circuit.Mna.t) band = band_shift_var m.Circuit.Mna.variable band

let of_matrices ?(ordering = true) ?(variable = Circuit.Mna.S) ?b g c =
  if Obs.tracing () then
    Obs.span_begin ~args:[ ("n", Obs.Int g.Sparse.Csr.rows) ] "factor.symbolic";
  let n = g.Sparse.Csr.rows in
  let pattern = Sparse.Csr.add g c in
  let chosen =
    if ordering then Factor.plan pattern else `Skyline (Sparse.Rcm.identity n)
  in
  let perm = match chosen with `Skyline p | `Supernodal p -> p in
  let gp = Sparse.Csr.permute_sym g perm in
  let cp = Sparse.Csr.permute_sym c perm in
  let backend =
    match chosen with
    | `Skyline _ -> Sky (Sparse.Skyline.pencil_env gp cp)
    | `Supernodal _ -> Super (Sparse.Supernodal.symbolic ~c:cp gp)
  in
  let inv = Array.make n 0 in
  Array.iteri (fun new_i old_i -> inv.(old_i) <- new_i) perm;
  let p = match b with None -> 0 | Some b -> b.Linalg.Mat.cols in
  let port_idx = Array.make p [||] and port_val = Array.make p [||] in
  (match b with
  | None -> ()
  | Some b ->
    for c = 0 to p - 1 do
      let idx = ref [] and v = ref [] in
      for i = n - 1 downto 0 do
        let bi = Linalg.Mat.get b perm.(i) c in
        if bi <> 0.0 then begin
          idx := i :: !idx;
          v := bi :: !v
        end
      done;
      port_idx.(c) <- Array.of_list !idx;
      port_val.(c) <- Array.of_list !v
    done);
  if Obs.tracing () then Obs.span_end ();
  {
    g;
    c;
    variable;
    n;
    p;
    perm;
    inv;
    backend;
    fallback = Atomic.make None;
    port_idx;
    port_val;
    cache = Hashtbl.create 4;
  }

let create ?ordering (m : Circuit.Mna.t) =
  check_structure m;
  of_matrices ?ordering ~variable:m.Circuit.Mna.variable ~b:m.Circuit.Mna.b
    m.Circuit.Mna.g m.Circuit.Mna.c

(* ------------------------------------------------------------------ *)
(* real factorisations, memoized by shift                              *)

let dense_shifted t s0 =
  let shifted =
    if s0 = 0.0 then t.g else Sparse.Csr.add ~alpha:1.0 ~beta:s0 t.g t.c
  in
  Factor.of_dense (Sparse.Csr.to_dense shifted)

let sparse_numeric ?extra t s0 =
  match t.backend with
  | Sky env ->
    let sky = Sparse.Skyline.factor_pencil_real ?extra env s0 in
    if Obs.tracing () then begin
      Obs.count "factor.count" 1;
      Obs.count "factor.nnz" (Sparse.Skyline.Real.fill sky)
    end;
    Factor.of_skyline t.n t.perm sky
  | Super sym ->
    let fac = Sparse.Supernodal.Real.factor ?extra sym s0 in
    if Obs.tracing () then begin
      Obs.count "factor.count" 1;
      Obs.count "factor.nnz" (Sparse.Supernodal.Real.fill fac)
    end;
    Factor.of_supernodal t.n t.perm fac

let sky_fallback t =
  match Atomic.get t.fallback with
  | Some fb -> fb
  | None ->
    let rcm = Sparse.Rcm.order (Sparse.Csr.add t.g t.c) in
    let gp = Sparse.Csr.permute_sym t.g rcm in
    let cp = Sparse.Csr.permute_sym t.c rcm in
    let fb =
      {
        sf_perm = rcm;
        sf_remap = Array.map (fun old -> t.inv.(old)) rcm;
        sf_env = Sparse.Skyline.pencil_env gp cp;
      }
    in
    Atomic.set t.fallback (Some fb);
    fb

let retry_skyline t i =
  Log.info (fun f ->
      f "supernodal pivot breakdown at %d; retrying on the RCM skyline envelope" i);
  if Obs.tracing () then begin
    Obs.instant ~args:[ ("pivot", Obs.Int i) ] "factor.fallback_skyline";
    Obs.count "factor.fallback_skyline" 1
  end;
  sky_fallback t

let factor_uncached t s0 =
  if Obs.tracing () then Obs.span_begin "factor.numeric";
  let sparse_fac =
    match sparse_numeric t s0 with
    | fac -> Ok fac
    | exception Sparse.Supernodal.Singular i -> (
      (* a different elimination order may well succeed; only then
         surrender to the dense factorisation *)
      let fb = retry_skyline t i in
      match Sparse.Skyline.factor_pencil_real fb.sf_env s0 with
      | sky -> Ok (Factor.of_skyline t.n fb.sf_perm sky)
      | exception Sparse.Skyline.Singular j -> Error j)
    | exception Sparse.Skyline.Singular i -> Error i
  in
  match sparse_fac with
  | Ok fac ->
    if Obs.tracing () then Obs.span_end ();
    Ok fac
  | Error i -> (
    if Obs.tracing () then begin
      Obs.instant ~args:[ ("pivot", Obs.Int i) ] "factor.breakdown";
      Obs.span_end ()
    end;
    Log.info (fun f ->
        f "sparse pivot breakdown at %d; falling back to dense Bunch-Kaufman" i);
    if Obs.tracing () then begin
      Obs.instant ~args:[ ("pivot", Obs.Int i) ] "factor.fallback_dense";
      Obs.count "factor.fallback_dense" 1
    end;
    match dense_shifted t s0 with
    | fac -> Ok fac
    | exception Factor.Singular j -> Error j)

let unpack = function Ok fac -> fac | Error i -> raise (Factor.Singular i)

let factor t ~shift =
  match Hashtbl.find_opt t.cache shift with
  | Some r ->
    if Obs.tracing () then Obs.count "pencil.cache_hit" 1;
    unpack r
  | None ->
    if Obs.tracing () then Obs.count "pencil.cache_miss" 1;
    let r = factor_uncached t shift in
    Hashtbl.replace t.cache shift r;
    unpack r

let with_auto_shift ?shift ?band t f =
  match shift with
  | Some s0 -> f s0 (factor t ~shift:s0)
  | None -> (
    match factor t ~shift:0.0 with
    | fac -> f 0.0 fac
    | exception Factor.Singular _ ->
      let s0 =
        match band with
        | Some b -> band_shift_var t.variable b
        | None -> auto_shift_gc t.g t.c
      in
      Log.info (fun f -> f "G singular; retrying with automatic shift s0 = %g" s0);
      if Obs.tracing () then
        Obs.instant ~args:[ ("shift", Obs.Float s0) ] "pencil.shift_retry";
      f s0 (factor t ~shift:s0))

(* ------------------------------------------------------------------ *)
(* Newton-Jacobian hook (transient)                                    *)

let reserve t positions =
  match t.backend with
  | Sky env ->
    let extra_first = Array.init t.n (fun i -> i) in
    Array.iter
      (fun (i, j) ->
        let pi = t.inv.(i) and pj = t.inv.(j) in
        let hi = max pi pj and lo = min pi pj in
        if lo < extra_first.(hi) then extra_first.(hi) <- lo)
      positions;
    t.backend <- Sky (Sparse.Skyline.widen_env env extra_first)
  | Super _ ->
    (* rebuild the symbolic phase with the stamp positions merged into
       the pattern as structural zeros — the ordering is kept, so
       factorisations without stamps stay numerically identical *)
    let extra_pattern =
      Array.map (fun (i, j) -> (t.inv.(i), t.inv.(j))) positions
    in
    let gp = Sparse.Csr.permute_sym t.g t.perm in
    let cp = Sparse.Csr.permute_sym t.c t.perm in
    t.backend <- Super (Sparse.Supernodal.symbolic ~extra_pattern ~c:cp gp)

let factor_with t ~shift ~extra =
  let extra = Array.map (fun (i, j, v) -> (t.inv.(i), t.inv.(j), v)) extra in
  match sparse_numeric ~extra t shift with
  | fac -> fac
  | exception (Sparse.Skyline.Singular i | Sparse.Supernodal.Singular i) ->
    raise (Factor.Singular i)

(* ------------------------------------------------------------------ *)
(* complex pencil solves (AC path)                                     *)

type cfactor =
  | Csky of Sparse.Skyline.Complex_soa.t
  | Csuper of Sparse.Supernodal.Complex_soa.t
  | Cfall of sky_fallback * Sparse.Skyline.Complex_soa.t
      (* RCM-skyline retry after a supernodal breakdown; carries the
         remap from backend-permuted to fallback-permuted coordinates
         so callers keep addressing the backend permutation *)

let factor_complex ?pivot_tol t s =
  match t.backend with
  | Sky env -> Csky (Sparse.Skyline.Complex_soa.factor_pencil ?pivot_tol env s)
  | Super sym -> (
    match Sparse.Supernodal.Complex_soa.factor ?pivot_tol sym s with
    | fac -> Csuper fac
    | exception Sparse.Supernodal.Singular i ->
      let fb = retry_skyline t i in
      Cfall (fb, Sparse.Skyline.Complex_soa.factor_pencil ?pivot_tol fb.sf_env s))

let csolve_split fac b_re b_im =
  match fac with
  | Csky f -> Sparse.Skyline.Complex_soa.solve_split f b_re b_im
  | Csuper f -> Sparse.Supernodal.Complex_soa.solve_split f b_re b_im
  | Cfall (fb, f) ->
    (* gather into fallback coordinates, solve, scatter back *)
    let n = Array.length fb.sf_remap in
    let br = Array.make n 0.0 and bi = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let s = fb.sf_remap.(k) in
      br.(k) <- b_re.(s);
      bi.(k) <- b_im.(s)
    done;
    Sparse.Skyline.Complex_soa.solve_split f br bi;
    for k = 0 to n - 1 do
      let s = fb.sf_remap.(k) in
      b_re.(s) <- br.(k);
      b_im.(s) <- bi.(k)
    done

let solve_complex t s b_re b_im =
  let fac = factor_complex t s in
  let xr = Array.init t.n (fun i -> b_re.(t.perm.(i))) in
  let xi = Array.init t.n (fun i -> b_im.(t.perm.(i))) in
  csolve_split fac xr xi;
  let o_re = Array.make t.n 0.0 and o_im = Array.make t.n 0.0 in
  for i = 0 to t.n - 1 do
    o_re.(t.perm.(i)) <- xr.(i);
    o_im.(t.perm.(i)) <- xi.(i)
  done;
  (o_re, o_im)
