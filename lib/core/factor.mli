(** Front-end for the symmetric factorisation [G = M J Mᵀ] (paper
    eq. (15)) with [J = diag(±1)].

    All returned operators act in the original coordinates; any
    internal fill-reducing permutation is hidden. Positive
    semi-definite inputs that factor cleanly give [J = I]
    ([definite = true]) — the provably stable/passive SyMPVL path. *)

type t = {
  n : int;
  j : float array;  (** Diagonal of [J], entries ±1. *)
  definite : bool;  (** [J = I]. *)
  apply_m_inv : Linalg.Vec.t -> Linalg.Vec.t;  (** [M⁻¹ x]. *)
  apply_mt_inv : Linalg.Vec.t -> Linalg.Vec.t;  (** [M⁻ᵀ x]. *)
  solve : Linalg.Vec.t -> Linalg.Vec.t;
      (** [G⁻¹ b = M⁻ᵀ J⁻¹ M⁻¹ b] (used by the moment checker). *)
  kind : [ `Skyline | `Supernodal | `Dense ];
      (** Which backend factored [G]. *)
}

exception Singular of int
(** The matrix is numerically singular — apply a frequency shift
    (paper eq. (26)) and retry. *)

(** {1 Sparse-backend selection}

    Two sparse symbolic strategies sit behind every factorisation:
    RCM ordering + skyline envelope (the small-circuit default, cheap
    constants, bitwise-stable results) and AMD ordering + supernodal
    panels ({!Sparse.Supernodal}, the scattered-sparsity backend that
    scales to 10⁵ unknowns). {!plan} picks per pattern; the
    [SYMOR_FACTOR] environment variable ([skyline] | [supernodal]) or
    {!set_backend} forces one globally. *)

type backend = [ `Auto | `Skyline | `Supernodal ]

val backend : unit -> backend
(** The current override ([`Auto] unless [SYMOR_FACTOR] or
    {!set_backend} said otherwise). *)

val set_backend : backend -> unit
(** Force (or restore to [`Auto]) the sparse backend for subsequent
    factorisations — the [--factor] CLI flag. Thread-safe. *)

val supernodal_threshold : int
(** Below this unknown count [`Auto] always picks skyline. *)

type plan = [ `Skyline of int array | `Supernodal of int array ]

val plan : Sparse.Csr.t -> plan
(** [plan pattern] — the backend decision plus its fill-reducing
    permutation ({!Csr.permute_sym} convention). Under [`Auto], small
    patterns take RCM-skyline outright; large ones compare the RCM
    envelope against twice the AMD predicted factor nnz and take the
    supernodal backend when the envelope loses — the same numbers
    [symor analyze] reports. *)

val of_skyline : int -> int array -> Sparse.Skyline.Real.t -> t
(** [of_skyline n perm fac] wraps an already-computed skyline
    factorisation of [P A Pᵀ] (rows of [perm] list old indices in new
    order) into operators acting in the original coordinates:
    [M = Pᵀ L √|D|], [J = sign D]. This is how {!Pencil} turns its
    envelope-reusing numeric factorisations into [Factor.t]s. *)

val of_supernodal : int -> int array -> Sparse.Supernodal.Real.t -> t
(** Same wrapping for a supernodal factorisation of [P A Pᵀ]. *)

val of_csr : ?ordering:bool -> ?pivot_tol:float -> Sparse.Csr.t -> t
(** Sparse path: {!plan} picks the ordering and backend
    ([ordering:false] forces identity-ordered skyline). Raises
    {!Singular} on pivot breakdown — note that an *indefinite* matrix
    can also break down without pivoting; use {!auto} to fall back to
    the dense Bunch–Kaufman factorisation. *)

val of_dense : Linalg.Mat.t -> t
(** Dense Bunch–Kaufman path (any symmetric nonsingular input). *)

val auto : ?ordering:bool -> Sparse.Csr.t -> t
(** The planned sparse backend first; on breakdown, dense
    Bunch–Kaufman (recorded as the [factor.fallback_dense] counter
    and instant under [--stats]/[--trace]). Raises {!Singular} only
    if both fail (then the matrix really is singular: shift). *)

val with_shift : ?ordering:bool -> Sparse.Csr.t -> Sparse.Csr.t -> float -> t
(** [with_shift g c s0] factors [G + s0·C] via {!auto}. *)
