type options = {
  order : int;
  shift : float option;
  band : (float * float) option;
  dtol : float;
  ctol : float;
  full_ortho : bool;
  ordering : bool;
}

let default ~order =
  {
    order;
    shift = None;
    band = None;
    dtol = 1e-8;
    ctol = 1e-10;
    full_ortho = true;
    ordering = true;
  }

let band_shift = Pencil.band_shift

let auto_shift = Pencil.auto_shift

let log_src = Logs.Src.create "sympvl.reduce" ~doc:"SyMPVL driver"

module Log = (val Logs.src_log log_src : Logs.LOG)

let run_with_factor (m : Circuit.Mna.t) opts shift fac =
  let j = fac.Factor.j in
  let c = m.Circuit.Mna.c in
  let apply_jinv v =
    (* J⁻¹ = J for J = diag(±1) *)
    Linalg.Vec.init (Linalg.Vec.dim v) (fun i -> j.(i) *. v.(i))
  in
  let op v =
    let w = fac.Factor.apply_mt_inv v in
    let u = Sparse.Csr.mul_vec c w in
    apply_jinv (fac.Factor.apply_m_inv u)
  in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let start = Linalg.Mat.create m.Circuit.Mna.n p in
  for k = 0 to p - 1 do
    Linalg.Mat.set_col start k
      (apply_jinv (fac.Factor.apply_m_inv (Linalg.Mat.col m.Circuit.Mna.b k)))
  done;
  let res =
    Band_lanczos.run ~dtol:opts.dtol ~ctol:opts.ctol ~full_ortho:opts.full_ortho
      ~n_max:opts.order ~op ~j ~start ()
  in
  Log.info (fun f ->
      f "SyMPVL: N=%d p=%d -> order %d (deflations %d, look-ahead %d, definite %b)"
        m.Circuit.Mna.n p res.Band_lanczos.order
        (List.length res.Band_lanczos.deflations)
        res.Band_lanczos.look_ahead_steps fac.Factor.definite);
  let model =
    {
      Model.t_mat = res.Band_lanczos.t_mat;
      delta = res.Band_lanczos.delta;
      rho = res.Band_lanczos.rho;
      order = res.Band_lanczos.order;
      p;
      shift;
      variable = m.Circuit.Mna.variable;
      gain = m.Circuit.Mna.gain;
      definite = fac.Factor.definite;
      deflations = List.length res.Band_lanczos.deflations;
      look_ahead_steps = res.Band_lanczos.look_ahead_steps;
      exhausted = res.Band_lanczos.exhausted;
    }
  in
  (model, fac, res)

(* the full pipeline, also exposing the factorisation and the raw
   Lanczos result so the contract checker can audit them; all pencil
   work — pre-flight, ordering, factorisation, shift policy — goes
   through the shared [ctx] (built here unless the caller reuses one) *)
let mna_internal ?opts ?ctx ~order (m : Circuit.Mna.t) =
  let opts = match opts with Some o -> o | None -> default ~order in
  Obs.with_span "reduce.mna" @@ fun () ->
  let ctx =
    match ctx with Some c -> c | None -> Pencil.create ~ordering:opts.ordering m
  in
  Pencil.with_auto_shift ?shift:opts.shift ?band:opts.band ctx (fun s0 fac ->
      let model, fac, res = run_with_factor m opts s0 fac in
      (model, fac, res, ctx))

let mna ?opts ?ctx ~order (m : Circuit.Mna.t) =
  let model, _, _, _ = mna_internal ?opts ?ctx ~order m in
  model

let checked ?opts ?ctx ~order (m : Circuit.Mna.t) =
  let opts = match opts with Some o -> o | None -> default ~order in
  let model, fac, res, ctx = mna_internal ~opts ?ctx ~order m in
  let diags =
    Contract.check_reduction ~mna:m ~j:fac.Factor.j ~lanczos:res ~dtol:opts.dtol
      ~ctol:opts.ctol ~model
    @ Contract.check_pencil ctx ~shift:model.Model.shift
  in
  (model, diags)

let netlist ?opts ~order nl = mna ?opts ~order (Circuit.Mna.auto nl)

let to_accuracy ?opts ?max_order ?(points = 25) ~tol ~band (m : Circuit.Mna.t) =
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let max_order =
    match max_order with Some n -> n | None -> min m.Circuit.Mna.n 200
  in
  let f_lo, f_hi = band in
  let freqs =
    Array.init points (fun i ->
        let t = float_of_int i /. float_of_int (points - 1) in
        10.0 ** (log10 f_lo +. (t *. (log10 f_hi -. log10 f_lo))))
  in
  let eval_grid model =
    (* the error-probe grid: points are independent model evaluations,
       so they run on the shared pool (deterministic at any job count) *)
    Parallel.Pool.parallel_map (Parallel.get ()) (Array.length freqs) (fun i ->
        if San.race () then San.Race.note_write ~tag:"reduce.grid" i;
        Model.eval model (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(i))))
  in
  let deviation za zb =
    let worst = ref 0.0 in
    Array.iteri
      (fun i a ->
        let scale = Float.max (Linalg.Cmat.max_abs a) 1e-300 in
        worst := Float.max !worst (Linalg.Cmat.dist_max a zb.(i) /. scale))
      za;
    !worst
  in
  (* one shared context across the whole escalation: the symbolic
     phase runs once and every retried order reuses the cached
     factorisation at the common expansion shift *)
  let ctx =
    Pencil.create ~ordering:(match opts with Some o -> o.ordering | None -> true) m
  in
  let build order =
    let base = match opts with Some o -> o | None -> default ~order in
    let o = { base with order; band = Some band } in
    mna ~opts:o ~ctx ~order m
  in
  Obs.with_span "reduce.adaptive" @@ fun () ->
  let rec grow order _prev prev_grid =
    let order = min order max_order in
    let model = build order in
    let grid = eval_grid model in
    let dev = deviation prev_grid grid in
    if Obs.tracing () then begin
      Obs.count "reduce.escalations" 1;
      Obs.instant
        ~args:[ ("order", Obs.Int model.Model.order); ("deviation", Obs.Float dev) ]
        "reduce.escalate"
    end;
    if dev <= tol || order >= max_order || model.Model.exhausted then begin
      if Obs.tracing () then Obs.gauge "reduce.final_order" (float_of_int model.Model.order);
      (model, dev)
    end
    else grow (order + max (2 * p) (order / 2)) model grid
  in
  let order0 = max (2 * p) 4 in
  let model0 = build order0 in
  grow (order0 + max (2 * p) (order0 / 2)) model0 (eval_grid model0)

let scalar ?opts ~order ~port (m : Circuit.Mna.t) =
  let b = Linalg.Mat.create m.Circuit.Mna.n 1 in
  Linalg.Mat.set_col b 0 (Linalg.Mat.col m.Circuit.Mna.b port);
  mna ?opts ~order { m with Circuit.Mna.b; port_names = [| m.Circuit.Mna.port_names.(port) |] }
