type t = {
  poles : Complex.t array;
  residues : Complex.t array;
  order : int;
  shift : float;
  gain : Circuit.Mna.gain;
  hankel_rcond : float;
}

exception Breakdown of string

let build ?ctx ?(shift = 0.0) ~order ~port (m : Circuit.Mna.t) =
  if m.Circuit.Mna.variable <> Circuit.Mna.S then
    invalid_arg "Awe.build: only pencils in the s variable are supported";
  let q = order in
  assert (q >= 1);
  (* scalar moments c_0 .. c_{2q-1} of the chosen port *)
  let b = Linalg.Mat.create m.Circuit.Mna.n 1 in
  Linalg.Mat.set_col b 0 (Linalg.Mat.col m.Circuit.Mna.b port);
  let scalar_mna = { m with Circuit.Mna.b; port_names = [| "awe" |] } in
  (* the moments come from the shared pencil context (G and C are the
     full pencil's; only B differs), so AWE after another engine's
     reduction at the same shift reuses the cached factorisation *)
  let mats = Moments.exact ?ctx ~shift scalar_mna (2 * q) in
  let c_raw = Array.map (fun mk -> Linalg.Mat.get mk 0 0) mats in
  (* moment scaling (standard AWE practice): work in σ′ = ασ with
     α ≈ the dominant time constant so the scaled moments are O(c₀);
     without this the Hankel system under/overflows immediately *)
  let alpha =
    if Float.abs c_raw.(0) > 0.0 && Float.abs c_raw.(1) > 0.0 then
      Float.abs (c_raw.(1) /. c_raw.(0))
    else 1.0
  in
  let c = Array.mapi (fun k ck -> ck /. (alpha ** float_of_int k)) c_raw in
  (* Padé denominator b(σ) = 1 + b₁σ + … + b_qσ^q from the Hankel
     system Σ_{j=1..q} b_j c_{k−j} = −c_k, k = q … 2q−1 *)
  let h = Linalg.Mat.init q q (fun r j -> c.(q + r - (j + 1))) in
  let rhs = Linalg.Vec.init q (fun r -> -.c.(q + r)) in
  let lu =
    match Linalg.Lu.factor h with
    | lu -> lu
    | exception Linalg.Lu.Singular _ -> raise (Breakdown "singular Hankel system")
  in
  let hankel_rcond = Linalg.Lu.rcond_estimate lu in
  let bs = Linalg.Lu.solve_vec lu rhs in
  let denom = Array.init (q + 1) (fun k -> if k = 0 then 1.0 else bs.(k - 1)) in
  (* numerator a_k = Σ_{j=0..k} b_j c_{k−j}, k = 0 … q−1 *)
  let numer =
    Array.init q (fun k ->
        let s = ref 0.0 in
        for j = 0 to k do
          s := !s +. (denom.(j) *. c.(k - j))
        done;
        !s)
  in
  let poles_scaled = Linalg.Poly.roots denom in
  if Array.exists (fun p -> not (Linalg.Cx.is_finite p)) poles_scaled then
    raise (Breakdown "pole computation diverged");
  (* residues of a(σ′)/b(σ′) at each simple pole: a(p)/b'(p); then
     undo the scaling: σ′ = ασ means pole/α and residue/α *)
  let db = Linalg.Poly.derivative denom in
  let residues_scaled =
    Array.map
      (fun p ->
        let d = Linalg.Poly.eval_cx db p in
        if Linalg.Cx.abs d = 0.0 then raise (Breakdown "defective pole");
        Linalg.Cx.(Linalg.Poly.eval_cx numer p /: d))
      poles_scaled
  in
  let poles = Array.map (fun p -> Linalg.Cx.smul (1.0 /. alpha) p) poles_scaled in
  let residues =
    Array.map (fun r -> Linalg.Cx.smul (1.0 /. alpha) r) residues_scaled
  in
  { poles; residues; order = q; shift; gain = m.Circuit.Mna.gain; hankel_rcond }

let eval t s =
  let sigma = Linalg.Cx.(s -: re t.shift) in
  let z = ref Linalg.Cx.zero in
  Array.iteri
    (fun k p -> z := Linalg.Cx.(!z +: (t.residues.(k) /: (sigma -: p))))
    t.poles;
  match t.gain with
  | Circuit.Mna.Unit -> !z
  | Circuit.Mna.Times_s -> Linalg.Cx.(s *: !z)
