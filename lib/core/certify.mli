(** Engine-uniform certification of reduced models — the MOD rule
    family.

    The paper's selling point (Section 5) is that matrix-Padé
    reduction of passive circuits yields {e provably} stable, passive
    reduced models. This pass turns that claim into a checkable
    static-analysis report over {e any} {!Rom.model}: every engine's
    native data is first mapped through one adapter
    ({!state_space}) onto the uniform descriptor realisation

      [Z(var) = cout·(g0 + var·g1)⁻¹·bin]

    (expansion shift already folded into [g0]; [var]/gain conventions
    carried alongside), and every rule below is then evaluated on that
    one form — BT/AWE/PRIMA/MPVL get exactly the same scrutiny as
    SyMPVL.

    Rules (stable codes, shared {!Circuit.Diagnostic} type):
    - {b MOD001} pole stability: every finite pole of the physical
      pencil in the closed left half-plane. An unstable pole is an
      [Error] when the structural theorem (MOD002) promised stability,
      a [Warning] otherwise.
    - {b MOD002} structural passivity certificate: symmetric-form
      recovery + positive semidefiniteness (generalises
      {!Stability.passivity_certificate} beyond [Model.t]; AWE gets a
      Foster positive-real check on its pole/residue form instead).
    - {b MOD003} Hamiltonian imaginary-axis eigenvalue test
      ({!Linalg.Hamiltonian.violation_bands}): locates passivity
      violation {e bands} exactly instead of grid sampling.
    - {b MOD004} reciprocity: sampled [‖Z − Zᵀ‖/‖Z‖] residual.
    - {b MOD005} moment matching: leading moments of the realisation
      vs {!Moments.exact} on the shared pencil context, against the
      count {!Rom.expected_moments} promises.
    - {b MOD006} DC exactness: [Z_core(0)] vs the exact zeroth moment
      at shift 0 (skipped when [G] is singular at DC).
    - {b MOD007} violation-band report: one finding per MOD003 band,
      plus a suggested safe (passive) truncation order when the
      engine supports truncation.
    - {b MOD008} shift outside the certified regime: a nonzero
      expansion point forfeits the structural certificate of the
      definite unshifted path.
    - {b MOD009} model-vs-exact drift: sampled relative deviation
      from the exact MNA transfer function against the engine's
      documented {!Rom.golden_rtol}.

    Emitted through [symor certify] / [symor reduce --certify] with
    the same [--json] / [--strict] / exit-code contract as
    [symor lint] and [symor analyze]. *)

type realisation = {
  engine : Rom.engine;
  g0 : Linalg.Mat.t;  (** nx×nx; the expansion shift is folded in. *)
  g1 : Linalg.Mat.t;  (** nx×nx. *)
  bin : Linalg.Mat.t;  (** nx×p input map. *)
  cout : Linalg.Mat.t;  (** p×nx output map. *)
  nx : int;
  np : int;  (** Ports of the realisation (1 for AWE). *)
  shift : float;  (** Expansion point [s₀] (metadata — already folded). *)
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
  sym : (Linalg.Mat.t * Linalg.Mat.t * Linalg.Mat.t) option;
      (** Recovered symmetric form [(h0, h1, w)] with
          [Z = wᵀ(h0 + var·h1)⁻¹w], when the engine's structure
          admits one (SyMPVL [Δ]-congruence, MPVL [Λ]-rescaling,
          PRIMA/BT directly). [None] means "no structural certificate
          available", not "non-passive". *)
  foster : (Complex.t array * Complex.t array) option;
      (** AWE only: physical-[s] poles and residues for the Foster
          positive-real certificate. *)
  definite : bool;
      (** The construction {e promised} a definite symmetric form
          (SyMPVL's [J = I] unshifted path, BT) — an indefinite
          recovery is then a violated theorem, not merely an absent
          certificate. *)
}

val state_space : Rom.model -> realisation
(** The one adapter every engine goes through. The realisation
    reproduces [Rom.eval] exactly (up to roundoff of the explicit
    solve) — asserted by the cross-engine test. *)

val phys_pencil : realisation -> Linalg.Hamiltonian.pencil
(** The physical-frequency descriptor pencil:
    {!Linalg.Hamiltonian.augment} applied to the core realisation so
    that [Z(s)] needs no variable substitution or gain post-scaling. *)

val eval : realisation -> Complex.t -> Linalg.Cmat.t
(** Evaluate the realisation at physical [s] (np×np), through
    {!phys_pencil} — used by the cross-engine adapter test. *)

type certificate =
  | Certified of string  (** Proof sketch (which matrices are PSD / Foster). *)
  | Violated of string * float
      (** The structure that should certify is numerically indefinite;
          carries the scaled minimum eigenvalue (or Foster residual). *)
  | No_certificate of string  (** Why no structural argument applies. *)

val structural_certificate : ?tol:float -> ?definite:bool -> realisation -> certificate
(** MOD002: the engine-uniform generalisation of
    {!Stability.passivity_certificate} (default [tol = 1e-9],
    relative to each matrix's magnitude). [definite] overrides the
    realisation's own promise flag — {!run} passes [mna.spd] for
    PRIMA, whose congruence inherits semidefiniteness from the source
    pencil. *)

type report = {
  findings : Circuit.Diagnostic.t list;  (** Sorted, codes MOD001–MOD009. *)
  bands : Linalg.Hamiltonian.band list;  (** MOD003 violation bands. *)
  safe_order : int option;
      (** Largest passive truncation order found (SyMPVL only), when
          violation bands exist. *)
}

val run :
  ?ctx:Pencil.t ->
  ?tol:float ->
  ?drift_points:int ->
  ?drift_band:float * float ->
  ?shift_requested:bool ->
  ?check_bands:bool ->
  Rom.model ->
  Circuit.Mna.t ->
  report
(** Full certification of one reduced model against its source pencil.
    [ctx] shares the factor cache with the reduction that produced the
    model (moment and drift checks then cost only triangular solves;
    MOD009 is skipped without it). [tol] (default [1e-9]) scales the
    stability/passivity thresholds; [drift_points] (default 4) the
    MOD009 sample count and [drift_band] its frequency range in Hz
    (default: two decades around the realisation's own scale);
    [shift_requested] marks an explicitly user-chosen shift (MOD008
    severity); [check_bands:false] skips the Hamiltonian band search
    (MOD003/MOD007). Obs: [certify.run]/[certify.hamiltonian] spans,
    [certify.violation_band] counter. *)
