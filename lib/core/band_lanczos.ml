type result = {
  vectors : Linalg.Mat.t;
  t_mat : Linalg.Mat.t;
  delta : Linalg.Mat.t;
  rho : Linalg.Mat.t;
  p1 : int;
  order : int;
  deflations : int list;
  n_clusters : int;
  look_ahead_steps : int;
  exhausted : bool;
}

type cluster = {
  mutable members : int list; (* paper indices (1-based), ascending *)
  mutable gram_lu : Linalg.Lu.t option; (* LU of Δ^(γ) once closed *)
}

type candidate = { vec : Linalg.Vec.t; norm0 : float }

let log_src = Logs.Src.create "sympvl.lanczos" ~doc:"band Lanczos process"

module Log = (val Logs.src_log log_src : Logs.LOG)

let run ?(dtol = 1e-8) ?(ctol = 1e-10) ?(full_ortho = true) ~n_max ~op ~j ~start () =
  let nn = start.Linalg.Mat.rows in
  let p = start.Linalg.Mat.cols in
  assert (p >= 1 && n_max >= 1 && Array.length j = nn);
  let run_open = Obs.tracing () in
  if run_open then
    Obs.span_begin
      ~args:[ ("N", Obs.Int nn); ("p", Obs.Int p); ("n_max", Obs.Int n_max) ]
      "lanczos.run";
  (* per-step span bookkeeping: the step span must close even when the
     process bails out of the middle of a step (Krylov exhaustion) *)
  let step_open = ref false in
  let j_dot x y = Linalg.Vec.dot3 x j y in
  (* storage; paper index n is 1-based: vs.(n-1) = v_n *)
  let vs = Array.make n_max [||] in
  let nv = ref 0 in
  let tm = Linalg.Mat.create n_max n_max in
  let rho = Linalg.Mat.create n_max p in
  (* paper column c: c ≥ 1 goes to T, c ≤ 0 to ρ (column c + p − 1,
     0-based); rows are 1-based paper indices *)
  let add_t row col v =
    if col >= 1 then Linalg.Mat.add_to tm (row - 1) (col - 1) v
    else Linalg.Mat.add_to rho (row - 1) (col + p - 1) v
  in
  (* candidate queue: head is v̂_{n}; uses a list ref (short) *)
  let cands =
    ref
      (List.init p (fun i ->
           let col = Linalg.Mat.col start i in
           { vec = col; norm0 = Float.max (Linalg.Vec.norm2 col) 1e-300 }))
  in
  let pc () = List.length !cands in
  (* clusters, 1-based: clusters.(g-1) *)
  let clusters = ref [||] in
  let n_gamma = ref 0 in
  let new_cluster () =
    incr n_gamma;
    let c = { members = []; gram_lu = None } in
    clusters := Array.append !clusters [| c |]
  in
  new_cluster ();
  let cluster g = !clusters.(g - 1) in
  let gamma_of = Array.make (n_max + 1) 0 in
  let gamma_v = ref 1 in
  let iv = ref [] in
  let deflations = ref [] in
  let look_ahead_steps = ref 0 in
  let exhausted = ref false in
  let p1 = ref 0 in
  (* J-orthogonalise [v] against closed cluster [g], recording the
     coefficients in column [col] (paper indexing) *)
  let ortho_against_cluster v g col =
    let c = cluster g in
    match (c.gram_lu, c.members) with
    | Some lu, members ->
      let members_arr = Array.of_list members in
      let rhs =
        Linalg.Vec.init (Array.length members_arr) (fun k ->
            j_dot vs.(members_arr.(k) - 1) v)
      in
      let coeff = Linalg.Lu.solve_vec lu rhs in
      Array.iteri
        (fun k m ->
          Linalg.Vec.axpy (-.coeff.(k)) vs.(m - 1) v;
          add_t m col coeff.(k))
        members_arr
    | None, _ -> () (* open cluster: look-ahead, skip *)
  in
  let n = ref 0 in
  (try
     while !nv < n_max do
       incr n;
       let n_cur = !n in
       if Obs.tracing () then begin
         Obs.span_begin ~args:[ ("step", Obs.Int n_cur) ] "lanczos.step";
         step_open := true
       end;
       (* ---- step 1: deflate-or-accept loop ---- *)
       let accepted = ref None in
       while !accepted = None do
         match !cands with
         | [] ->
           exhausted := true;
           if Obs.tracing () then
             Obs.instant ~args:[ ("step", Obs.Int n_cur) ] "lanczos.exhausted";
           raise Exit
         | head :: rest ->
           let phi = n_cur - pc () in
           (* 1b: orthogonalise against the current (open) cluster in
              the Euclidean inner product *)
           let cg = cluster !n_gamma in
           List.iter
             (fun i ->
               let tau = Linalg.Vec.dot vs.(i - 1) head.vec in
               Linalg.Vec.axpy (-.tau) vs.(i - 1) head.vec;
               add_t i phi tau)
             cg.members;
           let nrm = Linalg.Vec.norm2 head.vec in
           if nrm > dtol *. head.norm0 then begin
             (* 1h: accept and normalise *)
             if Obs.tracing () && nrm <= 10.0 *. dtol *. head.norm0 then begin
               (* breakdown near-miss: accepted within one decade of the
                  deflation threshold *)
               Obs.count "lanczos.near_deflations" 1;
               Obs.instant
                 ~args:
                   [
                     ("step", Obs.Int n_cur);
                     ("margin", Obs.Float (nrm /. Float.max (dtol *. head.norm0) 1e-300));
                   ]
                 "lanczos.near_deflation"
             end;
             add_t n_cur phi nrm;
             let v = Linalg.Vec.scale (1.0 /. nrm) head.vec in
             vs.(n_cur - 1) <- v;
             incr nv;
             cands := rest;
             if phi <= 0 then incr p1;
             accepted := Some phi
           end
           else begin
             (* deflate *)
             deflations := n_cur :: !deflations;
             if Obs.tracing () then begin
               Obs.count "lanczos.deflations" 1;
               Obs.instant
                 ~args:
                   [
                     ("step", Obs.Int n_cur);
                     ("margin", Obs.Float (nrm /. Float.max (dtol *. head.norm0) 1e-300));
                   ]
                 "lanczos.deflation"
             end;
             if pc () = 1 then begin
               exhausted := true;
               if Obs.tracing () then
                 Obs.instant ~args:[ ("step", Obs.Int n_cur) ] "lanczos.exhausted";
               raise Exit
             end;
             if phi > 0 && nrm > 0.0 then begin
               let g = gamma_of.(phi) in
               if not (List.mem g !iv) then iv := g :: !iv
             end;
             cands := rest
           end
       done;
       (* 1i: cluster membership; note n − p_c is exactly the accepted
          candidate's column φ *)
       let phi_accepted = match !accepted with Some phi -> phi | None -> assert false in
       let cg = cluster !n_gamma in
       gamma_of.(n_cur) <- !n_gamma;
       cg.members <- cg.members @ [ n_cur ];
       if cg.members = [ n_cur ] then gamma_v := gamma_of.(max 1 phi_accepted);
       (* ---- step 2: try to close the current cluster ---- *)
       let members_arr = Array.of_list cg.members in
       let msize = Array.length members_arr in
       let gram =
         Linalg.Mat.init msize msize (fun a b ->
             j_dot vs.(members_arr.(a) - 1) vs.(members_arr.(b) - 1))
       in
       let closeable =
         match Linalg.Lu.factor gram with
         | lu -> if Linalg.Lu.rcond_estimate lu > ctol then Some lu else None
         | exception Linalg.Lu.Singular _ -> None
       in
       (match closeable with
       | Some lu ->
         cg.gram_lu <- Some lu;
         if Obs.tracing () then begin
           Obs.count "lanczos.clusters_closed" 1;
           if msize > 1 then
             Obs.instant
               ~args:[ ("step", Obs.Int n_cur); ("size", Obs.Int msize) ]
               "lanczos.cluster_closed"
         end;
         (* 2c: J-orthogonalise the remaining candidates against the
            cluster just closed. Candidate at queue position q is
            v̂_{n+1+q} with paper column (n+1+q) − p_c, where the block
            size p_c is the queue length plus the accepted head. *)
         let pc_after = pc () in
         List.iteri
           (fun q cand ->
             ortho_against_cluster cand.vec !n_gamma (n_cur + q - pc_after))
           !cands;
         (* 2d: open a fresh cluster *)
         new_cluster ()
       | None ->
         incr look_ahead_steps;
         if Obs.tracing () then begin
           Obs.count "lanczos.look_ahead_steps" 1;
           Obs.instant
             ~args:[ ("step", Obs.Int n_cur); ("cluster_size", Obs.Int msize) ]
             "lanczos.look_ahead"
         end);
       (* ---- step 3: new candidate v = F v_n. Runs on the final
          iteration too: its orthogonalisation coefficients are the
          last column of Tₙ. ---- *)
       begin
         let v = op vs.(n_cur - 1) in
         let norm0 = Float.max (Linalg.Vec.norm2 v) 1e-300 in
         if full_ortho then
           (* robust mode: all closed clusters *)
           for g = 1 to !n_gamma do
             ortho_against_cluster v g n_cur
           done
         else begin
           (* paper window: γ_v … γ−1 plus inexact-deflation clusters *)
           let lo = !gamma_v in
           List.iter
             (fun g -> if g < lo then ortho_against_cluster v g n_cur)
             (List.sort_uniq Int.compare !iv);
           for g = lo to !n_gamma - 1 do
             ortho_against_cluster v g n_cur
           done;
           (* the current cluster, when closed, was handled above as
              part of γ_v … γ−1 after the increment in 2d *)
           ()
         end;
         cands := !cands @ [ { vec = v; norm0 } ]
       end;
       if !step_open then begin
         Obs.span_end ();
         step_open := false
       end
     done
   with Exit -> ());
  if !step_open then Obs.span_end ();
  let order = !nv in
  (* assemble outputs at the achieved order *)
  let vectors = Linalg.Mat.create nn order in
  for k = 0 to order - 1 do
    Linalg.Mat.set_col vectors k vs.(k)
  done;
  let t_mat = Linalg.Mat.submatrix tm 0 0 order order in
  let rho_out = Linalg.Mat.submatrix rho 0 0 order p in
  let delta = Linalg.Mat.create order order in
  for a = 0 to order - 1 do
    for b = 0 to order - 1 do
      if gamma_of.(a + 1) = gamma_of.(b + 1) then
        Linalg.Mat.set delta a b (j_dot vs.(a) vs.(b))
    done
  done;
  let n_clusters =
    if order = 0 then 0
    else
      Array.fold_left
        (fun acc c -> if c.members = [] then acc else acc + 1)
        0 !clusters
  in
  Log.debug (fun m ->
      m "band Lanczos: order=%d p1=%d deflations=%d clusters=%d look-ahead=%d"
        order !p1
        (List.length !deflations)
        n_clusters !look_ahead_steps);
  if run_open then begin
    Obs.gauge "lanczos.order" (float_of_int order);
    Obs.gauge "lanczos.p1" (float_of_int !p1);
    Obs.gauge "lanczos.clusters" (float_of_int n_clusters);
    Obs.span_end ()
  end;
  {
    vectors;
    t_mat;
    delta;
    rho = rho_out;
    p1 = !p1;
    order;
    deflations = List.rev !deflations;
    n_clusters;
    look_ahead_steps = !look_ahead_steps;
    exhausted = !exhausted;
  }
