type t = {
  n : int;
  j : float array;
  definite : bool;
  apply_m_inv : Linalg.Vec.t -> Linalg.Vec.t;
  apply_mt_inv : Linalg.Vec.t -> Linalg.Vec.t;
  solve : Linalg.Vec.t -> Linalg.Vec.t;
  kind : [ `Skyline | `Supernodal | `Dense ];
}

exception Singular of int

let log_src = Logs.Src.create "sympvl.factor" ~doc:"G = M J Mt factorisation"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* sparse-backend selection                                             *)

type backend = [ `Auto | `Skyline | `Supernodal ]

let backend_of_env () : backend =
  match Sys.getenv_opt "SYMOR_FACTOR" with
  | Some "skyline" -> `Skyline
  | Some "supernodal" -> `Supernodal
  | _ -> `Auto

let backend_override : backend Atomic.t = Atomic.make (backend_of_env ())

let set_backend b = Atomic.set backend_override b

let backend () = Atomic.get backend_override

(* Below this size the RCM-skyline path wins on constant factors (and
   keeps small-circuit results bitwise identical to earlier releases);
   above it the two symbolic phases are compared and the supernodal
   backend must predict a real fill advantage to be picked, since its
   per-column overhead only pays off when the envelope genuinely
   explodes. *)
let supernodal_threshold = 4096

type plan = [ `Skyline of int array | `Supernodal of int array ]

let plan pattern : plan =
  let n = pattern.Sparse.Csr.rows in
  match Atomic.get backend_override with
  | `Skyline -> `Skyline (Sparse.Rcm.order pattern)
  | `Supernodal -> `Supernodal (Sparse.Supernodal.order pattern)
  | `Auto ->
    if n < supernodal_threshold then `Skyline (Sparse.Rcm.order pattern)
    else begin
      let rcm = Sparse.Rcm.order pattern in
      let sky_fill = Sparse.Csr.profile (Sparse.Csr.permute_sym pattern rcm) + n in
      let amd = Sparse.Supernodal.order pattern in
      let super_nnz = Sparse.Etree.predicted_nnz pattern amd in
      if sky_fill > 2 * super_nnz then `Supernodal amd else `Skyline rcm
    end

(* Skyline path: P G Pᵀ = L D Lᵀ, M = Pᵀ L S with S = diag(√|D|),
   J = sign(D). Operators in original coordinates. *)
let of_skyline n perm fac =
  let d = Sparse.Skyline.Real.d fac in
  let j = Array.map (fun x -> if x >= 0.0 then 1.0 else -1.0) d in
  let s = Array.map (fun x -> sqrt (Float.abs x)) d in
  let definite = Array.for_all (fun x -> x > 0.0) j in
  let inv = Array.make n 0 in
  Array.iteri (fun new_i old_i -> inv.(old_i) <- new_i) perm;
  let permute x = Array.init n (fun i -> x.(perm.(i))) in
  let unpermute y =
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      out.(perm.(i)) <- y.(i)
    done;
    out
  in
  let apply_m_inv x =
    (* S⁻¹ L⁻¹ P x *)
    let z = Sparse.Skyline.Real.solve_lower fac (permute x) in
    for i = 0 to n - 1 do
      z.(i) <- z.(i) /. s.(i)
    done;
    z
  in
  let apply_mt_inv y =
    (* Pᵀ L⁻ᵀ S⁻¹ y *)
    let z = Array.init n (fun i -> y.(i) /. s.(i)) in
    unpermute (Sparse.Skyline.Real.solve_lower_t fac z)
  in
  let solve b = unpermute (Sparse.Skyline.Real.solve fac (permute b)) in
  { n; j; definite; apply_m_inv; apply_mt_inv; solve; kind = `Skyline }

(* Supernodal path: identical operator algebra, panel kernels behind
   the solves. *)
let of_supernodal n perm fac =
  let d = Sparse.Supernodal.Real.d fac in
  let j = Array.map (fun x -> if x >= 0.0 then 1.0 else -1.0) d in
  let s = Array.map (fun x -> sqrt (Float.abs x)) d in
  let definite = Array.for_all (fun x -> x > 0.0) j in
  let permute x = Array.init n (fun i -> x.(perm.(i))) in
  let unpermute y =
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      out.(perm.(i)) <- y.(i)
    done;
    out
  in
  let apply_m_inv x =
    let z = Sparse.Supernodal.Real.solve_lower fac (permute x) in
    for i = 0 to n - 1 do
      z.(i) <- z.(i) /. s.(i)
    done;
    z
  in
  let apply_mt_inv y =
    let z = Array.init n (fun i -> y.(i) /. s.(i)) in
    unpermute (Sparse.Supernodal.Real.solve_lower_t fac z)
  in
  let solve b = unpermute (Sparse.Supernodal.Real.solve fac (permute b)) in
  { n; j; definite; apply_m_inv; apply_mt_inv; solve; kind = `Supernodal }

let of_csr ?(ordering = true) ?pivot_tol a =
  assert (a.Sparse.Csr.rows = a.Sparse.Csr.cols);
  let n = a.Sparse.Csr.rows in
  (* symbolic phase: backend pick + fill-reducing ordering *)
  if Obs.tracing () then Obs.span_begin ~args:[ ("n", Obs.Int n) ] "factor.symbolic";
  let chosen =
    if ordering then plan a else `Skyline (Sparse.Rcm.identity n)
  in
  match chosen with
  | `Skyline perm -> (
    let pa = Sparse.Csr.permute_sym a perm in
    if Obs.tracing () then begin
      Obs.span_end ();
      (* numeric phase: envelope scatter + LDLᵀ recurrence *)
      Obs.span_begin "factor.numeric"
    end;
    match Sparse.Skyline.factor_real ?pivot_tol pa with
    | fac ->
      if Obs.tracing () then begin
        Obs.count "factor.count" 1;
        Obs.count "factor.nnz" (Sparse.Skyline.Real.fill fac);
        Obs.span_end ()
      end;
      of_skyline n perm fac
    | exception Sparse.Skyline.Singular i ->
      if Obs.tracing () then begin
        Obs.instant ~args:[ ("pivot", Obs.Int i) ] "factor.breakdown";
        Obs.span_end ()
      end;
      raise (Singular i))
  | `Supernodal perm -> (
    let pa = Sparse.Csr.permute_sym a perm in
    let sym = Sparse.Supernodal.symbolic pa in
    if Obs.tracing () then begin
      Obs.span_end ();
      (* numeric phase: panel assembly + supernodal LDLᵀ *)
      Obs.span_begin "factor.numeric"
    end;
    match Sparse.Supernodal.Real.factor ?pivot_tol sym 0.0 with
    | fac ->
      if Obs.tracing () then begin
        Obs.count "factor.count" 1;
        Obs.count "factor.nnz" (Sparse.Supernodal.Real.fill fac);
        Obs.span_end ()
      end;
      of_supernodal n perm fac
    | exception Sparse.Supernodal.Singular i ->
      if Obs.tracing () then begin
        Obs.instant ~args:[ ("pivot", Obs.Int i) ] "factor.breakdown";
        Obs.span_end ()
      end;
      raise (Singular i))

let of_dense a =
  let n = a.Linalg.Mat.rows in
  Obs.with_span "factor.dense" @@ fun () ->
  match Linalg.Ldlt.factor a with
  | fac ->
    let solve =
      if San.fp () then (fun b ->
        let x = Linalg.Ldlt.solve fac b in
        San.Fp.check_array ~name:"factor.dense_solve" x;
        x)
      else Linalg.Ldlt.solve fac
    in
    {
      n;
      j = Linalg.Ldlt.j_diag fac;
      definite = Linalg.Ldlt.is_definite fac;
      apply_m_inv = Linalg.Ldlt.apply_m_inv fac;
      apply_mt_inv = Linalg.Ldlt.apply_mt_inv fac;
      solve;
      kind = `Dense;
    }
  | exception Linalg.Ldlt.Singular i -> raise (Singular i)

let auto ?ordering a =
  match of_csr ?ordering a with
  | f -> f
  | exception Singular i ->
    Log.info (fun m ->
        m "sparse pivot breakdown at %d; falling back to dense Bunch-Kaufman" i);
    if Obs.tracing () then begin
      Obs.instant ~args:[ ("pivot", Obs.Int i) ] "factor.fallback_dense";
      Obs.count "factor.fallback_dense" 1
    end;
    of_dense (Sparse.Csr.to_dense a)

let with_shift ?ordering g c s0 =
  let shifted = if s0 = 0.0 then g else Sparse.Csr.add ~alpha:1.0 ~beta:s0 g c in
  auto ?ordering shifted
