(** Block-Arnoldi reduction with congruence projection — the
    coordinate-transformed Arnoldi alternative of Silveira et al. [16]
    (and of PRIMA), implemented as a baseline for the benches.

    An orthonormal basis [V] of the block Krylov space of
    [((G + s₀C)⁻¹C, (G + s₀C)⁻¹B)] is built by block Arnoldi with full
    modified Gram–Schmidt; the reduced model is the congruence
    projection [Ĝ = VᵀGV], [Ĉ = VᵀCV], [B̂ = VᵀB]. It matches only
    [⌊n/p⌋] moments (half of SyMPVL's Padé count) but preserves
    semi-definiteness of [G] and [C] by congruence. *)

type t = {
  ghat : Linalg.Mat.t;
  chat : Linalg.Mat.t;
  bhat : Linalg.Mat.t;
  order : int;
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
}

val reduce :
  ?ctx:Pencil.t -> ?shift:float -> ?band:float * float -> order:int -> Circuit.Mna.t -> t
(** Reduce to (at most) the given order; the basis may saturate
    earlier if the Krylov space is exhausted. Shift resolution is
    {!Pencil.with_auto_shift}, so PRIMA expands about the exact same
    point {!Reduce} (SyMPVL) would pick — explicit [shift] wins,
    otherwise 0 with the band-guided/heuristic retry when [G] is
    singular. Pass [ctx] to share one context across engines. *)

val reduce_multipoint : ?ctx:Pencil.t -> points:(float * int) list -> Circuit.Mna.t -> t
(** Rational (multi-point) Krylov reduction — the natural extension of
    the single-expansion method (complex-frequency-hopping style,
    listed as future work in the Padé line). [points] gives
    [(s₀, k)] pairs in the pencil variable: [k] block-Krylov steps of
    [((G + s₀C)⁻¹C, (G + s₀C)⁻¹B)] are generated at each shift and the
    union basis is orthonormalised before the congruence projection.
    By symmetry the model interpolates ≈ [2k] moments {e at every
    shift}, trading depth at one point for wideband coverage. The
    [shift] field of the result holds the first point. *)

val shift_of_hz : Circuit.Mna.t -> float -> float
(** Convert a frequency in Hz to an expansion point in the pencil
    variable ([2πf], squared for the LC [s²] form). *)

val eval : t -> Complex.t -> Linalg.Cmat.t
(** Evaluate [B̂ᵀ(Ĝ + var·Ĉ)⁻¹B̂] at physical [s] (with the same
    variable/gain conventions as {!Model.eval}). *)

val poles : t -> Complex.t array
(** Physical poles of the reduced pencil. *)
