(** Engine registry: one front door for every reduction algorithm.

    Every model-order-reduction engine in the library — the paper's
    SyMPVL band-Lanczos, two-sided MPVL, PRIMA block-Arnoldi,
    structure-preserving SPRIM, scalar AWE and dense balanced
    truncation — is reachable here behind a
    single options record and a single [reduce] entry point, so the
    CLI, the tests and the benches can enumerate and compare them
    uniformly. All Krylov engines share one {!Pencil} context (and
    therefore one symbolic phase, one factor cache and one eq.-26
    shift policy); pass [?ctx] to share it with exact AC analysis or
    moment checks too. *)

type engine = [ `Sympvl | `Mpvl | `Prima | `Sprim | `Awe | `Bt ]

type options = {
  order : int;  (** Requested reduced order (columns of the Krylov basis). *)
  shift : float option;  (** Explicit expansion point [s₀]; no retry. *)
  band : (float * float) option;
      (** Frequency band (Hz) for the automatic mid-band shift. *)
  dtol : float;  (** Deflation tolerance (Lanczos engines). *)
  ctol : float;  (** Definiteness check tolerance (SyMPVL). *)
  full_ortho : bool;  (** Full re-orthogonalisation (SyMPVL). *)
  ordering : bool;  (** RCM fill-reducing ordering in the shared context. *)
  port : int;  (** Port column driven by scalar engines (AWE). *)
}

val default : order:int -> options
(** The library defaults: no shift, RCM on, [dtol = 1e-8],
    [ctol = 1e-10], full re-orthogonalisation, port 0. *)

val all : engine list
(** Every registered engine, in documentation order. *)

val name : engine -> string
val of_name : string -> engine option
(** Case-insensitive; accepts the aliases [arnoldi] (PRIMA) and
    [balanced]/[truncation] (BT). *)

val describe : engine -> string
(** One-line summary of the algorithm and its guarantees, as printed
    by [symor reduce --engine help] and the README table. The
    guarantees are not taken on faith: [symor certify]
    ({!Certify.run}) re-derives each claim — stability, passivity,
    moment matching — on the model the engine actually produced,
    through the engine-uniform {!Certify.state_space} adapter. *)

val golden_rtol : engine -> float
(** Documented worst-case relative deviation from the exact AC golden
    fixtures on the shipped example netlists' 16-point grid at the
    orders the cross-engine golden test requests (Krylov engines near
    exhaustion; AWE at its documented low-order validity). *)

val supports : engine -> Circuit.Mna.t -> (unit, string) result
(** Structural applicability of an engine to an assembled pencil:
    AWE needs the [s] variable (scalar moment matching); SPRIM needs
    the general RLC form with a non-empty inductor-current block (the
    structure it preserves); balanced truncation needs the symmetric
    positive definite RC impedance form. [Error reason] explains the
    mismatch in one sentence. *)

type model =
  | Sympvl_model of Model.t
  | Mpvl_model of Mpvl.t
  | Prima_model of Arnoldi.t
  | Sprim_model of Sprim.t
  | Awe_model of Awe.t
  | Bt_model of Btruncation.t

exception Unsupported of string
(** Raised by {!reduce} when {!supports} says no. *)

val reduce :
  ?ctx:Pencil.t -> ?opts:options -> order:int -> engine -> Circuit.Mna.t -> model
(** Run one engine. [opts] defaults to [default ~order] (an explicit
    [opts] wins over [~order]). The shared [ctx] is threaded to every
    pencil-backed engine; balanced truncation is dense and ignores it.
    AWE resolves [band] to the same mid-band shift as the Krylov
    engines ({!Pencil.band_shift}).

    @raise Unsupported when the engine does not apply to [m].
    @raise Factor.Singular as the underlying engine would. *)

val eval : model -> Complex.t -> Linalg.Cmat.t
(** Reduced-order [Ẑ(s)] at a physical complex frequency, uniformly a
    [p×p] matrix (AWE's scalar becomes [1×1]); gain and variable
    conventions as in {!Model.eval}. *)

val order : model -> int
val ports : model -> int

val shift : model -> float
(** Expansion point actually used ([0.] for balanced truncation,
    which has none). *)

val engine_of_model : model -> engine

val expected_moments : model -> int
(** The number of matrix moments the algorithm matches by
    construction at its expansion point: [2⌊n/p⌋] for the two-sided
    Lanczos engines (SyMPVL/MPVL, paper Section 3.2), [⌊n/p⌋] for
    PRIMA's one-sided congruence, [⌊krylov_cols/p⌋] for SPRIM (its
    split basis spans at least PRIMA's projection subspace at the same
    Krylov depth), [2·order] scalar moments for AWE,
    and [0] for balanced truncation (which optimises the H∞ error,
    not moments). [Certify] verifies this count against
    {!Moments.exact} (rule MOD005). *)
