(** AWE: asymptotic waveform evaluation (Pillage–Rohrer [13]) —
    explicit-moment Padé approximation of a single transfer-function
    entry.

    This is the baseline the Lanczos-based methods replace: the Padé
    coefficients are computed from explicitly generated moments via a
    Hankel system, which is exponentially ill-conditioned in the
    order. It works for small orders (≲ 8–10) and then breaks down —
    the instability documented in [5] that motivates SyPVL/SyMPVL.
    Restricted to pencils in the [s] variable. *)

type t = {
  poles : Complex.t array;  (** In the pencil variable [σ]. *)
  residues : Complex.t array;
  order : int;
  shift : float;
  gain : Circuit.Mna.gain;
  hankel_rcond : float;
      (** Reciprocal condition estimate of the Hankel system — watch
          it collapse as the order grows. *)
}

exception Breakdown of string
(** The Hankel system is numerically singular. *)

val build : ?ctx:Pencil.t -> ?shift:float -> order:int -> port:int -> Circuit.Mna.t -> t
(** [build ~order ~port m] computes the [order]-pole AWE model of
    [Z_port,port] from [2·order] explicit moments (solved through the
    shared pencil context; pass [ctx] to reuse a factorisation cached
    by another engine at the same shift). *)

val eval : t -> Complex.t -> Complex.t
(** Evaluate at physical [s] via the pole/residue form. *)
