type t = {
  t_mat : Linalg.Mat.t;
  d : Linalg.Mat.t;
  mu : Linalg.Mat.t;
  eta : Linalg.Mat.t;
  order : int;
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
  deflations : int;
}

exception Breakdown of int

(* Two-sided block Lanczos with full biorthogonalisation and
   synchronised deflation (a right/left candidate pair is dropped
   together, keeping the block sizes equal). The matrices G and C of
   this codebase's MNA forms are symmetric, so the transposed
   operator is Aᵀ = C K⁻¹; the algorithm still runs the full
   two-sided process — it merely does not *exploit* the symmetry,
   which is exactly the MPVL-vs-SyMPVL comparison point. *)
let run_lanczos ~dtol ~order ~op ~op_t ~r_start ~l_start =
  let p = r_start.Linalg.Mat.cols in
  let vs = ref [] and ws = ref [] and ds = ref [] in
  let nv = ref 0 in
  let deflations = ref 0 in
  let right = ref (List.init p (fun c -> Linalg.Mat.col r_start c)) in
  let left = ref (List.init p (fun c -> Linalg.Mat.col l_start c)) in
  let biortho_right r =
    List.iteri
      (fun i v ->
        let w = List.nth !ws i and d = List.nth !ds i in
        let coeff = Linalg.Vec.dot w r /. d in
        Linalg.Vec.axpy (-.coeff) v r)
      !vs
  in
  let biortho_left l =
    List.iteri
      (fun i w ->
        let v = List.nth !vs i and d = List.nth !ds i in
        let coeff = Linalg.Vec.dot v l /. d in
        Linalg.Vec.axpy (-.coeff) w l)
      !ws
  in
  (try
     while !nv < order && !right <> [] do
       match (!right, !left) with
       | r :: rrest, l :: lrest ->
         let r0 = Float.max (Linalg.Vec.norm2 r) 1e-300 in
         let l0 = Float.max (Linalg.Vec.norm2 l) 1e-300 in
         biortho_right r;
         biortho_left l;
         let rn = Linalg.Vec.norm2 r and ln = Linalg.Vec.norm2 l in
         right := rrest;
         left := lrest;
         if rn <= dtol *. r0 || ln <= dtol *. l0 then incr deflations
         else begin
           Linalg.Vec.scale_ip (1.0 /. rn) r;
           Linalg.Vec.scale_ip (1.0 /. ln) l;
           let d = Linalg.Vec.dot l r in
           if Float.abs d < 1e-13 then raise (Breakdown (!nv + 1));
           vs := !vs @ [ r ];
           ws := !ws @ [ l ];
           ds := !ds @ [ d ];
           incr nv;
           if !nv < order then begin
             right := !right @ [ op r ];
             left := !left @ [ op_t l ]
           end
         end
       | _, _ -> right := []
     done
   with Exit -> ());
  (Array.of_list !vs, Array.of_list !ws, Array.of_list !ds, !deflations)

let reduce ?ctx ?shift ?band ?(dtol = 1e-8) ~order (m : Circuit.Mna.t) =
  let c = m.Circuit.Mna.c in
  let ctx = match ctx with Some p -> p | None -> Pencil.create m in
  (* shift resolution and factorisation via the shared policy — the
     exact same eq. (26) retry as SyMPVL/PRIMA *)
  Pencil.with_auto_shift ?shift ?band ctx @@ fun s0 fac ->
  let op v = fac.Factor.solve (Sparse.Csr.mul_vec c v) in
  let op_t v = Sparse.Csr.mul_vec c (fac.Factor.solve v) in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let n_full = m.Circuit.Mna.n in
  let r_start = Linalg.Mat.create n_full p in
  for k = 0 to p - 1 do
    Linalg.Mat.set_col r_start k (fac.Factor.solve (Linalg.Mat.col m.Circuit.Mna.b k))
  done;
  let vs, ws, ds, deflations =
    run_lanczos ~dtol ~order ~op ~op_t ~r_start ~l_start:m.Circuit.Mna.b
  in
  let n = Array.length vs in
  if n = 0 then raise (Breakdown 0);
  let v = Linalg.Mat.of_cols (Array.to_list vs) in
  let w = Linalg.Mat.of_cols (Array.to_list ws) in
  (* S = Wᵀ A V, T = D⁻¹S, μ = Wᵀ(K⁻¹B), η = VᵀB *)
  let av = Linalg.Mat.of_cols (List.init n (fun j -> op (Linalg.Mat.col v j))) in
  let s_mat = Linalg.Mat.mul (Linalg.Mat.transpose w) av in
  let t_mat =
    Linalg.Mat.init n n (fun i j -> Linalg.Mat.get s_mat i j /. ds.(i))
  in
  let mu = Linalg.Mat.mul (Linalg.Mat.transpose w) r_start in
  let eta = Linalg.Mat.mul (Linalg.Mat.transpose v) m.Circuit.Mna.b in
  {
    t_mat;
    d = Linalg.Mat.diag (Linalg.Vec.init n (fun i -> ds.(i)));
    mu;
    eta;
    order = n;
    p;
    shift = s0;
    variable = m.Circuit.Mna.variable;
    gain = m.Circuit.Mna.gain;
    deflations;
  }

let eval t s =
  let var =
    match t.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let sigma = Linalg.Cx.(var -: re t.shift) in
  let n = t.order in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one (Linalg.Mat.identity n) sigma t.t_mat in
  (* x = (I + σT)⁻¹ D⁻¹ μ *)
  let dinv_mu =
    Linalg.Mat.init n t.p (fun i j -> Linalg.Mat.get t.mu i j /. Linalg.Mat.get t.d i i)
  in
  let x = Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor k) (Linalg.Cmat.of_real dinv_mu) in
  let z = Linalg.Cmat.mul (Linalg.Cmat.of_real (Linalg.Mat.transpose t.eta)) x in
  match t.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

let poles t =
  let eigs = Linalg.Eig_gen.eigenvalues t.t_mat in
  let lam_max = Array.fold_left (fun acc l -> Float.max acc (Linalg.Cx.abs l)) 1e-300 eigs in
  let mapped =
    eigs
    |> Array.to_list
    |> List.filter_map (fun lam ->
           if Linalg.Cx.abs lam <= 1e-12 *. lam_max then None
           else begin
             let sigma = Linalg.Cx.(neg (inv lam)) in
             let shifted = Linalg.Cx.(sigma +: re t.shift) in
             match t.variable with
             | Circuit.Mna.S -> Some [ shifted ]
             | Circuit.Mna.S_squared ->
               let r = Linalg.Cx.sqrt shifted in
               Some [ r; Linalg.Cx.neg r ]
           end)
    |> List.concat
  in
  Array.of_list mapped
