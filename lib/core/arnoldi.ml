type t = {
  ghat : Linalg.Mat.t;
  chat : Linalg.Mat.t;
  bhat : Linalg.Mat.t;
  order : int;
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
}

let reduce ?ctx ?shift ?band ~order (m : Circuit.Mna.t) =
  let g = m.Circuit.Mna.g and c = m.Circuit.Mna.c in
  let ctx = match ctx with Some p -> p | None -> Pencil.create m in
  (* shift resolution and factorisation via the shared policy: PRIMA
     expands about the exact same point SyMPVL/MPVL would pick *)
  Pencil.with_auto_shift ?shift ?band ctx @@ fun s0 fac ->
  let solve_k v = fac.Factor.solve v in
  let nn = m.Circuit.Mna.n in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  (* orthonormal basis accumulated column by column with two-pass MGS *)
  let basis = ref [] in
  let nb = ref 0 in
  let push v =
    if !nb < order then begin
      let w = Linalg.Vec.copy v in
      let n0 = Linalg.Vec.norm2 w in
      for _pass = 1 to 2 do
        List.iter
          (fun q ->
            let h = Linalg.Vec.dot q w in
            Linalg.Vec.axpy (-.h) q w)
          !basis
      done;
      let n1 = Linalg.Vec.norm2 w in
      if n1 > 1e-10 *. Float.max n0 1e-300 then begin
        Linalg.Vec.scale_ip (1.0 /. n1) w;
        basis := !basis @ [ w ];
        incr nb;
        true
      end
      else false
    end
    else false
  in
  (* start block K⁻¹B *)
  let current = ref [] in
  for k = 0 to p - 1 do
    let v = solve_k (Linalg.Mat.col m.Circuit.Mna.b k) in
    if push v then current := !current @ [ List.nth !basis (!nb - 1) ]
  done;
  (* Arnoldi sweeps: apply K⁻¹C to the newest accepted block *)
  let continue_ = ref (!current <> []) in
  while !nb < order && !continue_ do
    let next = ref [] in
    List.iter
      (fun v ->
        if !nb < order then begin
          let w = solve_k (Sparse.Csr.mul_vec c v) in
          if push w then next := !next @ [ List.nth !basis (!nb - 1) ]
        end)
      !current;
    current := !next;
    if !current = [] then continue_ := false
  done;
  let v = Linalg.Mat.create nn !nb in
  List.iteri (fun k q -> Linalg.Mat.set_col v k q) !basis;
  let ghat = Linalg.Mat.congruence v (Sparse.Csr.to_dense g) in
  let chat = Linalg.Mat.congruence v (Sparse.Csr.to_dense c) in
  let bhat = Linalg.Mat.mul (Linalg.Mat.transpose v) m.Circuit.Mna.b in
  {
    ghat;
    chat;
    bhat;
    order = !nb;
    p;
    shift = s0;
    variable = m.Circuit.Mna.variable;
    gain = m.Circuit.Mna.gain;
  }

let shift_of_hz (m : Circuit.Mna.t) f =
  let w = 2.0 *. Float.pi *. f in
  match m.Circuit.Mna.variable with
  | Circuit.Mna.S -> w
  | Circuit.Mna.S_squared -> w *. w

let reduce_multipoint ?ctx ~points (m : Circuit.Mna.t) =
  assert (points <> []);
  let g = m.Circuit.Mna.g and c = m.Circuit.Mna.c in
  let ctx = match ctx with Some p -> p | None -> Pencil.create m in
  let nn = m.Circuit.Mna.n in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let basis = ref [] in
  let nb = ref 0 in
  let push v =
    let w = Linalg.Vec.copy v in
    let n0 = Linalg.Vec.norm2 w in
    for _pass = 1 to 2 do
      List.iter
        (fun q ->
          let h = Linalg.Vec.dot q w in
          Linalg.Vec.axpy (-.h) q w)
        !basis
    done;
    let n1 = Linalg.Vec.norm2 w in
    if n1 > 1e-10 *. Float.max n0 1e-300 then begin
      Linalg.Vec.scale_ip (1.0 /. n1) w;
      basis := !basis @ [ w ];
      incr nb;
      true
    end
    else false
  in
  List.iter
    (fun (s0, steps) ->
      (* repeated expansion points are cache hits on the context *)
      let fac = Pencil.factor ctx ~shift:s0 in
      let current = ref [] in
      for col = 0 to p - 1 do
        let v = fac.Factor.solve (Linalg.Mat.col m.Circuit.Mna.b col) in
        if push v then current := !current @ [ List.nth !basis (!nb - 1) ]
      done;
      for _step = 2 to steps do
        let next = ref [] in
        List.iter
          (fun v ->
            let w = fac.Factor.solve (Sparse.Csr.mul_vec c v) in
            if push w then next := !next @ [ List.nth !basis (!nb - 1) ])
          !current;
        current := !next
      done)
    points;
  let v = Linalg.Mat.create nn !nb in
  List.iteri (fun k q -> Linalg.Mat.set_col v k q) !basis;
  {
    ghat = Linalg.Mat.congruence v (Sparse.Csr.to_dense g);
    chat = Linalg.Mat.congruence v (Sparse.Csr.to_dense c);
    bhat = Linalg.Mat.mul (Linalg.Mat.transpose v) m.Circuit.Mna.b;
    order = !nb;
    p;
    shift = fst (List.hd points);
    variable = m.Circuit.Mna.variable;
    gain = m.Circuit.Mna.gain;
  }

let eval t s =
  let var =
    match t.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one t.ghat var t.chat in
  let b = Linalg.Cmat.of_real t.bhat in
  let z = Linalg.Cmat.mul (Linalg.Cmat.transpose b) (Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor k) b) in
  match t.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

let poles t =
  (* generalised eigenvalues of (Ĝ, Ĉ): poles satisfy Ĝ + λĈ singular;
     compute via the standard eigenproblem of −Ĉ⁻¹Ĝ when Ĉ is
     invertible, else of −ĜĈ pencil shifted *)
  match Linalg.Lu.factor t.chat with
  | lu ->
    let n = t.order in
    let m = Linalg.Mat.create n n in
    for j = 0 to n - 1 do
      let col = Linalg.Lu.solve_vec lu (Linalg.Mat.col t.ghat j) in
      Linalg.Mat.set_col m j (Linalg.Vec.scale (-1.0) col)
    done;
    Linalg.Eig_gen.eigenvalues m
  | exception Linalg.Lu.Singular _ -> [||]
