(** Stability and passivity analysis of reduced-order models
    (paper Section 5). *)

val max_pole_re : Model.t -> float
(** Largest real part over the model's physical poles ([−∞] when the
    model has no finite poles). *)

val is_stable : ?tol:float -> Model.t -> bool
(** All physical poles satisfy [Re ≤ tol] (default [1e-9] relative to
    the pole magnitude scale). *)

type passivity_certificate =
  | Certified
      (** [J = I] and [Tₙ ⪰ 0]: the model is provably passive
          (Section 5.2) — holds for RC/RL/LC circuits expanded about
          [s₀ = 0]. *)
  | Indefinite_t of float
      (** [J = I] but [Tₙ] has the given negative eigenvalue. *)
  | Not_applicable
      (** Indefinite [J] (general RLC) or a nonzero expansion shift:
          no structural certificate; use {!passivity_bands}. *)

val passivity_certificate : ?tol:float -> Model.t -> passivity_certificate

val model_pencil : Model.t -> Linalg.Hamiltonian.pencil
(** The model's physical-frequency descriptor pencil — the same
    realisation the engine-uniform [symor certify] adapter
    ({!Certify.state_space}) produces for a SyMPVL model. *)

val passivity_bands : ?tol:float -> Model.t -> Linalg.Hamiltonian.band list
(** Exact passivity violation bands of the model via the Hamiltonian
    imaginary-axis eigenvalue test
    ({!Linalg.Hamiltonian.violation_bands}) — finds every interval
    where [min eig Re Z(jω) < −tol·|Z|], including bands narrower than
    any sampling grid. Empty list ⇒ passive on the whole axis. *)

val unstable_poles : Model.t -> Complex.t array
