type engine = [ `Sympvl | `Mpvl | `Prima | `Sprim | `Awe | `Bt ]

type options = {
  order : int;
  shift : float option;
  band : (float * float) option;
  dtol : float;
  ctol : float;
  full_ortho : bool;
  ordering : bool;
  port : int;
}

let default ~order =
  {
    order;
    shift = None;
    band = None;
    dtol = 1e-8;
    ctol = 1e-10;
    full_ortho = true;
    ordering = true;
    port = 0;
  }

let all = [ `Sympvl; `Mpvl; `Prima; `Sprim; `Awe; `Bt ]

let name = function
  | `Sympvl -> "sympvl"
  | `Mpvl -> "mpvl"
  | `Prima -> "prima"
  | `Sprim -> "sprim"
  | `Awe -> "awe"
  | `Bt -> "bt"

let of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "sympvl" -> Some `Sympvl
  | "mpvl" -> Some `Mpvl
  | "prima" | "arnoldi" -> Some `Prima
  | "sprim" -> Some `Sprim
  | "awe" -> Some `Awe
  | "bt" | "balanced" | "truncation" -> Some `Bt
  | _ -> None

let describe = function
  | `Sympvl ->
    "symmetric band-Lanczos matrix-Pade (the paper's algorithm): matches \
     2*floor(n/p) matrix moments; provably stable and passive on the \
     definite unshifted path"
  | `Mpvl ->
    "two-sided block Lanczos (MPVL): same Pade property without exploiting \
     symmetry; no structural stability/passivity certificate"
  | `Prima ->
    "block-Arnoldi congruence projection (PRIMA): matches floor(n/p) moment \
     blocks; passive by congruence on PSD pencils"
  | `Sprim ->
    "SPRIM block-structure-preserving congruence (general RLC form): the \
     PRIMA Krylov basis split at the node/current boundary and re-blocked, \
     so reduced models keep G/C symmetry, the 2x2 block structure and \
     passivity by construction, and synthesise back to RLCk netlists"
  | `Awe ->
    "explicit-moment scalar Pade (AWE): single-port, numerically limited to \
     low orders (~8) by moment-matrix conditioning"
  | `Bt ->
    "balanced truncation on the symmetric definite RC form: provably stable \
     and passive, with the a-priori H-infinity error bound 2*sum(dropped \
     Hankel singular values); dense O(N^3)"

(* documented worst-case relative deviation from the exact AC golden
   fixtures on the shipped examples' 16-point grid (1e6..1e10 Hz) at
   the orders the cross-engine test requests — the Krylov engines are
   run near exhaustion (model = exact transfer function), AWE is
   gated only on its documented low-order validity *)
let golden_rtol = function
  | `Sympvl -> 1e-6
  | `Mpvl -> 1e-5
  | `Prima -> 1e-5
  | `Sprim -> 1e-5
  | `Awe -> 0.2
  | `Bt -> 1e-6

let supports engine (m : Circuit.Mna.t) =
  match engine with
  | `Sympvl | `Mpvl | `Prima -> Ok ()
  | `Sprim ->
    if
      m.Circuit.Mna.variable <> Circuit.Mna.S
      || m.Circuit.Mna.gain <> Circuit.Mna.Unit
    then
      Error
        "SPRIM preserves the node/current block structure of the general RLC \
         form Z = B^T(G+sC)^{-1}B; the specialised RL/LC gain and variable \
         mappings have no current block to preserve (use sympvl)"
    else if m.Circuit.Mna.n = m.Circuit.Mna.n_nodes then
      Error
        "SPRIM needs an inductor-current block to preserve, but this netlist \
         has no inductors (the RC form is already structure-preserving — use \
         sympvl or prima)"
    else Ok ()
  | `Awe ->
    if m.Circuit.Mna.variable <> Circuit.Mna.S then
      Error
        "AWE matches scalar moments in the s variable; sigma = s^2 (LC) \
         pencils are unsupported"
    else Ok ()
  | `Bt ->
    if m.Circuit.Mna.variable <> Circuit.Mna.S || m.Circuit.Mna.gain <> Circuit.Mna.Unit
    then
      Error
        "balanced truncation needs the direct impedance form Z = \
         B^T(G+sC)^{-1}B (RC class; RL/LC gain and variable mappings are \
         unsupported)"
    else if not m.Circuit.Mna.spd then
      Error
        "balanced truncation needs the symmetric positive definite RC form \
         (general RLC pencils are indefinite)"
    else begin
      (* Chol(C) needs C ≻ 0: a node without a capacitance to ground
         (zero C diagonal) makes the pencil only semidefinite *)
      let singular_c = ref (-1) in
      for i = m.Circuit.Mna.n - 1 downto 0 do
        if Sparse.Csr.get m.Circuit.Mna.c i i <= 0.0 then singular_c := i
      done;
      if !singular_c >= 0 then
        Error
          (Printf.sprintf
             "balanced truncation needs C positive definite, but node %d has no \
              capacitance to ground"
             !singular_c)
      else Ok ()
    end

type model =
  | Sympvl_model of Model.t
  | Mpvl_model of Mpvl.t
  | Prima_model of Arnoldi.t
  | Sprim_model of Sprim.t
  | Awe_model of Awe.t
  | Bt_model of Btruncation.t

exception Unsupported of string

let reduce ?ctx ?opts ~order engine (m : Circuit.Mna.t) =
  let o = match opts with Some o -> o | None -> default ~order in
  (match supports engine m with Ok () -> () | Error why -> raise (Unsupported why));
  match engine with
  | `Sympvl ->
    let ropts =
      {
        Reduce.order = o.order;
        shift = o.shift;
        band = o.band;
        dtol = o.dtol;
        ctol = o.ctol;
        full_ortho = o.full_ortho;
        ordering = o.ordering;
      }
    in
    Sympvl_model (Reduce.mna ~opts:ropts ?ctx ~order:o.order m)
  | `Mpvl ->
    Mpvl_model
      (Mpvl.reduce ?ctx ?shift:o.shift ?band:o.band ~dtol:o.dtol ~order:o.order m)
  | `Prima ->
    Prima_model (Arnoldi.reduce ?ctx ?shift:o.shift ?band:o.band ~order:o.order m)
  | `Sprim ->
    Sprim_model (Sprim.reduce ?ctx ?shift:o.shift ?band:o.band ~order:o.order m)
  | `Awe ->
    (* shift resolution (including the singular-G retry) goes through
       the one policy in Pencil; the factorisation it computes stays in
       the shared cache, so Awe's moment recurrence reuses it *)
    let ctx =
      match ctx with Some c -> c | None -> Pencil.create ~ordering:o.ordering m
    in
    Awe_model
      (Pencil.with_auto_shift ?shift:o.shift ?band:o.band ctx (fun s0 _fac ->
           Awe.build ~ctx ~shift:s0 ~order:o.order ~port:o.port m))
  | `Bt -> (
    match Btruncation.reduce ~order:o.order m with
    | bt -> Bt_model bt
    | exception Btruncation.Not_definite ->
      raise
        (Unsupported
           "balanced truncation: the assembled pencil is not positive definite \
            (singular C or indefinite congruence)"))

let engine_of_model = function
  | Sympvl_model _ -> `Sympvl
  | Mpvl_model _ -> `Mpvl
  | Prima_model _ -> `Prima
  | Sprim_model _ -> `Sprim
  | Awe_model _ -> `Awe
  | Bt_model _ -> `Bt

let eval model s =
  match model with
  | Sympvl_model m -> Model.eval m s
  | Mpvl_model m -> Mpvl.eval m s
  | Prima_model m -> Arnoldi.eval m s
  | Sprim_model m -> Sprim.eval m s
  | Awe_model m ->
    let z = Linalg.Cmat.create 1 1 in
    Linalg.Cmat.set z 0 0 (Awe.eval m s);
    z
  | Bt_model m -> Btruncation.eval m s

let order = function
  | Sympvl_model m -> m.Model.order
  | Mpvl_model m -> m.Mpvl.order
  | Prima_model m -> m.Arnoldi.order
  | Sprim_model m -> m.Sprim.order
  | Awe_model m -> m.Awe.order
  | Bt_model m -> m.Btruncation.order

let ports = function
  | Sympvl_model m -> m.Model.p
  | Mpvl_model m -> m.Mpvl.p
  | Prima_model m -> m.Arnoldi.p
  | Sprim_model m -> m.Sprim.p
  | Awe_model _ -> 1
  | Bt_model m -> m.Btruncation.p

let shift = function
  | Sympvl_model m -> m.Model.shift
  | Mpvl_model m -> m.Mpvl.shift
  | Prima_model m -> m.Arnoldi.shift
  | Sprim_model m -> m.Sprim.shift
  | Awe_model m -> m.Awe.shift
  | Bt_model _ -> 0.0

(* the number of matrix moments each algorithm matches by construction
   (paper Section 3.2 for the Lanczos engines; Grimme for Arnoldi;
   2·order scalar moments define the AWE Hankel system; balanced
   truncation optimises the H-infinity error, not moments) *)
let expected_moments model =
  let two_sided n p = 2 * (n / p) in
  match model with
  | Sympvl_model m -> two_sided m.Model.order m.Model.p
  | Mpvl_model m -> two_sided m.Mpvl.order m.Mpvl.p
  | Prima_model m -> m.Arnoldi.order / m.Arnoldi.p
  (* the split basis spans at least PRIMA's projection subspace, so
     SPRIM inherits (at least) the PRIMA moment floor at the same
     Krylov depth *)
  | Sprim_model m -> m.Sprim.krylov_cols / m.Sprim.p
  | Awe_model m -> 2 * m.Awe.order
  | Bt_model _ -> 0
