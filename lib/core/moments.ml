(* all solves go through the shared pencil context: with [ctx] reused
   from a reduction at the same shift, the factorisation is a cache
   hit and the moment check costs only triangular solves *)
let context ?ctx m =
  match ctx with Some c -> c | None -> Pencil.create m

let exact ?ctx ?(shift = 0.0) (m : Circuit.Mna.t) k =
  let fac = Pencil.factor (context ?ctx m) ~shift in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let n = m.Circuit.Mna.n in
  (* X₀ = K⁻¹B, X_{j+1} = K⁻¹ C X_j; moment_j = (−1)ʲ Bᵀ X_j *)
  let x = Linalg.Mat.create n p in
  for c = 0 to p - 1 do
    Linalg.Mat.set_col x c (fac.Factor.solve (Linalg.Mat.col m.Circuit.Mna.b c))
  done;
  let x = ref x in
  Array.init k (fun jdx ->
      if jdx > 0 then begin
        let next = Linalg.Mat.create n p in
        for c = 0 to p - 1 do
          let cx = Sparse.Csr.mul_vec m.Circuit.Mna.c (Linalg.Mat.col !x c) in
          Linalg.Mat.set_col next c (fac.Factor.solve cx)
        done;
        x := next
      end;
      let mk = Linalg.Mat.mul (Linalg.Mat.transpose m.Circuit.Mna.b) !x in
      if jdx mod 2 = 0 then mk else Linalg.Mat.scale (-1.0) mk)

let relative_errors ?ctx ?shift model mna k =
  let shift = match shift with Some s -> s | None -> model.Model.shift in
  let ex = exact ?ctx ~shift mna k in
  let red = Model.moments model k in
  Array.init k (fun i ->
      let scale = Float.max (Linalg.Mat.max_abs ex.(i)) 1e-300 in
      Linalg.Mat.dist_max ex.(i) red.(i) /. scale)

let matched_count ?ctx ?shift ?(rtol = 1e-6) model mna =
  let max_check = (2 * model.Model.order) + 2 in
  let errs = relative_errors ?ctx ?shift model mna max_check in
  let rec count i = if i < max_check && errs.(i) <= rtol then count (i + 1) else i in
  count 0

(* Scaled comparison: run both Krylov recurrences with per-step
   renormalisation by the exact iterate's magnitude, so the two
   sequences stay on a common scale and never leave the float range. *)
let relative_errors_scaled ?ctx ?shift model mna k =
  let shift = match shift with Some s -> s | None -> model.Model.shift in
  let fac = Pencil.factor (context ?ctx mna) ~shift in
  let p = mna.Circuit.Mna.b.Linalg.Mat.cols in
  let n = mna.Circuit.Mna.n in
  (* exact iterate *)
  let x = Linalg.Mat.create n p in
  for c = 0 to p - 1 do
    Linalg.Mat.set_col x c (fac.Factor.solve (Linalg.Mat.col mna.Circuit.Mna.b c))
  done;
  let x = ref x in
  (* reduced iterate: y₀ = ρ, moment = ρᵀ Δ y (sign-free: both sides
     carry the same (−1)ᵏ, which cancels in the comparison) *)
  let rho_delta =
    Linalg.Mat.mul (Linalg.Mat.transpose model.Model.rho) model.Model.delta
  in
  let y = ref (Linalg.Mat.copy model.Model.rho) in
  let errs = Array.make k 0.0 in
  for jdx = 0 to k - 1 do
    if jdx > 0 then begin
      (* advance both recurrences *)
      let next = Linalg.Mat.create n p in
      for c = 0 to p - 1 do
        let cx = Sparse.Csr.mul_vec mna.Circuit.Mna.c (Linalg.Mat.col !x c) in
        Linalg.Mat.set_col next c (fac.Factor.solve cx)
      done;
      let ynext = Linalg.Mat.mul model.Model.t_mat !y in
      (* common renormalisation by the exact iterate's magnitude *)
      let scale = Float.max (Linalg.Mat.max_abs next) 1e-300 in
      x := Linalg.Mat.scale (1.0 /. scale) next;
      y := Linalg.Mat.scale (1.0 /. scale) ynext
    end;
    let m_ex = Linalg.Mat.mul (Linalg.Mat.transpose mna.Circuit.Mna.b) !x in
    let m_red = Linalg.Mat.mul rho_delta !y in
    let denom = Float.max (Linalg.Mat.max_abs m_ex) 1e-300 in
    errs.(jdx) <- Linalg.Mat.dist_max m_ex m_red /. denom
  done;
  errs

let matched_count_scaled ?ctx ?shift ?(rtol = 1e-6) model mna =
  let max_check = (2 * model.Model.order) + 2 in
  let errs = relative_errors_scaled ?ctx ?shift model mna max_check in
  let rec count i = if i < max_check && errs.(i) <= rtol then count (i + 1) else i in
  count 0
