(** SyMPVL driver: netlist / MNA pencil → reduced-order model.

    Handles the whole pipeline of the paper: assemble (or accept) the
    symmetric pencil [(G, C, B)], factor [G + s₀C = M J Mᵀ], run the
    symmetric band-Lanczos process on [J⁻¹M⁻¹CM⁻ᵀ] with starting
    block [J⁻¹M⁻¹B], and package the result as a {!Model.t}.

    When [G] is singular (e.g. the LC PEEC circuit: no DC path to
    ground) and no shift was supplied, a frequency shift is chosen
    automatically (eq. (26)) and the expansion is performed about it. *)

type options = {
  order : int;  (** Requested reduced order [n]. *)
  shift : float option;
      (** Expansion shift [s₀] in the pencil variable ([σ = s²] for
          LC). [None]: 0, with automatic retry on singular [G]. *)
  band : (float * float) option;
      (** Target frequency band in Hz. Used to pick a good automatic
          shift when [G] is singular: the geometric mid-band
          [2π√(f_lo·f_hi)] (squared for the LC [s²] variable). *)
  dtol : float;  (** Deflation tolerance (see {!Band_lanczos.run}). *)
  ctol : float;  (** Cluster-closing tolerance. *)
  full_ortho : bool;  (** Full re-J-orthogonalisation (default true). *)
  ordering : bool;  (** RCM pre-ordering of the sparse factor. *)
}

val default : order:int -> options

val band_shift : Circuit.Mna.t -> float * float -> float
(** The mid-band expansion point in the pencil variable
    (= {!Pencil.band_shift}). *)

val auto_shift : Circuit.Mna.t -> float
(** Fallback heuristic shift [max |diag G| / max |diag C|] when no
    band is known (= {!Pencil.auto_shift}) — the right order of
    magnitude to make [G + s₀C] well conditioned, though usually far
    from the band of interest (prefer passing [band]). *)

val mna : ?opts:options -> ?ctx:Pencil.t -> order:int -> Circuit.Mna.t -> Model.t
(** Reduce a pre-assembled pencil. [opts] overrides [order] if both
    given. All pencil work — structural pre-flight, ordering,
    factorisation, the eq. (26) shift policy — is delegated to a
    {!Pencil.t} context; pass [ctx] to share one (its cached
    factorisations, symbolic phase and pre-flight) across several
    reductions or with {!Moments}.

    The structural pre-flight: if the pattern of [G + sC] has
    structural rank < n (singular for {e every} element value and
    shift — see {!Sparse.Matching}), {!Pencil.create} raises
    {!Circuit.Diagnostic.User_error} with an [STR001] message naming
    the unmatched unknowns, instead of a late {!Factor.Singular} from
    a doomed shifted retry. {!Factor.Singular} is still raised when
    the structurally sound pencil is {e numerically} singular even
    after the automatic shift. *)

val checked :
  ?opts:options ->
  ?ctx:Pencil.t ->
  order:int ->
  Circuit.Mna.t ->
  Model.t * Circuit.Diagnostic.t list
(** Like {!mna}, but additionally audits the numerical contracts the
    algorithm rests on — symmetry of [G]/[C], J-orthogonality of the
    Lanczos basis, tolerance consistency, the stability/passivity
    certificates of [Tₙ], and a factor-solve residual probe of the
    shared pencil context ({!Contract.check_pencil}) — and returns
    the {!Contract} findings alongside the model (used by
    [symor reduce --check] and the [SYMOR_CHECK=1] environment
    contract). *)

val netlist : ?opts:options -> order:int -> Circuit.Netlist.t -> Model.t
(** [Circuit.Mna.auto] followed by {!mna} — the paper's specialised
    PSD forms are picked automatically for RC/RL/LC circuits. *)

val scalar : ?opts:options -> order:int -> port:int -> Circuit.Mna.t -> Model.t
(** SyPVL (the p = 1 predecessor, ref. [8]): reduce using only the
    given port column of [B]. *)

val to_accuracy :
  ?opts:options ->
  ?max_order:int ->
  ?points:int ->
  tol:float ->
  band:float * float ->
  Circuit.Mna.t ->
  Model.t * float
(** Adaptive order selection: grow the reduced order until two
    successive models agree to relative tolerance [tol] on a
    [points]-point grid (default 25) over [band] — a practical
    convergence criterion that needs no exact solves. Returns the
    converged model and the last observed model-to-model deviation
    (an error {e estimate}, not a bound). [max_order] defaults to
    [min(N, 200)]. *)
