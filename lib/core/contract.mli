(** Numerical contract checker for the reduction pipeline.

    The linter ([Analysis.Lint]) proves structural preconditions
    statically; this module verifies the {e numerical} contracts the
    algorithm relies on, after the matrices and Krylov quantities
    exist, and reports through the same {!Circuit.Diagnostic.t}
    findings pipeline:

    - [NUM001]/[NUM002] — symmetry residual of the assembled [G]/[C]
      (error above [tol]; the whole symmetric Lanczos machinery is
      built on [G = Gᵀ], [C = Cᵀ])
    - [NUM003] — J-orthogonality drift of the band-Lanczos vectors,
      [‖VᵀJV − Δ‖ / ‖Δ‖] (warning above [drift_tol]; large drift means
      the look-ahead/deflation thresholds were too loose for this
      conditioning)
    - [NUM004] — deflation-tolerance consistency: [dtol] against the
      cluster-closing tolerance [ctol] and machine precision, plus a
      record of the deflations that occurred
    - [NUM005] — eigenvalue-based stability certificate of [Tₙ]
      (error when the definite unshifted path — which is provably
      stable — still produced an unstable pole; warning otherwise)
    - [NUM006] — passivity certificate of [Tₙ] (info when certified or
      structurally inapplicable, warning when [T] is indefinite)
    - [NUM007] — factor-solve backward residual of the shared
      {!Pencil} context at the expansion shift (warning above [tol])

    Enable from the CLI with [symor reduce --check] or by setting
    [SYMOR_CHECK=1] in the environment. *)

val enabled : unit -> bool
(** True when the [SYMOR_CHECK] environment variable is set to [1],
    [true], [yes] or [on]. *)

val check_mna : ?tol:float -> Circuit.Mna.t -> Circuit.Diagnostic.t list
(** Symmetry residuals of [G] and [C] ([NUM001]/[NUM002]); [tol]
    (default [1e-8]) is relative to the largest entry. *)

val check_lanczos :
  ?drift_tol:float ->
  j:float array ->
  dtol:float ->
  ctol:float ->
  Band_lanczos.result ->
  Circuit.Diagnostic.t list
(** J-orthogonality drift and tolerance consistency
    ([NUM003]/[NUM004]); [drift_tol] defaults to [1e-6]. *)

val check_model : Model.t -> Circuit.Diagnostic.t list
(** Stability and passivity certificates of [Tₙ]
    ([NUM005]/[NUM006]). *)

val check_pencil :
  ?tol:float -> Pencil.t -> shift:float -> Circuit.Diagnostic.t list
(** Backward-residual probe of the shared pencil context ([NUM007]):
    solve [K(s₀)x = b] through the (cached) factorisation and check
    [‖K(s₀)x − b‖∞ / (‖K‖‖x‖ + ‖b‖) ≤ tol] (default [1e-7]). *)

val check_reduction :
  mna:Circuit.Mna.t ->
  j:float array ->
  lanczos:Band_lanczos.result ->
  dtol:float ->
  ctol:float ->
  model:Model.t ->
  Circuit.Diagnostic.t list
(** The full contract suite, sorted errors-first. *)
