(** Imaginary-axis passivity analysis of descriptor realisations.

    A reduced-order model in this codebase is, uniformly, a transfer
    function [Z(s) = C (A0 + s·A1)⁻¹ B] over a small dense descriptor
    pencil (every engine's native form maps onto one — see
    [Sympvl.Certify.state_space]). Grid-sampling
    [λmin((Z(jω) + Z(jω)ᴴ)/2)] can miss a narrow passivity violation
    between two samples; the classical Hamiltonian eigenvalue test
    (Boyd–Balakrishnan–Kabamba) locates every level crossing {e
    exactly} instead: [jω] is a crossing of
    [λ(Herm Z(jω)) = γ] if and only if it is a generalized eigenvalue
    of the structured pencil

    {[ M = [ A0 + B·S⁻¹·C     B·S⁻¹·Bᵀ      ]     N = [ −A1   0  ]
             [ Cᵀ·S⁻¹·C       A0ᵀ + Cᵀ·S⁻¹·Bᵀ ],        [ 0    A1ᵀ ] ]}

    with [S = D + Dᵀ − 2γI] ([D = 0] throughout this library, so [S]
    is a positive multiple of the identity for the sub-zero levels
    [γ < 0] used here). The pencil formulation — rather than the
    textbook Hamiltonian {e matrix} — is what makes the test uniform:
    it tolerates a singular [A1], which arises whenever an RL / LC
    gain or variable mapping is folded in by {!augment}.

    Everything here is dense [Eig_gen]-sized: realisations are reduced
    models of order ≲ 100, so the 2n×2n eigenproblem is microseconds,
    not a bottleneck. *)

type pencil = {
  a0 : Mat.t;  (** n×n *)
  a1 : Mat.t;  (** n×n; may be singular *)
  b : Mat.t;  (** n×p input map *)
  c : Mat.t;  (** p×n output map *)
}
(** [Z(s) = c (a0 + s·a1)⁻¹ b] — physical frequency variable, no
    implicit gain or shift. *)

val augment : square_var:bool -> times_s:bool -> pencil -> pencil
(** Fold the MNA variable/gain conventions into the pencil so that
    evaluation in the {e physical} [s] needs no post-scaling:
    [square_var] maps a pencil in [var = s²] (LC class), [times_s] a
    [Z = s·Z_core] gain (RL / LC class). With both flags false the
    pencil is returned unchanged; otherwise the state doubles
    (auxiliary states [x₂ = s·x]), preserving the finite spectrum. *)

val eval : pencil -> Complex.t -> Cmat.t
(** [Z(s)] as a dense p×p complex matrix.
    @raise Cmat.Singular if [a0 + s·a1] is singular at [s]. *)

val herm_min_eig : pencil -> float -> (float * float) option
(** [herm_min_eig pen ω] is [Some (λmin, scale)] with
    [λmin = min eig ((Z + Zᴴ)/2)] at [s = jω] and
    [scale = max |Z_ij|], or [None] when the pencil is singular at
    [jω] (a pole on the axis). *)

val gen_eigenvalues : ?seeds:float array -> Mat.t -> Mat.t -> Complex.t array
(** Finite generalized eigenvalues [s] of [det(a + s·b) = 0], via
    real shift-and-invert through {!Lu} and {!Eig_gen}: the first
    seed [μ] with [a + μb] nonsingular (and a converging QR
    iteration) is used, and every [θ ≠ 0] eigenvalue of
    [(a + μb)⁻¹ b] maps back to [s = μ − 1/θ]. Eigenvalues pushed to
    infinity by a singular [b] ([θ ≈ 0]) are dropped. Returns [[||]]
    when every seed fails. Seeds are in the caller's frequency units
    — pre-scale the pencil (as {!crossings} does) so O(1) seeds make
    sense. *)

val crossings : ?rtol:float -> level:float -> pencil -> float array
(** Exact positive crossing frequencies [ω] where some eigenvalue of
    [Herm Z(jω)] equals [level] ([level < 0]; [S = −2·level·I]):
    sorted, deduplicated imaginary parts of the near-imaginary
    generalized eigenvalues of the Hamiltonian pencil above. [rtol]
    (default [1e-4]) is the relative real-part filter — generous on
    purpose: a spurious boundary only adds a candidate interval for
    the caller to classify, while a missed one hides a band. *)

type band = {
  w_lo : float;  (** lower edge, rad/s (0 when the band reaches DC) *)
  w_hi : float;  (** upper edge, rad/s ([infinity] when unbounded) *)
  w_worst : float;  (** frequency of the deepest violation found *)
  lambda_min : float;  (** [λmin(Herm Z)] at [w_worst] *)
  scale : float;  (** the [max |Z_ij|] scale [lambda_min] is relative to *)
}

val violation_bands : ?tol:float -> pencil -> band list
(** Locate every frequency band where [Herm Z(jω)] has an eigenvalue
    below [−tol·scale] (default [tol = 1e-9], [scale] = the largest
    [|Z|] seen over a decade probe sweep): {!crossings} gives the
    exact candidate interval boundaries, each interval is classified
    by [λmin] at interior points, adjacent violating intervals are
    merged, and each band's worst point is refined by a log-spaced
    interior sweep. Returns [[]] when the model is passive to
    tolerance on the whole axis. *)
