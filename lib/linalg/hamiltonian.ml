type pencil = { a0 : Mat.t; a1 : Mat.t; b : Mat.t; c : Mat.t }

let nx pen = pen.a0.Mat.rows

let np pen = pen.b.Mat.cols

(* natural frequency scale of the pencil: |a0| / |a1| balances the two
   coefficient matrices, which keeps both the eigenproblem and the
   shift-and-invert seeds O(1) *)
let freq_scale pen =
  let n0 = Mat.max_abs pen.a0 and n1 = Mat.max_abs pen.a1 in
  if n0 > 0.0 && n1 > 0.0 then n0 /. n1 else 1.0

let augment ~square_var ~times_s pen =
  if (not square_var) && not times_s then pen
  else begin
    (* x₂ = s·x turns both conventions into plain descriptor form:
         var = s²:  a0·x + a1·var·x = b·u  becomes
                    [a0 0; 0 −I]·[x;x₂] + s·[0 a1; I 0]·[x;x₂] = [b;0]·u
         var = s:   same with s·[a1 0; I 0]
       and the s·Z_core gain is the output picking x₂ instead of x. *)
    let n = nx pen and p = np pen in
    let a0 =
      Mat.init (2 * n) (2 * n) (fun i j ->
          if i < n && j < n then Mat.get pen.a0 i j
          else if i >= n && j >= n && i = j then -1.0
          else 0.0)
    in
    let a1 =
      Mat.init (2 * n) (2 * n) (fun i j ->
          if i < n then
            if square_var then if j >= n then Mat.get pen.a1 i (j - n) else 0.0
            else if j < n then Mat.get pen.a1 i j
            else 0.0
          else if j = i - n then 1.0
          else 0.0)
    in
    let b =
      Mat.init (2 * n) p (fun i j -> if i < n then Mat.get pen.b i j else 0.0)
    in
    let c =
      Mat.init p (2 * n) (fun i j ->
          if times_s then if j >= n then Mat.get pen.c i (j - n) else 0.0
          else if j < n then Mat.get pen.c i j
          else 0.0)
    in
    { a0; a1; b; c }
  end

let eval pen s =
  let k = Cmat.lincomb Cx.one pen.a0 s pen.a1 in
  let x = Cmat.lu_solve_mat (Cmat.lu_factor k) (Cmat.of_real pen.b) in
  Cmat.mul (Cmat.of_real pen.c) x

let herm_min_eig pen w =
  match eval pen (Cx.im w) with
  | z ->
    let lam = Cmat.min_eig_hermitian (Cmat.hermitian_part z) in
    let scale = Cmat.max_abs z in
    if Float.is_finite lam && Float.is_finite scale then Some (lam, scale) else None
  | exception Cmat.Singular _ -> None

(* ------------------------------------------------------------------ *)
(* generalized eigenvalues by real shift-and-invert                    *)

let default_seeds = [| 0.0; 1.0; -1.0; 0.7320508; -2.2360679; 3.7 |]

let gen_eigenvalues ?(seeds = default_seeds) a b =
  let n = a.Mat.rows in
  if n = 0 then [||]
  else begin
    let result = ref None in
    let k = ref 0 in
    while !result = None && !k < Array.length seeds do
      let mu = seeds.(!k) in
      incr k;
      (* a seed that lands on an eigenvalue (singular factor) or makes
         the QR iteration stall just falls through to the next one *)
      (match Lu.factor (Mat.add a (Mat.scale mu b)) with
      | fac -> (
        let f = Lu.solve_mat fac b in
        match Eig_gen.eigenvalues f with
        | thetas ->
          let tmax =
            Array.fold_left (fun acc t -> Float.max acc (Cx.abs t)) 0.0 thetas
          in
          let cutoff = 1e-13 *. Float.max tmax 1e-300 in
          let eigs =
            thetas
            |> Array.to_list
            |> List.filter_map (fun theta ->
                   (* (a + μb)x + (s − μ)bx = 0  ⇒  θ = −1/(s − μ) *)
                   if Cx.abs theta <= cutoff then None
                   else
                     let s = Cx.(re mu -: inv theta) in
                     if Cx.is_finite s then Some s else None)
            |> Array.of_list
          in
          result := Some eigs
        | exception Failure _ -> ())
      | exception Lu.Singular _ -> ())
    done;
    match !result with Some eigs -> eigs | None -> [||]
  end

(* ------------------------------------------------------------------ *)
(* level crossings of Herm Z(jω)                                       *)

let crossings ?(rtol = 1e-4) ~level pen =
  assert (level < 0.0);
  let n = nx pen in
  if n = 0 then [||]
  else begin
    let ws = freq_scale pen in
    let a1s = Mat.scale ws pen.a1 in
    (* S = D + Dᵀ − 2γI with D = 0: a positive multiple of I *)
    let sinv = -1.0 /. (2.0 *. level) in
    let bc = Mat.mul pen.b pen.c in
    let bbt = Mat.mul pen.b (Mat.transpose pen.b) in
    let ctc = Mat.mul (Mat.transpose pen.c) pen.c in
    let m = Mat.create (2 * n) (2 * n) in
    let nn = Mat.create (2 * n) (2 * n) in
    let blk dst r0 c0 src coef =
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.add_to dst (r0 + i) (c0 + j) (coef *. Mat.get src i j)
        done
      done
    in
    let blk_t dst r0 c0 src coef =
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.add_to dst (r0 + i) (c0 + j) (coef *. Mat.get src j i)
        done
      done
    in
    blk m 0 0 pen.a0 1.0;
    blk m 0 0 bc sinv;
    blk m 0 n bbt sinv;
    blk m n 0 ctc sinv;
    blk_t m n n pen.a0 1.0;
    blk_t m n n bc sinv;
    (* M z = s·diag(−a1, a1ᵀ) z  ⇔  M + s·diag(a1, −a1ᵀ) singular *)
    blk nn 0 0 a1s 1.0;
    blk_t nn n n a1s (-1.0);
    let eigs = gen_eigenvalues m nn in
    let wmax =
      Array.fold_left (fun acc s -> Float.max acc (Cx.abs s)) 1.0 eigs
    in
    ignore wmax;
    eigs
    |> Array.to_list
    |> List.filter_map (fun s ->
           let re = Float.abs s.Complex.re and im = Float.abs s.Complex.im in
           if re <= rtol *. Float.max (Cx.abs s) 1.0 && im > 1e-10 then
             Some (im *. ws)
           else None)
    |> List.sort_uniq Float.compare
    |> fun ws_list ->
    (* merge numerically coincident crossings (the ± pair of a real
       eigenvalue of the Hamiltonian pencil, plus eig roundoff) *)
    let merged = ref [] in
    List.iter
      (fun w ->
        match !merged with
        | prev :: _ when w -. prev <= 1e-7 *. w -> ()
        | _ -> merged := w :: !merged)
      ws_list;
    Array.of_list (List.rev !merged)
  end

(* ------------------------------------------------------------------ *)
(* violation bands                                                     *)

type band = {
  w_lo : float;
  w_hi : float;
  w_worst : float;
  lambda_min : float;
  scale : float;
}

let probe_multipliers = [| 1e-3; 1e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 100.0; 1e3 |]

let violation_bands ?(tol = 1e-9) pen =
  if nx pen = 0 || np pen = 0 then []
  else begin
    let ws = freq_scale pen in
    let probes =
      Array.to_list probe_multipliers
      |> List.filter_map (fun m ->
             let w = m *. ws in
             match herm_min_eig pen w with
             | Some (lam, scale) -> Some (w, lam, scale)
             | None -> None)
    in
    let zscale =
      List.fold_left (fun acc (_, _, s) -> Float.max acc s) 0.0 probes
      |> fun s -> if s > 0.0 then s else 1.0
    in
    let level = -.tol *. zscale in
    let xs = crossings ~level pen |> Array.to_list in
    (* candidate intervals: (0, x₁), (x₁, x₂), …, (x_k, ∞) *)
    let rec intervals lo = function
      | [] -> [ (lo, infinity) ]
      | x :: rest -> (lo, x) :: intervals x rest
    in
    let ivals = intervals 0.0 xs in
    let interior (lo, hi) =
      let base =
        if lo = 0.0 then
          if Float.is_finite hi then [ hi /. 2.0; hi *. 1e-2 ] else [ ws ]
        else if Float.is_finite hi then [ sqrt (lo *. hi) ]
        else [ 10.0 *. lo; 100.0 *. lo ]
      in
      let inside =
        List.filter_map
          (fun (w, _, _) -> if w > lo && w < hi then Some w else None)
          probes
      in
      base @ inside
    in
    let min_at wlist =
      List.fold_left
        (fun acc w ->
          match herm_min_eig pen w with
          | Some (lam, _) -> (
            match acc with
            | Some (_, best) when best <= lam -> acc
            | _ -> Some (w, lam))
          | None -> acc)
        None wlist
    in
    let classified =
      List.map
        (fun iv ->
          match min_at (interior iv) with
          | Some (w, lam) -> (iv, lam < level, w, lam)
          | None -> (iv, false, fst iv, 0.0))
        ivals
    in
    (* merge adjacent violating intervals (a spurious boundary from the
       generous real-part filter splits one true band in two) *)
    let merged =
      List.fold_left
        (fun acc ((lo, hi), bad, w, lam) ->
          if not bad then acc
          else
            match acc with
            | (plo, phi, pw, plam) :: rest when phi = lo ->
              let w, lam = if lam < plam then (w, lam) else (pw, plam) in
              (plo, hi, w, lam) :: rest
            | _ -> (lo, hi, w, lam) :: acc)
        [] classified
      |> List.rev
    in
    List.map
      (fun (lo, hi, w0, lam0) ->
        (* refine the deepest point with a log-spaced interior sweep *)
        let slo = if lo > 0.0 then lo else Float.max (hi *. 1e-6) 1e-300 in
        let shi = if Float.is_finite hi then hi else slo *. 1e6 in
        let k = 33 in
        let samples =
          List.init k (fun i ->
              let t = (float_of_int i +. 0.5) /. float_of_int k in
              slo *. ((shi /. slo) ** t))
        in
        let w_worst, lambda_min =
          match min_at (w0 :: samples) with
          | Some (w, lam) when lam < lam0 -> (w, lam)
          | _ -> (w0, lam0)
        in
        { w_lo = lo; w_hi = hi; w_worst; lambda_min; scale = zscale })
      merged
  end
