(** Static analysis of netlists ([symor lint]).

    SyMPVL's guarantees (provable stability/passivity of every reduced
    order, paper Section 5) only hold when the MNA matrices satisfy
    structural preconditions — [G = Gᵀ], [C = Cᵀ], PSD for RC/RL/LC —
    and most user-visible failures ([Factor.Singular], garbage Padé
    poles) trace back to netlist defects that are statically
    detectable before any factorisation. The linter reports them as
    severity-graded {!Circuit.Diagnostic.t} findings with source-line
    provenance (see {!Circuit.Netlist.origin}).

    Rule codes (see README "Diagnostics & linting" for the full
    contract):

    - [NET000] error — netlist does not parse
    - [NET001] error — node has no R/L/C/V path to ground (floating;
      [G + sC] is structurally singular)
    - [NET002] warning — dangling node (single element terminal, not a
      port)
    - [NET003] error — port on a node with no elements attached
    - [NET004] error — ground-shorted port ([plus = minus])
    - [NET005] error — duplicate element name
    - [NET006] error — zero / NaN / infinite element value
    - [NET007] warning — negative R/L/C value (PSD structure and the
      passivity theorem are lost)
    - [NET008] error — mutual coupling with [|k| >= 1]
    - [NET009] error — loop of ideal voltage sources
    - [NET010] warning — pure-inductor loop ([G] singular at the DC
      expansion point; pass [--band] / a shift)
    - [NET011] warning — capacitor cutset: node(s) with no DC path to
      ground ([G] singular at the DC expansion point)
    - [NET012] warning — element outside the symmetric MOR class
      (V source, VCCS, nonlinear): [reduce] will refuse
    - [NET013] info — structural classification proof: RC/RL/LC/RLC
      class, whether the Cholesky ([J = I]) fast path applies and
      whether the stability/passivity theorem covers the reduction
    - [NET014] warning — duplicate port name
    - [NET015] error — inductance matrix [ℒ] not positive definite
      (combined mutual couplings too strong)
    - [NET016] warning — no ports declared ([reduce]/[ac] need one)
    - [NET017] error — malformed mutual coupling: the coefficient must
      satisfy [0 < |k| < 1] and reference two distinct inductors that
      exist in the netlist (the parser accepts such cards so this rule
      can carry line provenance; MNA assembly refuses them) *)

val rules : (string * Circuit.Diagnostic.severity * string) list
(** Rule table: code, default severity, one-line summary. *)

val run : Circuit.Netlist.t -> Circuit.Diagnostic.t list
(** All findings for a netlist, sorted errors-first then by line. *)

val lint_string : string -> Circuit.Diagnostic.t list
(** Parse then {!run}; a parse failure yields a single [NET000]. *)

val lint_file : string -> Circuit.Diagnostic.t list
