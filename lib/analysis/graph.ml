type uf = { parent : int array; rank : int array }

let uf_create n = { parent = Array.init (n + 1) (fun i -> i); rank = Array.make (n + 1) 0 }

let rec uf_find u i =
  let p = u.parent.(i) in
  if p = i then i
  else begin
    let r = uf_find u p in
    u.parent.(i) <- r;
    r
  end

let uf_union u a b =
  let ra = uf_find u a and rb = uf_find u b in
  if ra = rb then false
  else begin
    (if u.rank.(ra) < u.rank.(rb) then u.parent.(ra) <- rb
     else if u.rank.(ra) > u.rank.(rb) then u.parent.(rb) <- ra
     else begin
       u.parent.(rb) <- ra;
       u.rank.(ra) <- u.rank.(ra) + 1
     end);
    true
  end

let uf_same u a b = uf_find u a = uf_find u b

type t = { n : int; adj : int list array; deg : int array }

let create n = { n; adj = Array.make (n + 1) []; deg = Array.make (n + 1) 0 }

let add_edge g a b =
  g.adj.(a) <- b :: g.adj.(a);
  g.adj.(b) <- a :: g.adj.(b);
  g.deg.(a) <- g.deg.(a) + 1;
  g.deg.(b) <- g.deg.(b) + 1

let degree g i = g.deg.(i)

let reachable_from g start =
  let seen = Array.make (g.n + 1) false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
      g.adj.(v)
  done;
  seen
