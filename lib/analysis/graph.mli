(** Small graph utilities over netlist nodes, used by the linter's
    topological rules (connectivity, loops, cutsets).

    Nodes are the MNA node indices: [0] is ground, [1 … n] the
    non-ground nodes (see {!Circuit.Netlist.node}). *)

type uf
(** Union-find (disjoint sets) over nodes [0 … n]. *)

val uf_create : int -> uf
(** [uf_create n] — singletons for nodes [0 … n] inclusive. *)

val uf_find : uf -> int -> int

val uf_union : uf -> int -> int -> bool
(** Merge the two classes; [false] when the nodes were already in the
    same class (i.e. this edge closes a cycle). *)

val uf_same : uf -> int -> int -> bool

type t
(** Undirected multigraph over nodes [0 … n]. *)

val create : int -> t

val add_edge : t -> int -> int -> unit

val degree : t -> int -> int
(** Number of edge endpoints incident to a node (self-loops count
    twice). *)

val reachable_from : t -> int -> bool array
(** BFS component of a node; index [i] is [true] iff [i] is reachable. *)
