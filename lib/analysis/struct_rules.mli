(** Symbolic structure analysis of the assembled MNA pencil
    ([symor analyze]).

    Where {!Lint} inspects the netlist graph and [Sympvl.Contract]
    audits numbers after the fact, this pass sits in the middle: it
    analyses the {e sparsity pattern} of the stamped pencil
    [G + sC] — no floating-point values — and certifies solvability
    and factorisation cost before any numerical work:

    - maximum transversal ({!Sparse.Matching}) gives the structural
      rank: a deficiency means the pencil is singular for {e every}
      value assignment, a defect no frequency shift can repair;
    - Dulmage–Mendelsohn ({!Sparse.Dm}) localises the defect into
      under-/over-determined blocks and exposes the block-triangular
      form of the well-determined part;
    - the elimination tree ({!Sparse.Etree}) predicts the exact
      factor fill of the natural, {!Sparse.Rcm} and {!Sparse.Amd}
      orderings, so the ordering recommendation is measured, not
      guessed.

    Rule codes (see README "Diagnostics & linting"):

    - [STR001] error — [G + sC] structurally singular: a row cannot
      be matched to an independent equation (named with its node and
      source line when known)
    - [STR002] error — under-determined block: unknowns that no
      subset of equations can determine
    - [STR003] error — over-determined block: structurally redundant
      equations
    - [STR004] warning — [G] alone structurally singular: the DC
      expansion point [s₀ = 0] is unusable for every value
      assignment; reduction needs a frequency shift (pass [--band])
    - [STR005] warning — predicted factor fill exceeds
      [fill_threshold] × the pencil's lower-triangle nonzeros even
      under the best ordering (dense-factor territory)
    - [STR006] info — ordering recommendation: predicted factor
      nonzeros for natural / RCM / AMD and the measured winner
    - [STR007] info — the pencil is reducible: it decomposes into
      independent diagonal blocks (solvable separately)
    - [STR008] info — structure summary: dimensions, nonzeros,
      bandwidth, profile, structural rank
    - [STR009] info — second-order structure: the inductor-loop
      count, K-card coupling density and the MNA form {!Circuit.Mna.auto}
      picks (the [`Sprim] engine consumes the susceptance view) *)

val rules : (string * Circuit.Diagnostic.severity * string) list
(** Rule table: code, default severity, one-line summary. *)

type matrix_stats = {
  n : int;  (** Pencil dimension. *)
  n_nodes : int;  (** Leading node-voltage unknowns. *)
  nnz_g : int;
  nnz_c : int;
  nnz_pencil : int;  (** Stored entries of the union pattern. *)
  nnz_lower : int;  (** Lower triangle of the union pattern, diagonal included. *)
  bandwidth : int;
  profile : int;
  struct_rank : int;  (** Of the union pattern; [= n] iff solvable. *)
  blocks : int;  (** Diagonal blocks of the fine DM decomposition. *)
  largest_block : int;
}

val stats : Circuit.Mna.t -> matrix_stats
(** Cheap symbolic summary of an assembled pencil (no ordering
    predictions) — what [symor info] prints. *)

type ordering = Natural | Rcm | Amd

type ordering_report = {
  natural_nnz : int;
  rcm_nnz : int;
  amd_nnz : int;  (** Predicted factor nnz ({!Sparse.Etree}) each. *)
  natural_profile : int;
  rcm_profile : int;  (** Envelope the skyline backend would fill. *)
  best : ordering;
      (** Smallest predicted factor nnz; ties prefer the cheaper
          machinery ([Natural] over [Rcm] over [Amd]). *)
  skyline_stored : int;
      (** Entries the RCM+skyline backend stores (envelope + diagonal). *)
  supernodal_stored : int;
      (** Entries the AMD+supernodal backend stores (exactly the AMD
          predicted factor nnz — {!Sparse.Supernodal} is fill-exact). *)
  backend_pick : [ `Skyline | `Supernodal ];
      (** The decision [Sympvl.Factor.plan] makes on this pattern —
          the backend a reduction of this netlist will actually use,
          including any [SYMOR_FACTOR] override in effect. *)
}

val orderings : Circuit.Mna.t -> ordering_report
(** Measured ordering comparison on the pencil pattern. *)

val ordering_name : ordering -> string

val backend_name : [ `Skyline | `Supernodal ] -> string

val run :
  ?fill_threshold:float ->
  Circuit.Netlist.t ->
  Circuit.Mna.t ->
  Circuit.Diagnostic.t list
(** All structural findings for an assembled pencil, sorted
    errors-first. The netlist provides provenance: offending pencil
    rows are reported with node names and source lines.
    [fill_threshold] (default 10) gates [STR005]. *)

val analyze : ?fill_threshold:float -> Circuit.Netlist.t -> Circuit.Diagnostic.t list
(** [Circuit.Mna.auto] followed by {!run}. Raises
    {!Circuit.Diagnostic.User_error} when no pencil can be assembled
    (nonlinear/controlled elements, no ports) — run {!Lint} first for
    netlists of unknown provenance. *)

val analyze_string : ?fill_threshold:float -> string -> Circuit.Diagnostic.t list
(** Parse then {!analyze}; a parse failure yields a single [NET000]
    finding, like {!Lint.lint_string}. *)

val analyze_file : ?fill_threshold:float -> string -> Circuit.Diagnostic.t list
