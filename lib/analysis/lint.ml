module D = Circuit.Diagnostic
module N = Circuit.Netlist

let rules =
  [
    ("NET000", D.Error, "netlist does not parse");
    ("NET001", D.Error, "node has no R/L/C/V path to ground (floating island)");
    ("NET002", D.Warning, "dangling node: single element terminal and not a port");
    ("NET003", D.Error, "port on a node with no elements attached");
    ("NET004", D.Error, "ground-shorted port (plus = minus)");
    ("NET005", D.Error, "duplicate element name");
    ("NET006", D.Error, "zero, NaN or infinite element value");
    ("NET007", D.Warning, "negative R/L/C value: passivity theorem lost");
    ("NET008", D.Error, "mutual coupling with |k| >= 1");
    ("NET009", D.Error, "loop of ideal voltage sources");
    ("NET010", D.Warning, "pure-inductor loop: G singular at the DC expansion point");
    ("NET011", D.Warning, "capacitor cutset: no DC path to ground");
    ("NET012", D.Warning, "element outside the symmetric MOR class");
    ("NET013", D.Info, "structural RC/RL/LC/RLC classification proof");
    ("NET014", D.Warning, "duplicate port name");
    ("NET015", D.Error, "inductance matrix not positive definite");
    ("NET016", D.Warning, "no ports declared");
    ("NET017", D.Error, "malformed mutual coupling: needs 0 < |k| < 1 between two distinct existing inductors");
  ]

let line_of = function Some { N.line } -> Some line | None -> None

(* all terminals of an element (for attachment/degree counting) *)
let terminals = function
  | N.Resistor { n1; n2; _ }
  | N.Capacitor { n1; n2; _ }
  | N.Inductor { n1; n2; _ }
  | N.Current_source { n1; n2; _ }
  | N.Voltage_source { n1; n2; _ }
  | N.Nonlinear_conductance { n1; n2; _ } ->
    [ n1; n2 ]
  | N.Mutual _ -> []
  | N.Vccs { out_p; out_n; in_p; in_n; _ } -> [ out_p; out_n; in_p; in_n ]

(* edges that produce nonzero G or C stamps (current sources do not
   stamp into the pencil: a node fed only by a current source has an
   identically zero row in G + sC) *)
let stamp_edges = function
  | N.Resistor { n1; n2; _ }
  | N.Capacitor { n1; n2; _ }
  | N.Inductor { n1; n2; _ }
  | N.Voltage_source { n1; n2; _ }
  | N.Nonlinear_conductance { n1; n2; _ } ->
    [ (n1, n2) ]
  | N.Current_source _ | N.Mutual _ -> []
  | N.Vccs { out_p; out_n; in_p; in_n; _ } ->
    (* VCCS stamps couple the output pair to the input pair; be
       generous so controlled stages do not raise false NET001 *)
    [ (out_p, out_n); (in_p, in_n); (out_p, in_p) ]

(* edges that conduct at DC (an inductor is a DC short; a capacitor
   blocks; an ideal current source has infinite impedance) *)
let dc_edges = function
  | N.Resistor { n1; n2; _ }
  | N.Inductor { n1; n2; _ }
  | N.Voltage_source { n1; n2; _ }
  | N.Nonlinear_conductance { n1; n2; _ } ->
    [ (n1, n2) ]
  | N.Capacitor _ | N.Current_source _ | N.Mutual _ | N.Vccs _ -> []

let waveform_finite =
  let fin = Float.is_finite in
  function
  | Circuit.Waveform.Dc v -> fin v
  | Circuit.Waveform.Pwl pts -> List.for_all (fun (t, v) -> fin t && fin v) pts
  | Circuit.Waveform.Pulse { low; high; delay; rise; fall; width; period } ->
    fin low && fin high && fin delay && fin rise && fin fall && fin width && fin period
  | Circuit.Waveform.Sine { offset; amplitude; freq; delay } ->
    fin offset && fin amplitude && fin freq && fin delay

(* name up to [cap] nodes of a group, with an ellipsis for the rest *)
let group_names nl cap vs =
  let shown = List.filteri (fun i _ -> i < cap) vs in
  let names = String.concat ", " (List.map (N.node_name nl) shown) in
  let extra = List.length vs - List.length shown in
  if extra > 0 then Printf.sprintf "%s, … (%d more)" names extra else names

let run nl =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let els = N.elements_with_origin nl in
  let ports = N.ports_with_origin nl in
  let nn = N.num_nodes nl in
  let attach = Graph.create nn in
  let stamp = Graph.create nn in
  let dcg = Graph.create nn in
  let stamp_uf = Graph.uf_create nn in
  let dc_uf = Graph.uf_create nn in
  let l_uf = Graph.uf_create nn in
  let v_uf = Graph.uf_create nn in
  (* first source line of any element touching a node (for node-level
     findings on parsed netlists) *)
  let node_line = Array.make (nn + 1) None in
  let seen_names : (string, int option) Hashtbl.t = Hashtbl.create 64 in
  let k_out_of_range = ref false in
  (* NET017 state: K cards that make ℒ ill-defined (the NET015
     eigenvalue probe must not attempt to build it) *)
  let coupling_invalid = ref false in
  let inductor_names : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e, _) ->
      match e with
      | N.Inductor { name; _ } -> Hashtbl.replace inductor_names name ()
      | N.Resistor _ | N.Capacitor _ | N.Mutual _ | N.Current_source _
      | N.Voltage_source _ | N.Vccs _ | N.Nonlinear_conductance _ ->
        ())
    els;
  List.iter
    (fun (e, o) ->
      let ln = line_of o in
      let name = N.element_name e in
      (match Hashtbl.find_opt seen_names name with
      | Some first ->
        let where =
          match first with
          | Some l -> Printf.sprintf " (first defined at line %d)" l
          | None -> ""
        in
        emit
          (D.error ?line:ln "NET005"
             (Printf.sprintf "duplicate element name %S%s" name where))
      | None -> Hashtbl.add seen_names name ln);
      List.iter
        (fun v ->
          if node_line.(v) = None then node_line.(v) <- ln;
          Graph.add_edge attach v v)
        (terminals e);
      (* degree via self-loops would double-count; rebuild properly below *)
      List.iter (fun (a, b) ->
          Graph.add_edge stamp a b;
          ignore (Graph.uf_union stamp_uf a b))
        (stamp_edges e);
      List.iter (fun (a, b) ->
          Graph.add_edge dcg a b;
          ignore (Graph.uf_union dc_uf a b))
        (dc_edges e);
      let bad_value what v =
        if v = 0.0 || not (Float.is_finite v) then
          emit
            (D.error ?line:ln "NET006"
               (Printf.sprintf "%s: %s %g is not finite and nonzero" name what v))
        else if v < 0.0 then
          emit
            (D.warning ?line:ln "NET007"
               (Printf.sprintf
                  "%s: negative %s %g — PSD structure is lost and reduced models \
                   are not guaranteed passive"
                  name what v))
      in
      match e with
      | N.Resistor { ohms; _ } -> bad_value "resistance" ohms
      | N.Capacitor { farads; _ } -> bad_value "capacitance" farads
      | N.Inductor { n1; n2; henries; _ } ->
        bad_value "inductance" henries;
        if not (Graph.uf_union l_uf n1 n2) then
          emit
            (D.warning ?line:ln "NET010"
               (Printf.sprintf
                  "%s closes a pure-inductor loop — G is singular at the DC \
                   expansion point s0 = 0; reduction needs a frequency shift \
                   (pass --band)"
                  name))
      | N.Mutual { l1; l2; k; _ } ->
        if not (Float.is_finite k) then
          emit
            (D.error ?line:ln "NET006"
               (Printf.sprintf "%s: coupling coefficient %g is not finite" name k))
        else if Float.abs k >= 1.0 then begin
          k_out_of_range := true;
          emit
            (D.error ?line:ln "NET008"
               (Printf.sprintf
                  "%s: |k| = %g >= 1 — the inductance matrix cannot be positive \
                   definite (M = k·sqrt(L1·L2) overwhelms the self terms)"
                  name (Float.abs k)))
        end
        else if k = 0.0 then begin
          coupling_invalid := true;
          emit
            (D.error ?line:ln "NET017"
               (Printf.sprintf
                  "%s: zero coupling coefficient — a K card must satisfy \
                   0 < |k| < 1 (drop the card instead)"
                  name))
        end;
        if String.equal l1 l2 then begin
          coupling_invalid := true;
          emit
            (D.error ?line:ln "NET017"
               (Printf.sprintf
                  "%s couples inductor %s to itself — a K card must reference \
                   two distinct inductors"
                  name l1))
        end
        else
          List.iter
            (fun l ->
              if not (Hashtbl.mem inductor_names l) then begin
                coupling_invalid := true;
                emit
                  (D.error ?line:ln "NET017"
                     (Printf.sprintf "%s references unknown inductor %s" name l))
              end)
            [ l1; l2 ]
      | N.Current_source { wave; _ } ->
        if not (waveform_finite wave) then
          emit
            (D.error ?line:ln "NET006"
               (name ^ ": source waveform has non-finite values"))
      | N.Voltage_source { n1; n2; wave; _ } ->
        if not (waveform_finite wave) then
          emit
            (D.error ?line:ln "NET006"
               (name ^ ": source waveform has non-finite values"));
        if not (Graph.uf_union v_uf n1 n2) then
          emit
            (D.error ?line:ln "NET009"
               (Printf.sprintf
                  "%s closes a loop of ideal voltage sources — branch currents \
                   are indeterminate (ill-posed MNA system)"
                  name));
        emit
          (D.warning ?line:ln "NET012"
             (Printf.sprintf
                "%s: ideal voltage source — the symmetric MOR path accepts \
                 current excitations only (reduce/ac refuse; tran supports it, \
                 or model the drive as a Norton equivalent)"
                name))
      | N.Vccs { gm; _ } ->
        if not (Float.is_finite gm) then
          emit
            (D.error ?line:ln "NET006"
               (Printf.sprintf "%s: transconductance %g is not finite" name gm));
        emit
          (D.warning ?line:ln "NET012"
             (name
            ^ ": controlled source breaks G/C symmetry — only the transient \
               simulator supports it"))
      | N.Nonlinear_conductance _ ->
        emit
          (D.warning ?line:ln "NET012"
             (name ^ ": nonlinear element — only the transient simulator supports it")))
    els;
  (* ---- port rules ------------------------------------------------ *)
  let is_port_node = Array.make (nn + 1) false in
  let seen_ports : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ({ N.port_name; plus; minus }, o) ->
      let ln = line_of o in
      is_port_node.(plus) <- true;
      is_port_node.(minus) <- true;
      if Hashtbl.mem seen_ports port_name then
        emit
          (D.warning ?line:ln "NET014"
             (Printf.sprintf "duplicate port name %S" port_name))
      else Hashtbl.add seen_ports port_name ();
      if plus = minus then
        emit
          (D.error ?line:ln "NET004"
             (Printf.sprintf
                "port %S is ground-shorted (plus = minus = %s): its Z row and \
                 column are identically zero"
                port_name (N.node_name nl plus)))
      else
        List.iter
          (fun v ->
            if v <> 0 && Graph.degree attach v = 0 then
              emit
                (D.error ?line:ln "NET003"
                   (Printf.sprintf
                      "port %S references node %S with no elements attached — \
                       injected current has no return path"
                      port_name (N.node_name nl v))))
          [ plus; minus ])
    ports;
  if ports = [] then
    emit
      (D.warning "NET016"
         "no ports declared — reduce/ac/sparams need at least one .port");
  (* ---- node rules ------------------------------------------------ *)
  for v = 1 to nn do
    (* attach records one self-loop per incident terminal, so the
       terminal count is degree/2 *)
    let d = Graph.degree attach v / 2 in
    if d = 1 && not is_port_node.(v) then
      emit
        (D.warning ?line:node_line.(v) "NET002"
           (Printf.sprintf "node %S is a dead end (a single element terminal)"
              (N.node_name nl v)))
  done;
  let reach_stamp = Graph.reachable_from stamp 0 in
  let reach_dc = Graph.reachable_from dcg 0 in
  (* floating islands: group unreached nodes by stamp-graph component *)
  let islands = Hashtbl.create 8 in
  for v = nn downto 1 do
    if not reach_stamp.(v) then begin
      let r = Graph.uf_find stamp_uf v in
      let prev = try Hashtbl.find islands r with Not_found -> [] in
      Hashtbl.replace islands r (v :: prev)
    end
  done;
  Hashtbl.iter
    (fun _ vs ->
      let ln = List.fold_left (fun acc v -> match acc with Some _ -> acc | None -> node_line.(v)) None vs in
      emit
        (D.error ?line:ln "NET001"
           (Printf.sprintf
              "node%s %s: no R/L/C/V path to ground — the corresponding rows of \
               G + sC are structurally dependent (singular pencil)"
              (if List.length vs > 1 then "s" else "")
              (group_names nl 4 vs))))
    islands;
  (* capacitor cutsets: connected to ground in the full pencil but not
     at DC *)
  let cutsets = Hashtbl.create 8 in
  for v = nn downto 1 do
    if reach_stamp.(v) && not reach_dc.(v) then begin
      let r = Graph.uf_find dc_uf v in
      let prev = try Hashtbl.find cutsets r with Not_found -> [] in
      Hashtbl.replace cutsets r (v :: prev)
    end
  done;
  Hashtbl.iter
    (fun _ vs ->
      let ln = List.fold_left (fun acc v -> match acc with Some _ -> acc | None -> node_line.(v)) None vs in
      emit
        (D.warning ?line:ln "NET011"
           (Printf.sprintf
              "node%s %s: no DC path to ground (capacitor cutset) — G is \
               singular at the DC expansion point s0 = 0; reduction retries \
               with an automatic shift, or pass --band"
              (if List.length vs > 1 then "s" else "")
              (group_names nl 4 vs))))
    cutsets;
  (* ---- inductance-matrix definiteness ---------------------------- *)
  let s = N.stats nl in
  let ni = s.N.inductors_ in
  if s.N.mutuals > 0 && ni <= 400 && not !k_out_of_range && not !coupling_invalid
  then begin
    let lmat = Circuit.Mna.inductance_matrix nl in
    let scale = Float.max (Linalg.Mat.max_abs lmat) 1e-300 in
    let emin = Linalg.Eig_sym.min_eigenvalue lmat in
    if emin < -1e-12 *. scale then
      emit
        (D.error "NET015"
           (Printf.sprintf
              "inductance matrix is not positive definite (min eigenvalue %.3g): \
               the combined mutual couplings are unphysically strong"
              emin))
  end;
  (* ---- classification proof -------------------------------------- *)
  let pos = N.all_values_positive nl in
  let linear = N.is_linear_rlc nl in
  let cls_msg =
    match N.classify nl with
    | `General ->
      "class: general (controlled/nonlinear elements) — outside the symmetric \
       SyMPVL class; only the transient simulator applies"
    | (`Rc | `Rl | `Lc | `Rlc) as c ->
      let cname =
        match c with `Rc -> "RC" | `Rl -> "RL" | `Lc -> "LC" | `Rlc -> "RLC"
      in
      let vsrc_note =
        if linear then ""
        else " [voltage sources present: reduce refuses, see NET012]"
      in
      if c = `Rlc then
        "class: RLC — symmetric MNA pencil with J = diag(±1) possibly \
         indefinite; stability is checked a posteriori on the poles, no \
         structural passivity certificate" ^ vsrc_note
      else if pos then
        Printf.sprintf
          "class: %s with positive elements — G and C are symmetric PSD, the \
           Cholesky (J = I) fast path applies, and every reduced order is \
           provably stable and passive (paper Sec. 5)%s"
          cname vsrc_note
      else
        Printf.sprintf
          "class: %s with negative element values — symmetric pencil, but PSD \
           structure is lost: J may be indefinite and the passivity theorem \
           does not apply%s"
          cname vsrc_note
  in
  emit (D.info "NET013" cls_msg);
  D.sort !diags

let lint_string text =
  match Circuit.Parser.parse_string text with
  | nl -> run nl
  | exception Circuit.Parser.Parse_error (line, msg) ->
    [ D.error ?line:(if line > 0 then Some line else None) "NET000"
        ("does not parse: " ^ msg) ]

let lint_file path =
  match Circuit.Parser.parse_file path with
  | nl -> run nl
  | exception Circuit.Parser.Parse_error (line, msg) ->
    [ D.error ?line:(if line > 0 then Some line else None) "NET000"
        ("does not parse: " ^ msg) ]
