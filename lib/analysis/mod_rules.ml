module D = Circuit.Diagnostic

let rules =
  [
    ( "MOD001",
      D.Warning,
      "unstable reduced-model pole(s); error when the structural theorem \
       promised stability" );
    ( "MOD002",
      D.Info,
      "structural passivity certificate (Cholesky J = I path); error/warning \
       when the certificate is violated" );
    ( "MOD003",
      D.Warning,
      "Hamiltonian imaginary-axis test located passivity violation band(s)" );
    ("MOD004", D.Warning, "reciprocity residual |Z - Z^T|/|Z| above tolerance");
    ( "MOD005",
      D.Warning,
      "prescribed Pade moments not matched against the exact pencil" );
    ("MOD006", D.Warning, "DC point disagrees with the exact zeroth moment");
    ( "MOD007",
      D.Warning,
      "violation-band report: frequency range, worst point, suggested safe \
       order" );
    ( "MOD008",
      D.Info,
      "expansion shift outside the certified regime; warning when the SPD \
       path was available" );
    ( "MOD009",
      D.Warning,
      "reduced model drifts from the exact transfer function beyond the \
       golden gate" );
  ]

let find code = List.find_opt (fun (c, _, _) -> c = code) rules
