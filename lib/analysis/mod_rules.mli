(** Registry of the reduced-model certification rules ([symor certify]).

    Where {!Lint} checks netlists {e before} reduction (NET family) and
    {!Struct_rules} checks assembled pencils (STR family), the MOD
    family audits the {e output} of a reduction: a reduced-order model
    against the exact MNA pencil it approximates. The checks themselves
    live in [Sympvl.Certify] — the certification pass needs the
    reduction engines, which sit above this library in the dependency
    order — so this module only carries the rule registry: one row per
    code with its default severity and a one-line summary, mirroring
    {!Lint.rules}. A test pins the registry against the codes
    [Sympvl.Certify.run] actually emits.

    Rule codes (see README "Diagnostics & rules" for the full
    contract):

    - [MOD001] warning — unstable reduced-model pole(s); escalates to
      error when the structural theorem promised stability
    - [MOD002] info — structural passivity certificate; a violated
      certificate is an error on the definite unshifted SyMPVL path
      (it contradicts paper Theorem 5.1), a warning elsewhere
    - [MOD003] warning — Hamiltonian imaginary-axis eigenvalue test
      located passivity violation band(s); info when the whole axis is
      clean
    - [MOD004] warning — reciprocity residual [|Z − Zᵀ|/|Z|] above
      tolerance
    - [MOD005] warning — the model does not match its prescribed Padé
      moments against the exact pencil
    - [MOD006] warning — DC point disagrees with the exact zeroth
      moment at [s = 0]
    - [MOD007] warning — per-band violation report (range, worst
      frequency, min eigenvalue); info for the suggested safe order
    - [MOD008] info — expansion shift outside the certified regime;
      warning when the user forced a shift although the SPD certified
      path was available
    - [MOD009] warning — model drifts from the exact transfer function
      beyond the golden gate on the sampled band *)

val rules : (string * Circuit.Diagnostic.severity * string) list
(** Rule table: code, default severity when the rule fires, one-line
    summary. *)

val find :
  string -> (string * Circuit.Diagnostic.severity * string) option
(** Look up a rule row by code. *)
