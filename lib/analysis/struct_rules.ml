module D = Circuit.Diagnostic
module N = Circuit.Netlist
module M = Circuit.Mna

let rules =
  [
    ("STR001", D.Error, "G + sC structurally singular: equation unmatched in maximum transversal");
    ("STR002", D.Error, "under-determined block (Dulmage–Mendelsohn horizontal part)");
    ("STR003", D.Error, "over-determined block (Dulmage–Mendelsohn vertical part)");
    ("STR004", D.Warning, "G alone structurally singular: DC expansion point unusable");
    ("STR005", D.Warning, "predicted factor fill exceeds threshold under every ordering");
    ("STR006", D.Info, "ordering recommendation with predicted factor nonzeros");
    ("STR007", D.Info, "pencil decomposes into independent diagonal blocks");
    ("STR008", D.Info, "structure summary: size, nonzeros, bandwidth, profile, rank");
    ("STR009", D.Info, "second-order structure: inductor loops, coupling density, chosen MNA form");
  ]

type matrix_stats = {
  n : int;
  n_nodes : int;
  nnz_g : int;
  nnz_c : int;
  nnz_pencil : int;
  nnz_lower : int;
  bandwidth : int;
  profile : int;
  struct_rank : int;
  blocks : int;
  largest_block : int;
}

type ordering = Natural | Rcm | Amd

type ordering_report = {
  natural_nnz : int;
  rcm_nnz : int;
  amd_nnz : int;
  natural_profile : int;
  rcm_profile : int;
  best : ordering;
  skyline_stored : int;
  supernodal_stored : int;
  backend_pick : [ `Skyline | `Supernodal ];
}

let ordering_name = function Natural -> "natural" | Rcm -> "RCM" | Amd -> "AMD"

let backend_name = function
  | `Skyline -> "RCM+skyline"
  | `Supernodal -> "AMD+supernodal"

let lower_nnz pat =
  let c = ref 0 in
  for i = 0 to pat.Sparse.Csr.rows - 1 do
    Sparse.Csr.iter_row pat i (fun j _ -> if j <= i then incr c)
  done;
  !c

let stats_of m pat (dm : Sparse.Dm.t) =
  {
    n = m.M.n;
    n_nodes = m.M.n_nodes;
    nnz_g = Sparse.Csr.nnz m.M.g;
    nnz_c = Sparse.Csr.nnz m.M.c;
    nnz_pencil = Sparse.Csr.nnz pat;
    nnz_lower = lower_nnz pat;
    bandwidth = Sparse.Csr.bandwidth pat;
    profile = Sparse.Csr.profile pat;
    struct_rank = dm.Sparse.Dm.matching.Sparse.Matching.rank;
    blocks = Array.length dm.Sparse.Dm.blocks;
    largest_block =
      Array.fold_left
        (fun acc (rs, _) -> Int.max acc (Array.length rs))
        0 dm.Sparse.Dm.blocks;
  }

let stats m =
  let pat = M.pencil_pattern m in
  stats_of m pat (Sparse.Dm.decompose pat)

let orderings m =
  let pat = M.pencil_pattern m in
  let natural_nnz = Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern pat) in
  let rcm_perm = Sparse.Rcm.order pat in
  let amd_perm = Sparse.Amd.order pat in
  let rcm_nnz = Sparse.Etree.predicted_nnz pat rcm_perm in
  let amd_nnz = Sparse.Etree.predicted_nnz pat amd_perm in
  let natural_profile = Sparse.Csr.profile pat in
  let rcm_profile = Sparse.Csr.profile (Sparse.Csr.permute_sym pat rcm_perm) in
  (* prefer the cheaper machinery on ties: a permutation only pays for
     itself when it strictly reduces the predicted fill *)
  let best =
    if amd_nnz < natural_nnz && amd_nnz < rcm_nnz then Amd
    else if rcm_nnz < natural_nnz then Rcm
    else Natural
  in
  (* what each Factor backend would store, and the pick the pipeline's
     own planner makes on this pattern (one source of truth: the same
     Sympvl.Factor.plan every factorisation goes through, including any
     SYMOR_FACTOR override in effect) *)
  let skyline_stored = rcm_profile + m.M.n in
  let supernodal_stored = amd_nnz in
  let backend_pick =
    match Sympvl.Factor.plan pat with
    | `Skyline _ -> `Skyline
    | `Supernodal _ -> `Supernodal
  in
  {
    natural_nnz;
    rcm_nnz;
    amd_nnz;
    natural_profile;
    rcm_profile;
    best;
    skyline_stored;
    supernodal_stored;
    backend_pick;
  }

let line_of = function Some { N.line } -> Some line | None -> None

(* all terminals of an element — mirrors Lint.terminals *)
let terminals = function
  | N.Resistor { n1; n2; _ }
  | N.Capacitor { n1; n2; _ }
  | N.Inductor { n1; n2; _ }
  | N.Current_source { n1; n2; _ }
  | N.Voltage_source { n1; n2; _ }
  | N.Nonlinear_conductance { n1; n2; _ } ->
    [ n1; n2 ]
  | N.Mutual _ -> []
  | N.Vccs { out_p; out_n; in_p; in_n; _ } -> [ out_p; out_n; in_p; in_n ]

let row_cap = 8

let run ?(fill_threshold = 10.0) nl m =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  (* source provenance: first line of any element touching a node *)
  let nn = N.num_nodes nl in
  let node_line = Array.make (nn + 1) None in
  List.iter
    (fun (e, o) ->
      let ln = line_of o in
      List.iter
        (fun v -> if node_line.(v) = None then node_line.(v) <- ln)
        (terminals e))
    (N.elements_with_origin nl);
  let inds = Array.of_list (N.inductors nl) in
  (* pencil row/column [i] is a node voltage for i < n_nodes, an
     inductor current (in Netlist.inductors order) beyond *)
  let row_name row =
    if row < m.M.n_nodes then
      Printf.sprintf "node %S" (N.node_name nl (row + 1))
    else
      let name, _, _, _ = inds.(row - m.M.n_nodes) in
      Printf.sprintf "inductor current i(%s)" name
  in
  let row_line row =
    if row < m.M.n_nodes then node_line.(row + 1)
    else
      let name, _, _, _ = inds.(row - m.M.n_nodes) in
      line_of (N.origin_of nl name)
  in
  let group cap rows =
    let shown = List.filteri (fun i _ -> i < cap) rows in
    let names = String.concat ", " (List.map row_name shown) in
    let extra = List.length rows - List.length shown in
    if extra > 0 then Printf.sprintf "%s, … (%d more)" names extra else names
  in
  let first_line rows =
    List.fold_left
      (fun acc r -> match acc with Some _ -> acc | None -> row_line r)
      None rows
  in
  let pat = M.pencil_pattern m in
  let dm = Sparse.Dm.decompose pat in
  let st = stats_of m pat dm in
  let n = m.M.n in
  let rank = st.struct_rank in
  if rank < n then begin
    (* STR001: per-row findings with provenance, capped *)
    let unmatched = Sparse.Matching.unmatched_rows dm.Sparse.Dm.matching in
    let total = List.length unmatched in
    List.iteri
      (fun i r ->
        if i < row_cap then
          emit
            (D.error ?line:(row_line r) "STR001"
               (Printf.sprintf
                  "G + sC is structurally singular: the equation of %s cannot \
                   be matched to an independent unknown — singular for every \
                   element value and every expansion point (structural rank %d \
                   of %d)"
                  (row_name r) rank n)))
      unmatched;
    if total > row_cap then
      emit
        (D.error "STR001"
           (Printf.sprintf "… and %d more structurally dependent equations"
              (total - row_cap)));
    let hc = Array.to_list dm.Sparse.Dm.hor_cols in
    if hc <> [] then
      emit
        (D.error ?line:(first_line hc) "STR002"
           (Printf.sprintf
              "under-determined block: %d unknown%s (%s) appear in only %d \
               equation%s — no value assignment determines them"
              (List.length hc)
              (if List.length hc > 1 then "s" else "")
              (group 4 hc)
              (Array.length dm.Sparse.Dm.hor_rows)
              (if Array.length dm.Sparse.Dm.hor_rows = 1 then "" else "s")));
    let vr = Array.to_list dm.Sparse.Dm.ver_rows in
    if vr <> [] then
      emit
        (D.error ?line:(first_line vr) "STR003"
           (Printf.sprintf
              "over-determined block: %d equation%s (%s) constrain only %d \
               unknown%s — structurally redundant"
              (List.length vr)
              (if List.length vr > 1 then "s" else "")
              (group 4 vr)
              (Array.length dm.Sparse.Dm.ver_cols)
              (if Array.length dm.Sparse.Dm.ver_cols = 1 then "" else "s")))
  end
  else begin
    (* the pencil is fine; check the expansion point s0 = 0 (STR004)
       and report cost predictions (STR005–STR007) *)
    let gm = Sparse.Matching.maximum m.M.g in
    if gm.Sparse.Matching.rank < n then begin
      let bad = Sparse.Matching.unmatched_rows gm in
      emit
        (D.warning ?line:(first_line bad) "STR004"
           (Printf.sprintf
              "G alone is structurally singular (%s: no stamp in G): the DC \
               expansion point s0 = 0 is unusable for every element value — \
               reduction needs a nonzero frequency shift (automatic, or pass \
               --band)"
              (group 4 bad)))
    end;
    let ord = orderings m in
    let best_nnz =
      match ord.best with
      | Natural -> ord.natural_nnz
      | Rcm -> ord.rcm_nnz
      | Amd -> ord.amd_nnz
    in
    if n >= 50 && float_of_int best_nnz > fill_threshold *. float_of_int st.nnz_lower
    then
      emit
        (D.warning "STR005"
           (Printf.sprintf
              "predicted fill blow-up: the best ordering (%s) still yields %d \
               factor nonzeros, %.1f× the %d lower-pencil entries — the factor \
               is effectively dense"
              (ordering_name ord.best) best_nnz
              (float_of_int best_nnz /. float_of_int st.nnz_lower)
              st.nnz_lower));
    emit
      (D.info "STR006"
         (Printf.sprintf
            "ordering: predicted LDLᵀ factor nonzeros — natural %d, RCM %d, \
             AMD %d (skyline envelope: natural %d, RCM %d); recommended: %s; \
             factor backend: RCM+skyline stores %d vs AMD+supernodal %d — \
             plan picks %s"
            ord.natural_nnz ord.rcm_nnz ord.amd_nnz ord.natural_profile
            ord.rcm_profile (ordering_name ord.best) ord.skyline_stored
            ord.supernodal_stored (backend_name ord.backend_pick)));
    if st.blocks > 1 then
      emit
        (D.info "STR007"
           (Printf.sprintf
              "the pencil is reducible: %d independent diagonal blocks \
               (largest %d unknowns) — the system decouples and can be \
               factored block by block"
              st.blocks st.largest_block))
  end;
  emit
    (D.info "STR008"
       (Printf.sprintf
          "structure: %d unknowns (%d node voltages, %d inductor currents), \
           nnz(G) = %d, nnz(C) = %d, pencil pattern %d (lower %d), bandwidth \
           %d, profile %d, structural rank %d/%d"
          st.n st.n_nodes (st.n - st.n_nodes) st.nnz_g st.nnz_c st.nnz_pencil
          st.nnz_lower st.bandwidth st.profile st.struct_rank st.n));
  (let so = M.second_order_stats nl in
   emit
     (D.info "STR009"
        (Printf.sprintf
           "second-order structure: %s; %d inductor loop%s; coupling density \
            %.3f (K cards over inductor pairs)"
           so.M.chosen_form so.M.inductor_loops
           (if so.M.inductor_loops = 1 then "" else "s")
           so.M.coupling_density)));
  D.sort !diags

let analyze ?fill_threshold nl = run ?fill_threshold nl (M.auto nl)

let analyze_string ?fill_threshold text =
  match Circuit.Parser.parse_string text with
  | nl -> analyze ?fill_threshold nl
  | exception Circuit.Parser.Parse_error (line, msg) ->
    [
      D.error
        ?line:(if line > 0 then Some line else None)
        "NET000" ("does not parse: " ^ msg);
    ]

let analyze_file ?fill_threshold path =
  match Circuit.Parser.parse_file path with
  | nl -> analyze ?fill_threshold nl
  | exception Circuit.Parser.Parse_error (line, msg) ->
    [
      D.error
        ?line:(if line > 0 then Some line else None)
        "NET000" ("does not parse: " ^ msg);
    ]
