(** Bounded content-hash-keyed model cache for the serve daemon.

    One {!entry} per distinct netlist {e text} (keyed by its digest,
    so byte-identical requests hit and a one-character perturbation
    misses), holding the full derivation chain the daemon would
    otherwise recompute per request:

    {v netlist text -> parsed Netlist -> MNA -> Pencil context
                    -> reduced Rom.model per (engine, order, shift, band)
                    -> evaluated Z(jw) per frequency point v}

    The MNA/pencil stage is lazy (a transient-only workload never
    assembles a linear pencil) and memoizes its failure, so a netlist
    that cannot assemble fails fast on every request without being
    rebuilt.

    Entries are evicted LRU once [max_entries] is exceeded. An entry
    {!pin}ned by an in-flight request is never dropped mid-request:
    eviction marks it doomed and defers the drop to {!unpin} — the
    single-flight discipline of the (serialized) request loop does the
    rest.

    Counters: entry lookups record [serve.cache_hit] /
    [serve.cache_miss] (and the daemon-local {!stats} mirror, which is
    what [/stats] reports); evictions record [serve.cache_evict];
    model builds [serve.model_build]. Point-table reuse is tallied by
    the caller ({!cached_point} is a silent lookup — the server's
    batch scan records [serve.point_hit] / [serve.point_miss] and
    folds the totals in via {!note_point_stats}). *)

type t

type entry

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  model_builds : int;
  point_hits : int;
  point_misses : int;
}

val create : max_entries:int -> t
(** [max_entries >= 1]. *)

val key_of_text : string -> string
(** Content hash (hex digest) of a netlist text. *)

val find : t -> string -> entry
(** Entry for a netlist text: LRU-touch on hit, parse-and-insert on
    miss (raising {!Circuit.Parser.Parse_error} through without
    inserting), evicting past the bound. *)

(** {1 Entry accessors (build on demand, memoized)} *)

val key : entry -> string

val netlist : entry -> Circuit.Netlist.t

val mna : entry -> Circuit.Mna.t
(** @raise Circuit.Diagnostic.User_error as {!Circuit.Mna.auto} would
    (memoized: repeats re-raise without re-assembling). *)

val ctx : entry -> Sympvl.Pencil.t
(** The shared pencil context (also the AC workspace). *)

val model :
  t ->
  entry ->
  engine:Sympvl.Rom.engine ->
  order:int ->
  shift:float option ->
  band:(float * float) option ->
  Sympvl.Rom.model * bool
(** Reduced model for one engine configuration, memoized per entry
    (bounded; least-recently-built drops first). The flag is [true]
    on a cache hit. *)

val cached_point : entry -> float -> Linalg.Cmat.t option
(** Evaluated exact [Z(j2πf)] for one frequency, if this entry has
    served it before. Keyed by the exact bit pattern of [f] (no float
    tolerance). Records no counters. *)

val store_point : entry -> float -> Linalg.Cmat.t -> unit

val note_point_stats : t -> hits:int -> misses:int -> unit
(** Fold one batch's point-reuse tally into {!stats} (the Obs
    counters are recorded by {!cached_point} itself). *)

(** {1 Pinning (deferred eviction)} *)

val pin : entry -> unit

val unpin : t -> entry -> unit
(** Drops the entry now if eviction selected it while pinned. *)

(** {1 Introspection} *)

val stats : t -> stats

val mem_key : t -> string -> bool
(** Whether a key is live in the table (doomed-but-pinned entries
    count: their context is still in use). *)
