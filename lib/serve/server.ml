module Diagnostic = Circuit.Diagnostic

type config = {
  addr : Protocol.addr;
  max_entries : int;
  max_line : int;
}

let default_config addr = { addr; max_entries = 64; max_line = 8 * 1024 * 1024 }

(* the only cross-signal state: handlers store, the loop loads *)
let stop_flag = Atomic.make false

let request_stop () = Atomic.set stop_flag true

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;  (** rendered responses not yet written *)
  mutable alive : bool;
}

type state = {
  cfg : config;
  lfd : Unix.file_descr;
  cache : Cache.t;
  mutable conns : conn list;  (** accept order — the batch order *)
  mutable requests : int;
  mutable batched_points : int;
  mutable lat_count : int;
  mutable lat_total : float;
  mutable lat_max : float;
}

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)

(* the same user-level exception surface the CLI's [safely] enumerates,
   rendered as findings instead of stderr lines; anything else is an
   internal error (SRV008) except the truly fatal trio *)
let user_diag = function
  | Circuit.Parser.Parse_error (line, msg) ->
    Some (Diagnostic.error ~line "SRV007" (Printf.sprintf "parse error: %s" msg))
  | Diagnostic.User_error msg -> Some (Diagnostic.error "SRV007" msg)
  | Sys_error msg -> Some (Diagnostic.error "SRV007" msg)
  | Sympvl.Rom.Unsupported why ->
    Some (Diagnostic.error "SRV007" ("engine does not apply to this netlist: " ^ why))
  | Sympvl.Awe.Breakdown msg ->
    Some
      (Diagnostic.error "SRV007"
         ("AWE breakdown: " ^ msg ^ " — lower \"order\" (AWE is limited to ~8)"))
  | Sympvl.Mpvl.Breakdown k ->
    Some
      (Diagnostic.error "SRV007"
         (Printf.sprintf
            "MPVL exact breakdown at step %d — perturb \"shift\" or use engine \
             \"sympvl\""
            k))
  | Sympvl.Factor.Singular i ->
    Some
      (Diagnostic.error "SRV007"
         (Printf.sprintf
            "the (shifted) G matrix is singular (pivot %d) — pass \"shift\" or \
             \"band\""
            i))
  | Simulate.Transient.Convergence_failure t ->
    Some
      (Diagnostic.error "SRV007"
         (Printf.sprintf "transient Newton failed to converge at t = %g s" t))
  | _ -> None

let guard ~id f =
  try f () with
  | (Out_of_memory | Stack_overflow | San.Violation _) as e -> raise e
  | e -> (
    match user_diag e with
    | Some d -> Protocol.error_response ~id [ d ]
    | None ->
      Protocol.error_response ~id
        [
          Diagnostic.error "SRV008"
            (Printf.sprintf "internal error: %s" (Printexc.to_string e));
        ])

let jint k = Json.Num (float_of_int k)

let jfloats a = Json.List (Array.to_list (Array.map (fun v -> Json.Num v) a))

let jstrs a = Json.List (Array.to_list (Array.map (fun s -> Json.Str s) a))

(* [p×p] complex matrix as rows of [re, im] pairs *)
let jcmat (z : Linalg.Cmat.t) =
  Json.List
    (List.init z.Linalg.Cmat.rows (fun r ->
         Json.List
           (List.init z.Linalg.Cmat.cols (fun c ->
                let v = Linalg.Cmat.get z r c in
                Json.List [ Json.Num v.Complex.re; Json.Num v.Complex.im ]))))

let with_entry st text f =
  let entry = Cache.find st.cache text in
  Cache.pin entry;
  Fun.protect ~finally:(fun () -> Cache.unpin st.cache entry) (fun () -> f entry)

(* one non-sweep request -> (fields, findings) *)
let compute st (r : Protocol.request) =
  match r.op with
  | Protocol.Ping -> ([ ("pong", Json.Bool true) ], None)
  | Protocol.Shutdown ->
    request_stop ();
    ([ ("stopping", Json.Bool true) ], None)
  | Protocol.Stats ->
    let cs = Cache.stats st.cache in
    ( [
        ("requests", jint st.requests);
        ( "cache",
          Json.Obj
            [
              ("entries", jint cs.Cache.entries);
              ("hits", jint cs.Cache.hits);
              ("misses", jint cs.Cache.misses);
              ("evictions", jint cs.Cache.evictions);
              ("model_builds", jint cs.Cache.model_builds);
              ("point_hits", jint cs.Cache.point_hits);
              ("point_misses", jint cs.Cache.point_misses);
            ] );
        ("batched_points", jint st.batched_points);
        ("obs_events", jint (Obs.buffered_events ()));
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (Obs.counters ())) );
        ( "latency",
          Json.Obj
            [
              ("count", jint st.lat_count);
              ("total_s", Json.Num st.lat_total);
              ("max_s", Json.Num st.lat_max);
            ] );
      ],
      None )
  | Protocol.Reduce ->
    with_entry st r.netlist @@ fun entry ->
    let mna = Cache.mna entry in
    let model, cached =
      Cache.model st.cache entry ~engine:r.engine ~order:r.order ~shift:r.shift
        ~band:r.band
    in
    ( [
        ("engine", Json.Str (Sympvl.Rom.name r.engine));
        ("n", jint mna.Circuit.Mna.n);
        ("order", jint (Sympvl.Rom.order model));
        ("ports", jint (Sympvl.Rom.ports model));
        ("shift", Json.Num (Sympvl.Rom.shift model));
        ("cached", Json.Bool cached);
      ],
      None )
  | Protocol.Tran ->
    with_entry st r.netlist @@ fun entry ->
    let nl = Cache.netlist entry in
    let nodes = List.map (Circuit.Netlist.node nl) r.observe in
    let opts = Simulate.Transient.default ~dt:r.dt ~t_stop:r.t_stop in
    let res = Simulate.Transient.run ~opts ~observe:nodes nl in
    ( [
        ("times", jfloats res.Simulate.Transient.times);
        ( "voltages",
          Json.Obj
            (List.map
               (fun (name, w) -> (name, jfloats w))
               res.Simulate.Transient.voltages) );
        ("steps", jint res.Simulate.Transient.steps);
      ],
      None )
  | Protocol.Certify ->
    with_entry st r.netlist @@ fun entry ->
    let mna = Cache.mna entry in
    (* order 0 = auto, mirroring the CLI: the full pencil size (every
       check a theorem test) except AWE's documented low-order validity *)
    let order =
      if r.order > 0 then r.order
      else match r.engine with `Awe -> 3 | _ -> mna.Circuit.Mna.n
    in
    let model, cached =
      Cache.model st.cache entry ~engine:r.engine ~order ~shift:r.shift
        ~band:r.band
    in
    let drift_band =
      match r.band with
      | Some b -> Some b
      | None -> ( match r.engine with `Awe -> Some (1e6, 1e10) | _ -> None)
    in
    let rep =
      Sympvl.Certify.run ~ctx:(Cache.ctx entry) ?drift_band
        ~shift_requested:(r.shift <> None) model mna
    in
    ( [
        ("engine", Json.Str (Sympvl.Rom.name r.engine));
        ("order", jint (Sympvl.Rom.order model));
        ("cached", Json.Bool cached);
        ( "safe_order",
          match rep.Sympvl.Certify.safe_order with
          | Some k -> jint k
          | None -> Json.Null );
      ],
      Some rep.Sympvl.Certify.findings )
  | Protocol.Ac | Protocol.Sparams ->
    (* routed through [handle_group] by the batch processor *)
    assert false

let record_latency st dt =
  st.lat_count <- st.lat_count + 1;
  st.lat_total <- st.lat_total +. dt;
  if dt > st.lat_max then st.lat_max <- dt

let handle_single st (r : Protocol.request) =
  let t0 = Obs.now () in
  let m = Obs.mark () in
  let resp =
    guard ~id:r.Protocol.id @@ fun () ->
    if Obs.tracing () then Obs.span_begin "serve.request";
    let fields, findings =
      Fun.protect
        ~finally:(fun () -> if Obs.tracing () then Obs.span_end ())
        (fun () -> compute st r)
    in
    let trace =
      if r.Protocol.trace then Some (Obs.export_chrome_since m) else None
    in
    Protocol.ok_response ~id:r.Protocol.id ?findings ?trace fields
  in
  record_latency st (Obs.now () -. t0);
  resp

(* one batch group of ac/sparams requests over the same netlist text:
   union the frequency points missing from the entry's point cache,
   run one pooled sweep for the whole group, then answer each request
   from the point table *)
let handle_group st (items : (int * Protocol.request) list) =
  let t0 = Obs.now () in
  let m = Obs.mark () in
  let ids = List.map (fun (i, r) -> (i, r.Protocol.id)) items in
  let result =
    try
      if Obs.tracing () then Obs.span_begin "serve.request";
      let fields_per_item =
        Fun.protect
          ~finally:(fun () -> if Obs.tracing () then Obs.span_end ())
          (fun () ->
          let _, r0 = List.hd items in
          with_entry st r0.Protocol.netlist @@ fun entry ->
          let mna = Cache.mna entry in
          let ws = Cache.ctx entry in
          let hits = ref 0 and fresh_total = ref 0 in
          let seen = Hashtbl.create 64 in
          let union = ref [] in
          List.iter
            (fun (_, r) ->
              Array.iter
                (fun f ->
                  match Cache.cached_point entry f with
                  | Some _ ->
                    incr hits;
                    Obs.count "serve.point_hit" 1
                  | None ->
                    incr fresh_total;
                    Obs.count "serve.point_miss" 1;
                    let k = Printf.sprintf "%h" f in
                    if not (Hashtbl.mem seen k) then begin
                      Hashtbl.add seen k ();
                      union := f :: !union
                    end)
                r.Protocol.freqs)
            items;
          let needed = Array.of_list !union in
          (* canonical ascending order: the sweep's work distribution
             must not depend on request arrival order *)
          Array.sort Float.compare needed;
          if Array.length needed > 0 then begin
            let sw = Simulate.Ac.sweep_ws mna ws needed in
            Array.iteri
              (fun i f -> Cache.store_point entry f sw.Simulate.Ac.z.(i))
              needed
          end;
          Cache.note_point_stats st.cache ~hits:!hits ~misses:!fresh_total;
          let saved = !fresh_total - Array.length needed in
          if saved > 0 then begin
            st.batched_points <- st.batched_points + saved;
            Obs.count "serve.batched_points" saved
          end;
          let port_names = mna.Circuit.Mna.port_names in
          List.map
            (fun (i, r) ->
              let zs =
                Array.map
                  (fun f ->
                    match Cache.cached_point entry f with
                    | Some z -> z
                    | None -> assert false)
                  r.Protocol.freqs
              in
              let key, mats =
                match r.Protocol.op with
                | Protocol.Sparams ->
                  ( "s",
                    Array.map
                      (Simulate.Netparams.z_to_s ~z0:r.Protocol.z0)
                      zs )
                | _ -> ("z", zs)
              in
              ( i,
                r,
                [
                  ("freqs", jfloats r.Protocol.freqs);
                  ("ports", jstrs port_names);
                  (key, Json.List (Array.to_list (Array.map jcmat mats)));
                ] ))
            items)
    in
      let traced = List.exists (fun (_, r) -> r.Protocol.trace) items in
      let trace = if traced then Some (Obs.export_chrome_since m) else None in
      List.map
        (fun (i, (r : Protocol.request), fields) ->
          let trace = if r.Protocol.trace then trace else None in
          (i, Protocol.ok_response ~id:r.Protocol.id ?trace fields))
        fields_per_item
    with
    | (Out_of_memory | Stack_overflow | San.Violation _) as e -> raise e
    | e ->
      let d =
        match user_diag e with
        | Some d -> d
        | None ->
          Diagnostic.error "SRV008"
            (Printf.sprintf "internal error: %s" (Printexc.to_string e))
      in
      List.map (fun (i, id) -> (i, Protocol.error_response ~id [ d ])) ids
  in
  List.iter (fun _ -> record_latency st (Obs.now () -. t0)) result;
  result

(* ------------------------------------------------------------------ *)
(* Batch processing                                                    *)

let append_response c resp = c.out <- c.out ^ resp ^ "\n"

let is_sweep (r : Protocol.request) =
  match r.Protocol.op with
  | Protocol.Ac | Protocol.Sparams -> true
  | _ -> false

let process_batch st (items : (conn * string) list) =
  let batch_mark = Obs.mark () in
  let arr = Array.of_list items in
  let n = Array.length arr in
  st.requests <- st.requests + n;
  let out = Array.make n "" in
  let parsed = Array.map (fun (_, line) -> Protocol.parse line) arr in
  (* sweep groups by content hash, members in batch order *)
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      match p with
      | Ok r when is_sweep r ->
        let k = Cache.key_of_text r.Protocol.netlist in
        let members =
          match Hashtbl.find_opt groups k with Some l -> l | None -> []
        in
        Hashtbl.replace groups k ((i, r) :: members)
      | _ -> ())
    parsed;
  let done_groups = Hashtbl.create 8 in
  Array.iteri
    (fun i p ->
      match p with
      | Error (id, ds) -> out.(i) <- Protocol.error_response ~id ds
      | Ok r when is_sweep r ->
        let k = Cache.key_of_text r.Protocol.netlist in
        if not (Hashtbl.mem done_groups k) then begin
          Hashtbl.add done_groups k ();
          let members =
            List.rev (match Hashtbl.find_opt groups k with Some l -> l | None -> [])
          in
          List.iter (fun (j, resp) -> out.(j) <- resp) (handle_group st members)
        end
      | Ok r -> out.(i) <- handle_single st r)
    parsed;
  (* the responses carried any requested trace subtrees out; drop the
     batch's span events so daemon buffers stay bounded (counters and
     gauges survive truncation) *)
  Obs.truncate batch_mark;
  Array.iteri (fun i (c, _) -> append_response c out.(i)) arr

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)

let read_conn st c =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> c.alive <- false
    | n ->
      Buffer.add_subbytes c.inbuf chunk 0 n;
      if
        Buffer.length c.inbuf > st.cfg.max_line
        && not (String.contains (Buffer.contents c.inbuf) '\n')
      then begin
        append_response c
          (Protocol.error_response ~id:Json.Null
             [ Diagnostic.error "SRV001" "request line too long" ]);
        Buffer.clear c.inbuf;
        c.alive <- false
      end
      else go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      c.out <- "";
      c.alive <- false
  in
  go ()

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* complete lines buffered across all connections, in accept order;
   every line — empty included — is one request owed one response *)
let gather st =
  let items = ref [] in
  List.iter
    (fun c ->
      let s = Buffer.contents c.inbuf in
      match String.rindex_opt s '\n' with
      | None -> ()
      | Some last ->
        Buffer.clear c.inbuf;
        Buffer.add_substring c.inbuf s (last + 1) (String.length s - last - 1);
        List.iter
          (fun line -> items := (c, strip_cr line) :: !items)
          (String.split_on_char '\n' (String.sub s 0 last)))
    st.conns;
  List.rev !items

let flush_conn c =
  if c.out <> "" then
    match Unix.write_substring c.fd c.out 0 (String.length c.out) with
    | n -> c.out <- String.sub c.out n (String.length c.out - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET), _, _) ->
      c.out <- "";
      c.alive <- false

let close_quiet fd = match Unix.close fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let reap st =
  let dead, live =
    List.partition (fun c -> (not c.alive) && c.out = "") st.conns
  in
  List.iter (fun c -> close_quiet c.fd) dead;
  st.conns <- live

let rec accept_all st =
  match Unix.accept st.lfd with
  | fd, _ ->
    Unix.set_nonblock fd;
    st.conns <-
      st.conns
      @ [ { fd; inbuf = Buffer.create 256; out = ""; alive = true } ];
    accept_all st
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (EINTR, _, _) -> accept_all st

let select_quiet rds wrs timeout =
  match Unix.select rds wrs [] timeout with
  | r -> r
  | exception Unix.Unix_error (EINTR, _, _) -> ([], [], [])

let tick st =
  let rds = st.lfd :: List.map (fun c -> c.fd) st.conns in
  let wrs = List.filter_map (fun c -> if c.out <> "" then Some c.fd else None) st.conns in
  let rd, _, _ = select_quiet rds wrs 0.2 in
  if List.memq st.lfd rd then accept_all st;
  List.iter (fun c -> if List.memq c.fd rd then read_conn st c) st.conns;
  let batch = gather st in
  if batch <> [] then process_batch st batch;
  List.iter flush_conn st.conns;
  reap st

(* stop requested: no new accepts; keep reading, answering and
   flushing until one fully idle pass (or the drain deadline) *)
let drain st =
  let deadline = Obs.now () +. 5.0 in
  let rec go () =
    if Obs.now () < deadline then begin
      let rds = List.filter_map (fun c -> if c.alive then Some c.fd else None) st.conns in
      let rd, _, _ = select_quiet rds [] 0.05 in
      List.iter (fun c -> if List.memq c.fd rd then read_conn st c) st.conns;
      let batch = gather st in
      if batch <> [] then process_batch st batch;
      List.iter flush_conn st.conns;
      reap st;
      if rd <> [] || batch <> [] || List.exists (fun c -> c.out <> "") st.conns
      then go ()
    end
  in
  go ()

let setup_listener cfg =
  let sa = Protocol.sockaddr cfg.addr in
  (match cfg.addr with
  | `Unix path -> (
    match Unix.unlink path with
    | () -> ()
    | exception Unix.Unix_error _ -> ())
  | `Tcp _ -> ());
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  (match cfg.addr with
  | `Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | `Unix _ -> ());
  (match Unix.bind fd sa with
  | () -> ()
  | exception Unix.Unix_error (err, _, _) ->
    close_quiet fd;
    Diagnostic.user_errorf "cannot bind %s: %s"
      (match cfg.addr with
      | `Unix p -> p
      | `Tcp (h, p) -> Printf.sprintf "%s:%d" h p)
      (Unix.error_message err));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let run ?(on_ready = fun () -> ()) cfg =
  Obs.enable ();
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_stop ()));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request_stop ()));
  Atomic.set stop_flag false;
  let st =
    {
      cfg;
      lfd = setup_listener cfg;
      cache = Cache.create ~max_entries:cfg.max_entries;
      conns = [];
      requests = 0;
      batched_points = 0;
      lat_count = 0;
      lat_total = 0.0;
      lat_max = 0.0;
    }
  in
  on_ready ();
  while not (Atomic.get stop_flag) do
    tick st
  done;
  close_quiet st.lfd;
  drain st;
  List.iter (fun c -> close_quiet c.fd) st.conns;
  st.conns <- [];
  match cfg.addr with
  | `Unix path -> (
    match Unix.unlink path with
    | () -> ()
    | exception Unix.Unix_error _ -> ())
  | `Tcp _ -> ()
