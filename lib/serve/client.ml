type t = { ic : in_channel; oc : out_channel }

let connect ?(deadline_s = 10.0) addr =
  let sa = Protocol.sockaddr addr in
  let deadline = Obs.now () +. deadline_s in
  let rec go () =
    let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
    match Unix.connect fd sa with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN), _, _)
      when Obs.now () < deadline ->
      Unix.close fd;
      Unix.sleepf 0.02;
      go ()
    | exception e ->
      Unix.close fd;
      raise e
  in
  let fd = go () in
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t = match input_line t.ic with
  | line -> Some line
  | exception End_of_file -> None

let request t line =
  send_line t line;
  recv_line t

let close t =
  (* one underlying fd: close the out channel (flushes), ignore the
     in channel's duplicate-close complaint *)
  match close_out t.oc with
  | () -> ()
  | exception Sys_error _ -> ()
