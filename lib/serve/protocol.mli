(** The [symor serve] wire protocol: newline-delimited JSON.

    Every line the daemon reads is one request; every request gets
    exactly one response line — malformed bytes included, which is
    what the fuzz harness pins. Errors reuse the shared
    {!Circuit.Diagnostic} findings type under stable [SRV*] codes, and
    every response carries the CLI's 0/1/2 exit-code semantics in a
    ["status"] field ({!Circuit.Diagnostic.exit_code} over the
    response findings).

    Request shape (unknown fields are ignored):

    {v
    {"id": any, "op": "ping|reduce|ac|sparams|tran|certify|stats|shutdown",
     "netlist": "<netlist text>",            // compute ops
     "engine": "sympvl", "order": 20, "shift": s0, "band": [lo, hi],
     "freqs": [hz, ...] | "flo"/"fhi"/"points",   // ac, sparams
     "z0": 50.0,                                  // sparams
     "dt": 1e-11, "tstop": 1e-8, "observe": ["n1", ...],  // tran
     "trace": true}                           // per-request span subtree
    v} *)

type addr = [ `Unix of string | `Tcp of string * int ]
(** Where the daemon listens: a Unix socket path, or a TCP host:port. *)

val sockaddr : addr -> Unix.sockaddr
(** Resolve to a [Unix.sockaddr] ([Tcp] hosts accept dotted quads or
    names). @raise Circuit.Diagnostic.User_error on an unknown host. *)

type op = Ping | Reduce | Ac | Sparams | Tran | Certify | Stats | Shutdown

val op_name : op -> string

type request = {
  id : Json.t;  (** Echoed verbatim in the response ([Null] if absent). *)
  op : op;
  netlist : string;  (** Netlist text; [""] for the data-free ops. *)
  engine : Sympvl.Rom.engine;
  order : int;  (** [0] means the op's auto order (certify). *)
  shift : float option;
  band : (float * float) option;
  freqs : float array;  (** Resolved grid, in request order (ac/sparams). *)
  z0 : float;
  dt : float;
  t_stop : float;
  observe : string list;
  trace : bool;
}

val parse : string -> (request, Json.t * Circuit.Diagnostic.t list) result
(** Decode and validate one request line. The error carries the
    request [id] when one could still be extracted ([Null] otherwise)
    so even a rejected request gets an addressable response.

    Error codes: [SRV001] malformed JSON, [SRV002] not an object,
    [SRV003] missing/unknown op, [SRV004] invalid field value,
    [SRV005] missing or empty netlist, [SRV006] unknown engine. *)

(** {1 Responses} *)

val diag_to_json : Circuit.Diagnostic.t -> Json.t

val error_response : id:Json.t -> Circuit.Diagnostic.t list -> string
(** [{"id":…,"ok":false,"status":2,"findings":[…]}] — one line, no
    trailing newline. *)

val ok_response :
  id:Json.t ->
  ?findings:Circuit.Diagnostic.t list ->
  ?trace:string ->
  (string * Json.t) list ->
  string
(** Success line: [ok:true], [status] from the findings (certify
    reports its MOD findings here without failing the request),
    [trace] is a pre-rendered Chrome-trace JSON object embedded
    verbatim under ["trace"]. *)
