(** The [symor serve] daemon: a persistent reduction/evaluation
    service over newline-delimited JSON ({!Protocol}).

    One single-threaded select(2) event loop owns every connection —
    request handling is serialized, which is what makes the
    {!Cache} single-flight (two clients racing on the same uncached
    netlist cost exactly one [serve.cache_miss]) and keeps the daemon
    free of connection-level locking. Compute parallelism comes from
    the shared {!Parallel} pool {e inside} a request, exactly as in
    the one-shot CLI, so pooled results keep their bitwise-identical
    guarantee.

    Batching: all complete request lines readable in one loop tick
    are processed as one batch; [ac]/[sparams] requests over the same
    netlist (same content hash) are grouped, the frequency points
    missing from the entry's point cache are unioned, and one pooled
    {!Simulate.Ac.sweep_ws} serves the whole group
    ([serve.batched_points] counts the points this deduplication
    saved).

    Shutdown: SIGTERM/SIGINT (or a [shutdown] request) stop the
    accept loop, drain buffered in-flight requests, flush every
    pending response, then close and (for Unix sockets) unlink.

    Malformed or failing requests get one structured error response
    each ({!Protocol.parse} codes, [SRV007] user-level compute
    failures, [SRV008] internal errors) and never kill the daemon;
    {!San.Violation}, OOM and stack overflow do propagate — a
    sanitizer hit is a library bug, not a client error. *)

type config = {
  addr : Protocol.addr;
  max_entries : int;  (** Cache bound (entries, not bytes). *)
  max_line : int;  (** Per-connection request line bound, bytes. *)
}

val default_config : Protocol.addr -> config
(** 64 cache entries, 8 MiB request lines. *)

val request_stop : unit -> unit
(** What the signal handlers call: ask the running loop to drain and
    return. Safe from a signal handler (one atomic store). *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen, serve until stopped; returns after the drain.
    [on_ready] fires once the socket is listening (the CLI prints the
    address; tests connect). Raises {!Circuit.Diagnostic.User_error}
    on bind/resolve failures. *)
