(** Minimal zero-dependency JSON for the serve protocol.

    The daemon speaks newline-delimited JSON; this module is the
    codec. It is deliberately small: one value type, a recursive
    descent parser hardened for untrusted input (depth-limited so
    fuzzed nesting cannot overflow the stack, every failure a
    {!Parse_error}), and a printer whose float rendering ([%.17g])
    round-trips doubles exactly — the serve bench gates bitwise
    payload identity across job counts on that property. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** Pre-rendered JSON emitted verbatim by {!to_string} — used to
          embed an {!Obs.export_chrome_since} trace without reparsing
          it. Never produced by {!parse}. *)

exception Parse_error of string
(** Malformed input. The message names the byte offset. *)

val parse : string -> t
(** Parse one JSON value (surrounding whitespace allowed; trailing
    non-whitespace is an error). @raise Parse_error on malformed or
    deeper-than-512 input. *)

val to_string : t -> string
(** Compact one-line rendering (no interior newlines, so a rendered
    value is always a valid protocol line). *)

(** {1 Accessors} *)

val member : string -> t -> t
(** Field of an object; [Null] when absent or not an object. On
    duplicate keys the first wins. *)

val to_bool_opt : t -> bool option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
(** [Num] values that are exact integers only. *)

val to_str_opt : t -> string option
val to_list_opt : t -> t list option
