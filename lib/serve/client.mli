(** Blocking line-oriented client for the serve protocol.

    Used by the [symor request] subcommand, the serve bench load
    generator and the test harness — all of which talk to a daemon in
    a {e separate process} (the daemon may own spawned domains, so
    tests must not fork it; they spawn the [symor] binary and connect
    here). *)

type t

val connect : ?deadline_s:float -> Protocol.addr -> t
(** Connect, retrying refused/absent sockets until the deadline
    (default 10 s) — the standard way to wait for a daemon that was
    just spawned to come up. @raise Unix.Unix_error once the deadline
    passes. *)

val send_line : t -> string -> unit
(** Write one request line (the terminating newline is added). *)

val recv_line : t -> string option
(** Next response line (without the newline); [None] on EOF. *)

val request : t -> string -> string option
(** [send_line] then [recv_line]. *)

val close : t -> unit
