type entry = {
  mutable ekey : string;
  netlist : Circuit.Netlist.t;
  (* lazy so a transient-only workload on a netlist whose pencil cannot
     assemble never pays (or fails) MNA auto-detection; OCaml's [Lazy]
     memoizes the raised exception, which is exactly the fail-fast we
     want on repeat requests *)
  pencil : (Circuit.Mna.t * Sympvl.Pencil.t) Lazy.t;
  models : (string, Sympvl.Rom.model) Hashtbl.t;
  mutable model_order : string list;  (** oldest last; bounds [models] *)
  points : (string, Linalg.Cmat.t) Hashtbl.t;
  mutable pins : int;
  mutable doomed : bool;
  mutable stamp : int;
}

type t = {
  max_entries : int;
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable model_builds : int;
  mutable point_hits : int;
  mutable point_misses : int;
}

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  model_builds : int;
  point_hits : int;
  point_misses : int;
}

let max_models_per_entry = 8

let max_points_per_entry = 8192

let create ~max_entries =
  if max_entries < 1 then invalid_arg "Cache.create: max_entries must be >= 1";
  {
    max_entries;
    entries = Hashtbl.create 64;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    model_builds = 0;
    point_hits = 0;
    point_misses = 0;
  }

let key_of_text text = Digest.to_hex (Digest.string text)

let touch (t : t) e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

(* strict-LRU victim among live entries *)
let victim (t : t) =
  Hashtbl.fold
    (fun _ e best ->
      if e.doomed then best
      else
        match best with
        | Some b when b.stamp <= e.stamp -> best
        | _ -> Some e)
    t.entries None

let drop (t : t) e =
  Hashtbl.remove t.entries e.ekey;
  t.evictions <- t.evictions + 1;
  Obs.count "serve.cache_evict" 1

let live_count (t : t) =
  Hashtbl.fold (fun _ e n -> if e.doomed then n else n + 1) t.entries 0

let rec evict (t : t) =
  if live_count t > t.max_entries then
    match victim t with
    | None -> ()
    | Some e ->
      (* never drop a context an in-flight request still holds: mark it
         doomed (it stops serving lookups now) and let [unpin] finish
         the eviction when the request completes *)
      if e.pins > 0 then e.doomed <- true else drop t e;
      evict t

let find (t : t) text =
  let k = key_of_text text in
  match Hashtbl.find_opt t.entries k with
  | Some e when not e.doomed ->
    t.hits <- t.hits + 1;
    Obs.count "serve.cache_hit" 1;
    touch t e;
    e
  | _ ->
    (* a doomed survivor no longer serves lookups; rebuild fresh *)
    t.misses <- t.misses + 1;
    Obs.count "serve.cache_miss" 1;
    let nl = Circuit.Parser.parse_string text in
    let e =
      {
        ekey = k;
        netlist = nl;
        pencil =
          lazy
            (let m = Circuit.Mna.auto nl in
             (m, Sympvl.Pencil.create m));
        models = Hashtbl.create 4;
        model_order = [];
        points = Hashtbl.create 64;
        pins = 0;
        doomed = false;
        stamp = 0;
      }
    in
    touch t e;
    (match Hashtbl.find_opt t.entries k with
    | Some old when old.doomed && old.pins > 0 ->
      (* keep the pinned ghost alive under a shadow key until unpin
         (mutated in place: the in-flight holder's [unpin] must see it) *)
      Hashtbl.remove t.entries k;
      old.ekey <- k ^ "#doomed";
      Hashtbl.add t.entries old.ekey old
    | Some _ -> Hashtbl.remove t.entries k
    | None -> ());
    Hashtbl.add t.entries k e;
    evict t;
    e

let key e = e.ekey

let netlist e = e.netlist

let mna e = fst (Lazy.force e.pencil)

let ctx e = snd (Lazy.force e.pencil)

let model_key ~engine ~order ~shift ~band =
  Printf.sprintf "%s|%d|%s|%s" (Sympvl.Rom.name engine) order
    (match shift with Some s -> Printf.sprintf "%h" s | None -> "auto")
    (match band with
    | Some (lo, hi) -> Printf.sprintf "%h:%h" lo hi
    | None -> "none")

let model (t : t) e ~engine ~order ~shift ~band =
  let mk = model_key ~engine ~order ~shift ~band in
  match Hashtbl.find_opt e.models mk with
  | Some m -> (m, true)
  | None ->
    let m, pencil_ctx = Lazy.force e.pencil in
    let opts = { (Sympvl.Rom.default ~order) with Sympvl.Rom.shift; band } in
    let rom = Sympvl.Rom.reduce ~ctx:pencil_ctx ~opts ~order engine m in
    if List.length e.model_order >= max_models_per_entry then begin
      match List.rev e.model_order with
      | oldest :: _ ->
        Hashtbl.remove e.models oldest;
        e.model_order <-
          List.filter (fun k -> not (String.equal k oldest)) e.model_order
      | [] -> ()
    end;
    Hashtbl.replace e.models mk rom;
    e.model_order <- mk :: e.model_order;
    t.model_builds <- t.model_builds + 1;
    Obs.count "serve.model_build" 1;
    (rom, false)

(* exact bit-pattern rendering: float keys without float equality *)
let point_key f = Printf.sprintf "%h" f

let cached_point e f = Hashtbl.find_opt e.points (point_key f)

let store_point e f z =
  if Hashtbl.length e.points >= max_points_per_entry then
    Hashtbl.reset e.points;
  Hashtbl.replace e.points (point_key f) z

let note_point_stats (t : t) ~hits ~misses =
  t.point_hits <- t.point_hits + hits;
  t.point_misses <- t.point_misses + misses

let pin e = e.pins <- e.pins + 1

let unpin (t : t) e =
  e.pins <- e.pins - 1;
  if e.pins <= 0 && e.doomed then drop t e

let stats (t : t) : stats =
  {
    entries = Hashtbl.length t.entries;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    model_builds = t.model_builds;
    point_hits = t.point_hits;
    point_misses = t.point_misses;
  }

let mem_key (t : t) k = Hashtbl.mem t.entries k
