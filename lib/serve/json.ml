type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" pos msg))

(* fuzzed input can nest arbitrarily deep; a hard depth limit keeps
   the recursive parser off Stack_overflow *)
let max_depth = 512

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let n = String.length c.src in
  while
    c.pos < n
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.pos (Printf.sprintf "expected %C, got %C" ch x)
  | None -> fail c.pos (Printf.sprintf "expected %C, got end of input" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

(* UTF-8 encode one scalar value (BMP escapes and surrogate pairs) *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ('0' .. '9' as ch) -> v := (!v * 16) + (Char.code ch - Char.code '0')
    | Some ('a' .. 'f' as ch) -> v := (!v * 16) + (Char.code ch - Char.code 'a' + 10)
    | Some ('A' .. 'F' as ch) -> v := (!v * 16) + (Char.code ch - Char.code 'A' + 10)
    | _ -> fail c.pos "expected 4 hex digits in \\u escape");
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> advance c; Buffer.add_char b '"'
      | Some '\\' -> advance c; Buffer.add_char b '\\'
      | Some '/' -> advance c; Buffer.add_char b '/'
      | Some 'b' -> advance c; Buffer.add_char b '\b'
      | Some 'f' -> advance c; Buffer.add_char b '\012'
      | Some 'n' -> advance c; Buffer.add_char b '\n'
      | Some 'r' -> advance c; Buffer.add_char b '\r'
      | Some 't' -> advance c; Buffer.add_char b '\t'
      | Some 'u' ->
        advance c;
        let u = hex4 c in
        if u >= 0xD800 && u <= 0xDBFF then begin
          (* high surrogate: require a low surrogate escape next *)
          match (peek c, c.pos + 1 < String.length c.src) with
          | Some '\\', true when c.src.[c.pos + 1] = 'u' ->
            advance c;
            advance c;
            let lo = hex4 c in
            if lo >= 0xDC00 && lo <= 0xDFFF then
              add_utf8 b (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
            else fail c.pos "unpaired surrogate"
          | _ -> fail c.pos "unpaired surrogate"
        end
        else if u >= 0xDC00 && u <= 0xDFFF then fail c.pos "unpaired surrogate"
        else add_utf8 b u
      | _ -> fail c.pos "bad escape");
      go ()
    | Some ch when Char.code ch < 0x20 -> fail c.pos "control character in string"
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let n = String.length c.src in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < n && is_num_char c.src.[c.pos] do
    advance c
  done;
  if c.pos = start then fail c.pos "expected a number";
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> Num v
  | _ -> fail start (Printf.sprintf "bad number %S" s)

let rec parse_value c depth =
  if depth > max_depth then fail c.pos "nesting too deep";
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        items := parse_value c (depth + 1) :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; go ()
        | Some ']' -> advance c
        | _ -> fail c.pos "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c (depth + 1) in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; go ()
        | Some '}' -> advance c
        | _ -> fail c.pos "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> fail c.pos (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c 0 in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing garbage after value";
  v

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"'

let rec render b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num v ->
    if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.17g" v)
    else Buffer.add_string b "null"
  | Str s -> escape b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        render b v)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape b k;
        Buffer.add_char b ':';
        render b v)
      fields;
    Buffer.add_char b '}'
  | Raw s ->
    (* pre-rendered payloads (the Chrome trace) may contain newlines;
       strip them so the value stays one protocol line *)
    String.iter (fun ch -> if ch <> '\n' && ch <> '\r' then Buffer.add_char b ch) s

let to_string v =
  let b = Buffer.create 256 in
  render b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> Null

let to_bool_opt = function Bool v -> Some v | _ -> None

let to_float_opt = function Num v -> Some v | _ -> None

let to_int_opt = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 -> Some (int_of_float v)
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None

let to_list_opt = function List items -> Some items | _ -> None
