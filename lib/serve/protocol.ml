module Diagnostic = Circuit.Diagnostic

type addr = [ `Unix of string | `Tcp of string * int ]

let sockaddr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
    let ip =
      match Unix.inet_addr_of_string host with
      | ip -> ip
      | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
        | _ | (exception Not_found) ->
          Diagnostic.user_errorf "unknown host %S" host)
    in
    Unix.ADDR_INET (ip, port)

type op = Ping | Reduce | Ac | Sparams | Tran | Certify | Stats | Shutdown

let op_name = function
  | Ping -> "ping"
  | Reduce -> "reduce"
  | Ac -> "ac"
  | Sparams -> "sparams"
  | Tran -> "tran"
  | Certify -> "certify"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "ping" -> Some Ping
  | "reduce" -> Some Reduce
  | "ac" -> Some Ac
  | "sparams" -> Some Sparams
  | "tran" -> Some Tran
  | "certify" -> Some Certify
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  id : Json.t;
  op : op;
  netlist : string;
  engine : Sympvl.Rom.engine;
  order : int;
  shift : float option;
  band : (float * float) option;
  freqs : float array;
  z0 : float;
  dt : float;
  t_stop : float;
  observe : string list;
  trace : bool;
}

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

exception Invalid of Diagnostic.t

let invalidf code fmt =
  Printf.ksprintf (fun msg -> raise (Invalid (Diagnostic.error code msg))) fmt

let float_field j name default =
  match Json.member name j with
  | Json.Null -> default
  | v -> (
    match Json.to_float_opt v with
    | Some x -> x
    | None -> invalidf "SRV004" "field %S must be a number" name)

let int_field j name default =
  match Json.member name j with
  | Json.Null -> default
  | v -> (
    match Json.to_int_opt v with
    | Some x -> x
    | None -> invalidf "SRV004" "field %S must be an integer" name)

let bool_field j name default =
  match Json.member name j with
  | Json.Null -> default
  | v -> (
    match Json.to_bool_opt v with
    | Some x -> x
    | None -> invalidf "SRV004" "field %S must be a boolean" name)

let str_field j name default =
  match Json.member name j with
  | Json.Null -> default
  | v -> (
    match Json.to_str_opt v with
    | Some x -> x
    | None -> invalidf "SRV004" "field %S must be a string" name)

let needs_netlist = function
  | Reduce | Ac | Sparams | Tran | Certify -> true
  | Ping | Stats | Shutdown -> false

let parse_band j =
  match Json.member "band" j with
  | Json.Null -> None
  | v -> (
    match Option.map (List.map Json.to_float_opt) (Json.to_list_opt v) with
    | Some [ Some lo; Some hi ] when lo > 0.0 && hi > lo -> Some (lo, hi)
    | _ -> invalidf "SRV004" "field \"band\" must be [lo, hi] with 0 < lo < hi")

let parse_freqs op j =
  match Json.member "freqs" j with
  | Json.Null ->
    let flo = float_field j "flo" 1e6 in
    let fhi = float_field j "fhi" 1e10 in
    let points = int_field j "points" 100 in
    if not (flo > 0.0 && fhi > flo) then
      invalidf "SRV004" "need 0 < flo < fhi (got flo=%g, fhi=%g)" flo fhi;
    if points < 2 || points > 100_000 then
      invalidf "SRV004" "field \"points\" must be in [2, 100000] (got %d)" points;
    if op = Ac || op = Sparams then Simulate.Ac.log_freqs ~points flo fhi else [||]
  | v -> (
    match Json.to_list_opt v with
    | None -> invalidf "SRV004" "field \"freqs\" must be an array of frequencies"
    | Some items ->
      if items = [] then invalidf "SRV004" "field \"freqs\" must not be empty";
      if List.length items > 100_000 then
        invalidf "SRV004" "field \"freqs\" is limited to 100000 points";
      let arr =
        List.map
          (fun it ->
            match Json.to_float_opt it with
            | Some f when f > 0.0 -> f
            | _ -> invalidf "SRV004" "field \"freqs\" entries must be positive numbers")
          items
      in
      Array.of_list arr)

let parse_observe j =
  match Json.member "observe" j with
  | Json.Null -> []
  | v -> (
    match Json.to_list_opt v with
    | None -> invalidf "SRV004" "field \"observe\" must be an array of node names"
    | Some items ->
      List.map
        (fun it ->
          match Json.to_str_opt it with
          | Some s -> s
          | None -> invalidf "SRV004" "field \"observe\" entries must be strings")
        items)

let parse line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
    Error
      (Json.Null, [ Diagnostic.error "SRV001" (Printf.sprintf "malformed JSON: %s" msg) ])
  | Json.Obj _ as j -> (
    let id = Json.member "id" j in
    try
      let op =
        match Json.member "op" j with
        | Json.Null -> invalidf "SRV003" "missing \"op\" field"
        | v -> (
          match Json.to_str_opt v with
          | None -> invalidf "SRV003" "field \"op\" must be a string"
          | Some name -> (
            match op_of_name name with
            | Some op -> op
            | None ->
              invalidf "SRV003"
                "unknown op %S (have ping, reduce, ac, sparams, tran, certify, \
                 stats, shutdown)"
                name))
      in
      let netlist = str_field j "netlist" "" in
      if needs_netlist op && String.trim netlist = "" then
        invalidf "SRV005" "op %S needs a non-empty \"netlist\" field" (op_name op);
      let engine =
        match str_field j "engine" "sympvl" with
        | name -> (
          match Sympvl.Rom.of_name name with
          | Some e -> e
          | None -> invalidf "SRV006" "unknown engine %S (try sympvl)" name)
      in
      let order = int_field j "order" (match op with Certify -> 0 | _ -> 20) in
      (match op with
      | Reduce when order <= 0 ->
        invalidf "SRV004" "field \"order\" must be positive (got %d)" order
      | Certify when order < 0 ->
        invalidf "SRV004" "field \"order\" must be >= 0 (got %d)" order
      | _ -> ());
      let shift =
        match Json.member "shift" j with
        | Json.Null -> None
        | v -> (
          match Json.to_float_opt v with
          | Some s -> Some s
          | None -> invalidf "SRV004" "field \"shift\" must be a number")
      in
      let band = parse_band j in
      let freqs = parse_freqs op j in
      let z0 = float_field j "z0" 50.0 in
      if z0 <= 0.0 then invalidf "SRV004" "field \"z0\" must be positive";
      let dt = float_field j "dt" 1e-11 in
      let t_stop = float_field j "tstop" 1e-8 in
      if op = Tran && not (dt > 0.0 && t_stop > dt) then
        invalidf "SRV004" "need 0 < dt < tstop (got dt=%g, tstop=%g)" dt t_stop;
      let observe = parse_observe j in
      if op = Tran && observe = [] then
        invalidf "SRV004" "op \"tran\" needs a non-empty \"observe\" field";
      let trace = bool_field j "trace" false in
      Ok
        {
          id;
          op;
          netlist;
          engine;
          order;
          shift;
          band;
          freqs;
          z0;
          dt;
          t_stop;
          observe;
          trace;
        }
    with Invalid d -> Error (id, [ d ]))
  | _ -> Error (Json.Null, [ Diagnostic.error "SRV002" "request must be a JSON object" ])

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

let diag_to_json (d : Diagnostic.t) =
  Json.Obj
    [
      ("code", Json.Str d.Diagnostic.code);
      ("severity", Json.Str (Diagnostic.severity_to_string d.Diagnostic.severity));
      ("message", Json.Str d.Diagnostic.message);
      ( "line",
        match d.Diagnostic.line with
        | Some l -> Json.Num (float_of_int l)
        | None -> Json.Null );
    ]

let status_of findings = Diagnostic.exit_code ~strict:false findings

let response ~id ~ok ?(findings = []) ?trace fields =
  let base =
    [ ("id", id); ("ok", Json.Bool ok); ("status", Json.Num (float_of_int (status_of findings))) ]
  in
  let findings_f =
    match findings with
    | [] -> []
    | fs -> [ ("findings", Json.List (List.map diag_to_json fs)) ]
  in
  let trace_f = match trace with None -> [] | Some t -> [ ("trace", Json.Raw t) ] in
  Json.to_string (Json.Obj (base @ fields @ findings_f @ trace_f))

let error_response ~id findings = response ~id ~ok:false ~findings []

let ok_response ~id ?findings ?trace fields = response ~id ~ok:true ?findings ?trace fields
