(** Transient (time-domain) circuit simulation.

    A SPICE-style MNA integrator: backward-Euler or trapezoidal time
    stepping, Newton iteration for nonlinear conductances, PWL /
    pulse / sine current sources. Unknowns are node voltages,
    inductor currents and — when reduced-order models are stamped
    in — their internal states and port currents (eq. (23) of the
    paper: this is the "stamped directly into the Jacobian" usage).

    Linear symmetric circuits use the shared pencil context
    ({!Sympvl.Pencil}) as the sparse skyline backend with one
    factorisation for the whole run; circuits with reduced stamps or
    controlled sources use dense LU. *)

type options = {
  dt : float;  (** Fixed time step. *)
  t_stop : float;
  method_ : [ `Backward_euler | `Trapezoidal ];
  newton_tol : float;  (** Voltage-update convergence threshold. *)
  newton_max : int;
}

val default : dt:float -> t_stop:float -> options

type reduced_stamp = {
  model : Sympvl.Model.t;
      (** Must be a pencil in the [s] variable (RC/RL/RLC models). *)
  terminals : (Circuit.Netlist.node * Circuit.Netlist.node) array;
      (** (plus, minus) node pair per model port, in port order. *)
}

type result = {
  times : float array;
  voltages : (string * float array) list;
      (** Observed node name → waveform. *)
  steps : int;
  newton_iterations : int;  (** Total across the run. *)
  factorizations : int;
  backend : [ `Skyline | `Dense ];
}

exception Convergence_failure of float
(** Newton failed at the reported simulation time. *)

val run :
  ?opts:options ->
  ?reduced:reduced_stamp list ->
  observe:Circuit.Netlist.node list ->
  Circuit.Netlist.t ->
  result
(** Simulate from a zero initial state ([x(0) = 0]; sources should
    start at their [t = 0] values for a consistent DC start). The
    [observe] nodes' voltages are recorded at every step. *)

val max_deviation : result -> result -> float
(** Largest pointwise voltage difference between two runs with the
    same time base and observation list (waveform comparison for the
    Fig.-5 experiment). *)
