type options = {
  dt : float;
  t_stop : float;
  method_ : [ `Backward_euler | `Trapezoidal ];
  newton_tol : float;
  newton_max : int;
}

let default ~dt ~t_stop =
  { dt; t_stop; method_ = `Trapezoidal; newton_tol = 1e-9; newton_max = 50 }

type reduced_stamp = {
  model : Sympvl.Model.t;
  terminals : (Circuit.Netlist.node * Circuit.Netlist.node) array;
}

type result = {
  times : float array;
  voltages : (string * float array) list;
  steps : int;
  newton_iterations : int;
  factorizations : int;
  backend : [ `Skyline | `Dense ];
}

exception Convergence_failure of float

type nonlinear_element = {
  nl_n1 : int; (* MNA row (node − 1) or −1 for ground *)
  nl_n2 : int;
  i_of_v : float -> float;
  di_dv : float -> float;
}

type source = { src_n1 : int; src_n2 : int; wave : Circuit.Waveform.t }

type vsource = { vs_row : int; vs_wave : Circuit.Waveform.t }

(* assembled time-domain system:  G x + q(x) + C ẋ = b(t) *)
type system = {
  n : int;
  g : Sparse.Csr.t;
  c : Sparse.Csr.t;
  sources : source list;
  vsources : vsource list;
  nonlinear : nonlinear_element list;
  symmetric : bool;
}

let row_of_node nd = nd - 1

let assemble nl reduced =
  let nn = Circuit.Netlist.num_nodes nl in
  let inds = Circuit.Netlist.inductors nl in
  let ni = List.length inds in
  let nvs = (Circuit.Netlist.stats nl).Circuit.Netlist.vsources in
  (* layout: [node voltages | inductor currents | voltage-source branch
     currents | per-stamp states and port currents] *)
  let stamp_offsets = ref [] in
  let total = ref (nn + ni + nvs) in
  List.iter
    (fun st ->
      let order = st.model.Sympvl.Model.order in
      let p = st.model.Sympvl.Model.p in
      if st.model.Sympvl.Model.variable <> Circuit.Mna.S then
        invalid_arg "Transient: reduced stamp must be an s-variable model";
      if Array.length st.terminals <> p then
        invalid_arg "Transient: stamp terminal count must equal model port count";
      stamp_offsets := (!total, st) :: !stamp_offsets;
      total := !total + order + p)
    reduced;
  let stamp_offsets = List.rev !stamp_offsets in
  let n = !total in
  let gtr = Sparse.Triplet.create n n in
  let ctr = Sparse.Triplet.create n n in
  let sources = ref [] in
  let vsources = ref [] in
  let next_vs = ref (nn + ni) in
  let nonlinear = ref [] in
  let symmetric = ref true in
  let stamp_pair tr n1 n2 v =
    let i = row_of_node n1 and j = row_of_node n2 in
    if i >= 0 then Sparse.Triplet.add tr i i v;
    if j >= 0 then Sparse.Triplet.add tr j j v;
    if i >= 0 && j >= 0 then begin
      Sparse.Triplet.add tr i j (-.v);
      Sparse.Triplet.add tr j i (-.v)
    end
  in
  List.iter
    (fun e ->
      match e with
      | Circuit.Netlist.Resistor { n1; n2; ohms; _ } -> stamp_pair gtr n1 n2 (1.0 /. ohms)
      | Circuit.Netlist.Capacitor { n1; n2; farads; _ } -> stamp_pair ctr n1 n2 farads
      | Circuit.Netlist.Inductor _ | Circuit.Netlist.Mutual _ -> () (* below *)
      | Circuit.Netlist.Current_source { n1; n2; wave; _ } ->
        sources := { src_n1 = row_of_node n1; src_n2 = row_of_node n2; wave } :: !sources
      | Circuit.Netlist.Voltage_source { n1; n2; wave; _ } ->
        (* branch current unknown: v(n1) − v(n2) = wave(t) *)
        let row = !next_vs in
        incr next_vs;
        let i = row_of_node n1 and j = row_of_node n2 in
        if i >= 0 then begin
          Sparse.Triplet.add gtr row i 1.0;
          Sparse.Triplet.add gtr i row 1.0
        end;
        if j >= 0 then begin
          Sparse.Triplet.add gtr row j (-1.0);
          Sparse.Triplet.add gtr j row (-1.0)
        end;
        vsources := { vs_row = row; vs_wave = wave } :: !vsources
      | Circuit.Netlist.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
        symmetric := false;
        let op = row_of_node out_p
        and on = row_of_node out_n
        and ip = row_of_node in_p
        and inn = row_of_node in_n in
        if op >= 0 && ip >= 0 then Sparse.Triplet.add gtr op ip gm;
        if op >= 0 && inn >= 0 then Sparse.Triplet.add gtr op inn (-.gm);
        if on >= 0 && ip >= 0 then Sparse.Triplet.add gtr on ip (-.gm);
        if on >= 0 && inn >= 0 then Sparse.Triplet.add gtr on inn gm
      | Circuit.Netlist.Nonlinear_conductance { n1; n2; i_of_v; di_dv; _ } ->
        nonlinear :=
          { nl_n1 = row_of_node n1; nl_n2 = row_of_node n2; i_of_v; di_dv }
          :: !nonlinear)
    (Circuit.Netlist.elements nl);
  (* inductors: branch-current unknowns with the eq.-(3) saddle stamp *)
  List.iteri
    (fun k (_, n1, n2, _) ->
      let row = nn + k in
      let i = row_of_node n1 and j = row_of_node n2 in
      if i >= 0 then begin
        Sparse.Triplet.add gtr row i 1.0;
        Sparse.Triplet.add gtr i row 1.0
      end;
      if j >= 0 then begin
        Sparse.Triplet.add gtr row j (-1.0);
        Sparse.Triplet.add gtr j row (-1.0)
      end)
    inds;
  if ni > 0 then begin
    let lm = Circuit.Mna.inductance_matrix nl in
    for a = 0 to ni - 1 do
      for b = 0 to ni - 1 do
        let v = Linalg.Mat.get lm a b in
        if v <> 0.0 then Sparse.Triplet.add ctr (nn + a) (nn + b) (-.v)
      done
    done
  end;
  (* reduced-model stamps (symmetric saddle form):
       [ Gn   0    P ] [v ]     [ Cn  0  0 ]
       [ 0    Ĝ   −ρ ] [x̂ ]  +  [ 0   Ĉ  0 ] d/dt = b
       [ Pᵀ  −ρᵀ   0 ] [ip]     [ 0   0  0 ]                      *)
  List.iter
    (fun (off, st) ->
      let order = st.model.Sympvl.Model.order in
      let p = st.model.Sympvl.Model.p in
      let ghat, chat, rho = Sympvl.Model.state_space st.model in
      for a = 0 to order - 1 do
        for b = 0 to order - 1 do
          let gv = Linalg.Mat.get ghat a b in
          if gv <> 0.0 then Sparse.Triplet.add gtr (off + a) (off + b) gv;
          let cv = Linalg.Mat.get chat a b in
          if cv <> 0.0 then Sparse.Triplet.add ctr (off + a) (off + b) cv
        done;
        for c = 0 to p - 1 do
          let rv = Linalg.Mat.get rho a c in
          if rv <> 0.0 then begin
            Sparse.Triplet.add gtr (off + a) (off + order + c) (-.rv);
            Sparse.Triplet.add gtr (off + order + c) (off + a) (-.rv)
          end
        done
      done;
      Array.iteri
        (fun c (plus, minus) ->
          let ip_row = off + order + c in
          let pi = row_of_node plus and mi = row_of_node minus in
          if pi >= 0 then begin
            Sparse.Triplet.add gtr pi ip_row 1.0;
            Sparse.Triplet.add gtr ip_row pi 1.0
          end;
          if mi >= 0 then begin
            Sparse.Triplet.add gtr mi ip_row (-1.0);
            Sparse.Triplet.add gtr ip_row mi (-1.0)
          end)
        st.terminals)
    stamp_offsets;
  {
    n;
    g = Sparse.Csr.of_triplet gtr;
    c = Sparse.Csr.of_triplet ctr;
    sources = List.rev !sources;
    vsources = List.rev !vsources;
    nonlinear = List.rev !nonlinear;
    symmetric = !symmetric;
  }

(* b(t): source currents into nodes *)
let rhs_at sys t b =
  Linalg.Vec.fill b 0.0;
  List.iter
    (fun s ->
      let v = Circuit.Waveform.eval s.wave t in
      if s.src_n2 >= 0 then b.(s.src_n2) <- b.(s.src_n2) +. v;
      if s.src_n1 >= 0 then b.(s.src_n1) <- b.(s.src_n1) -. v)
    sys.sources;
  List.iter
    (fun vs -> b.(vs.vs_row) <- b.(vs.vs_row) +. Circuit.Waveform.eval vs.vs_wave t)
    sys.vsources

(* nonlinear KCL currents q(x) *)
let add_nonlinear_currents sys x q =
  List.iter
    (fun e ->
      let v1 = if e.nl_n1 >= 0 then x.(e.nl_n1) else 0.0 in
      let v2 = if e.nl_n2 >= 0 then x.(e.nl_n2) else 0.0 in
      let i = e.i_of_v (v1 -. v2) in
      if e.nl_n1 >= 0 then q.(e.nl_n1) <- q.(e.nl_n1) +. i;
      if e.nl_n2 >= 0 then q.(e.nl_n2) <- q.(e.nl_n2) -. i)
    sys.nonlinear

(* linear-solver backends over A = G + γC (+ nonlinear Jacobian) *)
type backend_state =
  | Dense_backend of Linalg.Mat.t (* dense A without nonlinear part *)
  | Skyline_backend of Sympvl.Pencil.t
    (* shared pencil context over (G, C): RCM ordering and envelope
       symbolic phase run once; every Newton refactorisation is a pure
       numeric phase at shift γ with the Jacobian stamps as extras *)

let choose_backend sys reduced =
  (* voltage-source and reduced-stamp rows are saddle points (zero
     diagonal): the unpivoted skyline factorisation cannot be relied
     on there, so those systems go through dense LU *)
  if (not sys.symmetric) || reduced <> [] || sys.vsources <> [] || sys.n <= 60 then `Dense
  else `Skyline

let run ?opts ?(reduced = []) ~observe nl =
  let opts =
    match opts with Some o -> o | None -> default ~dt:1e-10 ~t_stop:1e-8
  in
  let sys = assemble nl reduced in
  let n = sys.n in
  let steps = int_of_float (Float.round (opts.t_stop /. opts.dt)) in
  let gamma =
    match opts.method_ with `Backward_euler -> 1.0 /. opts.dt | `Trapezoidal -> 2.0 /. opts.dt
  in
  let a_lin = Sparse.Csr.add ~alpha:1.0 ~beta:gamma sys.g sys.c in
  let backend_kind = choose_backend sys reduced in
  let factorizations = ref 0 in
  let newton_total = ref 0 in
  let backend =
    match backend_kind with
    | `Dense -> Dense_backend (Sparse.Csr.to_dense a_lin)
    | `Skyline ->
      let ctx = Sympvl.Pencil.of_matrices sys.g sys.c in
      (* widen the shared envelope once so the per-iteration Jacobian
         stamps (which need not lie in the linear pattern) fit *)
      let positions =
        List.concat_map
          (fun e ->
            (if e.nl_n1 >= 0 then [ (e.nl_n1, e.nl_n1) ] else [])
            @ (if e.nl_n2 >= 0 then [ (e.nl_n2, e.nl_n2) ] else [])
            @
            if e.nl_n1 >= 0 && e.nl_n2 >= 0 then [ (e.nl_n1, e.nl_n2) ] else [])
          sys.nonlinear
      in
      if positions <> [] then Sympvl.Pencil.reserve ctx (Array.of_list positions);
      Skyline_backend ctx
  in
  (* factor A plus the nonlinear Jacobian stamps at linearisation
     point x (entries g_eq between the element nodes) *)
  let factor_with_jacobian x =
    incr factorizations;
    let jac_entries =
      List.map
        (fun e ->
          let v1 = if e.nl_n1 >= 0 then x.(e.nl_n1) else 0.0 in
          let v2 = if e.nl_n2 >= 0 then x.(e.nl_n2) else 0.0 in
          (e, e.di_dv (v1 -. v2)))
        sys.nonlinear
    in
    match backend with
    | Dense_backend base ->
      let a = Linalg.Mat.copy base in
      List.iter
        (fun (e, g) ->
          if e.nl_n1 >= 0 then Linalg.Mat.add_to a e.nl_n1 e.nl_n1 g;
          if e.nl_n2 >= 0 then Linalg.Mat.add_to a e.nl_n2 e.nl_n2 g;
          if e.nl_n1 >= 0 && e.nl_n2 >= 0 then begin
            Linalg.Mat.add_to a e.nl_n1 e.nl_n2 (-.g);
            Linalg.Mat.add_to a e.nl_n2 e.nl_n1 (-.g)
          end)
        jac_entries;
      let lu = Linalg.Lu.factor a in
      fun b -> Linalg.Lu.solve_vec lu b
    | Skyline_backend ctx ->
      let extra =
        List.concat_map
          (fun (e, g) ->
            (if e.nl_n1 >= 0 then [ (e.nl_n1, e.nl_n1, g) ] else [])
            @ (if e.nl_n2 >= 0 then [ (e.nl_n2, e.nl_n2, g) ] else [])
            @
            if e.nl_n1 >= 0 && e.nl_n2 >= 0 then [ (e.nl_n1, e.nl_n2, -.g) ]
            else [])
          jac_entries
      in
      let fac =
        if extra = [] then Sympvl.Pencil.factor ctx ~shift:gamma
        else Sympvl.Pencil.factor_with ctx ~shift:gamma ~extra:(Array.of_list extra)
      in
      fac.Sympvl.Factor.solve
  in
  let linear = sys.nonlinear = [] in
  let solve_linear = if linear then Some (factor_with_jacobian (Linalg.Vec.create n)) else None in
  let x = Linalg.Vec.create n in
  let b_now = Linalg.Vec.create n and b_next = Linalg.Vec.create n in
  rhs_at sys 0.0 b_now;
  (* DC operating point: sources active at t = 0 need a consistent
     start (G x₀ + q(x₀) = b(0)); integrating a DAE from an
     inconsistent state makes trapezoidal ring and backward Euler
     smear. The Jacobian is regularised with a vanishing C term so
     floating nodes and inductor rows stay factorable. *)
  if Linalg.Vec.norm_inf b_now > 0.0 then begin
    let gamma_dc = gamma *. 1e-9 in
    let a_dc = Sparse.Csr.add ~alpha:1.0 ~beta:gamma_dc sys.g sys.c in
    let solve_dc jac_x =
      incr factorizations;
      let a = Sparse.Csr.to_dense a_dc in
      List.iter
        (fun e ->
          let v1 = if e.nl_n1 >= 0 then jac_x.(e.nl_n1) else 0.0 in
          let v2 = if e.nl_n2 >= 0 then jac_x.(e.nl_n2) else 0.0 in
          let g = e.di_dv (v1 -. v2) in
          if e.nl_n1 >= 0 then Linalg.Mat.add_to a e.nl_n1 e.nl_n1 g;
          if e.nl_n2 >= 0 then Linalg.Mat.add_to a e.nl_n2 e.nl_n2 g;
          if e.nl_n1 >= 0 && e.nl_n2 >= 0 then begin
            Linalg.Mat.add_to a e.nl_n1 e.nl_n2 (-.g);
            Linalg.Mat.add_to a e.nl_n2 e.nl_n1 (-.g)
          end)
        sys.nonlinear;
      let lu = Linalg.Lu.factor a in
      fun b -> Linalg.Lu.solve_vec lu b
    in
    let gx = Linalg.Vec.create n in
    let converged = ref false in
    let it = ref 0 in
    let max_it = if linear then 1 else opts.newton_max in
    while (not !converged) && !it < max_it do
      incr it;
      let solve = solve_dc x in
      Sparse.Csr.mul_vec_into sys.g x gx;
      let q = Linalg.Vec.create n in
      add_nonlinear_currents sys x q;
      let r = Linalg.Vec.init n (fun i -> b_now.(i) -. gx.(i) -. q.(i)) in
      let delta = solve r in
      Linalg.Vec.axpy 1.0 delta x;
      if
        Linalg.Vec.norm_inf delta
        <= opts.newton_tol *. Float.max 1.0 (Linalg.Vec.norm_inf x)
      then converged := true
    done;
    if (not linear) && not !converged then raise (Convergence_failure 0.0)
  end;
  let times = Array.make (steps + 1) 0.0 in
  let obs_rows = List.map (fun nd -> row_of_node nd) observe in
  let obs_data = List.map (fun _ -> Array.make (steps + 1) 0.0) observe in
  let record k =
    List.iteri
      (fun oi r ->
        (List.nth obs_data oi).(k) <- (if r >= 0 then x.(r) else 0.0))
      obs_rows
  in
  record 0;
  let gx = Linalg.Vec.create n and cx = Linalg.Vec.create n in
  for k = 1 to steps do
    let t_next = float_of_int k *. opts.dt in
    times.(k) <- t_next;
    rhs_at sys t_next b_next;
    (* right-hand side of the step equation *)
    let rhs = Linalg.Vec.create n in
    Sparse.Csr.mul_vec_into sys.c x cx;
    (match opts.method_ with
    | `Backward_euler ->
      for i = 0 to n - 1 do
        rhs.(i) <- b_next.(i) +. (gamma *. cx.(i))
      done
    | `Trapezoidal ->
      Sparse.Csr.mul_vec_into sys.g x gx;
      let q0 = Linalg.Vec.create n in
      add_nonlinear_currents sys x q0;
      for i = 0 to n - 1 do
        rhs.(i) <-
          b_next.(i) +. b_now.(i) +. (gamma *. cx.(i)) -. gx.(i) -. q0.(i)
      done);
    (* solve A x_{k+1} + q(x_{k+1}) = rhs by Newton *)
    (match solve_linear with
    | Some solve ->
      let xn = solve rhs in
      Array.blit xn 0 x 0 n
    | None ->
      let converged = ref false in
      let it = ref 0 in
      while (not !converged) && !it < opts.newton_max do
        incr it;
        incr newton_total;
        let solve = factor_with_jacobian x in
        (* residual r = rhs − A x − q(x); Newton update J δ = r *)
        let ax = Sparse.Csr.mul_vec a_lin x in
        let q = Linalg.Vec.create n in
        add_nonlinear_currents sys x q;
        let r = Linalg.Vec.create n in
        for i = 0 to n - 1 do
          r.(i) <- rhs.(i) -. ax.(i) -. q.(i)
        done;
        let delta = solve r in
        Linalg.Vec.axpy 1.0 delta x;
        if Linalg.Vec.norm_inf delta <= opts.newton_tol *. Float.max 1.0 (Linalg.Vec.norm_inf x)
        then converged := true
      done;
      if not !converged then raise (Convergence_failure t_next));
    Array.blit b_next 0 b_now 0 n;
    record k
  done;
  let names = List.map (fun nd -> Circuit.Netlist.node_name nl nd) observe in
  {
    times;
    voltages = List.combine names obs_data;
    steps;
    newton_iterations = !newton_total;
    factorizations = !factorizations;
    backend = backend_kind;
  }

let max_deviation r1 r2 =
  assert (Array.length r1.times = Array.length r2.times);
  List.fold_left2
    (fun acc (_, w1) (_, w2) ->
      let worst = ref acc in
      Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. w2.(i)))) w1;
      !worst)
    0.0 r1.voltages r2.voltages
