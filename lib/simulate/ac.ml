type sweep = {
  freqs : float array;
  z : Linalg.Cmat.t array;
  port_names : string array;
}

(* The reusable symbolic phase is the shared pencil context
   (Sympvl.Pencil): RCM ordering of the merged pattern, envelope with
   pre-scattered G/C rows, and per-port sparse patterns of the
   permuted B — used both to build the right-hand side and for the
   BᵀX dot products. The sweep below runs the split-complex numeric
   kernel against it at each frequency. *)
type workspace = Sympvl.Pencil.t

let workspace (m : Circuit.Mna.t) =
  Obs.with_span "ac.symbolic" @@ fun () -> Sympvl.Pencil.create m

let z_at_ws (m : Circuit.Mna.t) ws s =
  (* per-frequency span on the calling domain's track: worker domains
     of the pool each record into their own buffer, merged at the
     join, so tracing cannot perturb the pooled sweep *)
  let traced = Obs.tracing () in
  let t_start = if traced then Obs.now () else 0.0 in
  if traced then
    Obs.span_begin ~args:[ ("im_s", Obs.Float s.Complex.im) ] "ac.point";
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let n = Sympvl.Pencil.n ws and p = Sympvl.Pencil.p ws in
  let port_idx = Sympvl.Pencil.port_idx ws and port_val = Sympvl.Pencil.port_val ws in
  let fac = Sympvl.Pencil.factor_complex ws var in
  let z = Linalg.Cmat.create p p in
  let x_re = Array.make n 0.0 and x_im = Array.make n 0.0 in
  if traced then Obs.span_begin "ac.solve";
  for c = 0 to p - 1 do
    Array.fill x_re 0 n 0.0;
    Array.fill x_im 0 n 0.0;
    let ci = port_idx.(c) and cv = port_val.(c) in
    for k = 0 to Array.length ci - 1 do
      x_re.(ci.(k)) <- cv.(k)
    done;
    Sympvl.Pencil.csolve_split fac x_re x_im;
    for r = 0 to p - 1 do
      let ri = port_idx.(r) and rv = port_val.(r) in
      let sre = ref 0.0 and sim = ref 0.0 in
      for k = 0 to Array.length ri - 1 do
        let i = ri.(k) in
        sre := !sre +. (rv.(k) *. x_re.(i));
        sim := !sim +. (rv.(k) *. x_im.(i))
      done;
      Linalg.Cmat.set z r c { Complex.re = !sre; im = !sim }
    done
  done;
  if traced then Obs.span_end ();
  let z =
    match m.Circuit.Mna.gain with
    | Circuit.Mna.Unit -> z
    | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z
  in
  if traced then begin
    Obs.count "ac.points" 1;
    Obs.countf "ac.point_seconds" (Obs.now () -. t_start);
    Obs.span_end ()
  end;
  z

let z_at m s = z_at_ws m (workspace m) s

let run_points ?jobs (m : Circuit.Mna.t) ws freqs =
  let point k =
    (* checked-pool mode: tag this slot so overlapping writers across
       concurrently pooled kernels are caught, not just within a batch *)
    if San.race () then San.Race.note_write ~tag:"ac.point" k;
    z_at_ws m ws (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(k)))
  in
  (* every point is independent and written into its own slot, so the
     result is bitwise identical at any job count *)
  match jobs with
  | Some j ->
    if j <= 1 then Array.init (Array.length freqs) point
    else
      Parallel.Pool.parallel_map (Parallel.pool_for ~jobs:j) (Array.length freqs)
        point
  | None -> Parallel.Pool.parallel_map (Parallel.get ()) (Array.length freqs) point

let sweep_ws ?jobs (m : Circuit.Mna.t) ws freqs =
  if Obs.tracing () then
    Obs.span_begin ~args:[ ("points", Obs.Int (Array.length freqs)) ] "ac.sweep";
  let z = run_points ?jobs m ws freqs in
  if Obs.tracing () then Obs.span_end ();
  { freqs; z; port_names = m.Circuit.Mna.port_names }

let sweep ?jobs (m : Circuit.Mna.t) freqs =
  if Obs.tracing () then
    Obs.span_begin ~args:[ ("points", Obs.Int (Array.length freqs)) ] "ac.sweep";
  let ws = workspace m in
  let z = run_points ?jobs m ws freqs in
  if Obs.tracing () then Obs.span_end ();
  { freqs; z; port_names = m.Circuit.Mna.port_names }

let log_freqs ?(points = 200) f_lo f_hi =
  assert (f_lo > 0.0 && f_hi > f_lo && points >= 2);
  let lg_lo = log10 f_lo and lg_hi = log10 f_hi in
  Array.init points (fun i ->
      let t = float_of_int i /. float_of_int (points - 1) in
      10.0 ** (lg_lo +. (t *. (lg_hi -. lg_lo))))

let model_sweep eval freqs =
  Parallel.Pool.parallel_map (Parallel.get ()) (Array.length freqs) (fun k ->
      eval (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(k))))

let max_rel_error sw zs =
  assert (Array.length zs = Array.length sw.z);
  let worst = ref 0.0 in
  Array.iteri
    (fun i ze ->
      let zr = zs.(i) in
      let err = Linalg.Cmat.dist_max ze zr /. Float.max (Linalg.Cmat.max_abs ze) 1e-300 in
      worst := Float.max !worst err)
    sw.z;
  !worst
