type sweep = {
  freqs : float array;
  z : Linalg.Cmat.t array;
  port_names : string array;
}

(* Reusable workspace for repeated complex factorisations, split into a
   one-time symbolic phase and a per-frequency numeric phase:
   - [env] is the RCM-permuted pencil's merged envelope with the G and
     C entries pre-scattered into envelope-aligned rows, so each
     frequency point assembles and factors without touching
     [Csr.get] or re-running the envelope analysis;
   - [port_idx]/[port_val] hold, per port, the rows of the permuted B
     that carry a nonzero entry (and the entries), used both to build
     the sparse right-hand side and for the BᵀX dot products. *)
type workspace = {
  env : Sparse.Skyline.pencil_env;
  port_idx : int array array;
  port_val : float array array;
  n : int;
  p : int;
}

let workspace (m : Circuit.Mna.t) =
  Obs.with_span "ac.symbolic" @@ fun () ->
  let pattern = Sparse.Csr.add m.Circuit.Mna.g m.Circuit.Mna.c in
  let perm = Sparse.Rcm.order pattern in
  let gp = Sparse.Csr.permute_sym m.Circuit.Mna.g perm in
  let cp = Sparse.Csr.permute_sym m.Circuit.Mna.c perm in
  let n = m.Circuit.Mna.n in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let env = Sparse.Skyline.pencil_env gp cp in
  let port_idx = Array.make p [||] and port_val = Array.make p [||] in
  for c = 0 to p - 1 do
    let idx = ref [] and v = ref [] in
    for i = n - 1 downto 0 do
      let bi = Linalg.Mat.get m.Circuit.Mna.b perm.(i) c in
      if bi <> 0.0 then begin
        idx := i :: !idx;
        v := bi :: !v
      end
    done;
    port_idx.(c) <- Array.of_list !idx;
    port_val.(c) <- Array.of_list !v
  done;
  { env; port_idx; port_val; n; p }

let z_at_ws (m : Circuit.Mna.t) ws s =
  (* per-frequency span on the calling domain's track: worker domains
     of the pool each record into their own buffer, merged at the
     join, so tracing cannot perturb the pooled sweep *)
  let traced = Obs.tracing () in
  let t_start = if traced then Obs.now () else 0.0 in
  if traced then
    Obs.span_begin ~args:[ ("im_s", Obs.Float s.Complex.im) ] "ac.point";
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let fac = Sparse.Skyline.Complex_soa.factor_pencil ws.env var in
  let z = Linalg.Cmat.create ws.p ws.p in
  let x_re = Array.make ws.n 0.0 and x_im = Array.make ws.n 0.0 in
  if traced then Obs.span_begin "ac.solve";
  for c = 0 to ws.p - 1 do
    Array.fill x_re 0 ws.n 0.0;
    Array.fill x_im 0 ws.n 0.0;
    let ci = ws.port_idx.(c) and cv = ws.port_val.(c) in
    for k = 0 to Array.length ci - 1 do
      x_re.(ci.(k)) <- cv.(k)
    done;
    Sparse.Skyline.Complex_soa.solve_split fac x_re x_im;
    for r = 0 to ws.p - 1 do
      let ri = ws.port_idx.(r) and rv = ws.port_val.(r) in
      let sre = ref 0.0 and sim = ref 0.0 in
      for k = 0 to Array.length ri - 1 do
        let i = ri.(k) in
        sre := !sre +. (rv.(k) *. x_re.(i));
        sim := !sim +. (rv.(k) *. x_im.(i))
      done;
      Linalg.Cmat.set z r c { Complex.re = !sre; im = !sim }
    done
  done;
  if traced then Obs.span_end ();
  let z =
    match m.Circuit.Mna.gain with
    | Circuit.Mna.Unit -> z
    | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z
  in
  if traced then begin
    Obs.count "ac.points" 1;
    Obs.countf "ac.point_seconds" (Obs.now () -. t_start);
    Obs.span_end ()
  end;
  z

let z_at m s = z_at_ws m (workspace m) s

let sweep ?jobs (m : Circuit.Mna.t) freqs =
  if Obs.tracing () then
    Obs.span_begin ~args:[ ("points", Obs.Int (Array.length freqs)) ] "ac.sweep";
  let ws = workspace m in
  let point k = z_at_ws m ws (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(k))) in
  (* every point is independent and written into its own slot, so the
     result is bitwise identical at any job count *)
  let z =
    match jobs with
    | Some j ->
      if j <= 1 then Array.init (Array.length freqs) point
      else
        Parallel.Pool.with_pool ~jobs:j (fun pool ->
            Parallel.Pool.parallel_map pool (Array.length freqs) point)
    | None ->
      Parallel.Pool.parallel_map (Parallel.get ()) (Array.length freqs) point
  in
  if Obs.tracing () then Obs.span_end ();
  { freqs; z; port_names = m.Circuit.Mna.port_names }

let log_freqs ?(points = 200) f_lo f_hi =
  assert (f_lo > 0.0 && f_hi > f_lo && points >= 2);
  let lg_lo = log10 f_lo and lg_hi = log10 f_hi in
  Array.init points (fun i ->
      let t = float_of_int i /. float_of_int (points - 1) in
      10.0 ** (lg_lo +. (t *. (lg_hi -. lg_lo))))

let model_sweep eval freqs =
  Parallel.Pool.parallel_map (Parallel.get ()) (Array.length freqs) (fun k ->
      eval (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(k))))

let max_rel_error sw zs =
  assert (Array.length zs = Array.length sw.z);
  let worst = ref 0.0 in
  Array.iteri
    (fun i ze ->
      let zr = zs.(i) in
      let err = Linalg.Cmat.dist_max ze zr /. Float.max (Linalg.Cmat.max_abs ze) 1e-300 in
      worst := Float.max !worst err)
    sw.z;
  !worst
