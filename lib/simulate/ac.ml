type sweep = {
  freqs : float array;
  z : Linalg.Cmat.t array;
  port_names : string array;
}

(* reusable permuted workspace for repeated complex factorisations *)
type workspace = {
  gp : Sparse.Csr.t;
  cp : Sparse.Csr.t;
  bp : Linalg.Mat.t;
  n : int;
  p : int;
}

let workspace (m : Circuit.Mna.t) =
  let pattern = Sparse.Csr.add m.Circuit.Mna.g m.Circuit.Mna.c in
  let perm = Sparse.Rcm.order pattern in
  let gp = Sparse.Csr.permute_sym m.Circuit.Mna.g perm in
  let cp = Sparse.Csr.permute_sym m.Circuit.Mna.c perm in
  let n = m.Circuit.Mna.n in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let bp =
    Linalg.Mat.init n p (fun i j -> Linalg.Mat.get m.Circuit.Mna.b perm.(i) j)
  in
  { gp; cp; bp; n; p }

let z_at_ws (m : Circuit.Mna.t) ws s =
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let fac = Sparse.Skyline.factor_complex var ws.gp ws.cp in
  let z = Linalg.Cmat.create ws.p ws.p in
  for c = 0 to ws.p - 1 do
    let b = Array.init ws.n (fun i -> Linalg.Cx.re (Linalg.Mat.get ws.bp i c)) in
    let x = Sparse.Skyline.Complex_sym.solve fac b in
    for r = 0 to ws.p - 1 do
      let s_acc = ref Linalg.Cx.zero in
      for i = 0 to ws.n - 1 do
        let bi = Linalg.Mat.get ws.bp i r in
        if bi <> 0.0 then s_acc := Linalg.Cx.(!s_acc +: smul bi x.(i))
      done;
      Linalg.Cmat.set z r c !s_acc
    done
  done;
  match m.Circuit.Mna.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

let z_at m s = z_at_ws m (workspace m) s

let sweep (m : Circuit.Mna.t) freqs =
  let ws = workspace m in
  let z =
    Array.map
      (fun f -> z_at_ws m ws (Linalg.Cx.im (2.0 *. Float.pi *. f)))
      freqs
  in
  { freqs; z; port_names = m.Circuit.Mna.port_names }

let log_freqs ?(points = 200) f_lo f_hi =
  assert (f_lo > 0.0 && f_hi > f_lo && points >= 2);
  let lg_lo = log10 f_lo and lg_hi = log10 f_hi in
  Array.init points (fun i ->
      let t = float_of_int i /. float_of_int (points - 1) in
      10.0 ** (lg_lo +. (t *. (lg_hi -. lg_lo))))

let model_sweep eval freqs =
  Array.map (fun f -> eval (Linalg.Cx.im (2.0 *. Float.pi *. f))) freqs

let max_rel_error sw zs =
  assert (Array.length zs = Array.length sw.z);
  let worst = ref 0.0 in
  Array.iteri
    (fun i ze ->
      let zr = zs.(i) in
      let err = Linalg.Cmat.dist_max ze zr /. Float.max (Linalg.Cmat.max_abs ze) 1e-300 in
      worst := Float.max !worst err)
    sw.z;
  !worst
