(** Exact AC (frequency-domain) analysis.

    Computes the multi-port transfer function [Z(s)] of an assembled
    MNA pencil by direct complex-symmetric factorisation of
    [(G + var·C)] at each frequency point — the "exact analysis"
    reference curves of the paper's Figures 2–4.

    The sweep is split into a one-time symbolic phase (RCM ordering,
    merged envelope, G/C pre-scatter, per-port sparse B patterns) and
    a per-frequency numeric phase running the split-complex (SoA)
    skyline kernel; frequency points are distributed over the shared
    {!Parallel} pool. Every point is independent, so the sweep output
    is bitwise identical to a sequential run at any job count. *)

type sweep = {
  freqs : float array;  (** In Hz. *)
  z : Linalg.Cmat.t array;  (** [Z(j2πf)], one [p×p] matrix per point. *)
  port_names : string array;
}

type workspace = Sympvl.Pencil.t
(** Reusable symbolic phase of the sweep — the shared pencil context
    (RCM ordering, merged envelope with pre-scattered G/C rows,
    per-port sparse B patterns). Build once with {!workspace}; each
    {!z_at_ws} call is then a pure numeric factor + solve. Because it
    {e is} a {!Sympvl.Pencil.t}, the same context can be handed to
    {!Sympvl.Reduce.mna} or {!Sympvl.Moments.exact} to share the
    symbolic phase between exact analysis and reduction. *)

val workspace : Circuit.Mna.t -> workspace

val z_at_ws : Circuit.Mna.t -> workspace -> Complex.t -> Linalg.Cmat.t
(** [z_at_ws m ws s] — {!z_at} against a precomputed symbolic phase. *)

val z_at : Circuit.Mna.t -> Complex.t -> Linalg.Cmat.t
(** [z_at m s] evaluates the exact [Z(s)] at one physical complex
    frequency (gain and variable conventions as in {!Sympvl.Model.eval}). *)

val sweep_ws : ?jobs:int -> Circuit.Mna.t -> workspace -> float array -> sweep
(** {!sweep} against a precomputed symbolic phase — the serve daemon's
    batching path, which unions the missing frequency points of a
    batch of same-model requests into one pooled call. Same
    bitwise-identical-at-any-job-count guarantee. *)

val sweep : ?jobs:int -> Circuit.Mna.t -> float array -> sweep
(** [sweep m freqs] evaluates along the [jω] axis. [jobs] overrides
    the shared pool with a private one of that size for this sweep
    ([jobs = 1] forces plain sequential evaluation); without it the
    shared {!Parallel.get} pool is used. *)

val log_freqs : ?points:int -> float -> float -> float array
(** [log_freqs f_lo f_hi] — logarithmically spaced frequency grid
    (default 200 points). *)

val model_sweep :
  (Complex.t -> Linalg.Cmat.t) -> float array -> Linalg.Cmat.t array
(** Sweep any evaluator (e.g. [Model.eval model]) on the same grid. *)

val max_rel_error : sweep -> Linalg.Cmat.t array -> float
(** Worst relative (max-norm) deviation over the sweep — the
    figure-of-merit used in EXPERIMENTS.md. *)
