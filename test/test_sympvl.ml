(* Tests for the SyMPVL core: factorisation front-end, band Lanczos
   invariants, matrix-Padé moment matching, stability/passivity. *)

module Factor = Sympvl.Factor
module Band_lanczos = Sympvl.Band_lanczos
module Model = Sympvl.Model
module Reduce = Sympvl.Reduce
module Moments = Sympvl.Moments

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* dense reference evaluation of Z(s) = gain · Bᵀ(G + var·C)⁻¹B *)
let z_exact (m : Circuit.Mna.t) s =
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let gd = Sparse.Csr.to_dense m.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense m.Circuit.Mna.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one gd var cd in
  let b = Linalg.Cmat.of_real m.Circuit.Mna.b in
  let z = Linalg.Cmat.mul (Linalg.Cmat.transpose b) (Linalg.Cmat.solve k b) in
  match m.Circuit.Mna.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

(* ------------------------------------------------------------------ *)
(* Factor front-end                                                   *)

let test_factor_spd_definite () =
  (* random_rc always has a resistive path to ground: G is PD *)
  let nl = Circuit.Generators.random_rc ~nodes:20 ~extra_edges:15 ~seed:11 () in
  let m = Circuit.Mna.assemble_rc nl in
  let f = Factor.auto m.Circuit.Mna.g in
  Alcotest.(check bool) "definite" true f.Factor.definite;
  (* M J Mᵀ x = G x for random x, via solve: G(G⁻¹b) = b *)
  let b = Linalg.Vec.init f.Factor.n (fun i -> sin (float_of_int i)) in
  let x = f.Factor.solve b in
  let gx = Sparse.Csr.mul_vec m.Circuit.Mna.g x in
  checkf "solve consistent" ~tol:1e-9 0.0 (Linalg.Vec.dist_inf gx b)

let test_factor_indefinite_rlc () =
  let nl = Circuit.Generators.rlc_line ~r_load:50.0 ~sections:5 () in
  let m = Circuit.Mna.assemble nl in
  let f = Factor.auto m.Circuit.Mna.g in
  Alcotest.(check bool) "indefinite" false f.Factor.definite;
  let b = Linalg.Vec.init f.Factor.n (fun i -> cos (float_of_int i)) in
  let x = f.Factor.solve b in
  let gx = Sparse.Csr.mul_vec m.Circuit.Mna.g x in
  checkf "indefinite solve" ~tol:1e-8 0.0 (Linalg.Vec.dist_inf gx b)

let test_factor_m_consistency () =
  (* G x = M J Mᵀ x: check via applying the factored ops *)
  let nl = Circuit.Generators.random_rc ~nodes:12 ~extra_edges:8 ~seed:12 () in
  let m = Circuit.Mna.assemble_rc nl in
  let f = Factor.auto m.Circuit.Mna.g in
  let x = Linalg.Vec.init f.Factor.n (fun i -> float_of_int (i + 1)) in
  (* y = M⁻¹ G M⁻ᵀ x should equal J x *)
  let gmt = Sparse.Csr.mul_vec m.Circuit.Mna.g (f.Factor.apply_mt_inv x) in
  let y = f.Factor.apply_m_inv gmt in
  let jx = Linalg.Vec.init f.Factor.n (fun i -> f.Factor.j.(i) *. x.(i)) in
  checkf "M⁻¹GM⁻ᵀ = J" ~tol:1e-8 0.0 (Linalg.Vec.dist_inf y jx)

let test_factor_singular_raises () =
  let nl, _ = Circuit.Generators.peec_mesh ~segments:12 () in
  let m = Circuit.Mna.assemble_lc nl in
  Alcotest.(check bool) "singular G detected" true
    (try
       ignore (Factor.auto m.Circuit.Mna.g);
       false
     with Factor.Singular _ -> true)

(* ------------------------------------------------------------------ *)
(* Band Lanczos invariants                                            *)

(* small dense SPD problem where we can verify everything densely *)
let small_problem seed n p =
  let rng = Linalg.Rng.create seed in
  let a = Linalg.Mat.random_spd rng n in
  let b = Linalg.Mat.random rng n p in
  (a, b)

let run_definite a b order =
  let n = a.Linalg.Mat.rows in
  Band_lanczos.run ~n_max:order
    ~op:(fun v -> Linalg.Mat.mul_vec a v)
    ~j:(Array.make n 1.0) ~start:b ()

let test_lanczos_orthogonality () =
  let a, b = small_problem 1 30 3 in
  let res = run_definite a b 12 in
  Alcotest.(check int) "achieved order" 12 res.Band_lanczos.order;
  (* VᵀJV = Δ = I in the definite case *)
  let gram = Linalg.Mat.gram res.Band_lanczos.vectors in
  checkf "VᵀV = I" ~tol:1e-8 0.0
    (Linalg.Mat.dist_max gram (Linalg.Mat.identity 12));
  checkf "Δ = I" ~tol:1e-8 0.0
    (Linalg.Mat.dist_max res.Band_lanczos.delta (Linalg.Mat.identity 12))

let test_lanczos_projection_identity () =
  (* T = Δ⁻¹ Vᵀ J A V — here Δ = J = I so T = VᵀAV *)
  let a, b = small_problem 2 25 2 in
  let res = run_definite a b 10 in
  let vtav = Linalg.Mat.congruence res.Band_lanczos.vectors a in
  checkf "T = VᵀAV" ~tol:1e-7 0.0 (Linalg.Mat.dist_max vtav res.Band_lanczos.t_mat)

let test_lanczos_start_block_factor () =
  (* start block = V ρ *)
  let a, b = small_problem 3 20 3 in
  let res = run_definite a b 9 in
  let vrho = Linalg.Mat.mul res.Band_lanczos.vectors res.Band_lanczos.rho in
  checkf "B = Vρ" ~tol:1e-8 0.0 (Linalg.Mat.dist_max vrho b)

let test_lanczos_t_banded_symmetric () =
  let a, b = small_problem 4 30 2 in
  let res = run_definite a b 14 in
  Alcotest.(check bool) "T symmetric" true
    (Linalg.Mat.is_symmetric ~tol:1e-7 res.Band_lanczos.t_mat);
  (* bandwidth p: entries beyond the band are ~0 *)
  let worst = ref 0.0 in
  for i = 0 to 13 do
    for j = 0 to 13 do
      if abs (i - j) > 2 then
        worst := Float.max !worst (Float.abs (Linalg.Mat.get res.Band_lanczos.t_mat i j))
    done
  done;
  checkf "T banded" ~tol:1e-7 0.0 !worst

let test_lanczos_deflation_dependent_columns () =
  (* duplicate starting column must deflate: p1 < p *)
  let rng = Linalg.Rng.create 5 in
  let a = Linalg.Mat.random_spd rng 15 in
  let b1 = Linalg.Mat.random rng 15 1 in
  let b = Linalg.Mat.create 15 2 in
  Linalg.Mat.set_col b 0 (Linalg.Mat.col b1 0);
  Linalg.Mat.set_col b 1 (Linalg.Vec.scale 2.0 (Linalg.Mat.col b1 0));
  let res = run_definite a b 8 in
  Alcotest.(check int) "p1 = 1 after deflation" 1 res.Band_lanczos.p1;
  Alcotest.(check bool) "deflation recorded" true (res.Band_lanczos.deflations <> [])

let test_lanczos_exhaustion () =
  (* order cannot exceed N: the process reports exhaustion *)
  let a, b = small_problem 6 6 2 in
  let res = run_definite a b 20 in
  Alcotest.(check bool) "exhausted" true res.Band_lanczos.exhausted;
  Alcotest.(check bool) "order ≤ N" true (res.Band_lanczos.order <= 6)

let test_lanczos_indefinite_j () =
  (* indefinite J: cluster-wise orthogonality must still hold *)
  let rng = Linalg.Rng.create 7 in
  let n = 24 in
  let j = Array.init n (fun i -> if i mod 3 = 0 then -1.0 else 1.0) in
  (* F = J⁻¹ A with A symmetric → J-symmetric operator *)
  let a = Linalg.Mat.random_symmetric rng n in
  let op v = Linalg.Vec.init n (fun i -> j.(i) *. (Linalg.Mat.mul_vec a v).(i)) in
  let b = Linalg.Mat.random rng n 2 in
  let res = Band_lanczos.run ~n_max:10 ~op ~j ~start:b () in
  let v = res.Band_lanczos.vectors in
  let jm = Linalg.Mat.init n n (fun i k -> if i = k then j.(i) else 0.0) in
  let vjv = Linalg.Mat.congruence v jm in
  (* off-block entries of VᵀJV must vanish; block entries equal Δ *)
  checkf "VᵀJV = Δ" ~tol:1e-7 0.0 (Linalg.Mat.dist_max vjv res.Band_lanczos.delta)

(* the look-ahead (cluster) machinery: engineer an exact J-breakdown
   (v₁ᵀJv₁ = 0) and verify the process recovers with a 2×2 cluster
   and still produces the correct Padé approximant *)
let lookahead_setup seed =
  let n = 12 in
  let rng = Linalg.Rng.create seed in
  let a = Linalg.Mat.random_symmetric rng n in
  let j = Array.init n (fun i -> if i < n / 2 then 1.0 else -1.0) in
  let op v = Linalg.Vec.init n (fun i -> j.(i) *. (Linalg.Mat.mul_vec a v).(i)) in
  let b = Linalg.Mat.create n 1 in
  Linalg.Mat.set b 0 0 1.0;
  Linalg.Mat.set b (n / 2) 0 1.0;
  (n, a, j, op, b)

let zhat_exact n a j b sigma =
  (* Ẑ(σ) = RᵀJ(I + σF)⁻¹R with F = J⁻¹A *)
  let f = Linalg.Mat.init n n (fun r c -> j.(r) *. Linalg.Mat.get a r c) in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one (Linalg.Mat.identity n) sigma f in
  let x = Linalg.Cmat.solve k (Linalg.Cmat.of_real b) in
  let jr =
    Linalg.Cmat.of_real (Linalg.Mat.init n 1 (fun r _ -> j.(r) *. Linalg.Mat.get b r 0))
  in
  Linalg.Cmat.get (Linalg.Cmat.mul (Linalg.Cmat.transpose jr) x) 0 0

let zn_model (res : Band_lanczos.result) sigma =
  let order = res.Band_lanczos.order in
  let k =
    Linalg.Cmat.lincomb Linalg.Cx.one (Linalg.Mat.identity order) sigma
      res.Band_lanczos.t_mat
  in
  let x =
    Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor k)
      (Linalg.Cmat.of_real res.Band_lanczos.rho)
  in
  let rd =
    Linalg.Mat.mul (Linalg.Mat.transpose res.Band_lanczos.rho) res.Band_lanczos.delta
  in
  Linalg.Cmat.get (Linalg.Cmat.mul (Linalg.Cmat.of_real rd) x) 0 0

let test_lanczos_look_ahead_cluster () =
  let n, a, j, op, b = lookahead_setup 31 in
  let res = Band_lanczos.run ~n_max:8 ~op ~j ~start:b () in
  Alcotest.(check bool) "look-ahead happened" true (res.Band_lanczos.look_ahead_steps >= 1);
  Alcotest.(check bool) "a multi-vector cluster exists" true
    (res.Band_lanczos.n_clusters < res.Band_lanczos.order);
  let jm = Linalg.Mat.diag (Linalg.Vec.init n (fun i -> j.(i))) in
  let vjv = Linalg.Mat.congruence res.Band_lanczos.vectors jm in
  checkf "cluster-wise J-orthogonality" ~tol:1e-10 0.0
    (Linalg.Mat.dist_max vjv res.Band_lanczos.delta);
  List.iter
    (fun im ->
      let sigma = Linalg.Cx.make 0.02 im in
      let ze = zhat_exact n a j b sigma in
      let zr = zn_model res sigma in
      checkf (Printf.sprintf "padé through look-ahead at %g" im) ~tol:1e-9 0.0
        (Linalg.Cx.abs Linalg.Cx.(ze -: zr) /. Linalg.Cx.abs ze))
    [ 0.01; 0.05; 0.1 ]

let test_lanczos_look_ahead_windowed () =
  (* the paper's windowed recurrences must also survive the breakdown *)
  let n, a, j, op, b = lookahead_setup 32 in
  let res = Band_lanczos.run ~full_ortho:false ~n_max:8 ~op ~j ~start:b () in
  let sigma = Linalg.Cx.make 0.02 0.05 in
  let ze = zhat_exact n a j b sigma in
  let zr = zn_model res sigma in
  checkf "windowed padé err" ~tol:1e-7 0.0
    (Linalg.Cx.abs Linalg.Cx.(ze -: zr) /. Linalg.Cx.abs ze)

(* ------------------------------------------------------------------ *)
(* Matrix-Padé property: moment matching                              *)

let test_moments_rc_single_port () =
  let nl = Circuit.Generators.rc_line ~sections:12 ~output_port:false () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:6 m in
  (* p = 1: must match 2n = 12 moments *)
  let matched = Moments.matched_count ~rtol:1e-5 model m in
  Alcotest.(check bool)
    (Printf.sprintf "matched %d >= 12" matched)
    true (matched >= 12)

let test_moments_rc_two_port () =
  let nl = Circuit.Generators.rc_line ~sections:12 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:8 m in
  (* p = 2: 2⌊8/2⌋ = 8 moments *)
  let matched = Moments.matched_count ~rtol:1e-5 model m in
  Alcotest.(check bool) (Printf.sprintf "matched %d >= 8" matched) true (matched >= 8)

let test_moments_rlc_indefinite () =
  let nl = Circuit.Generators.rlc_line ~sections:6 () in
  let m = Circuit.Mna.assemble nl in
  let model = Reduce.mna ~order:8 m in
  Alcotest.(check bool) "indefinite path" false model.Model.definite;
  let matched = Moments.matched_count ~rtol:1e-4 model m in
  Alcotest.(check bool) (Printf.sprintf "matched %d >= 8" matched) true (matched >= 8)

let test_moments_coupled_bus () =
  let nl = Circuit.Generators.coupled_rc_bus ~wires:3 ~sections:5 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:9 m in
  (* p = 3: 2⌊9/3⌋ = 6 *)
  let matched = Moments.matched_count ~rtol:1e-5 model m in
  Alcotest.(check bool) (Printf.sprintf "matched %d >= 6" matched) true (matched >= 6)

(* ------------------------------------------------------------------ *)
(* Transfer-function accuracy                                         *)

let rel_err_at m model s =
  let ze = z_exact m s and zr = Model.eval model s in
  Linalg.Cmat.dist_max ze zr /. Float.max (Linalg.Cmat.max_abs ze) 1e-300

let test_accuracy_rc_line () =
  let nl = Circuit.Generators.rc_line ~sections:40 () in
  let m = Circuit.Mna.assemble_rc nl in
  let opts =
    { (Reduce.default ~order:12) with Reduce.band = Some (1e6, 1e9) }
  in
  let model = Reduce.mna ~opts ~order:12 m in
  (* across the band where the line is active *)
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let err = rel_err_at m model s in
      Alcotest.(check bool)
        (Printf.sprintf "err %.2e at %g Hz" err f)
        true (err < 1e-4))
    [ 1e6; 1e7; 1e8; 1e9 ]

let test_accuracy_increases_with_order () =
  let nl = Circuit.Generators.coupled_rc_bus ~wires:4 ~sections:8 () in
  let m = Circuit.Mna.assemble_rc nl in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e9) in
  let errs =
    List.map
      (fun order ->
        let opts = { (Reduce.default ~order) with Reduce.band = Some (1e8, 2e9) } in
        rel_err_at m (Reduce.mna ~opts ~order m) s)
      [ 4; 12; 24 ]
  in
  match errs with
  | [ e1; e2; e3 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "monotone-ish %g %g %g" e1 e2 e3)
      true
      (e3 < e2 +. 1e-12 && e2 < e1 +. 1e-12 && e3 < 1e-8)
  | _ -> assert false

let test_accuracy_rlc_general () =
  let nl = Circuit.Generators.rlc_line ~sections:10 () in
  let m = Circuit.Mna.assemble nl in
  let opts = { (Reduce.default ~order:20) with Reduce.band = Some (1e7, 1e9) } in
  let model = Reduce.mna ~opts ~order:20 m in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e8) in
  let err = rel_err_at m model s in
  Alcotest.(check bool) (Printf.sprintf "rlc err %.2e" err) true (err < 1e-6)

let test_accuracy_lc_peec_with_shift () =
  let nl, _ = Circuit.Generators.peec_mesh ~segments:20 () in
  let m = Circuit.Mna.assemble_lc nl in
  (* G singular: Reduce must auto-shift (band-informed) and stay
     accurate *)
  let opts = { (Reduce.default ~order:16) with Reduce.band = Some (1e8, 5e9) } in
  let model = Reduce.mna ~opts ~order:16 m in
  Alcotest.(check bool) "shift applied" true (model.Model.shift > 0.0);
  Alcotest.(check bool) "definite (LC)" true model.Model.definite;
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 2e9) in
  let err = rel_err_at m model s in
  Alcotest.(check bool) (Printf.sprintf "lc err %.2e" err) true (err < 1e-5)

let test_scalar_sypvl () =
  let nl = Circuit.Generators.rc_line ~sections:20 () in
  let m = Circuit.Mna.assemble_rc nl in
  let opts = { (Reduce.default ~order:8) with Reduce.band = Some (1e7, 1e9) } in
  let model = Reduce.scalar ~opts ~order:8 ~port:0 m in
  Alcotest.(check int) "p = 1" 1 model.Model.p;
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e8) in
  let ze = Linalg.Cmat.get (z_exact m s) 0 0 in
  let zr = Linalg.Cmat.get (Model.eval model s) 0 0 in
  Alcotest.(check bool) "scalar accurate" true
    (Linalg.Cx.abs Linalg.Cx.(ze -: zr) /. Linalg.Cx.abs ze < 1e-6)

(* ------------------------------------------------------------------ *)
(* Stability and passivity certificates (Section 5)                   *)

let test_stability_rc_all_orders () =
  (* terminated bus: G nonsingular, expansion about 0 — the exact
     setting of the paper's Section 5 guarantee *)
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:200.0 ~wires:3 ~sections:6 () in
  let m = Circuit.Mna.assemble_rc nl in
  List.iter
    (fun order ->
      let model = Reduce.mna ~order m in
      Alcotest.(check bool) "definite" true model.Model.definite;
      (* T PSD → all poles on the negative real axis *)
      let tmin = Linalg.Eig_sym.min_eigenvalue model.Model.t_mat in
      Alcotest.(check bool)
        (Printf.sprintf "T ⪰ 0 at order %d (min %g)" order tmin)
        true
        (tmin > -1e-10);
      Array.iter
        (fun pole ->
          Alcotest.(check bool)
            (Printf.sprintf "pole %g ≤ 0" pole.Complex.re)
            true
            (pole.Complex.re <= 1e-9))
        (Model.poles model))
    [ 2; 5; 9; 15 ]

let test_passivity_rc_sampling () =
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:200.0 ~wires:3 ~sections:6 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:9 m in
  (* Re xᴴ Zₙ(jω) x ≥ 0 ⟺ hermitian part of Zₙ(jω) PSD *)
  List.iter
    (fun f ->
      let z = Model.eval_jw model (2.0 *. Float.pi *. f) in
      let me = Linalg.Cmat.min_eig_hermitian (Linalg.Cmat.hermitian_part z) in
      Alcotest.(check bool)
        (Printf.sprintf "passive at %g Hz (min eig %g)" f me)
        true
        (me > -1e-9))
    [ 1e3; 1e6; 1e8; 1e9; 1e10 ]

(* ------------------------------------------------------------------ *)
(* Model utilities                                                    *)

let test_model_truncate () =
  let nl = Circuit.Generators.rc_line ~sections:15 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:10 m in
  let small = Model.truncate model 4 in
  Alcotest.(check int) "order" 4 small.Model.order;
  (* truncation of a definite model is itself the order-4 model *)
  let direct = Reduce.mna ~order:4 m in
  let s = Linalg.Cx.im 1e8 in
  checkf "same Z" ~tol:1e-6 0.0
    (Linalg.Cmat.dist_max (Model.eval small s) (Model.eval direct s)
    /. Linalg.Cmat.max_abs (Model.eval direct s))

let test_model_state_space () =
  let nl = Circuit.Generators.rc_line ~sections:10 () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:6 m in
  let ghat, chat, rho = Model.state_space model in
  Alcotest.(check bool) "ĝ symmetric" true (Linalg.Mat.is_symmetric ~tol:1e-8 ghat);
  Alcotest.(check bool) "ĉ symmetric" true (Linalg.Mat.is_symmetric ~tol:1e-8 chat);
  (* state space evaluates to the same transfer function *)
  let s = Linalg.Cx.im 1e9 in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one ghat s chat in
  let x = Linalg.Cmat.solve k (Linalg.Cmat.of_real rho) in
  let z_ss = Linalg.Cmat.mul (Linalg.Cmat.of_real (Linalg.Mat.transpose rho)) x in
  checkf "state-space eval" ~tol:1e-8 0.0
    (Linalg.Cmat.dist_max z_ss (Model.eval model s) /. Linalg.Cmat.max_abs z_ss)

let test_model_dc_gain () =
  (* RC line: DC impedance from the input = sum of series resistances
     is wrong (line goes nowhere) — with no DC path to ground except
     none... use a line with a resistor to ground: single resistor. *)
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Circuit.Netlist.add_resistor nl a 0 7.0;
  Circuit.Netlist.add_capacitor nl a 0 1e-12;
  Circuit.Netlist.add_port nl "p" a;
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:1 m in
  checkf "dc gain = R" ~tol:1e-9 7.0 (Linalg.Mat.get (Model.dc_gain model) 0 0)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let prop_rc_stable_passive =
  QCheck.Test.make ~count:15 ~name:"sympvl: random RC models are stable"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl = Circuit.Generators.random_rc ~nodes:15 ~extra_edges:12 ~seed () in
      let m = Circuit.Mna.assemble_rc nl in
      let model = Reduce.mna ~order:6 m in
      model.Model.definite
      && Linalg.Eig_sym.min_eigenvalue model.Model.t_mat > -1e-9
      && Array.for_all (fun p -> p.Complex.re <= 1e-9) (Model.poles model))

let prop_moment_matching =
  QCheck.Test.make ~count:10 ~name:"sympvl: 2⌊n/p⌋ moments match on random RC"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl =
        Circuit.Generators.random_rc ~ports:2 ~nodes:14 ~extra_edges:10 ~seed ()
      in
      let m = Circuit.Mna.assemble_rc nl in
      let order = 6 in
      let model = Reduce.mna ~order m in
      Moments.matched_count ~rtol:1e-4 model m >= 2 * (order / 2))

let () =
  let qsuite =
    List.map (fun t -> Qtest.to_alcotest t) [ prop_rc_stable_passive; prop_moment_matching ]
  in
  Alcotest.run "sympvl-core"
    [
      ( "factor",
        [
          Alcotest.test_case "spd definite" `Quick test_factor_spd_definite;
          Alcotest.test_case "indefinite rlc" `Quick test_factor_indefinite_rlc;
          Alcotest.test_case "M consistency" `Quick test_factor_m_consistency;
          Alcotest.test_case "singular raises" `Quick test_factor_singular_raises;
        ] );
      ( "band_lanczos",
        [
          Alcotest.test_case "orthogonality" `Quick test_lanczos_orthogonality;
          Alcotest.test_case "projection identity" `Quick test_lanczos_projection_identity;
          Alcotest.test_case "start block factor" `Quick test_lanczos_start_block_factor;
          Alcotest.test_case "T banded symmetric" `Quick test_lanczos_t_banded_symmetric;
          Alcotest.test_case "deflation" `Quick test_lanczos_deflation_dependent_columns;
          Alcotest.test_case "exhaustion" `Quick test_lanczos_exhaustion;
          Alcotest.test_case "indefinite J" `Quick test_lanczos_indefinite_j;
          Alcotest.test_case "look-ahead cluster" `Quick test_lanczos_look_ahead_cluster;
          Alcotest.test_case "look-ahead windowed" `Quick test_lanczos_look_ahead_windowed;
        ] );
      ( "moments",
        [
          Alcotest.test_case "rc single port 2n" `Quick test_moments_rc_single_port;
          Alcotest.test_case "rc two port" `Quick test_moments_rc_two_port;
          Alcotest.test_case "rlc indefinite" `Quick test_moments_rlc_indefinite;
          Alcotest.test_case "coupled bus" `Quick test_moments_coupled_bus;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "rc line band" `Quick test_accuracy_rc_line;
          Alcotest.test_case "order sweep" `Quick test_accuracy_increases_with_order;
          Alcotest.test_case "rlc general" `Quick test_accuracy_rlc_general;
          Alcotest.test_case "lc peec shift" `Quick test_accuracy_lc_peec_with_shift;
          Alcotest.test_case "scalar sypvl" `Quick test_scalar_sypvl;
        ] );
      ( "stability",
        [
          Alcotest.test_case "rc all orders" `Quick test_stability_rc_all_orders;
          Alcotest.test_case "rc passivity sampling" `Quick test_passivity_rc_sampling;
        ] );
      ( "model",
        [
          Alcotest.test_case "truncate" `Quick test_model_truncate;
          Alcotest.test_case "state space" `Quick test_model_state_space;
          Alcotest.test_case "dc gain" `Quick test_model_dc_gain;
        ] );
      ("properties", qsuite);
    ]
