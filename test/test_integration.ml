(* End-to-end integration tests: full pipelines across parser, MNA,
   reduction, synthesis, simulation; parser fuzzing; failure
   injection; determinism. *)

module Model = Sympvl.Model
module Reduce = Sympvl.Reduce

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* pipelines                                                          *)

(* generate → print → parse → assemble → reduce → synthesize → print →
   parse → assemble → AC-compare against the original *)
let test_pipeline_roundtrip_multiport () =
  let original = Circuit.Generators.coupled_rc_bus ~terminate:100.0 ~wires:3 ~sections:8 () in
  let text = Circuit.Parser.to_string original in
  let reparsed = Circuit.Parser.parse_string text in
  let mna = Circuit.Mna.assemble_rc reparsed in
  let model = Reduce.mna ~order:12 mna in
  let names = Array.init 3 (fun i -> Printf.sprintf "port%d" i) in
  let syn, _ = Synth.Multiport.synthesize ~port_names:names model in
  let syn2 = Circuit.Parser.parse_string (Circuit.Parser.to_string syn) in
  let mna_syn = Circuit.Mna.assemble_rc syn2 in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z0 = Simulate.Ac.z_at mna s in
      let z1 = Simulate.Ac.z_at mna_syn s in
      checkf (Printf.sprintf "pipeline at %g" f) ~tol:1e-5 0.0
        (Linalg.Cmat.dist_max z0 z1 /. Linalg.Cmat.max_abs z0))
    [ 1e6; 1e8; 2e9 ]

(* scalar Foster pipeline validated in the time domain *)
let test_pipeline_foster_transient () =
  let original = Circuit.Generators.coupled_rc_bus ~terminate:100.0 ~wires:2 ~sections:8 () in
  let mna = Circuit.Mna.assemble_rc original in
  let model = Reduce.scalar ~order:8 ~port:0 mna in
  let foster, _ = Synth.Foster.synthesize model in
  let drive = Circuit.Waveform.ramp ~rise:2e-10 1e-3 in
  let opts = Simulate.Transient.default ~dt:1e-11 ~t_stop:2e-9 in
  (* original circuit, driven at port 0 *)
  let full = Circuit.Generators.coupled_rc_bus ~terminate:100.0 ~wires:2 ~sections:8 () in
  let p0 = Circuit.Netlist.node full "w0s0" in
  Circuit.Netlist.add_current_source full 0 p0 drive;
  let r_full = Simulate.Transient.run ~opts ~observe:[ p0 ] full in
  (* foster circuit *)
  let pf = Circuit.Netlist.node foster "port" in
  Circuit.Netlist.add_current_source foster 0 pf drive;
  let r_foster = Simulate.Transient.run ~opts ~observe:[ pf ] foster in
  let dev = Simulate.Transient.max_deviation r_full r_foster in
  Alcotest.(check bool) (Printf.sprintf "foster transient dev %.2e" dev) true (dev < 2e-3)

(* netlist file I/O through a temp file *)
let test_pipeline_file_io () =
  let nl = Circuit.Generators.rc_tree ~depth:3 () in
  let path = Filename.temp_file "sympvl_test" ".sp" in
  let oc = open_out path in
  output_string oc (Circuit.Parser.to_string nl);
  close_out oc;
  let nl2 = Circuit.Parser.parse_file path in
  Sys.remove path;
  Alcotest.(check bool) "same stats" true (Circuit.Netlist.stats nl2 = Circuit.Netlist.stats nl)

(* PEEC end-to-end with the generalised output column *)
let test_pipeline_peec_output_column () =
  let nl, out_l = Circuit.Generators.peec_mesh ~segments:14 () in
  let mna = Circuit.Mna.assemble_lc nl in
  let w = Circuit.Mna.observe_inductor_current nl mna out_l in
  let mna = Circuit.Mna.append_output_column mna w "iout" in
  let opts = { (Reduce.default ~order:14) with Reduce.band = Some (1e8, 3e9) } in
  let model = Reduce.mna ~opts ~order:14 mna in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 8e8) in
  let ze = Simulate.Ac.z_at mna s in
  let zm = Model.eval model s in
  checkf "peec pipeline" ~tol:1e-6 0.0
    (Linalg.Cmat.dist_max ze zm /. Linalg.Cmat.max_abs ze)

(* determinism: bit-identical models from identical inputs *)
let test_determinism () =
  let build () =
    let nl = Circuit.Generators.random_rc ~nodes:18 ~extra_edges:12 ~seed:77 () in
    Reduce.mna ~order:8 (Circuit.Mna.assemble_rc nl)
  in
  let a = build () and b = build () in
  checkf "identical T" ~tol:0.0 0.0 (Linalg.Mat.dist_max a.Model.t_mat b.Model.t_mat);
  checkf "identical rho" ~tol:0.0 0.0 (Linalg.Mat.dist_max a.Model.rho b.Model.rho)

(* ------------------------------------------------------------------ *)
(* failure injection                                                  *)

let test_failure_order_exceeds_dimension () =
  (* requesting order > N exhausts the Krylov space; the model must
     flag it and still evaluate exactly *)
  let nl = Circuit.Generators.random_rc ~nodes:6 ~extra_edges:4 ~seed:3 () in
  let mna = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:50 mna in
  Alcotest.(check bool) "exhausted flagged" true model.Model.exhausted;
  Alcotest.(check bool) "order capped" true (model.Model.order <= 6);
  let s = Linalg.Cx.im 1e8 in
  let gd = Sparse.Csr.to_dense mna.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense mna.Circuit.Mna.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one gd s cd in
  let b = Linalg.Cmat.of_real mna.Circuit.Mna.b in
  let ze = Linalg.Cmat.mul (Linalg.Cmat.transpose b) (Linalg.Cmat.solve k b) in
  checkf "exact at exhaustion" ~tol:1e-8 0.0
    (Linalg.Cmat.dist_max ze (Model.eval model s) /. Linalg.Cmat.max_abs ze)

let test_failure_skyline_fallback () =
  (* a matrix whose natural ordering makes the unpivoted skyline break
     down (zero leading pivot) but which is perfectly factorable by
     the dense Bunch–Kaufman fallback *)
  let m = Linalg.Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let csr = Sparse.Csr.of_dense m in
  Alcotest.(check bool) "skyline path raises" true
    (try
       ignore (Sympvl.Factor.of_csr ~ordering:false csr);
       false
     with Sympvl.Factor.Singular _ -> true);
  let f = Sympvl.Factor.auto ~ordering:false csr in
  Alcotest.(check bool) "fallback is dense" true (f.Sympvl.Factor.kind = `Dense);
  let x = f.Sympvl.Factor.solve [| 1.0; 2.0 |] in
  checkf "solve via fallback x0" ~tol:1e-12 2.0 x.(0);
  checkf "solve via fallback x1" ~tol:1e-12 1.0 x.(1)

let test_failure_newton_divergence () =
  (* a pathological nonlinearity with a lying derivative starves
     Newton; the simulator must raise, not loop or return garbage *)
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Circuit.Netlist.add nl
    (Circuit.Netlist.Nonlinear_conductance
       {
         name = "bad";
         n1 = a;
         n2 = 0;
         i_of_v = (fun v -> 1e3 *. v *. v *. v);
         di_dv = (fun _ -> 1e-12);
         (* wrong on purpose *)
       });
  Circuit.Netlist.add_capacitor nl a 0 1e-12;
  Circuit.Netlist.add_current_source nl 0 a (Circuit.Waveform.ramp ~rise:1e-10 1.0);
  let opts =
    { (Simulate.Transient.default ~dt:1e-10 ~t_stop:1e-9) with Simulate.Transient.newton_max = 5 }
  in
  Alcotest.(check bool) "raises Convergence_failure" true
    (try
       ignore (Simulate.Transient.run ~opts ~observe:[ a ] nl);
       false
     with Simulate.Transient.Convergence_failure _ -> true)

let test_failure_all_ports_dependent () =
  (* two identical port columns: one must deflate, and the model of
     the surviving space stays accurate *)
  let nl = Circuit.Generators.rc_line ~sections:10 ~output_port:false () in
  let input = Circuit.Netlist.node nl "n0" in
  Circuit.Netlist.add_resistor nl (Circuit.Netlist.node nl "n10") 0 50.0;
  Circuit.Netlist.add_port nl "dup" input;
  let mna = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:8 mna in
  Alcotest.(check bool) "deflated" true (model.Model.deflations >= 1);
  let s = Linalg.Cx.im 1e8 in
  let z = Model.eval model s in
  (* both ports are the same node: all four entries equal *)
  checkf "Z00 = Z01" ~tol:1e-9 0.0
    (Linalg.Cx.abs
       Linalg.Cx.(Linalg.Cmat.get z 0 0 -: Linalg.Cmat.get z 0 1));
  checkf "Z00 = Z11" ~tol:1e-9 0.0
    (Linalg.Cx.abs
       Linalg.Cx.(Linalg.Cmat.get z 0 0 -: Linalg.Cmat.get z 1 1))

let test_failure_empty_netlist_rejected () =
  let nl = Circuit.Netlist.create () in
  Alcotest.(check bool) "no ports rejected" true
    (try
       ignore (Circuit.Mna.assemble_rc nl);
       false
     with Circuit.Diagnostic.User_error _ -> true)

(* ------------------------------------------------------------------ *)
(* parser fuzzing                                                     *)

let garbage_line_gen =
  QCheck.Gen.(
    oneof
      [
        string_size ~gen:printable (int_bound 40);
        map
          (fun (a, b, c) -> Printf.sprintf "R%d %s %s" a b c)
          (triple small_nat (string_size ~gen:printable (int_bound 8))
             (string_size ~gen:printable (int_bound 8)));
        map (fun v -> Printf.sprintf ".port %s" v) (string_size ~gen:printable (int_bound 10));
      ])

let prop_parser_never_crashes =
  QCheck.Test.make ~count:200 ~name:"parser: garbage raises Parse_error or parses"
    (QCheck.make garbage_line_gen)
    (fun line ->
      match Circuit.Parser.parse_string (line ^ "\n") with
      | _ -> true
      | exception Circuit.Parser.Parse_error _ -> true
      | exception Invalid_argument _ -> true (* netlist-level validation *)
      | exception _ -> false)

let prop_roundtrip_random_rc =
  QCheck.Test.make ~count:40 ~name:"parser: random RC netlists roundtrip"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl = Circuit.Generators.random_rc ~nodes:10 ~extra_edges:8 ~seed () in
      let nl2 = Circuit.Parser.parse_string (Circuit.Parser.to_string nl) in
      Circuit.Netlist.stats nl2 = Circuit.Netlist.stats nl)

let prop_reduce_always_finite =
  QCheck.Test.make ~count:25 ~name:"pipeline: random RC reductions evaluate finite"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl = Circuit.Generators.random_rc ~ports:2 ~nodes:12 ~extra_edges:8 ~seed () in
      let model = Reduce.mna ~order:6 (Circuit.Mna.assemble_rc nl) in
      let z = Model.eval model (Linalg.Cx.make 1e5 1e9) in
      let ok = ref true in
      for i = 0 to 1 do
        for j = 0 to 1 do
          if not (Linalg.Cx.is_finite (Linalg.Cmat.get z i j)) then ok := false
        done
      done;
      !ok)

let () =
  let qsuite =
    List.map (fun t -> Qtest.to_alcotest t)
      [ prop_parser_never_crashes; prop_roundtrip_random_rc; prop_reduce_always_finite ]
  in
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "roundtrip multiport" `Quick test_pipeline_roundtrip_multiport;
          Alcotest.test_case "foster transient" `Quick test_pipeline_foster_transient;
          Alcotest.test_case "file io" `Quick test_pipeline_file_io;
          Alcotest.test_case "peec output column" `Quick test_pipeline_peec_output_column;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "failure_injection",
        [
          Alcotest.test_case "order exceeds dimension" `Quick test_failure_order_exceeds_dimension;
          Alcotest.test_case "skyline fallback" `Quick test_failure_skyline_fallback;
          Alcotest.test_case "newton divergence" `Quick test_failure_newton_divergence;
          Alcotest.test_case "dependent ports" `Quick test_failure_all_ports_dependent;
          Alcotest.test_case "empty netlist" `Quick test_failure_empty_netlist_rejected;
        ] );
      ("fuzz", qsuite);
    ]
