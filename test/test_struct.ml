(* Structural-analysis tests: maximum transversal, Dulmage–Mendelsohn,
   elimination trees / exact fill prediction, AMD ordering and the
   STR001–STR008 analyzer rules.

   The load-bearing property throughout: everything here is computed
   from the sparsity pattern alone, so predictions must match actual
   numerical factorisations exactly (no cancellation on the M-matrix
   workloads used). *)

module D = Circuit.Diagnostic
module SR = Analysis.Struct_rules

let pattern_of_lists n rows =
  let tr = Sparse.Triplet.create n n in
  List.iteri (fun i cols -> List.iter (fun j -> Sparse.Triplet.add tr i j 1.0) cols) rows;
  Sparse.Csr.of_triplet tr

(* random symmetric diagonally dominant M-matrix: SPD, and all factor
   entries are strictly nonzero wherever structurally nonzero, so
   symbolic prediction must equal the actual factor exactly *)
let random_spd rng n extra =
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i 2.0
  done;
  for _ = 1 to extra do
    let i = Linalg.Rng.int rng n and j = Linalg.Rng.int rng n in
    if i <> j then Sparse.Triplet.add_sym tr i j (-1.0 /. float_of_int (4 * n))
  done;
  Sparse.Csr.of_triplet tr

(* nnz of the lower-triangular dense Cholesky factor, diagonal
   included; structural zeros of L come out exactly 0.0 *)
let chol_nnz a =
  let f = Linalg.Chol.factor (Sparse.Csr.to_dense a) in
  let l = Linalg.Chol.l f in
  let n = a.Sparse.Csr.rows in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      if Linalg.Mat.get l i j <> 0.0 then incr c
    done
  done;
  !c

(* numerical rank by Gaussian elimination with complete pivoting *)
let numerical_rank (a : Sparse.Csr.t) =
  let n = a.Sparse.Csr.rows and m = a.Sparse.Csr.cols in
  let w = Array.make_matrix n m 0.0 in
  for i = 0 to n - 1 do
    Sparse.Csr.iter_row a i (fun j v -> w.(i).(j) <- v)
  done;
  let used_row = Array.make n false and used_col = Array.make m false in
  let rank = ref 0 in
  let running = ref true in
  while !running do
    let pi = ref (-1) and pj = ref (-1) and pv = ref 0.0 in
    for i = 0 to n - 1 do
      if not used_row.(i) then
        for j = 0 to m - 1 do
          if (not used_col.(j)) && Float.abs w.(i).(j) > !pv then begin
            pv := Float.abs w.(i).(j);
            pi := i;
            pj := j
          end
        done
    done;
    if !pv < 1e-9 then running := false
    else begin
      incr rank;
      used_row.(!pi) <- true;
      used_col.(!pj) <- true;
      for i = 0 to n - 1 do
        if not used_row.(i) then begin
          let f = w.(i).(!pj) /. w.(!pi).(!pj) in
          if f <> 0.0 then
            for j = 0 to m - 1 do
              if not used_col.(j) then w.(i).(j) <- w.(i).(j) -. (f *. w.(!pi).(j))
            done
        end
      done
    end
  done;
  !rank

let is_permutation n perm =
  let seen = Array.make n false in
  Array.iter (fun p -> seen.(p) <- true) perm;
  Array.length perm = n && Array.for_all Fun.id seen

(* ------------------------------------------------------------------ *)
(* Matching                                                           *)

let test_matching_singular () =
  (* row 2 only repeats columns already needed by rows 0 and 1 *)
  let a = pattern_of_lists 3 [ [ 0; 1 ]; [ 1 ]; [ 1 ] ] in
  let m = Sparse.Matching.maximum a in
  Alcotest.(check int) "rank" 2 m.Sparse.Matching.rank;
  Alcotest.(check int) "structural_rank" 2 (Sparse.Matching.structural_rank a);
  Alcotest.(check int) "one unmatched row" 1
    (List.length (Sparse.Matching.unmatched_rows m));
  Alcotest.(check (list int)) "unmatched col" [ 2 ] (Sparse.Matching.unmatched_cols m)

let test_matching_augmenting () =
  (* the greedy pass matches 0→0, 1→1 and leaves row 2 stuck on taken
     columns; only an augmenting path reaches rank 3 *)
  let a = pattern_of_lists 3 [ [ 0; 2 ]; [ 0 ]; [ 0; 1 ] ] in
  Alcotest.(check int) "rank 3 via augmentation" 3 (Sparse.Matching.structural_rank a)

let test_matching_empty_row () =
  let a = pattern_of_lists 3 [ [ 0 ]; []; [ 2 ] ] in
  let m = Sparse.Matching.maximum a in
  Alcotest.(check (list int)) "empty row unmatched" [ 1 ]
    (Sparse.Matching.unmatched_rows m)

(* ------------------------------------------------------------------ *)
(* Dulmage–Mendelsohn                                                 *)

let test_dm_parts () =
  let a = pattern_of_lists 3 [ [ 0; 1 ]; [ 1 ]; [ 1 ] ] in
  let dm = Sparse.Dm.decompose a in
  Alcotest.(check bool) "singular" false (Sparse.Dm.is_structurally_nonsingular dm);
  (* column 2 is empty: one undeterminable unknown, no equations *)
  Alcotest.(check int) "under-determined unknowns" 1 (Array.length dm.Sparse.Dm.hor_cols);
  Alcotest.(check int) "no equations cover them" 0 (Array.length dm.Sparse.Dm.hor_rows);
  (* rows 1 and 2 both hang off column 1: two equations, one unknown *)
  Alcotest.(check int) "over-determined equations" 2 (Array.length dm.Sparse.Dm.ver_rows);
  Alcotest.(check int) "over-determined unknowns" 1 (Array.length dm.Sparse.Dm.ver_cols);
  Alcotest.(check int) "square remainder" 1 (Array.length dm.Sparse.Dm.sq_rows)

let test_dm_btf_topological () =
  (* block upper-triangular pattern: {0,1} strongly connected, feeds 2;
     2 feeds 3. Blocks must come back in topological order. *)
  let a = pattern_of_lists 4 [ [ 0; 1 ]; [ 0; 1; 2 ]; [ 2; 3 ]; [ 3 ] ] in
  let dm = Sparse.Dm.decompose a in
  Alcotest.(check bool) "nonsingular" true (Sparse.Dm.is_structurally_nonsingular dm);
  Alcotest.(check int) "three blocks" 3 (Array.length dm.Sparse.Dm.blocks);
  let sizes = Array.map (fun (r, _) -> Array.length r) dm.Sparse.Dm.blocks in
  Alcotest.(check (array int)) "block sizes in order" [| 2; 1; 1 |] sizes;
  (* each block depends only on later blocks: cols of block k must not
     appear in rows of blocks > k *)
  let block_of = Array.make 4 (-1) in
  Array.iteri (fun k (rs, _) -> Array.iter (fun r -> block_of.(r) <- k) rs)
    dm.Sparse.Dm.blocks;
  for i = 0 to 3 do
    Sparse.Csr.iter_row a i (fun j _ ->
        Alcotest.(check bool) "no back edge" true (block_of.(j) >= block_of.(i)))
  done

let test_dm_decoupled () =
  let a = pattern_of_lists 4 [ [ 0; 1 ]; [ 0; 1 ]; [ 2; 3 ]; [ 2; 3 ] ] in
  let dm = Sparse.Dm.decompose a in
  Alcotest.(check int) "two independent blocks" 2 (Array.length dm.Sparse.Dm.blocks)

(* ------------------------------------------------------------------ *)
(* Elimination tree / fill prediction                                 *)

let test_etree_arrow () =
  (* arrow matrix, apex first: eliminating the apex forms a clique of
     the remaining 4 — the factor is completely dense (15 entries) *)
  let apex_first =
    pattern_of_lists 5 [ [ 0; 1; 2; 3; 4 ]; [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 0; 4 ] ]
  in
  Alcotest.(check int) "apex first: dense factor" 15
    (Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern apex_first));
  (* apex last: no fill at all — 2 entries per leading column, 1 for
     the apex *)
  let apex_last =
    pattern_of_lists 5 [ [ 0; 4 ]; [ 1; 4 ]; [ 2; 4 ]; [ 3; 4 ]; [ 0; 1; 2; 3; 4 ] ]
  in
  let t = Sparse.Etree.of_pattern apex_last in
  Alcotest.(check int) "apex last: no fill" 9 (Sparse.Etree.factor_nnz t);
  Alcotest.(check (array int)) "parents all apex" [| 4; 4; 4; 4; -1 |] t.Sparse.Etree.parent;
  (* and predicted_nnz recovers the good ordering from the bad one *)
  let to_last = [| 1; 2; 3; 4; 0 |] in
  Alcotest.(check int) "permutation heals the arrow" 9
    (Sparse.Etree.predicted_nnz apex_first to_last)

let test_etree_matches_dense_chol () =
  let rng = Linalg.Rng.create 7 in
  let a = random_spd rng 30 60 in
  Alcotest.(check int) "prediction exact"
    (chol_nnz a)
    (Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern a))

(* ------------------------------------------------------------------ *)
(* AMD                                                                *)

let test_amd_permutation_and_gain () =
  (* scrambled arrow: natural order fills densely, AMD must place the
     apex last and recover the fill-free factor *)
  let a =
    pattern_of_lists 5 [ [ 0; 1; 2; 3; 4 ]; [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 0; 4 ] ]
  in
  let perm = Sparse.Amd.order a in
  Alcotest.(check bool) "is a permutation" true (is_permutation 5 perm);
  (* minimum degree eliminates the degree-1 leaves before the apex, so
     no elimination ever forms a clique: zero fill *)
  Alcotest.(check bool) "apex not eliminated first" true (perm.(0) <> 0);
  Alcotest.(check int) "fill-free" 9 (Sparse.Etree.predicted_nnz a perm)

(* the acceptance workload: 20×25 RC mesh (500 nodes). AMD's predicted
   factor nnz must match the actual Cholesky factor exactly and beat
   the natural order. *)
let test_amd_exact_on_grid () =
  let nl = Circuit.Generators.rc_grid ~rows:20 ~cols:25 () in
  let m = Circuit.Mna.auto nl in
  let g = m.Circuit.Mna.g in
  Alcotest.(check int) "500 unknowns" 500 g.Sparse.Csr.rows;
  let natural = Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern g) in
  let perm = Sparse.Amd.order g in
  Alcotest.(check bool) "valid permutation" true (is_permutation 500 perm);
  let predicted = Sparse.Etree.predicted_nnz g perm in
  let actual = chol_nnz (Sparse.Csr.permute_sym g perm) in
  Alcotest.(check int) "AMD predicted = actual factor nnz" actual predicted;
  Alcotest.(check bool)
    (Printf.sprintf "AMD %d beats natural %d" predicted natural)
    true (predicted < natural)

(* ------------------------------------------------------------------ *)
(* STR rules                                                          *)

let codes s = List.map (fun d -> d.D.code) (SR.analyze_string s)
let has code s = List.mem code (codes s)
let check_has code s = Alcotest.(check bool) (code ^ " present") true (has code s)
let check_not code s = Alcotest.(check bool) (code ^ " absent") false (has code s)

let clean = "R1 1 2 10\nC1 1 0 1p\nR2 2 0 10\nC2 2 0 1p\n.port in 1\n"

(* node "cut" is fed only by a current source: zero pencil row *)
let cut_node = "* comment\nR1 in n1 1k\nI1 n1 cut DC 1m\n.port p1 in\n"

(* node 2 touches only capacitors: C covers the pencil but G has an
   empty row — the DC expansion point is structurally unusable *)
let cap_cutset = "R1 1 0 1k\nC1 1 2 1p\nC2 2 0 1p\n.port in 1\n"

let test_str_clean () =
  let ds = SR.analyze_string clean in
  Alcotest.(check bool) "only info findings" true
    (List.for_all (fun d -> d.D.severity = D.Info) ds);
  check_has "STR006" clean;
  check_has "STR008" clean;
  Alcotest.(check int) "exit 0" 0 (D.exit_code ~strict:false ds)

let test_str001_located () =
  let ds = SR.analyze_string cut_node in
  Alcotest.(check int) "exit 2" 2 (D.exit_code ~strict:false ds);
  let d = List.find (fun d -> d.D.code = "STR001") ds in
  Alcotest.(check (option int)) "names the source line" (Some 3) d.D.line;
  Alcotest.(check bool) "severity error" true (d.D.severity = D.Error);
  check_has "STR002" cut_node;
  check_has "STR003" cut_node;
  check_not "STR001" clean

let test_str004_cap_cutset () =
  let ds = SR.analyze_string cap_cutset in
  check_not "STR001" cap_cutset;
  check_has "STR004" cap_cutset;
  Alcotest.(check int) "warning exit 1" 1 (D.exit_code ~strict:false ds);
  Alcotest.(check int) "strict exit 2" 2 (D.exit_code ~strict:true ds);
  check_not "STR004" clean

let test_str007_decoupled () =
  let two_islands = "R1 1 0 1k\nR2 2 0 1k\n.port a 1\n.port b 2\n" in
  check_has "STR007" two_islands;
  check_not "STR007" clean

let test_str006_on_grid () =
  let nl = Circuit.Generators.rc_grid ~rows:6 ~cols:8 () in
  let ds = SR.run nl (Circuit.Mna.auto nl) in
  Alcotest.(check bool) "STR006 present" true
    (List.exists (fun d -> d.D.code = "STR006") ds);
  let r = SR.orderings (Circuit.Mna.auto nl) in
  Alcotest.(check bool) "AMD never worse than natural on the mesh" true
    (r.SR.amd_nnz <= r.SR.natural_nnz);
  Alcotest.(check bool) "RCM never worse than natural on the mesh" true
    (r.SR.rcm_nnz <= r.SR.natural_nnz)

let test_reduce_preflight () =
  let nl = Circuit.Parser.parse_string cut_node in
  let raised =
    try
      ignore (Sympvl.Reduce.netlist ~order:4 nl);
      `None
    with
    | D.User_error msg -> `User msg
    | Sympvl.Factor.Singular _ -> `Factor
  in
  match raised with
  | `User msg ->
    Alcotest.(check bool) "mentions STR001" true
      (let n = String.length "STR001" and m = String.length msg in
       let rec go i = i + n <= m && (String.sub msg i n = "STR001" || go (i + 1)) in
       go 0)
  | `Factor -> Alcotest.fail "raised Factor.Singular instead of a located User_error"
  | `None -> Alcotest.fail "structurally singular netlist reduced without error"

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let prop_orders_are_permutations =
  QCheck.Test.make ~count:40 ~name:"rcm/amd: always a valid permutation"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let n = 1 + Linalg.Rng.int rng 30 in
      let a = random_spd rng n (2 * n) in
      is_permutation n (Sparse.Rcm.order a) && is_permutation n (Sparse.Amd.order a))

let prop_rcm_profile_never_worse =
  QCheck.Test.make ~count:40 ~name:"rcm: profile never exceeds natural"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let n = 1 + Linalg.Rng.int rng 40 in
      let a = random_spd rng n (3 * n) in
      let p = Sparse.Csr.permute_sym a (Sparse.Rcm.order a) in
      Sparse.Csr.profile p <= Sparse.Csr.profile a)

let prop_amd_fill_never_worse =
  QCheck.Test.make ~count:40 ~name:"amd: predicted fill never exceeds natural"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let n = 1 + Linalg.Rng.int rng 40 in
      let a = random_spd rng n (3 * n) in
      Sparse.Etree.predicted_nnz a (Sparse.Amd.order a)
      <= Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern a))

let prop_etree_exact =
  QCheck.Test.make ~count:40 ~name:"etree: predicted nnz = dense Cholesky nnz"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let n = 2 + Linalg.Rng.int rng 24 in
      let a = random_spd rng n (2 * n) in
      (* both natural and AMD orderings must be predicted exactly *)
      let perm = Sparse.Amd.order a in
      Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern a) = chol_nnz a
      && Sparse.Etree.predicted_nnz a perm = chol_nnz (Sparse.Csr.permute_sym a perm))

let prop_struct_rank_equals_numerical =
  QCheck.Test.make ~count:60 ~name:"dm: structural rank = generic numerical rank"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let n = 1 + Linalg.Rng.int rng 10 in
      let tr = Sparse.Triplet.create n n in
      (* sparse enough that rank-deficient patterns occur regularly;
         positive generic values so merging duplicates cannot cancel *)
      for _ = 1 to n + Linalg.Rng.int rng n do
        let i = Linalg.Rng.int rng n and j = Linalg.Rng.int rng n in
        Sparse.Triplet.add tr i j (Linalg.Rng.uniform rng 0.5 1.5)
      done;
      let a = Sparse.Csr.of_triplet tr in
      let dm = Sparse.Dm.decompose a in
      dm.Sparse.Dm.matching.Sparse.Matching.rank = numerical_rank a)

let () =
  let qsuite =
    List.map (fun t -> Qtest.to_alcotest t)
      [
        prop_orders_are_permutations;
        prop_rcm_profile_never_worse;
        prop_amd_fill_never_worse;
        prop_etree_exact;
        prop_struct_rank_equals_numerical;
      ]
  in
  Alcotest.run "struct"
    [
      ( "matching",
        [
          Alcotest.test_case "singular pattern" `Quick test_matching_singular;
          Alcotest.test_case "augmenting path" `Quick test_matching_augmenting;
          Alcotest.test_case "empty row" `Quick test_matching_empty_row;
        ] );
      ( "dm",
        [
          Alcotest.test_case "coarse parts" `Quick test_dm_parts;
          Alcotest.test_case "BTF topological" `Quick test_dm_btf_topological;
          Alcotest.test_case "decoupled blocks" `Quick test_dm_decoupled;
        ] );
      ( "etree",
        [
          Alcotest.test_case "arrow matrix" `Quick test_etree_arrow;
          Alcotest.test_case "matches dense Cholesky" `Quick test_etree_matches_dense_chol;
        ] );
      ( "amd",
        [
          Alcotest.test_case "heals the arrow" `Quick test_amd_permutation_and_gain;
          Alcotest.test_case "exact on 500-node mesh" `Quick test_amd_exact_on_grid;
        ] );
      ( "rules",
        [
          Alcotest.test_case "clean netlist" `Quick test_str_clean;
          Alcotest.test_case "STR001 located" `Quick test_str001_located;
          Alcotest.test_case "STR004 capacitor cutset" `Quick test_str004_cap_cutset;
          Alcotest.test_case "STR007 decoupled" `Quick test_str007_decoupled;
          Alcotest.test_case "STR006 ordering report" `Quick test_str006_on_grid;
          Alcotest.test_case "reduce pre-flight" `Quick test_reduce_preflight;
        ] );
      ("properties", qsuite);
    ]
