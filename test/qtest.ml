(* Shared qcheck ↔ alcotest glue.

   Every property suite in this directory runs its generators from an
   explicit seed so failures are reproducible: set [QCHECK_SEED] to
   replay a run exactly, otherwise a fresh seed is drawn and printed.
   On a property failure the seed is printed again next to the failing
   test's name, together with the environment variable that replays
   it. *)

let seed =
  lazy
    (let s =
       match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
       | Some s -> s
       | None ->
         Random.self_init ();
         Random.int 1_000_000_000
     in
     Printf.printf "[qtest] qcheck seed %d (replay with QCHECK_SEED=%d)\n%!" s s;
     s)

(* a fresh state per property, all derived from the one seed, so test
   order and count never perturb each other's draws *)
let rand () = Random.State.make [| Lazy.force seed |]

let to_alcotest t =
  let name, speed, run = QCheck_alcotest.to_alcotest ~rand:(rand ()) t in
  let run' arg =
    try run arg
    with e ->
      Printf.printf "[qtest] property %S failed under seed %d — replay with QCHECK_SEED=%d\n%!"
        name (Lazy.force seed) (Lazy.force seed);
      raise e
  in
  (name, speed, run')
