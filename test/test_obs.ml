(* lib/obs unit tests: span nesting and stats, counter/gauge merge,
   Chrome-trace export shape, the zero-allocation contract of disabled
   probes, determinism of the pooled AC sweep with tracing enabled, and
   the qcheck reduction property that reads its evidence back out of
   obs counters. *)

let with_tracing f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let span_stat name =
  List.find_opt (fun st -> st.Obs.span_name = name) (Obs.span_stats ())

(* ------------------------------------------------------------------ *)
(* spans, counters, gauges                                             *)

let test_span_nesting_stats () =
  with_tracing @@ fun () ->
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.with_span "inner" (fun () -> ()));
  (try Obs.with_span "boom" (fun () -> failwith "deliberate") with Failure _ -> ());
  (match span_stat "outer" with
  | Some st ->
    Alcotest.(check int) "outer calls" 1 st.Obs.calls;
    Alcotest.(check bool) "outer total >= 0" true (st.Obs.total_s >= 0.0);
    Alcotest.(check bool) "outer max >= min" true (st.Obs.max_s >= st.Obs.min_s)
  | None -> Alcotest.fail "no stats for 'outer'");
  (match span_stat "inner" with
  | Some st -> Alcotest.(check int) "inner calls" 2 st.Obs.calls
  | None -> Alcotest.fail "no stats for 'inner'");
  (* with_span must close the span on the exception path too *)
  match span_stat "boom" with
  | Some st -> Alcotest.(check int) "boom calls" 1 st.Obs.calls
  | None -> Alcotest.fail "no stats for 'boom' (span leaked on exception)"

let test_counters_gauges () =
  with_tracing @@ fun () ->
  Obs.count "t.count" 2;
  Obs.count "t.count" 3;
  Obs.countf "t.countf" 0.25;
  Obs.countf "t.countf" 0.5;
  Obs.gauge "t.gauge" 1.0;
  Obs.gauge "t.gauge" 42.0;
  Alcotest.(check (float 0.0)) "int counter sums" 5.0 (Obs.counter_value "t.count");
  Alcotest.(check (float 1e-12)) "float counter sums" 0.75 (Obs.counter_value "t.countf");
  Alcotest.(check (float 0.0)) "unknown counter is 0" 0.0 (Obs.counter_value "t.nope");
  (match Obs.gauge_value "t.gauge" with
  | Some v -> Alcotest.(check (float 0.0)) "gauge latest wins" 42.0 v
  | None -> Alcotest.fail "gauge not recorded");
  Alcotest.(check bool) "counters listed" true
    (List.mem_assoc "t.count" (Obs.counters ()))

let test_disabled_probes_record_nothing () =
  Obs.reset ();
  Obs.disable ();
  Obs.span_begin "ghost";
  Obs.count "ghost.count" 7;
  Obs.gauge "ghost.gauge" 1.0;
  Obs.span_end ();
  Alcotest.(check bool) "no span" true (span_stat "ghost" = None);
  Alcotest.(check (float 0.0)) "no counter" 0.0 (Obs.counter_value "ghost.count");
  Alcotest.(check bool) "no gauge" true (Obs.gauge_value "ghost.gauge" = None)

(* ------------------------------------------------------------------ *)
(* Chrome-trace export                                                 *)

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let c = ref 0 in
  for i = 0 to nh - nn do
    if String.sub hay i nn = needle then incr c
  done;
  !c

let test_export_chrome () =
  with_tracing @@ fun () ->
  Obs.span_begin ~args:[ ("n", Obs.Int 3); ("x", Obs.Float 1.5) ] "phase.a";
  Obs.instant ~args:[ ("why", Obs.Str "de\"flation") ] "evt";
  Obs.span_end ();
  Obs.count "c.points" 4;
  let json = Obs.export_chrome () in
  Alcotest.(check int) "one B" 1 (count_substring json "\"ph\":\"B\"");
  Alcotest.(check int) "one E" 1 (count_substring json "\"ph\":\"E\"");
  Alcotest.(check int) "one instant" 1 (count_substring json "\"ph\":\"i\"");
  Alcotest.(check bool) "span name present" true
    (count_substring json "\"name\":\"phase.a\"" > 0);
  Alcotest.(check bool) "int arg present" true (count_substring json "\"n\":3" > 0);
  Alcotest.(check bool) "counter sample present" true
    (count_substring json "\"ph\":\"C\"" > 0);
  Alcotest.(check bool) "quote in Str escaped" true
    (count_substring json "de\\\"flation" > 0);
  (* structural sanity a Chrome load needs: balanced braces/brackets *)
  let balance opn cls =
    let n = ref 0 in
    String.iter (fun ch -> if ch = opn then incr n else if ch = cls then decr n) json;
    !n
  in
  Alcotest.(check int) "braces balance" 0 (balance '{' '}');
  Alcotest.(check int) "brackets balance" 0 (balance '[' ']')

(* ------------------------------------------------------------------ *)
(* request-scoped marks: export_chrome_since / truncate                *)

let test_mark_export_truncate () =
  with_tracing @@ fun () ->
  Obs.with_span "before.mark" (fun () -> ());
  Obs.count "mark.counter" 2;
  let m = Obs.mark () in
  Obs.with_span "after.mark" (fun () -> Obs.count "mark.counter" 3);
  let sub = Obs.export_chrome_since m in
  Alcotest.(check bool) "subtree has post-mark span" true
    (count_substring sub "\"name\":\"after.mark\"" > 0);
  Alcotest.(check int) "subtree omits pre-mark span" 0
    (count_substring sub "\"name\":\"before.mark\"");
  let before_events = Obs.buffered_events () in
  Alcotest.(check bool) "events recorded" true (before_events > 0);
  Obs.truncate m;
  Alcotest.(check bool) "truncate drops post-mark events" true
    (Obs.buffered_events () < before_events);
  (* counters are cumulative state, not buffer events: they survive *)
  Alcotest.(check (float 0.0)) "counter survives truncation" 5.0
    (Obs.counter_value "mark.counter");
  let full = Obs.export_chrome () in
  Alcotest.(check bool) "pre-mark span still exported" true
    (count_substring full "\"name\":\"before.mark\"" > 0);
  Alcotest.(check int) "post-mark span gone from full export" 0
    (count_substring full "\"name\":\"after.mark\"")

let test_mark_truncate_bounded () =
  with_tracing @@ fun () ->
  (* the serve daemon's per-request cycle: mark, record a span subtree,
     export it, truncate.  Over many requests the buffers must stay
     bounded (regression for unbounded trace growth in a daemon). *)
  let worst = ref 0 in
  for i = 1 to 5_000 do
    let m = Obs.mark () in
    Obs.with_span "serve.request" (fun () -> Obs.count "serve.requests" 1);
    let sub = Obs.export_chrome_since m in
    if i mod 1000 = 0 then
      Alcotest.(check bool) "subtree carries the request span" true
        (count_substring sub "\"name\":\"serve.request\"" > 0);
    Obs.truncate m;
    worst := max !worst (Obs.buffered_events ())
  done;
  Alcotest.(check bool) "buffers stay bounded" true (!worst < 4096);
  Alcotest.(check (float 0.0)) "counters kept accumulating" 5000.0
    (Obs.counter_value "serve.requests")

(* ------------------------------------------------------------------ *)
(* the cost contract: disabled probes allocate nothing                 *)

let test_disabled_zero_alloc () =
  Obs.disable ();
  Obs.reset ();
  let iters = 200_000 in
  let before = Gc.allocated_bytes () in
  for i = 0 to iters - 1 do
    Obs.span_begin "alloc.gate";
    Obs.count "alloc.count" i;
    if Obs.tracing () then Obs.countf "alloc.countf" (float_of_int i);
    Obs.span_end ()
  done;
  let delta = Gc.allocated_bytes () -. before in
  if delta > 1024.0 then
    Alcotest.failf "disabled probes allocated %.0f bytes over %d iterations" delta iters

(* ------------------------------------------------------------------ *)
(* tracing must not perturb the pooled sweep                           *)

let bits_equal_cmat p a b =
  let eq_f x y = Int64.bits_of_float x = Int64.bits_of_float y in
  let ok = ref true in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      let x = Linalg.Cmat.get a i j and y = Linalg.Cmat.get b i j in
      if not (eq_f x.Complex.re y.Complex.re && eq_f x.Complex.im y.Complex.im) then
        ok := false
    done
  done;
  !ok

let sweeps_bitwise_equal (a : Simulate.Ac.sweep) (b : Simulate.Ac.sweep) =
  let p = Array.length a.Simulate.Ac.port_names in
  Array.length a.Simulate.Ac.z = Array.length b.Simulate.Ac.z
  && Array.for_all2 (bits_equal_cmat p) a.Simulate.Ac.z b.Simulate.Ac.z

let test_tracing_on_sweep_deterministic () =
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:3 ~sections:12 () in
  let mna = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:17 1e6 1e10 in
  let off = Simulate.Ac.sweep ~jobs:1 mna freqs in
  with_tracing @@ fun () ->
  let on1 = Simulate.Ac.sweep ~jobs:1 mna freqs in
  let on2 = Simulate.Ac.sweep ~jobs:2 mna freqs in
  Alcotest.(check bool) "tracing on == off (jobs 1)" true (sweeps_bitwise_equal off on1);
  Alcotest.(check bool) "tracing on, jobs 2 == jobs 1" true
    (sweeps_bitwise_equal on1 on2);
  (* the pooled run recorded per-point spans across domain buffers *)
  match span_stat "ac.point" with
  | Some st ->
    Alcotest.(check int) "ac.point spans merged from all domains"
      (2 * Array.length freqs) st.Obs.calls
  | None -> Alcotest.fail "no ac.point spans recorded"

(* ------------------------------------------------------------------ *)
(* qcheck: reduction contract with counter-backed evidence             *)

let prop_reduced_rc_contract =
  QCheck.Test.make ~count:10
    ~name:"obs: random RC reduction is stable+passive; counters back the telemetry"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl = Circuit.Generators.random_rc ~ports:2 ~nodes:14 ~extra_edges:10 ~seed () in
      let m = Circuit.Mna.assemble_rc nl in
      let p = m.Circuit.Mna.b.Linalg.Mat.cols in
      List.for_all
        (fun order ->
          with_tracing @@ fun () ->
          let model = Sympvl.Reduce.mna ~order m in
          let stable = Sympvl.Stability.is_stable model in
          let passive =
            match Sympvl.Stability.passivity_certificate model with
            | Sympvl.Stability.Certified -> true
            | _ -> false
          in
          (* the instrumented Lanczos run must leave sane telemetry:
             deflation count is a non-negative merged counter and the
             moment-match bound of the paper is met and recorded *)
          let deflations = Obs.counter_value "lanczos.deflations" in
          let mm = Sympvl.Moments.matched_count ~rtol:1e-4 model m in
          Obs.count "test.moment_matches" mm;
          stable && passive && deflations >= 0.0
          && mm >= 2 * (order / p)
          && int_of_float (Obs.counter_value "test.moment_matches") = mm)
        [ 2; 4; 6 ])

let () =
  Alcotest.run "obs"
    [
      ( "core",
        [
          Alcotest.test_case "span nesting + stats" `Quick test_span_nesting_stats;
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "disabled probes record nothing" `Quick
            test_disabled_probes_record_nothing;
          Alcotest.test_case "chrome export" `Quick test_export_chrome;
          Alcotest.test_case "mark / export_since / truncate" `Quick
            test_mark_export_truncate;
          Alcotest.test_case "truncate keeps buffers bounded" `Quick
            test_mark_truncate_bounded;
          Alcotest.test_case "disabled probes allocate nothing" `Quick
            test_disabled_zero_alloc;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pooled sweep bitwise with tracing on" `Quick
            test_tracing_on_sweep_deterministic;
        ] );
      ("properties", [ Qtest.to_alcotest prop_reduced_rc_contract ]);
    ]
