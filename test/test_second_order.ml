(* Second-order (susceptance) spine tests.

   1. qcheck: the parser round-trips K cards — print/reparse preserves
      every mutual coupling (names, inductor refs, and k to the
      printer's 9 significant digits).
   2. qcheck: on coupling-free RLC ladders the companion-form
      linearisation of Mna.assemble_second_order reproduces the
      general-form Mna.assemble transfer function to roundoff (both
      sides evaluated with dense complex LU — the companion pencil is
      intentionally nonsymmetric, see the Mna.linearize doc).
   3. SPRIM: split-basis structure is preserved exactly
      (structure_error = 0), the full-order model reproduces the exact
      AC response, and the reduced blocks stay symmetric after
      re-assembly.
   4. NET017: malformed mutual couplings (zero k, self-coupling,
      unknown inductor refs) are linted with provenance, |k| ≥ 1 stays
      NET008's, and MNA assembly refuses the malformed netlist.
   5. RLCk round-trip: Sprim reduce -> Synth.Rlck -> print -> reparse
      -> Mna.assemble matches the reduced model's transfer function
      within the engine's golden rtol (the printer quantizes element
      values to 9 significant digits), and the synthesized netlist
      lints without errors. *)

module M = Circuit.Mna
module N = Circuit.Netlist

let find_path cands =
  match List.find_opt Sys.file_exists cands with Some p -> p | None -> List.hd cands

let netlist_of base =
  Circuit.Parser.parse_file
    (find_path
       [ "../examples/netlists/" ^ base ^ ".cir"; "examples/netlists/" ^ base ^ ".cir" ])

(* dense complex evaluation of a first-order MNA pencil — valid for
   nonsymmetric pencils (the companion form), unlike the skyline AC
   fast path which assumes G = Gᵀ, C = Cᵀ *)
let dense_eval (m : M.t) s =
  let var =
    match m.M.variable with M.S -> s | M.S_squared -> Linalg.Cx.(s *: s)
  in
  let g = Sparse.Csr.to_dense m.M.g in
  let c = Sparse.Csr.to_dense m.M.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one g var c in
  let b = Linalg.Cmat.of_real m.M.b in
  let z =
    Linalg.Cmat.mul (Linalg.Cmat.transpose b)
      (Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor k) b)
  in
  match m.M.gain with
  | M.Unit -> z
  | M.Times_s -> Linalg.Cmat.scale s z

let rel_dist z1 z2 =
  let p = z1.Linalg.Cmat.rows in
  let err = ref 0.0 and scale = ref 1e-300 in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      let d =
        Complex.norm (Complex.sub (Linalg.Cmat.get z1 i j) (Linalg.Cmat.get z2 i j))
      in
      err := Float.max !err d;
      scale := Float.max !scale (Complex.norm (Linalg.Cmat.get z1 i j))
    done
  done;
  !err /. !scale

let probe_freqs = [ 1e6; 3.1e7; 1e9; 1e10 ]

(* ------------------------------------------------------------------ *)
(* 1. K cards round-trip through the parser                            *)

let prop_k_card_roundtrip =
  QCheck.Test.make ~count:50 ~name:"parser round-trips K cards"
    QCheck.(pair (int_bound 10_000) (int_range 2 6))
    (fun (seed, ni) ->
      let st = Random.State.make [| seed |] in
      let nl = N.create () in
      (* a chain of inductors with shunt resistors, then couple random
         distinct pairs with k drawn across the full open interval *)
      for i = 1 to ni do
        let a = N.node nl (Printf.sprintf "n%d" (i - 1)) in
        let b = N.node nl (Printf.sprintf "n%d" i) in
        N.add nl
          (N.Inductor
             {
               name = Printf.sprintf "L%d" i;
               n1 = a;
               n2 = b;
               henries = 1e-9 *. float_of_int i;
             });
        N.add nl
          (N.Resistor { name = Printf.sprintf "R%d" i; n1 = b; n2 = 0; ohms = 10.0 })
      done;
      let mutuals = ref [] in
      let idx = ref 0 in
      for i = 1 to ni do
        for j = i + 1 to ni do
          if Random.State.bool st then begin
            incr idx;
            let mag = 1e-4 +. (0.9 *. Random.State.float st 1.0) in
            let k = if Random.State.bool st then mag else -.mag in
            let l1 = Printf.sprintf "L%d" i and l2 = Printf.sprintf "L%d" j in
            N.add_mutual nl ~name:(Printf.sprintf "K%d" !idx) l1 l2 k;
            mutuals := (Printf.sprintf "K%d" !idx, l1, l2, k) :: !mutuals
          end
        done
      done;
      N.add_port nl "in" (N.node nl "n0");
      let nl2 = Circuit.Parser.parse_string (Circuit.Parser.to_string nl) in
      let back =
        List.filter_map
          (function
            | N.Mutual { name; l1; l2; k } -> Some (name, l1, l2, k) | _ -> None)
          (N.elements nl2)
      in
      let close (n1, a1, b1, k1) (n2, a2, b2, k2) =
        (* the printer emits %.9g, so k round-trips to 9 significant
           digits, not to the last bit *)
        n1 = n2 && a1 = a2 && b1 = b2 && Float.abs (k1 -. k2) <= 1e-8 *. Float.abs k1
      in
      List.length back = List.length !mutuals
      && List.for_all2 close (List.sort compare back) (List.sort compare !mutuals))

(* ------------------------------------------------------------------ *)
(* 2. companion linearisation ≡ general form (coupling-free)           *)

let prop_companion_matches_general =
  QCheck.Test.make ~count:25
    ~name:"companion form of assemble_second_order = Mna.assemble (RLC, no K)"
    QCheck.(pair (int_range 2 8) (int_bound 2))
    (fun (sections, variant) ->
      let r = [| 0.5; 2.0; 10.0 |].(variant) in
      let nl =
        Circuit.Generators.rlc_line ~r_per_section:r ~sections ()
      in
      let m = M.assemble nl in
      let lin = M.linearize (M.assemble_second_order nl) in
      List.for_all
        (fun f ->
          let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
          rel_dist (dense_eval m s) (dense_eval lin s) < 1e-8)
        probe_freqs)

(* ------------------------------------------------------------------ *)
(* 3. SPRIM structure preservation                                     *)

let test_sprim_structure base () =
  let m = M.auto (netlist_of base) in
  let sp = Sympvl.Sprim.reduce ~order:m.M.n m in
  Alcotest.(check (float 0.0))
    (base ^ ": structure error is exactly zero") 0.0
    (Sympvl.Sprim.structure_error sp);
  (* re-assembled ghat/chat must be symmetric (block congruence) *)
  let sym name mat =
    Alcotest.(check (float 0.0))
      (base ^ ": " ^ name ^ " symmetric")
      0.0
      (Linalg.Mat.dist_max mat (Linalg.Mat.transpose mat))
  in
  sym "ghat" sp.Sympvl.Sprim.ghat;
  sym "chat" sp.Sympvl.Sprim.chat;
  (* at full Krylov depth the model reproduces the exact response *)
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let d = rel_dist (dense_eval m s) (Sympvl.Sprim.eval sp s) in
      if d > 1e-8 then
        Alcotest.failf "%s: full-order SPRIM deviates %.3e at %g Hz" base d f)
    probe_freqs

let test_sprim_supports () =
  let check base expected =
    let m = M.auto (netlist_of base) in
    let got = match Sympvl.Rom.supports `Sprim m with Ok () -> true | Error _ -> false in
    Alcotest.(check bool) (base ^ ": sprim support") expected got
  in
  check "rc_line" false;
  check "lc_tank" false;
  check "rl_ladder" false;
  check "coupled_lines" true;
  check "peec_coupled" true

(* ------------------------------------------------------------------ *)
(* 4. NET017 lint + MNA refusal                                        *)

let lint_codes text =
  List.map (fun d -> d.Circuit.Diagnostic.code) (Analysis.Lint.lint_string text)

let has_code c text = List.mem c (lint_codes text)

let base_pair =
  "L1 1 0 1n\nL2 2 0 1n\nR1 1 0 5\nR2 2 0 5\n.port in 1\n"

let test_net017 () =
  Alcotest.(check bool) "zero k is NET017" true
    (has_code "NET017" (base_pair ^ "K1 L1 L2 0\n"));
  Alcotest.(check bool) "self-coupling is NET017" true
    (has_code "NET017" (base_pair ^ "K1 L1 L1 0.5\n"));
  Alcotest.(check bool) "unknown inductor is NET017" true
    (has_code "NET017" (base_pair ^ "K1 L1 Lmissing 0.5\n"));
  Alcotest.(check bool) "|k| >= 1 stays NET008" true
    (has_code "NET008" (base_pair ^ "K1 L1 L2 1.5\n"));
  Alcotest.(check bool) "|k| >= 1 is not NET017" false
    (has_code "NET017" (base_pair ^ "K1 L1 L2 1.5\n"));
  Alcotest.(check bool) "well-formed coupling is clean" false
    (List.exists
       (fun c -> c = "NET017" || c = "NET008")
       (lint_codes (base_pair ^ "K1 L1 L2 0.5\n")));
  (* NET017 findings carry the K card's source line *)
  let bad = base_pair ^ "K1 L1 Lmissing 0.5\n" in
  let d =
    List.find
      (fun d -> d.Circuit.Diagnostic.code = "NET017")
      (Analysis.Lint.lint_string bad)
  in
  Alcotest.(check (option int)) "NET017 has provenance" (Some 6)
    d.Circuit.Diagnostic.line;
  (* assembly refuses what the linter flags *)
  let nl = Circuit.Parser.parse_string bad in
  Alcotest.(check bool) "Mna.assemble refuses the malformed coupling" true
    (match M.assemble nl with
    | _ -> false
    | exception Circuit.Diagnostic.User_error _ -> true);
  Alcotest.(check bool) "assemble_second_order refuses it too" true
    (match M.assemble_second_order nl with
    | _ -> false
    | exception Circuit.Diagnostic.User_error _ -> true)

(* ------------------------------------------------------------------ *)
(* 5. RLCk round-trip                                                  *)

let test_rlck_roundtrip base () =
  let m = M.auto (netlist_of base) in
  let sp = Sympvl.Sprim.reduce ~order:(min 8 m.M.n) m in
  let nl2, st = Synth.Rlck.synthesize ~port_names:m.M.port_names sp in
  Alcotest.(check bool) (base ^ ": synthesis emits inductors") true
    (st.Synth.Rlck.inductors > 0);
  (* the synthesized netlist must survive print -> reparse -> lint
     without errors (warnings for negative elements are expected);
     full precision, as the CLI --synth path uses: the susceptance
     branches nearly cancel, so 9-digit quantisation would be
     amplified well past golden_rtol on reassembly *)
  let printed = Circuit.Parser.to_string ~precision:17 nl2 in
  let diags = Analysis.Lint.lint_string printed in
  Alcotest.(check int)
    (base ^ ": synthesized netlist lints without errors")
    0
    (Circuit.Diagnostic.count Circuit.Diagnostic.Error diags);
  let m2 = M.assemble (Circuit.Parser.parse_string printed) in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let d = rel_dist (Sympvl.Sprim.eval sp s) (dense_eval m2 s) in
      if d > Sympvl.Rom.golden_rtol `Sprim then
        Alcotest.failf "%s: RLCk round-trip deviates %.3e at %g Hz" base d f)
    probe_freqs

let () =
  Alcotest.run "second_order"
    [
      ( "parser",
        List.map Qtest.to_alcotest [ prop_k_card_roundtrip ] );
      ( "companion",
        List.map Qtest.to_alcotest [ prop_companion_matches_general ] );
      ( "sprim",
        Alcotest.test_case "supports matrix" `Quick test_sprim_supports
        :: List.map
             (fun base ->
               Alcotest.test_case (base ^ " structure") `Quick
                 (test_sprim_structure base))
             [ "coupled_lines"; "peec_coupled" ] );
      ("lint", [ Alcotest.test_case "NET017" `Quick test_net017 ]);
      ( "rlck",
        List.map
          (fun base ->
            Alcotest.test_case (base ^ " round-trip") `Quick
              (test_rlck_roundtrip base))
          [ "coupled_lines"; "peec_coupled" ] );
    ]
