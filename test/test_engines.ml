(* Cross-engine registry tests.

   1. Shift-policy regression: every pencil-backed engine resolves the
      singular-G automatic shift through the one implementation in
      Sympvl.Pencil, so on a netlist that triggers the retry they must
      all land on exactly the same expansion point.
   2. Cross-engine golden: every example netlist × every registry
      engine either matches the committed exact-AC fixtures on the
      16-point grid within the engine's documented tolerance
      (Rom.golden_rtol), or is skipped for exactly the reason the
      documented support matrix predicts.
   3. qcheck properties: a Pencil.factor cache hit is bitwise
      identical to a cold factorisation of a fresh context at the same
      shift, and Moments.exact through a shared context is bitwise
      identical to the from-scratch path. *)

module Rom = Sympvl.Rom
module Pencil = Sympvl.Pencil

let find_path cands =
  match List.find_opt Sys.file_exists cands with Some p -> p | None -> List.hd cands

let netlist_path base =
  find_path [ "../examples/netlists/" ^ base; "examples/netlists/" ^ base ]

let golden_path base =
  find_path [ "golden/" ^ base ^ ".golden"; "test/golden/" ^ base ^ ".golden" ]

let mna_of base =
  Circuit.Mna.auto (Circuit.Parser.parse_file (netlist_path (base ^ ".cir")))

let names = [ "rc_line"; "lc_tank"; "rl_ladder"; "coupled_lines"; "peec_coupled" ]

(* same format as test_golden.ml (each test is its own executable, so
   the 10-line reader is duplicated rather than grown into a library) *)
type entry = { freq : float; row : int; col : int; mag : float; phase : float }

let read_fixture path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         Scanf.sscanf line "%e %d %d %e %e" (fun freq row col mag phase ->
             entries := { freq; row; col; mag; phase } :: !entries)
     done
   with End_of_file -> close_in ic);
  List.rev !entries

(* ------------------------------------------------------------------ *)
(* one shift policy                                                    *)

let test_shift_agreement () =
  (* rl_ladder has a singular G at s0 = 0 (pure L/R ladder), so every
     engine must go through the automatic retry — and since that retry
     lives in exactly one place (Pencil.with_auto_shift), they must
     all report exactly the same shift, bit for bit. *)
  let m = mna_of "rl_ladder" in
  let expected = Pencil.auto_shift m in
  Alcotest.(check bool) "retry shift is nonzero" true (expected > 0.0);
  let model = Sympvl.Reduce.mna ~order:4 m in
  let arn = Sympvl.Arnoldi.reduce ~order:4 m in
  let mp = Sympvl.Mpvl.reduce ~order:4 m in
  Alcotest.(check (float 0.0)) "reduce shift" expected model.Sympvl.Model.shift;
  Alcotest.(check (float 0.0)) "arnoldi shift" expected arn.Sympvl.Arnoldi.shift;
  Alcotest.(check (float 0.0)) "mpvl shift" expected mp.Sympvl.Mpvl.shift

(* ------------------------------------------------------------------ *)
(* cross-engine golden                                                 *)

(* the documented support matrix over the shipped examples: AWE cannot
   expand σ = s² pencils; balanced truncation needs the definite RC
   impedance form (and a capacitor on every node — rc_line's input
   node has none); SPRIM needs the general RLC form's inductor-current
   block (rc_line is pure RC, lc_tank reduces in σ = s², rl_ladder in
   the RL susceptance form) *)
let expected_skips =
  [
    ("lc_tank", `Awe);
    ("rc_line", `Bt);
    ("lc_tank", `Bt);
    ("rl_ladder", `Bt);
    ("coupled_lines", `Bt);
    ("peec_coupled", `Bt);
    ("rc_line", `Sprim);
    ("lc_tank", `Sprim);
    ("rl_ladder", `Sprim);
  ]

let engine_opts eng (m : Circuit.Mna.t) =
  match eng with
  | `Awe ->
    (* AWE's documented validity is low order at a mid-band expansion *)
    { (Rom.default ~order:3) with Rom.band = Some (1e6, 1e10) }
  | _ ->
    (* Krylov/BT engines at full order: the model is the exact transfer
       function up to roundoff, so the golden comparison is tight *)
    Rom.default ~order:m.Circuit.Mna.n

let test_engine_golden base () =
  let m = mna_of base in
  let entries = read_fixture (golden_path base) in
  let scale =
    List.fold_left (fun acc e -> Float.max acc e.mag) 0.0 entries |> Float.max 1e-300
  in
  List.iter
    (fun eng ->
      match Rom.supports eng m with
      | Error _ ->
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: skip is documented" base (Rom.name eng))
          true
          (List.mem (base, eng) expected_skips)
      | Ok () ->
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: support is documented" base (Rom.name eng))
          false
          (List.mem (base, eng) expected_skips);
        let opts = engine_opts eng m in
        let model = Rom.reduce ~opts ~order:opts.Rom.order eng m in
        let scalar = Rom.ports model = 1 && Array.length m.Circuit.Mna.port_names > 1 in
        let rtol = Rom.golden_rtol eng in
        List.iter
          (fun e ->
            if not (scalar && (e.row > 0 || e.col > 0)) then begin
              let s = Linalg.Cx.im (2.0 *. Float.pi *. e.freq) in
              let z = Rom.eval model s in
              let got = Linalg.Cmat.get z e.row e.col in
              let want =
                { Complex.re = e.mag *. cos e.phase; im = e.mag *. sin e.phase }
              in
              let err = Complex.norm (Complex.sub got want) in
              let tol = rtol *. Float.max e.mag (1e-3 *. scale) in
              if err > tol then
                Alcotest.failf
                  "%s/%s: Z[%d,%d] at %.6e Hz deviates: got %.10e%+.10ei, fixture \
                   mag=%.10e phase=%.10e (|err| = %.3e > tol %.3e)"
                  base (Rom.name eng) e.row e.col e.freq got.Complex.re got.Complex.im
                  e.mag e.phase err tol
            end)
          entries)
    Rom.all

(* ------------------------------------------------------------------ *)
(* qcheck: cache identity                                              *)

let bits_eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y) a b

let shifts = [| 0.0; 1.0; 6.2e8; 2.5e10 |]

let prop_cache_hit_bitwise =
  QCheck.Test.make ~count:25 ~name:"factor cache hit bitwise = cold factorisation"
    QCheck.(pair (int_bound 10_000) (int_bound (Array.length shifts - 1)))
    (fun (seed, si) ->
      let nl = Circuit.Generators.random_rc ~nodes:25 ~extra_edges:15 ~seed () in
      let m = Circuit.Mna.assemble_rc nl in
      let shift = shifts.(si) in
      let rhs = Array.init m.Circuit.Mna.n (fun i -> 1.0 +. float_of_int (i mod 5)) in
      let ctx = Pencil.create m in
      let x_cold = (Pencil.factor ctx ~shift).Sympvl.Factor.solve rhs in
      let x_hit = (Pencil.factor ctx ~shift).Sympvl.Factor.solve rhs in
      let x_fresh = (Pencil.factor (Pencil.create m) ~shift).Sympvl.Factor.solve rhs in
      bits_eq x_cold x_hit && bits_eq x_cold x_fresh)

let prop_moments_shared_ctx =
  QCheck.Test.make ~count:15 ~name:"Moments.exact via shared ctx = from scratch"
    QCheck.(pair (int_bound 10_000) (int_bound (Array.length shifts - 1)))
    (fun (seed, si) ->
      let nl = Circuit.Generators.random_rc ~nodes:20 ~extra_edges:10 ~seed () in
      let m = Circuit.Mna.assemble_rc nl in
      let shift = shifts.(si) in
      let ctx = Pencil.create m in
      let shared = Sympvl.Moments.exact ~ctx ~shift m 6 in
      let scratch = Sympvl.Moments.exact ~shift m 6 in
      Array.for_all2
        (fun a b ->
          let ok = ref true in
          for i = 0 to a.Linalg.Mat.rows - 1 do
            for j = 0 to a.Linalg.Mat.cols - 1 do
              if
                Int64.bits_of_float (Linalg.Mat.get a i j)
                <> Int64.bits_of_float (Linalg.Mat.get b i j)
              then ok := false
            done
          done;
          !ok)
        shared scratch)

let () =
  Alcotest.run "engines"
    [
      ("shift policy", [ Alcotest.test_case "rl_ladder agreement" `Quick test_shift_agreement ]);
      ( "cross-engine golden",
        List.map
          (fun base -> Alcotest.test_case base `Quick (test_engine_golden base))
          names );
      ( "pencil cache properties",
        List.map Qtest.to_alcotest [ prop_cache_hit_bitwise; prop_moments_shared_ctx ] );
    ]
