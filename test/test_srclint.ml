(* Fixtures for the source lint: one firing fixture per rule
   SRC001-SRC012, the matching negative (allowed) case, suppression
   attributes, and the SRC006 interface check against a scratch tree. *)

module D = Circuit.Diagnostic

let codes ?(path = "lib/core/fixture.ml") src =
  List.map (fun d -> d.D.code) (Srclint_rules.lint_source ~path src)

let fires ?path code src = List.mem code (codes ?path src)

let check_fires name ?path code src =
  Alcotest.(check bool) (name ^ " fires " ^ code) true (fires ?path code src)

let check_clean name ?path code src =
  Alcotest.(check bool) (name ^ " does not fire " ^ code) false (fires ?path code src)

let test_src000_parse_error () =
  check_fires "syntax error" "SRC000" "let let = in"

let test_src001_clocks () =
  check_fires "Sys.time" "SRC001" "let t = Sys.time ()";
  check_fires "Unix.gettimeofday" "SRC001" "let t = Unix.gettimeofday ()";
  check_clean "lib/obs is the clock owner" ~path:"lib/obs/obs.ml" "SRC001"
    "let now = Unix.gettimeofday";
  check_clean "Obs.now" "SRC001" "let t = Obs.now ()"

let test_src002_random () =
  check_fires "Random.int" "SRC002" "let x = Random.int 5";
  check_fires "Random.self_init" "SRC002" "let () = Random.self_init ()";
  check_clean "the seeded generator home" ~path:"lib/linalg/rng.ml" "SRC002"
    "let x = Random.int 5"

let test_src003_compare () =
  check_fires "bare compare" "SRC003" "let xs = List.sort compare ys";
  check_clean "typed compare" "SRC003" "let xs = List.sort Int.compare ys";
  check_clean "file defines its own compare" "SRC003"
    "let compare a b = Int.compare a.x b.x\nlet xs = List.sort compare ys";
  check_fires "float literal equality" "SRC003" "let ok = x = 1.5";
  check_fires "float literal inequality" "SRC003" "let ok = x <> 2e-3";
  check_clean "exact-zero test is idiomatic" "SRC003" "let ok = x <> 0.0"

let test_src004_parallel_mutation () =
  check_fires "module-level ref in body" "SRC004"
    "let acc = ref 0\nlet () = Parallel.Pool.parallel_for pool 10 (fun i -> acc := !acc + i)";
  check_fires "incr in body" "SRC004"
    "let n = ref 0\nlet () = Parallel.Pool.parallel_for pool 10 (fun _ -> incr n)";
  check_fires "hashtbl mutation in body" "SRC004"
    "let h = Hashtbl.create 4\nlet () = parallel_map pool 10 (fun i -> Hashtbl.add h i i)";
  check_clean "locally bound ref is fine" "SRC004"
    "let () = Parallel.Pool.parallel_for pool 10 (fun i -> let s = ref 0 in s := i; out.(i) <- !s)";
  check_clean "slot write is the design" "SRC004"
    "let () = Parallel.Pool.parallel_for pool 10 (fun i -> out.(i) <- f i)"

let test_src005_catch_all () =
  check_fires "with _ ->" "SRC005" "let f () = try g () with _ -> ()";
  check_clean "named and reraised" "SRC005"
    "let f () = try g () with Not_found -> ()"

let test_src006_missing_mli () =
  let dir = Filename.temp_dir "srclint" "" in
  let lib = Filename.concat dir "lib" in
  Sys.mkdir lib 0o755;
  let bare = Filename.concat lib "bare.ml" in
  let covered = Filename.concat lib "covered.ml" in
  let oc = open_out bare in
  output_string oc "let x = 1\n";
  close_out oc;
  let oc = open_out covered in
  output_string oc "let x = 1\n";
  close_out oc;
  let oc = open_out (covered ^ "i") in
  output_string oc "val x : int\n";
  close_out oc;
  Alcotest.(check bool) "bare module flagged" true
    (match Srclint_rules.mli_missing bare with
    | Some d -> d.D.code = "SRC006"
    | None -> false);
  Alcotest.(check bool) "covered module clean" true
    (Srclint_rules.mli_missing covered = None);
  Alcotest.(check bool) "outside lib/ exempt" true
    (Srclint_rules.mli_missing "bin/symor.ml" = None)

let test_src007_printing () =
  check_fires "print_endline in lib" "SRC007" "let f () = print_endline \"x\"";
  check_fires "Printf.printf in lib" "SRC007" "let f () = Printf.printf \"%d\" 3";
  check_clean "sprintf is pure" "SRC007" "let s = Printf.sprintf \"%d\" 3";
  check_clean "printing from bin is fine" ~path:"bin/symor.ml" "SRC007"
    "let f () = print_endline \"x\""

let test_src008_exit () =
  check_fires "exit in lib" "SRC008" "let f () = exit 2";
  check_clean "at_exit is not exit" "SRC008" "let () = at_exit cleanup";
  check_clean "exit from bin is the contract" ~path:"bin/symor.ml" "SRC008"
    "let () = exit 2"

let test_src009_obj () =
  check_fires "Obj.magic" "SRC009" "let f x = Obj.magic x";
  check_fires "Obj in bench too" ~path:"bench/main.ml" "SRC009"
    "let f x = Obj.repr x"

let test_src010_spawn () =
  check_fires "Domain.spawn outside the pool" "SRC010"
    "let d = Domain.spawn (fun () -> ())";
  check_clean "lib/parallel owns domains" ~path:"lib/parallel/parallel.ml" "SRC010"
    "let d = Domain.spawn (fun () -> ())";
  check_fires "Thread.create anywhere" ~path:"lib/parallel/parallel.ml" "SRC010"
    "let t = Thread.create f ()"

let test_src011_getenv () =
  check_fires "non-literal variable" "SRC011" "let v = Sys.getenv_opt name";
  check_fires "non-SYMOR variable" "SRC011" "let v = Sys.getenv_opt \"HOME\"";
  check_clean "SYMOR_* literal" "SRC011" "let v = Sys.getenv_opt \"SYMOR_JOBS\""

let src012_fixture guard =
  Printf.sprintf
    "let state = ref 0\n\
     let bump () = %sstate := !state + 1%s\n\
     let _w = Domain.spawn (fun () -> bump ())\n"
    (if guard then "Mutex.lock m; " else "")
    (if guard then "; Mutex.unlock m" else "")

let test_src012_shared_state () =
  check_fires "unguarded shared ref" "SRC012" (src012_fixture false);
  check_clean "mutex-guarded access" "SRC012" (src012_fixture true);
  check_clean "no domains, no rule" "SRC012"
    "let state = ref 0\nlet bump () = state := !state + 1"

let test_suppression () =
  check_clean "expression attribute" "SRC003"
    "let xs = List.sort (compare [@srclint.allow \"SRC003\"]) ys";
  check_clean "binding attribute" "SRC001"
    "let t = Sys.time () [@@srclint.allow \"SRC001\"]";
  check_clean "file-level floating attribute" "SRC002"
    "[@@@srclint.allow \"SRC002\"]\nlet x = Random.int 5";
  check_fires "suppression is per-code" "SRC002"
    "[@@@srclint.allow \"SRC001\"]\nlet x = Random.int 5"

let test_severities () =
  let sev code src =
    match
      List.find_opt
        (fun d -> d.D.code = code)
        (Srclint_rules.lint_source ~path:"lib/core/fixture.ml" src)
    with
    | Some d -> Some d.D.severity
    | None -> None
  in
  Alcotest.(check bool) "SRC001 is an error" true
    (sev "SRC001" "let t = Sys.time ()" = Some D.Error);
  Alcotest.(check bool) "SRC003 is a warning" true
    (sev "SRC003" "let xs = List.sort compare ys" = Some D.Warning)

let test_lines_and_json () =
  let ds =
    Srclint_rules.lint_source ~path:"lib/core/fixture.ml"
      "let a = 1\nlet t = Sys.time ()\n"
  in
  (match ds with
  | [ d ] -> Alcotest.(check (option int)) "line 2" (Some 2) d.D.line
  | _ -> Alcotest.failf "expected exactly one finding, got %d" (List.length ds));
  let json = D.list_to_json ds in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "JSON carries the code" true
    (contains "\"code\":\"SRC001\"" json)

let () =
  Alcotest.run "srclint"
    [
      ( "rules",
        [
          Alcotest.test_case "SRC000 parse error" `Quick test_src000_parse_error;
          Alcotest.test_case "SRC001 clocks" `Quick test_src001_clocks;
          Alcotest.test_case "SRC002 random" `Quick test_src002_random;
          Alcotest.test_case "SRC003 compare" `Quick test_src003_compare;
          Alcotest.test_case "SRC004 parallel mutation" `Quick
            test_src004_parallel_mutation;
          Alcotest.test_case "SRC005 catch-all" `Quick test_src005_catch_all;
          Alcotest.test_case "SRC006 missing mli" `Quick test_src006_missing_mli;
          Alcotest.test_case "SRC007 printing" `Quick test_src007_printing;
          Alcotest.test_case "SRC008 exit" `Quick test_src008_exit;
          Alcotest.test_case "SRC009 Obj" `Quick test_src009_obj;
          Alcotest.test_case "SRC010 spawn" `Quick test_src010_spawn;
          Alcotest.test_case "SRC011 getenv" `Quick test_src011_getenv;
          Alcotest.test_case "SRC012 shared state" `Quick test_src012_shared_state;
        ] );
      ( "meta",
        [
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "severities" `Quick test_severities;
          Alcotest.test_case "lines and JSON" `Quick test_lines_and_json;
        ] );
    ]
