(* Tests for the sparse substrate: COO/CSR, RCM ordering, skyline LDLᵀ. *)

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* a small symmetric 5-point-stencil Laplacian on a g×g grid, plus
   diagonal shift to make it definite *)
let grid_laplacian g shift =
  let n = g * g in
  let tr = Sparse.Triplet.create n n in
  let idx i j = (i * g) + j in
  for i = 0 to g - 1 do
    for j = 0 to g - 1 do
      let u = idx i j in
      Sparse.Triplet.add tr u u (4.0 +. shift);
      if i > 0 then Sparse.Triplet.add tr u (idx (i - 1) j) (-1.0);
      if i < g - 1 then Sparse.Triplet.add tr u (idx (i + 1) j) (-1.0);
      if j > 0 then Sparse.Triplet.add tr u (idx i (j - 1)) (-1.0);
      if j < g - 1 then Sparse.Triplet.add tr u (idx i (j + 1)) (-1.0)
    done
  done;
  Sparse.Csr.of_triplet tr

(* ------------------------------------------------------------------ *)
(* Triplet / CSR                                                      *)

let test_triplet_merge () =
  let tr = Sparse.Triplet.create 3 3 in
  Sparse.Triplet.add tr 0 0 1.0;
  Sparse.Triplet.add tr 0 0 2.0;
  Sparse.Triplet.add tr 2 1 5.0;
  Sparse.Triplet.add tr 1 2 0.0;
  (* dropped *)
  let a = Sparse.Csr.of_triplet tr in
  Alcotest.(check int) "nnz after merge" 2 (Sparse.Csr.nnz a);
  checkf "merged" ~tol:0.0 3.0 (Sparse.Csr.get a 0 0);
  checkf "other" ~tol:0.0 5.0 (Sparse.Csr.get a 2 1);
  checkf "absent" ~tol:0.0 0.0 (Sparse.Csr.get a 1 1)

let test_triplet_bounds () =
  let tr = Sparse.Triplet.create 2 2 in
  Alcotest.(check bool) "raises" true
    (try
       Sparse.Triplet.add tr 2 0 1.0;
       false
     with Invalid_argument _ -> true)

let test_csr_dense_roundtrip () =
  let rng = Linalg.Rng.create 21 in
  let m =
    Linalg.Mat.init 6 7 (fun _ _ ->
        if Linalg.Rng.float rng < 0.3 then Linalg.Rng.uniform rng (-2.0) 2.0 else 0.0)
  in
  let a = Sparse.Csr.of_dense m in
  checkf "roundtrip" ~tol:0.0 0.0 (Linalg.Mat.dist_max (Sparse.Csr.to_dense a) m)

let test_csr_spmv () =
  let a = grid_laplacian 4 0.5 in
  let d = Sparse.Csr.to_dense a in
  let x = Linalg.Vec.init 16 (fun i -> sin (float_of_int i)) in
  let y_sparse = Sparse.Csr.mul_vec a x in
  let y_dense = Linalg.Mat.mul_vec d x in
  checkf "spmv matches dense" ~tol:1e-13 0.0 (Linalg.Vec.dist_inf y_sparse y_dense)

let test_csr_transpose () =
  let tr = Sparse.Triplet.create 2 3 in
  Sparse.Triplet.add tr 0 2 4.0;
  Sparse.Triplet.add tr 1 0 (-3.0);
  let a = Sparse.Csr.of_triplet tr in
  let at = Sparse.Csr.transpose a in
  checkf "t(0,2)->(2,0)" ~tol:0.0 4.0 (Sparse.Csr.get at 2 0);
  checkf "t(1,0)->(0,1)" ~tol:0.0 (-3.0) (Sparse.Csr.get at 0 1);
  Alcotest.(check int) "rows" 3 at.Sparse.Csr.rows

let test_csr_add_scale () =
  let a = grid_laplacian 3 0.0 in
  let b = Sparse.Csr.identity 9 in
  let c = Sparse.Csr.add ~alpha:2.0 ~beta:(-1.0) a b in
  checkf "2a - I diag" ~tol:1e-14 7.0 (Sparse.Csr.get c 4 4);
  let s = Sparse.Csr.scale 3.0 b in
  checkf "scale" ~tol:0.0 3.0 (Sparse.Csr.get s 0 0)

let test_csr_symmetric () =
  let a = grid_laplacian 3 1.0 in
  Alcotest.(check bool) "laplacian symmetric" true (Sparse.Csr.is_symmetric a);
  let tr = Sparse.Triplet.create 2 2 in
  Sparse.Triplet.add tr 0 1 1.0;
  let b = Sparse.Csr.of_triplet tr in
  Alcotest.(check bool) "unsymmetric detected" false (Sparse.Csr.is_symmetric b)

let test_csr_permute_sym () =
  let a = grid_laplacian 3 2.0 in
  let perm = [| 4; 0; 8; 2; 6; 1; 3; 5; 7 |] in
  let p = Sparse.Csr.permute_sym a perm in
  (* spot-check P A Pᵀ entries *)
  for i = 0 to 8 do
    for j = 0 to 8 do
      checkf "permuted entry" ~tol:0.0
        (Sparse.Csr.get a perm.(i) perm.(j))
        (Sparse.Csr.get p i j)
    done
  done

(* ------------------------------------------------------------------ *)
(* RCM                                                                *)

let test_rcm_reduces_profile () =
  (* random sparse symmetric with scattered pattern *)
  let n = 60 in
  let rng = Linalg.Rng.create 31 in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i 4.0
  done;
  for _ = 1 to 3 * n do
    let i = Linalg.Rng.int rng n and j = Linalg.Rng.int rng n in
    if i <> j then Sparse.Triplet.add_sym tr i j (-0.1)
  done;
  let a = Sparse.Csr.of_triplet tr in
  let perm = Sparse.Rcm.order a in
  (* perm must be a permutation *)
  let seen = Array.make n false in
  Array.iter (fun p -> seen.(p) <- true) perm;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen);
  let p = Sparse.Csr.permute_sym a perm in
  Alcotest.(check bool) "profile not increased much" true
    (Sparse.Csr.profile p <= Sparse.Csr.profile a)

let test_rcm_chain_bandwidth () =
  (* a path graph given in scrambled order should come back banded *)
  let n = 40 in
  let scramble = Array.init n (fun i -> (i * 17) mod n) in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr scramble.(i) scramble.(i) 2.0
  done;
  for i = 0 to n - 2 do
    Sparse.Triplet.add_sym tr scramble.(i) scramble.(i + 1) (-1.0)
  done;
  let a = Sparse.Csr.of_triplet tr in
  let p = Sparse.Csr.permute_sym a (Sparse.Rcm.order a) in
  Alcotest.(check bool)
    (Printf.sprintf "bandwidth small (%d)" (Sparse.Csr.bandwidth p))
    true
    (Sparse.Csr.bandwidth p <= 2)

let test_rcm_disconnected () =
  (* two disjoint chains *)
  let tr = Sparse.Triplet.create 6 6 in
  for i = 0 to 5 do
    Sparse.Triplet.add tr i i 2.0
  done;
  Sparse.Triplet.add_sym tr 0 2 (-1.0);
  Sparse.Triplet.add_sym tr 2 4 (-1.0);
  Sparse.Triplet.add_sym tr 1 3 (-1.0);
  Sparse.Triplet.add_sym tr 3 5 (-1.0);
  let a = Sparse.Csr.of_triplet tr in
  let perm = Sparse.Rcm.order a in
  let seen = Array.make 6 false in
  Array.iter (fun p -> seen.(p) <- true) perm;
  Alcotest.(check bool) "covers all nodes" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Skyline                                                            *)

let test_skyline_real_solve () =
  let a = grid_laplacian 6 1.0 in
  let f = Sparse.Skyline.factor_real a in
  let b = Array.init 36 (fun i -> cos (float_of_int i)) in
  let x = Sparse.Skyline.Real.solve f b in
  let r = Sparse.Csr.mul_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i ri -> worst := Float.max !worst (Float.abs (ri -. b.(i)))) r;
  checkf "residual" ~tol:1e-10 0.0 !worst

let test_skyline_matches_dense () =
  let a = grid_laplacian 4 0.7 in
  let d = Sparse.Csr.to_dense a in
  let b = Linalg.Vec.init 16 (fun i -> float_of_int (i mod 3) -. 1.0) in
  let x_sky = Sparse.Skyline.Real.solve (Sparse.Skyline.factor_real a) (Array.copy b) in
  let x_dense = Linalg.Lu.solve d b in
  checkf "skyline = dense" ~tol:1e-10 0.0 (Linalg.Vec.dist_inf x_sky x_dense)

let test_skyline_indefinite () =
  (* symmetric indefinite but factorable without pivoting *)
  let m =
    Linalg.Mat.of_arrays
      [| [| 2.0; 1.0; 0.0 |]; [| 1.0; -3.0; 1.0 |]; [| 0.0; 1.0; 1.0 |] |]
  in
  let a = Sparse.Csr.of_dense m in
  let f = Sparse.Skyline.factor_real a in
  let d = Sparse.Skyline.Real.d f in
  Alcotest.(check bool) "has a negative pivot" true (Array.exists (fun x -> x < 0.0) d);
  let b = [| 1.0; 0.0; -1.0 |] in
  let x = Sparse.Skyline.Real.solve f b in
  let r = Linalg.Vec.sub (Linalg.Mat.mul_vec m x) b in
  checkf "indefinite residual" ~tol:1e-12 0.0 (Linalg.Vec.norm_inf r)

let test_skyline_singular_raises () =
  let m = Linalg.Mat.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let a = Sparse.Csr.of_dense m in
  Alcotest.(check bool) "raises Singular" true
    (try
       ignore (Sparse.Skyline.factor_real a);
       false
     with Sparse.Skyline.Singular _ -> true)

let test_skyline_complex () =
  let g = grid_laplacian 4 0.3 in
  let c = Sparse.Csr.identity 16 in
  let s = { Complex.re = 0.0; im = 2.0 } in
  let f = Sparse.Skyline.factor_complex s g c in
  let b = Array.init 16 (fun i -> { Complex.re = float_of_int i; im = 1.0 }) in
  let x = Sparse.Skyline.Complex_sym.solve f b in
  (* residual against dense complex solve *)
  let gc =
    Linalg.Cmat.lincomb Linalg.Cx.one (Sparse.Csr.to_dense g) s (Sparse.Csr.to_dense c)
  in
  let r = Linalg.Cmat.mul_vec gc x in
  let worst = ref 0.0 in
  Array.iteri
    (fun i ri -> worst := Float.max !worst (Linalg.Cx.abs (Complex.sub ri b.(i))))
    r;
  checkf "complex residual" ~tol:1e-10 0.0 !worst

let test_skyline_rcm_fill () =
  (* RCM should not increase the envelope fill of a scrambled chain *)
  let n = 50 in
  let scramble = Array.init n (fun i -> (i * 23) mod n) in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr scramble.(i) scramble.(i) 3.0
  done;
  for i = 0 to n - 2 do
    Sparse.Triplet.add_sym tr scramble.(i) scramble.(i + 1) (-1.0)
  done;
  let a = Sparse.Csr.of_triplet tr in
  let fa = Sparse.Skyline.factor_real a in
  let p = Sparse.Csr.permute_sym a (Sparse.Rcm.order a) in
  let fp = Sparse.Skyline.factor_real p in
  Alcotest.(check bool)
    (Printf.sprintf "fill %d -> %d" (Sparse.Skyline.Real.fill fa) (Sparse.Skyline.Real.fill fp))
    true
    (Sparse.Skyline.Real.fill fp < Sparse.Skyline.Real.fill fa)

let test_csr_bandwidth_profile () =
  let tr = Sparse.Triplet.create 5 5 in
  for i = 0 to 4 do
    Sparse.Triplet.add tr i i 1.0
  done;
  Sparse.Triplet.add_sym tr 0 3 0.5;
  let a = Sparse.Csr.of_triplet tr in
  Alcotest.(check int) "bandwidth" 3 (Sparse.Csr.bandwidth a);
  (* profile: rows 0,1,2 start at diag; row 3 reaches back to col 0 *)
  Alcotest.(check int) "profile" 3 (Sparse.Csr.profile a)

let test_skyline_fill_reported () =
  let tr = Sparse.Triplet.create 4 4 in
  for i = 0 to 3 do
    Sparse.Triplet.add tr i i 4.0
  done;
  Sparse.Triplet.add_sym tr 0 3 1.0;
  let f = Sparse.Skyline.factor_real (Sparse.Csr.of_triplet tr) in
  (* envelope of row 3 spans columns 0..2 *)
  Alcotest.(check int) "fill" 3 (Sparse.Skyline.Real.fill f)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let prop_spmv_matches_dense =
  QCheck.Test.make ~count:50 ~name:"csr: spmv matches dense matvec"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let rows = 1 + Linalg.Rng.int rng 10 and cols = 1 + Linalg.Rng.int rng 10 in
      let m =
        Linalg.Mat.init rows cols (fun _ _ ->
            if Linalg.Rng.float rng < 0.4 then Linalg.Rng.uniform rng (-1.0) 1.0 else 0.0)
      in
      let a = Sparse.Csr.of_dense m in
      let x = Linalg.Vec.init cols (fun _ -> Linalg.Rng.uniform rng (-1.0) 1.0) in
      Linalg.Vec.dist_inf (Sparse.Csr.mul_vec a x) (Linalg.Mat.mul_vec m x) < 1e-12)

let prop_skyline_solve =
  QCheck.Test.make ~count:30 ~name:"skyline: SPD solve residual small"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let g = 2 + Linalg.Rng.int rng 5 in
      let a = grid_laplacian g (Linalg.Rng.uniform rng 0.1 2.0) in
      let n = g * g in
      let b = Array.init n (fun _ -> Linalg.Rng.uniform rng (-1.0) 1.0) in
      let x = Sparse.Skyline.Real.solve (Sparse.Skyline.factor_real a) b in
      let r = Sparse.Csr.mul_vec a x in
      let worst = ref 0.0 in
      Array.iteri (fun i ri -> worst := Float.max !worst (Float.abs (ri -. b.(i)))) r;
      !worst < 1e-9)

let prop_rcm_permutation =
  QCheck.Test.make ~count:30 ~name:"rcm: output is a permutation"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let n = 1 + Linalg.Rng.int rng 40 in
      let tr = Sparse.Triplet.create n n in
      for i = 0 to n - 1 do
        Sparse.Triplet.add tr i i 1.0
      done;
      for _ = 1 to 2 * n do
        let i = Linalg.Rng.int rng n and j = Linalg.Rng.int rng n in
        if i <> j then Sparse.Triplet.add_sym tr i j 0.5
      done;
      let perm = Sparse.Rcm.order (Sparse.Csr.of_triplet tr) in
      let seen = Array.make n false in
      Array.iter (fun p -> seen.(p) <- true) perm;
      Array.length perm = n && Array.for_all Fun.id seen)

let () =
  let qsuite =
    List.map (fun t -> Qtest.to_alcotest t)
      [ prop_spmv_matches_dense; prop_skyline_solve; prop_rcm_permutation ]
  in
  Alcotest.run "sparse"
    [
      ( "triplet",
        [
          Alcotest.test_case "merge duplicates" `Quick test_triplet_merge;
          Alcotest.test_case "bounds check" `Quick test_triplet_bounds;
        ] );
      ( "csr",
        [
          Alcotest.test_case "dense roundtrip" `Quick test_csr_dense_roundtrip;
          Alcotest.test_case "spmv" `Quick test_csr_spmv;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "add/scale" `Quick test_csr_add_scale;
          Alcotest.test_case "symmetry check" `Quick test_csr_symmetric;
          Alcotest.test_case "symmetric permute" `Quick test_csr_permute_sym;
        ] );
      ( "rcm",
        [
          Alcotest.test_case "reduces profile" `Quick test_rcm_reduces_profile;
          Alcotest.test_case "chain bandwidth" `Quick test_rcm_chain_bandwidth;
          Alcotest.test_case "disconnected graph" `Quick test_rcm_disconnected;
        ] );
      ( "skyline",
        [
          Alcotest.test_case "real solve" `Quick test_skyline_real_solve;
          Alcotest.test_case "matches dense" `Quick test_skyline_matches_dense;
          Alcotest.test_case "indefinite" `Quick test_skyline_indefinite;
          Alcotest.test_case "singular raises" `Quick test_skyline_singular_raises;
          Alcotest.test_case "complex symmetric" `Quick test_skyline_complex;
          Alcotest.test_case "rcm reduces fill" `Quick test_skyline_rcm_fill;
          Alcotest.test_case "bandwidth/profile" `Quick test_csr_bandwidth_profile;
          Alcotest.test_case "fill reported" `Quick test_skyline_fill_reported;
        ] );
      ("properties", qsuite);
    ]
