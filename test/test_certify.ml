(* Certification-pass tests (MOD001–MOD009).

   1. Narrow-band acceptance: a hand-built near-passive model whose
      only passivity violation is a band ~ω₀/500 wide, placed between
      the points of the legacy 16-point sampling grid. The Hamiltonian
      test (Certify / Stability.passivity_bands) must locate the band;
      the deprecated grid sampler must come back empty — that is the
      whole argument for replacing it.
   2. Cross-engine adapter: every engine in Rom.all is routed through
      the one Certify.state_space adapter and the resulting descriptor
      realisation must reproduce Rom.eval on the imaginary axis.
   3. Pin: Stability.model_pencil (the inlined SyMPVL arm) equals the
      pencil Certify builds for the same model.
   4. qcheck property: a lint-clean all-positive RC netlist reduced at
      shift 0 certifies structurally passive (MOD002) with no MOD001 /
      MOD003 complaint, for every supported engine.
   5. Registry: the codes Certify emits are exactly the documented
      Analysis.Mod_rules table. *)

module Rom = Sympvl.Rom
module Certify = Sympvl.Certify
module Model = Sympvl.Model
module Stability = Sympvl.Stability
module H = Linalg.Hamiltonian
module Mat = Linalg.Mat
module D = Circuit.Diagnostic

let find_path cands =
  match List.find_opt Sys.file_exists cands with Some p -> p | None -> List.hd cands

let mna_of base =
  Circuit.Mna.auto
    (Circuit.Parser.parse_file
       (find_path
          [ "../examples/netlists/" ^ base ^ ".cir"; "examples/netlists/" ^ base ^ ".cir" ]))

(* ------------------------------------------------------------------ *)
(* 1. narrow violation band vs the legacy grid                         *)

(* Z(s) = 1 − αβs/(s² + βs + ω₀²) with α = 2, β = ω₀/500: a passive
   unit resistor in series with a band-stop branch that dips to
   Re Z(jω₀) = 1 − α = −1 over a band of width ≈ ω₀/500 — far narrower
   than any decade-spaced grid step. Realised as Z = bᵀ(G + sC)⁻¹b and
   packed into Model.t via T = G⁻¹C, ρ = G⁻¹b, Δ = Gᵀ (so that
   ρᵀΔ(I + sT)⁻¹ρ = bᵀ(G + sC)⁻¹b exactly). *)
let w0 = 2.0 *. Float.pi *. 3e7

let beta = w0 /. 500.0

let narrow_band_model () =
  let alpha = 2.0 in
  let g =
    Mat.of_arrays
      [| [| 1.0; 0.0; 0.0 |]; [| 0.0; -.beta; -.w0 |]; [| 0.0; w0; 0.0 |] |]
  in
  let c =
    Mat.of_arrays
      [| [| 0.0; 0.0; 0.0 |]; [| 0.0; -1.0; 0.0 |]; [| 0.0; 0.0; -1.0 |] |]
  in
  let b = Mat.of_arrays [| [| 1.0 |]; [| sqrt (alpha *. beta) |]; [| 0.0 |] |] in
  let ginv = Linalg.Lu.factor g in
  {
    Model.t_mat = Linalg.Lu.solve_mat ginv c;
    delta = Mat.transpose g;
    rho = Linalg.Lu.solve_mat ginv b;
    order = 3;
    p = 1;
    shift = 0.0;
    variable = Circuit.Mna.S;
    gain = Circuit.Mna.Unit;
    definite = false;
    deflations = 0;
    look_ahead_steps = 0;
    exhausted = false;
  }

(* the legacy reporting grid: 16 log-spaced points over 1 MHz..10 GHz *)
let legacy_grid =
  Array.init 16 (fun k ->
      2.0 *. Float.pi *. (10.0 ** (6.0 +. (4.0 *. float_of_int k /. 15.0))))

let test_narrow_band () =
  let m = narrow_band_model () in
  (* the realisation is exact: check the construction at a probe point *)
  let z = Model.eval_jw m (0.5 *. w0) in
  let s = Complex.{ re = 0.0; im = 0.5 *. w0 } in
  let den = Complex.add (Complex.mul s s) (Complex.add (Complex.mul { re = beta; im = 0.0 } s) { re = w0 *. w0; im = 0.0 }) in
  let want =
    Complex.sub { re = 1.0; im = 0.0 }
      (Complex.div (Complex.mul { re = 2.0 *. beta; im = 0.0 } s) den)
  in
  let err = Complex.norm (Complex.sub (Linalg.Cmat.get z 0 0) want) in
  Alcotest.(check bool) "hand-built model matches the closed form" true (err < 1e-9);
  (* grid sampling at the legacy reporting density misses the band
     entirely — the reason the band test replaced the grid sampler *)
  Array.iter
    (fun w ->
      let z = Model.eval_jw m w in
      let me = Linalg.Cmat.min_eig_hermitian (Linalg.Cmat.hermitian_part z) in
      let scale = Float.max (Linalg.Cmat.max_abs z) 1e-300 in
      if me < -.1e-9 *. scale then
        Alcotest.failf "legacy grid sees the violation at %g rad/s (λ = %g)" w me)
    legacy_grid;
  (* the Hamiltonian test, through the same pencil certify uses,
     locates it exactly *)
  let bands = Stability.passivity_bands m in
  Alcotest.(check int) "exactly one violation band" 1 (List.length bands);
  let b = List.hd bands in
  Alcotest.(check bool)
    "band contains ω₀" true
    (b.H.w_lo < w0 && w0 < b.H.w_hi);
  Alcotest.(check bool)
    "band is narrow (≲ ω₀/250 wide)" true
    (b.H.w_hi -. b.H.w_lo < w0 /. 250.0);
  Alcotest.(check bool)
    "worst depth ≈ −1" true
    (Float.abs (b.H.lambda_min +. 1.0) < 1e-3);
  (* and the certify adapter reports the same band on the same model *)
  let phys = Certify.phys_pencil (Certify.state_space (Rom.Sympvl_model m)) in
  match H.violation_bands phys with
  | [ b' ] ->
    Alcotest.(check bool)
      "certify band agrees with Stability.passivity_bands" true
      (Float.abs (b'.H.w_worst -. b.H.w_worst) < 1e-6 *. w0)
  | bs -> Alcotest.failf "certify found %d bands, expected 1" (List.length bs)

(* ------------------------------------------------------------------ *)
(* 2. every engine through the one adapter                             *)

(* balanced truncation needs a capacitor on every node — none of the
   shipped examples qualifies, so the BT leg runs on a generated
   all-caps RC ladder *)
let bt_mna () =
  Circuit.Mna.assemble_rc (Circuit.Generators.random_rc ~nodes:8 ~extra_edges:4 ~seed:7 ())

let adapter_opts eng (m : Circuit.Mna.t) =
  match eng with
  | `Awe -> { (Rom.default ~order:3) with Rom.band = Some (1e6, 1e10) }
  | _ -> Rom.default ~order:m.Circuit.Mna.n

let test_adapter_all_engines () =
  let exercised = ref [] in
  let probe (m : Circuit.Mna.t) eng =
    match Rom.supports eng m with
    | Error _ -> ()
    | Ok () ->
      let opts = adapter_opts eng m in
      let model = Rom.reduce ~opts ~order:opts.Rom.order eng m in
      let r = Certify.state_space model in
      Alcotest.(check bool)
        (Rom.name eng ^ ": adapter reports the engine") true
        (r.Certify.engine = eng);
      (* the realisation must reproduce the engine's own eval at
         physical frequencies spanning the band *)
      List.iter
        (fun f ->
          let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
          let ze = Rom.eval model s in
          let zr = Certify.eval r s in
          let scale = Float.max (Linalg.Cmat.max_abs ze) 1e-300 in
          let err = Linalg.Cmat.dist_max ze zr /. scale in
          if err > 1e-8 then
            Alcotest.failf "%s: adapter eval deviates %.3e at %g Hz" (Rom.name eng)
              err f)
        [ 1e6; 3.1e7; 1e9 ];
      if not (List.mem eng !exercised) then exercised := eng :: !exercised
  in
  (* peec_coupled carries the general-form inductor-current block the
     sprim leg needs *)
  let mnas = [ mna_of "rc_line"; mna_of "lc_tank"; mna_of "peec_coupled"; bt_mna () ] in
  List.iter (fun m -> List.iter (probe m) Rom.all) mnas;
  List.iter
    (fun eng ->
      Alcotest.(check bool)
        (Rom.name eng ^ " exercised through the adapter") true
        (List.mem eng !exercised))
    Rom.all

(* ------------------------------------------------------------------ *)
(* 3. Stability.model_pencil ≡ the certify adapter                     *)

let test_pencil_pin () =
  let check name (m : Model.t) =
    let a = Stability.model_pencil m in
    let b = Certify.phys_pencil (Certify.state_space (Rom.Sympvl_model m)) in
    let eq what x y =
      Alcotest.(check (float 0.0)) (name ^ ": " ^ what) 0.0 (Mat.dist_max x y)
    in
    eq "a0" a.H.a0 b.H.a0;
    eq "a1" a.H.a1 b.H.a1;
    eq "b" a.H.b b.H.b;
    eq "c" a.H.c b.H.c
  in
  check "narrow-band model" (narrow_band_model ());
  (match Sympvl.Reduce.mna ~order:6 (mna_of "rc_line") with
  | m -> check "rc_line" m);
  (* a shifted and an s²-variable model exercise the augmentation arms *)
  (match Sympvl.Reduce.mna ~order:4 (mna_of "rl_ladder") with
  | m ->
    Alcotest.(check bool) "rl_ladder model is shifted" true (m.Model.shift <> 0.0);
    check "rl_ladder (shifted)" m);
  match Sympvl.Reduce.mna ~order:3 (mna_of "lc_tank") with
  | m ->
    Alcotest.(check bool)
      "lc_tank model is s²-variable" true
      (m.Model.variable = Circuit.Mna.S_squared);
    check "lc_tank (s², ×s gain)" m

(* ------------------------------------------------------------------ *)
(* 4. property: clean RC at shift 0 certifies passive on every engine  *)

let prop_clean_rc_certifies =
  QCheck.Test.make ~count:12
    ~name:"lint-clean RC, shift 0 => MOD002 certified, no MOD001/MOD003"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let nl = Circuit.Generators.random_rc ~nodes:10 ~extra_edges:5 ~seed () in
      let clean =
        List.for_all
          (fun d -> d.D.severity <> D.Error)
          (Analysis.Lint.run nl)
      in
      QCheck.assume clean;
      let mna = Circuit.Mna.assemble_rc nl in
      let ctx = Sympvl.Pencil.create mna in
      List.for_all
        (fun eng ->
          match Rom.supports eng mna with
          | Error _ -> true
          | Ok () -> (
            let opts = adapter_opts eng mna in
            match Rom.reduce ~ctx ~opts ~order:opts.Rom.order eng mna with
            | exception (Sympvl.Awe.Breakdown _ | Sympvl.Mpvl.Breakdown _) -> true
            | model ->
              if Rom.shift model <> 0.0 then true
              else begin
                let rep = Certify.run ~ctx model mna in
                let bad =
                  List.filter
                    (fun d ->
                      d.D.severity <> D.Info
                      && (d.D.code = "MOD001" || d.D.code = "MOD002"
                        || d.D.code = "MOD003"))
                    rep.Certify.findings
                in
                let certified =
                  List.exists
                    (fun d ->
                      d.D.code = "MOD002" && d.D.severity = D.Info
                      && d.D.line = None)
                    rep.Certify.findings
                in
                if bad <> [] || not certified then begin
                  List.iter
                    (fun d ->
                      Printf.printf "[certify] %s %s: %s\n" (Rom.name eng) d.D.code
                        d.D.message)
                    bad;
                  false
                end
                else true
              end))
        Rom.all)

(* ------------------------------------------------------------------ *)
(* 5. registry cross-check                                             *)

let test_registry () =
  let codes = List.map (fun (c, _, _) -> c) Analysis.Mod_rules.rules in
  Alcotest.(check (list string))
    "registry is MOD001..MOD009 in order"
    (List.init 9 (fun i -> Printf.sprintf "MOD%03d" (i + 1)))
    codes;
  (* every code the pass emits is documented *)
  let mna = mna_of "coupled_lines" in
  let ctx = Sympvl.Pencil.create mna in
  let emitted = ref [] in
  List.iter
    (fun eng ->
      match Rom.supports eng mna with
      | Error _ -> ()
      | Ok () ->
        let opts = adapter_opts eng mna in
        let model = Rom.reduce ~ctx ~opts ~order:opts.Rom.order eng mna in
        let rep = Certify.run ~ctx model mna in
        List.iter (fun d -> emitted := d.D.code :: !emitted) rep.Certify.findings)
    Rom.all;
  Alcotest.(check bool) "certify emitted findings" true (!emitted <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c ^ " is in the Mod_rules registry") true
        (Option.is_some (Analysis.Mod_rules.find c)))
    !emitted

let () =
  Alcotest.run "certify"
    [
      ( "narrow band",
        [ Alcotest.test_case "found by Hamiltonian, missed by grid" `Quick test_narrow_band ] );
      ( "adapter",
        [ Alcotest.test_case "all engines through state_space" `Quick test_adapter_all_engines ] );
      ( "pencil pin",
        [ Alcotest.test_case "Stability.model_pencil = certify" `Quick test_pencil_pin ] );
      ("properties", [ Qtest.to_alcotest prop_clean_rc_certifies ]);
      ("registry", [ Alcotest.test_case "codes documented" `Quick test_registry ]);
    ]
