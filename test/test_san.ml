(* Tests for the runtime sanitizers (SYMOR_SAN): the checked-pool race
   detector, the FP kernel monitor, the sanitizers-off cost contract,
   and the pool_for publication fix the race checker exists to guard. *)

let with_san ?race ?fp f =
  San.set ?race ?fp ();
  Fun.protect
    ~finally:(fun () ->
      San.set ~race:false ~fp:false ();
      San.clear_findings ())
    f

let codes () = List.map (fun f -> f.San.san_code) (San.findings ())

(* ------------------------------------------------------------------ *)
(* Race: batch ownership slots                                         *)

let test_batch_clean () =
  let b = San.Race.batch_begin ~n:8 in
  for i = 0 to 7 do
    San.Race.claim b i
  done;
  San.Race.batch_end b

let test_batch_double_claim () =
  let b = San.Race.batch_begin ~n:4 in
  San.Race.claim b 2;
  (match San.Race.claim b 2 with
  | () -> Alcotest.fail "second claim of the same slot must raise"
  | exception San.Violation msg ->
    Alcotest.(check bool) "names SAN201" true
      (String.length msg >= 6 && String.sub msg 0 6 = "SAN201"));
  San.Race.batch_abort b

let test_batch_unclaimed_slot () =
  let b = San.Race.batch_begin ~n:5 in
  List.iter (San.Race.claim b) [ 0; 1; 3; 4 ];
  match San.Race.batch_end b with
  | () -> Alcotest.fail "batch_end must flag the unwritten slot"
  | exception San.Violation msg ->
    let contains needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "names SAN202 and slot 2" true
      (String.sub msg 0 6 = "SAN202" && contains "slot 2" msg)

(* ------------------------------------------------------------------ *)
(* Race: cross-kernel write registry                                   *)

let test_note_write_inactive_is_noop () =
  (* no open batch: the registry must ignore the write entirely *)
  San.Race.note_write ~tag:"t" 3;
  San.Race.note_write ~tag:"t" 3

let test_note_write_double () =
  let b = San.Race.batch_begin ~n:1 in
  San.Race.note_write ~tag:"z" 7;
  (match San.Race.note_write ~tag:"z" 7 with
  | () -> Alcotest.fail "double write of the same output slot must raise"
  | exception San.Violation msg ->
    Alcotest.(check bool) "names SAN203" true (String.sub msg 0 6 = "SAN203"));
  San.Race.claim b 0;
  San.Race.batch_end b

let test_note_write_distinct_tags () =
  let b = San.Race.batch_begin ~n:1 in
  San.Race.note_write ~tag:"a" 0;
  San.Race.note_write ~tag:"b" 0;
  (* same index, different kernels: not a conflict *)
  San.Race.claim b 0;
  San.Race.batch_end b

(* ------------------------------------------------------------------ *)
(* Race: seeded schedule permutation                                   *)

let test_permute_is_permutation () =
  List.iter
    (fun seed ->
      let p = San.Race.permute ~seed 97 in
      let seen = Array.make 97 false in
      Array.iter (fun i -> seen.(i) <- true) p;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d covers all chunks" seed)
        true
        (Array.for_all Fun.id seen))
    [ 0; 1; 42; 0x53414e ]

let test_permute_deterministic () =
  Alcotest.(check bool) "same seed, same order" true
    (San.Race.permute ~seed:7 64 = San.Race.permute ~seed:7 64);
  Alcotest.(check bool) "different seeds differ" true
    (San.Race.permute ~seed:7 64 <> San.Race.permute ~seed:8 64)

(* ------------------------------------------------------------------ *)
(* Race: end-to-end through the pool                                   *)

let test_pooled_loop_clean_under_race () =
  with_san ~race:true @@ fun () ->
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let out = Array.make 500 0 in
      Parallel.Pool.parallel_for pool ~chunk:7 500 (fun i -> out.(i) <- i * i);
      Alcotest.(check bool) "checked loop completes and covers" true
        (Array.for_all2 (fun v i -> v = i * i) out (Array.init 500 Fun.id)))

let test_pooled_double_write_detected () =
  with_san ~race:true @@ fun () ->
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      match
        (* every pair of iterations targets one output slot — the
           overlap the checker exists to catch *)
        Parallel.Pool.parallel_for pool ~chunk:1 64 (fun i ->
            San.Race.note_write ~tag:"collide" (i / 2))
      with
      | () -> Alcotest.fail "overlapping writers must raise Violation"
      | exception San.Violation msg ->
        Alcotest.(check bool) "names SAN203" true (String.sub msg 0 6 = "SAN203"))

let test_race_off_pool_unchecked () =
  (* sanitizer off: the same overlapping pattern runs silently *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      Parallel.Pool.parallel_for pool ~chunk:1 64 (fun i ->
          San.Race.note_write ~tag:"collide" (i / 2)))

(* ------------------------------------------------------------------ *)
(* pool_for publication: concurrent callers agree on one pool          *)

let test_pool_for_no_duplicates () =
  let jobs = 5 in
  let before = Parallel.pool_count () in
  let barrier = Atomic.make 0 in
  let spawn () =
    Domain.spawn (fun () ->
        Atomic.incr barrier;
        while Atomic.get barrier < 4 do
          Domain.cpu_relax ()
        done;
        Parallel.pool_for ~jobs)
  in
  let doms = List.init 4 (fun _ -> spawn ()) in
  let pools = List.map Domain.join doms in
  let first = List.hd pools in
  Alcotest.(check bool) "all callers got the same pool" true
    (List.for_all (fun p -> p == first) pools);
  Alcotest.(check int) "exactly one pool was created" (before + 1)
    (Parallel.pool_count ())

(* ------------------------------------------------------------------ *)
(* FP monitor                                                          *)

let test_fp_check_records () =
  with_san ~fp:true @@ fun () ->
  San.Fp.check ~name:"t" 1.0;
  Alcotest.(check (list string)) "finite value is silent" [] (codes ());
  San.Fp.check ~name:"t" Float.nan;
  San.Fp.check ~name:"t" Float.infinity;
  Alcotest.(check (list string)) "NaN and Inf each record SAN101"
    [ "SAN101"; "SAN101" ] (codes ())

let test_fp_check_array_index () =
  with_san ~fp:true @@ fun () ->
  San.Fp.check_array ~name:"arr" [| 1.0; 2.0; Float.nan; 4.0 |];
  match San.findings () with
  | [ f ] ->
    Alcotest.(check string) "code" "SAN101" f.San.san_code;
    Alcotest.(check bool) "message names index 2" true
      (String.length f.San.san_message > 0
      && String.ends_with ~suffix:"index 2" f.San.san_message)
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs)

let test_fp_growth_threshold () =
  with_san ~fp:true @@ fun () ->
  San.Fp.growth ~name:"k" ~scale:1.0 ~lmax:1e3 ~dmax:1e5;
  Alcotest.(check (list string)) "benign growth is silent" [] (codes ());
  San.Fp.growth ~name:"k" ~scale:1.0 ~lmax:1e12 ~dmax:1.0;
  Alcotest.(check (list string)) "|L|max beyond limit records SAN102" [ "SAN102" ]
    (codes ())

let test_fp_skyline_nan_detected () =
  with_san ~fp:true @@ fun () ->
  let first = [| 0; 0; 0 |] in
  let get i j = if i = 2 && j = 2 then Float.nan else if i = j then 1.0 else 0.1 in
  (match Sparse.Skyline.Real.factor ~n:3 ~first ~get () with
  | _ -> ()
  | exception Sparse.Skyline.Singular _ -> ());
  Alcotest.(check bool) "NaN input surfaces as SAN101" true
    (List.mem "SAN101" (codes ()))

let test_fp_supernodal_nan_detected () =
  with_san ~fp:true @@ fun () ->
  let tr = Sparse.Triplet.create 4 4 in
  for i = 0 to 3 do
    Sparse.Triplet.add tr i i (if i = 2 then Float.nan else 1.0)
  done;
  for i = 0 to 2 do
    Sparse.Triplet.add_sym tr i (i + 1) 0.1
  done;
  let g = Sparse.Csr.of_triplet tr in
  let sym = Sparse.Supernodal.symbolic g in
  (match Sparse.Supernodal.Real.factor sym 0.0 with
  | _ -> ()
  | exception Sparse.Supernodal.Singular _ -> ());
  Alcotest.(check bool) "NaN input surfaces as SAN101" true
    (List.mem "SAN101" (codes ()))

let test_fp_supernodal_solve_clean () =
  (* the production path on a well-conditioned pencil: factor + solve,
     real and split-complex, must record nothing — the supernodal
     probes only fire on genuine non-finite or growth findings *)
  with_san ~fp:true @@ fun () ->
  let n = 12 in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i 2.0;
    if i + 1 < n then Sparse.Triplet.add_sym tr i (i + 1) (-0.5)
  done;
  let g = Sparse.Csr.of_triplet tr in
  let tc = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tc i i 1e-12
  done;
  let c = Sparse.Csr.of_triplet tc in
  let sym = Sparse.Supernodal.symbolic ~c g in
  let fac = Sparse.Supernodal.Real.factor sym 1e9 in
  let _ = Sparse.Supernodal.Real.solve fac (Array.init n float_of_int) in
  let cf = Sparse.Supernodal.Complex_soa.factor sym Complex.{ re = 0.0; im = 1e9 } in
  let xr = Array.make n 1.0 and xi = Array.make n 0.0 in
  Sparse.Supernodal.Complex_soa.solve_split cf xr xi;
  Alcotest.(check (list string)) "clean factor+solve is finding-free" [] (codes ())

let test_fp_ac_sweep_clean () =
  with_san ~fp:true @@ fun () ->
  let nl = Circuit.Generators.rc_line ~sections:12 () in
  let mna = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:9 1e6 1e9 in
  let _ = Simulate.Ac.sweep ~jobs:2 mna freqs in
  Alcotest.(check (list string)) "well-conditioned sweep is finding-free" []
    (codes ())

(* ------------------------------------------------------------------ *)
(* Findings plumbing                                                   *)

let test_findings_clear () =
  with_san ~fp:true @@ fun () ->
  San.Fp.check ~name:"x" Float.nan;
  Alcotest.(check int) "one finding" 1 (List.length (San.findings ()));
  San.clear_findings ();
  Alcotest.(check int) "cleared" 0 (List.length (San.findings ()))

(* ------------------------------------------------------------------ *)
(* Sanitizers-off cost contract: probes are a load and a branch        *)

let test_disabled_zero_alloc () =
  San.set ~race:false ~fp:false ();
  let iters = 200_000 in
  let before = Gc.allocated_bytes () in
  for i = 0 to iters - 1 do
    if San.race () then San.Race.note_write ~tag:"gate" i;
    if San.fp () then San.Fp.check ~name:"gate" (float_of_int i)
  done;
  let delta = Gc.allocated_bytes () -. before in
  if delta > 1024.0 then
    Alcotest.failf "disabled sanitizer probes allocated %.0f bytes over %d iterations"
      delta iters

(* ------------------------------------------------------------------ *)
(* Property: checked pooled sweep is bitwise = sequential, any chunk   *)

let bits_equal_cmat a b =
  let eq_f x y = Int64.bits_of_float x = Int64.bits_of_float y in
  let ok = ref true in
  for i = 0 to 0 do
    for j = 0 to 0 do
      let x = Linalg.Cmat.get a i j and y = Linalg.Cmat.get b i j in
      if not (eq_f x.Complex.re y.Complex.re && eq_f x.Complex.im y.Complex.im) then
        ok := false
    done
  done;
  !ok

let netlist_path base =
  let cands = [ "../examples/netlists/" ^ base; "examples/netlists/" ^ base ] in
  match List.find_opt Sys.file_exists cands with Some p -> p | None -> List.hd cands

let prop_checked_sweep_bitwise =
  let mna = Circuit.Mna.auto (Circuit.Parser.parse_file (netlist_path "rc_line.cir")) in
  let ws = Simulate.Ac.workspace mna in
  let freqs = Simulate.Ac.log_freqs ~points:29 1e6 1e10 in
  let n = Array.length freqs in
  let point k =
    if San.race () then San.Race.note_write ~tag:"qtest.ac" k;
    Simulate.Ac.z_at_ws mna ws (Linalg.Cx.im (2.0 *. Float.pi *. freqs.(k)))
  in
  let seq = Array.init n point in
  QCheck.Test.make ~count:25 ~long_factor:1
    ~name:"race-checked pooled sweep bitwise = sequential (random chunk & seed)"
    QCheck.(pair (int_range 1 13) (int_range 0 10_000))
    (fun (chunk, seed) ->
      (* perturb the chunk-claim schedule: the permutation seed is read
         per batch, so every draw exercises a different claim order *)
      Unix.putenv "SYMOR_SAN_SEED" (string_of_int seed);
      with_san ~race:true @@ fun () ->
      List.for_all
        (fun jobs ->
          let got =
            Parallel.Pool.parallel_map (Parallel.pool_for ~jobs) ~chunk n point
          in
          Array.for_all2 bits_equal_cmat seq got)
        [ 1; 2; 4 ])

let () =
  Alcotest.run "san"
    [
      ( "race-batch",
        [
          Alcotest.test_case "clean batch" `Quick test_batch_clean;
          Alcotest.test_case "double claim" `Quick test_batch_double_claim;
          Alcotest.test_case "unclaimed slot" `Quick test_batch_unclaimed_slot;
        ] );
      ( "race-registry",
        [
          Alcotest.test_case "inactive no-op" `Quick test_note_write_inactive_is_noop;
          Alcotest.test_case "double write" `Quick test_note_write_double;
          Alcotest.test_case "distinct tags" `Quick test_note_write_distinct_tags;
        ] );
      ( "race-schedule",
        [
          Alcotest.test_case "permutation covers" `Quick test_permute_is_permutation;
          Alcotest.test_case "seeded determinism" `Quick test_permute_deterministic;
        ] );
      ( "race-pool",
        [
          Alcotest.test_case "checked loop clean" `Quick
            test_pooled_loop_clean_under_race;
          Alcotest.test_case "double write detected" `Quick
            test_pooled_double_write_detected;
          Alcotest.test_case "off = unchecked" `Quick test_race_off_pool_unchecked;
          Alcotest.test_case "pool_for publication" `Quick test_pool_for_no_duplicates;
        ] );
      ( "fp",
        [
          Alcotest.test_case "check records" `Quick test_fp_check_records;
          Alcotest.test_case "check_array index" `Quick test_fp_check_array_index;
          Alcotest.test_case "growth threshold" `Quick test_fp_growth_threshold;
          Alcotest.test_case "skyline NaN" `Quick test_fp_skyline_nan_detected;
          Alcotest.test_case "supernodal NaN" `Quick test_fp_supernodal_nan_detected;
          Alcotest.test_case "supernodal clean" `Quick test_fp_supernodal_solve_clean;
          Alcotest.test_case "AC sweep clean" `Quick test_fp_ac_sweep_clean;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "findings clear" `Quick test_findings_clear;
          Alcotest.test_case "disabled zero-alloc" `Quick test_disabled_zero_alloc;
        ] );
      ("properties", [ Qtest.to_alcotest prop_checked_sweep_bitwise ]);
    ]
