(* Unit and property tests for the dense linear-algebra substrate. *)

let check_float = Alcotest.(check (float 1e-9))

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Vec                                                                *)

let test_vec_basic () =
  let x = Linalg.Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let y = Linalg.Vec.of_list [ 4.0; -1.0; 0.5 ] in
  check_float "dot" 3.5 (Linalg.Vec.dot x y);
  check_float "norm2" (sqrt 14.0) (Linalg.Vec.norm2 x);
  check_float "norm_inf" 4.0 (Linalg.Vec.norm_inf y);
  let z = Linalg.Vec.add x y in
  check_float "add" 5.0 z.(0);
  Linalg.Vec.axpy 2.0 x y;
  check_float "axpy" 6.0 y.(0);
  Alcotest.(check int) "max_abs_index" 2 (Linalg.Vec.max_abs_index y)

let test_vec_dot3 () =
  let x = Linalg.Vec.of_list [ 1.0; 2.0 ] in
  let d = Linalg.Vec.of_list [ -1.0; 1.0 ] in
  check_float "J-weighted dot" 3.0 (Linalg.Vec.dot3 x d x)

let test_vec_basis () =
  let e = Linalg.Vec.basis 4 2 in
  check_float "basis one" 1.0 e.(2);
  check_float "basis zero" 0.0 e.(0)

(* ------------------------------------------------------------------ *)
(* Mat                                                                *)

let test_mat_mul () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Linalg.Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Linalg.Mat.mul a b in
  check_float "c00" 19.0 (Linalg.Mat.get c 0 0);
  check_float "c01" 22.0 (Linalg.Mat.get c 0 1);
  check_float "c10" 43.0 (Linalg.Mat.get c 1 0);
  check_float "c11" 50.0 (Linalg.Mat.get c 1 1)

let test_mat_transpose_vec () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let x = Linalg.Vec.of_list [ 1.0; 1.0 |> Fun.id; -1.0 ] in
  let y = Linalg.Mat.mul_vec a x in
  check_float "mul_vec" 0.0 y.(0);
  check_float "mul_vec2" 3.0 y.(1);
  let z = Linalg.Mat.mul_trans_vec a (Linalg.Vec.of_list [ 1.0; -1.0 ]) in
  check_float "mul_trans_vec" (-3.0) z.(0);
  let at = Linalg.Mat.transpose a in
  Alcotest.(check int) "transpose rows" 3 at.Linalg.Mat.rows;
  check_float "transpose entry" 6.0 (Linalg.Mat.get at 2 1)

let test_mat_congruence () =
  let rng = Linalg.Rng.create 7 in
  let a = Linalg.Mat.random_symmetric rng 5 in
  let v = Linalg.Mat.random rng 5 3 in
  let c = Linalg.Mat.congruence v a in
  Alcotest.(check bool) "congruence of symmetric is symmetric" true
    (Linalg.Mat.is_symmetric ~tol:1e-10 c)

let test_mat_is_symmetric () =
  let m = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 3.0 |] |] in
  Alcotest.(check bool) "symmetric" true (Linalg.Mat.is_symmetric m);
  Linalg.Mat.set m 0 1 2.5;
  Alcotest.(check bool) "asymmetric" false (Linalg.Mat.is_symmetric m)

(* ------------------------------------------------------------------ *)
(* LU                                                                 *)

let test_lu_solve () =
  let a =
    Linalg.Mat.of_arrays
      [| [| 2.0; 1.0; 1.0 |]; [| 4.0; -6.0; 0.0 |]; [| -2.0; 7.0; 2.0 |] |]
  in
  let b = Linalg.Vec.of_list [ 5.0; -2.0; 9.0 ] in
  let x = Linalg.Lu.solve a b in
  let r = Linalg.Vec.sub (Linalg.Mat.mul_vec a x) b in
  checkf "residual" ~tol:1e-12 0.0 (Linalg.Vec.norm_inf r)

let test_lu_det () =
  let a = Linalg.Mat.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  checkf "det" ~tol:1e-12 12.0 (Linalg.Lu.det (Linalg.Lu.factor a))

let test_lu_inverse_random () =
  let rng = Linalg.Rng.create 42 in
  for _trial = 1 to 5 do
    let a =
      Linalg.Mat.add (Linalg.Mat.random rng 8 8)
        (Linalg.Mat.scale 4.0 (Linalg.Mat.identity 8))
    in
    let ai = Linalg.Lu.inverse a in
    let eye = Linalg.Mat.mul a ai in
    checkf "a * a⁻¹ = I" ~tol:1e-10 0.0
      (Linalg.Mat.dist_max eye (Linalg.Mat.identity 8))
  done

let test_lu_singular () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular raises" (Linalg.Lu.Singular 1) (fun () ->
      ignore (Linalg.Lu.factor a))

(* ------------------------------------------------------------------ *)
(* Cholesky                                                           *)

let test_chol_roundtrip () =
  let rng = Linalg.Rng.create 3 in
  let a = Linalg.Mat.random_spd rng 10 in
  let f = Linalg.Chol.factor a in
  let l = Linalg.Chol.l f in
  let llt = Linalg.Mat.mul l (Linalg.Mat.transpose l) in
  checkf "LLᵀ = A" ~tol:1e-9 0.0 (Linalg.Mat.dist_max llt a)

let test_chol_solve () =
  let rng = Linalg.Rng.create 4 in
  let a = Linalg.Mat.random_spd rng 12 in
  let b = Linalg.Vec.init 12 (fun i -> float_of_int (i + 1)) in
  let x = Linalg.Chol.solve (Linalg.Chol.factor a) b in
  checkf "residual" ~tol:1e-8 0.0
    (Linalg.Vec.dist_inf (Linalg.Mat.mul_vec a x) b)

let test_chol_rejects_indefinite () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  Alcotest.check_raises "not SPD" (Linalg.Chol.Not_positive_definite 1) (fun () ->
      ignore (Linalg.Chol.factor a))

(* ------------------------------------------------------------------ *)
(* LDLᵀ (Bunch–Kaufman) and the M J Mᵀ split                           *)

let mjmt f n =
  (* reconstruct M J Mᵀ from the factor object *)
  let m = Linalg.Ldlt.m_dense f in
  let j = Linalg.Ldlt.j_diag f in
  let mj =
    Linalg.Mat.init n n (fun i k -> Linalg.Mat.get m i k *. j.(k))
  in
  Linalg.Mat.mul mj (Linalg.Mat.transpose m)

let test_ldlt_spd () =
  let rng = Linalg.Rng.create 5 in
  let a = Linalg.Mat.random_spd rng 9 in
  let f = Linalg.Ldlt.factor a in
  Alcotest.(check bool) "definite" true (Linalg.Ldlt.is_definite f);
  checkf "M J Mᵀ = A" ~tol:1e-8 0.0 (Linalg.Mat.dist_max (mjmt f 9) a)

let test_ldlt_indefinite () =
  let rng = Linalg.Rng.create 6 in
  for _trial = 1 to 8 do
    let a = Linalg.Mat.random_symmetric rng 11 in
    let f = Linalg.Ldlt.factor a in
    checkf "M J Mᵀ = A (indef)" ~tol:1e-8 0.0 (Linalg.Mat.dist_max (mjmt f 11) a)
  done

let test_ldlt_solve () =
  let rng = Linalg.Rng.create 8 in
  for _trial = 1 to 8 do
    let a = Linalg.Mat.random_symmetric rng 10 in
    let b = Linalg.Vec.init 10 (fun i -> sin (float_of_int i)) in
    let f = Linalg.Ldlt.factor a in
    let x = Linalg.Ldlt.solve f b in
    checkf "residual" ~tol:1e-8 0.0
      (Linalg.Vec.dist_inf (Linalg.Mat.mul_vec a x) b)
  done

let test_ldlt_inertia () =
  (* diag(3, -2, 5, -7, 1e-0) has inertia (3, 2) *)
  let a = Linalg.Mat.diag (Linalg.Vec.of_list [ 3.0; -2.0; 5.0; -7.0; 1.0 ]) in
  let p, n = Linalg.Ldlt.inertia (Linalg.Ldlt.factor a) in
  Alcotest.(check (pair int int)) "inertia" (3, 2) (p, n)

let test_ldlt_saddle_structure () =
  (* MNA-like saddle point: [[K, Aᵀ]; [A, 0]] forces 2×2 pivots *)
  let a =
    Linalg.Mat.of_arrays
      [|
        [| 2.0; 0.0; 1.0; 0.0 |];
        [| 0.0; 3.0; 0.0; 1.0 |];
        [| 1.0; 0.0; 0.0; 0.0 |];
        [| 0.0; 1.0; 0.0; 0.0 |];
      |]
  in
  let f = Linalg.Ldlt.factor a in
  checkf "M J Mᵀ = A (saddle)" ~tol:1e-10 0.0 (Linalg.Mat.dist_max (mjmt f 4) a);
  let p, n = Linalg.Ldlt.inertia f in
  Alcotest.(check (pair int int)) "saddle inertia" (2, 2) (p, n)

let test_ldlt_apply_m_consistency () =
  let rng = Linalg.Rng.create 9 in
  let a = Linalg.Mat.random_symmetric rng 7 in
  let f = Linalg.Ldlt.factor a in
  let x = Linalg.Vec.init 7 (fun i -> cos (float_of_int i)) in
  (* M⁻¹ (M x) = x *)
  let y = Linalg.Ldlt.apply_m_inv f (Linalg.Ldlt.apply_m f x) in
  checkf "M⁻¹ M = I" ~tol:1e-9 0.0 (Linalg.Vec.dist_inf x y);
  (* Mᵀ M⁻ᵀ x = x : check M⁻ᵀ against dense transpose solve *)
  let md = Linalg.Ldlt.m_dense f in
  let z = Linalg.Ldlt.apply_mt_inv f x in
  let back = Linalg.Mat.mul_trans_vec md z in
  checkf "M⁻ᵀ consistent" ~tol:1e-8 0.0 (Linalg.Vec.dist_inf x back)

let test_ldlt_singular_raises () =
  let a = Linalg.Mat.create 3 3 in
  Alcotest.(check bool) "singular raises" true
    (try
       ignore (Linalg.Ldlt.factor a);
       false
     with Linalg.Ldlt.Singular _ -> true)

(* ------------------------------------------------------------------ *)
(* QR                                                                 *)

let test_qr_roundtrip () =
  let rng = Linalg.Rng.create 10 in
  let a = Linalg.Mat.random rng 9 5 in
  let f = Linalg.Qr.factor a in
  let q = Linalg.Qr.q_thin f and r = Linalg.Qr.r f in
  checkf "QR = A" ~tol:1e-9 0.0 (Linalg.Mat.dist_max (Linalg.Mat.mul q r) a);
  checkf "QᵀQ = I" ~tol:1e-9 0.0
    (Linalg.Mat.dist_max (Linalg.Mat.gram q) (Linalg.Mat.identity 5))

let test_qr_least_squares () =
  (* overdetermined fit of y = 2x + 1 *)
  let a = Linalg.Mat.of_arrays [| [| 1.0; 0.0 |]; [| 1.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let b = Linalg.Vec.of_list [ 1.0; 3.0; 5.0 ] in
  let x = Linalg.Qr.solve_ls (Linalg.Qr.factor a) b in
  checkf "intercept" ~tol:1e-10 1.0 x.(0);
  checkf "slope" ~tol:1e-10 2.0 x.(1)

let test_qr_orthonormalize_rank () =
  let a =
    Linalg.Mat.of_arrays
      [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 0.0; 1.0 |]; [| 1.0; 2.0; 1.0 |] |]
  in
  (* column 1 = 2 × column 0 → rank 2 *)
  let q, rank = Linalg.Qr.orthonormalize a in
  Alcotest.(check int) "rank" 2 rank;
  checkf "orthonormal" ~tol:1e-10 0.0
    (Linalg.Mat.dist_max (Linalg.Mat.gram q) (Linalg.Mat.identity 2))

(* ------------------------------------------------------------------ *)
(* Symmetric eigendecomposition                                       *)

let test_eig_sym_small () =
  let a = Linalg.Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let { Linalg.Eig_sym.values; _ } = Linalg.Eig_sym.decompose a in
  checkf "λ₀" ~tol:1e-12 1.0 values.(0);
  checkf "λ₁" ~tol:1e-12 3.0 values.(1)

let test_eig_sym_reconstruct () =
  let rng = Linalg.Rng.create 11 in
  for n = 1 to 8 do
    let a = Linalg.Mat.random_symmetric rng n in
    let { Linalg.Eig_sym.values; vectors } = Linalg.Eig_sym.decompose a in
    let recon =
      Linalg.Mat.mul vectors
        (Linalg.Mat.mul (Linalg.Mat.diag values) (Linalg.Mat.transpose vectors))
    in
    checkf "QΛQᵀ = A" ~tol:1e-8 0.0 (Linalg.Mat.dist_max recon a);
    checkf "QᵀQ = I" ~tol:1e-9 0.0
      (Linalg.Mat.dist_max (Linalg.Mat.gram vectors) (Linalg.Mat.identity n))
  done

let test_eig_sym_spd_positive () =
  let rng = Linalg.Rng.create 12 in
  let a = Linalg.Mat.random_spd rng 15 in
  let v = Linalg.Eig_sym.values a in
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.0) v)

let test_eig_tridiag () =
  (* second-difference matrix: known eigenvalues 2 - 2cos(kπ/(n+1)) *)
  let n = 12 in
  let d = Linalg.Vec.init n (fun _ -> 2.0) in
  let e = Linalg.Vec.init (n - 1) (fun _ -> -1.0) in
  let { Linalg.Eig_sym.values; _ } = Linalg.Eig_sym.tridiag d e in
  for k = 1 to n do
    let expected =
      2.0 -. (2.0 *. cos (Float.pi *. float_of_int k /. float_of_int (n + 1)))
    in
    checkf (Printf.sprintf "λ%d" k) ~tol:1e-10 expected values.(k - 1)
  done

(* ------------------------------------------------------------------ *)
(* General eigenvalues                                                *)

let sort_cx a =
  let b = Array.copy a in
  Array.sort
    (fun x y ->
      match Float.compare x.Complex.re y.Complex.re with
      | 0 -> Float.compare x.Complex.im y.Complex.im
      | c -> c)
    b;
  b

let test_eig_gen_real_spectrum () =
  let a =
    Linalg.Mat.of_arrays [| [| 4.0; 1.0; 0.0 |]; [| 0.0; 3.0; 1.0 |]; [| 0.0; 0.0; 2.0 |] |]
  in
  let ev = sort_cx (Linalg.Eig_gen.eigenvalues a) in
  checkf "λ₀" ~tol:1e-9 2.0 ev.(0).Complex.re;
  checkf "λ₁" ~tol:1e-9 3.0 ev.(1).Complex.re;
  checkf "λ₂" ~tol:1e-9 4.0 ev.(2).Complex.re

let test_eig_gen_complex_pair () =
  (* rotation-like block has eigenvalues 1 ± 2i *)
  let a = Linalg.Mat.of_arrays [| [| 1.0; -2.0 |]; [| 2.0; 1.0 |] |] in
  let ev = sort_cx (Linalg.Eig_gen.eigenvalues a) in
  checkf "re" ~tol:1e-9 1.0 ev.(0).Complex.re;
  checkf "im magnitude" ~tol:1e-9 2.0 (Float.abs ev.(0).Complex.im)

let test_eig_gen_matches_sym () =
  let rng = Linalg.Rng.create 13 in
  let a = Linalg.Mat.random_symmetric rng 9 in
  let sym = Linalg.Eig_sym.values a in
  let gen = sort_cx (Linalg.Eig_gen.eigenvalues a) in
  for i = 0 to 8 do
    checkf (Printf.sprintf "λ%d" i) ~tol:1e-7 sym.(i) gen.(i).Complex.re;
    checkf (Printf.sprintf "im%d" i) ~tol:1e-7 0.0 gen.(i).Complex.im
  done

(* ------------------------------------------------------------------ *)
(* Complex matrices                                                   *)

let test_cmat_lu_solve () =
  let n = 6 in
  let rng = Linalg.Rng.create 14 in
  let a =
    Linalg.Cmat.init n n (fun _ _ ->
        Linalg.Cx.make (Linalg.Rng.uniform rng (-1.0) 1.0) (Linalg.Rng.uniform rng (-1.0) 1.0))
  in
  for i = 0 to n - 1 do
    Linalg.Cmat.add_to a i i (Linalg.Cx.re 4.0)
  done;
  let b = Array.init n (fun i -> Linalg.Cx.make (float_of_int i) 1.0) in
  let x = Linalg.Cmat.lu_solve_vec (Linalg.Cmat.lu_factor a) b in
  let r = Linalg.Cmat.mul_vec a x in
  let worst = ref 0.0 in
  Array.iteri (fun i ri -> worst := Float.max !worst (Linalg.Cx.abs (Complex.sub ri b.(i)))) r;
  checkf "complex residual" ~tol:1e-10 0.0 !worst

let test_cmat_lincomb () =
  let g = Linalg.Mat.identity 2 in
  let c = Linalg.Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let s = Linalg.Cx.im 2.0 in
  let m = Linalg.Cmat.lincomb Linalg.Cx.one g s c in
  let z = Linalg.Cmat.get m 0 1 in
  checkf "re" ~tol:1e-15 0.0 z.Complex.re;
  checkf "im" ~tol:1e-15 2.0 z.Complex.im

let test_cmat_min_eig_hermitian () =
  (* [[2, i]; [-i, 2]] has eigenvalues 1 and 3 *)
  let m = Linalg.Cmat.create 2 2 in
  Linalg.Cmat.set m 0 0 (Linalg.Cx.re 2.0);
  Linalg.Cmat.set m 1 1 (Linalg.Cx.re 2.0);
  Linalg.Cmat.set m 0 1 (Linalg.Cx.im 1.0);
  Linalg.Cmat.set m 1 0 (Linalg.Cx.im (-1.0));
  checkf "min eig" ~tol:1e-9 1.0 (Linalg.Cmat.min_eig_hermitian m)

(* ------------------------------------------------------------------ *)
(* Poly                                                               *)

let test_poly_eval () =
  let p = [| 1.0; -3.0; 2.0 |] in
  (* 2x² - 3x + 1 = (2x - 1)(x - 1) *)
  check_float "eval at 2" 3.0 (Linalg.Poly.eval p 2.0);
  Alcotest.(check int) "degree" 2 (Linalg.Poly.degree p)

let test_poly_roots_real () =
  let p = [| 1.0; -3.0; 2.0 |] in
  let r = sort_cx (Linalg.Poly.roots p) in
  checkf "root 0.5" ~tol:1e-8 0.5 r.(0).Complex.re;
  checkf "root 1.0" ~tol:1e-8 1.0 r.(1).Complex.re

let test_poly_roots_complex () =
  (* x² + 1 *)
  let p = [| 1.0; 0.0; 1.0 |] in
  let r = Linalg.Poly.roots p in
  Array.iter
    (fun z ->
      checkf "re" ~tol:1e-8 0.0 z.Complex.re;
      checkf "|im|" ~tol:1e-8 1.0 (Float.abs z.Complex.im))
    r

let test_poly_derivative () =
  let p = [| 1.0; 2.0; 3.0 |] in
  let d = Linalg.Poly.derivative p in
  check_float "d0" 2.0 d.(0);
  check_float "d1" 6.0 d.(1)

(* ------------------------------------------------------------------ *)
(* Rng determinism                                                    *)

let test_rng_deterministic () =
  let a = Linalg.Rng.create 123 and b = Linalg.Rng.create 123 in
  for _ = 1 to 100 do
    check_float "same stream" (Linalg.Rng.float a) (Linalg.Rng.float b)
  done

let test_rng_range () =
  let rng = Linalg.Rng.create 99 in
  for _ = 1 to 1000 do
    let x = Linalg.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done;
  for _ = 1 to 1000 do
    let k = Linalg.Rng.int rng 7 in
    Alcotest.(check bool) "int in range" true (k >= 0 && k < 7)
  done

let test_mat_utilities () =
  let m = Linalg.Mat.of_arrays [| [| 1.0; -2.0; 3.0 |]; [| 4.0; 5.0; -6.0 |] |] in
  checkf "norm_inf = max row sum" ~tol:0.0 15.0 (Linalg.Mat.norm_inf m);
  checkf "max_abs" ~tol:0.0 6.0 (Linalg.Mat.max_abs m);
  checkf "frobenius" ~tol:1e-12 (sqrt 91.0) (Linalg.Mat.frobenius m);
  let sub = Linalg.Mat.submatrix m 0 1 2 2 in
  checkf "submatrix" ~tol:0.0 (-2.0) (Linalg.Mat.get sub 0 0);
  checkf "row extract" ~tol:0.0 5.0 (Linalg.Mat.row m 1).(1);
  let d = Linalg.Mat.diag (Linalg.Vec.of_list [ 2.0; 3.0 ]) in
  checkf "diag" ~tol:0.0 3.0 (Linalg.Mat.get d 1 1);
  checkf "get_diag" ~tol:0.0 2.0 (Linalg.Mat.get_diag d).(0);
  let cols = Linalg.Mat.of_cols [ Linalg.Vec.of_list [ 1.0; 2.0 ]; Linalg.Vec.of_list [ 3.0; 4.0 ] ] in
  checkf "of_cols" ~tol:0.0 3.0 (Linalg.Mat.get cols 0 1)

let test_vec_utilities () =
  let v = Linalg.Vec.of_list [ 1.0; -2.0; 3.0 ] in
  let w = Linalg.Vec.map (fun x -> x *. x) v in
  checkf "map" ~tol:0.0 4.0 w.(1);
  let z = Linalg.Vec.create 3 in
  Linalg.Vec.fill z 7.0;
  checkf "fill" ~tol:0.0 7.0 z.(2);
  checkf "dist_inf" ~tol:0.0 0.0 (Linalg.Vec.dist_inf v (Linalg.Vec.copy v));
  checkf "sub" ~tol:0.0 (-5.0) (Linalg.Vec.sub v (Linalg.Vec.of_list [ 0.0; 3.0; 0.0 ])).(1)

let test_cx_helpers () =
  let a = Linalg.Cx.make 3.0 4.0 in
  checkf "abs" ~tol:1e-12 5.0 (Linalg.Cx.abs a);
  checkf "conj im" ~tol:0.0 (-4.0) (Linalg.Cx.conj a).Complex.im;
  checkf "smul" ~tol:0.0 6.0 (Linalg.Cx.smul 2.0 a).Complex.re;
  Alcotest.(check bool) "close" true (Linalg.Cx.close a (Linalg.Cx.make 3.0 4.0));
  Alcotest.(check bool) "finite" true (Linalg.Cx.is_finite a);
  Alcotest.(check bool) "infinite detected" false
    (Linalg.Cx.is_finite (Linalg.Cx.make Float.infinity 0.0));
  let ainv = Linalg.Cx.inv a in
  checkf "inv" ~tol:1e-12 1.0 (Linalg.Cx.abs Linalg.Cx.(a *: ainv))

let test_rng_split_and_gaussian () =
  let rng = Linalg.Rng.create 5 in
  let child = Linalg.Rng.split rng in
  (* streams differ *)
  let a = Linalg.Rng.float rng and b = Linalg.Rng.float child in
  Alcotest.(check bool) "streams differ" true (a <> b);
  (* gaussian has roughly zero mean over many draws *)
  let sum = ref 0.0 in
  for _ = 1 to 4000 do
    sum := !sum +. Linalg.Rng.gaussian rng
  done;
  Alcotest.(check bool) "gaussian mean" true (Float.abs (!sum /. 4000.0) < 0.1);
  checkf "log_uniform in range" ~tol:0.0 1.0
    (let x = Linalg.Rng.log_uniform rng 1e-3 1e3 in
     if x >= 1e-3 && x < 1e3 then 1.0 else 0.0)

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)

let mat_gen n =
  QCheck.Gen.(
    map
      (fun seed ->
        let rng = Linalg.Rng.create seed in
        Linalg.Mat.random_symmetric rng n)
      int)

let prop_ldlt_reconstruct =
  QCheck.Test.make ~count:40 ~name:"ldlt: M J Mᵀ reconstructs A"
    (QCheck.make (mat_gen 8))
    (fun a ->
      match Linalg.Ldlt.factor a with
      | f ->
        let m = Linalg.Ldlt.m_dense f in
        let j = Linalg.Ldlt.j_diag f in
        let mj = Linalg.Mat.init 8 8 (fun i k -> Linalg.Mat.get m i k *. j.(k)) in
        let recon = Linalg.Mat.mul mj (Linalg.Mat.transpose m) in
        Linalg.Mat.dist_max recon a < 1e-7
      | exception Linalg.Ldlt.Singular _ -> QCheck.assume_fail ())

let prop_eig_sym_trace =
  QCheck.Test.make ~count:40 ~name:"eig_sym: eigenvalue sum equals trace"
    (QCheck.make (mat_gen 7))
    (fun a ->
      let v = Linalg.Eig_sym.values a in
      let trace = ref 0.0 in
      for i = 0 to 6 do
        trace := !trace +. Linalg.Mat.get a i i
      done;
      Float.abs (Array.fold_left ( +. ) 0.0 v -. !trace) < 1e-8)

let prop_lu_solve_residual =
  QCheck.Test.make ~count:40 ~name:"lu: solve residual small"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let a =
        Linalg.Mat.add (Linalg.Mat.random rng 6 6)
          (Linalg.Mat.scale 3.0 (Linalg.Mat.identity 6))
      in
      let b = Linalg.Vec.init 6 (fun i -> Linalg.Rng.uniform rng (-1.0) 1.0 +. float_of_int i) in
      let x = Linalg.Lu.solve a b in
      Linalg.Vec.dist_inf (Linalg.Mat.mul_vec a x) b < 1e-9)

let prop_qr_orthogonal =
  QCheck.Test.make ~count:40 ~name:"qr: thin Q has orthonormal columns"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let rng = Linalg.Rng.create seed in
      let a = Linalg.Mat.random rng 10 4 in
      let q = Linalg.Qr.q_thin (Linalg.Qr.factor a) in
      Linalg.Mat.dist_max (Linalg.Mat.gram q) (Linalg.Mat.identity 4) < 1e-9)

let () =
  let qsuite = List.map (fun t -> Qtest.to_alcotest t)
      [ prop_ldlt_reconstruct; prop_eig_sym_trace; prop_lu_solve_residual; prop_qr_orthogonal ]
  in
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "weighted dot" `Quick test_vec_dot3;
          Alcotest.test_case "basis" `Quick test_vec_basis;
        ] );
      ( "mat",
        [
          Alcotest.test_case "mul" `Quick test_mat_mul;
          Alcotest.test_case "transpose and matvec" `Quick test_mat_transpose_vec;
          Alcotest.test_case "congruence" `Quick test_mat_congruence;
          Alcotest.test_case "is_symmetric" `Quick test_mat_is_symmetric;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve" `Quick test_lu_solve;
          Alcotest.test_case "det" `Quick test_lu_det;
          Alcotest.test_case "inverse random" `Quick test_lu_inverse_random;
          Alcotest.test_case "singular" `Quick test_lu_singular;
        ] );
      ( "chol",
        [
          Alcotest.test_case "roundtrip" `Quick test_chol_roundtrip;
          Alcotest.test_case "solve" `Quick test_chol_solve;
          Alcotest.test_case "rejects indefinite" `Quick test_chol_rejects_indefinite;
        ] );
      ( "ldlt",
        [
          Alcotest.test_case "spd" `Quick test_ldlt_spd;
          Alcotest.test_case "indefinite" `Quick test_ldlt_indefinite;
          Alcotest.test_case "solve" `Quick test_ldlt_solve;
          Alcotest.test_case "inertia" `Quick test_ldlt_inertia;
          Alcotest.test_case "saddle structure" `Quick test_ldlt_saddle_structure;
          Alcotest.test_case "apply_m consistency" `Quick test_ldlt_apply_m_consistency;
          Alcotest.test_case "singular raises" `Quick test_ldlt_singular_raises;
        ] );
      ( "qr",
        [
          Alcotest.test_case "roundtrip" `Quick test_qr_roundtrip;
          Alcotest.test_case "least squares" `Quick test_qr_least_squares;
          Alcotest.test_case "orthonormalize rank" `Quick test_qr_orthonormalize_rank;
        ] );
      ( "eig_sym",
        [
          Alcotest.test_case "2x2" `Quick test_eig_sym_small;
          Alcotest.test_case "reconstruct" `Quick test_eig_sym_reconstruct;
          Alcotest.test_case "spd positive" `Quick test_eig_sym_spd_positive;
          Alcotest.test_case "tridiagonal known spectrum" `Quick test_eig_tridiag;
        ] );
      ( "eig_gen",
        [
          Alcotest.test_case "real spectrum" `Quick test_eig_gen_real_spectrum;
          Alcotest.test_case "complex pair" `Quick test_eig_gen_complex_pair;
          Alcotest.test_case "matches symmetric" `Quick test_eig_gen_matches_sym;
        ] );
      ( "cmat",
        [
          Alcotest.test_case "lu solve" `Quick test_cmat_lu_solve;
          Alcotest.test_case "lincomb" `Quick test_cmat_lincomb;
          Alcotest.test_case "hermitian min eig" `Quick test_cmat_min_eig_hermitian;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval/degree" `Quick test_poly_eval;
          Alcotest.test_case "real roots" `Quick test_poly_roots_real;
          Alcotest.test_case "complex roots" `Quick test_poly_roots_complex;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_range;
          Alcotest.test_case "split and gaussian" `Quick test_rng_split_and_gaussian;
        ] );
      ( "utilities",
        [
          Alcotest.test_case "mat helpers" `Quick test_mat_utilities;
          Alcotest.test_case "vec helpers" `Quick test_vec_utilities;
          Alcotest.test_case "cx helpers" `Quick test_cx_helpers;
        ] );
      ("properties", qsuite);
    ]
