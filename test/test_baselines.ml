(* Tests for the baselines and post-processing: AWE (explicit-moment
   Padé), block-Arnoldi congruence projection, pole/residue
   stabilisation, stability/passivity module. *)

module Model = Sympvl.Model
module Reduce = Sympvl.Reduce
module Awe = Sympvl.Awe
module Arnoldi = Sympvl.Arnoldi
module Stability = Sympvl.Stability
module Postprocess = Sympvl.Postprocess

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

let z_exact_scalar (m : Circuit.Mna.t) s port =
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let gd = Sparse.Csr.to_dense m.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense m.Circuit.Mna.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one gd var cd in
  let b = Linalg.Cmat.of_real m.Circuit.Mna.b in
  let z = Linalg.Cmat.mul (Linalg.Cmat.transpose b) (Linalg.Cmat.solve k b) in
  let z0 = Linalg.Cmat.get z port port in
  match m.Circuit.Mna.gain with
  | Circuit.Mna.Unit -> z0
  | Circuit.Mna.Times_s -> Linalg.Cx.(s *: z0)

let terminated_bus () =
  Circuit.Generators.coupled_rc_bus ~terminate:150.0 ~wires:3 ~sections:8 ()

(* ------------------------------------------------------------------ *)
(* AWE                                                                *)

let test_awe_low_order_accurate () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let awe = Awe.build ~order:5 ~port:0 m in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e8) in
  let ze = z_exact_scalar m s 0 in
  let za = Awe.eval awe s in
  let err = Linalg.Cx.abs Linalg.Cx.(ze -: za) /. Linalg.Cx.abs ze in
  Alcotest.(check bool) (Printf.sprintf "awe err %.2e" err) true (err < 1e-3)

let test_awe_hankel_degrades () =
  (* the Hankel reciprocal condition must collapse as order grows —
     the documented AWE instability *)
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let rc_at order = (Awe.build ~order ~port:0 m).Awe.hankel_rcond in
  let r3 = rc_at 3 and r10 = rc_at 10 in
  Alcotest.(check bool)
    (Printf.sprintf "rcond collapse %.2e -> %.2e" r3 r10)
    true
    (r10 < 1e-6 *. r3)

let test_awe_matches_sypvl_low_order () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let order = 4 in
  let awe = Awe.build ~order ~port:0 m in
  let sypvl = Reduce.scalar ~order ~port:0 m in
  (* both are [order−1/order] Padé approximants of the same function:
     they must agree wherever AWE is numerically sane *)
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 5e7) in
  let za = Awe.eval awe s in
  let zp = Linalg.Cmat.get (Model.eval sypvl s) 0 0 in
  let err = Linalg.Cx.abs Linalg.Cx.(za -: zp) /. Linalg.Cx.abs zp in
  Alcotest.(check bool) (Printf.sprintf "padé agreement %.2e" err) true (err < 1e-6)

let test_awe_rejects_s_squared () =
  let nl, _ = Circuit.Generators.peec_mesh ~segments:10 () in
  let m = Circuit.Mna.assemble_lc nl in
  Alcotest.(check bool) "rejects LC pencil" true
    (try
       ignore (Awe.build ~order:3 ~port:0 m);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Arnoldi                                                            *)

let test_arnoldi_accuracy () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let ar = Arnoldi.reduce ~order:18 m in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e9) in
  let ze = z_exact_scalar m s 0 in
  let za = Linalg.Cmat.get (Arnoldi.eval ar s) 0 0 in
  let err = Linalg.Cx.abs Linalg.Cx.(ze -: za) /. Linalg.Cx.abs ze in
  Alcotest.(check bool) (Printf.sprintf "arnoldi err %.2e" err) true (err < 1e-5)

let test_arnoldi_congruence_psd () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let ar = Arnoldi.reduce ~order:12 m in
  Alcotest.(check bool) "Ĝ PSD" true
    (Linalg.Eig_sym.min_eigenvalue ar.Arnoldi.ghat > -1e-9);
  Alcotest.(check bool) "Ĉ PSD" true
    (Linalg.Eig_sym.min_eigenvalue ar.Arnoldi.chat > -1e-9);
  Array.iter
    (fun pole ->
      Alcotest.(check bool) "pole in LHP" true (pole.Complex.re <= 1e-6))
    (Arnoldi.poles ar)

let test_arnoldi_fewer_moments_than_sympvl () =
  (* at equal order, SyMPVL (2⌊n/p⌋ moments) beats Arnoldi (⌊n/p⌋)
     near the expansion point *)
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let order = 9 in
  let sympvl = Reduce.mna ~order m in
  let arnoldi = Arnoldi.reduce ~order m in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 3e9) in
  let ze = z_exact_scalar m s 0 in
  let e_sympvl =
    Linalg.Cx.abs Linalg.Cx.(ze -: Linalg.Cmat.get (Model.eval sympvl s) 0 0)
  in
  let e_arnoldi =
    Linalg.Cx.abs Linalg.Cx.(ze -: Linalg.Cmat.get (Arnoldi.eval arnoldi s) 0 0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sympvl %.2e <= arnoldi %.2e" e_sympvl e_arnoldi)
    true
    (e_sympvl <= e_arnoldi *. 1.5)

(* ------------------------------------------------------------------ *)
(* Stability module                                                   *)

let test_stability_certified_rc () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:10 m in
  Alcotest.(check bool) "stable" true (Stability.is_stable model);
  (match Stability.passivity_certificate model with
  | Stability.Certified -> ()
  | Stability.Indefinite_t x -> Alcotest.failf "unexpected indefinite T: %g" x
  | Stability.Not_applicable -> Alcotest.fail "certificate should apply");
  Alcotest.(check bool) "no violation bands" true
    (Stability.passivity_bands model = [])

let test_stability_not_applicable_shifted () =
  let nl = Circuit.Generators.rc_line ~sections:10 () in
  let m = Circuit.Mna.assemble_rc nl in
  let opts = { (Reduce.default ~order:6) with Reduce.band = Some (1e7, 1e9) } in
  let model = Reduce.mna ~opts ~order:6 m in
  Alcotest.(check bool) "shifted" true (model.Model.shift > 0.0);
  Alcotest.(check bool) "certificate not applicable" true
    (Stability.passivity_certificate model = Stability.Not_applicable)

let test_stability_unstable_pole_listing () =
  (* a hand-built model with one unstable pole: T with a negative
     eigenvalue gives pole -1/λ > 0 *)
  let t_mat = Linalg.Mat.diag (Linalg.Vec.of_list [ 1e-9; -2e-10 ]) in
  let model =
    {
      Model.t_mat;
      delta = Linalg.Mat.identity 2;
      rho = Linalg.Mat.of_arrays [| [| 1.0 |]; [| 0.5 |] |];
      order = 2;
      p = 1;
      shift = 0.0;
      variable = Circuit.Mna.S;
      gain = Circuit.Mna.Unit;
      definite = true;
      deflations = 0;
      look_ahead_steps = 0;
      exhausted = false;
    }
  in
  Alcotest.(check bool) "not stable" false (Stability.is_stable model);
  Alcotest.(check int) "one unstable pole" 1
    (Array.length (Stability.unstable_poles model));
  checkf "its location" ~tol:1.0 5e9 (Stability.unstable_poles model).(0).Complex.re

let test_model_eval_jw () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:6 m in
  let w = 2.0 *. Float.pi *. 1e8 in
  checkf "eval_jw = eval(jw)" ~tol:0.0 0.0
    (Linalg.Cmat.dist_max (Model.eval_jw model w) (Model.eval model (Linalg.Cx.im w)))

(* ------------------------------------------------------------------ *)
(* Post-processing                                                    *)

let test_postprocess_definite_roundtrip () =
  let nl = terminated_bus () in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Reduce.mna ~order:10 m in
  let pr = Postprocess.of_model model in
  Alcotest.(check bool) "stable expansion" true (Postprocess.is_stable pr);
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z1 = Model.eval model s in
      let z2 = Postprocess.eval pr s in
      checkf (Printf.sprintf "pole/residue eval at %g" f) ~tol:1e-7 0.0
        (Linalg.Cmat.dist_max z1 z2 /. Float.max (Linalg.Cmat.max_abs z1) 1e-300))
    [ 1e6; 1e8; 1e9; 5e9 ]

let test_postprocess_indefinite_roundtrip () =
  let nl = Circuit.Generators.rlc_line ~r_load:50.0 ~sections:5 () in
  let m = Circuit.Mna.assemble nl in
  let model = Reduce.mna ~order:10 m in
  Alcotest.(check bool) "indefinite" false model.Model.definite;
  let pr = Postprocess.of_model model in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z1 = Model.eval model s in
      let z2 = Postprocess.eval pr s in
      checkf (Printf.sprintf "indefinite eval at %g" f) ~tol:1e-5 0.0
        (Linalg.Cmat.dist_max z1 z2 /. Float.max (Linalg.Cmat.max_abs z1) 1e-300))
    [ 1e7; 1e8; 1e9 ]

let test_postprocess_stabilize_synthetic () =
  (* hand-build an expansion with one unstable pole and check that
     stabilisation removes exactly it *)
  let mk_term pole_re =
    {
      Postprocess.lambda = Linalg.Cx.re (-1.0 /. pole_re);
      pole = Linalg.Cx.re pole_re;
      residue_l = [| Linalg.Cx.one |];
      residue_r = [| Linalg.Cx.one |];
    }
  in
  let pr =
    {
      Postprocess.terms = [ mk_term (-1e9); mk_term (-3e8); mk_term 2e8 ];
      direct = Linalg.Cmat.create 1 1;
      p = 1;
      shift = 0.0;
      variable = Circuit.Mna.S;
      gain = Circuit.Mna.Unit;
    }
  in
  Alcotest.(check bool) "unstable before" false (Postprocess.is_stable pr);
  let st, dropped = Postprocess.stabilized pr in
  Alcotest.(check int) "dropped one" 1 dropped;
  Alcotest.(check bool) "stable after" true (Postprocess.is_stable st);
  Alcotest.(check int) "two terms left" 2 (List.length st.Postprocess.terms)

let () =
  Alcotest.run "baselines"
    [
      ( "awe",
        [
          Alcotest.test_case "low order accurate" `Quick test_awe_low_order_accurate;
          Alcotest.test_case "hankel rcond degrades" `Quick test_awe_hankel_degrades;
          Alcotest.test_case "matches sypvl" `Quick test_awe_matches_sypvl_low_order;
          Alcotest.test_case "rejects s² pencil" `Quick test_awe_rejects_s_squared;
        ] );
      ( "arnoldi",
        [
          Alcotest.test_case "accuracy" `Quick test_arnoldi_accuracy;
          Alcotest.test_case "congruence PSD" `Quick test_arnoldi_congruence_psd;
          Alcotest.test_case "vs sympvl" `Quick test_arnoldi_fewer_moments_than_sympvl;
        ] );
      ( "stability",
        [
          Alcotest.test_case "certified rc" `Quick test_stability_certified_rc;
          Alcotest.test_case "shifted not applicable" `Quick test_stability_not_applicable_shifted;
          Alcotest.test_case "unstable pole listing" `Quick test_stability_unstable_pole_listing;
          Alcotest.test_case "eval_jw" `Quick test_model_eval_jw;
        ] );
      ( "postprocess",
        [
          Alcotest.test_case "definite roundtrip" `Quick test_postprocess_definite_roundtrip;
          Alcotest.test_case "indefinite roundtrip" `Quick test_postprocess_indefinite_roundtrip;
          Alcotest.test_case "stabilize synthetic" `Quick test_postprocess_stabilize_synthetic;
        ] );
    ]
