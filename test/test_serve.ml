(* serve daemon harness.  The daemon may own spawned domains, so the
   tests never fork it in-process: they spawn the real [symor] binary
   (a dune dep of this test) and talk to it over a Unix socket with
   [Serve.Client], exactly as a user would.

   Covered here:
     - direct [Serve.Cache] units: content-hash keying, strict-LRU
       eviction under the entry bound, deferred eviction of a pinned
       (in-use) pencil context, the doomed-ghost re-request path, model
       memoisation, and exact bit-pattern point keying;
     - protocol fuzz (qcheck, seeded through Qtest for replay):
       arbitrary junk bytes and semantically-bad requests each get one
       JSON error response with stable SRV* codes, the connection stays
       usable, and the daemon survives;
     - parity: concurrent clients sweeping every shipped example
       netlist get responses that are bit-identical to the committed
       test/golden fixtures at --jobs 1 and --jobs 2, and identical
       bytes across the two job counts;
     - single-flight: two clients racing on the same uncached netlist
       cost exactly one cache miss and get identical bytes;
     - batching: two identical sweeps arriving in one tick share one
       pooled sweep (stats report the saved points);
     - lifecycle: SIGTERM drains the in-flight request (answered with
       golden-exact data) before a clean exit 0, and a long run of
       traced requests leaves the obs buffers bounded. *)

module J = Serve.Json

(* cwd is the test directory under `dune runtest` but the workspace
   root under `dune exec` — accept either *)
let find_path cands =
  match List.find_opt Sys.file_exists cands with Some p -> p | None -> List.hd cands

let netlist_path base =
  find_path
    [ "../examples/netlists/" ^ base ^ ".cir"; "examples/netlists/" ^ base ^ ".cir" ]

let golden_path base =
  find_path [ "golden/" ^ base ^ ".golden"; "test/golden/" ^ base ^ ".golden" ]

let symor_exe =
  find_path [ "../bin/symor.exe"; "_build/default/bin/symor.exe"; "bin/symor.exe" ]

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* daemon process harness                                              *)

let sock_counter = ref 0

(* spawn `symor serve --socket <fresh>` and pass (addr, pid) to [f];
   on the way out, SIGTERM the daemon and assert it exits 0 (clean
   shutdown is part of every test) *)
let with_server ?(args = []) f =
  incr sock_counter;
  let sock =
    Printf.sprintf "/tmp/symor-test-%d-%d.sock" (Unix.getpid ()) !sock_counter
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0o644 in
  let pid =
    Unix.create_process symor_exe
      (Array.of_list ((symor_exe :: "serve" :: "--socket" :: sock :: args)))
      devnull devnull devnull
  in
  Unix.close devnull;
  let reap () =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    match snd (Unix.waitpid [] pid) with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
    | Unix.WSIGNALED n -> Alcotest.failf "daemon killed by signal %d" n
    | Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped"
  in
  Fun.protect ~finally:reap (fun () -> f ((`Unix sock : Serve.Protocol.addr), pid))

let with_client addr f =
  let c = Serve.Client.connect addr in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let recv_exn c =
  match Serve.Client.recv_line c with
  | Some l -> l
  | None -> Alcotest.fail "unexpected EOF from daemon"

let request_exn c line =
  Serve.Client.send_line c line;
  recv_exn c

(* ------------------------------------------------------------------ *)
(* response plumbing                                                   *)

let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let jbool k j = J.to_bool_opt (J.member k j)

let jint_exn k j =
  match J.to_int_opt (J.member k j) with
  | Some n -> n
  | None -> Alcotest.failf "response field %S is not an integer" k

let jfloat_exn j =
  match J.to_float_opt j with
  | Some x -> x
  | None -> Alcotest.fail "expected a number"

let jlist_exn j =
  match J.to_list_opt j with
  | Some l -> l
  | None -> Alcotest.fail "expected a list"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let ping_seq = ref 0

(* a ping with a fresh id pins request/response alignment: if the
   previous request had produced zero or two response lines, the echoed
   id would not match *)
let check_ping c =
  incr ping_seq;
  let id = !ping_seq in
  let j = J.parse (request_exn c (Printf.sprintf {|{"id":%d,"op":"ping"}|} id)) in
  if jbool "pong" j <> Some true then Alcotest.fail "ping: no pong";
  if J.to_int_opt (J.member "id" j) <> Some id then
    Alcotest.fail "ping: wrong id echoed (response misalignment)"

(* ------------------------------------------------------------------ *)
(* cache units (in-process, no daemon)                                 *)

let grid rows cols =
  Circuit.Parser.to_string (Circuit.Generators.rc_grid ~rows ~cols ())

let test_cache_keying () =
  let t = Serve.Cache.create ~max_entries:4 in
  let a = grid 2 2 in
  let e1 = Serve.Cache.find t a in
  let e2 = Serve.Cache.find t a in
  Alcotest.(check bool) "same text, same entry" true (e1 == e2);
  Alcotest.(check string) "entry keyed by content hash" (Serve.Cache.key_of_text a)
    (Serve.Cache.key e1);
  let s = Serve.Cache.stats t in
  Alcotest.(check int) "one miss" 1 s.Serve.Cache.misses;
  Alcotest.(check int) "one hit" 1 s.Serve.Cache.hits;
  (* a one-character perturbation (extra blank line) parses to the same
     circuit but is a different text: content hashing must miss *)
  let e3 = Serve.Cache.find t (a ^ "\n") in
  Alcotest.(check bool) "perturbed text is a distinct entry" true (not (e1 == e3));
  let s = Serve.Cache.stats t in
  Alcotest.(check int) "perturbed text misses" 2 s.Serve.Cache.misses;
  Alcotest.(check int) "two entries live" 2 s.Serve.Cache.entries

let test_cache_lru () =
  let t = Serve.Cache.create ~max_entries:2 in
  let a = grid 2 2 and b = grid 2 3 and c = grid 3 2 in
  ignore (Serve.Cache.find t a);
  ignore (Serve.Cache.find t b);
  ignore (Serve.Cache.find t a);
  (* a was touched after b, so b is the LRU victim *)
  ignore (Serve.Cache.find t c);
  Alcotest.(check bool) "recently-used entry kept" true
    (Serve.Cache.mem_key t (Serve.Cache.key_of_text a));
  Alcotest.(check bool) "LRU entry evicted" false
    (Serve.Cache.mem_key t (Serve.Cache.key_of_text b));
  Alcotest.(check bool) "newcomer kept" true
    (Serve.Cache.mem_key t (Serve.Cache.key_of_text c));
  Alcotest.(check int) "one eviction" 1 (Serve.Cache.stats t).Serve.Cache.evictions

let test_cache_deferred_eviction () =
  let t = Serve.Cache.create ~max_entries:1 in
  let a = grid 2 2 and b = grid 2 3 in
  let ea = Serve.Cache.find t a in
  let ka = Serve.Cache.key_of_text a in
  Serve.Cache.pin ea;
  let ctx_before = Serve.Cache.ctx ea in
  ignore (Serve.Cache.find t b);
  (* the LRU victim is pinned by an in-flight request: it must be
     doomed, not dropped, and its pencil context must stay usable *)
  Alcotest.(check bool) "pinned victim still resident" true (Serve.Cache.mem_key t ka);
  Alcotest.(check int) "no eviction while pinned" 0
    (Serve.Cache.stats t).Serve.Cache.evictions;
  Alcotest.(check bool) "context untouched mid-request" true
    (Serve.Cache.ctx ea == ctx_before);
  Serve.Cache.unpin t ea;
  Alcotest.(check bool) "dropped once the request completed" false
    (Serve.Cache.mem_key t ka);
  Alcotest.(check int) "eviction completed at unpin" 1
    (Serve.Cache.stats t).Serve.Cache.evictions

let test_cache_doomed_ghost () =
  let t = Serve.Cache.create ~max_entries:1 in
  let a = grid 2 2 and b = grid 2 3 in
  let ea = Serve.Cache.find t a in
  Serve.Cache.pin ea;
  ignore (Serve.Cache.find t b) (* dooms the pinned [a] *);
  (* re-requesting the doomed netlist builds a fresh entry under the
     content key; the ghost survives under a shadow key until unpin *)
  let ea2 = Serve.Cache.find t a in
  Alcotest.(check bool) "fresh entry, not the ghost" true (not (ea == ea2));
  Alcotest.(check string) "fresh entry owns the content key"
    (Serve.Cache.key_of_text a) (Serve.Cache.key ea2);
  Alcotest.(check bool) "ghost re-keyed away" true
    (Serve.Cache.key ea <> Serve.Cache.key ea2);
  Serve.Cache.unpin t ea;
  Alcotest.(check bool) "fresh entry survives the ghost's death" true
    (Serve.Cache.mem_key t (Serve.Cache.key_of_text a))

let test_cache_model_and_points () =
  let t = Serve.Cache.create ~max_entries:2 in
  let e = Serve.Cache.find t (grid 4 4) in
  let _, c1 = Serve.Cache.model t e ~engine:`Sympvl ~order:4 ~shift:None ~band:None in
  let _, c2 = Serve.Cache.model t e ~engine:`Sympvl ~order:4 ~shift:None ~band:None in
  Alcotest.(check bool) "first build not cached" false c1;
  Alcotest.(check bool) "repeat configuration cached" true c2;
  Alcotest.(check int) "one model build" 1
    (Serve.Cache.stats t).Serve.Cache.model_builds;
  let _, c3 = Serve.Cache.model t e ~engine:`Sympvl ~order:6 ~shift:None ~band:None in
  Alcotest.(check bool) "different order rebuilds" false c3;
  (* point table: exact bit-pattern keying, no float tolerance *)
  Serve.Cache.store_point e 1e9 (Linalg.Cmat.create 1 1);
  Alcotest.(check bool) "stored point found" true
    (Serve.Cache.cached_point e 1e9 <> None);
  Alcotest.(check bool) "ULP-nudged frequency misses" true
    (Serve.Cache.cached_point e (Float.succ 1e9) = None)

(* ------------------------------------------------------------------ *)
(* protocol fuzz                                                       *)

(* the protocol is line-based: a newline would split one fuzz case into
   several requests, so fold line breaks into spaces *)
let sanitize s = String.map (fun ch -> if ch = '\n' || ch = '\r' then ' ' else ch) s

let test_fuzz_junk () =
  with_server @@ fun (addr, _) ->
  with_client addr @@ fun c ->
  let prop raw =
    let resp = request_exn c (sanitize raw) in
    let j =
      try J.parse resp
      with J.Parse_error m ->
        Alcotest.failf "daemon answered junk with non-JSON %S (%s)" resp m
    in
    (match jbool "ok" j with
    | Some false ->
      if jint_exn "status" j <> 2 then Alcotest.fail "error response without status 2"
    | Some true -> () (* the fuzzer stumbled on a valid request — fine *)
    | None -> Alcotest.fail "response without an ok field");
    check_ping c;
    true
  in
  QCheck.Test.check_exn ~rand:(Qtest.rand ())
    (QCheck.Test.make ~count:100
       ~name:"serve: junk bytes get one JSON error; connection stays usable"
       QCheck.string prop)

let test_fuzz_semantic () =
  let nl = J.to_string (J.Str (read_file (netlist_path "rc_line"))) in
  let cases =
    [|
      (Printf.sprintf {|{"id":0,"op":"reduce","netlist":%s,"engine":"warp"}|} nl, "SRV006");
      (Printf.sprintf {|{"id":1,"op":"reduce","netlist":%s,"order":-3}|} nl, "SRV004");
      (Printf.sprintf {|{"id":2,"op":"ac","netlist":%s,"points":1}|} nl, "SRV004");
      ({|{"id":3,"op":"reduce","netlist":""}|}, "SRV005");
      ({|{"id":4,"op":"reduce"}|}, "SRV005");
      ({|{"id":5,"op":"frobnicate"}|}, "SRV003");
      ({|{"id":6}|}, "SRV003");
      ({|[1,2,3]|}, "SRV002");
      ({|{"id":7,"op":"ac","netlist":|}, "SRV001");
    |]
  in
  with_server @@ fun (addr, _) ->
  with_client addr @@ fun c ->
  let prop i =
    let line, code = cases.(i) in
    let resp = request_exn c line in
    let j = J.parse resp in
    if jbool "ok" j <> Some false then
      Alcotest.failf "case %d: expected ok:false, got %s" i resp;
    if jint_exn "status" j <> 2 then Alcotest.failf "case %d: expected status 2" i;
    if not (contains resp code) then
      Alcotest.failf "case %d: expected a %s finding in %s" i code resp;
    check_ping c;
    true
  in
  QCheck.Test.check_exn ~rand:(Qtest.rand ())
    (QCheck.Test.make ~count:40
       ~name:"serve: semantically-bad requests get stable SRV codes"
       (QCheck.int_range 0 (Array.length cases - 1))
       prop)

(* ------------------------------------------------------------------ *)
(* golden parity                                                       *)

let names = [ "rc_line"; "lc_tank"; "rl_ladder"; "coupled_lines" ]

type gentry = { gfreq : float; grow : int; gcol : int; gmag : float; gphase : float }

let read_fixture path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         Scanf.sscanf line "%e %d %d %e %e" (fun gfreq grow gcol gmag gphase ->
             entries := { gfreq; grow; gcol; gmag; gphase } :: !entries)
     done
   with End_of_file -> close_in ic);
  List.rev !entries

(* the golden grid: 16 log points, 1e6..1e10 Hz (test_golden.ml) *)
let ac_request text =
  Printf.sprintf {|{"op":"ac","netlist":%s,"flo":1e6,"fhi":1e10,"points":16}|}
    (J.to_string (J.Str text))

(* The daemon inherits SYMOR_FACTOR: an overridden factor backend is
   numerically valid but not the one that produced the fixtures, so
   only then do we fall back to test_golden's relative tolerance. *)
let fixture_backend =
  match Sys.getenv_opt "SYMOR_FACTOR" with None | Some "" -> true | Some _ -> false

let golden_rtol = 1e-8

(* The daemon's %.17g rendering round-trips doubles exactly, so the
   response carries the sweep's exact bits: under the fixtures' factor
   backend, reconstructing |Z| and arg Z here must reproduce the
   fixture doubles bit for bit. *)
let check_against_golden name resp =
  let j = J.parse resp in
  if jbool "ok" j <> Some true then Alcotest.failf "%s: ac request failed: %s" name resp;
  Alcotest.(check int) (name ^ ": status") 0 (jint_exn "status" j);
  let freqs = Array.of_list (List.map jfloat_exn (jlist_exn (J.member "freqs" j))) in
  Alcotest.(check int) (name ^ ": grid size") 16 (Array.length freqs);
  let z =
    jlist_exn (J.member "z" j)
    |> List.map (fun per_freq ->
           jlist_exn per_freq
           |> List.map (fun row ->
                  jlist_exn row
                  |> List.map (fun cell ->
                         match jlist_exn cell with
                         | [ re; im ] ->
                           { Complex.re = jfloat_exn re; im = jfloat_exn im }
                         | _ -> Alcotest.fail "malformed z cell")
                  |> Array.of_list)
           |> Array.of_list)
    |> Array.of_list
  in
  List.iter
    (fun g ->
      let rec locate i =
        if i >= Array.length freqs then
          Alcotest.failf "%s: fixture frequency %.17e missing from response" name
            g.gfreq
        else if feq freqs.(i) g.gfreq then i
        else locate (i + 1)
      in
      let x = z.(locate 0).(g.grow).(g.gcol) in
      let ok =
        if fixture_backend then
          feq (Complex.norm x) g.gmag && feq (Complex.arg x) g.gphase
        else
          (* reconstruct the complex reference so phase wrapping cannot
             produce false failures (as in test_golden) *)
          Complex.norm (Complex.sub x (Complex.polar g.gmag g.gphase))
          <= golden_rtol *. Float.max g.gmag 1e-30
      in
      if not ok then
        Alcotest.failf
          "%s: Z[%d,%d] at %.6e Hz differs from golden (|Z| %.17e vs %.17e)" name
          g.grow g.gcol g.gfreq (Complex.norm x) g.gmag)
    (read_fixture (golden_path name))

(* one concurrent client per shipped example: all requests in flight
   before any response is read *)
let run_parity ~jobs =
  with_server ~args:[ "--jobs"; string_of_int jobs ] @@ fun (addr, _) ->
  let clients =
    List.map
      (fun name ->
        let c = Serve.Client.connect addr in
        Serve.Client.send_line c (ac_request (read_file (netlist_path name)));
        (name, c))
      names
  in
  List.map
    (fun (name, c) ->
      let resp = recv_exn c in
      Serve.Client.close c;
      check_against_golden name resp;
      (name, resp))
    clients

let test_parity_jobs () =
  let r1 = run_parity ~jobs:1 in
  let r2 = run_parity ~jobs:2 in
  List.iter2
    (fun (name, a) (_, b) ->
      if not (String.equal a b) then
        Alcotest.failf "%s: response bytes differ between --jobs 1 and --jobs 2" name)
    r1 r2

let test_single_flight () =
  with_server @@ fun (addr, _) ->
  let req = ac_request (read_file (netlist_path "rc_line")) in
  let c1 = Serve.Client.connect addr and c2 = Serve.Client.connect addr in
  (* both requests in flight on the same uncached netlist before either
     response is read *)
  Serve.Client.send_line c1 req;
  Serve.Client.send_line c2 req;
  let r1 = recv_exn c1 and r2 = recv_exn c2 in
  Serve.Client.close c1;
  Serve.Client.close c2;
  Alcotest.(check string) "racing clients get identical bytes" r1 r2;
  with_client addr @@ fun c ->
  let stats = J.parse (request_exn c {|{"op":"stats"}|}) in
  Alcotest.(check int) "exactly one cache miss" 1
    (jint_exn "misses" (J.member "cache" stats));
  Alcotest.(check (option (float 0.0))) "exactly one serve.cache_miss" (Some 1.0)
    (J.to_float_opt (J.member "serve.cache_miss" (J.member "counters" stats)))

let test_batching () =
  with_server @@ fun (addr, _) ->
  let req = ac_request (read_file (netlist_path "lc_tank")) in
  with_client addr @@ fun c ->
  (* two identical 16-point sweeps in one write arrive in one tick: the
     group runs one pooled sweep and the twin's 16 points are saved *)
  Serve.Client.send_line c (req ^ "\n" ^ req);
  let r1 = recv_exn c in
  let r2 = recv_exn c in
  Alcotest.(check string) "batched twins get identical bytes" r1 r2;
  check_against_golden "lc_tank" r1;
  let stats = J.parse (request_exn c {|{"op":"stats"}|}) in
  Alcotest.(check int) "16 points saved by batching" 16
    (jint_exn "batched_points" stats)

(* ------------------------------------------------------------------ *)
(* lifecycle                                                           *)

let test_sigterm_drain () =
  with_server @@ fun (addr, pid) ->
  with_client addr @@ fun c ->
  Serve.Client.send_line c (ac_request (read_file (netlist_path "rl_ladder")));
  Unix.kill pid Sys.sigterm;
  (* the in-flight request must be drained and answered — with correct
     data — before the daemon exits (exit 0 asserted by with_server) *)
  check_against_golden "rl_ladder" (recv_exn c);
  Alcotest.(check bool) "EOF after drain" true (Serve.Client.recv_line c = None)

let test_trace_bounded () =
  with_server @@ fun (addr, _) ->
  with_client addr @@ fun c ->
  for i = 1 to 200 do
    let resp = request_exn c (Printf.sprintf {|{"id":%d,"op":"ping","trace":true}|} i) in
    let j = J.parse resp in
    if jbool "ok" j <> Some true then Alcotest.failf "traced ping %d failed" i;
    if J.member "trace" j = J.Null then Alcotest.fail "traced request carried no trace";
    if not (contains resp "serve.request") then
      Alcotest.fail "trace without the serve.request span"
  done;
  let stats = J.parse (request_exn c {|{"op":"stats"}|}) in
  let ev = jint_exn "obs_events" stats in
  if ev >= 8192 then
    Alcotest.failf "obs buffers grew unbounded under traced requests: %d events" ev

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "content-hash keying" `Quick test_cache_keying;
          Alcotest.test_case "lru eviction honours the bound" `Quick test_cache_lru;
          Alcotest.test_case "pinned eviction deferred to unpin" `Quick
            test_cache_deferred_eviction;
          Alcotest.test_case "doomed ghost re-keyed on re-request" `Quick
            test_cache_doomed_ghost;
          Alcotest.test_case "model memo + exact point keying" `Quick
            test_cache_model_and_points;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "junk never kills the daemon" `Quick test_fuzz_junk;
          Alcotest.test_case "semantic errors carry SRV codes" `Quick
            test_fuzz_semantic;
        ] );
      ( "parity",
        [
          Alcotest.test_case "concurrent AC matches golden at jobs 1/2" `Quick
            test_parity_jobs;
          Alcotest.test_case "single-flight on a racing uncached netlist" `Quick
            test_single_flight;
          Alcotest.test_case "same-tick twins share one sweep" `Quick test_batching;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "sigterm drains in-flight requests" `Quick
            test_sigterm_drain;
          Alcotest.test_case "traced requests keep obs bounded" `Quick
            test_trace_bounded;
        ] );
    ]
