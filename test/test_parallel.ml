(* Tests for the parallel AC engine: the domain pool, bitwise
   determinism of the pooled sweep, the split-complex (SoA) skyline
   kernel against the boxed functor oracle, and symbolic-reuse
   regressions. *)

(* ------------------------------------------------------------------ *)
(* Parallel.Pool                                                      *)

let test_pool_map_matches_init () =
  List.iter
    (fun jobs ->
      Parallel.Pool.with_pool ~jobs (fun pool ->
          let got = Parallel.Pool.parallel_map pool 257 (fun i -> (i * i) - 3) in
          let want = Array.init 257 (fun i -> (i * i) - 3) in
          Alcotest.(check bool)
            (Printf.sprintf "map = init at jobs=%d" jobs)
            true (got = want)))
    [ 1; 2; 4 ]

let test_pool_for_covers_once () =
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Array.make 1000 0 in
      (* each slot is written by exactly one iteration *)
      Parallel.Pool.parallel_for pool ~chunk:7 1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

exception Boom

let test_pool_exception_propagates () =
  Parallel.Pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check bool) "raises" true
        (try
           Parallel.Pool.parallel_for pool 100 (fun i -> if i = 57 then raise Boom);
           false
         with Boom -> true);
      (* the pool survives the failed batch *)
      let a = Parallel.Pool.parallel_map pool 10 (fun i -> i) in
      Alcotest.(check bool) "usable after exception" true (a = Array.init 10 Fun.id))

let test_pool_nested_degrades () =
  Parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let out = Array.make 12 (-1) in
      Parallel.Pool.parallel_for pool 4 (fun i ->
          (* nested use of the same pool must run sequentially, not
             deadlock *)
          Parallel.Pool.parallel_for pool 3 (fun j -> out.((3 * i) + j) <- (3 * i) + j));
      Alcotest.(check bool) "nested loops completed" true
        (out = Array.init 12 Fun.id))

let test_default_jobs_positive () =
  Alcotest.(check bool) "default jobs >= 1" true (Parallel.default_jobs () >= 1)

(* ------------------------------------------------------------------ *)
(* bitwise determinism of the pooled sweep                             *)

let bits_equal_cmat p a b =
  let eq_f x y = Int64.bits_of_float x = Int64.bits_of_float y in
  let ok = ref true in
  for i = 0 to p - 1 do
    for j = 0 to p - 1 do
      let x = Linalg.Cmat.get a i j and y = Linalg.Cmat.get b i j in
      if not (eq_f x.Complex.re y.Complex.re && eq_f x.Complex.im y.Complex.im) then
        ok := false
    done
  done;
  !ok

let sweeps_bitwise_equal (a : Simulate.Ac.sweep) (b : Simulate.Ac.sweep) =
  let p = Array.length a.Simulate.Ac.port_names in
  Array.length a.Simulate.Ac.z = Array.length b.Simulate.Ac.z
  && Array.for_all2 (bits_equal_cmat p) a.Simulate.Ac.z b.Simulate.Ac.z

(* cwd is the test directory under `dune runtest` but the workspace
   root under `dune exec` — accept either *)
let netlist_path base =
  let cands = [ "../examples/netlists/" ^ base; "examples/netlists/" ^ base ] in
  match List.find_opt Sys.file_exists cands with Some p -> p | None -> List.hd cands

let shipped_examples =
  List.map netlist_path
    [ "rc_line.cir"; "lc_tank.cir"; "rl_ladder.cir"; "coupled_lines.cir" ]

let test_sweep_bitwise_examples () =
  List.iter
    (fun path ->
      let mna = Circuit.Mna.auto (Circuit.Parser.parse_file path) in
      let freqs = Simulate.Ac.log_freqs ~points:23 1e6 1e10 in
      let seq = Simulate.Ac.sweep ~jobs:1 mna freqs in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s bitwise at jobs=%d" (Filename.basename path) jobs)
            true
            (sweeps_bitwise_equal seq (Simulate.Ac.sweep ~jobs mna freqs)))
        [ 1; 2; 4 ])
    shipped_examples

let test_sweep_bitwise_generator () =
  (* a larger p > 1 workload than the shipped decks *)
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:4 ~sections:15 () in
  let mna = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:37 1e6 5e9 in
  let seq = Simulate.Ac.sweep ~jobs:1 mna freqs in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "rc bus bitwise at jobs=%d" jobs)
        true
        (sweeps_bitwise_equal seq (Simulate.Ac.sweep ~jobs mna freqs)))
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* symbolic-reuse regression: a reused workspace gives the same Z      *)

let test_workspace_reuse_matches_fresh () =
  let nl = Circuit.Generators.package_model ~pins:8 ~signal_pins:4 ~sections:3 () in
  let mna = Circuit.Mna.assemble nl in
  let p = Array.length mna.Circuit.Mna.port_names in
  let ws = Simulate.Ac.workspace mna in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      (* same workspace used repeatedly vs a fresh symbolic phase *)
      let z_reused1 = Simulate.Ac.z_at_ws mna ws s in
      let z_reused2 = Simulate.Ac.z_at_ws mna ws s in
      let z_fresh = Simulate.Ac.z_at mna s in
      Alcotest.(check bool) "reuse deterministic" true (bits_equal_cmat p z_reused1 z_reused2);
      Alcotest.(check bool) "reuse = fresh" true (bits_equal_cmat p z_reused1 z_fresh))
    [ 1e7; 1e9; 7.3e9 ]

(* ------------------------------------------------------------------ *)
(* qcheck: SoA kernel vs the Complex_sym functor oracle                *)

(* random diagonally dominant envelope pencil (G, C) plus a frequency
   point s with Re s >= 0: |G(i,i) + s·C(i,i)| strictly dominates the
   off-diagonal row sums, so both kernels factor without breakdown *)
let gen_pencil =
  QCheck.Gen.(
    int_range 2 24 >>= fun n ->
    list_repeat n (int_range 0 5) >>= fun bands ->
    let first =
      Array.of_list (List.mapi (fun i b -> max 0 (i - b)) bands)
    in
    let fill_rows rng =
      Array.init n (fun i ->
          Array.init
            (i - first.(i) + 1)
            (fun k -> if k = i - first.(i) then 0.0 else float_range (-1.0) 1.0 rng))
    in
    let dominate rows =
      (* full-row absolute sums (envelope entry (i,j) also lives in
         symmetric position (j,i)) *)
      let sums = Array.make n 0.0 in
      Array.iteri
        (fun i r ->
          Array.iteri
            (fun k v ->
              if first.(i) + k < i then begin
                sums.(i) <- sums.(i) +. Float.abs v;
                sums.(first.(i) + k) <- sums.(first.(i) + k) +. Float.abs v
              end)
            r)
        rows;
      Array.iteri (fun i r -> r.(i - first.(i)) <- (2.0 *. sums.(i)) +. 1.0) rows;
      rows
    in
    fun rng ->
      let pe_g = dominate (fill_rows rng) in
      let pe_c = dominate (fill_rows rng) in
      let s =
        { Complex.re = float_range 0.0 2.0 rng; im = float_range 0.1 10.0 rng }
      in
      let b = Array.init n (fun _ -> float_range (-1.0) 1.0 rng) in
      ({ Sparse.Skyline.pe_n = n; pe_first = first; pe_g; pe_c }, s, b))

let print_pencil (env, s, _) =
  Printf.sprintf "n=%d s=%g%+gi" env.Sparse.Skyline.pe_n s.Complex.re s.Complex.im

let soa_matches_oracle =
  QCheck.Test.make ~count:200
    ~name:"skyline: SoA kernel = Complex_sym oracle (diag and solve)"
    (QCheck.make ~print:print_pencil gen_pencil)
    (fun (env, s, b) ->
      let n = env.Sparse.Skyline.pe_n in
      let oracle = Sparse.Skyline.factor_complex_env env s in
      let soa = Sparse.Skyline.Complex_soa.factor_pencil env s in
      let d_o = Sparse.Skyline.Complex_sym.d oracle in
      let d_s = Sparse.Skyline.Complex_soa.d soa in
      let dscale =
        Array.fold_left (fun acc x -> Float.max acc (Complex.norm x)) 1e-300 d_o
      in
      let d_ok = ref true in
      for i = 0 to n - 1 do
        if Complex.norm (Complex.sub d_o.(i) d_s.(i)) > 1e-12 *. dscale then d_ok := false
      done;
      let x_o =
        Sparse.Skyline.Complex_sym.solve oracle
          (Array.map (fun v -> { Complex.re = v; im = 0.0 }) b)
      in
      let x_re = Array.copy b and x_im = Array.make n 0.0 in
      Sparse.Skyline.Complex_soa.solve_split soa x_re x_im;
      let xscale =
        Array.fold_left (fun acc x -> Float.max acc (Complex.norm x)) 1e-300 x_o
      in
      let x_ok = ref true in
      for i = 0 to n - 1 do
        let d =
          Complex.norm
            (Complex.sub x_o.(i) { Complex.re = x_re.(i); im = x_im.(i) })
        in
        if d > 1e-12 *. xscale then x_ok := false
      done;
      !d_ok && !x_ok)

let fill_agrees =
  QCheck.Test.make ~count:100 ~name:"skyline: SoA fill = functor fill"
    (QCheck.make ~print:print_pencil gen_pencil)
    (fun (env, s, _) ->
      let oracle = Sparse.Skyline.factor_complex_env env s in
      let soa = Sparse.Skyline.Complex_soa.factor_pencil env s in
      Sparse.Skyline.Complex_sym.fill oracle = Sparse.Skyline.Complex_soa.fill soa
      && Sparse.Skyline.Complex_sym.dim oracle = Sparse.Skyline.Complex_soa.dim soa)

let qsuite =
  List.map
    (fun t -> Qtest.to_alcotest t)
    [ soa_matches_oracle; fill_agrees ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches init" `Quick test_pool_map_matches_init;
          Alcotest.test_case "for covers once" `Quick test_pool_for_covers_once;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "nested degrades" `Quick test_pool_nested_degrades;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "shipped examples bitwise" `Quick test_sweep_bitwise_examples;
          Alcotest.test_case "rc bus bitwise" `Quick test_sweep_bitwise_generator;
        ] );
      ( "workspace",
        [
          Alcotest.test_case "reuse = fresh factorisation" `Quick
            test_workspace_reuse_matches_fresh;
        ] );
      ("properties", qsuite);
    ]
