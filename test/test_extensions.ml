(* Tests for the extension layer: MPVL (two-sided Lanczos), voltage
   sources, Cauer synthesis, network-parameter conversions, adaptive
   order selection. *)

module Model = Sympvl.Model
module Reduce = Sympvl.Reduce
module Mpvl = Sympvl.Mpvl

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

let terminated_bus wires sections =
  Circuit.Generators.coupled_rc_bus ~terminate:120.0 ~wires ~sections ()

let z_exact_dense (m : Circuit.Mna.t) s =
  let var =
    match m.Circuit.Mna.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let gd = Sparse.Csr.to_dense m.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense m.Circuit.Mna.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one gd var cd in
  let b = Linalg.Cmat.of_real m.Circuit.Mna.b in
  let z = Linalg.Cmat.mul (Linalg.Cmat.transpose b) (Linalg.Cmat.solve k b) in
  match m.Circuit.Mna.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

(* ------------------------------------------------------------------ *)
(* MPVL                                                               *)

let test_mpvl_matches_exact () =
  let nl = terminated_bus 3 10 in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Mpvl.reduce ~order:12 m in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let ze = z_exact_dense m s in
      let zm = Mpvl.eval model s in
      checkf (Printf.sprintf "mpvl at %g" f) ~tol:1e-6 0.0
        (Linalg.Cmat.dist_max ze zm /. Linalg.Cmat.max_abs ze))
    [ 1e6; 1e8; 1e9 ]

let test_mpvl_agrees_with_sympvl () =
  (* on symmetric input both compute the same matrix-Padé approximant *)
  let nl = terminated_bus 2 12 in
  let m = Circuit.Mna.assemble_rc nl in
  let mpvl = Mpvl.reduce ~order:10 m in
  let sympvl = Reduce.mna ~order:10 m in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z1 = Mpvl.eval mpvl s in
      let z2 = Model.eval sympvl s in
      checkf (Printf.sprintf "agree at %g" f) ~tol:1e-7 0.0
        (Linalg.Cmat.dist_max z1 z2 /. Linalg.Cmat.max_abs z2))
    [ 1e6; 1e8; 5e9 ]

let test_mpvl_rlc_indefinite () =
  let nl = Circuit.Generators.rlc_line ~r_load:50.0 ~sections:8 () in
  let m = Circuit.Mna.assemble nl in
  let model = Mpvl.reduce ~order:16 m in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 2e8) in
  let ze = z_exact_dense m s in
  let zm = Mpvl.eval model s in
  checkf "mpvl rlc" ~tol:1e-6 0.0 (Linalg.Cmat.dist_max ze zm /. Linalg.Cmat.max_abs ze)

let test_mpvl_poles_stable_rc () =
  let nl = terminated_bus 2 8 in
  let m = Circuit.Mna.assemble_rc nl in
  let model = Mpvl.reduce ~order:8 m in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "pole in LHP" true (p.Complex.re <= 1e-3 *. Linalg.Cx.abs p))
    (Mpvl.poles model)

let test_mpvl_lc_with_band () =
  let nl, _ = Circuit.Generators.peec_mesh ~segments:16 () in
  let m = Circuit.Mna.assemble_lc nl in
  let model = Mpvl.reduce ~band:(1e8, 5e9) ~order:14 m in
  Alcotest.(check bool) "shift used" true (model.Mpvl.shift > 0.0);
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e9) in
  let ze = z_exact_dense m s in
  let zm = Mpvl.eval model s in
  checkf "mpvl lc" ~tol:1e-5 0.0 (Linalg.Cmat.dist_max ze zm /. Linalg.Cmat.max_abs ze)

(* ------------------------------------------------------------------ *)
(* Voltage sources                                                    *)

let test_vsource_divider () =
  (* V source across a resistive divider: v(mid) = V·R2/(R1+R2) *)
  let nl = Circuit.Netlist.create () in
  let top = Circuit.Netlist.node nl "top" in
  let mid = Circuit.Netlist.node nl "mid" in
  Circuit.Netlist.add_voltage_source nl top 0 (Circuit.Waveform.Dc 3.0);
  Circuit.Netlist.add_resistor nl top mid 1000.0;
  Circuit.Netlist.add_resistor nl mid 0 2000.0;
  let opts = Simulate.Transient.default ~dt:1e-9 ~t_stop:1e-7 in
  let res = Simulate.Transient.run ~opts ~observe:[ mid; top ] nl in
  let _, wave_mid = List.nth res.Simulate.Transient.voltages 0 in
  let _, wave_top = List.nth res.Simulate.Transient.voltages 1 in
  checkf "divider" ~tol:1e-9 2.0 wave_mid.(res.Simulate.Transient.steps);
  checkf "source voltage enforced" ~tol:1e-9 3.0 wave_top.(res.Simulate.Transient.steps)

let test_vsource_rc_charge () =
  (* Thevenin driver charging a capacitor: v(t) = V(1 − e^{−t/RC}) *)
  let nl = Circuit.Netlist.create () in
  let out = Circuit.Netlist.node nl "out" in
  let r = 100.0 and c = 1e-9 and v0 = 1.5 in
  let tau = r *. c in
  (* a sharp step that is 0 at t = 0: the run starts from the true DC
     operating point, so a Dc source would start already settled *)
  Circuit.Netlist.add_thevenin_driver nl out r
    (Circuit.Waveform.Pwl [ (0.0, 0.0); (tau /. 300.0, v0) ]);
  Circuit.Netlist.add_capacitor nl out 0 c;
  let opts =
    {
      (Simulate.Transient.default ~dt:(tau /. 300.0) ~t_stop:(5.0 *. tau)) with
      Simulate.Transient.method_ = `Backward_euler;
    }
  in
  let res = Simulate.Transient.run ~opts ~observe:[ out ] nl in
  let _, wave = List.hd res.Simulate.Transient.voltages in
  let worst = ref 0.0 in
  for k = 10 to res.Simulate.Transient.steps do
    let expected = v0 *. (1.0 -. exp (-.res.Simulate.Transient.times.(k) /. tau)) in
    worst := Float.max !worst (Float.abs (wave.(k) -. expected))
  done;
  Alcotest.(check bool) (Printf.sprintf "charge err %.2e" !worst) true (!worst < 0.01 *. v0)

let test_vsource_parser () =
  let text = "V1 in 0 PWL(0 0 1n 5)\nR1 in out 1k\nC1 out 0 1p\n.port p out\n" in
  let nl = Circuit.Parser.parse_string text in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "vsources" 1 s.Circuit.Netlist.vsources;
  (* roundtrip keeps it *)
  let nl2 = Circuit.Parser.parse_string (Circuit.Parser.to_string nl) in
  Alcotest.(check int) "roundtrip" 1 (Circuit.Netlist.stats nl2).Circuit.Netlist.vsources

let test_vsource_rejected_by_mor () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Circuit.Netlist.add_voltage_source nl a 0 (Circuit.Waveform.Dc 1.0);
  Circuit.Netlist.add_resistor nl a 0 50.0;
  Circuit.Netlist.add_port nl "p" a;
  Alcotest.(check bool) "MOR path rejects V sources" true
    (try
       ignore (Circuit.Mna.assemble_rc nl);
       false
     with Circuit.Diagnostic.User_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Cauer synthesis                                                    *)

let scalar_model order =
  let nl = terminated_bus 3 8 in
  let m = Circuit.Mna.assemble_rc nl in
  Reduce.scalar ~order ~port:0 m

let test_cauer_matches_model () =
  let model = scalar_model 6 in
  let nl, _ = Synth.Cauer.synthesize model in
  let mna = Circuit.Mna.assemble_rc nl in
  List.iter
    (fun f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let z_model = Linalg.Cmat.get (Model.eval model s) 0 0 in
      let z_circ = Linalg.Cmat.get (Simulate.Ac.z_at mna s) 0 0 in
      checkf (Printf.sprintf "cauer at %g" f) ~tol:1e-4 0.0
        (Linalg.Cx.abs Linalg.Cx.(z_model -: z_circ) /. Linalg.Cx.abs z_model))
    [ 1e5; 1e7; 1e9; 1e10 ]

let test_cauer_is_ladder () =
  let model = scalar_model 5 in
  let nl, st = Synth.Cauer.synthesize model in
  (* ladder structure: every capacitor is grounded *)
  List.iter
    (fun e ->
      match e with
      | Circuit.Netlist.Capacitor { n2; _ } ->
        Alcotest.(check int) "shunt capacitor" 0 n2
      | _ -> ())
    (Circuit.Netlist.elements nl);
  Alcotest.(check bool) "has sections" true
    (st.Synth.Cauer.capacitors >= 4 && st.Synth.Cauer.resistors >= 4)

let test_cauer_agrees_with_foster () =
  let model = scalar_model 5 in
  let nlc, _ = Synth.Cauer.synthesize model in
  let nlf, _ = Synth.Foster.synthesize model in
  let mc = Circuit.Mna.assemble_rc nlc in
  let mf = Circuit.Mna.assemble_rc nlf in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e8) in
  let zc = Linalg.Cmat.get (Simulate.Ac.z_at mc s) 0 0 in
  let zf = Linalg.Cmat.get (Simulate.Ac.z_at mf s) 0 0 in
  checkf "two canonical forms agree" ~tol:1e-5 0.0
    (Linalg.Cx.abs Linalg.Cx.(zc -: zf) /. Linalg.Cx.abs zf)

(* ------------------------------------------------------------------ *)
(* Network parameters                                                 *)

let test_netparams_roundtrip () =
  let nl = terminated_bus 3 6 in
  let m = Circuit.Mna.assemble_rc nl in
  let z = Simulate.Ac.z_at m (Linalg.Cx.im (2.0 *. Float.pi *. 1e9)) in
  let y = Simulate.Netparams.z_to_y z in
  let z2 = Simulate.Netparams.y_to_z y in
  checkf "z->y->z" ~tol:1e-9 0.0 (Linalg.Cmat.dist_max z z2 /. Linalg.Cmat.max_abs z);
  let s = Simulate.Netparams.z_to_s z in
  let z3 = Simulate.Netparams.s_to_z s in
  checkf "z->s->z" ~tol:1e-9 0.0 (Linalg.Cmat.dist_max z z3 /. Linalg.Cmat.max_abs z)

let test_netparams_s_passive () =
  (* a passive circuit's S matrix must be unit-bounded at any
     frequency *)
  let nl = terminated_bus 3 6 in
  let m = Circuit.Mna.assemble_rc nl in
  List.iter
    (fun f ->
      let z = Simulate.Ac.z_at m (Linalg.Cx.im (2.0 *. Float.pi *. f)) in
      Alcotest.(check bool)
        (Printf.sprintf "passive S at %g" f)
        true
        (Simulate.Netparams.is_passive_s (Simulate.Netparams.z_to_s z)))
    [ 1e6; 1e9; 1e11 ]

let test_netparams_matched_load () =
  (* a pure 50 Ω resistor port has S = 0 *)
  let z = Linalg.Cmat.of_real (Linalg.Mat.of_arrays [| [| 50.0 |] |]) in
  let s = Simulate.Netparams.z_to_s ~z0:50.0 z in
  checkf "matched" ~tol:1e-12 0.0 (Linalg.Cx.abs (Linalg.Cmat.get s 0 0))

(* ------------------------------------------------------------------ *)
(* Adaptive order                                                     *)

let test_to_accuracy_converges () =
  let nl = terminated_bus 3 15 in
  let m = Circuit.Mna.assemble_rc nl in
  let band = (1e6, 5e9) in
  let model, dev = Reduce.to_accuracy ~tol:1e-8 ~band m in
  Alcotest.(check bool) (Printf.sprintf "dev %.2e small" dev) true (dev <= 1e-8);
  (* the error estimate is honest: true error on the band is small *)
  let freqs = Simulate.Ac.log_freqs ~points:20 1e6 5e9 in
  let sw = Simulate.Ac.sweep m freqs in
  let err = Simulate.Ac.max_rel_error sw (Simulate.Ac.model_sweep (Model.eval model) freqs) in
  Alcotest.(check bool) (Printf.sprintf "true err %.2e" err) true (err < 1e-6)

let test_to_accuracy_respects_max_order () =
  let nl = terminated_bus 3 15 in
  let m = Circuit.Mna.assemble_rc nl in
  let model, _ = Reduce.to_accuracy ~max_order:8 ~tol:1e-14 ~band:(1e6, 5e9) m in
  Alcotest.(check bool) "capped" true (model.Model.order <= 8)

let () =
  Alcotest.run "extensions"
    [
      ( "mpvl",
        [
          Alcotest.test_case "matches exact" `Quick test_mpvl_matches_exact;
          Alcotest.test_case "agrees with sympvl" `Quick test_mpvl_agrees_with_sympvl;
          Alcotest.test_case "rlc indefinite" `Quick test_mpvl_rlc_indefinite;
          Alcotest.test_case "poles stable rc" `Quick test_mpvl_poles_stable_rc;
          Alcotest.test_case "lc with band" `Quick test_mpvl_lc_with_band;
        ] );
      ( "vsource",
        [
          Alcotest.test_case "divider" `Quick test_vsource_divider;
          Alcotest.test_case "rc charge" `Quick test_vsource_rc_charge;
          Alcotest.test_case "parser" `Quick test_vsource_parser;
          Alcotest.test_case "rejected by MOR" `Quick test_vsource_rejected_by_mor;
        ] );
      ( "cauer",
        [
          Alcotest.test_case "matches model" `Quick test_cauer_matches_model;
          Alcotest.test_case "ladder structure" `Quick test_cauer_is_ladder;
          Alcotest.test_case "agrees with foster" `Quick test_cauer_agrees_with_foster;
        ] );
      ( "netparams",
        [
          Alcotest.test_case "roundtrips" `Quick test_netparams_roundtrip;
          Alcotest.test_case "s passive" `Quick test_netparams_s_passive;
          Alcotest.test_case "matched load" `Quick test_netparams_matched_load;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "converges" `Quick test_to_accuracy_converges;
          Alcotest.test_case "max order" `Quick test_to_accuracy_respects_max_order;
        ] );
    ]
