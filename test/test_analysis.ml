(* Static-analysis (lint) and numerical-contract tests.

   One positive and one negative case per lint rule: the positive is a
   minimal netlist that must trigger the code, the negative a near-miss
   that must not. *)

module D = Circuit.Diagnostic
module L = Analysis.Lint

let codes s = List.map (fun d -> d.D.code) (L.lint_string s)
let has code s = List.mem code (codes s)

let contains_sub sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_has code s =
  Alcotest.(check bool) (code ^ " present") true (has code s)

let check_not code s =
  Alcotest.(check bool) (code ^ " absent") false (has code s)

(* a netlist with no findings above info *)
let clean = "R1 1 2 10\nC1 1 0 1p\nR2 2 0 10\nC2 2 0 1p\n.port in 1\n"

let test_clean () =
  let ds = L.lint_string clean in
  Alcotest.(check bool)
    "only info findings" true
    (List.for_all (fun d -> d.D.severity = D.Info) ds);
  check_has "NET013" clean

(* (code, triggering netlist, near-miss netlist) *)
let cases =
  [
    ("NET000", "R1 1\n", clean);
    ( "NET001",
      "R1 1 0 1\nC1 2 3 1p\n.port in 1\n",
      (* the same island grounded *) "R1 1 0 1\nC1 2 0 1p\nR2 2 0 5\n.port in 1\n" );
    ( "NET002",
      "R1 1 0 1\nR2 1 2 5\n.port in 1\n",
      (* the dead end is a declared port *) "R1 1 0 1\nR2 1 2 5\n.port in 1\n.port out 2\n"
    );
    ("NET003", "R1 1 0 1\n.port in 1\n.port out 9\n", clean);
    ("NET004", "R1 1 0 1\n.port in 1\n.port gnd 0\n", clean);
    ("NET005", "R1 1 0 1\nR1 1 0 2\n.port in 1\n", clean);
    ( "NET007",
      "R1 1 0 -5\nC1 1 0 1p\n.port in 1\n",
      "R1 1 0 5\nC1 1 0 1p\n.port in 1\n" );
    ( "NET008",
      "R1 1 0 1\nR2 2 0 1\nL1 1 0 1n\nL2 2 0 1n\nK1 L1 L2 1.5\n.port in 1\n",
      "R1 1 0 1\nR2 2 0 1\nL1 1 0 1n\nL2 2 0 1n\nK1 L1 L2 0.95\n.port in 1\n" );
    ( "NET009",
      "R1 1 0 1\nV1 1 0 1\nV2 1 0 2\n.port in 1\n",
      "R1 1 0 1\nV1 1 0 1\n.port in 1\n" );
    ( "NET010",
      "L1 1 0 1n\nL2 1 0 1n\n.port in 1\n",
      "L1 1 2 1n\nL2 2 0 1n\n.port in 1\n" );
    ( "NET011",
      "R1 1 2 1\nC1 2 0 1p\n.port in 1\n",
      "R1 1 2 1\nC1 2 0 1p\nR2 2 0 50\n.port in 1\n" );
    ( "NET012",
      "R1 1 0 1\nV1 1 0 1\n.port in 1\n",
      "R1 1 0 1\nI1 1 0 1\n.port in 1\n" );
    ("NET014", "R1 1 0 1\nR2 2 0 1\n.port in 1\n.port in 2\n", clean);
    ( "NET015",
      (* pairwise |k| < 1 but the combination is indefinite *)
      "R1 1 0 1\nL1 1 0 1n\nL2 1 0 1n\nL3 1 0 1n\nK1 L1 L2 0.9\nK2 L1 L3 0.9\n\
       K3 L2 L3 -0.9\n.port in 1\n",
      "R1 1 0 1\nL1 1 0 1n\nL2 1 0 1n\nL3 1 0 1n\nK1 L1 L2 0.9\nK2 L1 L3 0.9\n\
       K3 L2 L3 0.9\n.port in 1\n" );
    ("NET016", "R1 1 0 1\n", clean);
  ]

let rule_tests =
  List.map
    (fun (code, pos, neg) ->
      Alcotest.test_case code `Quick (fun () ->
          check_has code pos;
          check_not code neg))
    cases

(* NET006 needs a non-finite value, which the parser's own guards
   reject at read time (reported as NET000) — inject via the API. *)
let test_net006 () =
  let nl = Circuit.Netlist.create () in
  let n1 = Circuit.Netlist.node nl "1" in
  Circuit.Netlist.add nl
    (Circuit.Netlist.Resistor { name = "R1"; n1; n2 = 0; ohms = 1.0 });
  Circuit.Netlist.add nl
    (Circuit.Netlist.Current_source
       { name = "I1"; n1; n2 = 0; wave = Circuit.Waveform.Dc Float.nan });
  Circuit.Netlist.add_port nl "in" n1;
  let ds = L.run nl in
  Alcotest.(check bool) "NET006 present" true
    (List.exists (fun d -> d.D.code = "NET006") ds);
  (* zero-value cards are caught by the parser and become NET000 *)
  check_has "NET000" "R1 1 0 0\n.port in 1\n"

let test_net013_classes () =
  let class_of s =
    match List.find_opt (fun d -> d.D.code = "NET013") (L.lint_string s) with
    | Some d -> d.D.message
    | None -> Alcotest.fail "NET013 missing"
  in
  let contains sub msg =
    Alcotest.(check bool) (sub ^ " in: " ^ msg) true (contains_sub sub msg)
  in
  contains "class: RC" (class_of clean);
  contains "provably stable and passive" (class_of clean);
  contains "class: RL" (class_of "R1 1 0 1\nL1 1 0 1n\n.port in 1\n");
  contains "class: RLC" (class_of "R1 1 0 1\nL1 1 0 1n\nC1 1 0 1p\n.port in 1\n");
  check_not "NET013" "R1 1\n"

let test_sorted_and_lines () =
  let ds = L.lint_string "C1 2 3 1p\nR1 1 0 -5\n.port in 1\n" in
  (* errors first *)
  let rank = function D.Error -> 0 | D.Warning -> 1 | D.Info -> 2 in
  let sevs = List.map (fun d -> d.D.severity) ds in
  let rec non_increasing = function
    | a :: (b :: _ as rest) -> rank a <= rank b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "errors sort first" true (non_increasing sevs);
  (* provenance: the floating island is reported at the C1 card's line *)
  let net001 = List.find (fun d -> d.D.code = "NET001") ds in
  Alcotest.(check (option int)) "NET001 line" (Some 1) net001.D.line;
  let net007 = List.find (fun d -> d.D.code = "NET007") ds in
  Alcotest.(check (option int)) "NET007 line" (Some 2) net007.D.line

let test_exit_code () =
  let ec ~strict s = D.exit_code ~strict (L.lint_string s) in
  Alcotest.(check int) "clean" 0 (ec ~strict:false clean);
  Alcotest.(check int) "warning only" 1 (ec ~strict:false "R1 1 0 -5\n.port in 1\n");
  Alcotest.(check int) "warning strict" 2 (ec ~strict:true "R1 1 0 -5\n.port in 1\n");
  Alcotest.(check int) "error" 2 (ec ~strict:false "R1 1\n")

let test_json () =
  let ds = L.lint_string "R1 1\n" in
  let j = D.list_to_json ds in
  Alcotest.(check bool) "code field" true (contains_sub "\"code\":\"NET000\"" j);
  Alcotest.(check bool) "severity field" true (contains_sub "\"severity\":\"error\"" j)

let test_rule_table () =
  (* every code the engine can emit is documented in the rule table *)
  let documented = List.map (fun (c, _, _) -> c) L.rules in
  Alcotest.(check bool) "16 NET rules documented" true (List.length documented >= 16);
  List.iter
    (fun (code, pos, _) ->
      List.iter
        (fun c ->
          if String.length c >= 3 && String.sub c 0 3 = "NET" then
            Alcotest.(check bool) (c ^ " documented (" ^ code ^ ")") true
              (List.mem c documented))
        (codes pos))
    cases

(* ---- numerical contracts ------------------------------------------ *)

let test_contract_clean_reduction () =
  let nl = Circuit.Parser.parse_string clean in
  let mna = Circuit.Mna.auto nl in
  let model, ds = Sympvl.Reduce.checked ~order:4 mna in
  Alcotest.(check bool) "model is stable" true (Sympvl.Stability.is_stable model);
  Alcotest.(check int) "no contract errors" 0 (D.count D.Error ds);
  let have c = List.exists (fun d -> d.D.code = c) ds in
  List.iter
    (fun c -> Alcotest.(check bool) (c ^ " reported") true (have c))
    [ "NUM001"; "NUM002"; "NUM003"; "NUM004"; "NUM005"; "NUM006" ]

let test_contract_symmetry_violation () =
  let g =
    let t = Sparse.Triplet.create 2 2 in
    Sparse.Triplet.add t 0 0 1.0;
    Sparse.Triplet.add t 0 1 0.5;
    Sparse.Triplet.add t 1 1 1.0;
    Sparse.Csr.of_triplet t
  in
  let nl = Circuit.Parser.parse_string clean in
  let mna = { (Circuit.Mna.auto nl) with Circuit.Mna.g; n = 2; n_nodes = 2 } in
  let ds = Sympvl.Contract.check_mna mna in
  Alcotest.(check bool) "NUM001 error" true
    (List.exists (fun d -> d.D.code = "NUM001" && d.D.severity = D.Error) ds)

let test_contract_tolerance_order () =
  let nl = Circuit.Parser.parse_string clean in
  let mna = Circuit.Mna.auto nl in
  let opts =
    { (Sympvl.Reduce.default ~order:3) with Sympvl.Reduce.dtol = 1e-12; ctol = 1e-6 }
  in
  let _, ds = Sympvl.Reduce.checked ~opts ~order:3 mna in
  Alcotest.(check bool) "NUM004 warns on dtol < ctol" true
    (List.exists (fun d -> d.D.code = "NUM004" && d.D.severity = D.Warning) ds)

(* ---- property: lint-clean netlists reduce without Singular -------- *)

let prop_lint_clean_reduces =
  QCheck.Test.make ~count:30 ~name:"lint: clean random RC reduces without Singular"
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let nl =
        Circuit.Generators.random_rc ~nodes:(5 + (abs seed mod 15)) ~extra_edges:6
          ~seed ()
      in
      let ds = Analysis.Lint.run nl in
      QCheck.assume (List.for_all (fun d -> d.D.severity = D.Info) ds);
      let mna = Circuit.Mna.auto nl in
      match Sympvl.Reduce.mna ~order:5 mna with
      | _ -> true
      | exception Sympvl.Factor.Singular _ -> false)

let () =
  Alcotest.run "analysis"
    [
      ( "lint",
        [
          Alcotest.test_case "clean netlist" `Quick test_clean;
          Alcotest.test_case "NET006 values" `Quick test_net006;
          Alcotest.test_case "NET013 classes" `Quick test_net013_classes;
          Alcotest.test_case "sorted with provenance" `Quick test_sorted_and_lines;
          Alcotest.test_case "exit codes" `Quick test_exit_code;
          Alcotest.test_case "json" `Quick test_json;
          Alcotest.test_case "rule table" `Quick test_rule_table;
        ]
        @ rule_tests );
      ( "contract",
        [
          Alcotest.test_case "clean reduction" `Quick test_contract_clean_reduction;
          Alcotest.test_case "symmetry violation" `Quick test_contract_symmetry_violation;
          Alcotest.test_case "tolerance order" `Quick test_contract_tolerance_order;
        ] );
      ( "property",
        List.map (fun t -> Qtest.to_alcotest t) [ prop_lint_clean_reduces ] );
    ]
