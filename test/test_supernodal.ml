(* Supernodal backend tests: scalable AMD (quotient-graph approximate
   minimum degree), fundamental-supernode detection, exact-fill
   agreement with the elimination-tree prediction, and the
   supernodal-vs-skyline numeric oracle. *)

let pattern_of_lists n rows =
  let tr = Sparse.Triplet.create n n in
  List.iteri (fun i cols -> List.iter (fun j -> Sparse.Triplet.add tr i j 1.0) cols) rows;
  Sparse.Csr.of_triplet tr

let random_spd rng n extra =
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i 2.0
  done;
  for _ = 1 to extra do
    let i = Linalg.Rng.int rng n and j = Linalg.Rng.int rng n in
    if i <> j then Sparse.Triplet.add_sym tr i j (-1.0 /. float_of_int (4 * n))
  done;
  Sparse.Csr.of_triplet tr

let grid_pattern rows cols =
  let n = rows * cols in
  let tr = Sparse.Triplet.create n n in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let u = (r * cols) + c in
      Sparse.Triplet.add tr u u 4.0;
      if r + 1 < rows then Sparse.Triplet.add_sym tr u ((r + 1) * cols + c) (-1.0);
      if c + 1 < cols then Sparse.Triplet.add_sym tr u ((r * cols) + c + 1) (-1.0)
    done
  done;
  Sparse.Csr.of_triplet tr

let is_permutation n perm =
  Array.length perm = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun i -> i >= 0 && i < n && not seen.(i) && (seen.(i) <- true; true))
    perm

(* ------------------------------------------------------------------ *)
(* approximate minimum degree                                          *)

let test_amd_approx_permutation () =
  let rng = Linalg.Rng.create 42 in
  for _ = 1 to 20 do
    let n = 1 + Linalg.Rng.int rng 120 in
    let a = random_spd rng n (3 * n) in
    let perm = Sparse.Amd.order_approx a in
    Alcotest.(check bool) "valid permutation" true (is_permutation n perm)
  done

let test_amd_approx_quality_grid () =
  (* on a 2-D grid the approximate AMD must beat both natural order
     and RCM by a wide margin — that is its whole reason to exist *)
  let a = grid_pattern 30 30 in
  let n = a.Sparse.Csr.rows in
  let natural = Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern a) in
  let rcm = Sparse.Etree.predicted_nnz a (Sparse.Rcm.order a) in
  let amd = Sparse.Etree.predicted_nnz a (Sparse.Amd.order_approx a) in
  Alcotest.(check bool)
    (Printf.sprintf "amd %d < rcm %d on a grid" amd rcm)
    true (amd < rcm);
  Alcotest.(check bool)
    (Printf.sprintf "amd %d < natural %d on a grid" amd natural)
    true (amd < natural);
  ignore n

let test_amd_approx_vs_exact () =
  (* the approximation is allowed to lose to the exact greedy, but not
     catastrophically: within 1.5x on small random SPD patterns *)
  let rng = Linalg.Rng.create 7 in
  for _ = 1 to 10 do
    let n = 20 + Linalg.Rng.int rng 80 in
    let a = random_spd rng n (2 * n) in
    let exact = Sparse.Etree.predicted_nnz a (Sparse.Amd.order a) in
    let approx = Sparse.Etree.predicted_nnz a (Sparse.Amd.order_approx a) in
    Alcotest.(check bool)
      (Printf.sprintf "approx %d <= 1.5 * exact %d" approx exact)
      true
      (float_of_int approx <= 1.5 *. float_of_int exact)
  done

let test_amd_dispatch_guard () =
  (* Amd.order keeps the never-worse-than-natural guarantee on both
     sides of the size cutoff *)
  let a = grid_pattern 40 40 in
  let n = a.Sparse.Csr.rows in
  let perm = Sparse.Amd.order a in
  Alcotest.(check bool) "valid permutation" true (is_permutation n perm);
  let natural = Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern a) in
  let amd = Sparse.Etree.predicted_nnz a perm in
  Alcotest.(check bool) "never worse than natural" true (amd <= natural)

let test_etree_postorder () =
  let a = pattern_of_lists 7 [ [ 0; 3 ]; [ 1; 4 ]; [ 2; 4 ]; [ 3; 5 ]; [ 4; 5 ]; [ 5; 6 ]; [ 6 ] ]
  in
  let et = Sparse.Etree.of_pattern a in
  let post = Sparse.Etree.postorder et in
  Alcotest.(check bool) "postorder is a permutation" true (is_permutation 7 post);
  (* postorder preserves the factor nnz exactly *)
  Alcotest.(check int) "fill preserved"
    (Sparse.Etree.factor_nnz et)
    (Sparse.Etree.predicted_nnz a post);
  (* every node appears after all tree descendants *)
  let rank = Array.make 7 0 in
  Array.iteri (fun k j -> rank.(j) <- k) post;
  Array.iteri
    (fun j p -> if p <> -1 then Alcotest.(check bool) "child before parent" true (rank.(j) < rank.(p)))
    et.Sparse.Etree.parent

(* ------------------------------------------------------------------ *)
(* supernodal symbolic phase                                           *)

let test_supernode_detection () =
  (* a dense trailing block after an arrow pattern: columns sharing
     nested structure must coalesce into one supernode *)
  let n = 6 in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i 4.0
  done;
  (* columns 2..5 fully coupled; 0 and 1 hang off column 2 *)
  for i = 2 to n - 1 do
    for j = i + 1 to n - 1 do
      Sparse.Triplet.add_sym tr i j (-0.5)
    done
  done;
  Sparse.Triplet.add_sym tr 0 2 (-0.5);
  Sparse.Triplet.add_sym tr 1 2 (-0.5);
  let a = Sparse.Csr.of_triplet tr in
  let sym = Sparse.Supernodal.symbolic a in
  (* singleton supernodes {0} and {1} plus the fundamental {2,3,4,5} *)
  Alcotest.(check int) "three supernodes" 3 (Sparse.Supernodal.supernodes sym);
  Alcotest.(check int) "exact fill"
    (Sparse.Etree.factor_nnz (Sparse.Etree.of_pattern a))
    (Sparse.Supernodal.nnz sym)

let test_exact_fill_grid () =
  (* rc_grid-shaped pattern under the backend's own ordering: stored
     factor nnz must equal the elimination-tree prediction exactly *)
  let a = grid_pattern 20 25 in
  let perm = Sparse.Supernodal.order a in
  let pa = Sparse.Csr.permute_sym a perm in
  let sym = Sparse.Supernodal.symbolic pa in
  Alcotest.(check int) "stored nnz = predicted nnz"
    (Sparse.Etree.predicted_nnz a perm)
    (Sparse.Supernodal.nnz sym);
  (* relaxed amalgamation may only add stored zeros, never lose entries *)
  let relaxed = Sparse.Supernodal.symbolic ~relax:16 pa in
  Alcotest.(check bool) "relaxed >= exact" true
    (Sparse.Supernodal.nnz relaxed >= Sparse.Supernodal.nnz sym);
  Alcotest.(check bool) "relaxed merges more" true
    (Sparse.Supernodal.supernodes relaxed <= Sparse.Supernodal.supernodes sym)

(* ------------------------------------------------------------------ *)
(* numeric oracle: supernodal vs skyline                               *)

let max_rel_err x y =
  let scale =
    Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1e-300 y
  in
  let e = ref 0.0 in
  Array.iteri (fun i v -> e := Float.max !e (Float.abs (v -. y.(i)) /. scale)) x;
  !e

let random_pencil rng n =
  (* RC-shaped SPD pair: diagonally dominant G, diagonal-plus-coupling C *)
  let g = random_spd rng n (3 * n) in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i (1.0 +. Linalg.Rng.float rng)
  done;
  for _ = 1 to n do
    let i = Linalg.Rng.int rng n and j = Linalg.Rng.int rng n in
    if i <> j then Sparse.Triplet.add_sym tr i j (-1e-3)
  done;
  (g, Sparse.Csr.of_triplet tr)

let test_real_oracle () =
  let rng = Linalg.Rng.create 11 in
  List.iter
    (fun relax ->
      for _ = 1 to 8 do
        let n = 10 + Linalg.Rng.int rng 150 in
        let g, c = random_pencil rng n in
        let perm = Sparse.Supernodal.order ~c g in
        let pg = Sparse.Csr.permute_sym g perm in
        let pc = Sparse.Csr.permute_sym c perm in
        let s0 = 0.5 in
        let sym = Sparse.Supernodal.symbolic ~relax ~c:pc pg in
        let fac = Sparse.Supernodal.Real.factor sym s0 in
        let env = Sparse.Skyline.pencil_env pg pc in
        let oracle = Sparse.Skyline.factor_pencil_real env s0 in
        let b = Array.init n (fun _ -> (2.0 *. Linalg.Rng.float rng) -. 1.0) in
        let x = Sparse.Supernodal.Real.solve fac b in
        let y = Sparse.Skyline.Real.solve oracle b in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d relax=%d rel err %g" n relax (max_rel_err x y))
          true
          (max_rel_err x y < 1e-9)
      done)
    [ 0; 32 ]

let test_real_extra_stamps () =
  let rng = Linalg.Rng.create 23 in
  let n = 60 in
  let g, c = random_pencil rng n in
  let perm = Sparse.Supernodal.order ~c g in
  let pg = Sparse.Csr.permute_sym g perm in
  let pc = Sparse.Csr.permute_sym c perm in
  let sym = Sparse.Supernodal.symbolic ~c:pc pg in
  (* stamp onto existing pattern positions: diagonal plus a stored
     off-diagonal entry of G *)
  let offd = ref None in
  (try
     for i = 0 to n - 1 do
       Sparse.Csr.iter_row pg i (fun j _ -> if j < i then (offd := Some (i, j); raise Exit))
     done
   with Exit -> ());
  let i0, j0 = Option.get !offd in
  let extra = [| (3, 3, 0.7); (i0, j0, -0.2) |] in
  let fac = Sparse.Supernodal.Real.factor ~extra sym 1.0 in
  let env = Sparse.Skyline.pencil_env pg pc in
  let oracle = Sparse.Skyline.factor_pencil_real ~extra env 1.0 in
  let b = Array.init n (fun i -> Float.sin (float_of_int i)) in
  Alcotest.(check bool) "stamped solve matches skyline" true
    (max_rel_err (Sparse.Supernodal.Real.solve fac b) (Sparse.Skyline.Real.solve oracle b)
    < 1e-9);
  (* an out-of-pattern stamp must be rejected, not silently dropped *)
  Alcotest.check_raises "out-of-pattern stamp"
    (Invalid_argument "Supernodal: extra entry outside the factor pattern") (fun () ->
      let far = Array.init n (fun k -> k) in
      let i = far.(n - 1) and j = far.(0) in
      if Sparse.Csr.get pg i j = 0.0 && Sparse.Csr.get pc i j = 0.0 then
        ignore (Sparse.Supernodal.Real.factor ~extra:[| (i, j, 1.0) |] sym 1.0)
      else raise (Invalid_argument "Supernodal: extra entry outside the factor pattern"))

let test_complex_oracle () =
  let rng = Linalg.Rng.create 31 in
  for _ = 1 to 8 do
    let n = 10 + Linalg.Rng.int rng 120 in
    let g, c = random_pencil rng n in
    let perm = Sparse.Supernodal.order ~c g in
    let pg = Sparse.Csr.permute_sym g perm in
    let pc = Sparse.Csr.permute_sym c perm in
    let s = { Complex.re = 0.3; im = 2.0 *. Float.pi *. 1e3 } in
    let sym = Sparse.Supernodal.symbolic ~c:pc pg in
    let fac = Sparse.Supernodal.Complex_soa.factor sym s in
    let oracle = Sparse.Skyline.factor_complex s pg pc in
    let b = Array.init n (fun i -> { Complex.re = Float.cos (float_of_int i); im = 0.25 }) in
    let re = Array.map (fun z -> z.Complex.re) b in
    let im = Array.map (fun z -> z.Complex.im) b in
    Sparse.Supernodal.Complex_soa.solve_split fac re im;
    let y = Sparse.Skyline.Complex_sym.solve oracle b in
    let yre = Array.map (fun z -> z.Complex.re) y in
    let yim = Array.map (fun z -> z.Complex.im) y in
    Alcotest.(check bool)
      (Printf.sprintf "n=%d re err %g" n (max_rel_err re yre))
      true (max_rel_err re yre < 1e-9);
    Alcotest.(check bool)
      (Printf.sprintf "n=%d im err %g" n (max_rel_err im yim))
      true (max_rel_err im yim < 1e-9)
  done

let test_singular_raises () =
  let n = 4 in
  let tr = Sparse.Triplet.create n n in
  for i = 0 to n - 1 do
    Sparse.Triplet.add tr i i (if i = 2 then 0.0 else 1.0)
  done;
  Sparse.Triplet.add_sym tr 0 2 0.0;
  let a = Sparse.Csr.of_triplet tr in
  let sym = Sparse.Supernodal.symbolic a in
  Alcotest.check_raises "zero pivot" (Sparse.Supernodal.Singular 2) (fun () ->
      ignore (Sparse.Supernodal.Real.factor sym 0.0))

let () =
  Alcotest.run "supernodal"
    [
      ( "amd",
        [
          Alcotest.test_case "approx produces permutations" `Quick test_amd_approx_permutation;
          Alcotest.test_case "approx beats rcm+natural on grids" `Quick test_amd_approx_quality_grid;
          Alcotest.test_case "approx within 1.5x of exact" `Quick test_amd_approx_vs_exact;
          Alcotest.test_case "order dispatch keeps guard" `Quick test_amd_dispatch_guard;
          Alcotest.test_case "etree postorder" `Quick test_etree_postorder;
        ] );
      ( "symbolic",
        [
          Alcotest.test_case "supernode detection" `Quick test_supernode_detection;
          Alcotest.test_case "exact fill on grid" `Quick test_exact_fill_grid;
        ] );
      ( "numeric",
        [
          Alcotest.test_case "real pencil vs skyline" `Quick test_real_oracle;
          Alcotest.test_case "extra stamps" `Quick test_real_extra_stamps;
          Alcotest.test_case "complex pencil vs skyline" `Quick test_complex_oracle;
          Alcotest.test_case "singular pivot" `Quick test_singular_raises;
        ] );
    ]
