(* Tests for the circuit substrate: netlist, parser, MNA assembly,
   generators. Exact transfer-function values are checked against
   hand-computed small circuits. *)

let checkf msg ~tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* evaluate Z(s) = Bᵀ(G + sC)⁻¹B densely (reference path for tests) *)
let z_of_mna (m : Circuit.Mna.t) s =
  let gd = Sparse.Csr.to_dense m.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense m.Circuit.Mna.c in
  let k = Linalg.Cmat.lincomb Linalg.Cx.one gd s cd in
  let b = Linalg.Cmat.of_real m.Circuit.Mna.b in
  let x = Linalg.Cmat.solve k b in
  Linalg.Cmat.mul (Linalg.Cmat.transpose b) x

(* ------------------------------------------------------------------ *)
(* Netlist                                                            *)

let test_netlist_nodes () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let b = Circuit.Netlist.node nl "b" in
  let a' = Circuit.Netlist.node nl "a" in
  Alcotest.(check int) "interned" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "ground" 0 (Circuit.Netlist.node nl "0");
  Alcotest.(check int) "gnd alias" 0 (Circuit.Netlist.node nl "gnd");
  Alcotest.(check int) "num_nodes" 2 (Circuit.Netlist.num_nodes nl);
  Alcotest.(check string) "name roundtrip" "a" (Circuit.Netlist.node_name nl a)

let test_netlist_validation () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Alcotest.(check bool) "negative R rejected" true
    (try
       Circuit.Netlist.add_resistor nl a 0 (-1.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "k >= 1 rejected" true
    (try
       Circuit.Netlist.add_inductor nl ~name:"L1" a 0 1e-9;
       Circuit.Netlist.add_inductor nl ~name:"L2" a 0 1e-9;
       Circuit.Netlist.add_mutual nl "L1" "L2" 1.5;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown inductor rejected" true
    (try
       Circuit.Netlist.add_mutual nl "L1" "Lmissing" 0.5;
       false
     with Invalid_argument _ -> true)

let test_netlist_stats_classify () =
  let nl = Circuit.Generators.rc_line ~sections:5 () in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "resistors" 5 s.Circuit.Netlist.resistors;
  Alcotest.(check int) "capacitors" 5 s.Circuit.Netlist.capacitors;
  Alcotest.(check int) "nodes" 6 s.Circuit.Netlist.nodes;
  Alcotest.(check bool) "classify rc" true (Circuit.Netlist.classify nl = `Rc);
  let nl2 = Circuit.Generators.rlc_line ~sections:3 () in
  Alcotest.(check bool) "classify rlc" true (Circuit.Netlist.classify nl2 = `Rlc);
  let nl3, _ = Circuit.Generators.peec_mesh ~segments:12 () in
  Alcotest.(check bool) "classify lc" true (Circuit.Netlist.classify nl3 = `Lc);
  let nl4 = Circuit.Generators.rl_ladder ~sections:3 () in
  Alcotest.(check bool) "classify rl" true (Circuit.Netlist.classify nl4 = `Rl)

(* ------------------------------------------------------------------ *)
(* Waveform                                                           *)

let test_waveform_pwl () =
  let w = Circuit.Waveform.Pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0) ] in
  checkf "before" ~tol:1e-15 0.0 (Circuit.Waveform.eval w (-1.0));
  checkf "mid ramp" ~tol:1e-15 1.0 (Circuit.Waveform.eval w 0.5);
  checkf "plateau" ~tol:1e-15 2.0 (Circuit.Waveform.eval w 2.0);
  checkf "after" ~tol:1e-15 2.0 (Circuit.Waveform.eval w 10.0)

let test_waveform_pulse () =
  let w =
    Circuit.Waveform.Pulse
      { low = 0.0; high = 1.0; delay = 1.0; rise = 1.0; fall = 1.0; width = 2.0; period = 0.0 }
  in
  checkf "before delay" ~tol:1e-15 0.0 (Circuit.Waveform.eval w 0.5);
  checkf "mid rise" ~tol:1e-15 0.5 (Circuit.Waveform.eval w 1.5);
  checkf "high" ~tol:1e-15 1.0 (Circuit.Waveform.eval w 3.0);
  checkf "mid fall" ~tol:1e-15 0.5 (Circuit.Waveform.eval w 4.5);
  checkf "low after" ~tol:1e-15 0.0 (Circuit.Waveform.eval w 6.0)

let test_waveform_sine () =
  let w = Circuit.Waveform.Sine { offset = 1.0; amplitude = 2.0; freq = 1.0; delay = 0.0 } in
  checkf "t=0" ~tol:1e-12 1.0 (Circuit.Waveform.eval w 0.0);
  checkf "quarter" ~tol:1e-12 3.0 (Circuit.Waveform.eval w 0.25)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)

let test_parser_values () =
  checkf "plain" ~tol:0.0 42.0 (Circuit.Parser.value "42");
  checkf "k" ~tol:1e-9 1500.0 (Circuit.Parser.value "1.5k");
  checkf "meg" ~tol:1.0 2.0e6 (Circuit.Parser.value "2MEG");
  checkf "p" ~tol:1e-25 3.3e-12 (Circuit.Parser.value "3.3p");
  checkf "n" ~tol:1e-20 1e-9 (Circuit.Parser.value "1n");
  checkf "u" ~tol:1e-15 4.7e-6 (Circuit.Parser.value "4.7u");
  checkf "f" ~tol:1e-25 5e-15 (Circuit.Parser.value "5f");
  checkf "g" ~tol:1.0 2e9 (Circuit.Parser.value "2g");
  checkf "t suffix" ~tol:1e3 1.5e12 (Circuit.Parser.value "1.5t");
  checkf "m" ~tol:1e-9 2.2e-3 (Circuit.Parser.value "2.2m");
  Alcotest.(check bool) "garbage rejected" true
    (try
       ignore (Circuit.Parser.value "1.5x");
       false
     with Failure _ -> true)

let test_parser_roundtrip () =
  let text =
    "* small RC with a source\n\
     R1 in mid 1k\n\
     C1 mid 0 2p\n\
     R2 mid out 500\n\
     C2 out 0 1p\n\
     I1 0 in PWL(0 0 1n 1m)\n\
     .port pin in\n\
     .port pout out\n\
     .end\n"
  in
  let nl = Circuit.Parser.parse_string text in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "R count" 2 s.Circuit.Netlist.resistors;
  Alcotest.(check int) "C count" 2 s.Circuit.Netlist.capacitors;
  Alcotest.(check int) "I count" 1 s.Circuit.Netlist.sources;
  Alcotest.(check int) "ports" 2 (Circuit.Netlist.port_count nl);
  (* print and reparse: same stats *)
  let nl2 = Circuit.Parser.parse_string (Circuit.Parser.to_string nl) in
  Alcotest.(check bool) "roundtrip stats" true
    (Circuit.Netlist.stats nl2 = s && Circuit.Netlist.port_count nl2 = 2)

let test_parser_mutual_and_errors () =
  let text = "L1 a 0 1n\nL2 b 0 1n\nK1 L1 L2 0.8\n.port p a\n" in
  let nl = Circuit.Parser.parse_string text in
  Alcotest.(check int) "mutuals" 1 (Circuit.Netlist.stats nl).Circuit.Netlist.mutuals;
  Alcotest.(check bool) "bad card raises with line number" true
    (try
       ignore (Circuit.Parser.parse_string "R1 a 0\n");
       false
     with Circuit.Parser.Parse_error (1, _) -> true)

(* ------------------------------------------------------------------ *)
(* MNA: hand-checked small circuits                                   *)

(* One resistor R = 2 Ω from port node to ground: Z = 2. *)
let test_mna_single_resistor () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Circuit.Netlist.add_resistor nl a 0 2.0;
  Circuit.Netlist.add_port nl "p" a;
  let m = Circuit.Mna.assemble_rc nl in
  let z = z_of_mna m (Linalg.Cx.re 0.0) in
  checkf "Z = R" ~tol:1e-12 2.0 (Linalg.Cmat.get z 0 0).Complex.re

(* RC low-pass driven at the input: Z(s) = R/(1 + sRC) + ...; more
   precisely a series R into C to ground with port at the top:
   Z(s) = R + 1/(sC) seen from... we use the parallel RC:
   Z(s) = R/(1+sRC). *)
let test_mna_parallel_rc () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  Circuit.Netlist.add_resistor nl a 0 1000.0;
  Circuit.Netlist.add_capacitor nl a 0 1e-9;
  Circuit.Netlist.add_port nl "p" a;
  let m = Circuit.Mna.assemble_rc nl in
  let s = Linalg.Cx.im (2.0 *. Float.pi *. 1e6) in
  let z = Linalg.Cmat.get (z_of_mna m s) 0 0 in
  let expected = Linalg.Cx.(re 1000.0 /: (re 1.0 +: smul (1000.0 *. 1e-9) s)) in
  checkf "re" ~tol:1e-6 expected.Complex.re z.Complex.re;
  checkf "im" ~tol:1e-6 expected.Complex.im z.Complex.im

(* L in series with R to ground through general RLC assembly:
   Z(s) = R + sL. *)
let test_mna_rl_series_general () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let b = Circuit.Netlist.node nl "b" in
  Circuit.Netlist.add_inductor nl a b 1e-6;
  Circuit.Netlist.add_resistor nl b 0 50.0;
  Circuit.Netlist.add_port nl "p" a;
  let m = Circuit.Mna.assemble nl in
  Alcotest.(check int) "pencil dim = nodes + inductors" 3 m.Circuit.Mna.n;
  let w = 2.0 *. Float.pi *. 1e7 in
  let s = Linalg.Cx.im w in
  let z = Linalg.Cmat.get (z_of_mna m s) 0 0 in
  checkf "Re Z = R" ~tol:1e-6 50.0 z.Complex.re;
  checkf "Im Z = ωL" ~tol:1e-6 (w *. 1e-6) z.Complex.im

(* Symmetry and PSD structure of the assembled matrices. *)
let test_mna_symmetry () =
  let nl = Circuit.Generators.rlc_line ~sections:6 () in
  let m = Circuit.Mna.assemble nl in
  Alcotest.(check bool) "G symmetric" true (Sparse.Csr.is_symmetric m.Circuit.Mna.g);
  Alcotest.(check bool) "C symmetric" true (Sparse.Csr.is_symmetric m.Circuit.Mna.c);
  Alcotest.(check bool) "not flagged spd" false m.Circuit.Mna.spd

let test_mna_rc_psd () =
  let nl = Circuit.Generators.coupled_rc_bus ~wires:3 ~sections:4 () in
  let m = Circuit.Mna.assemble_rc nl in
  Alcotest.(check bool) "flagged spd" true m.Circuit.Mna.spd;
  let ge = Linalg.Eig_sym.min_eigenvalue (Sparse.Csr.to_dense m.Circuit.Mna.g) in
  let ce = Linalg.Eig_sym.min_eigenvalue (Sparse.Csr.to_dense m.Circuit.Mna.c) in
  Alcotest.(check bool) "G PSD" true (ge > -1e-9);
  Alcotest.(check bool) "C PSD" true (ce > -1e-9)

(* Mutual inductance: two coupled inductors in the ℒ matrix. *)
let test_mna_inductance_matrix () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let b = Circuit.Netlist.node nl "b" in
  Circuit.Netlist.add_inductor nl ~name:"L1" a 0 4e-9;
  Circuit.Netlist.add_inductor nl ~name:"L2" b 0 1e-9;
  Circuit.Netlist.add_mutual nl "L1" "L2" 0.5;
  Circuit.Netlist.add_port nl "p" a;
  let lm = Circuit.Mna.inductance_matrix nl in
  checkf "L11" ~tol:1e-21 4e-9 (Linalg.Mat.get lm 0 0);
  checkf "M = k √(L1 L2)" ~tol:1e-21 1e-9 (Linalg.Mat.get lm 0 1);
  Alcotest.(check bool) "ℒ SPD" true (Linalg.Eig_sym.min_eigenvalue lm > 0.0)

(* LC form vs general RLC form must produce the same Z(jω) once the
   gain/variable conventions are applied. *)
let test_mna_lc_matches_general () =
  let nl, _ = Circuit.Generators.peec_mesh ~segments:10 () in
  let lc = Circuit.Mna.assemble_lc nl in
  let gen = Circuit.Mna.assemble nl in
  Alcotest.(check bool) "lc uses s² variable" true
    (lc.Circuit.Mna.variable = Circuit.Mna.S_squared);
  let w = 2.0 *. Float.pi *. 3e8 in
  let s = Linalg.Cx.im w in
  (* general: Z(s) = Bᵀ(G+sC)⁻¹B *)
  let z_gen = Linalg.Cmat.get (z_of_mna gen s) 0 0 in
  (* lc form: Z(s) = s·Bᵀ(G + s²C)⁻¹B *)
  let s2 = Linalg.Cx.(s *: s) in
  let z_lc = Linalg.Cx.(s *: Linalg.Cmat.get (z_of_mna lc s2) 0 0) in
  checkf "re matches" ~tol:(1e-6 *. Linalg.Cx.abs z_gen) z_gen.Complex.re z_lc.Complex.re;
  checkf "im matches" ~tol:(1e-6 *. Linalg.Cx.abs z_gen) z_gen.Complex.im z_lc.Complex.im

(* RL form vs general RLC form. *)
let test_mna_rl_matches_general () =
  let nl = Circuit.Generators.rl_ladder ~sections:4 () in
  let rl = Circuit.Mna.assemble_rl nl in
  let gen = Circuit.Mna.assemble nl in
  let w = 1e8 in
  let s = Linalg.Cx.im w in
  let z_gen = Linalg.Cmat.get (z_of_mna gen s) 0 0 in
  let z_rl = Linalg.Cx.(s *: Linalg.Cmat.get (z_of_mna rl s) 0 0) in
  checkf "re matches" ~tol:(1e-8 *. Linalg.Cx.abs z_gen) z_gen.Complex.re z_rl.Complex.re;
  checkf "im matches" ~tol:(1e-8 *. Linalg.Cx.abs z_gen) z_gen.Complex.im z_rl.Complex.im

let test_mna_observe_errors () =
  let nl = Circuit.Generators.rc_line ~sections:3 () in
  let m = Circuit.Mna.assemble_rc nl in
  Alcotest.(check bool) "no inductors to observe" true
    (try
       ignore (Circuit.Mna.observe_inductor_current nl m "Lx");
       false
     with Not_found | Circuit.Diagnostic.User_error _ -> true);
  let nl2 = Circuit.Generators.rl_ladder ~sections:3 () in
  let m2 = Circuit.Mna.assemble_rl nl2 in
  let lname, _, _, _ = List.hd (Circuit.Netlist.inductors nl2) in
  Alcotest.(check bool) "RL form rejects observation" true
    (try
       ignore (Circuit.Mna.observe_inductor_current nl2 m2 lname);
       false
     with Circuit.Diagnostic.User_error _ -> true)

let test_mna_rejects () =
  let nl = Circuit.Generators.rlc_line ~sections:2 () in
  Alcotest.(check bool) "rc form rejects inductors" true
    (try
       ignore (Circuit.Mna.assemble_rc nl);
       false
     with Circuit.Diagnostic.User_error _ -> true);
  let nl2 = Circuit.Generators.rc_line ~sections:2 () in
  Alcotest.(check bool) "lc form rejects resistors" true
    (try
       ignore (Circuit.Mna.assemble_lc nl2);
       false
     with Circuit.Diagnostic.User_error _ -> true);
  let nl3 = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl3 "a" in
  Circuit.Netlist.add_resistor nl3 a 0 1.0;
  Alcotest.(check bool) "no ports rejected" true
    (try
       ignore (Circuit.Mna.assemble_rc nl3);
       false
     with Circuit.Diagnostic.User_error _ -> true)

(* observe_inductor_current in the general form: drive port 1 of an
   RL series circuit; inductor current equals port current. *)
let test_mna_observe_inductor () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.node nl "a" in
  let b = Circuit.Netlist.node nl "b" in
  Circuit.Netlist.add_inductor nl ~name:"Lx" a b 1e-6;
  Circuit.Netlist.add_resistor nl b 0 10.0;
  Circuit.Netlist.add_port nl "p" a;
  let m = Circuit.Mna.assemble nl in
  let w = Circuit.Mna.observe_inductor_current nl m "Lx" in
  let m2 = Circuit.Mna.append_output_column m w "iL" in
  Alcotest.(check int) "B widened" 2 m2.Circuit.Mna.b.Linalg.Mat.cols;
  let s = Linalg.Cx.im 1e6 in
  let z = z_of_mna m2 s in
  (* Z21 = inductor current response to port current = 1 (series) *)
  let z21 = Linalg.Cmat.get z 1 0 in
  checkf "series current transfer" ~tol:1e-9 1.0 z21.Complex.re

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)

let test_gen_sizes () =
  let nl = Circuit.Generators.coupled_rc_bus ~wires:4 ~sections:10 () in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "nodes" (4 * 11) s.Circuit.Netlist.nodes;
  Alcotest.(check int) "resistors" 40 s.Circuit.Netlist.resistors;
  Alcotest.(check int) "ports" 4 (Circuit.Netlist.port_count nl);
  Alcotest.(check bool) "many coupling caps" true (s.Circuit.Netlist.capacitors > 100)

let test_gen_package () =
  let nl = Circuit.Generators.package_model ~pins:8 ~signal_pins:2 ~sections:3 () in
  let s = Circuit.Netlist.stats nl in
  Alcotest.(check int) "ports" 4 (Circuit.Netlist.port_count nl);
  Alcotest.(check int) "inductors" 24 s.Circuit.Netlist.inductors_;
  Alcotest.(check int) "mutuals" 21 s.Circuit.Netlist.mutuals;
  (* assembles in the general form without error *)
  let m = Circuit.Mna.assemble nl in
  Alcotest.(check bool) "G symmetric" true (Sparse.Csr.is_symmetric m.Circuit.Mna.g)

let test_gen_peec_spd_l () =
  let nl, out_l = Circuit.Generators.peec_mesh ~segments:24 () in
  let lm = Circuit.Mna.inductance_matrix nl in
  Alcotest.(check bool) "dense ℒ SPD" true (Linalg.Eig_sym.min_eigenvalue lm > 0.0);
  let m = Circuit.Mna.assemble_lc nl in
  (* G singular: min |eigenvalue| ≈ 0 *)
  let ge = Linalg.Eig_sym.values (Sparse.Csr.to_dense m.Circuit.Mna.g) in
  Alcotest.(check bool) "nodal G singular" true (Float.abs ge.(0) < 1e-3);
  (* output observation column exists *)
  let w = Circuit.Mna.observe_inductor_current nl m out_l in
  Alcotest.(check bool) "observation nonzero" true (Linalg.Vec.norm2 w > 0.0)

let test_gen_random_rc_deterministic () =
  let a = Circuit.Generators.random_rc ~nodes:20 ~extra_edges:15 ~seed:5 () in
  let b = Circuit.Generators.random_rc ~nodes:20 ~extra_edges:15 ~seed:5 () in
  Alcotest.(check bool) "same netlist text" true
    (String.equal (Circuit.Parser.to_string a) (Circuit.Parser.to_string b))

let test_gen_rc_tree () =
  let nl = Circuit.Generators.rc_tree ~depth:4 () in
  let s = Circuit.Netlist.stats nl in
  (* binary tree: 2^(d+1) - 2 segments *)
  Alcotest.(check int) "segments" 30 s.Circuit.Netlist.resistors;
  Alcotest.(check int) "ports" 2 (Circuit.Netlist.port_count nl)

let test_waveform_periodic_pulse () =
  let w =
    Circuit.Waveform.Pulse
      { low = 0.0; high = 1.0; delay = 0.0; rise = 0.1; fall = 0.1; width = 0.3; period = 1.0 }
  in
  checkf "first period high" ~tol:1e-12 1.0 (Circuit.Waveform.eval w 0.2);
  checkf "second period high" ~tol:1e-12 1.0 (Circuit.Waveform.eval w 1.2);
  checkf "second period low" ~tol:1e-12 0.0 (Circuit.Waveform.eval w 1.8);
  checkf "dc_value" ~tol:1e-12 0.0 (Circuit.Waveform.dc_value w)

let test_netlist_fresh_nodes () =
  let nl = Circuit.Netlist.create () in
  let a = Circuit.Netlist.fresh_node nl "tmp" in
  let b = Circuit.Netlist.fresh_node nl "tmp" in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "named back" true
    (String.length (Circuit.Netlist.node_name nl a) > 0)

let test_parser_subckt_in_file_grammar () =
  (* .subckt cards interleaved with comments and blank lines *)
  let text =
    "* header\n\n.subckt sec a b\n* inner comment\nR1 a b 10\n.ends\n\nX1 p 0 sec\n.port pp p\n.end\n"
  in
  let nl = Circuit.Parser.parse_string text in
  Alcotest.(check int) "one resistor" 1
    (Circuit.Netlist.stats nl).Circuit.Netlist.resistors

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let prop_random_rc_assembles =
  QCheck.Test.make ~count:30 ~name:"mna: random RC assembles symmetric PSD"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl =
        Circuit.Generators.random_rc ~nodes:(5 + abs seed mod 20) ~extra_edges:10
          ~seed ()
      in
      let m = Circuit.Mna.assemble_rc nl in
      Sparse.Csr.is_symmetric m.Circuit.Mna.g
      && Sparse.Csr.is_symmetric m.Circuit.Mna.c
      && Linalg.Eig_sym.min_eigenvalue (Sparse.Csr.to_dense m.Circuit.Mna.g) > -1e-9)

let prop_z_symmetric =
  QCheck.Test.make ~count:20 ~name:"mna: Z(s) is a symmetric matrix"
    (QCheck.make QCheck.Gen.int)
    (fun seed ->
      let nl =
        Circuit.Generators.random_rc ~ports:3 ~nodes:12 ~extra_edges:8 ~seed ()
      in
      let m = Circuit.Mna.assemble_rc nl in
      let z = z_of_mna m (Linalg.Cx.make 1e5 1e6) in
      let zt = Linalg.Cmat.transpose z in
      Linalg.Cmat.dist_max z zt < 1e-9 *. Float.max 1.0 (Linalg.Cmat.max_abs z))

let () =
  let qsuite =
    List.map (fun t -> Qtest.to_alcotest t) [ prop_random_rc_assembles; prop_z_symmetric ]
  in
  Alcotest.run "circuit"
    [
      ( "netlist",
        [
          Alcotest.test_case "node interning" `Quick test_netlist_nodes;
          Alcotest.test_case "validation" `Quick test_netlist_validation;
          Alcotest.test_case "stats and classify" `Quick test_netlist_stats_classify;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "pwl" `Quick test_waveform_pwl;
          Alcotest.test_case "pulse" `Quick test_waveform_pulse;
          Alcotest.test_case "sine" `Quick test_waveform_sine;
        ] );
      ( "parser",
        [
          Alcotest.test_case "engineering values" `Quick test_parser_values;
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "mutual and errors" `Quick test_parser_mutual_and_errors;
        ] );
      ( "mna",
        [
          Alcotest.test_case "single resistor" `Quick test_mna_single_resistor;
          Alcotest.test_case "parallel RC" `Quick test_mna_parallel_rc;
          Alcotest.test_case "RL series general" `Quick test_mna_rl_series_general;
          Alcotest.test_case "symmetry" `Quick test_mna_symmetry;
          Alcotest.test_case "rc PSD" `Quick test_mna_rc_psd;
          Alcotest.test_case "inductance matrix" `Quick test_mna_inductance_matrix;
          Alcotest.test_case "lc form matches general" `Quick test_mna_lc_matches_general;
          Alcotest.test_case "rl form matches general" `Quick test_mna_rl_matches_general;
          Alcotest.test_case "rejections" `Quick test_mna_rejects;
          Alcotest.test_case "observe errors" `Quick test_mna_observe_errors;
          Alcotest.test_case "observe inductor current" `Quick test_mna_observe_inductor;
        ] );
      ( "misc",
        [
          Alcotest.test_case "periodic pulse" `Quick test_waveform_periodic_pulse;
          Alcotest.test_case "fresh nodes" `Quick test_netlist_fresh_nodes;
          Alcotest.test_case "subckt grammar" `Quick test_parser_subckt_in_file_grammar;
        ] );
      ( "generators",
        [
          Alcotest.test_case "coupled bus sizes" `Quick test_gen_sizes;
          Alcotest.test_case "package model" `Quick test_gen_package;
          Alcotest.test_case "peec mesh structure" `Quick test_gen_peec_spd_l;
          Alcotest.test_case "random rc deterministic" `Quick test_gen_random_rc_deterministic;
          Alcotest.test_case "rc tree" `Quick test_gen_rc_tree;
        ] );
      ("properties", qsuite);
    ]
