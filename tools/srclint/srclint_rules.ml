(* Source-level concurrency & determinism lint (SRC001-SRC012).

   Parses each .ml file with compiler-libs and walks the Parsetree with
   Ast_iterator; findings are emitted through Circuit.Diagnostic so the
   CLI shares the netlist linter's JSON shape and exit-code contract.

   The rules encode the repo's concurrency invariants:

   - SRC001  wall/CPU clocks outside lib/obs (use Obs.now)
   - SRC002  Stdlib Random outside lib/linalg/rng.ml (use Linalg.Rng)
   - SRC003  bare polymorphic [compare] / float-literal (in)equality
   - SRC004  mutation of non-local state inside a pooled parallel body
   - SRC005  catch-all [with _ ->] exception handler
   - SRC006  .ml under lib/ without an .mli (checked by the tree walker)
   - SRC007  stdout/stderr printing in lib/ (use Logs or Diagnostic)
   - SRC008  [exit] in lib/ (only the CLI decides the exit code)
   - SRC009  Obj.* anywhere
   - SRC010  Domain.spawn outside lib/parallel; Thread.create anywhere
   - SRC011  getenv of a non-literal or non-SYMOR_* variable
   - SRC012  module-level mutable state in a Domain-aware module used
             by a function that never takes a Mutex

   Suppression: [@srclint.allow "SRC003"] on an expression or a value
   binding, or a floating [@@@srclint.allow "SRC003"] for the whole
   file; the payload is a comma/space-separated code list. *)

open Parsetree

module Diagnostic = Circuit.Diagnostic

let line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let lid_to_string lid =
  match Longident.flatten lid with
  | parts -> String.concat "." parts
  | exception _ -> ""

(* ---------- path scoping ---------- *)

let segments path = String.split_on_char '/' path

let in_dir d path = List.mem d (segments path)

let in_lib path = in_dir "lib" path

let is_rng path = in_dir "linalg" path && Filename.basename path = "rng.ml"

(* ---------- rule tables ---------- *)

let clock_idents = [ "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Sys.time" ]

let printer_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Stdlib.print_string"; "Stdlib.print_endline";
  ]

let getenv_idents = [ "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv" ]

let hashtbl_mutators = [ "add"; "replace"; "remove"; "reset"; "clear" ]

(* modules whose module-level state is allowed to be touched from a
   parallel body: their own synchronisation is the point *)
let sync_safe_modules = [ "Atomic"; "Obs"; "San"; "Mutex" ]

(* ---------- lint state ---------- *)

type state = {
  path : string;
  mutable findings : Diagnostic.t list;
  mutable allow : string list list; (* stack of allowed-code frames *)
  file_allow : string list;
  has_own_compare : bool;
  mentions_domain : bool;
}

let allowed st code =
  List.mem code st.file_allow || List.exists (List.mem code) st.allow

let emit st ?line ~code ~severity msg =
  if not (allowed st code) then
    st.findings <-
      Diagnostic.make ?line ~code ~severity (st.path ^ ": " ^ msg) :: st.findings

let err st ?line code msg = emit st ?line ~code ~severity:Diagnostic.Error msg

let warn st ?line code msg = emit st ?line ~code ~severity:Diagnostic.Warning msg

(* ---------- suppression attributes ---------- *)

let allow_codes_of_payload = function
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter_map (fun tok ->
           match String.trim tok with "" -> None | t -> Some t)
  | _ -> []

let allow_codes_of_attrs attrs =
  List.concat_map
    (fun a ->
      if a.attr_name.Location.txt = "srclint.allow" then
        allow_codes_of_payload a.attr_payload
      else [])
    attrs

(* ---------- generic expression queries ---------- *)

let expr_contains_ident pred e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; _ } -> if pred (lid_to_string txt) then found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e;
  !found

let bound_names e =
  let tbl = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> Hashtbl.replace tbl txt ()
          | Ppat_alias (_, { txt; _ }) -> Hashtbl.replace tbl txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.expr it e;
  tbl

(* ---------- SRC004: non-local mutation in a parallel body ---------- *)

let is_parallel_call lid =
  match lid with
  | Longident.Lident n | Longident.Ldot (_, n) ->
    n = "parallel_for" || n = "parallel_map"
  | _ -> false

let scan_parallel_body st body =
  let bound = bound_names body in
  let flag loc what =
    err st ~line:(line loc) "SRC004"
      (Printf.sprintf
         "parallel body mutates non-local state '%s'; iterations must only write \
          their own slot (use Atomic, or move the accumulation after the join)"
         what)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
                (_, target) :: _ )
            when op = ":=" || op = "incr" || op = "decr" -> (
            match target.pexp_desc with
            | Pexp_ident { txt = Longident.Lident x; _ }
              when not (Hashtbl.mem bound x) ->
              flag target.pexp_loc x
            | Pexp_ident { txt = Longident.Ldot (Longident.Lident m, x); _ }
              when not (List.mem m sync_safe_modules) ->
              flag target.pexp_loc (m ^ "." ^ x)
            | _ -> ())
          | Pexp_apply
              ( {
                  pexp_desc =
                    Pexp_ident
                      { txt = Longident.Ldot (Longident.Lident "Hashtbl", m); _ };
                  _;
                },
                (_, target) :: _ )
            when List.mem m hashtbl_mutators -> (
            match target.pexp_desc with
            | Pexp_ident { txt = Longident.Lident x; _ }
              when not (Hashtbl.mem bound x) ->
              flag target.pexp_loc ("Hashtbl " ^ x)
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it body

(* ---------- SRC012: module-level mutable state vs Mutex ---------- *)

let rec unconstrain e =
  match e.pexp_desc with Pexp_constraint (e, _) -> unconstrain e | _ -> e

let binding_name vb =
  let rec of_pat p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> of_pat p
    | _ -> None
  in
  of_pat vb.pvb_pat

let is_mutable_init e =
  match (unconstrain e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match lid_to_string txt with "ref" | "Hashtbl.create" -> true | _ -> false)
  | _ -> false

(* every module-level value binding in the file, including bindings
   inside [module M = struct ... end] — their state is just as global *)
let rec toplevel_bindings str =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> vbs
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        toplevel_bindings s
      | _ -> [])
    str

let takes_mutex e =
  expr_contains_ident
    (fun s -> s = "Mutex.lock" || s = "Mutex.try_lock" || s = "Mutex.protect")
    e

let check_shared_state st str =
  if st.mentions_domain then begin
    let bindings = toplevel_bindings str in
    let mutables =
      List.filter_map
        (fun vb ->
          match binding_name vb with
          | Some n when is_mutable_init vb.pvb_expr -> Some n
          | _ -> None)
        bindings
    in
    if mutables <> [] then
      List.iter
        (fun vb ->
          let name = match binding_name vb with Some n -> n | None -> "<binding>" in
          let body = vb.pvb_expr in
          if not (is_mutable_init body) then
            List.iter
              (fun state_name ->
                if
                  expr_contains_ident (fun s -> s = state_name) body
                  && not (takes_mutex body)
                  && not (allowed st "SRC012")
                then
                  err st ~line:(line vb.pvb_loc) "SRC012"
                    (Printf.sprintf
                       "'%s' touches module-level mutable state '%s' in a module \
                        that spawns/uses domains without taking a Mutex; guard it \
                        or make it Atomic"
                       name state_name))
              mutables)
        bindings
  end

(* ---------- main per-expression checks ---------- *)

let zero_float s = match float_of_string_opt s with Some 0.0 -> true | _ -> false

let is_nonzero_float_lit e =
  match (unconstrain e).pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> not (zero_float s)
  | _ -> false

let check_ident st loc lid =
  let name = lid_to_string lid in
  let l = line loc in
  if String.length name >= 4 && String.sub name 0 4 = "Obj." then
    err st ~line:l "SRC009" (Printf.sprintf "unsafe %s breaks the type system" name);
  if List.mem name clock_idents && not (in_dir "obs" st.path) then
    err st ~line:l "SRC001"
      (Printf.sprintf "%s outside lib/obs; use Obs.now so timing goes through one \
                       observable clock" name);
  if
    String.length name >= 7
    && String.sub name 0 7 = "Random."
    && not (is_rng st.path)
  then
    err st ~line:l "SRC002"
      (Printf.sprintf "%s uses ambient global PRNG state; use Linalg.Rng (seeded, \
                       splittable) instead" name);
  if name = "Domain.spawn" && not (in_dir "parallel" st.path) then
    err st ~line:l "SRC010"
      "Domain.spawn outside lib/parallel; route parallelism through Parallel.Pool \
       so job counts and determinism stay centralised";
  if name = "Thread.create" then
    err st ~line:l "SRC010" "Thread.create is banned; use Parallel.Pool domains";
  if name = "compare" && not st.has_own_compare then
    warn st ~line:l "SRC003"
      "bare polymorphic compare; use Int.compare / Float.compare / String.compare \
       or a typed comparator";
  if in_lib st.path then begin
    if List.mem name printer_idents then
      err st ~line:l "SRC007"
        (Printf.sprintf "%s prints from library code; use Logs or return \
                         Circuit.Diagnostic findings" name);
    if name = "exit" then
      err st ~line:l "SRC008" "exit from library code; only the CLI owns the exit code"
  end

let check_apply st loc lid args =
  let name = lid_to_string lid in
  let l = line loc in
  if List.mem name getenv_idents then begin
    let ok =
      match args with
      | (_, arg) :: _ -> (
        match (unconstrain arg).pexp_desc with
        | Pexp_constant (Pconst_string (s, _, _)) ->
          String.length s >= 6 && String.sub s 0 6 = "SYMOR_"
        | _ -> false)
      | [] -> false
    in
    if not ok then
      err st ~line:l "SRC011"
        (Printf.sprintf
           "%s must read a literal SYMOR_* variable so the environment contract \
            stays greppable" name)
  end;
  if name = "=" || name = "<>" then begin
    let float_lit = List.exists (fun (_, a) -> is_nonzero_float_lit a) args in
    if float_lit then
      warn st ~line:l "SRC003"
        "(in)equality against a non-zero float literal; compare with a tolerance \
         (exact-zero tests are exempt)"
  end;
  if is_parallel_call lid then begin
    match List.rev args with
    | (_, body) :: _ -> scan_parallel_body st body
    | [] -> ()
  end

let check_try st cases =
  List.iter
    (fun c ->
      match c.pc_lhs.ppat_desc with
      | Ppat_any ->
        warn st ~line:(line c.pc_lhs.ppat_loc) "SRC005"
          "catch-all 'with _ ->' swallows every exception (including Violation and \
           Out_of_memory); match specific exceptions or bind and reraise"
      | _ -> ())
    cases

(* ---------- driver ---------- *)

let defines_own_compare str =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match binding_name vb with
          | Some "compare" -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  !found

let file_allow_of_structure str =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a when a.attr_name.Location.txt = "srclint.allow" ->
        allow_codes_of_payload a.attr_payload
      | _ -> [])
    str

let contains_substring needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl > 0 && go 0

let run_rules ~path ~source str =
  let st =
    {
      path;
      findings = [];
      allow = [];
      file_allow = file_allow_of_structure str;
      has_own_compare = defines_own_compare str;
      mentions_domain = contains_substring "Domain." source;
    }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          let codes = allow_codes_of_attrs e.pexp_attributes in
          st.allow <- codes :: st.allow;
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> check_ident st e.pexp_loc txt
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args) ->
            check_apply st pexp_loc txt args
          | Pexp_try (_, cases) -> check_try st cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e;
          st.allow <- List.tl st.allow);
      value_binding =
        (fun self vb ->
          let codes = allow_codes_of_attrs vb.pvb_attributes in
          st.allow <- codes :: st.allow;
          Ast_iterator.default_iterator.value_binding self vb;
          st.allow <- List.tl st.allow);
    }
  in
  it.structure it str;
  check_shared_state st str;
  List.stable_sort
    (fun a b ->
      let l = function Some l -> l | None -> 0 in
      Int.compare (l a.Diagnostic.line) (l b.Diagnostic.line))
    (List.rev st.findings)

let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | str -> run_rules ~path ~source str
  | exception e ->
    [
      Diagnostic.error "SRC000"
        (Printf.sprintf "%s: parse error: %s" path (Printexc.to_string e));
    ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* SRC006 is a filesystem property, not an AST one *)
let mli_missing path =
  if
    in_lib path
    && Filename.check_suffix path ".ml"
    && not (Sys.file_exists (path ^ "i"))
  then
    Some
      (Diagnostic.warning "SRC006"
         (path ^ ": no interface file; every lib/ module must declare its surface \
                  in an .mli"))
  else None

let lint_file path =
  let ast_findings = lint_source ~path (read_file path) in
  match mli_missing path with
  | Some d -> d :: ast_findings
  | None -> ast_findings

let default_roots = [ "lib"; "bin"; "bench" ]

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_tree roots =
  roots
  |> List.concat_map (fun root ->
         if Sys.file_exists root then ml_files_under root
         else (
           Printf.eprintf "srclint: warning: %s does not exist, skipping\n" root;
           []))
  |> List.map (fun f -> (f, lint_file f))
