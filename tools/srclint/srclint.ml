(* srclint — the repo's source-level concurrency/determinism gate.

   Usage: srclint [--json] [--strict] [PATH ...]

   Walks the given paths (default: lib bin bench) for .ml files, runs
   SRC001-SRC012 (see Rules), and reports findings. Exit code follows
   the shared Diagnostic contract: 0 clean (infos only), 1 warnings,
   2 errors — with --strict promoting warnings to errors, which is how
   CI runs it. *)

module Diagnostic = Circuit.Diagnostic

let usage () =
  print_string
    "usage: srclint [--json] [--strict] [PATH ...]\n\n\
     Source lint for concurrency and determinism invariants\n\
     (rules SRC001-SRC012; see README \"Correctness tooling\").\n\n\
     \  --json    emit findings as a JSON array\n\
     \  --strict  exit 2 on warnings as well as errors\n\n\
     Default paths: lib bin bench\n"

let () =
  let json = ref false and strict = ref false and paths = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--json" -> json := true
        | "--strict" -> strict := true
        | "-h" | "--help" ->
          usage ();
          exit 0
        | p when String.length p > 0 && p.[0] = '-' ->
          Printf.eprintf "srclint: unknown option %s\n" p;
          exit 2
        | p -> paths := p :: !paths)
    Sys.argv;
  let roots = match List.rev !paths with [] -> Srclint_rules.default_roots | ps -> ps in
  let per_file = Srclint_rules.lint_tree roots in
  let findings = List.concat_map snd per_file in
  if !json then print_endline (Diagnostic.list_to_json findings)
  else begin
    List.iter
      (fun d -> Format.printf "%a@." Diagnostic.pp d)
      findings;
    Printf.printf "srclint: %d files, %d findings (%d errors, %d warnings)\n"
      (List.length per_file) (List.length findings)
      (Diagnostic.count Diagnostic.Error findings)
      (Diagnostic.count Diagnostic.Warning findings)
  end;
  exit (Diagnostic.exit_code ~strict:!strict findings)
