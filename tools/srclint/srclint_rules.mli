(** Source-level concurrency & determinism lint rules (SRC001-SRC012).

    Each rule produces {!Circuit.Diagnostic.t} findings whose message is
    prefixed with the offending path; severities follow the shared CLI
    contract ({!Circuit.Diagnostic.exit_code}). Suppress a rule with
    [[@srclint.allow "SRC003"]] on an expression or value binding, or
    file-wide with a floating [[@@@srclint.allow "SRC003"]]. *)

val lint_source : path:string -> string -> Circuit.Diagnostic.t list
(** [lint_source ~path src] parses [src] as an implementation and runs
    every AST rule. [path] determines scoping (lib/ vs bin/ vs bench/
    rules, per-directory allowances). A syntax error yields a single
    SRC000 error finding. *)

val lint_file : string -> Circuit.Diagnostic.t list
(** {!lint_source} on the file's contents plus the SRC006 interface
    check. *)

val mli_missing : string -> Circuit.Diagnostic.t option
(** SRC006: [Some finding] when [path] is a lib/ [.ml] without a
    sibling [.mli]. *)

val default_roots : string list
(** [["lib"; "bin"; "bench"]] — the directories the CI gate walks. *)

val lint_tree : string list -> (string * Circuit.Diagnostic.t list) list
(** Walk the given roots for [.ml] files (sorted, deterministic) and
    lint each; returns per-file findings in walk order. *)
