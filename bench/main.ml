(* Benchmark / experiment harness.

   Regenerates every table and figure of the paper's evaluation
   (Section 7) on the synthetic substitute workloads documented in
   DESIGN.md, plus the ablation tables DESIGN.md calls out. Each
   section prints the data series the corresponding figure plots.

   Run:  dune exec bench/main.exe            (all experiments)
         dune exec bench/main.exe -- fig2 tabB ...   (a subset)
         dune exec bench/main.exe -- --quick  (reduced sizes)  *)

let quick = ref false

let csv_dir = ref None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* optional plot-ready data files: enabled with --csv [DIR] *)
let csv_out name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (String.concat "," header);
    output_char oc '\n';
    List.iter
      (fun row ->
        output_string oc (String.concat "," (List.map (Printf.sprintf "%.9e") row));
        output_char oc '\n')
      rows;
    close_out oc;
    Printf.printf "[csv] wrote %s (%d rows)\n" path (List.length rows)

(* machine-readable experiment output (always written: downstream
   tooling diffs these against the symbolic predictions) *)
let json_out name json =
  let dir = "bench/out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".json") in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "[json] wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* small bechamel wrapper: estimated ns/run of a thunk                 *)

let measure_ns name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) ols [] with
  | [ v ] -> (
    match Analyze.OLS.estimates v with Some [ ns ] -> ns | _ -> nan)
  | _ -> nan

(* ------------------------------------------------------------------ *)
(* workloads                                                           *)

let peec_mna () =
  let segments = if !quick then 40 else 120 in
  let nl, out_l = Circuit.Generators.peec_mesh ~segments () in
  let mna = Circuit.Mna.assemble_lc nl in
  let w = Circuit.Mna.observe_inductor_current nl mna out_l in
  (nl, Circuit.Mna.append_output_column mna w "i_out")

let package_mna () =
  let pins = if !quick then 16 else 64 in
  let sections = if !quick then 4 else 10 in
  let nl = Circuit.Generators.package_model ~pins ~signal_pins:8 ~sections () in
  (nl, Circuit.Mna.assemble nl)

let bus_netlist () =
  let wires = if !quick then 6 else 17 in
  let sections = if !quick then 20 else 79 in
  Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires ~sections ()

let reduce_banded mna ~order ~band =
  let opts = { (Sympvl.Reduce.default ~order) with Sympvl.Reduce.band = Some band } in
  Sympvl.Reduce.mna ~opts ~order mna

(* ------------------------------------------------------------------ *)
(* Fig. 2 — PEEC LC two-port transfer function                         *)

let fig2 () =
  section "Fig. 2: PEEC circuit transfer function (LC two-port, s^2 pencil)";
  let nl, mna = peec_mna () in
  Printf.printf "workload: %s -> N = %d, p = 2 (drive + inductor-current output)\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl))
    mna.Circuit.Mna.n;
  let band = (1e8, 5e9) in
  let orders = [ 50; 56 ] in
  let t0 = Obs.now () in
  let models = List.map (fun order -> (order, reduce_banded mna ~order ~band)) orders in
  let t_reduce = Obs.now () -. t0 in
  let freqs = Simulate.Ac.log_freqs ~points:(if !quick then 40 else 120) 1e8 5e9 in
  let t0 = Obs.now () in
  let sw = Simulate.Ac.sweep mna freqs in
  let t_exact = Obs.now () -. t0 in
  (* the paper plots |Zin| = |s·Z11| and the transfer |Z21| *)
  Printf.printf "\n%12s %14s %14s %14s %14s\n" "f[Hz]" "|Zin| exact" "|Zin| n=50"
    "|Zin| n=56" "|Z21| exact";
  Array.iteri
    (fun k f ->
      if k mod (Array.length freqs / 20) = 0 then begin
        let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
        let zin z = Linalg.Cx.abs Linalg.Cx.(s *: Linalg.Cmat.get z 0 0) in
        let ze = sw.Simulate.Ac.z.(k) in
        Printf.printf "%12.4e %14.6e" f (zin ze);
        List.iter
          (fun (_, model) -> Printf.printf " %14.6e" (zin (Sympvl.Model.eval model s)))
          models;
        Printf.printf " %14.6e\n" (Linalg.Cx.abs (Linalg.Cmat.get ze 1 0))
      end)
    freqs;
  csv_out "fig2_peec"
    ([ "freq_hz"; "zin_exact"; "z21_exact" ]
    @ List.concat_map (fun (o, _) -> [ Printf.sprintf "zin_n%d" o ]) models)
    (Array.to_list
       (Array.mapi
          (fun k f ->
            let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
            let zin z = Linalg.Cx.abs Linalg.Cx.(s *: Linalg.Cmat.get z 0 0) in
            [ f; zin sw.Simulate.Ac.z.(k);
              Linalg.Cx.abs (Linalg.Cmat.get sw.Simulate.Ac.z.(k) 1 0) ]
            @ List.map (fun (_, model) -> zin (Sympvl.Model.eval model s)) models)
          freqs));
  (* like the paper: n = 50 gives a good match; a few more iterations
     make it essentially perfect over the band of interest; report the
     error on nested sub-bands to show where each order gives out *)
  let banded_err model f_hi =
    let worst = ref 0.0 in
    Array.iteri
      (fun k f ->
        if f <= f_hi then begin
          let zm = Sympvl.Model.eval model (Linalg.Cx.im (2.0 *. Float.pi *. f)) in
          let ze = sw.Simulate.Ac.z.(k) in
          worst :=
            Float.max !worst
              (Linalg.Cmat.dist_max ze zm /. Float.max (Linalg.Cmat.max_abs ze) 1e-300)
        end)
      freqs;
    !worst
  in
  Printf.printf "\n%8s %14s %14s %14s\n" "order" "err <= 2 GHz" "err <= 3.5 GHz"
    "err <= 5 GHz";
  List.iter
    (fun order ->
      let model = reduce_banded mna ~order ~band in
      Printf.printf "%8d %14.3e %14.3e %14.3e\n" order (banded_err model 2e9)
        (banded_err model 3.5e9) (banded_err model 5e9))
    [ 50; 56; 64; 72 ];
  Printf.printf "reduction time %.2fs; exact sweep (%d pts) %.2fs\n" t_reduce
    (Array.length freqs) t_exact

(* ------------------------------------------------------------------ *)
(* Figs. 3 and 4 — package model, 16 ports                             *)

let package_figure ~out_port ~title =
  section title;
  let nl, mna = package_mna () in
  Printf.printf "workload: %s -> N = %d, p = %d\n"
    (Format.asprintf "%a" Circuit.Netlist.pp_stats (Circuit.Netlist.stats nl))
    mna.Circuit.Mna.n
    (Array.length mna.Circuit.Mna.port_names);
  let band = (1e8, 1e10) in
  let orders = [ 48; 64; 80 ] in
  let t0 = Obs.now () in
  let models = List.map (fun order -> (order, reduce_banded mna ~order ~band)) orders in
  Printf.printf "reductions (orders %s): %.2fs\n"
    (String.concat ", " (List.map string_of_int orders))
    (Obs.now () -. t0);
  let freqs = Simulate.Ac.log_freqs ~points:(if !quick then 30 else 90) 1e8 1e10 in
  let t0 = Obs.now () in
  let sw = Simulate.Ac.sweep mna freqs in
  Printf.printf "exact sweep (%d points): %.2fs\n" (Array.length freqs) (Obs.now () -. t0);
  (* voltage transfer |Z(out,0)/Z(0,0)| — drive pin-1 external *)
  let transfer z = Linalg.Cx.abs Linalg.Cx.(Linalg.Cmat.get z out_port 0 /: Linalg.Cmat.get z 0 0) in
  Printf.printf "\n%12s %12s" "f[Hz]" "exact";
  List.iter (fun (o, _) -> Printf.printf " %10s" (Printf.sprintf "n=%d" o)) models;
  print_newline ();
  Array.iteri
    (fun k f ->
      let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
      let t_exact = transfer sw.Simulate.Ac.z.(k) in
      let row = k mod (max 1 (Array.length freqs / 18)) = 0 in
      if row then Printf.printf "%12.4e %12.6f" f t_exact;
      List.iter
        (fun (_, model) ->
          let t_model = transfer (Sympvl.Model.eval model s) in
          if row then Printf.printf " %10.6f" t_model)
        models;
      if row then print_newline ())
    freqs;
  csv_out
    (if out_port = 1 then "fig3_package" else "fig4_package")
    ([ "freq_hz"; "transfer_exact" ]
    @ List.map (fun (o, _) -> Printf.sprintf "transfer_n%d" o) models)
    (Array.to_list
       (Array.mapi
          (fun k f ->
            let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
            [ f; transfer sw.Simulate.Ac.z.(k) ]
            @ List.map (fun (_, model) -> transfer (Sympvl.Model.eval model s)) models)
          freqs));
  (* the figures' visual story: each order tracks the exact transfer
     up to some frequency and gives out above it; report the error on
     nested sub-bands (the paper's "reduction level depends on the
     desired accuracy") *)
  let banded_err model f_hi =
    let worst = ref 0.0 in
    Array.iteri
      (fun k f ->
        if f <= f_hi then begin
          let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
          let t_exact = transfer sw.Simulate.Ac.z.(k) in
          let t_model = transfer (Sympvl.Model.eval model s) in
          worst :=
            Float.max !worst (Float.abs (t_model -. t_exact) /. Float.max t_exact 1e-12)
        end)
      freqs;
    !worst
  in
  Printf.printf "%8s %14s %14s %14s\n" "order" "err <= 1 GHz" "err <= 2.5 GHz"
    "err <= 5 GHz";
  List.iter
    (fun (o, model) ->
      Printf.printf "%8d %14.3e %14.3e %14.3e\n" o (banded_err model 1e9)
        (banded_err model 2.5e9) (banded_err model 5e9))
    models

let fig3 () =
  package_figure ~out_port:1
    ~title:"Fig. 3: package, pin-1 external -> pin-1 internal voltage transfer"

let fig4 () =
  package_figure ~out_port:3
    ~title:"Fig. 4: package, pin-1 external -> pin-2 internal (coupling)"

(* ------------------------------------------------------------------ *)
(* Fig. 5 + Tab. A — interconnect: synthesis + transient CPU time      *)

let fig5 () =
  section "Fig. 5 / Tab. A: crosstalk interconnect, synthesized reduced circuit";
  let nl = bus_netlist () in
  let stats = Circuit.Netlist.stats nl in
  let wires = Circuit.Netlist.port_count nl in
  Printf.printf "full netlist: %d nodes, %d R, %d C, %d ports\n"
    stats.Circuit.Netlist.nodes stats.Circuit.Netlist.resistors
    stats.Circuit.Netlist.capacitors wires;
  let mna = Circuit.Mna.assemble_rc nl in
  let names = Array.init wires (fun w -> Printf.sprintf "port%d" w) in
  (* the paper's reduced circuit kept 2 states per port (34 for 17
     ports); our synthetic bus is denser, so we report that size AND
     the 4-per-port model whose waveforms are indistinguishable *)
  let build order =
    let t0 = Obs.now () in
    let model = Sympvl.Reduce.mna ~order mna in
    let t_reduce = Obs.now () -. t0 in
    let t0 = Obs.now () in
    let syn, sst = Synth.Multiport.synthesize ~port_names:names model in
    let t_synth = Obs.now () -. t0 in
    Printf.printf
      "SyMPVL order %d (%.2fs) -> synthesized %d nodes, %d R, %d C (%d negative, %.2fs)\n"
      order t_reduce sst.Synth.Multiport.nodes sst.Synth.Multiport.resistors
      sst.Synth.Multiport.capacitors sst.Synth.Multiport.negative_elements t_synth;
    (syn, sst)
  in
  let _syn34, sst34 = build (2 * wires) in
  let syn, sst = build (4 * wires) in
  Printf.printf
    "Tab. A | paper: 1350 -> 34 nodal equations, 36620 C/1355 R -> 170 C/459 R\n";
  Printf.printf
    "Tab. A | ours : %d -> %d nodal equations, %d C/%d R -> %d C/%d R (2/port)\n"
    stats.Circuit.Netlist.nodes sst34.Synth.Multiport.nodes
    stats.Circuit.Netlist.capacitors stats.Circuit.Netlist.resistors
    sst34.Synth.Multiport.capacitors sst34.Synth.Multiport.resistors;
  Printf.printf
    "Tab. A | ours : %d -> %d nodal equations, %d C/%d R -> %d C/%d R (4/port)\n"
    stats.Circuit.Netlist.nodes sst.Synth.Multiport.nodes
    stats.Circuit.Netlist.capacitors stats.Circuit.Netlist.resistors
    sst.Synth.Multiport.capacitors sst.Synth.Multiport.resistors;
  (* nonlinear loads at every port in BOTH decks (the paper's setting:
     the linear block lives inside a nonlinear circuit simulation) *)
  let clamp name nl node =
    Circuit.Netlist.add nl
      (Circuit.Netlist.Nonlinear_conductance
         {
           name;
           n1 = node;
           n2 = 0;
           i_of_v = (fun v -> 1e-12 *. (exp (Float.min (v /. 0.05) 50.0) -. 1.0));
           di_dv = (fun v -> 1e-12 /. 0.05 *. exp (Float.min (v /. 0.05) 50.0));
         })
  in
  let drive = Circuit.Waveform.ramp ~rise:1e-9 2e-3 in
  let dt = 1e-11 and t_stop = if !quick then 2e-9 else 6e-9 in
  let opts = Simulate.Transient.default ~dt ~t_stop in
  (* full deck *)
  let full = bus_netlist () in
  let agg = Circuit.Netlist.node full "w0s0" in
  let vic = Circuit.Netlist.node full "w1s0" in
  Circuit.Netlist.add_current_source full 0 agg drive;
  Array.iteri (fun w _ ->
      clamp (Printf.sprintf "Dl%d" w) full
        (Circuit.Netlist.node full (Printf.sprintf "w%ds0" w)))
    names;
  let t0 = Obs.now () in
  let r_full = Simulate.Transient.run ~opts ~observe:[ agg; vic ] full in
  let t_full = Obs.now () -. t0 in
  (* reduced deck: synthesized circuit + same loads *)
  let agg_s = Circuit.Netlist.node syn "port0" in
  let vic_s = Circuit.Netlist.node syn "port1" in
  Circuit.Netlist.add_current_source syn 0 agg_s drive;
  Array.iteri (fun w _ ->
      clamp (Printf.sprintf "Dr%d" w) syn
        (Circuit.Netlist.node syn (Printf.sprintf "port%d" w)))
    names;
  let t0 = Obs.now () in
  let r_syn = Simulate.Transient.run ~opts ~observe:[ agg_s; vic_s ] syn in
  let t_syn = Obs.now () -. t0 in
  Printf.printf "\n%12s %14s %14s %14s %14s\n" "t[s]" "v_agg full" "v_agg reduced"
    "v_vic full" "v_vic reduced";
  let nsteps = r_full.Simulate.Transient.steps in
  let get r idx k = (snd (List.nth r.Simulate.Transient.voltages idx)).(k) in
  List.iter
    (fun pct ->
      let k = nsteps * pct / 100 in
      Printf.printf "%12.3e %14.6f %14.6f %14.6f %14.6f\n"
        r_full.Simulate.Transient.times.(k) (get r_full 0 k) (get r_syn 0 k)
        (get r_full 1 k) (get r_syn 1 k))
    [ 4; 8; 15; 25; 40; 60; 80; 100 ];
  csv_out "fig5_transient"
    [ "t_s"; "v_agg_full"; "v_agg_reduced"; "v_vic_full"; "v_vic_reduced" ]
    (List.init (nsteps + 1) (fun k ->
         [ r_full.Simulate.Transient.times.(k); get r_full 0 k; get r_syn 0 k;
           get r_full 1 k; get r_syn 1 k ]));
  Printf.printf "\nmax waveform deviation: %.3e V\n"
    (Simulate.Transient.max_deviation r_full r_syn);
  Printf.printf
    "CPU: full %.3fs (%d unknowns, %s) vs reduced %.3fs (%d nodes, %s) -> speedup %.1fx\n"
    t_full stats.Circuit.Netlist.nodes
    (match r_full.Simulate.Transient.backend with `Skyline -> "skyline" | `Dense -> "dense")
    t_syn sst.Synth.Multiport.nodes
    (match r_syn.Simulate.Transient.backend with `Skyline -> "skyline" | `Dense -> "dense")
    (t_full /. Float.max t_syn 1e-9);
  Printf.printf "paper: 132s vs 2.15s -> 61x (1997 testbed; shape, not absolute, is the claim)\n"

(* ------------------------------------------------------------------ *)
(* Tab. B — moment matching (the matrix-Padé property, §3.2)           *)

let tab_b () =
  section "Tab. B: matched moments vs 2*floor(n/p) guarantee";
  let _, peec = peec_mna () in
  Printf.printf "%-28s %6s %4s %9s %9s\n" "workload" "order" "p" "guarantee" "matched";
  List.iter
    (fun order ->
      let model = reduce_banded peec ~order ~band:(1e8, 5e9) in
      let matched = Sympvl.Moments.matched_count_scaled ~rtol:1e-4 model peec in
      Printf.printf "%-28s %6d %4d %9d %9d\n" "peec (LC, s^2, shifted)" order 2
        (2 * (order / 2)) matched)
    [ 10; 20; 30; 40; 50 ];
  let bus = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:3 ~sections:25 () in
  let mna = Circuit.Mna.assemble_rc bus in
  List.iter
    (fun order ->
      let model = Sympvl.Reduce.mna ~order mna in
      let matched = Sympvl.Moments.matched_count_scaled ~rtol:1e-5 model mna in
      Printf.printf "%-28s %6d %4d %9d %9d\n" "rc bus (unshifted)" order 3
        (2 * (order / 3)) matched)
    [ 6; 9; 12; 15 ];
  let rlc = Circuit.Generators.rlc_line ~r_load:50.0 ~sections:12 () in
  let mna = Circuit.Mna.assemble rlc in
  List.iter
    (fun order ->
      let model = Sympvl.Reduce.mna ~order mna in
      let matched = Sympvl.Moments.matched_count_scaled ~rtol:1e-4 model mna in
      Printf.printf "%-28s %6d %4d %9d %9d\n" "rlc line (indefinite J)" order 2
        (2 * (order / 2)) matched)
    [ 8; 12; 16 ]

(* ------------------------------------------------------------------ *)
(* Tab. C — stability and passivity at every order (§5)                *)

let tab_c () =
  section "Tab. C: stability/passivity certificates for RC, RL, LC at every order";
  let cases =
    [
      ( "RC (coupled bus)",
        Circuit.Mna.assemble_rc
          (Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:3 ~sections:20 ()) );
      ( "RL (shorted ladder)",
        Circuit.Mna.assemble_rl
          (Circuit.Generators.rl_ladder ~shorted_end:true ~sections:30 ()) );
      ( "LC (mesh, shifted)",
        let nl, _ = Circuit.Generators.peec_mesh ~segments:40 () in
        Circuit.Mna.assemble_lc nl );
    ]
  in
  Printf.printf "%-20s %6s %10s %14s %12s %10s\n" "case" "order" "definite"
    "max Re(pole)" "min eig T" "passive";
  List.iter
    (fun (name, mna) ->
      List.iter
        (fun order ->
          let model = Sympvl.Reduce.mna ~order mna in
          let tmin = Linalg.Eig_sym.min_eigenvalue model.Sympvl.Model.t_mat in
          let passive =
            match Sympvl.Stability.passivity_certificate model with
            | Sympvl.Stability.Certified -> "certified"
            | Sympvl.Stability.Indefinite_t _ -> "VIOLATED"
            | Sympvl.Stability.Not_applicable ->
              (* exact Hamiltonian band test: proves the whole axis,
                 not just a sampling grid *)
              if Sympvl.Stability.passivity_bands model = [] then "bands-ok"
              else "VIOLATED"
          in
          Printf.printf "%-20s %6d %10b %14.3e %12.3e %10s\n" name order
            model.Sympvl.Model.definite
            (Sympvl.Stability.max_pole_re model)
            tmin passive)
        [ 2; 5; 9; 14; 20 ])
    cases

(* ------------------------------------------------------------------ *)
(* Tab. D — AWE explicit-moment instability vs SyPVL (§3.1, ref [5])   *)

let tab_d () =
  section "Tab. D: AWE (explicit moments) vs SyPVL (Lanczos) error by order";
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:5 ~sections:30 () in
  let mna = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:30 1e6 5e9 in
  let sw_full = Simulate.Ac.sweep mna freqs in
  let exact k = Linalg.Cmat.get sw_full.Simulate.Ac.z.(k) 0 0 in
  Printf.printf "%6s %16s %16s %16s\n" "order" "AWE max err" "SyPVL max err" "Hankel rcond";
  List.iter
    (fun order ->
      let sypvl = Sympvl.Reduce.scalar ~order ~port:0 mna in
      let err_of eval =
        let worst = ref 0.0 in
        Array.iteri
          (fun k f ->
            let s = Linalg.Cx.im (2.0 *. Float.pi *. f) in
            let e = Linalg.Cx.abs Linalg.Cx.(eval s -: exact k) /. Linalg.Cx.abs (exact k) in
            worst := Float.max !worst e)
          freqs;
        !worst
      in
      let e_sypvl = err_of (fun s -> Linalg.Cmat.get (Sympvl.Model.eval sypvl s) 0 0) in
      match Sympvl.Awe.build ~order ~port:0 mna with
      | awe ->
        let e_awe = err_of (Sympvl.Awe.eval awe) in
        Printf.printf "%6d %16.3e %16.3e %16.3e\n" order e_awe e_sypvl
          awe.Sympvl.Awe.hankel_rcond
      | exception Sympvl.Awe.Breakdown msg ->
        Printf.printf "%6d %16s %16.3e %16s\n" order ("break: " ^ msg) e_sypvl "-")
    [ 2; 4; 6; 8; 10; 12; 14; 16 ]

(* ------------------------------------------------------------------ *)
(* Tab. E — block-Arnoldi congruence [16] vs SyMPVL                    *)

let tab_e () =
  section "Tab. E: block-Arnoldi congruence projection vs SyMPVL (same order)";
  print_endline
    "(for symmetric definite pencils both methods project onto the same Krylov\n\
    \ space and symmetry doubles the one-sided moment count, so identical\n\
    \ accuracy on the RC bus is the expected result; the methods separate on\n\
    \ the indefinite RLC pencil, where SyMPVL's J-inner product differs)";
  let compare_on title mna orders freqs =
    let sw = Simulate.Ac.sweep mna freqs in
    Printf.printf "%s\n%6s %18s %18s %14s %14s\n" title "order" "SyMPVL max err"
      "Arnoldi max err" "SyMPVL t[ms]" "Arnoldi t[ms]";
    List.iter
      (fun order ->
        let t0 = Obs.now () in
        let sympvl = Sympvl.Reduce.mna ~order mna in
        let t1 = Obs.now () in
        let arnoldi = Sympvl.Arnoldi.reduce ~order mna in
        let t2 = Obs.now () in
        let e1 =
          Simulate.Ac.max_rel_error sw
            (Simulate.Ac.model_sweep (Sympvl.Model.eval sympvl) freqs)
        in
        let e2 =
          Simulate.Ac.max_rel_error sw
            (Simulate.Ac.model_sweep (Sympvl.Arnoldi.eval arnoldi) freqs)
        in
        Printf.printf "%6d %18.3e %18.3e %14.2f %14.2f\n" order e1 e2
          ((t1 -. t0) *. 1e3)
          ((t2 -. t1) *. 1e3))
      orders
  in
  let bus = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:4 ~sections:25 () in
  compare_on "(RC bus, p = 4, definite)" (Circuit.Mna.assemble_rc bus)
    [ 8; 12; 16; 20; 24 ]
    (Simulate.Ac.log_freqs ~points:30 1e7 5e9);
  let rlc = Circuit.Generators.rlc_line ~r_load:50.0 ~sections:25 () in
  compare_on "(RLC line, p = 2, indefinite J)" (Circuit.Mna.assemble rlc)
    [ 10; 20; 30; 40 ]
    (Simulate.Ac.log_freqs ~points:30 1e7 2e9)

(* ------------------------------------------------------------------ *)
(* Tab. F — ablations (DESIGN.md §5)                                   *)

let tab_f () =
  section "Tab. F1: full vs windowed J-orthogonalisation (band Lanczos)";
  let _, mna = package_mna () in
  let band = (1e8, 1e10) in
  let freqs = Simulate.Ac.log_freqs ~points:20 1e8 5e9 in
  let sw = Simulate.Ac.sweep mna freqs in
  Printf.printf "%10s %6s %16s\n" "mode" "order" "max rel err";
  List.iter
    (fun (name, full_ortho) ->
      List.iter
        (fun order ->
          let opts =
            {
              (Sympvl.Reduce.default ~order) with
              Sympvl.Reduce.band = Some band;
              full_ortho;
            }
          in
          let model = Sympvl.Reduce.mna ~opts ~order mna in
          let e =
            Simulate.Ac.max_rel_error sw
              (Simulate.Ac.model_sweep (Sympvl.Model.eval model) freqs)
          in
          Printf.printf "%10s %6d %16.3e\n" name order e)
        [ 32; 64 ])
    [ ("full", true); ("windowed", false) ];

  section "Tab. F2: deflation tolerance (nearly dependent port columns)";
  (* widen B with an extra column that is a 1e-6 perturbation of an
     existing one: loose tolerances deflate it, tight ones keep it *)
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:3 ~sections:15 () in
  let mna0 = Circuit.Mna.assemble_rc nl in
  let near_dup =
    (* column 0 plus a 1e-6 kick on an interior node: nearly, but not
       exactly, dependent — so the outcome is tolerance-driven *)
    Linalg.Vec.init mna0.Circuit.Mna.n (fun i ->
        Linalg.Mat.get mna0.Circuit.Mna.b i 0
        +. (if i = mna0.Circuit.Mna.n / 2 then 1e-6 else 0.0))
  in
  let mna_dup = Circuit.Mna.append_output_column mna0 near_dup "near_dup" in
  Printf.printf "%10s %12s %8s %16s\n" "dtol" "deflations" "order" "max rel err";
  let freqs_dup = Simulate.Ac.log_freqs ~points:15 1e7 2e9 in
  let sw_dup = Simulate.Ac.sweep mna_dup freqs_dup in
  List.iter
    (fun dtol ->
      let opts = { (Sympvl.Reduce.default ~order:16) with Sympvl.Reduce.dtol } in
      let model = Sympvl.Reduce.mna ~opts ~order:16 mna_dup in
      let e =
        Simulate.Ac.max_rel_error sw_dup
          (Simulate.Ac.model_sweep (Sympvl.Model.eval model) freqs_dup)
      in
      Printf.printf "%10.0e %12d %8d %16.3e\n" dtol model.Sympvl.Model.deflations
        model.Sympvl.Model.order e)
    [ 1e-4; 1e-8; 1e-12 ];

  section "Tab. F3: expansion-shift choice on the PEEC workload";
  let _, peec = peec_mna () in
  let freqs = Simulate.Ac.log_freqs ~points:25 1e8 5e9 in
  let sw = Simulate.Ac.sweep peec freqs in
  Printf.printf "%14s %16s\n" "shift (s^2)" "max rel err (n=40)";
  let band_s0 = Sympvl.Reduce.band_shift peec (1e8, 5e9) in
  List.iter
    (fun (label, s0) ->
      let opts =
        { (Sympvl.Reduce.default ~order:40) with Sympvl.Reduce.shift = Some s0 }
      in
      let model = Sympvl.Reduce.mna ~opts ~order:40 peec in
      let e =
        Simulate.Ac.max_rel_error sw (Simulate.Ac.model_sweep (Sympvl.Model.eval model) freqs)
      in
      Printf.printf "%14s %16.3e\n" label e)
    [
      ("band/100", band_s0 /. 100.0);
      ("band (mid)", band_s0);
      ("band*100", band_s0 *. 100.0);
      ("diag-ratio", Sympvl.Reduce.auto_shift peec);
    ];

  section "Tab. F4: RCM ordering ablation (skyline factorisation fill)";
  let _, pkg = package_mna () in
  let with_ordering ordering =
    let perm =
      if ordering then Sparse.Rcm.order pkg.Circuit.Mna.g
      else Sparse.Rcm.identity pkg.Circuit.Mna.n
    in
    let shifted = Sparse.Csr.add ~alpha:1.0 ~beta:1e9 pkg.Circuit.Mna.g pkg.Circuit.Mna.c in
    let pa = Sparse.Csr.permute_sym shifted perm in
    let t0 = Obs.now () in
    let fac = Sparse.Skyline.factor_real pa in
    (Sparse.Skyline.Real.fill fac, Obs.now () -. t0)
  in
  let fill_rcm, t_rcm = with_ordering true in
  let fill_nat, t_nat = with_ordering false in
  Printf.printf "natural order: fill %d (%.3fs); RCM: fill %d (%.3fs)\n" fill_nat t_nat
    fill_rcm t_rcm

(* ------------------------------------------------------------------ *)
(* Tab. G — SyMPVL vs MPVL: the paper's efficiency claim (§8)          *)

let tab_g () =
  section "Tab. G: SyMPVL vs the more general MPVL (paper §8 efficiency claim)";
  print_endline
    "(same matrix-Padé approximant on symmetric input; SyMPVL runs one\n\
    \ J-orthogonal sequence where MPVL runs two biorthogonal ones)";
  let nl = bus_netlist () in
  let mna = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:20 1e7 2e9 in
  let sw = Simulate.Ac.sweep mna freqs in
  Printf.printf "%6s %14s %14s %16s %16s %10s\n" "order" "SyMPVL t[ms]" "MPVL t[ms]"
    "SyMPVL max err" "MPVL max err" "speedup";
  List.iter
    (fun order ->
      let t0 = Obs.now () in
      let sympvl = Sympvl.Reduce.mna ~order mna in
      let t1 = Obs.now () in
      let mpvl = Sympvl.Mpvl.reduce ~order mna in
      let t2 = Obs.now () in
      let e1 =
        Simulate.Ac.max_rel_error sw
          (Simulate.Ac.model_sweep (Sympvl.Model.eval sympvl) freqs)
      in
      let e2 =
        Simulate.Ac.max_rel_error sw (Simulate.Ac.model_sweep (Sympvl.Mpvl.eval mpvl) freqs)
      in
      Printf.printf "%6d %14.2f %14.2f %16.3e %16.3e %9.2fx\n" order
        ((t1 -. t0) *. 1e3)
        ((t2 -. t1) *. 1e3)
        e1 e2
        ((t2 -. t1) /. Float.max (t1 -. t0) 1e-9))
    [ 17; 34; 51; 68 ]

(* ------------------------------------------------------------------ *)
(* Tab. H — SyMPVL vs balanced truncation (modern yardstick)           *)

let tab_h () =
  section "Tab. H: SyMPVL (Krylov/Padé) vs balanced truncation (dense yardstick)";
  print_endline
    "(BT carries an a-priori H-inf bound and near-optimal accuracy per state,\n\
    \ at dense O(N^3) cost; the Krylov method trades a little accuracy for\n\
    \ scalability — the trade the paper's whole line is about)";
  let nl = Circuit.Generators.coupled_rc_bus ~terminate:250.0 ~wires:3 ~sections:30 () in
  let mna = Circuit.Mna.assemble_rc nl in
  let freqs = Simulate.Ac.log_freqs ~points:30 1e6 1e10 in
  let sw = Simulate.Ac.sweep mna freqs in
  Printf.printf "(N = %d, p = 3)\n%6s %16s %16s %14s %12s %12s\n" mna.Circuit.Mna.n
    "order" "SyMPVL max err" "BT max err" "BT H∞ bound" "SyMPVL[ms]" "BT[ms]";
  List.iter
    (fun order ->
      let t0 = Obs.now () in
      let sympvl = Sympvl.Reduce.mna ~order mna in
      let t1 = Obs.now () in
      let bt = Sympvl.Btruncation.reduce ~order mna in
      let t2 = Obs.now () in
      let abs_scale =
        Array.fold_left (fun acc z -> Float.max acc (Linalg.Cmat.max_abs z)) 1e-300 sw.Simulate.Ac.z
      in
      let e1 =
        Simulate.Ac.max_rel_error sw
          (Simulate.Ac.model_sweep (Sympvl.Model.eval sympvl) freqs)
      in
      let e2 =
        Simulate.Ac.max_rel_error sw
          (Simulate.Ac.model_sweep (Sympvl.Btruncation.eval bt) freqs)
      in
      Printf.printf "%6d %16.3e %16.3e %14.3e %12.2f %12.2f\n" order e1 e2
        (bt.Sympvl.Btruncation.error_bound /. abs_scale)
        ((t1 -. t0) *. 1e3)
        ((t2 -. t1) *. 1e3))
    [ 4; 8; 12; 16; 20 ];
  (* multipoint ablation: one deep expansion vs two shallower points at
     the same total order *)
  section "Tab. H2: single-point vs multipoint (rational Krylov) at equal order";
  let s_lo = Sympvl.Arnoldi.shift_of_hz mna 1e7 in
  let s_hi = Sympvl.Arnoldi.shift_of_hz mna 3e9 in
  Printf.printf "%26s %10s %16s\n" "basis" "order" "max rel err";
  let report name t =
    Printf.printf "%26s %10d %16.3e\n" name t.Sympvl.Arnoldi.order
      (Simulate.Ac.max_rel_error sw
         (Simulate.Ac.model_sweep (Sympvl.Arnoldi.eval t) freqs))
  in
  let multi = Sympvl.Arnoldi.reduce_multipoint ~points:[ (s_lo, 3); (s_hi, 3) ] mna in
  report "two points x 3 blocks" multi;
  report "one point (s=0), same n" (Sympvl.Arnoldi.reduce ~shift:0.0 ~order:multi.Sympvl.Arnoldi.order mna);
  report "one point (mid), same n"
    (Sympvl.Arnoldi.reduce ~shift:(Sympvl.Arnoldi.shift_of_hz mna 3e8)
       ~order:multi.Sympvl.Arnoldi.order mna)

(* ------------------------------------------------------------------ *)
(* ac — the exact-sweep engine: seed path vs symbolic reuse + SoA      *)

(* The seed AC path, replicated verbatim as the baseline the json
   records: per-point envelope re-analysis, per-entry Csr.get row
   searches, and the boxed Complex.t functor kernel. *)
let seed_ac_sweep (m : Circuit.Mna.t) freqs =
  let pattern = Sparse.Csr.add m.Circuit.Mna.g m.Circuit.Mna.c in
  let perm = Sparse.Rcm.order pattern in
  let gp = Sparse.Csr.permute_sym m.Circuit.Mna.g perm in
  let cp = Sparse.Csr.permute_sym m.Circuit.Mna.c perm in
  let n = m.Circuit.Mna.n in
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let bp = Linalg.Mat.init n p (fun i j -> Linalg.Mat.get m.Circuit.Mna.b perm.(i) j) in
  let z_at s =
    let var =
      match m.Circuit.Mna.variable with
      | Circuit.Mna.S -> s
      | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
    in
    let fg = Sparse.Skyline.envelope_of_csr gp in
    let fc = Sparse.Skyline.envelope_of_csr cp in
    let first = Array.init n (fun i -> min fg.(i) fc.(i)) in
    let get i j =
      Complex.add
        { Complex.re = Sparse.Csr.get gp i j; im = 0.0 }
        (Complex.mul var { Complex.re = Sparse.Csr.get cp i j; im = 0.0 })
    in
    let fac = Sparse.Skyline.Complex_sym.factor ~n ~first ~get () in
    let z = Linalg.Cmat.create p p in
    for c = 0 to p - 1 do
      let b = Array.init n (fun i -> Linalg.Cx.re (Linalg.Mat.get bp i c)) in
      let x = Sparse.Skyline.Complex_sym.solve fac b in
      for r = 0 to p - 1 do
        let s_acc = ref Linalg.Cx.zero in
        for i = 0 to n - 1 do
          let bi = Linalg.Mat.get bp i r in
          if bi <> 0.0 then s_acc := Linalg.Cx.(!s_acc +: smul bi x.(i))
        done;
        Linalg.Cmat.set z r c !s_acc
      done
    done;
    match m.Circuit.Mna.gain with
    | Circuit.Mna.Unit -> z
    | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z
  in
  Array.map (fun f -> z_at (Linalg.Cx.im (2.0 *. Float.pi *. f))) freqs

let sweeps_bitwise_equal (a : Simulate.Ac.sweep) (b : Simulate.Ac.sweep) =
  let eq_f x y = Int64.bits_of_float x = Int64.bits_of_float y in
  let ok = ref (Array.length a.Simulate.Ac.z = Array.length b.Simulate.Ac.z) in
  Array.iteri
    (fun k za ->
      let zb = b.Simulate.Ac.z.(k) in
      let p = Array.length a.Simulate.Ac.port_names in
      for i = 0 to p - 1 do
        for j = 0 to p - 1 do
          let x = Linalg.Cmat.get za i j and y = Linalg.Cmat.get zb i j in
          if not (eq_f x.Complex.re y.Complex.re && eq_f x.Complex.im y.Complex.im) then
            ok := false
        done
      done)
    a.Simulate.Ac.z;
  !ok

let ac_bench () =
  section "AC engine: seed path vs symbolic reuse + SoA kernel, sequential vs pooled";
  let max_jobs = Parallel.jobs () in
  let jobs_list = List.sort_uniq Int.compare [ 1; 2; max_jobs ] in
  let points = if !quick then 12 else 60 in
  let rows = ref [] in
  let run_workload name (mna : Circuit.Mna.t) f_lo f_hi =
    let p = Array.length mna.Circuit.Mna.port_names in
    let freqs = Simulate.Ac.log_freqs ~points f_lo f_hi in
    Printf.printf "\n%s: N = %d, p = %d, %d points\n" name mna.Circuit.Mna.n p points;
    (* determinism gate: the pooled sweep must be bitwise identical to
       the sequential one at every job count *)
    let reference = Simulate.Ac.sweep ~jobs:1 mna freqs in
    let bitwise =
      List.for_all
        (fun j -> sweeps_bitwise_equal reference (Simulate.Ac.sweep ~jobs:j mna freqs))
        jobs_list
    in
    Printf.printf "bitwise identical across jobs {%s}: %b\n"
      (String.concat ", " (List.map string_of_int jobs_list))
      bitwise;
    if not bitwise then exit 1;
    let ns_seed =
      measure_ns (name ^ "-seed") (fun () -> ignore (seed_ac_sweep mna freqs))
    in
    Printf.printf "%-28s %12.1f ns/point\n" "seed (Csr.get + boxed)"
      (ns_seed /. float_of_int points);
    rows :=
      Printf.sprintf
        "{\"workload\":%S,\"n\":%d,\"ports\":%d,\"points\":%d,\"engine\":\"seed\",\
         \"jobs\":1,\"ns_per_point\":%.1f,\"speedup_vs_seed\":1.0,\"bitwise_identical\":%b}"
        name mna.Circuit.Mna.n p points
        (ns_seed /. float_of_int points)
        bitwise
      :: !rows;
    let per_jobs = ref [] in
    List.iter
      (fun jobs ->
        let ns =
          measure_ns
            (Printf.sprintf "%s-j%d" name jobs)
            (fun () -> ignore (Simulate.Ac.sweep ~jobs mna freqs))
        in
        per_jobs := (jobs, ns) :: !per_jobs;
        Printf.printf "%-28s %12.1f ns/point (%.2fx vs seed)\n"
          (Printf.sprintf "soa+reuse, jobs=%d" jobs)
          (ns /. float_of_int points)
          (ns_seed /. ns);
        rows :=
          Printf.sprintf
            "{\"workload\":%S,\"n\":%d,\"ports\":%d,\"points\":%d,\
             \"engine\":\"soa_reuse\",\"jobs\":%d,\"ns_per_point\":%.1f,\
             \"speedup_vs_seed\":%.2f,\"bitwise_identical\":%b}"
            name mna.Circuit.Mna.n p points jobs
            (ns /. float_of_int points)
            (ns_seed /. ns) bitwise
          :: !rows)
      jobs_list;
    (* hard gate: asking for more workers must never cost throughput.
       jobs=2 may not beat jobs=1 on a small box (the pool caps spawned
       domains at the core count), but it must stay within noise of it *)
    (match (List.assoc_opt 1 !per_jobs, List.assoc_opt 2 !per_jobs) with
    | Some ns1, Some ns2 ->
      let ok = ns2 <= 1.05 *. ns1 in
      Printf.printf "jobs=2 within 5%% of jobs=1: %b (%.2fx)\n" ok (ns2 /. ns1);
      if not ok then exit 1
    | _ -> ())
  in
  run_workload "package_model" (snd (package_mna ())) 1e8 1e10;
  run_workload "coupled_rc_bus"
    (Circuit.Mna.assemble_rc (bus_netlist ()))
    1e6 1e10;
  json_out "ac" ("[\n" ^ String.concat ",\n" (List.rev !rows) ^ "\n]\n")

(* ------------------------------------------------------------------ *)
(* ordering study — symbolic fill prediction vs actual factorisation   *)

let ordering_study () =
  section "Ordering study: predicted vs actual factor nnz (natural / RCM / AMD)";
  print_endline
    "(predicted = elimination-tree column counts on the pattern alone;\n\
    \ actual = nonzeros of a dense Cholesky factor of G + s0*C — they must\n\
    \ agree exactly on these M-matrix workloads. skyline = envelope fill the\n\
    \ skyline backend stores under the same ordering.)";
  let workloads =
    [
      ( "rc_line",
        Circuit.Mna.assemble_rc
          (Circuit.Generators.rc_line ~sections:(if !quick then 60 else 300) ()) );
      ( "rc_grid",
        Circuit.Mna.assemble_rc
          (if !quick then Circuit.Generators.rc_grid ~rows:10 ~cols:12 ()
           else Circuit.Generators.rc_grid ~rows:20 ~cols:25 ()) );
    ]
  in
  let rows = ref [] in
  Printf.printf "\n%-8s %-8s %6s %10s %12s %12s %12s %12s\n" "workload" "ordering" "n"
    "pattern" "predicted" "actual" "skyline" "factor[ms]";
  List.iter
    (fun (wname, (mna : Circuit.Mna.t)) ->
      let pat = Circuit.Mna.pencil_pattern mna in
      let n = mna.Circuit.Mna.n in
      (* what the pipeline actually factors: G + s0·C, SPD here *)
      let shifted =
        Sparse.Csr.add ~alpha:1.0 ~beta:1e9 mna.Circuit.Mna.g mna.Circuit.Mna.c
      in
      List.iter
        (fun (oname, perm) ->
          let predicted = Sparse.Etree.predicted_nnz pat perm in
          let pa = Sparse.Csr.permute_sym shifted perm in
          let actual =
            let l = Linalg.Chol.l (Linalg.Chol.factor (Sparse.Csr.to_dense pa)) in
            let c = ref 0 in
            for i = 0 to n - 1 do
              for j = 0 to i do
                if Linalg.Mat.get l i j <> 0.0 then incr c
              done
            done;
            !c
          in
          let t0 = Obs.now () in
          let fac = Sparse.Skyline.factor_real pa in
          let t_factor = Obs.now () -. t0 in
          let fill = Sparse.Skyline.Real.fill fac in
          Printf.printf "%-8s %-8s %6d %10d %12d %12d %12d %12.2f\n" wname oname n
            (Sparse.Csr.nnz pat) predicted actual fill (t_factor *. 1e3);
          rows :=
            Printf.sprintf
              "{\"workload\":%S,\"ordering\":%S,\"n\":%d,\"pattern_nnz\":%d,\
               \"predicted_factor_nnz\":%d,\"actual_factor_nnz\":%d,\
               \"skyline_fill\":%d,\"factor_ms\":%.3f}"
              wname oname n (Sparse.Csr.nnz pat) predicted actual fill
              (t_factor *. 1e3)
            :: !rows)
        [
          ("natural", Sparse.Rcm.identity n);
          ("rcm", Sparse.Rcm.order pat);
          ("amd", Sparse.Amd.order pat);
        ])
    workloads;
  json_out "ordering" ("[\n" ^ String.concat ",\n" (List.rev !rows) ^ "\n]\n")

(* ------------------------------------------------------------------ *)
(* factor — AMD supernodal vs RCM skyline on a large 2D grid           *)

let factor_bench () =
  section "Factor backends: AMD+supernodal vs RCM+skyline on a 2D RC grid";
  (* the workload the supernodal backend exists for: genuinely
     two-dimensional sparsity, where the RCM envelope stores (and
     processes) several times the fill AMD elimination produces. The
     full size is the 10^5-unknown scale the ROADMAP targets; quick is
     a CI-sized smoke of the same gates. *)
  let gr, gc = if !quick then (100, 100) else (320, 320) in
  let nl = Circuit.Generators.rc_grid ~pitch_pads:(max gr gc) ~rows:gr ~cols:gc () in
  let mna = Circuit.Mna.assemble_rc nl in
  let g = mna.Circuit.Mna.g and c = mna.Circuit.Mna.c in
  let n = mna.Circuit.Mna.n in
  let pat = Sparse.Csr.add g c in
  let s0 = 1e9 in
  Printf.printf "rc_grid %dx%d: N = %d, pattern nnz = %d, shift s0 = %g\n" gr gc n
    (Sparse.Csr.nnz pat) s0;
  let nsolve = 8 in
  let reps = if !quick then 3 else 1 in
  let b0 = Linalg.Vec.init n (fun i -> 1.0 +. float_of_int (i mod 7)) in
  (* time [reps] rounds of (symbolic-free numeric factor + nsolve
     triangular solves) through the production Factor.t wrappers and
     keep the best round; returns the solution for the oracle check *)
  let time_rounds factor_once =
    let best_f = ref infinity and best_s = ref infinity in
    let x = ref [||] in
    for _ = 1 to reps do
      let t0 = Obs.now () in
      let fac = factor_once () in
      let t1 = Obs.now () in
      for _ = 1 to nsolve - 1 do
        ignore (fac.Sympvl.Factor.solve b0)
      done;
      x := fac.Sympvl.Factor.solve b0;
      let t2 = Obs.now () in
      best_f := Float.min !best_f (t1 -. t0);
      best_s := Float.min !best_s (t2 -. t1)
    done;
    (!best_f, !best_s, !x)
  in
  (* supernodal: AMD ordering, shared symbolic phase, panel kernels *)
  let t0 = Obs.now () in
  let amd = Sparse.Supernodal.order pat in
  let predicted = Sparse.Etree.predicted_nnz pat amd in
  let sym =
    Sparse.Supernodal.symbolic ~c:(Sparse.Csr.permute_sym c amd)
      (Sparse.Csr.permute_sym g amd)
  in
  let t_super_sym = Obs.now () -. t0 in
  let super_fill = ref 0 in
  let t_super_f, t_super_s, x_super =
    time_rounds (fun () ->
        let fac = Sparse.Supernodal.Real.factor sym s0 in
        super_fill := Sparse.Supernodal.Real.fill fac;
        Sympvl.Factor.of_supernodal n amd fac)
  in
  Printf.printf "%-26s symbolic %6.3fs  factor %6.3fs  %d solves %6.3fs  \
                 nnz %d (%d supernodes)\n"
    "amd+supernodal" t_super_sym t_super_f nsolve t_super_s !super_fill
    (Sparse.Supernodal.supernodes sym);
  (* skyline: RCM ordering, envelope with pre-scattered G/C rows *)
  let t0 = Obs.now () in
  let rcm = Sparse.Rcm.order pat in
  let env =
    Sparse.Skyline.pencil_env (Sparse.Csr.permute_sym g rcm)
      (Sparse.Csr.permute_sym c rcm)
  in
  let t_sky_sym = Obs.now () -. t0 in
  let sky_fill = ref 0 in
  let t_sky_f, t_sky_s, x_sky =
    time_rounds (fun () ->
        let fac = Sparse.Skyline.factor_pencil_real env s0 in
        sky_fill := Sparse.Skyline.Real.fill fac;
        Sympvl.Factor.of_skyline n rcm fac)
  in
  Printf.printf "%-26s symbolic %6.3fs  factor %6.3fs  %d solves %6.3fs  \
                 envelope fill %d\n"
    "rcm+skyline" t_sky_sym t_sky_f nsolve t_sky_s !sky_fill;
  (* accuracy oracle: both backends solve the same system *)
  let err = ref 0.0 and scale = ref 0.0 in
  for i = 0 to n - 1 do
    err := Float.max !err (Float.abs (x_super.(i) -. x_sky.(i)));
    scale := Float.max !scale (Float.abs x_sky.(i))
  done;
  let rel_err = !err /. Float.max !scale 1e-300 in
  let speedup = (t_sky_f +. t_sky_s) /. Float.max (t_super_f +. t_super_s) 1e-12 in
  let plan_pick =
    match Sympvl.Factor.plan pat with `Supernodal _ -> "supernodal" | `Skyline _ -> "skyline"
  in
  Printf.printf
    "factor+%d-solve speedup %.2fx; solutions agree to %.3e rel; plan picks %s\n"
    nsolve speedup rel_err plan_pick;
  json_out "factor"
    (Printf.sprintf
       "{\"workload\":\"rc_grid\",\"rows\":%d,\"cols\":%d,\"n\":%d,\
        \"pattern_nnz\":%d,\"shift\":%g,\"predicted_factor_nnz\":%d,\
        \"supernodal_nnz\":%d,\"supernodes\":%d,\"skyline_fill\":%d,\
        \"supernodal_symbolic_s\":%.4f,\"supernodal_factor_s\":%.4f,\
        \"supernodal_solves_s\":%.4f,\"skyline_symbolic_s\":%.4f,\
        \"skyline_factor_s\":%.4f,\"skyline_solves_s\":%.4f,\"nsolve\":%d,\
        \"speedup_factor_solve\":%.3f,\"solution_rel_err\":%.3e,\
        \"plan_pick\":%S}\n"
       gr gc n (Sparse.Csr.nnz pat) s0 predicted !super_fill
       (Sparse.Supernodal.supernodes sym)
       !sky_fill t_super_sym t_super_f t_super_s t_sky_sym t_sky_f t_sky_s nsolve
       speedup rel_err plan_pick);
  (* hard gates — the acceptance criteria of the supernodal backend:
     exact symbolic fill (the numeric phase stores precisely what the
     elimination tree predicts), a real end-to-end win over the skyline
     at scale, and agreeing solutions *)
  if !super_fill <> predicted then begin
    Printf.printf "FAIL: supernodal nnz %d != Etree predicted %d\n" !super_fill
      predicted;
    exit 1
  end;
  let floor_x = if !quick then 1.5 else 3.0 in
  if speedup < floor_x then begin
    Printf.printf "FAIL: factor+solve speedup %.2fx < %.1fx\n" speedup floor_x;
    exit 1
  end;
  if rel_err > 1e-8 then begin
    Printf.printf "FAIL: backends disagree (%.3e rel)\n" rel_err;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* kernel microbenchmarks (bechamel)                                   *)

let kernels () =
  section "Kernel timings (bechamel OLS estimates)";
  let _, pkg = package_mna () in
  let band = (1e8, 1e10) in
  let ws_point = Linalg.Cx.im (2.0 *. Float.pi *. 1e9) in
  let tests =
    [
      ( "package: SyMPVL order 48",
        fun () -> ignore (reduce_banded pkg ~order:48 ~band) );
      ("package: exact AC point", fun () -> ignore (Simulate.Ac.z_at pkg ws_point));
      ( "package: factor G+s0C (skyline+RCM)",
        fun () ->
          ignore
            (Sympvl.Factor.with_shift pkg.Circuit.Mna.g pkg.Circuit.Mna.c 1e9) );
    ]
  in
  List.iter
    (fun (name, fn) ->
      let ns = measure_ns name fn in
      Printf.printf "%-40s %12.3f ms/run\n" name (ns /. 1e6))
    tests

(* ------------------------------------------------------------------ *)
(* observability gates — disabled probes must allocate nothing, and    *)
(* enabling tracing must not perturb the pooled sweep                  *)

let obs_gate () =
  section "Observability: zero-allocation gate + tracing-on determinism";
  (* gate 1: with tracing disabled every probe is a load-and-branch.
     The countf/instant sites follow the repo convention of a
     [tracing ()] guard so their float/list arguments are never built;
     span_begin/count take only immediates and statics and are called
     unguarded, exactly as the hot paths do. *)
  Obs.disable ();
  Obs.reset ();
  let iters = 1_000_000 in
  let before = Gc.allocated_bytes () in
  for i = 0 to iters - 1 do
    Obs.span_begin "gate.span";
    Obs.count "gate.count" i;
    if Obs.tracing () then Obs.countf "gate.countf" (float_of_int i);
    if Obs.tracing () then Obs.instant ~args:[ ("i", Obs.Int i) ] "gate.instant";
    Obs.span_end ()
  done;
  let alloc_bytes = Gc.allocated_bytes () -. before in
  Printf.printf "disabled probes: %d iterations, %.0f bytes allocated\n" iters
    alloc_bytes;
  if alloc_bytes > 1024.0 then begin
    Printf.eprintf "FAIL: disabled probes allocate (%.0f bytes > 1024)\n" alloc_bytes;
    exit 1
  end;
  let ns_probe =
    measure_ns "disabled-probe" (fun () ->
        Obs.span_begin "gate.span";
        Obs.count "gate.count" 1;
        Obs.span_end ())
  in
  Printf.printf "disabled probe triple: %.2f ns\n" ns_probe;
  (* gate 2: the acceptance criterion — pooled Ac.sweep stays bitwise
     identical at jobs 1/2/4 *with tracing on* (per-domain buffers,
     merge at join; see lib/obs). *)
  let mna = Circuit.Mna.assemble_rc (bus_netlist ()) in
  let points = if !quick then 8 else 24 in
  let freqs = Simulate.Ac.log_freqs ~points 1e6 1e10 in
  let ns_off =
    measure_ns "sweep-obs-off" (fun () -> ignore (Simulate.Ac.sweep ~jobs:1 mna freqs))
  in
  Obs.enable ();
  let reference = Simulate.Ac.sweep ~jobs:1 mna freqs in
  let jobs_list = [ 2; 4 ] in
  let bitwise =
    List.for_all
      (fun j -> sweeps_bitwise_equal reference (Simulate.Ac.sweep ~jobs:j mna freqs))
      jobs_list
  in
  Printf.printf "tracing ON: N = %d, %d points, bitwise identical across jobs {1, 2, 4}: %b\n"
    mna.Circuit.Mna.n points bitwise;
  if not bitwise then begin
    Printf.eprintf "FAIL: tracing perturbed the pooled sweep\n";
    exit 1
  end;
  (* sanity: the instrumented phases actually recorded *)
  let recorded = List.map (fun st -> st.Obs.span_name) (Obs.span_stats ()) in
  List.iter
    (fun name ->
      if not (List.mem name recorded) then begin
        Printf.eprintf "FAIL: no '%s' spans recorded with tracing on\n" name;
        exit 1
      end)
    [ "ac.sweep"; "ac.point"; "ac.solve"; "ac.symbolic"; "skyline.numeric" ];
  if Obs.counter_value "ac.points" <= 0.0 then begin
    Printf.eprintf "FAIL: ac.points counter never incremented\n";
    exit 1
  end;
  let ns_on =
    measure_ns "sweep-obs-on" (fun () -> ignore (Simulate.Ac.sweep ~jobs:1 mna freqs))
  in
  Obs.disable ();
  Obs.reset ();
  let per_point ns = ns /. float_of_int points in
  let overhead_pct = 100.0 *. ((ns_on /. ns_off) -. 1.0) in
  Printf.printf "sequential sweep: %.1f ns/point off, %.1f ns/point on (%+.2f%% when enabled)\n"
    (per_point ns_off) (per_point ns_on) overhead_pct;
  json_out "obs"
    (Printf.sprintf
       "{\"disabled_probe_iters\":%d,\"disabled_probe_alloc_bytes\":%.0f,\
        \"disabled_probe_ns\":%.2f,\"bitwise_identical_tracing_on\":%b,\
        \"ns_per_point_off\":%.1f,\"ns_per_point_on\":%.1f,\
        \"enabled_overhead_pct\":%.2f}\n"
       iters alloc_bytes ns_probe bitwise (per_point ns_off) (per_point ns_on)
       overhead_pct)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* pencil — shared symbolic context vs per-call rebuild                *)

let pencil_bench () =
  section "Pencil: shared symbolic context vs per-call rebuild";
  let nl = bus_netlist () in
  let mna = Circuit.Mna.assemble_rc nl in
  let n = mna.Circuit.Mna.n in
  Printf.printf "\ncoupled RC bus: N = %d, p = %d\n" n
    (Array.length mna.Circuit.Mna.port_names);
  (* repeated Moments.exact: the seed path pays STR001 matching, RCM,
     envelope merge and a fresh factorisation on every call; against a
     shared context every call after the first is a cache hit *)
  let k = 4 in
  let ctx = Sympvl.Pencil.create mna in
  ignore (Sympvl.Moments.exact ~ctx mna k);
  let ns_cold = measure_ns "moments-cold" (fun () -> ignore (Sympvl.Moments.exact mna k)) in
  let ns_ctx =
    measure_ns "moments-ctx" (fun () -> ignore (Sympvl.Moments.exact ~ctx mna k))
  in
  let moments_speedup = ns_cold /. ns_ctx in
  Printf.printf "%-36s %12.1f ns/call\n" "Moments.exact (fresh context)" ns_cold;
  Printf.printf "%-36s %12.1f ns/call (%.1fx)\n" "Moments.exact (shared context)" ns_ctx
    moments_speedup;
  (* transient-style repeated factor at a fixed integrator shift γ:
     per-step pencil assembly + envelope analysis + factorisation
     (the per-step cost without a context) vs the context's memo hit *)
  let gamma = 2.0 /. 1e-11 in
  ignore (Sympvl.Pencil.factor ctx ~shift:gamma);
  let ns_step_cold =
    measure_ns "step-cold" (fun () ->
        ignore
          (Sparse.Skyline.factor_real
             (Sparse.Csr.add ~alpha:1.0 ~beta:gamma mna.Circuit.Mna.g
                mna.Circuit.Mna.c)))
  in
  let ns_step_ctx =
    measure_ns "step-ctx" (fun () -> ignore (Sympvl.Pencil.factor ctx ~shift:gamma))
  in
  let step_speedup = ns_step_cold /. ns_step_ctx in
  Printf.printf "%-36s %12.1f ns/step\n" "transient factor (assemble+factor)" ns_step_cold;
  Printf.printf "%-36s %12.1f ns/step (%.1fx)\n" "transient factor (context hit)" ns_step_ctx
    step_speedup;
  (* determinism gate: the context-backed AC sweep stays bitwise
     identical at every job count *)
  let freqs = Simulate.Ac.log_freqs ~points:(if !quick then 12 else 32) 1e6 1e10 in
  let reference = Simulate.Ac.sweep ~jobs:1 mna freqs in
  let bitwise =
    List.for_all
      (fun j -> sweeps_bitwise_equal reference (Simulate.Ac.sweep ~jobs:j mna freqs))
      [ 1; 2; 4 ]
  in
  Printf.printf "AC sweep bitwise identical across jobs {1, 2, 4}: %b\n" bitwise;
  json_out "pencil"
    (Printf.sprintf
       "{\"workload\":\"coupled_rc_bus\",\"n\":%d,\"moments_k\":%d,\
        \"moments_cold_ns\":%.1f,\"moments_ctx_ns\":%.1f,\"moments_speedup\":%.2f,\
        \"step_cold_ns\":%.1f,\"step_ctx_ns\":%.1f,\"step_speedup\":%.2f,\
        \"bitwise_identical\":%b}\n"
       n k ns_cold ns_ctx moments_speedup ns_step_cold ns_step_ctx step_speedup bitwise);
  (* hard gates: the shared context must pay for itself on repeated
     moment evaluation, and must never perturb pooled results *)
  if not bitwise then exit 1;
  if moments_speedup < 2.0 then begin
    Printf.printf "FAIL: shared-context Moments speedup %.2fx < 2.0x\n" moments_speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* certify — certification cost vs the reduction it audits             *)

let certify_bench () =
  section "Certify: full MOD001-MOD009 pass vs the reduction it audits";
  let rows = ref [] in
  let run_one name (mna : Circuit.Mna.t) ~order ~end_to_end =
    let n = mna.Circuit.Mna.n in
    (* reduce is measured cold (fresh symbolic context per call — what
       `symor reduce` pays end to end); certify shares the context with
       the reduction it audits, exactly as `symor reduce --certify` *)
    let ns_reduce =
      if end_to_end then
        measure_ns (name ^ "-reduce") (fun () ->
            ignore (Sympvl.Rom.reduce ~order `Sympvl mna))
      else begin
        let ctx = Sympvl.Pencil.create mna in
        ignore (Sympvl.Rom.reduce ~ctx ~order `Sympvl mna);
        measure_ns (name ^ "-reduce") (fun () ->
            ignore (Sympvl.Rom.reduce ~ctx ~order `Sympvl mna))
      end
    in
    let ctx = Sympvl.Pencil.create mna in
    let model = Sympvl.Rom.reduce ~ctx ~order `Sympvl mna in
    let ns_certify =
      measure_ns (name ^ "-certify") (fun () ->
          ignore (Sympvl.Certify.run ~ctx model mna))
    in
    let ratio = ns_certify /. ns_reduce in
    let findings = (Sympvl.Certify.run ~ctx model mna).Sympvl.Certify.findings in
    let clean =
      List.for_all
        (fun d -> d.Circuit.Diagnostic.severity = Circuit.Diagnostic.Info)
        findings
    in
    Printf.printf "%-16s N=%5d n=%3d  reduce %10.1f us  certify %10.1f us \
                   (%.2fx)  clean=%b\n"
      name n order (ns_reduce /. 1e3) (ns_certify /. 1e3) ratio clean;
    rows :=
      Printf.sprintf
        "{\"workload\":%S,\"n\":%d,\"order\":%d,\"reduce_ns\":%.1f,\
         \"certify_ns\":%.1f,\"certify_over_reduce\":%.3f,\"clean\":%b}"
        name n order ns_reduce ns_certify ratio clean
      :: !rows;
    (ratio, clean)
  in
  (* part 1: the shipped example netlists at full order — the CI
     configuration (symor certify --strict); every pass must be clean *)
  Printf.printf "\nshipped examples, SyMPVL at full order:\n";
  let all_clean = ref true in
  List.iter
    (fun base ->
      let nl = Circuit.Parser.parse_file ("examples/netlists/" ^ base ^ ".cir") in
      let mna = Circuit.Mna.auto nl in
      let _, clean =
        run_one base mna ~order:mna.Circuit.Mna.n ~end_to_end:false
      in
      if not clean then all_clean := false)
    [ "rc_line"; "lc_tank"; "rl_ladder"; "coupled_lines" ];
  (* part 2: certification overhead at order <= 40 on a reduction big
     enough that the Lanczos sweep dominates — certify must stay a
     small fraction of the end-to-end reduce wall time *)
  Printf.printf "\nscaled RC line, order 40:\n";
  let sections = if !quick then 800 else 1500 in
  let mna =
    Circuit.Mna.assemble_rc (Circuit.Generators.rc_line ~sections ())
  in
  let ratio, _ = run_one "rc_line_scaled" mna ~order:40 ~end_to_end:true in
  json_out "certify" ("[\n" ^ String.concat ",\n" (List.rev !rows) ^ "\n]\n");
  (* hard gates: the shipped passive examples certify clean, and the
     order-40 certification costs at most a quarter of the reduction it
     audits (quick mode is a smoke run at a smaller size where the
     reduction is too cheap to hide behind — parity is enough there) *)
  if not !all_clean then begin
    Printf.printf "FAIL: a shipped example did not certify clean\n";
    exit 1
  end;
  let cap = if !quick then 1.0 else 0.25 in
  if ratio > cap then begin
    Printf.printf "FAIL: certify/reduce ratio %.3f exceeds the %.2f cap\n" ratio cap;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* serve daemon load generator — spawns the real symor binary (the    *)
(* daemon owns worker domains, so it must live in its own process)    *)

module J = Serve.Json

let find_symor () =
  let candidates =
    (match Sys.getenv_opt "SYMOR_BIN" with Some p -> [ p ] | None -> [])
    @ [ "_build/default/bin/symor.exe"; "bin/symor.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
    Printf.eprintf
      "serve bench: symor binary not found (run `dune build bin` first, or set \
       SYMOR_BIN)\n";
    exit 1

let serve_socket_counter = ref 0

let with_serve_daemon exe extra_args f =
  incr serve_socket_counter;
  let sock =
    Printf.sprintf "/tmp/symor-bench-%d-%d.sock" (Unix.getpid ())
      !serve_socket_counter
  in
  (match Unix.unlink sock with () -> () | exception Unix.Unix_error _ -> ());
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process exe
      (Array.of_list ((exe :: [ "serve"; "--socket"; sock ]) @ extra_args))
      devnull devnull devnull
  in
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      (match Unix.kill pid Sys.sigterm with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      let _, status = Unix.waitpid [] pid in
      (match Unix.unlink sock with () -> () | exception Unix.Unix_error _ -> ());
      match status with
      | Unix.WEXITED 0 -> ()
      | _ ->
        Printf.eprintf "serve bench: daemon did not exit cleanly on SIGTERM\n";
        exit 1)
    (fun () ->
      let c = Serve.Client.connect ~deadline_s:10.0 (`Unix sock) in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c))

let serve_ac_request ?(points = 16) text =
  J.to_string
    (J.Obj
       [
         ("op", J.Str "ac");
         ("netlist", J.Str text);
         ("points", J.Num (float_of_int points));
       ])

let serve_reduce_request ?(order = 8) text =
  J.to_string
    (J.Obj
       [
         ("op", J.Str "reduce");
         ("netlist", J.Str text);
         ("order", J.Num (float_of_int order));
       ])

let serve_roundtrip c line =
  match Serve.Client.request c line with
  | Some resp -> resp
  | None ->
    Printf.eprintf "serve bench: daemon closed the connection\n";
    exit 1

let serve_stats c =
  let j = J.parse (serve_roundtrip c {|{"op":"stats"}|}) in
  let geti path =
    match J.to_int_opt (List.fold_left (fun v k -> J.member k v) j path) with
    | Some v -> v
    | None ->
      Printf.eprintf "serve bench: malformed stats response\n";
      exit 1
  in
  ( geti [ "cache"; "hits" ],
    geti [ "cache"; "misses" ],
    geti [ "batched_points" ] )

let percentile_ms sorted p =
  let n = Array.length sorted in
  let i = int_of_float (Float.round (p *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) i)) *. 1e3

let serve_bench () =
  section "Serve daemon: warm cache, hit rate, latency, payload identity";
  let exe = find_symor () in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let examples =
    List.map
      (fun name -> read_file (Filename.concat "examples/netlists" (name ^ ".cir")))
      [ "rc_line"; "lc_tank"; "rl_ladder"; "coupled_lines" ]
  in
  (* -------- gate 1: warm-cache AC >= 10x faster than cold ---------- *)
  (* a grid big enough that the cold sweep dwarfs the socket round
     trip; warm answers come straight from the entry's point table *)
  let rows, cols, points =
    if !quick then (16, 16, 64) else (24, 24, 96)
  in
  (* two ports only (pitch_pads past the boundary): the warm path then
     measures the round trip, not the rendering of a many-port matrix *)
  let grid_text =
    Circuit.Parser.to_string
      (Circuit.Generators.rc_grid ~pitch_pads:1000 ~rows ~cols ())
  in
  let grid_req = serve_ac_request ~points grid_text in
  let cold_s, warm_s =
    with_serve_daemon exe [] (fun c ->
        let t0 = Obs.now () in
        let cold_resp = serve_roundtrip c grid_req in
        let cold = Obs.now () -. t0 in
        let warm = ref Float.infinity in
        let warm_resp = ref "" in
        for _ = 1 to 5 do
          let t0 = Obs.now () in
          warm_resp := serve_roundtrip c grid_req;
          warm := Float.min !warm (Obs.now () -. t0)
        done;
        if not (String.equal cold_resp !warm_resp) then begin
          Printf.eprintf "FAIL: warm response differs from cold response\n";
          exit 1
        end;
        (cold, !warm))
  in
  let speedup = cold_s /. warm_s in
  Printf.printf "cold AC (%d pts, %dx%d grid): %.2f ms; warm: %.3f ms; speedup %.1fx\n"
    points rows cols (cold_s *. 1e3) (warm_s *. 1e3) speedup;
  if speedup < 10.0 then begin
    Printf.eprintf "FAIL: warm-cache speedup %.1fx below the 10x gate\n" speedup;
    exit 1
  end;
  (* -------- gates 2+3: load mix per job count ---------------------- *)
  let rounds = if !quick then 25 else 50 in
  let runs =
    List.map
      (fun jobs ->
        with_serve_daemon exe [ "--jobs"; string_of_int jobs ] (fun c ->
            let lats = ref [] in
            let payloads = Buffer.create 4096 in
            let t_start = Obs.now () in
            for _ = 1 to rounds do
              List.iter
                (fun text ->
                  List.iter
                    (fun req ->
                      let t0 = Obs.now () in
                      let resp = serve_roundtrip c req in
                      lats := (Obs.now () -. t0) :: !lats;
                      Buffer.add_string payloads resp;
                      Buffer.add_char payloads '\n')
                    [ serve_ac_request text; serve_reduce_request text ])
                examples
            done;
            let wall = Obs.now () -. t_start in
            let hits, misses, _ = serve_stats c in
            let lat = Array.of_list !lats in
            Array.sort Float.compare lat;
            let n_req = Array.length lat in
            let hit_rate = float_of_int hits /. float_of_int (hits + misses) in
            Printf.printf
              "jobs %d: %d requests in %.2f s (%.0f req/s), p50 %.2f ms, p99 %.2f \
               ms, cache hit rate %.3f\n"
              jobs n_req wall
              (float_of_int n_req /. wall)
              (percentile_ms lat 0.50) (percentile_ms lat 0.99) hit_rate;
            ( jobs,
              n_req,
              wall,
              percentile_ms lat 0.50,
              percentile_ms lat 0.99,
              hit_rate,
              Digest.to_hex (Digest.string (Buffer.contents payloads)) )))
      [ 1; 2; 4 ]
  in
  List.iter
    (fun (jobs, _, _, _, _, hit_rate, _) ->
      if hit_rate < 0.95 then begin
        Printf.eprintf "FAIL: jobs %d cache hit rate %.3f below the 0.95 gate\n"
          jobs hit_rate;
        exit 1
      end)
    runs;
  let digests = List.map (fun (_, _, _, _, _, _, d) -> d) runs in
  let identical = List.for_all (fun d -> String.equal d (List.hd digests)) digests in
  Printf.printf "response payloads bitwise identical across jobs {1, 2, 4}: %b\n"
    identical;
  if not identical then begin
    Printf.eprintf "FAIL: response payloads differ across job counts\n";
    exit 1
  end;
  (* -------- batching demo: one write, many same-model requests ----- *)
  let batched =
    with_serve_daemon exe [] (fun c ->
        let req = serve_ac_request (List.hd examples) in
        (* 8 lines in a single write so the daemon reads them in one
           loop tick and batches the union of their frequency points *)
        let block = String.concat "\n" (List.init 8 (fun _ -> req)) in
        Serve.Client.send_line c block;
        for _ = 1 to 8 do
          match Serve.Client.recv_line c with
          | Some _ -> ()
          | None ->
            Printf.eprintf "serve bench: daemon closed during batch read\n";
            exit 1
        done;
        let _, _, batched = serve_stats c in
        batched)
  in
  Printf.printf "pipelined batch of 8 identical 16-pt AC requests: %d points saved\n"
    batched;
  let json =
    let run_json (jobs, n_req, wall, p50, p99, hit_rate, digest) =
      J.Obj
        [
          ("jobs", J.Num (float_of_int jobs));
          ("requests", J.Num (float_of_int n_req));
          ("wall_s", J.Num wall);
          ("rps", J.Num (float_of_int n_req /. wall));
          ("p50_ms", J.Num p50);
          ("p99_ms", J.Num p99);
          ("hit_rate", J.Num hit_rate);
          ("payload_digest", J.Str digest);
        ]
    in
    J.to_string
      (J.Obj
         [
           ("cold_s", J.Num cold_s);
           ("warm_s", J.Num warm_s);
           ("warm_speedup", J.Num speedup);
           ("payload_identical", J.Bool identical);
           ("batched_points", J.Num (float_of_int batched));
           ("runs", J.List (List.map run_json runs));
         ])
  in
  json_out "serve" (json ^ "\n")

(* ------------------------------------------------------------------ *)
(* SPRIM: structure preservation at the partial-inductance scale       *)

let sprim_bench () =
  section "SPRIM: block-structure preservation and k-coupled accuracy";
  let rows = ref [] in
  (* part 1 — the MORCIC regime: a >= 10^4-element partial-inductance
     RLCk bus. The reduced nodal blocks must stay exactly symmetric
     (structure_error = 0, M/D/K bitwise symmetric) and the model must
     certify with every finding at info level (MOD002 may only report
     the expected no-certificate note; MOD003 must find no passivity
     violation). *)
  let conductors, segments = if !quick then (16, 54) else (40, 125) in
  let nl = Circuit.Generators.peec_partial ~conductors ~segments () in
  let elements = List.length (Circuit.Netlist.elements nl) in
  let mna = Circuit.Mna.assemble nl in
  let order = 40 in
  let ctx = Sympvl.Pencil.create mna in
  let t0 = Obs.now () in
  let sp = Sympvl.Sprim.reduce ~ctx ~order mna in
  let reduce_s = Obs.now () -. t0 in
  let serr = Sympvl.Sprim.structure_error sp in
  let sym m = Linalg.Mat.dist_max m (Linalg.Mat.transpose m) = 0.0 in
  let blocks_sym =
    sym sp.Sympvl.Sprim.cn && sym sp.Sympvl.Sprim.gn && sym sp.Sympvl.Sprim.lmat
  in
  let rep = Sympvl.Certify.run ~ctx (Sympvl.Rom.Sprim_model sp) mna in
  let clean =
    List.for_all
      (fun d -> d.Circuit.Diagnostic.severity = Circuit.Diagnostic.Info)
      rep.Sympvl.Certify.findings
  in
  (* the hard gate is the passivity story: MOD002 (structural
     certificate status) and MOD003 (Hamiltonian test) must sit at
     info level. The full-report flag is recorded in the JSON — at
     this scale the explicit MOD005 moment comparison is numerically
     fragile for every Krylov engine and is not gated. *)
  let mod23_clean =
    List.for_all
      (fun d ->
        (d.Circuit.Diagnostic.code <> "MOD002"
        && d.Circuit.Diagnostic.code <> "MOD003")
        || d.Circuit.Diagnostic.severity = Circuit.Diagnostic.Info)
      rep.Sympvl.Certify.findings
  in
  Printf.printf
    "peec_partial %dx%d: %d elements, N=%d -> n=%d (n1=%d, n2=%d) in %.2f s\n"
    conductors segments elements mna.Circuit.Mna.n sp.Sympvl.Sprim.order
    sp.Sympvl.Sprim.n1 sp.Sympvl.Sprim.n2 reduce_s;
  Printf.printf
    "structure error %.1e; M/D/K symmetric %b; MOD002/MOD003 clean %b (full \
     report clean %b)\n"
    serr blocks_sym mod23_clean clean;
  List.iter
    (fun d ->
      if d.Circuit.Diagnostic.severity <> Circuit.Diagnostic.Info then
        Format.printf "  %a@." Circuit.Diagnostic.pp d)
    rep.Sympvl.Certify.findings;
  rows :=
    Printf.sprintf
      "{\"workload\":\"peec_partial\",\"conductors\":%d,\"segments\":%d,\
       \"elements\":%d,\"n\":%d,\"order\":%d,\"n1\":%d,\"n2\":%d,\
       \"reduce_s\":%.3f,\"structure_error\":%.3e,\"blocks_symmetric\":%b,\
       \"passivity_clean\":%b,\"certify_clean\":%b}"
      conductors segments elements mna.Circuit.Mna.n sp.Sympvl.Sprim.order
      sp.Sympvl.Sprim.n1 sp.Sympvl.Sprim.n2 reduce_s serr blocks_sym mod23_clean
      clean
    :: !rows;
  (* part 2 — the shipped k-coupled example at equal order: SPRIM must
     be at least as accurate as SyMPVL up to the documented golden
     rtol, and the RLCk round-trip must reproduce the reduced model *)
  let mx =
    Circuit.Mna.auto (Circuit.Parser.parse_file "examples/netlists/peec_coupled.cir")
  in
  let order2 = 6 in
  let freqs = Simulate.Ac.log_freqs ~points:16 1e6 1e10 in
  let sw = Simulate.Ac.sweep mx freqs in
  let err_of eng =
    let opts = Sympvl.Rom.default ~order:order2 in
    let model = Sympvl.Rom.reduce ~opts ~order:order2 eng mx in
    Simulate.Ac.max_rel_error sw
      (Simulate.Ac.model_sweep (Sympvl.Rom.eval model) freqs)
  in
  let e_sprim = err_of `Sprim and e_sympvl = err_of `Sympvl in
  let spx = Sympvl.Sprim.reduce ~order:order2 mx in
  let nl_rt, _ = Synth.Rlck.synthesize ~port_names:mx.Circuit.Mna.port_names spx in
  let m_rt = Circuit.Mna.assemble nl_rt in
  let rt_err =
    Simulate.Ac.max_rel_error
      (Simulate.Ac.sweep m_rt freqs)
      (Simulate.Ac.model_sweep (Sympvl.Sprim.eval spx) freqs)
  in
  let rtol = Sympvl.Rom.golden_rtol `Sprim in
  Printf.printf
    "peec_coupled at order %d: sprim %.3e vs sympvl %.3e; RLCk round-trip %.3e\n"
    order2 e_sprim e_sympvl rt_err;
  rows :=
    Printf.sprintf
      "{\"workload\":\"peec_coupled\",\"order\":%d,\"err_sprim\":%.3e,\
       \"err_sympvl\":%.3e,\"roundtrip_err\":%.3e,\"gate_rtol\":%.1e}"
      order2 e_sprim e_sympvl rt_err rtol
    :: !rows;
  json_out "sprim" ("[\n" ^ String.concat ",\n" (List.rev !rows) ^ "\n]\n");
  (* hard gates *)
  if elements < 10_000 then begin
    Printf.printf "FAIL: generator instance too small (%d elements)\n" elements;
    exit 1
  end;
  if serr <> 0.0 || not blocks_sym then begin
    Printf.printf "FAIL: reduced blocks lost symmetry (structure error %.3e)\n" serr;
    exit 1
  end;
  if not mod23_clean then begin
    Printf.printf
      "FAIL: SPRIM passivity certification (MOD002/MOD003) failed at the \
       MORCIC scale\n";
    exit 1
  end;
  if e_sprim > Float.max e_sympvl rtol then begin
    Printf.printf "FAIL: sprim %.3e worse than sympvl %.3e beyond rtol %.1e\n"
      e_sprim e_sympvl rtol;
    exit 1
  end;
  if rt_err > rtol then begin
    Printf.printf "FAIL: RLCk round-trip deviates %.3e > %.1e\n" rt_err rtol;
    exit 1
  end

let all_experiments =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("tabB", tab_b);
    ("tabC", tab_c);
    ("tabD", tab_d);
    ("tabE", tab_e);
    ("tabF", tab_f);
    ("tabG", tab_g);
    ("tabH", tab_h);
    ("ac", ac_bench);
    ("pencil", pencil_bench);
    ("certify", certify_bench);
    ("ordering", ordering_study);
    ("factor", factor_bench);
    ("kernels", kernels);
    ("obs", obs_gate);
    ("serve", serve_bench);
    ("sprim", sprim_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* flag parsing: --quick, --csv, --jobs N / --jobs=N (the pooled AC
     engine job count; every fig/tab section's exact sweeps use it) *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--csv" :: rest ->
      csv_dir := Some "bench/out";
      parse acc rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j -> Parallel.set_jobs j
      | None -> Printf.eprintf "bad --jobs value %s\n" n);
      parse acc rest
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
      (match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
      | Some j -> Parallel.set_jobs j
      | None -> Printf.eprintf "bad --jobs value %s\n" a);
      parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let selected =
    match args with
    | [] -> all_experiments
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt n all_experiments with
          | Some fn -> Some (n, fn)
          | None ->
            Printf.eprintf "unknown experiment %s (have: %s)\n" n
              (String.concat ", " (List.map fst all_experiments));
            None)
        names
  in
  let t0 = Obs.now () in
  List.iter (fun (_, fn) -> fn ()) selected;
  Printf.printf "\ntotal bench wall time: %.1fs\n" (Obs.now () -. t0)
