(** Balanced truncation for the symmetric definite (RC-class) pencil —
    a modern gold-standard baseline for the benches.

    For [G, C ≻ 0] the impedance system [Gx + Cẋ = Bi], [v = Bᵀx] is
    internally symmetric: after the congruence [x̃ = Lᶜᵀx] (Cholesky
    [C = LᶜLᶜᵀ]) it reads [ẋ̃ = −Ax̃ + B̃i], [v = B̃ᵀx̃] with [A ≻ 0]
    symmetric, so the controllability and observability Gramians
    coincide and balancing reduces to one symmetric Lyapunov solve
    plus one eigendecomposition. Truncating to the dominant Hankel
    singular values gives a provably stable, passive model with the
    classic a-priori H∞ bound [‖Z − Ẑ‖∞ ≤ 2·Σ(dropped σ)].

    Dense [O(N³)] — a quality yardstick for moderate N, not a
    replacement for the Krylov methods on large circuits. *)

type t = {
  ahat : Linalg.Mat.t;  (** Reduced symmetric [Â ≻ 0]. *)
  bhat : Linalg.Mat.t;
  order : int;
  p : int;
  hsv : Linalg.Vec.t;  (** All [N] Hankel singular values, descending. *)
  error_bound : float;  (** [2·Σ] of the truncated tail. *)
}

exception Not_definite
(** The pencil is not symmetric positive definite (only the paper's
    RC/RL special cases with a nonsingular [G] qualify). *)

val reduce : order:int -> Circuit.Mna.t -> t

val eval : t -> Complex.t -> Linalg.Cmat.t
(** [B̂ᵀ(Â + s·I)⁻¹B̂]. *)

val poles : t -> float array
(** All at [−λ(Â) < 0]. *)
