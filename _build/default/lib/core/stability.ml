let max_pole_re model =
  Array.fold_left
    (fun acc p -> Float.max acc p.Complex.re)
    neg_infinity (Model.poles model)

let pole_scale model =
  Array.fold_left
    (fun acc p -> Float.max acc (Linalg.Cx.abs p))
    1.0 (Model.poles model)

let is_stable ?(tol = 1e-9) model = max_pole_re model <= tol *. pole_scale model

type passivity_certificate = Certified | Indefinite_t of float | Not_applicable

let passivity_certificate ?(tol = 1e-9) model =
  if (not model.Model.definite) || model.Model.shift <> 0.0 then Not_applicable
  else begin
    let tmin = Linalg.Eig_sym.min_eigenvalue model.Model.t_mat in
    let scale =
      Float.max (Linalg.Mat.max_abs model.Model.t_mat) 1e-300
    in
    if tmin >= -.tol *. scale then Certified else Indefinite_t tmin
  end

let passivity_sample ?(tol = 1e-9) ~omegas model =
  let worst = ref None in
  Array.iter
    (fun w ->
      let z = Model.eval_jw model w in
      let me = Linalg.Cmat.min_eig_hermitian (Linalg.Cmat.hermitian_part z) in
      let scale = Float.max (Linalg.Cmat.max_abs z) 1e-300 in
      if me < -.tol *. scale then
        match !worst with
        | Some (_, m) when m <= me -> ()
        | _ -> worst := Some (w, me))
    omegas;
  !worst

let unstable_poles model =
  let scale = pole_scale model in
  Array.of_list
    (List.filter
       (fun p -> p.Complex.re > 1e-9 *. scale)
       (Array.to_list (Model.poles model)))
