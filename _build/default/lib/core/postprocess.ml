type term = {
  lambda : Complex.t;
  pole : Complex.t;
  residue_l : Complex.t array;
  residue_r : Complex.t array;
}

type t = {
  terms : term list;
  direct : Linalg.Cmat.t;
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
}

exception Defective

let physical_pole variable shift lambda =
  (* σ-pole −1/λ mapped to the physical plane *)
  let sigma = Linalg.Cx.(neg (inv lambda)) in
  let shifted = Linalg.Cx.(sigma +: re shift) in
  match variable with
  | Circuit.Mna.S -> shifted
  | Circuit.Mna.S_squared -> Linalg.Cx.sqrt shifted

(* definite case: T = QΛQᵀ, Δ = I, everything real *)
let of_definite (m : Model.t) =
  let { Linalg.Eig_sym.values; vectors } = Linalg.Eig_sym.decompose m.Model.t_mat in
  let p = m.Model.p in
  let lam_scale =
    Array.fold_left (fun acc l -> Float.max acc (Float.abs l)) 1e-300 values
  in
  let direct = Linalg.Cmat.create p p in
  let terms = ref [] in
  for k = 0 to m.Model.order - 1 do
    let w =
      (* w = ρᵀ q_k, with Δ = I *)
      Linalg.Mat.mul_trans_vec m.Model.rho (Linalg.Mat.col vectors k)
    in
    let wc = Array.map Linalg.Cx.re w in
    if Float.abs values.(k) <= 1e-13 *. lam_scale then
      (* λ ≈ 0: constant contribution w wᵀ *)
      for i = 0 to p - 1 do
        for jj = 0 to p - 1 do
          Linalg.Cmat.add_to direct i jj (Linalg.Cx.re (w.(i) *. w.(jj)))
        done
      done
    else begin
      let lambda = Linalg.Cx.re values.(k) in
      terms :=
        {
          lambda;
          pole = physical_pole m.Model.variable m.Model.shift lambda;
          residue_l = wc;
          residue_r = wc;
        }
        :: !terms
    end
  done;
  (List.rev !terms, direct)

(* indefinite case: complex eigenvalues of T via QR, eigenvectors via
   one step of inverse iteration, Δ-bilinear normalisation *)
let of_indefinite (m : Model.t) =
  let n = m.Model.order in
  let p = m.Model.p in
  let eigs = Linalg.Eig_gen.eigenvalues m.Model.t_mat in
  let t_c = Linalg.Cmat.of_real m.Model.t_mat in
  let delta_c = Linalg.Cmat.of_real m.Model.delta in
  let t_norm = Float.max (Linalg.Mat.max_abs m.Model.t_mat) 1e-300 in
  let lam_scale =
    Array.fold_left (fun acc l -> Float.max acc (Linalg.Cx.abs l)) 1e-300 eigs
  in
  let rng = Linalg.Rng.create 20240531 in
  let eigvec mu =
    (* inverse iteration on (T − (μ+ε)I) *)
    let eps = Linalg.Cx.re (1e-10 *. t_norm) in
    let shifted =
      Linalg.Cmat.init n n (fun i jj ->
          let base = Linalg.Cmat.get t_c i jj in
          if i = jj then Linalg.Cx.(base -: mu -: eps) else base)
    in
    let lu =
      match Linalg.Cmat.lu_factor shifted with
      | lu -> lu
      | exception Linalg.Cmat.Singular _ -> raise Defective
    in
    let x =
      ref
        (Array.init n (fun _ ->
             Linalg.Cx.make (Linalg.Rng.gaussian rng) (Linalg.Rng.gaussian rng)))
    in
    for _it = 1 to 3 do
      let y = Linalg.Cmat.lu_solve_vec lu !x in
      let nrm =
        sqrt (Array.fold_left (fun acc z -> acc +. (Linalg.Cx.abs z ** 2.0)) 0.0 y)
      in
      if nrm = 0.0 || not (Float.is_finite nrm) then raise Defective;
      x := Array.map (fun z -> Linalg.Cx.smul (1.0 /. nrm) z) y
    done;
    (* residual check *)
    let tx = Linalg.Cmat.mul_vec t_c !x in
    let worst = ref 0.0 in
    Array.iteri
      (fun i txi ->
        let r = Linalg.Cx.(txi -: (mu *: !x.(i))) in
        worst := Float.max !worst (Linalg.Cx.abs r))
      tx;
    if !worst > 1e-6 *. t_norm then raise Defective;
    !x
  in
  let rho_c = Linalg.Cmat.of_real m.Model.rho in
  let direct = Linalg.Cmat.create p p in
  let terms = ref [] in
  Array.iter
    (fun mu ->
      let x = eigvec mu in
      let dx = Linalg.Cmat.mul_vec delta_c x in
      (* d = xᵀ Δ x (bilinear, not Hermitian) *)
      let d = ref Linalg.Cx.zero in
      Array.iteri (fun i xi -> d := Linalg.Cx.(!d +: (xi *: dx.(i)))) x;
      if Linalg.Cx.abs !d < 1e-8 then raise Defective;
      (* l = ρᵀ Δ x ∈ ℂᵖ *)
      let l =
        Array.init p (fun c ->
            let s = ref Linalg.Cx.zero in
            for i = 0 to n - 1 do
              s := Linalg.Cx.(!s +: (Linalg.Cmat.get rho_c i c *: dx.(i)))
            done;
            !s)
      in
      let r = Array.map (fun li -> Linalg.Cx.(li /: !d)) l in
      if Linalg.Cx.abs mu <= 1e-13 *. lam_scale then
        for i = 0 to p - 1 do
          for jj = 0 to p - 1 do
            Linalg.Cmat.add_to direct i jj Linalg.Cx.(l.(i) *: r.(jj))
          done
        done
      else
        terms :=
          {
            lambda = mu;
            pole = physical_pole m.Model.variable m.Model.shift mu;
            residue_l = l;
            residue_r = r;
          }
          :: !terms)
    eigs;
  (List.rev !terms, direct)

let of_model (m : Model.t) =
  let terms, direct = if m.Model.definite then of_definite m else of_indefinite m in
  {
    terms;
    direct;
    p = m.Model.p;
    shift = m.Model.shift;
    variable = m.Model.variable;
    gain = m.Model.gain;
  }

let eval t s =
  let var =
    match t.variable with
    | Circuit.Mna.S -> s
    | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let sigma = Linalg.Cx.(var -: re t.shift) in
  let z = Linalg.Cmat.copy t.direct in
  List.iter
    (fun term ->
      let denom = Linalg.Cx.(one +: (sigma *: term.lambda)) in
      let w = Linalg.Cx.inv denom in
      for i = 0 to t.p - 1 do
        for jj = 0 to t.p - 1 do
          Linalg.Cmat.add_to z i jj
            Linalg.Cx.(w *: term.residue_l.(i) *: term.residue_r.(jj))
        done
      done)
    t.terms;
  match t.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

let pole_scale t =
  List.fold_left
    (fun acc term -> Float.max acc (Linalg.Cx.abs term.pole))
    1.0 t.terms

let is_stable_term scale term = term.pole.Complex.re <= 1e-9 *. scale

let is_stable t =
  let scale = pole_scale t in
  List.for_all (is_stable_term scale) t.terms

let require_real_time_domain t =
  if t.variable <> Circuit.Mna.S || t.shift <> 0.0 || t.gain <> Circuit.Mna.Unit then
    invalid_arg "Postprocess: time-domain form needs an s-variable model at shift 0";
  List.iter
    (fun term ->
      if Float.abs term.lambda.Complex.im > 1e-9 *. Linalg.Cx.abs term.lambda then
        invalid_arg "Postprocess: complex poles — no real closed form")
    t.terms

let time_response ~weight t time =
  require_real_time_domain t;
  let out =
    Linalg.Mat.init t.p t.p (fun i j -> (Linalg.Cmat.get t.direct i j).Complex.re)
  in
  List.iter
    (fun term ->
      let lam = term.lambda.Complex.re in
      let w = weight lam time in
      for i = 0 to t.p - 1 do
        for j = 0 to t.p - 1 do
          let r = Linalg.Cx.(term.residue_l.(i) *: term.residue_r.(j)) in
          Linalg.Mat.add_to out i j (w *. r.Complex.re)
        done
      done)
    t.terms;
  out

let step_response t time =
  time_response t time ~weight:(fun lam tt ->
      if lam <= 0.0 then 1.0 else 1.0 -. exp (-.tt /. lam))

let impulse_response t time =
  let r =
    time_response t time ~weight:(fun lam tt ->
        if lam <= 0.0 then 0.0 else exp (-.tt /. lam) /. lam)
  in
  (* the direct term belongs to the step form only *)
  Linalg.Mat.init t.p t.p (fun i j ->
      Linalg.Mat.get r i j -. (Linalg.Cmat.get t.direct i j).Complex.re)

let stabilized t =
  let scale = pole_scale t in
  let keep, drop = List.partition (is_stable_term scale) t.terms in
  ({ t with terms = keep }, List.length drop)
