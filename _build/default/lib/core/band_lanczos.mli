(** Symmetric band-Lanczos process with deflation and cluster
    look-ahead — Algorithm 1 of the paper.

    Given the J-symmetric operator [F = J⁻¹M⁻¹CM⁻ᵀ] and the starting
    block [R = J⁻¹M⁻¹B] (p columns), the process builds Lanczos
    vectors [v₁ … vₙ] spanning the block Krylov space of [(F, R)],
    J-orthogonal cluster-wise:

      [VₙᵀJVₙ = Δₙ]  (block diagonal),
      [F Vₙ = Vₙ Tₙ + (candidate residuals)],
      [R = V·ρ]  (ρ from the initial orthogonalisation).

    Candidates whose norm collapses under [dtol] are {e deflated}
    (they are numerically dependent on the span); when [J] is
    indefinite a cluster stays open ({e look-ahead}) until its Gram
    block [Δ^(γ)] is safely nonsingular. In the definite case
    ([J = I]) every cluster is a singleton, [Δₙ = I], and [Tₙ] is
    symmetric banded. *)

type result = {
  vectors : Linalg.Mat.t;  (** [N × n]: the Lanczos vectors. *)
  t_mat : Linalg.Mat.t;  (** [n × n] projected operator [Tₙ]. *)
  delta : Linalg.Mat.t;  (** [n × n] block-diagonal [Δₙ]. *)
  rho : Linalg.Mat.t;  (** [n × p]: [ρₙ] already zero-padded. *)
  p1 : int;  (** Accepted starting vectors ([≤ p]). *)
  order : int;  (** Achieved order [n]. *)
  deflations : int list;  (** Iterations at which a deflation occurred. *)
  n_clusters : int;
  look_ahead_steps : int;  (** Iterations spent inside open clusters. *)
  exhausted : bool;
      (** The block size collapsed to zero: the Krylov space is
          exhausted and [Zₙ = Z] exactly. *)
}

val run :
  ?dtol:float ->
  ?ctol:float ->
  ?full_ortho:bool ->
  n_max:int ->
  op:(Linalg.Vec.t -> Linalg.Vec.t) ->
  j:float array ->
  start:Linalg.Mat.t ->
  unit ->
  result
(** [run ~n_max ~op ~j ~start ()] performs at most [n_max] iterations.

    - [dtol] (default [1e-8]): relative deflation tolerance — a
      candidate is deflated when orthogonalisation shrinks it below
      [dtol] times its original norm.
    - [ctol] (default [1e-10]): cluster-closing threshold on the
      reciprocal condition of [Δ^(γ)].
    - [full_ortho] (default [true]): J-orthogonalise new candidates
      against {e all} closed clusters (numerically robust full
      reorthogonalisation). With [false], only the paper's sliding
      window [γ_v … γ−1] plus inexact-deflation clusters is used —
      the cost model of Algorithm 1. *)
