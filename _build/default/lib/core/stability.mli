(** Stability and passivity analysis of reduced-order models
    (paper Section 5). *)

val max_pole_re : Model.t -> float
(** Largest real part over the model's physical poles ([−∞] when the
    model has no finite poles). *)

val is_stable : ?tol:float -> Model.t -> bool
(** All physical poles satisfy [Re ≤ tol] (default [1e-9] relative to
    the pole magnitude scale). *)

type passivity_certificate =
  | Certified
      (** [J = I] and [Tₙ ⪰ 0]: the model is provably passive
          (Section 5.2) — holds for RC/RL/LC circuits expanded about
          [s₀ = 0]. *)
  | Indefinite_t of float
      (** [J = I] but [Tₙ] has the given negative eigenvalue. *)
  | Not_applicable
      (** Indefinite [J] (general RLC) or a nonzero expansion shift:
          no structural certificate; use {!passivity_sample}. *)

val passivity_certificate : ?tol:float -> Model.t -> passivity_certificate

val passivity_sample :
  ?tol:float -> omegas:float array -> Model.t -> (float * float) option
(** Sample [min eig ((Zₙ(jω) + Zₙ(jω)ᴴ)/2)] over the grid; returns
    [Some (ω, λmin)] for the worst violation below [−tol], [None] if
    the sweep finds no violation. *)

val unstable_poles : Model.t -> Complex.t array
