type t = {
  t_mat : Linalg.Mat.t;
  delta : Linalg.Mat.t;
  rho : Linalg.Mat.t;
  order : int;
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
  definite : bool;
  deflations : int;
  look_ahead_steps : int;
  exhausted : bool;
}

let eval_sigma m sigma =
  let n = m.order in
  let k =
    Linalg.Cmat.lincomb Linalg.Cx.one (Linalg.Mat.identity n) sigma m.t_mat
  in
  (* (I + σT)⁻¹ ρ, then ρᵀ Δ · that *)
  let rho_c = Linalg.Cmat.of_real m.rho in
  let x = Linalg.Cmat.solve k rho_c in
  let rho_delta = Linalg.Mat.mul (Linalg.Mat.transpose m.rho) m.delta in
  Linalg.Cmat.mul (Linalg.Cmat.of_real rho_delta) x

let eval m s =
  let var =
    match m.variable with Circuit.Mna.S -> s | Circuit.Mna.S_squared -> Linalg.Cx.(s *: s)
  in
  let sigma = Linalg.Cx.(var -: re m.shift) in
  let z = eval_sigma m sigma in
  match m.gain with
  | Circuit.Mna.Unit -> z
  | Circuit.Mna.Times_s -> Linalg.Cmat.scale s z

let eval_jw m w = eval m (Linalg.Cx.im w)

let poles_sigma m =
  let eigs =
    if m.definite then
      Array.map (fun x -> Linalg.Cx.re x) (Linalg.Eig_sym.values m.t_mat)
    else Linalg.Eig_gen.eigenvalues m.t_mat
  in
  (* eigenvalues at roundoff level relative to ‖T‖ are poles pushed to
     infinity: drop them rather than reporting ±1/ε garbage *)
  let lam_max = Array.fold_left (fun acc l -> Float.max acc (Linalg.Cx.abs l)) 0.0 eigs in
  let cutoff = 1e-12 *. Float.max lam_max 1e-300 in
  eigs
  |> Array.to_list
  |> List.filter_map (fun lam ->
         if Linalg.Cx.abs lam <= cutoff then None
         else Some (Linalg.Cx.(neg (inv lam))))
  |> Array.of_list

let poles m =
  let sig_poles = poles_sigma m in
  let shifted = Array.map (fun p -> Linalg.Cx.(p +: re m.shift)) sig_poles in
  match m.variable with
  | Circuit.Mna.S -> shifted
  | Circuit.Mna.S_squared ->
    (* each σ-pole is an s² location: s = ±√σ *)
    Array.concat
      (Array.to_list
         (Array.map
            (fun p ->
              let r = Linalg.Cx.sqrt p in
              [| r; Linalg.Cx.neg r |])
            shifted))

let state_space m =
  (* I + σT with σ = var − s₀ gives the physical-variable pencil
     ĝ + var·ĉ with ĝ = Δ⁻¹ − s₀·TΔ⁻¹ and ĉ = TΔ⁻¹ (both symmetric) *)
  let delta_inv = Linalg.Lu.inverse m.delta in
  let chat = Linalg.Mat.mul m.t_mat delta_inv in
  let ghat =
    if m.shift = 0.0 then delta_inv
    else Linalg.Mat.sub delta_inv (Linalg.Mat.scale m.shift chat)
  in
  (ghat, chat, m.rho)

let moments m k =
  let rho_delta = Linalg.Mat.mul (Linalg.Mat.transpose m.rho) m.delta in
  let acc = ref (Linalg.Mat.copy m.rho) in
  Array.init k (fun i ->
      if i > 0 then acc := Linalg.Mat.mul m.t_mat !acc;
      let mk = Linalg.Mat.mul rho_delta !acc in
      if i mod 2 = 0 then mk else Linalg.Mat.scale (-1.0) mk)

let truncate m order =
  assert (order >= 1 && order <= m.order);
  {
    m with
    t_mat = Linalg.Mat.submatrix m.t_mat 0 0 order order;
    delta = Linalg.Mat.submatrix m.delta 0 0 order order;
    rho = Linalg.Mat.submatrix m.rho 0 0 order m.p;
    order;
  }

let dc_gain m =
  let z = eval_sigma m Linalg.Cx.zero in
  Linalg.Mat.init m.p m.p (fun i j -> (Linalg.Cmat.get z i j).Complex.re)
