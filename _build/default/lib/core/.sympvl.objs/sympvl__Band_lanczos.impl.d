lib/core/band_lanczos.ml: Array Float Linalg List Logs
