lib/core/btruncation.mli: Circuit Complex Linalg
