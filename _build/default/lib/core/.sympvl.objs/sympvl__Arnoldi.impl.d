lib/core/arnoldi.ml: Circuit Factor Float Linalg List Sparse
