lib/core/reduce.mli: Circuit Model
