lib/core/mpvl.ml: Array Circuit Factor Float Linalg List Reduce Sparse
