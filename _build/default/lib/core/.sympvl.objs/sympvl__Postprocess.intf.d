lib/core/postprocess.mli: Circuit Complex Linalg Model
