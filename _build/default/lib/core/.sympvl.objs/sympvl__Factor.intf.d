lib/core/factor.mli: Linalg Sparse
