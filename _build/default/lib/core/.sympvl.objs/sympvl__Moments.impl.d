lib/core/moments.ml: Array Circuit Factor Float Linalg Model Sparse
