lib/core/mpvl.mli: Circuit Complex Linalg
