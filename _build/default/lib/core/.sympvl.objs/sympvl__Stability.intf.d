lib/core/stability.mli: Complex Model
