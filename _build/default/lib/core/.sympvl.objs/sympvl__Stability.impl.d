lib/core/stability.ml: Array Complex Float Linalg List Model
