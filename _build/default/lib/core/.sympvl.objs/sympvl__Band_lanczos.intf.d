lib/core/band_lanczos.mli: Linalg
