lib/core/arnoldi.mli: Circuit Complex Linalg
