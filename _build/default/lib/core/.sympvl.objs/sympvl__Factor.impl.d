lib/core/factor.ml: Array Float Linalg Logs Sparse
