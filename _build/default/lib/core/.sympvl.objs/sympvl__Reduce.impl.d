lib/core/reduce.ml: Array Band_lanczos Circuit Factor Float Linalg List Logs Model Sparse
