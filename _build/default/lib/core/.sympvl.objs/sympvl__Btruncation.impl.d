lib/core/btruncation.ml: Array Circuit Float Linalg List Sparse
