lib/core/postprocess.ml: Array Circuit Complex Float Linalg List Model
