lib/core/model.mli: Circuit Complex Linalg
