lib/core/awe.mli: Circuit Complex
