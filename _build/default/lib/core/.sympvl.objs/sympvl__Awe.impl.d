lib/core/awe.ml: Array Circuit Complex Float Linalg Moments
