lib/core/model.ml: Array Circuit Complex Float Linalg List
