lib/core/moments.mli: Circuit Linalg Model
