(** Pole/residue form and stabilising post-processing.

    The paper notes (Section 5) that for general RLC circuits the
    Padé-based model is not guaranteed stable/passive but "can be made
    stable and passive by a suitable post-processing"; this module
    implements the standard such step: diagonalise the reduced pencil
    into a pole/residue expansion

      [Zₙ(σ) = Σ_k R_k / (1 + σλ_k)]   (rank-one [p×p] residues)

    and discard (or reflect) the terms whose physical pole lies in the
    right half-plane. Discarding a nearly-converged spurious pole
    perturbs the response by [O(|R|)] of that term, which is small
    exactly when the model was "almost stable" in the paper's sense. *)

type term = {
  lambda : Complex.t;  (** Eigenvalue of [Tₙ]. *)
  pole : Complex.t;  (** Physical pole location. *)
  residue_l : Complex.t array;  (** Left residue vector (length p). *)
  residue_r : Complex.t array;  (** Right residue vector: [R = l·rᵀ]. *)
}

type t = {
  terms : term list;
  direct : Linalg.Cmat.t;  (** Constant term (from dropped zero eigenvalues). *)
  p : int;
  shift : float;
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
}

exception Defective
(** [Tₙ] could not be numerically diagonalised (a genuinely defective
    or pathologically clustered spectrum). *)

val of_model : Model.t -> t
(** Diagonalise: symmetric eigensolver in the definite case; complex
    eigenvalues + inverse iteration in the indefinite case. *)

val eval : t -> Complex.t -> Linalg.Cmat.t
(** Evaluate at physical [s]. *)

val stabilized : t -> t * int
(** Drop right-half-plane pole terms; returns the new expansion and
    the number of removed terms. *)

val is_stable : t -> bool

val step_response : t -> float -> Linalg.Mat.t
(** [step_response pr t] — the analytic time-domain response
    [v(t) = direct + Σ_k R_k·(1 − e^{−t/λ_k})] of the port voltages to
    unit current steps (one column per driven port). Only for real
    stable expansions of [s]-variable models with zero shift; raises
    [Invalid_argument] otherwise. This closed form is what eq. (23)
    integrates numerically. *)

val impulse_response : t -> float -> Linalg.Mat.t
(** [d/dt] of {!step_response} minus the (distributional) direct term:
    [Σ_k (R_k/λ_k)·e^{−t/λ_k}]. *)
