(** Reduced-order models produced by SyMPVL.

    A model holds the projected matrices of eq. (19),

      [Zₙ(σ) = ρₙᵀ Δₙ (Iₙ + σTₙ)⁻¹ ρₙ],

    together with the bookkeeping needed to map the pencil variable
    [σ] back to physical frequency: the expansion shift [s₀]
    ([σ = var − s₀], eq. (26)), the pencil variable ([s] or [s²],
    Section 2.2) and the RL/LC gain factor [s]. *)

type t = {
  t_mat : Linalg.Mat.t;  (** [n × n]: [Tₙ]. *)
  delta : Linalg.Mat.t;  (** [n × n] block diagonal: [Δₙ] (identity in the definite case). *)
  rho : Linalg.Mat.t;  (** [n × p]: [ρₙ] zero-padded. *)
  order : int;
  p : int;
  shift : float;  (** Expansion point [s₀] in the pencil variable. *)
  variable : Circuit.Mna.variable;
  gain : Circuit.Mna.gain;
  definite : bool;  (** Built with [J = I] (stable/passive guarantee). *)
  deflations : int;
  look_ahead_steps : int;
  exhausted : bool;
}

val eval_sigma : t -> Complex.t -> Linalg.Cmat.t
(** [eval_sigma m σ] evaluates the raw pencil form
    [ρᵀΔ(I + σT)⁻¹ρ] ([p × p]). *)

val eval : t -> Complex.t -> Linalg.Cmat.t
(** [eval m s] evaluates at physical complex frequency [s], applying
    variable substitution ([σ = s − s₀] or [σ = s² − s₀]) and the
    RL/LC gain factor. *)

val eval_jw : t -> float -> Linalg.Cmat.t
(** [eval_jw m ω] is [eval m (jω)] with [ω] in rad/s. *)

val poles_sigma : t -> Complex.t array
(** Poles in the pencil variable: [σ = −1/λ] over nonzero eigenvalues
    [λ] of [Tₙ] (general eigensolver; exact arithmetic gives real
    values in the definite case). *)

val poles : t -> Complex.t array
(** Poles mapped to the physical [s] plane. For the LC ([s²]) variable
    each pencil pole [σ] yields the pair [±√(σ + s₀)]; for RC/RL/RLC
    it is [σ + s₀]. *)

val state_space : t -> Linalg.Mat.t * Linalg.Mat.t * Linalg.Mat.t
(** [(ĝ, ĉ, ρ)] with [ĝ = Δ⁻¹ − s₀·TΔ⁻¹], [ĉ = TΔ⁻¹] (both
    symmetric) — the reduced MNA pencil of eq. (23) in the physical
    pencil variable, ready to be stamped into a simulator Jacobian
    ([ĝ·x + ĉ·ẋ = ρ·i], [v = ρᵀx]). For models built from the LC form
    the pencil variable is [s²], so time-domain stamping applies to
    the [S] variable only. *)

val moments : t -> int -> Linalg.Mat.t array
(** First [k] moments of the reduced model about the expansion point:
    [(−1)ᵏ ρᵀ Δ Tᵏ ρ]. *)

val truncate : t -> int -> t
(** Restrict to a smaller order (leading submatrices). Only sound at
    cluster boundaries; with [J = I] every order is a boundary. *)

val dc_gain : t -> Linalg.Mat.t
(** [eval] at [σ = 0], i.e. the matched zeroth moment. *)
