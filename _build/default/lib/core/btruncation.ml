type t = {
  ahat : Linalg.Mat.t;
  bhat : Linalg.Mat.t;
  order : int;
  p : int;
  hsv : Linalg.Vec.t;
  error_bound : float;
}

exception Not_definite

let reduce ~order (m : Circuit.Mna.t) =
  if m.Circuit.Mna.variable <> Circuit.Mna.S || m.Circuit.Mna.gain <> Circuit.Mna.Unit
  then raise Not_definite;
  let n = m.Circuit.Mna.n in
  let gd = Sparse.Csr.to_dense m.Circuit.Mna.g in
  let cd = Sparse.Csr.to_dense m.Circuit.Mna.c in
  let lc =
    match Linalg.Chol.factor cd with
    | f -> f
    | exception Linalg.Chol.Not_positive_definite _ -> raise Not_definite
  in
  (* A = Lᶜ⁻¹ G Lᶜ⁻ᵀ, B̃ = Lᶜ⁻¹ B *)
  let a =
    Linalg.Mat.of_cols
      (List.init n (fun j ->
           let col = Linalg.Chol.solve_lower lc (Linalg.Mat.col gd j) in
           col))
  in
  (* of_cols above gives Lᶜ⁻¹G; finish the congruence column-wise:
     A = (Lᶜ⁻¹ (Lᶜ⁻¹ G)ᵀ)ᵀ *)
  let a =
    let half_t = Linalg.Mat.transpose a in
    Linalg.Mat.of_cols
      (List.init n (fun j -> Linalg.Chol.solve_lower lc (Linalg.Mat.col half_t j)))
  in
  let a = Linalg.Mat.sym_part a in
  (match Linalg.Eig_sym.min_eigenvalue a with
  | e when e > 0.0 -> ()
  | _ -> raise Not_definite);
  let p = m.Circuit.Mna.b.Linalg.Mat.cols in
  let btilde =
    Linalg.Mat.of_cols
      (List.init p (fun j -> Linalg.Chol.solve_lower lc (Linalg.Mat.col m.Circuit.Mna.b j)))
  in
  (* Lyapunov: A P + P A = B̃B̃ᵀ via the eigenbasis of A *)
  let { Linalg.Eig_sym.values = lam; vectors = u } = Linalg.Eig_sym.decompose a in
  let ub = Linalg.Mat.mul (Linalg.Mat.transpose u) btilde in
  let w = Linalg.Mat.mul ub (Linalg.Mat.transpose ub) in
  let ptilde =
    Linalg.Mat.init n n (fun i j -> Linalg.Mat.get w i j /. (lam.(i) +. lam.(j)))
  in
  let gram = Linalg.Mat.congruence (Linalg.Mat.transpose u) ptilde in
  (* symmetric system: P = Q, so the Hankel singular values are the
     eigenvalues of P and the balancing transform is orthogonal *)
  let { Linalg.Eig_sym.values = sig_asc; vectors = wvec } = Linalg.Eig_sym.decompose gram in
  let hsv = Linalg.Vec.init n (fun i -> Float.max sig_asc.(n - 1 - i) 0.0) in
  let order = min order n in
  let v =
    Linalg.Mat.of_cols
      (List.init order (fun k -> Linalg.Mat.col wvec (n - 1 - k)))
  in
  let ahat = Linalg.Mat.congruence v a in
  let bhat = Linalg.Mat.mul (Linalg.Mat.transpose v) btilde in
  let tail = ref 0.0 in
  for k = order to n - 1 do
    tail := !tail +. hsv.(k)
  done;
  { ahat; bhat; order; p; hsv; error_bound = 2.0 *. !tail }

let eval t s =
  let k = Linalg.Cmat.lincomb Linalg.Cx.one t.ahat s (Linalg.Mat.identity t.order) in
  let b = Linalg.Cmat.of_real t.bhat in
  Linalg.Cmat.mul (Linalg.Cmat.transpose b)
    (Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor k) b)

let poles t = Array.map (fun l -> -.l) (Linalg.Eig_sym.values t.ahat)
