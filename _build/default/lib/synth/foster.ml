type stats = {
  resistors : int;
  capacitors : int;
  negative_elements : int;
  dropped_terms : int;
}

exception Not_scalar_rc

let synthesize ?(drop_tol = 1e-12) (model : Sympvl.Model.t) =
  if
    model.Sympvl.Model.p <> 1
    || (not model.Sympvl.Model.definite)
    || model.Sympvl.Model.variable <> Circuit.Mna.S
    || model.Sympvl.Model.shift <> 0.0
    || model.Sympvl.Model.gain <> Circuit.Mna.Unit
  then raise Not_scalar_rc;
  let pr = Sympvl.Postprocess.of_model model in
  let dropped = ref 0 in
  let r_max =
    List.fold_left
      (fun acc term ->
        let r =
          (Linalg.Cx.(term.Sympvl.Postprocess.residue_l.(0)
                      *: term.Sympvl.Postprocess.residue_r.(0))).Complex.re
        in
        Float.max acc (Float.abs r))
      1e-300 pr.Sympvl.Postprocess.terms
  in
  (* collect the series sections: Some c for an R‖C pair, None for the
     purely resistive direct term *)
  let direct = (Linalg.Cmat.get pr.Sympvl.Postprocess.direct 0 0).Complex.re in
  let sections = ref [] in
  if Float.abs direct > drop_tol *. r_max then sections := [ (direct, None) ];
  List.iter
    (fun term ->
      let r_term =
        (Linalg.Cx.(term.Sympvl.Postprocess.residue_l.(0)
                    *: term.Sympvl.Postprocess.residue_r.(0))).Complex.re
      in
      let lambda = term.Sympvl.Postprocess.lambda.Complex.re in
      if Float.abs r_term <= drop_tol *. r_max then incr dropped
      else sections := (r_term, Some (lambda /. r_term)) :: !sections)
    pr.Sympvl.Postprocess.terms;
  let sections = List.rev !sections in
  let nl = Circuit.Netlist.create () in
  let port = Circuit.Netlist.node nl "port" in
  let r_count = ref 0 and c_count = ref 0 and neg = ref 0 in
  let n_sections = List.length sections in
  let top = ref port in
  List.iteri
    (fun idx (r, c_opt) ->
      let bottom =
        if idx = n_sections - 1 then 0 else Circuit.Netlist.fresh_node nl "f"
      in
      Circuit.Netlist.add nl
        (Circuit.Netlist.Resistor
           { name = Printf.sprintf "Rf%d" (idx + 1); n1 = !top; n2 = bottom; ohms = r });
      incr r_count;
      if r < 0.0 then incr neg;
      (match c_opt with
      | Some c ->
        Circuit.Netlist.add nl
          (Circuit.Netlist.Capacitor
             { name = Printf.sprintf "Cf%d" (idx + 1); n1 = !top; n2 = bottom; farads = c });
        incr c_count;
        if c < 0.0 then incr neg
      | None -> ());
      top := bottom)
    sections;
  (* degenerate case: nothing kept — the port floats; tie it to ground
     with the DC resistance so the netlist stays well-posed *)
  if n_sections = 0 then begin
    Circuit.Netlist.add nl
      (Circuit.Netlist.Resistor { name = "Rdc"; n1 = port; n2 = 0; ohms = 1e12 });
    incr r_count
  end;
  Circuit.Netlist.add_port nl "port" port;
  ( nl,
    {
      resistors = !r_count;
      capacitors = !c_count;
      negative_elements = !neg;
      dropped_terms = !dropped;
    } )
