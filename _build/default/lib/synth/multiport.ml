type stats = {
  nodes : int;
  resistors : int;
  capacitors : int;
  negative_elements : int;
  dropped_entries : int;
}

exception Not_synthesizable of string

(* S with ρᵀS = [I_p 0]: first block Q·R⁻ᵀ from the thin QR of ρ,
   second block an orthonormal complement of range(ρ) *)
let port_aligning_transform rho =
  let n = rho.Linalg.Mat.rows and p = rho.Linalg.Mat.cols in
  let qr = Linalg.Qr.factor rho in
  if Linalg.Qr.rank qr < p then raise (Not_synthesizable "rank-deficient rho");
  let q = Linalg.Qr.q_thin qr in
  let r = Linalg.Qr.r qr in
  (* first block: solve Rᵀ yᵀ = qᵀ columnwise, i.e. columns of Q·R⁻ᵀ *)
  let rt = Linalg.Mat.transpose r in
  let rt_lu = Linalg.Lu.factor rt in
  let s1 =
    (* (Q R⁻ᵀ) column j = Q · (R⁻ᵀ e_j) = Q · solve(Rᵀ, e_j) *)
    Linalg.Mat.of_cols
      (List.init p (fun j ->
           Linalg.Mat.mul_vec q (Linalg.Lu.solve_vec rt_lu (Linalg.Vec.basis p j))))
  in
  (* complement: orthonormalise [q | I] and keep the trailing n − p *)
  let aug = Linalg.Mat.create n (p + n) in
  for i = 0 to n - 1 do
    for j = 0 to p - 1 do
      Linalg.Mat.set aug i j (Linalg.Mat.get q i j)
    done;
    Linalg.Mat.set aug i (p + i) 1.0
  done;
  let full, rank = Linalg.Qr.orthonormalize aug in
  if rank <> n then raise (Not_synthesizable "could not complete basis");
  let s = Linalg.Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to p - 1 do
      Linalg.Mat.set s i j (Linalg.Mat.get s1 i j)
    done;
    for j = p to n - 1 do
      Linalg.Mat.set s i j (Linalg.Mat.get full i j)
    done
  done;
  s

let synthesize ?(drop_tol = 1e-9) ~port_names (model : Sympvl.Model.t) =
  if model.Sympvl.Model.variable <> Circuit.Mna.S then
    raise (Not_synthesizable "pencil must be in the s variable");
  if model.Sympvl.Model.gain <> Circuit.Mna.Unit then
    raise (Not_synthesizable "RL-form gain not supported");
  let p = model.Sympvl.Model.p in
  if Array.length port_names <> p then invalid_arg "Multiport.synthesize: port name count";
  let n = model.Sympvl.Model.order in
  let ghat, chat, rho = Sympvl.Model.state_space model in
  let s = port_aligning_transform rho in
  let g' = Linalg.Mat.congruence s ghat in
  let c' = Linalg.Mat.congruence s chat in
  (* realise g' with resistors, c' with capacitors: off-diagonal entry
     m_ij (i < j) ↦ branch of value −m_ij between nodes i and j;
     row-sum remainder ↦ branch to ground *)
  let nl = Circuit.Netlist.create () in
  let nodes =
    Array.init n (fun i ->
        if i < p then Circuit.Netlist.node nl port_names.(i)
        else Circuit.Netlist.node nl (Printf.sprintf "x%d" (i - p + 1)))
  in
  let r_count = ref 0 and c_count = ref 0 and neg = ref 0 and droppedc = ref 0 in
  let realize m kind =
    let scale = Float.max (Linalg.Mat.max_abs m) 1e-300 in
    let add_branch n1 n2 v name =
      match kind with
      | `Resistor ->
        Circuit.Netlist.add nl
          (Circuit.Netlist.Resistor { name; n1; n2; ohms = 1.0 /. v });
        incr r_count;
        if v < 0.0 then incr neg
      | `Capacitor ->
        Circuit.Netlist.add nl (Circuit.Netlist.Capacitor { name; n1; n2; farads = v });
        incr c_count;
        if v < 0.0 then incr neg
    in
    let prefix = match kind with `Resistor -> "Rs" | `Capacitor -> "Cs" in
    for i = 0 to n - 1 do
      let row_sum = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then row_sum := !row_sum +. Linalg.Mat.get m i j
      done;
      (* ground branch carries the row remainder *)
      let gnd = Linalg.Mat.get m i i +. !row_sum in
      if Float.abs gnd > drop_tol *. scale then
        add_branch nodes.(i) 0 gnd (Printf.sprintf "%sg%d" prefix (i + 1))
      else if gnd <> 0.0 then incr droppedc;
      for j = i + 1 to n - 1 do
        let v = -.Linalg.Mat.get m i j in
        if Float.abs v > drop_tol *. scale then
          add_branch nodes.(i) nodes.(j) v (Printf.sprintf "%s%d_%d" prefix (i + 1) (j + 1))
        else if v <> 0.0 then incr droppedc
      done
    done
  in
  realize g' `Resistor;
  realize c' `Capacitor;
  Array.iteri (fun i name -> if i < p then Circuit.Netlist.add_port nl name nodes.(i)) port_names;
  ( nl,
    {
      nodes = Circuit.Netlist.num_nodes nl;
      resistors = !r_count;
      capacitors = !c_count;
      negative_elements = !neg;
      dropped_entries = !droppedc;
    } )
