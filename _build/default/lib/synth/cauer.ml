type stats = {
  resistors : int;
  capacitors : int;
  negative_elements : int;
  truncated : bool;
}

exception Not_scalar_rc

(* ascending-coefficient polynomial helpers over the scaled variable *)
let poly_mul a b =
  let la = Array.length a and lb = Array.length b in
  let c = Array.make (la + lb - 1) 0.0 in
  for i = 0 to la - 1 do
    for j = 0 to lb - 1 do
      c.(i + j) <- c.(i + j) +. (a.(i) *. b.(j))
    done
  done;
  c

let poly_axpy alpha a c =
  (* c <- c + alpha·a, resizing as needed *)
  let lc = max (Array.length a) (Array.length c) in
  let out = Array.make lc 0.0 in
  Array.iteri (fun i x -> out.(i) <- x) c;
  Array.iteri (fun i x -> out.(i) <- out.(i) +. (alpha *. x)) a;
  out

let poly_degree tol a =
  let d = ref (Array.length a - 1) in
  let scale = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 a in
  while !d >= 0 && Float.abs a.(!d) <= tol *. Float.max scale 1e-300 do
    decr d
  done;
  !d

let synthesize ?(coef_tol = 1e-12) (model : Sympvl.Model.t) =
  if
    model.Sympvl.Model.p <> 1
    || (not model.Sympvl.Model.definite)
    || model.Sympvl.Model.variable <> Circuit.Mna.S
    || model.Sympvl.Model.shift <> 0.0
    || model.Sympvl.Model.gain <> Circuit.Mna.Unit
  then raise Not_scalar_rc;
  let pr = Sympvl.Postprocess.of_model model in
  let direct = (Linalg.Cmat.get pr.Sympvl.Postprocess.direct 0 0).Complex.re in
  let lambdas =
    List.map (fun t -> t.Sympvl.Postprocess.lambda.Complex.re) pr.Sympvl.Postprocess.terms
  in
  let residues =
    List.map
      (fun t ->
        (Linalg.Cx.(t.Sympvl.Postprocess.residue_l.(0) *: t.Sympvl.Postprocess.residue_r.(0)))
          .Complex.re)
      pr.Sympvl.Postprocess.terms
  in
  (* scale the variable by the geometric-mean time constant, which
     balances the polynomial coefficients across the spread of time
     constants (scaling by the extremes loses the small coefficients
     to roundoff much sooner) *)
  let tau =
    match lambdas with
    | [] -> 1.0
    | ls ->
      let log_sum = List.fold_left (fun acc l -> acc +. log (Float.abs l +. 1e-300)) 0.0 ls in
      exp (log_sum /. float_of_int (List.length ls))
  in
  let lam_scaled = List.map (fun l -> l /. tau) lambdas in
  (* den = Π (1 + s̃ λ̃ₖ); num = direct·den + Σ rₖ Π_{j≠k} (1 + s̃ λ̃ⱼ) *)
  let den =
    List.fold_left (fun acc l -> poly_mul acc [| 1.0; l |]) [| 1.0 |] lam_scaled
  in
  let num = ref (Array.map (fun x -> direct *. x) den) in
  List.iteri
    (fun k rk ->
      let partial =
        List.fold_left
          (fun acc (j, l) -> if j = k then acc else poly_mul acc [| 1.0; l |])
          [| 1.0 |]
          (List.mapi (fun j l -> (j, l)) lam_scaled)
      in
      num := poly_axpy rk partial !num)
    residues;
  (* Cauer-I continued fraction (about s = ∞): alternately extract a
     series resistance (degree-matched impedance division) and a shunt
     capacitance (degree-offset admittance division) *)
  let nl = Circuit.Netlist.create () in
  let port = Circuit.Netlist.node nl "port" in
  let top = ref port in
  let r_count = ref 0 and c_count = ref 0 and neg = ref 0 in
  let truncated = ref false in
  let n_poly = ref !num and d_poly = ref den in
  let view = ref `Z in
  let last = ref `None in
  let swaps_in_a_row = ref 0 in
  let k = ref 0 in
  let continue_ = ref true in
  let invert () =
    let tmp = !n_poly in
    n_poly := !d_poly;
    d_poly := tmp;
    view := (match !view with `Z -> `Y | `Y -> `Z)
  in
  while !continue_ do
    incr k;
    let dn = poly_degree coef_tol !n_poly and dd = poly_degree coef_tol !d_poly in
    if dn < 0 || dd < 0 then
      (* a zero polynomial on either side: the previous extraction
         was exact and the fraction terminates *)
      continue_ := false
    else begin
      match !view with
      | `Z when dn = dd ->
        (* extract a series resistance (the impedance value at ∞) *)
        swaps_in_a_row := 0;
        let r = !n_poly.(dn) /. !d_poly.(dd) in
        let nxt = Circuit.Netlist.fresh_node nl "cl" in
        Circuit.Netlist.add nl
          (Circuit.Netlist.Resistor
             { name = Printf.sprintf "Rc%d" !k; n1 = !top; n2 = nxt; ohms = r });
        incr r_count;
        if r < 0.0 then incr neg;
        top := nxt;
        last := `R;
        n_poly := poly_axpy (-.r) !d_poly !n_poly;
        invert ()
      | `Y when dn = dd + 1 ->
        (* extract a shunt capacitance (admittance ≈ s̃C̃ at ∞) *)
        swaps_in_a_row := 0;
        let c_scaled = !n_poly.(dn) /. !d_poly.(dd) in
        let c_phys = c_scaled *. tau in
        Circuit.Netlist.add nl
          (Circuit.Netlist.Capacitor
             { name = Printf.sprintf "Cc%d" !k; n1 = !top; n2 = 0; farads = c_phys });
        incr c_count;
        if c_phys < 0.0 then incr neg;
        last := `C;
        let shifted = Array.append [| 0.0 |] !d_poly in
        n_poly := poly_axpy (-.c_scaled) shifted !n_poly;
        invert ()
      | `Z | `Y ->
        (* a zero element in the canonical pattern: flip views; two
           flips without an extraction means the degrees collapsed *)
        incr swaps_in_a_row;
        if !swaps_in_a_row >= 2 then begin
          truncated := true;
          continue_ := false
        end
        else invert ()
    end;
    if !k > (4 * model.Sympvl.Model.order) + 8 then continue_ := false
  done;
  (* termination: a ladder ending after a series-R extraction ends in
     a short (tiny resistor to ground); after a shunt-C it ends open *)
  (match !last with
  | `R when !top <> 0 ->
    Circuit.Netlist.add nl
      (Circuit.Netlist.Resistor { name = "Rcend"; n1 = !top; n2 = 0; ohms = 1e-9 });
    incr r_count
  | `R | `C -> ()
  | `None ->
    Circuit.Netlist.add nl
      (Circuit.Netlist.Resistor { name = "Rcdc"; n1 = port; n2 = 0; ohms = 1e12 });
    incr r_count);
  Circuit.Netlist.add_port nl "port" port;
  ( nl,
    {
      resistors = !r_count;
      capacitors = !c_count;
      negative_elements = !neg;
      truncated = !truncated;
    } )
