(** Scalar Foster-form RC synthesis (the p = 1, RC procedure of
    ref. [8], paper Section 6).

    A definite single-port reduced model has the pole/residue form

      [Z(s) = r₀ + Σ_k r_k / (1 + s·λ_k)],   [λ_k > 0],

    each term of which is one parallel R‖C pair with [R = r_k] and
    [C = λ_k / r_k], connected in series (Foster-I). Negative
    residues yield negative-valued elements, which is expected and
    harmless for simulation (paper Section 6). *)

type stats = {
  resistors : int;
  capacitors : int;
  negative_elements : int;
  dropped_terms : int;  (** Terms below the residue cutoff. *)
}

exception Not_scalar_rc
(** The model is not a definite single-port [s]-variable model. *)

val synthesize :
  ?drop_tol:float -> Sympvl.Model.t -> Circuit.Netlist.t * stats
(** Build the Foster netlist; the single port is named ["port"].
    Terms whose residue magnitude is below [drop_tol] (default
    [1e-12]) relative to the largest are dropped. *)
