lib/synth/multiport.mli: Circuit Sympvl
