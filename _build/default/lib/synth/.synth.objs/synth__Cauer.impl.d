lib/synth/cauer.ml: Array Circuit Complex Float Linalg List Printf Sympvl
