lib/synth/foster.mli: Circuit Sympvl
