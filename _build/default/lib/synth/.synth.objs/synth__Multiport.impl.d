lib/synth/multiport.ml: Array Circuit Float Linalg List Printf Sympvl
