lib/synth/cauer.mli: Circuit Sympvl
