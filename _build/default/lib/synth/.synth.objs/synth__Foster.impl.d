lib/synth/foster.ml: Array Circuit Complex Float Linalg List Printf Sympvl
