(** Cauer (continued-fraction) RC synthesis for single ports.

    The paper's Section 6 mentions realisations that "generalize
    either the first or the second Cauer forms"; this module
    implements the second Cauer form for the scalar RC case: the
    reduced impedance is expanded as a continued fraction about
    [s = 0],

      [Z(s) = R₁ + 1/(sC₁ + 1/(R₂ + 1/(sC₂ + …)))],

    realised as a series-R / shunt-C ladder. Complements
    {!Foster.synthesize} (the two classical canonical one-port RC
    forms). Element values may be negative, as the paper notes. *)

type stats = {
  resistors : int;
  capacitors : int;
  negative_elements : int;
  truncated : bool;
      (** The expansion hit a numerically zero coefficient before
          exhausting the order (the remaining terms are negligible). *)
}

exception Not_scalar_rc

val synthesize : ?coef_tol:float -> Sympvl.Model.t -> Circuit.Netlist.t * stats
(** Build the Cauer-II ladder netlist; the single port is named
    ["port"]. Requires a definite single-port [s]-variable model with
    zero shift (as {!Foster.synthesize}). [coef_tol] (default
    [1e-12]) stops the fraction when a coefficient ratio collapses. *)
