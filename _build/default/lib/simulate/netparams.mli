(** Network-parameter conversions.

    The reduction pipeline produces Z-parameters (the paper's natural
    choice for current-driven ports). Downstream users of e.g. the
    package model usually want Y- or S-parameters; these are the
    standard algebraic conversions, applied pointwise to a swept or
    model-evaluated [p×p] matrix. *)

val z_to_y : Linalg.Cmat.t -> Linalg.Cmat.t
(** [Y = Z⁻¹]. Raises [Linalg.Cmat.Singular] at a frequency where
    [Z] is singular. *)

val y_to_z : Linalg.Cmat.t -> Linalg.Cmat.t

val z_to_s : ?z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t
(** [S = (Z − z0·I)(Z + z0·I)⁻¹] with reference impedance [z0]
    (default 50 Ω). *)

val s_to_z : ?z0:float -> Linalg.Cmat.t -> Linalg.Cmat.t
(** [Z = z0·(I + S)(I − S)⁻¹]. *)

val is_passive_s : ?tol:float -> Linalg.Cmat.t -> bool
(** An S-parameter matrix is passive iff [I − SᴴS ⪰ 0] (unit-bounded
    singular values). *)
