(** Exact AC (frequency-domain) analysis.

    Computes the multi-port transfer function [Z(s)] of an assembled
    MNA pencil by direct complex-symmetric factorisation of
    [(G + var·C)] at each frequency point — the "exact analysis"
    reference curves of the paper's Figures 2–4. An RCM ordering is
    computed once; each frequency point costs one skyline
    factorisation plus [p] solves. *)

type sweep = {
  freqs : float array;  (** In Hz. *)
  z : Linalg.Cmat.t array;  (** [Z(j2πf)], one [p×p] matrix per point. *)
  port_names : string array;
}

val z_at : Circuit.Mna.t -> Complex.t -> Linalg.Cmat.t
(** [z_at m s] evaluates the exact [Z(s)] at one physical complex
    frequency (gain and variable conventions as in {!Sympvl.Model.eval}). *)

val sweep : Circuit.Mna.t -> float array -> sweep
(** [sweep m freqs] evaluates along the [jω] axis. *)

val log_freqs : ?points:int -> float -> float -> float array
(** [log_freqs f_lo f_hi] — logarithmically spaced frequency grid
    (default 200 points). *)

val model_sweep :
  (Complex.t -> Linalg.Cmat.t) -> float array -> Linalg.Cmat.t array
(** Sweep any evaluator (e.g. [Model.eval model]) on the same grid. *)

val max_rel_error : sweep -> Linalg.Cmat.t array -> float
(** Worst relative (max-norm) deviation over the sweep — the
    figure-of-merit used in EXPERIMENTS.md. *)
