let z_to_y z = Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor z) (Linalg.Cmat.identity z.Linalg.Cmat.rows)

let y_to_z = z_to_y

let z_to_s ?(z0 = 50.0) z =
  let n = z.Linalg.Cmat.rows in
  let z0i = Linalg.Cmat.scale (Linalg.Cx.re z0) (Linalg.Cmat.identity n) in
  let num = Linalg.Cmat.sub z z0i in
  let den = Linalg.Cmat.add z z0i in
  (* S = num·den⁻¹ computed as (denᵀ⁻¹·numᵀ)ᵀ to reuse the solver *)
  let x =
    Linalg.Cmat.lu_solve_mat
      (Linalg.Cmat.lu_factor (Linalg.Cmat.transpose den))
      (Linalg.Cmat.transpose num)
  in
  Linalg.Cmat.transpose x

let s_to_z ?(z0 = 50.0) s =
  let n = s.Linalg.Cmat.rows in
  let eye = Linalg.Cmat.identity n in
  let num = Linalg.Cmat.add eye s in
  let den = Linalg.Cmat.sub eye s in
  let x = Linalg.Cmat.lu_solve_mat (Linalg.Cmat.lu_factor den) eye in
  Linalg.Cmat.scale (Linalg.Cx.re z0) (Linalg.Cmat.mul num x)

let is_passive_s ?(tol = 1e-9) s =
  let n = s.Linalg.Cmat.rows in
  (* I − SᴴS ⪰ 0 *)
  let sh =
    Linalg.Cmat.init n n (fun i j -> Linalg.Cx.conj (Linalg.Cmat.get s j i))
  in
  let shs = Linalg.Cmat.mul sh s in
  let m = Linalg.Cmat.sub (Linalg.Cmat.identity n) shs in
  Linalg.Cmat.min_eig_hermitian m >= -.tol
