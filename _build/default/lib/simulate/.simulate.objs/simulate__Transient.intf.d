lib/simulate/transient.mli: Circuit Sympvl
