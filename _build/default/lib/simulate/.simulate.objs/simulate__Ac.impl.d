lib/simulate/ac.ml: Array Circuit Float Linalg Sparse
