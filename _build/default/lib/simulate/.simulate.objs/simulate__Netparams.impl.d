lib/simulate/netparams.ml: Linalg
