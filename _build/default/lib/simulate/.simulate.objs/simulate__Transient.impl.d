lib/simulate/transient.ml: Array Circuit Float Linalg List Sparse Sympvl
