lib/simulate/netparams.mli: Linalg
