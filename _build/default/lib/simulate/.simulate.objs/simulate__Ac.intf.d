lib/simulate/ac.mli: Circuit Complex Linalg
