type t =
  | Dc of float
  | Pwl of (float * float) list
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sine of { offset : float; amplitude : float; freq : float; delay : float }

let eval_pwl corners t =
  let rec go prev = function
    | [] -> snd prev
    | (t1, v1) :: rest ->
      if t < t1 then begin
        let t0, v0 = prev in
        if t1 = t0 then v1 else v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
      end
      else go (t1, v1) rest
  in
  match corners with
  | [] -> 0.0
  | (t0, v0) :: _ when t <= t0 -> v0
  | (c :: _ as l) -> go c l

let eval w t =
  match w with
  | Dc v -> v
  | Pwl corners -> eval_pwl corners t
  | Pulse { low; high; delay; rise; fall; width; period } ->
    if t < delay then low
    else begin
      let tau =
        if period > 0.0 then Float.rem (t -. delay) period else t -. delay
      in
      if tau < rise then low +. ((high -. low) *. tau /. Float.max rise 1e-300)
      else if tau < rise +. width then high
      else if tau < rise +. width +. fall then
        high -. ((high -. low) *. (tau -. rise -. width) /. Float.max fall 1e-300)
      else low
    end
  | Sine { offset; amplitude; freq; delay } ->
    if t < delay then offset
    else offset +. (amplitude *. sin (2.0 *. Float.pi *. freq *. (t -. delay)))

let dc_value w = eval w 0.0

let ramp ?(delay = 0.0) ~rise v = Pwl [ (delay, 0.0); (delay +. rise, v) ]

let pp ppf = function
  | Dc v -> Format.fprintf ppf "DC %g" v
  | Pwl corners ->
    Format.fprintf ppf "PWL(%s)"
      (String.concat " "
         (List.map (fun (t, v) -> Printf.sprintf "%g %g" t v) corners))
  | Pulse { low; high; delay; rise; fall; width; period } ->
    Format.fprintf ppf "PULSE(%g %g %g %g %g %g %g)" low high delay rise fall width period
  | Sine { offset; amplitude; freq; delay } ->
    Format.fprintf ppf "SIN(%g %g %g %g)" offset amplitude freq delay
