(** Time-domain source waveforms (SPICE-style). *)

type t =
  | Dc of float
  | Pwl of (float * float) list
      (** Piece-wise linear [(time, value)] corners, ascending times;
          constant extrapolation outside. *)
  | Pulse of {
      low : float;
      high : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sine of { offset : float; amplitude : float; freq : float; delay : float }

val eval : t -> float -> float
(** Value at a given time. *)

val dc_value : t -> float
(** Value at [t = 0⁻] (for the DC operating point). *)

val ramp : ?delay:float -> rise:float -> float -> t
(** [ramp ~rise v] — a PWL step from 0 to [v] over [rise] seconds. *)

val pp : Format.formatter -> t -> unit
