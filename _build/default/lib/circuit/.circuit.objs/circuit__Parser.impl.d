lib/circuit/parser.ml: Buffer Char Format Hashtbl List Netlist Printf String Waveform
