lib/circuit/netlist.ml: Array Float Format Hashtbl List Printf String Waveform
