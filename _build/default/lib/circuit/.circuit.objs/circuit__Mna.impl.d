lib/circuit/mna.ml: Array Linalg List Netlist Sparse
