lib/circuit/mna.mli: Linalg Netlist Sparse
