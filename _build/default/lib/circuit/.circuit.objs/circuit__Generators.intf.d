lib/circuit/generators.mli: Netlist
