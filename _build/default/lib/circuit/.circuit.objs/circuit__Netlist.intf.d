lib/circuit/netlist.mli: Format Waveform
