lib/circuit/waveform.ml: Float Format List Printf String
