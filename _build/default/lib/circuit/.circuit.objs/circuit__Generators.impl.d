lib/circuit/generators.ml: Array Linalg List Netlist Printf String
