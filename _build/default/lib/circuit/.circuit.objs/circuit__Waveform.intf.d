lib/circuit/waveform.mli: Format
