lib/circuit/parser.mli: Netlist
