type t = float array

let degree c =
  let d = ref (Array.length c - 1) in
  while !d >= 0 && c.(!d) = 0.0 do
    decr d
  done;
  !d

let eval c x =
  let s = ref 0.0 in
  for k = Array.length c - 1 downto 0 do
    s := (!s *. x) +. c.(k)
  done;
  !s

let eval_cx c z =
  let s = ref Cx.zero in
  for k = Array.length c - 1 downto 0 do
    s := Cx.((!s *: z) +: re c.(k))
  done;
  !s

let derivative c =
  let n = Array.length c in
  if n <= 1 then [| 0.0 |]
  else Array.init (n - 1) (fun k -> float_of_int (k + 1) *. c.(k + 1))

let roots ?(iterations = 400) ?(tol = 1e-12) c =
  let d = degree c in
  if d < 0 then invalid_arg "Poly.roots: zero polynomial";
  if d = 0 then [||]
  else begin
    (* monic normalisation of the significant part *)
    let lead = c.(d) in
    let mc = Array.init (d + 1) (fun k -> c.(k) /. lead) in
    (* scale estimate for initial guesses: Cauchy bound *)
    let bound =
      1.0 +. Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 (Array.sub mc 0 d)
    in
    let z =
      Array.init d (fun k ->
          let theta = ((2.0 *. Float.pi *. float_of_int k) /. float_of_int d) +. 0.4 in
          Cx.smul (0.5 *. bound) (Cx.make (cos theta) (sin theta)))
    in
    let moved = ref infinity in
    let it = ref 0 in
    while !it < iterations && !moved > tol *. bound do
      moved := 0.0;
      for k = 0 to d - 1 do
        let num = eval_cx mc z.(k) in
        let den = ref Cx.one in
        for j = 0 to d - 1 do
          if j <> k then den := Cx.(!den *: (z.(k) -: z.(j)))
        done;
        if Cx.abs !den > 0.0 then begin
          let delta = Cx.(num /: !den) in
          z.(k) <- Cx.(z.(k) -: delta);
          moved := Float.max !moved (Cx.abs delta)
        end
      done;
      incr it
    done;
    z
  end
