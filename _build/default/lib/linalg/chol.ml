type t = { low : Mat.t }

exception Not_positive_definite of int

let factor ?(tol = 1e-13) m =
  let open Mat in
  assert (m.rows = m.cols);
  let n = m.rows in
  let low = create n n in
  let dmax = ref 0.0 in
  for i = 0 to n - 1 do
    dmax := Float.max !dmax (Float.abs (get m i i))
  done;
  (* purely relative test: matrices of any physical scale (e.g.
     femtofarad capacitance matrices) must factor *)
  let breakdown = tol *. !dmax in
  for j = 0 to n - 1 do
    (* diagonal entry *)
    let s = ref (get m j j) in
    for k = 0 to j - 1 do
      let ljk = get low j k in
      s := !s -. (ljk *. ljk)
    done;
    if !s <= breakdown then raise (Not_positive_definite j);
    let d = sqrt !s in
    set low j j d;
    for i = j + 1 to n - 1 do
      let s = ref (get m i j) in
      for k = 0 to j - 1 do
        s := !s -. (get low i k *. get low j k)
      done;
      set low i j (!s /. d)
    done
  done;
  { low }

let l t = t.low

let solve_lower t b =
  let open Mat in
  let n = t.low.rows in
  assert (Vec.dim b = n);
  let y = Vec.copy b in
  for i = 0 to n - 1 do
    for k = 0 to i - 1 do
      y.(i) <- y.(i) -. (get t.low i k *. y.(k))
    done;
    y.(i) <- y.(i) /. get t.low i i
  done;
  y

let solve_lower_t t b =
  let open Mat in
  let n = t.low.rows in
  assert (Vec.dim b = n);
  let y = Vec.copy b in
  for i = n - 1 downto 0 do
    for k = i + 1 to n - 1 do
      y.(i) <- y.(i) -. (get t.low k i *. y.(k))
    done;
    y.(i) <- y.(i) /. get t.low i i
  done;
  y

let solve t b = solve_lower_t t (solve_lower t b)

let solve_mat t b =
  let x = Mat.create b.Mat.rows b.Mat.cols in
  for j = 0 to b.Mat.cols - 1 do
    Mat.set_col x j (solve t (Mat.col b j))
  done;
  x

let inverse t = solve_mat t (Mat.identity t.low.Mat.rows)

let det t =
  let n = t.low.Mat.rows in
  let d = ref 1.0 in
  for i = 0 to n - 1 do
    d := !d *. Mat.get t.low i i
  done;
  !d *. !d
