type result = { values : Vec.t; vectors : Mat.t }

let hypot2 a b = Float.hypot a b

(* Householder reduction of a real symmetric matrix to tridiagonal
   form; returns (d, e, z) with z the accumulated orthogonal
   transform: a = z · tridiag(d, e) · zᵀ. Classic tred2. *)
let tred2 a0 =
  let open Mat in
  let n = a0.rows in
  let z = copy a0 in
  let d = Vec.create n and e = Vec.create n in
  for i = n - 1 downto 1 do
    let l = i - 1 in
    let h = ref 0.0 and scale = ref 0.0 in
    if l > 0 then begin
      for k = 0 to l do
        scale := !scale +. Float.abs (get z i k)
      done;
      if !scale = 0.0 then e.(i) <- get z i l
      else begin
        for k = 0 to l do
          set z i k (get z i k /. !scale);
          h := !h +. (get z i k *. get z i k)
        done;
        let f = get z i l in
        let g = if f >= 0.0 then -.sqrt !h else sqrt !h in
        e.(i) <- !scale *. g;
        h := !h -. (f *. g);
        set z i l (f -. g);
        let f_acc = ref 0.0 in
        for j = 0 to l do
          set z j i (get z i j /. !h);
          let g = ref 0.0 in
          for k = 0 to j do
            g := !g +. (get z j k *. get z i k)
          done;
          for k = j + 1 to l do
            g := !g +. (get z k j *. get z i k)
          done;
          e.(j) <- !g /. !h;
          f_acc := !f_acc +. (e.(j) *. get z i j)
        done;
        let hh = !f_acc /. (!h +. !h) in
        for j = 0 to l do
          let f = get z i j in
          e.(j) <- e.(j) -. (hh *. f);
          let g = e.(j) in
          for k = 0 to j do
            add_to z j k (-.((f *. e.(k)) +. (g *. get z i k)))
          done
        done
      end
    end
    else e.(i) <- get z i l;
    d.(i) <- !h
  done;
  d.(0) <- 0.0;
  e.(0) <- 0.0;
  for i = 0 to n - 1 do
    let l = i - 1 in
    if d.(i) <> 0.0 then
      for j = 0 to l do
        let g = ref 0.0 in
        for k = 0 to l do
          g := !g +. (get z i k *. get z k j)
        done;
        for k = 0 to l do
          add_to z k j (-. !g *. get z k i)
        done
      done;
    d.(i) <- get z i i;
    set z i i 1.0;
    for j = 0 to l do
      set z j i 0.0;
      set z i j 0.0
    done
  done;
  (d, e, z)

(* QL with implicit shifts on tridiagonal (d, e); e.(0) unused on
   entry, accumulates the rotations in z. Classic tqli. *)
let tqli d e z =
  let n = Vec.dim d in
  if n = 0 then ()
  else begin
    for i = 1 to n - 1 do
      e.(i - 1) <- e.(i)
    done;
    e.(n - 1) <- 0.0;
    for l = 0 to n - 1 do
      let iter = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        (* find small subdiagonal to split *)
        let m = ref l in
        (try
           while !m < n - 1 do
             let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
             if Float.abs e.(!m) <= 1e-300 +. (Float.epsilon *. dd) then raise Exit;
             incr m
           done
         with Exit -> ());
        if !m = l then continue_ := false
        else begin
          incr iter;
          if !iter > 50 then failwith "Eig_sym: QL failed to converge";
          let g = (d.(l + 1) -. d.(l)) /. (2.0 *. e.(l)) in
          let r = hypot2 g 1.0 in
          let g =
            d.(!m) -. d.(l)
            +. (e.(l) /. (g +. (if g >= 0.0 then Float.abs r else -.Float.abs r)))
          in
          let s = ref 1.0 and c = ref 1.0 and p = ref 0.0 in
          let g = ref g in
          (try
             for i = !m - 1 downto l do
               let f = !s *. e.(i) and b = !c *. e.(i) in
               let r = hypot2 f !g in
               e.(i + 1) <- r;
               if r = 0.0 then begin
                 d.(i + 1) <- d.(i + 1) -. !p;
                 e.(!m) <- 0.0;
                 raise Exit
               end;
               s := f /. r;
               c := !g /. r;
               let gg = d.(i + 1) -. !p in
               let rr = ((d.(i) -. gg) *. !s) +. (2.0 *. !c *. b) in
               p := !s *. rr;
               d.(i + 1) <- gg +. !p;
               g := (!c *. rr) -. b;
               (* accumulate rotation in z *)
               for k = 0 to Mat.(z.rows) - 1 do
                 let f = Mat.get z k (i + 1) in
                 Mat.set z k (i + 1) ((!s *. Mat.get z k i) +. (!c *. f));
                 Mat.set z k i ((!c *. Mat.get z k i) -. (!s *. f))
               done
             done;
             d.(l) <- d.(l) -. !p;
             e.(l) <- !g;
             e.(!m) <- 0.0
           with Exit -> ())
        end
      done
    done
  end

let sort_result d z =
  let n = Vec.dim d in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare d.(i) d.(j)) idx;
  let values = Vec.init n (fun i -> d.(idx.(i))) in
  let vectors = Mat.init Mat.(z.rows) n (fun i j -> Mat.get z i idx.(j)) in
  { values; vectors }

let decompose a =
  let d, e, z = tred2 a in
  tqli d e z;
  sort_result d z

let values a = (decompose a).values

let tridiag d0 e0 =
  let n = Vec.dim d0 in
  assert (Vec.dim e0 = n - 1 || (n = 0 && Vec.dim e0 = 0));
  let d = Vec.copy d0 in
  (* tqli expects e.(i) as subdiagonal entry below d.(i-1), shifted at
     start; we pre-shift so that the body's initial shift restores it *)
  let e = Vec.create n in
  for i = 1 to n - 1 do
    e.(i) <- e0.(i - 1)
  done;
  let z = Mat.identity n in
  tqli d e z;
  sort_result d z

let min_eigenvalue a =
  let v = values a in
  if Vec.dim v = 0 then 0.0 else v.(0)
