type t = {
  qr : Mat.t; (* Householder vectors below diagonal, R on/above *)
  tau : float array;
  m : int;
  n : int;
}

(* Apply householder H = I - tau v vᵀ (v stored in column k below the
   diagonal, with implicit v.(k) = 1) to vector x in place. *)
let apply_house qr tau k x =
  let open Mat in
  let m = qr.rows in
  let s = ref x.(k) in
  for i = k + 1 to m - 1 do
    s := !s +. (get qr i k *. x.(i))
  done;
  let s = tau *. !s in
  x.(k) <- x.(k) -. s;
  for i = k + 1 to m - 1 do
    x.(i) <- x.(i) -. (s *. get qr i k)
  done

let factor a =
  let open Mat in
  let m = a.rows and n = a.cols in
  assert (m >= n);
  let qr = copy a in
  let tau = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* build householder annihilating below-diagonal entries of col k *)
    let nrm = ref 0.0 in
    for i = k to m - 1 do
      nrm := !nrm +. (get qr i k *. get qr i k)
    done;
    let nrm = sqrt !nrm in
    if nrm > 0.0 then begin
      let akk = get qr k k in
      let alpha = if akk >= 0.0 then -.nrm else nrm in
      let v0 = akk -. alpha in
      tau.(k) <- -.v0 /. alpha;
      (* normalise so v.(k) = 1 *)
      for i = k + 1 to m - 1 do
        set qr i k (get qr i k /. v0)
      done;
      set qr k k alpha;
      (* update trailing columns *)
      for j = k + 1 to n - 1 do
        let s = ref (get qr k j) in
        for i = k + 1 to m - 1 do
          s := !s +. (get qr i k *. get qr i j)
        done;
        let s = tau.(k) *. !s in
        set qr k j (get qr k j -. s);
        for i = k + 1 to m - 1 do
          add_to qr i j (-.s *. get qr i k)
        done
      done
    end
  done;
  { qr; tau; m; n }

let r t =
  Mat.init t.n t.n (fun i j -> if j >= i then Mat.get t.qr i j else 0.0)

let q_thin t =
  let q = Mat.create t.m t.n in
  for j = 0 to t.n - 1 do
    let e = Vec.basis t.m j in
    (* Q e_j = H_0 H_1 ... H_{n-1} e_j *)
    for k = t.n - 1 downto 0 do
      if t.tau.(k) <> 0.0 then apply_house t.qr t.tau.(k) k e
    done;
    Mat.set_col q j e
  done;
  q

let solve_ls t b =
  assert (Vec.dim b = t.m);
  let y = Vec.copy b in
  for k = 0 to t.n - 1 do
    if t.tau.(k) <> 0.0 then apply_house t.qr t.tau.(k) k y
  done;
  let x = Vec.create t.n in
  for i = t.n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to t.n - 1 do
      s := !s -. (Mat.get t.qr i j *. x.(j))
    done;
    let d = Mat.get t.qr i i in
    if d = 0.0 then invalid_arg "Qr.solve_ls: rank deficient";
    x.(i) <- !s /. d
  done;
  x

let rank ?(tol = 1e-12) t =
  let dmax = ref 0.0 in
  for i = 0 to t.n - 1 do
    dmax := Float.max !dmax (Float.abs (Mat.get t.qr i i))
  done;
  let cnt = ref 0 in
  for i = 0 to t.n - 1 do
    if Float.abs (Mat.get t.qr i i) > tol *. Float.max !dmax 1.0 then incr cnt
  done;
  !cnt

let orthonormalize a =
  let open Mat in
  let m = a.rows and n = a.cols in
  let kept = ref [] in
  let nkept = ref 0 in
  let tol = 1e-10 in
  for j = 0 to n - 1 do
    let v = col a j in
    let nrm0 = Vec.norm2 v in
    (* two passes of modified Gram–Schmidt for robustness *)
    for _pass = 1 to 2 do
      List.iter
        (fun q ->
          let c = Vec.dot q v in
          Vec.axpy (-.c) q v)
        !kept
    done;
    let nrm = Vec.norm2 v in
    if nrm > tol *. Float.max nrm0 1e-300 && nrm > 0.0 then begin
      Vec.scale_ip (1.0 /. nrm) v;
      kept := !kept @ [ v ];
      incr nkept
    end
  done;
  let q = create m !nkept in
  List.iteri (fun j v -> set_col q j v) !kept;
  (q, !nkept)
