type block =
  | B1 of { k : int; d : float }
  | B2 of { k : int; a : float; b : float; c : float }
      (* 2×2 block [[a; b]; [b; c]] at rows/cols (k, k+1) *)

type t = {
  n : int;
  lmat : Mat.t; (* unit lower triangular; unit diagonal implicit *)
  blocks : block list; (* in ascending k order *)
  perm : int array; (* position i holds original index perm.(i) *)
  (* sign-split data, per position: *)
  smat2 : (float * float * float * float) array;
      (* for a position k opening a 2×2 block: the 2×2 S factor
         (s00, s01, s10, s11); unused slots are zero *)
  s1 : float array; (* for 1×1 blocks: sqrt |d|; 0.0 where 2×2 *)
  j : float array; (* diagonal of J, ±1 *)
  block_kind : int array; (* 0: 1×1 at k; 1: first row of 2×2; 2: second row *)
}

exception Singular of int

let alpha = (1.0 +. sqrt 17.0) /. 8.0

(* Symmetric 2×2 eigendecomposition of [[a;b];[b;c]]:
   returns (l1, l2, q) with q = [[q00;q01];[q10;q11]] orthogonal,
   columns = eigenvectors for l1, l2. *)
let eig2 a b c =
  if b = 0.0 then (a, c, (1.0, 0.0, 0.0, 1.0))
  else begin
    let tr = a +. c and dif = a -. c in
    let rad = sqrt ((dif *. dif) +. (4.0 *. b *. b)) in
    let l1 = 0.5 *. (tr +. rad) and l2 = 0.5 *. (tr -. rad) in
    (* eigenvector for l1: (b, l1 - a) *)
    let vx = b and vy = l1 -. a in
    let nrm = sqrt ((vx *. vx) +. (vy *. vy)) in
    let q00 = vx /. nrm and q10 = vy /. nrm in
    (* second eigenvector orthogonal *)
    let q01 = -.q10 and q11 = q00 in
    (l1, l2, (q00, q01, q10, q11))
  end

let factor ?(tol = 1e-13) m0 =
  let open Mat in
  assert (m0.rows = m0.cols);
  let n = m0.rows in
  let w = copy m0 in
  let lmat = identity n in
  let perm = Array.init n (fun i -> i) in
  let blocks = ref [] in
  let scale_ref = max_abs m0 in
  let tiny = tol *. scale_ref in
  (* swap rows/cols r1 <-> r2 (both >= current k) in w, rows of lmat
     in columns [0, kdone), and perm *)
  let swap kdone r1 r2 =
    if r1 <> r2 then begin
      for j = 0 to n - 1 do
        let t1 = get w r1 j in
        set w r1 j (get w r2 j);
        set w r2 j t1
      done;
      for i = 0 to n - 1 do
        let t1 = get w i r1 in
        set w i r1 (get w i r2);
        set w i r2 t1
      done;
      for j = 0 to kdone - 1 do
        let t1 = get lmat r1 j in
        set lmat r1 j (get lmat r2 j);
        set lmat r2 j t1
      done;
      let t1 = perm.(r1) in
      perm.(r1) <- perm.(r2);
      perm.(r2) <- t1
    end
  in
  let k = ref 0 in
  while !k < n do
    let kk = !k in
    let absakk = Float.abs (get w kk kk) in
    (* lambda: largest below-diagonal magnitude in column kk *)
    let r = ref kk and lambda = ref 0.0 in
    for i = kk + 1 to n - 1 do
      let v = Float.abs (get w i kk) in
      if v > !lambda then begin
        lambda := v;
        r := i
      end
    done;
    if Float.max absakk !lambda <= tiny then raise (Singular kk);
    let kstep = ref 1 in
    if absakk >= alpha *. !lambda then () (* 1×1, no swap *)
    else begin
      (* sigma: largest off-diagonal magnitude in column/row !r within
         the trailing submatrix *)
      let sigma = ref 0.0 in
      for i = kk to n - 1 do
        if i <> !r then sigma := Float.max !sigma (Float.abs (get w i !r))
      done;
      if absakk *. !sigma >= alpha *. !lambda *. !lambda then ()
      else if Float.abs (get w !r !r) >= alpha *. !sigma then swap kk kk !r
      else begin
        kstep := 2;
        swap kk (kk + 1) !r
      end
    end;
    if !kstep = 1 then begin
      let d = get w kk kk in
      if Float.abs d <= tiny then raise (Singular kk);
      blocks := B1 { k = kk; d } :: !blocks;
      for i = kk + 1 to n - 1 do
        let li = get w i kk /. d in
        set lmat i kk li
      done;
      for i = kk + 1 to n - 1 do
        let ci = get w i kk in
        if ci <> 0.0 then
          for jj = kk + 1 to n - 1 do
            add_to w i jj (-.ci *. get w jj kk /. d)
          done
      done;
      incr k
    end
    else begin
      let a = get w kk kk
      and b = get w (kk + 1) kk
      and c = get w (kk + 1) (kk + 1) in
      let det = (a *. c) -. (b *. b) in
      if Float.abs det <= tiny *. tiny then raise (Singular kk);
      blocks := B2 { k = kk; a; b; c } :: !blocks;
      (* columns of L: [l1; l2] = D⁻¹ [c1; c2] *)
      let l1s = Array.make n 0.0 and l2s = Array.make n 0.0 in
      for i = kk + 2 to n - 1 do
        let c1 = get w i kk and c2 = get w i (kk + 1) in
        let l1 = ((c *. c1) -. (b *. c2)) /. det in
        let l2 = ((a *. c2) -. (b *. c1)) /. det in
        l1s.(i) <- l1;
        l2s.(i) <- l2;
        set lmat i kk l1;
        set lmat i (kk + 1) l2
      done;
      for i = kk + 2 to n - 1 do
        let c1 = get w i kk and c2 = get w i (kk + 1) in
        if c1 <> 0.0 || c2 <> 0.0 then
          for jj = kk + 2 to n - 1 do
            add_to w i jj (-.((l1s.(jj) *. c1) +. (l2s.(jj) *. c2)))
          done
      done;
      k := !k + 2
    end
  done;
  (* sign-split of D *)
  let j = Array.make n 1.0 in
  let s1 = Array.make n 0.0 in
  let smat2 = Array.make n (0.0, 0.0, 0.0, 0.0) in
  let block_kind = Array.make n 0 in
  List.iter
    (fun blk ->
      match blk with
      | B1 { k; d } ->
        s1.(k) <- sqrt (Float.abs d);
        j.(k) <- (if d >= 0.0 then 1.0 else -1.0);
        block_kind.(k) <- 0
      | B2 { k; a; b; c } ->
        let l1, l2, (q00, q01, q10, q11) = eig2 a b c in
        let r1 = sqrt (Float.abs l1) and r2 = sqrt (Float.abs l2) in
        (* S = Q · diag(r1, r2) *)
        smat2.(k) <- (q00 *. r1, q01 *. r2, q10 *. r1, q11 *. r2);
        j.(k) <- (if l1 >= 0.0 then 1.0 else -1.0);
        j.(k + 1) <- (if l2 >= 0.0 then 1.0 else -1.0);
        block_kind.(k) <- 1;
        block_kind.(k + 1) <- 2)
    !blocks;
  { n; lmat; blocks = List.rev !blocks; perm; smat2; s1; j; block_kind }

let dim t = t.n

let j_diag t = Array.copy t.j

let is_definite t = Array.for_all (fun x -> x > 0.0) t.j

let inertia t =
  Array.fold_left
    (fun (p, q) x -> if x > 0.0 then (p + 1, q) else (p, q + 1))
    (0, 0) t.j

(* forward substitution with unit lower lmat: solve L z = b in place *)
let solve_unit_lower t z =
  let open Mat in
  for i = 0 to t.n - 1 do
    for jj = 0 to i - 1 do
      z.(i) <- z.(i) -. (get t.lmat i jj *. z.(jj))
    done
  done

let solve_unit_lower_t t z =
  let open Mat in
  for i = t.n - 1 downto 0 do
    for jj = i + 1 to t.n - 1 do
      z.(i) <- z.(i) -. (get t.lmat jj i *. z.(jj))
    done
  done

let solve t b =
  assert (Vec.dim b = t.n);
  let z = Vec.init t.n (fun i -> b.(t.perm.(i))) in
  solve_unit_lower t z;
  (* block-diagonal solve *)
  List.iter
    (fun blk ->
      match blk with
      | B1 { k; d } -> z.(k) <- z.(k) /. d
      | B2 { k; a; b; c } ->
        let det = (a *. c) -. (b *. b) in
        let z1 = z.(k) and z2 = z.(k + 1) in
        z.(k) <- ((c *. z1) -. (b *. z2)) /. det;
        z.(k + 1) <- ((a *. z2) -. (b *. z1)) /. det)
    t.blocks;
  solve_unit_lower_t t z;
  let x = Vec.create t.n in
  for i = 0 to t.n - 1 do
    x.(t.perm.(i)) <- z.(i)
  done;
  x

(* S x, S⁻¹ x, S⁻ᵀ x as in-place transforms on a work vector *)
let apply_s t z =
  let i = ref 0 in
  while !i < t.n do
    (match t.block_kind.(!i) with
    | 0 ->
      z.(!i) <- t.s1.(!i) *. z.(!i);
      incr i
    | 1 ->
      let s00, s01, s10, s11 = t.smat2.(!i) in
      let z1 = z.(!i) and z2 = z.(!i + 1) in
      z.(!i) <- (s00 *. z1) +. (s01 *. z2);
      z.(!i + 1) <- (s10 *. z1) +. (s11 *. z2);
      i := !i + 2
    | _ -> assert false)
  done

let apply_s_inv t z =
  let i = ref 0 in
  while !i < t.n do
    (match t.block_kind.(!i) with
    | 0 ->
      z.(!i) <- z.(!i) /. t.s1.(!i);
      incr i
    | 1 ->
      let s00, s01, s10, s11 = t.smat2.(!i) in
      let det = (s00 *. s11) -. (s01 *. s10) in
      let z1 = z.(!i) and z2 = z.(!i + 1) in
      z.(!i) <- ((s11 *. z1) -. (s01 *. z2)) /. det;
      z.(!i + 1) <- ((s00 *. z2) -. (s10 *. z1)) /. det;
      i := !i + 2
    | _ -> assert false)
  done

let apply_s_inv_t t z =
  let i = ref 0 in
  while !i < t.n do
    (match t.block_kind.(!i) with
    | 0 ->
      z.(!i) <- z.(!i) /. t.s1.(!i);
      incr i
    | 1 ->
      (* S⁻ᵀ = (Sᵀ)⁻¹ with Sᵀ = [[s00;s10];[s01;s11]] *)
      let s00, s01, s10, s11 = t.smat2.(!i) in
      let det = (s00 *. s11) -. (s01 *. s10) in
      let z1 = z.(!i) and z2 = z.(!i + 1) in
      z.(!i) <- ((s11 *. z1) -. (s10 *. z2)) /. det;
      z.(!i + 1) <- ((s00 *. z2) -. (s01 *. z1)) /. det;
      i := !i + 2
    | _ -> assert false)
  done

(* M = Pᵀ L S with (P x).(i) = x.(perm.(i)) *)
let apply_m t x =
  assert (Vec.dim x = t.n);
  let open Mat in
  let z = Vec.copy x in
  apply_s t z;
  let y = Vec.create t.n in
  for i = 0 to t.n - 1 do
    y.(i) <- z.(i);
    for jj = 0 to i - 1 do
      y.(i) <- y.(i) +. (get t.lmat i jj *. z.(jj))
    done
  done;
  let out = Vec.create t.n in
  for i = 0 to t.n - 1 do
    out.(t.perm.(i)) <- y.(i)
  done;
  out

let apply_m_inv t x =
  assert (Vec.dim x = t.n);
  let z = Vec.init t.n (fun i -> x.(t.perm.(i))) in
  solve_unit_lower t z;
  apply_s_inv t z;
  z

let apply_mt_inv t x =
  assert (Vec.dim x = t.n);
  let z = Vec.copy x in
  apply_s_inv_t t z;
  solve_unit_lower_t t z;
  let out = Vec.create t.n in
  for i = 0 to t.n - 1 do
    out.(t.perm.(i)) <- z.(i)
  done;
  out

let m_dense t =
  let m = Mat.create t.n t.n in
  for jj = 0 to t.n - 1 do
    Mat.set_col m jj (apply_m t (Vec.basis t.n jj))
  done;
  m
