type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

(* splitmix64 output function *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = { state = int64 t }

let float t =
  (* use the top 53 bits for a uniform double in [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let log_uniform t lo hi =
  assert (lo > 0.0 && hi > 0.0);
  exp (uniform t (log lo) (log hi))

let int t n =
  assert (n > 0);
  Int64.to_int (Int64.rem (Int64.logand (int64 t) Int64.max_int) (Int64.of_int n))

let gaussian t =
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
