(* Ports of the classic balanc / elmhes / hqr algorithms (Wilkinson &
   Reinsch; Numerical Recipes presentation), 0-indexed. *)

let radix = 2.0

let balance a =
  let open Mat in
  let n = a.rows in
  let sqrdx = radix *. radix in
  let last = ref false in
  while not !last do
    last := true;
    for i = 0 to n - 1 do
      let r = ref 0.0 and c = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then begin
          c := !c +. Float.abs (get a j i);
          r := !r +. Float.abs (get a i j)
        end
      done;
      if !c <> 0.0 && !r <> 0.0 then begin
        let g = ref (!r /. radix) and f = ref 1.0 in
        let s = !c +. !r in
        while !c < !g do
          f := !f *. radix;
          c := !c *. sqrdx
        done;
        g := !r *. radix;
        while !c > !g do
          f := !f /. radix;
          c := !c /. sqrdx
        done;
        if (!c +. !r) /. !f < 0.95 *. s then begin
          last := false;
          let g = 1.0 /. !f in
          for j = 0 to n - 1 do
            set a i j (get a i j *. g)
          done;
          for j = 0 to n - 1 do
            set a j i (get a j i *. !f)
          done
        end
      end
    done
  done

let hessenberg a =
  let open Mat in
  let n = a.rows in
  for m = 1 to n - 2 do
    let x = ref 0.0 and i = ref m in
    for j = m to n - 1 do
      if Float.abs (get a j (m - 1)) > Float.abs !x then begin
        x := get a j (m - 1);
        i := j
      end
    done;
    if !i <> m then begin
      for j = m - 1 to n - 1 do
        let t = get a !i j in
        set a !i j (get a m j);
        set a m j t
      done;
      for j = 0 to n - 1 do
        let t = get a j !i in
        set a j !i (get a j m);
        set a j m t
      done
    end;
    if !x <> 0.0 then
      for i2 = m + 1 to n - 1 do
        let y = get a i2 (m - 1) in
        if y <> 0.0 then begin
          let y = y /. !x in
          set a i2 (m - 1) y;
          for j = m to n - 1 do
            add_to a i2 j (-.y *. get a m j)
          done;
          for j = 0 to n - 1 do
            add_to a j m (y *. get a j i2)
          done
        end
      done
  done;
  (* zero the entries below the subdiagonal *)
  for i = 2 to n - 1 do
    for j = 0 to i - 2 do
      set a i j 0.0
    done
  done

let sign_of x s = if s >= 0.0 then Float.abs x else -.Float.abs x

let hqr a =
  let open Mat in
  let n = a.rows in
  let wr = Array.make n 0.0 and wi = Array.make n 0.0 in
  let anorm = ref 0.0 in
  for i = 0 to n - 1 do
    for j = max (i - 1) 0 to n - 1 do
      anorm := !anorm +. Float.abs (get a i j)
    done
  done;
  let nn = ref (n - 1) in
  let t = ref 0.0 in
  while !nn >= 0 do
    let its = ref 0 in
    let finished_block = ref false in
    while not !finished_block do
      (* look for a single small subdiagonal element *)
      let l = ref !nn in
      (try
         while !l >= 1 do
           let s = Float.abs (get a (!l - 1) (!l - 1)) +. Float.abs (get a !l !l) in
           let s = if s = 0.0 then !anorm else s in
           if Float.abs (get a !l (!l - 1)) +. s = s then begin
             set a !l (!l - 1) 0.0;
             raise Exit
           end;
           decr l
         done
       with Exit -> ());
      let x = get a !nn !nn in
      if !l = !nn then begin
        (* one real root *)
        wr.(!nn) <- x +. !t;
        wi.(!nn) <- 0.0;
        decr nn;
        finished_block := true
      end
      else begin
        let y = get a (!nn - 1) (!nn - 1) in
        let w = get a !nn (!nn - 1) *. get a (!nn - 1) !nn in
        if !l = !nn - 1 then begin
          (* two roots *)
          let p = 0.5 *. (y -. x) in
          let q = (p *. p) +. w in
          let z = sqrt (Float.abs q) in
          let x = x +. !t in
          if q >= 0.0 then begin
            let z = p +. sign_of z p in
            wr.(!nn - 1) <- x +. z;
            wr.(!nn) <- x +. z;
            if z <> 0.0 then wr.(!nn) <- x -. (w /. z);
            wi.(!nn - 1) <- 0.0;
            wi.(!nn) <- 0.0
          end
          else begin
            wr.(!nn - 1) <- x +. p;
            wr.(!nn) <- x +. p;
            wi.(!nn - 1) <- -.z;
            wi.(!nn) <- z
          end;
          nn := !nn - 2;
          finished_block := true
        end
        else begin
          if !its = 30 then failwith "Eig_gen: too many QR iterations";
          let x = ref x and y = ref y and w = ref w in
          if !its = 10 || !its = 20 then begin
            (* exceptional shift *)
            t := !t +. !x;
            for i = 0 to !nn do
              set a i i (get a i i -. !x)
            done;
            let s =
              Float.abs (get a !nn (!nn - 1)) +. Float.abs (get a (!nn - 1) (!nn - 2))
            in
            x := 0.75 *. s;
            y := !x;
            w := -0.4375 *. s *. s
          end;
          incr its;
          (* form shift and look for two consecutive small subdiagonals *)
          let m = ref (!nn - 2) in
          let p = ref 0.0 and q = ref 0.0 and rr = ref 0.0 in
          (try
             while !m >= !l do
               let z = get a !m !m in
               let r = !x -. z in
               let s = !y -. z in
               p := (((r *. s) -. !w) /. get a (!m + 1) !m) +. get a !m (!m + 1);
               q := get a (!m + 1) (!m + 1) -. z -. r -. s;
               rr := get a (!m + 2) (!m + 1);
               let scale = Float.abs !p +. Float.abs !q +. Float.abs !rr in
               p := !p /. scale;
               q := !q /. scale;
               rr := !rr /. scale;
               if !m = !l then raise Exit;
               let u =
                 Float.abs (get a !m (!m - 1)) *. (Float.abs !q +. Float.abs !rr)
               in
               let v =
                 Float.abs !p
                 *. (Float.abs (get a (!m - 1) (!m - 1))
                    +. Float.abs z
                    +. Float.abs (get a (!m + 1) (!m + 1)))
               in
               if u +. v = v then raise Exit;
               decr m
             done
           with Exit -> ());
          for i = !m + 2 to !nn do
            set a i (i - 2) 0.0;
            if i <> !m + 2 then set a i (i - 3) 0.0
          done;
          (* double QR step on rows l..nn, columns m..nn *)
          let k = ref !m in
          while !k <= !nn - 1 do
            if !k <> !m then begin
              p := get a !k (!k - 1);
              q := get a (!k + 1) (!k - 1);
              rr := if !k <> !nn - 1 then get a (!k + 2) (!k - 1) else 0.0;
              x := Float.abs !p +. Float.abs !q +. Float.abs !rr;
              if !x <> 0.0 then begin
                p := !p /. !x;
                q := !q /. !x;
                rr := !rr /. !x
              end
            end;
            let s = sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!rr *. !rr))) !p in
            if s <> 0.0 then begin
              if !k = !m then begin
                if !l <> !m then set a !k (!k - 1) (-.get a !k (!k - 1))
              end
              else set a !k (!k - 1) (-.s *. !x);
              p := !p +. s;
              x := !p /. s;
              y := !q /. s;
              let z = !rr /. s in
              q := !q /. !p;
              rr := !rr /. !p;
              (* row modification *)
              for j = !k to !nn do
                let pp =
                  get a !k j +. (!q *. get a (!k + 1) j)
                  +. (if !k <> !nn - 1 then !rr *. get a (!k + 2) j else 0.0)
                in
                if !k <> !nn - 1 then add_to a (!k + 2) j (-.pp *. z);
                add_to a (!k + 1) j (-.pp *. !y);
                add_to a !k j (-.pp *. !x)
              done;
              let mmin = if !nn < !k + 3 then !nn else !k + 3 in
              (* column modification *)
              for i = !l to mmin do
                let pp =
                  (!x *. get a i !k) +. (!y *. get a i (!k + 1))
                  +. (if !k <> !nn - 1 then z *. get a i (!k + 2) else 0.0)
                in
                if !k <> !nn - 1 then add_to a i (!k + 2) (-.pp *. !rr);
                add_to a i (!k + 1) (-.pp *. !q);
                add_to a i !k (-.pp)
              done
            end;
            incr k
          done
        end
      end
    done
  done;
  Array.init n (fun i -> { Complex.re = wr.(i); im = wi.(i) })

let eigenvalues a0 =
  let open Mat in
  assert (a0.rows = a0.cols);
  if a0.rows = 0 then [||]
  else begin
    let a = copy a0 in
    balance a;
    hessenberg a;
    hqr a
  end
