lib/linalg/mat.mli: Format Rng Vec
