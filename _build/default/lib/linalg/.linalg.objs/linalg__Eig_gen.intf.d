lib/linalg/eig_gen.mli: Complex Mat
