lib/linalg/poly.ml: Array Cx Float
