lib/linalg/qr.ml: Array Float List Mat Vec
