lib/linalg/eig_sym.ml: Array Float Mat Vec
