lib/linalg/ldlt.mli: Mat Vec
