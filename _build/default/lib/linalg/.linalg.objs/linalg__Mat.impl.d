lib/linalg/mat.ml: Array Float Format List Rng Vec
