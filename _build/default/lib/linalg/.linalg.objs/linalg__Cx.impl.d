lib/linalg/cx.ml: Complex Float Format
