lib/linalg/eig_gen.ml: Array Complex Float Mat
