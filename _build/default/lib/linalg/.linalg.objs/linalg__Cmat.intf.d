lib/linalg/cmat.mli: Cx Format Mat
