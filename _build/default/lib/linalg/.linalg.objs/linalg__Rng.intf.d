lib/linalg/rng.mli:
