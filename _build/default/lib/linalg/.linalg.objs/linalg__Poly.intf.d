lib/linalg/poly.mli: Cx
