lib/linalg/rng.ml: Float Int64
