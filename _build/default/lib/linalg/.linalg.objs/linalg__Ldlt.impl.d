lib/linalg/ldlt.ml: Array Float List Mat Vec
