lib/linalg/chol.ml: Array Float Mat Vec
