lib/linalg/cmat.ml: Array Complex Cx Eig_sym Float Format Mat
