lib/linalg/eig_sym.mli: Mat Vec
