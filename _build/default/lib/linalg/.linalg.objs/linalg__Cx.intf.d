lib/linalg/cx.mli: Complex Format
