(** Deterministic pseudo-random number generation.

    A small splitmix64 generator used everywhere synthetic data is
    needed (circuit generators, property tests, benches), so that
    every experiment in the repository is reproducible bit-for-bit
    from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split rng] derives an independent generator stream; [rng]
    advances by one step. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform rng lo hi] is uniform in [lo, hi). *)

val log_uniform : t -> float -> float -> float
(** [log_uniform rng lo hi] is log-uniformly distributed in
    [lo, hi); both bounds must be positive. *)

val int : t -> int -> int
(** [int rng n] is uniform in [0, n); [n] must be positive. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)
