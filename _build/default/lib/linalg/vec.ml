type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let basis n i =
  let v = create n in
  v.(i) <- 1.0;
  v

let fill v x = Array.fill v 0 (Array.length v) x

let add x y =
  assert (dim x = dim y);
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  assert (dim x = dim y);
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy a x y =
  assert (dim x = dim y);
  for i = 0 to dim x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let scale_ip a x =
  for i = 0 to dim x - 1 do
    x.(i) <- a *. x.(i)
  done

let dot x y =
  assert (dim x = dim y);
  let s = ref 0.0 in
  for i = 0 to dim x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let dot3 x d y =
  assert (dim x = dim d && dim d = dim y);
  let s = ref 0.0 in
  for i = 0 to dim x - 1 do
    s := !s +. (x.(i) *. d.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0.0 x

let dist_inf x y =
  assert (dim x = dim y);
  let m = ref 0.0 in
  for i = 0 to dim x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m

let map = Array.map

let max_abs_index x =
  if dim x = 0 then invalid_arg "Vec.max_abs_index: empty vector";
  let best = ref 0 in
  for i = 1 to dim x - 1 do
    if Float.abs x.(i) > Float.abs x.(!best) then best := i
  done;
  !best

let pp ppf v =
  Format.fprintf ppf "@[<hov 1>[%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    (Array.to_list v)
