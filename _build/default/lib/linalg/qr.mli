(** Householder QR factorisation. *)

type t

val factor : Mat.t -> t
(** Factor an [m×n] matrix with [m ≥ n]. *)

val q_thin : t -> Mat.t
(** The thin orthogonal factor ([m×n]). *)

val r : t -> Mat.t
(** The upper-triangular factor ([n×n]). *)

val solve_ls : t -> Vec.t -> Vec.t
(** Least-squares solve: minimise [‖A x − b‖₂]. Raises
    [Invalid_argument] if [R] has a zero diagonal (rank deficient). *)

val rank : ?tol:float -> t -> int
(** Numerical rank from the [R] diagonal. *)

val orthonormalize : Mat.t -> Mat.t * int
(** [orthonormalize a] returns a matrix with orthonormal columns
    spanning the numerically independent columns of [a] (by modified
    Gram–Schmidt with reorthogonalisation), together with its column
    count (the numerical rank). *)
