(** Real polynomials with complex root finding.

    A polynomial is represented by its coefficient array in ascending
    order: [c.(k)] is the coefficient of [x^k]. Used by the AWE
    baseline (explicit Padé numerator/denominator) and for small
    characteristic polynomials. *)

type t = float array

val degree : t -> int
(** Degree ignoring exact trailing zeros; [-1] for the zero
    polynomial. *)

val eval : t -> float -> float
(** Horner evaluation at a real point. *)

val eval_cx : t -> Cx.t -> Cx.t
(** Horner evaluation at a complex point. *)

val derivative : t -> t

val roots : ?iterations:int -> ?tol:float -> t -> Cx.t array
(** All complex roots by the Durand–Kerner (Weierstrass) iteration.
    Adequate for the small degrees (≤ ~16) used by AWE. Raises
    [Invalid_argument] on the zero polynomial. *)
