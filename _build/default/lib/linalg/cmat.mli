(** Dense complex matrices (split re/im storage) and a complex LU
    solver. Used for evaluating transfer functions [Z(s)] and reduced
    models [Zₙ(s)] at complex frequencies. *)

type t = { rows : int; cols : int; re : float array; im : float array }

val create : int -> int -> t

val init : int -> int -> (int -> int -> Cx.t) -> t

val identity : int -> t

val of_real : Mat.t -> t

val copy : t -> t

val get : t -> int -> int -> Cx.t

val set : t -> int -> int -> Cx.t -> unit

val add_to : t -> int -> int -> Cx.t -> unit

val lincomb : Cx.t -> Mat.t -> Cx.t -> Mat.t -> t
(** [lincomb a ma b mb] is [a·ma + b·mb] over real matrices — the
    typical [(G + sC)] construction. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : Cx.t -> t -> t

val mul : t -> t -> t

val mul_vec : t -> Cx.t array -> Cx.t array

val transpose : t -> t

val dist_max : t -> t -> float
(** Largest entrywise modulus of the difference. *)

val max_abs : t -> float

val hermitian_part : t -> t
(** [(m + mᴴ)/2]. *)

val min_eig_hermitian : t -> float
(** Smallest eigenvalue of a Hermitian matrix, via the real symmetric
    embedding [[re −im; im re]]. Used for passivity sweeps. *)

type lu
(** A complex LU factorisation with partial pivoting. *)

exception Singular of int

val lu_factor : t -> lu

val lu_solve_vec : lu -> Cx.t array -> Cx.t array

val lu_solve_mat : lu -> t -> t

val solve : t -> t -> t
(** One-shot factor and solve of [A X = B]. *)

val pp : Format.formatter -> t -> unit
