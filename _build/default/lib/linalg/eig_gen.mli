(** Eigenvalues of a general (unsymmetric) real matrix.

    Balancing, Hessenberg reduction by stabilised elementary
    transformations, then the Francis double-shift QR iteration.
    Eigenvalues only — sufficient for reduced-model pole analysis in
    the general (indefinite-[J]) RLC case, where the projected pencil
    is not symmetric. *)

val eigenvalues : Mat.t -> Complex.t array
(** Eigenvalues of a square matrix, unordered. Raises [Failure] if QR
    exceeds 30 iterations for some eigenvalue (essentially never for
    well-scaled input). *)
