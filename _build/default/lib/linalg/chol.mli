(** Dense Cholesky factorisation [A = L·Lᵀ] of symmetric positive
    definite matrices. *)

type t

exception Not_positive_definite of int
(** Raised with the offending column when a pivot is ≤ 0 beyond
    tolerance. *)

val factor : ?tol:float -> Mat.t -> t
(** Factor a symmetric positive definite matrix. Only the lower
    triangle of the input is referenced. [tol] (default [1e-13])
    scales the breakdown test relative to the largest diagonal. *)

val l : t -> Mat.t
(** The lower-triangular factor. *)

val solve : t -> Vec.t -> Vec.t

val solve_mat : t -> Mat.t -> Mat.t

val inverse : t -> Mat.t

val det : t -> float

val solve_lower : t -> Vec.t -> Vec.t
(** Solve [L y = b] only (forward substitution). *)

val solve_lower_t : t -> Vec.t -> Vec.t
(** Solve [Lᵀ y = b] only (back substitution). *)
