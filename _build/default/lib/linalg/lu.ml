type t = { lu : Mat.t; piv : int array; sign : float }

exception Singular of int

let factor m =
  let open Mat in
  assert (m.rows = m.cols);
  let n = m.rows in
  let lu = copy m in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* partial pivoting: find the largest entry in column k at/below row k *)
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get lu i k) > Float.abs (get lu !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tmp = get lu k j in
        set lu k j (get lu !p j);
        set lu !p j tmp
      done;
      let tmp = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- tmp;
      sign := -. !sign
    end;
    let pivot = get lu k k in
    if pivot = 0.0 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let lik = get lu i k /. pivot in
      set lu i k lik;
      if lik <> 0.0 then
        for j = k + 1 to n - 1 do
          add_to lu i j (-.lik *. get lu k j)
        done
    done
  done;
  { lu; piv; sign = !sign }

let solve_vec f b =
  let open Mat in
  let n = f.lu.rows in
  assert (Vec.dim b = n);
  let x = Vec.init n (fun i -> b.(f.piv.(i))) in
  (* forward: L y = P b, unit lower triangular *)
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- x.(i) -. (get f.lu i j *. x.(j))
    done
  done;
  (* backward: U x = y *)
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- x.(i) -. (get f.lu i j *. x.(j))
    done;
    x.(i) <- x.(i) /. get f.lu i i
  done;
  x

let solve_mat f b =
  let open Mat in
  let x = create b.rows b.cols in
  for j = 0 to b.cols - 1 do
    Mat.set_col x j (solve_vec f (col b j))
  done;
  x

let solve m b = solve_vec (factor m) b

let det f =
  let n = f.lu.Mat.rows in
  let d = ref f.sign in
  for i = 0 to n - 1 do
    d := !d *. Mat.get f.lu i i
  done;
  !d

let inverse m = solve_mat (factor m) (Mat.identity m.Mat.rows)

let rcond_estimate f =
  let n = f.lu.Mat.rows in
  if n = 0 then 1.0
  else begin
    let dmin = ref infinity and dmax = ref 0.0 in
    for i = 0 to n - 1 do
      let d = Float.abs (Mat.get f.lu i i) in
      dmin := Float.min !dmin d;
      dmax := Float.max !dmax d
    done;
    if !dmax = 0.0 then 0.0 else !dmin /. !dmax
  end
