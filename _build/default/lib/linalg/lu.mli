(** Dense LU factorisation with partial pivoting, and derived solvers. *)

type t
(** A factored matrix [P·A = L·U]. *)

exception Singular of int
(** Raised (with the offending pivot column) when a pivot is exactly
    zero — the matrix is singular to working precision. *)

val factor : Mat.t -> t
(** Factor a square matrix. Raises {!Singular} on exact breakdown. *)

val solve_vec : t -> Vec.t -> Vec.t
(** Solve [A x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve [A X = B] column-wise. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** One-shot [factor] + [solve_vec]. *)

val det : t -> float

val inverse : Mat.t -> Mat.t

val rcond_estimate : t -> float
(** Crude reciprocal-condition estimate: ratio of smallest to largest
    magnitude of the U diagonal. Zero means numerically singular. *)
