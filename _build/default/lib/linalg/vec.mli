(** Dense real vectors as plain [float array]s.

    All operations are written against unboxed float arrays; functions
    ending in [_ip] mutate their first argument in place. *)

type t = float array

val create : int -> t
(** Zero vector of the given length. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val basis : int -> int -> t
(** [basis n i] is the [i]-th canonical basis vector of length [n]. *)

val fill : t -> float -> unit

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- y + a*x]. *)

val scale_ip : float -> t -> unit

val dot : t -> t -> float

val dot3 : t -> t -> t -> float
(** [dot3 x d y] is [Σ x.(i) * d.(i) * y.(i)] — a weighted (e.g. J-)
    inner product with diagonal weight [d]. *)

val norm2 : t -> float

val norm_inf : t -> float

val dist_inf : t -> t -> float

val map : (float -> float) -> t -> t

val max_abs_index : t -> int
(** Index of the entry of largest magnitude. Raises [Invalid_argument]
    on the empty vector. *)

val pp : Format.formatter -> t -> unit
