type t = { rows : int; cols : int; a : float array }

let create rows cols = { rows; cols; a = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; a = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag d =
  let n = Vec.dim d in
  init n n (fun i j -> if i = j then d.(i) else 0.0)

let get m i j = m.a.((i * m.cols) + j)

let get_diag m =
  let n = min m.rows m.cols in
  Vec.init n (fun i -> get m i i)

let copy m = { m with a = Array.copy m.a }

let set m i j x = m.a.((i * m.cols) + j) <- x

let add_to m i j x = m.a.((i * m.cols) + j) <- m.a.((i * m.cols) + j) +. x

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length rows_arr.(0) in
    Array.iter (fun r -> assert (Array.length r = cols)) rows_arr;
    init rows cols (fun i j -> rows_arr.(i).(j))
  end

let to_arrays m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let of_cols cols_list =
  match cols_list with
  | [] -> create 0 0
  | c0 :: _ ->
    let rows = Vec.dim c0 in
    let cols = List.length cols_list in
    let m = create rows cols in
    List.iteri
      (fun j c ->
        assert (Vec.dim c = rows);
        for i = 0 to rows - 1 do
          set m i j c.(i)
        done)
      cols_list;
    m

let col m j = Vec.init m.rows (fun i -> get m i j)

let row m i = Vec.init m.cols (fun j -> get m i j)

let set_col m j v =
  assert (Vec.dim v = m.rows);
  for i = 0 to m.rows - 1 do
    set m i j v.(i)
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let zip_with f x y =
  assert (x.rows = y.rows && x.cols = y.cols);
  { x with a = Array.mapi (fun k xa -> f xa y.a.(k)) x.a }

let add x y = zip_with ( +. ) x y

let sub x y = zip_with ( -. ) x y

let scale c m = { m with a = Array.map (fun x -> c *. x) m.a }

let mul x y =
  assert (x.cols = y.rows);
  let z = create x.rows y.cols in
  for i = 0 to x.rows - 1 do
    for k = 0 to x.cols - 1 do
      let xik = get x i k in
      if xik <> 0.0 then begin
        let xrow = i * y.cols in
        let yrow = k * y.cols in
        for j = 0 to y.cols - 1 do
          z.a.(xrow + j) <- z.a.(xrow + j) +. (xik *. y.a.(yrow + j))
        done
      end
    done
  done;
  z

let mul_vec m x =
  assert (m.cols = Vec.dim x);
  Vec.init m.rows (fun i ->
      let s = ref 0.0 in
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        s := !s +. (m.a.(base + j) *. x.(j))
      done;
      !s)

let mul_trans_vec m x =
  assert (m.rows = Vec.dim x);
  let y = Vec.create m.cols in
  for i = 0 to m.rows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        y.(j) <- y.(j) +. (m.a.(base + j) *. xi)
      done
    end
  done;
  y

let gram m = mul (transpose m) m

let congruence v a = mul (transpose v) (mul a v)

let sym_part m =
  assert (m.rows = m.cols);
  init m.rows m.cols (fun i j -> 0.5 *. (get m i j +. get m j i))

let is_symmetric ?(tol = 1e-12) m =
  m.rows = m.cols
  &&
  let scale_ref = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1.0 m.a in
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol *. scale_ref then ok := false
    done
  done;
  !ok

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.a)

let norm_inf m =
  let worst = ref 0.0 in
  for i = 0 to m.rows - 1 do
    let s = ref 0.0 in
    for j = 0 to m.cols - 1 do
      s := !s +. Float.abs (get m i j)
    done;
    worst := Float.max !worst !s
  done;
  !worst

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.a

let dist_max x y =
  assert (x.rows = y.rows && x.cols = y.cols);
  let worst = ref 0.0 in
  Array.iteri (fun k xa -> worst := Float.max !worst (Float.abs (xa -. y.a.(k)))) x.a;
  !worst

let submatrix m i0 j0 h w =
  assert (i0 >= 0 && j0 >= 0 && i0 + h <= m.rows && j0 + w <= m.cols);
  init h w (fun i j -> get m (i0 + i) (j0 + j))

let random rng rows cols = init rows cols (fun _ _ -> Rng.uniform rng (-1.0) 1.0)

let random_symmetric rng n =
  let m = random rng n n in
  sym_part m

let random_spd rng n =
  let m = random rng n n in
  let g = gram m in
  add g (scale (0.1 *. float_of_int n) (identity n))

let pp ppf m =
  Format.fprintf ppf "@[<v 0>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<hov 1>[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" (get m i j)
    done;
    Format.fprintf ppf "]@]";
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
