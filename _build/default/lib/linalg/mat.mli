(** Dense real matrices, row-major.

    The representation is transparent: [{ rows; cols; a }] with
    element (i, j) stored at [a.(i * cols + j)]. *)

type t = { rows : int; cols : int; a : float array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val get_diag : t -> Vec.t

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] accumulates [x] into entry (i, j). *)

val of_arrays : float array array -> t

val to_arrays : t -> float array array

val of_cols : Vec.t list -> t
(** Matrix whose columns are the given vectors (all the same length). *)

val col : t -> int -> Vec.t

val row : t -> int -> Vec.t

val set_col : t -> int -> Vec.t -> unit

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t

val mul_trans_vec : t -> Vec.t -> Vec.t
(** [mul_trans_vec m x] is [mᵀ x] without forming the transpose. *)

val gram : t -> t
(** [gram m] is [mᵀ m]. *)

val congruence : t -> t -> t
(** [congruence v a] is [vᵀ a v] (a congruence transformation). *)

val sym_part : t -> t
(** [(m + mᵀ) / 2]. *)

val is_symmetric : ?tol:float -> t -> bool

val frobenius : t -> float

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val max_abs : t -> float
(** Largest entry magnitude. *)

val dist_max : t -> t -> float
(** Largest entrywise absolute difference. *)

val submatrix : t -> int -> int -> int -> int -> t
(** [submatrix m i j h w] is the [h×w] block at offset (i, j). *)

val random : Rng.t -> int -> int -> t
(** Entries uniform in [-1, 1). *)

val random_spd : Rng.t -> int -> t
(** Random symmetric positive definite matrix ([aᵀa + n·I] scaled). *)

val random_symmetric : Rng.t -> int -> t

val pp : Format.formatter -> t -> unit
