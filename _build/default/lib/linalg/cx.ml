type t = Complex.t

let re x = { Complex.re = x; im = 0.0 }

let im y = { Complex.re = 0.0; im = y }

let make r i = { Complex.re = r; im = i }

let zero = Complex.zero

let one = Complex.one

let ( +: ) = Complex.add

let ( -: ) = Complex.sub

let ( *: ) = Complex.mul

let ( /: ) = Complex.div

let smul a z = { Complex.re = a *. z.Complex.re; im = a *. z.Complex.im }

let conj = Complex.conj

let neg = Complex.neg

let abs = Complex.norm

let inv = Complex.inv

let sqrt = Complex.sqrt

let is_finite z = Float.is_finite z.Complex.re && Float.is_finite z.Complex.im

let close ?(tol = 1e-9) a b = abs (Complex.sub a b) <= tol

let pp ppf z = Format.fprintf ppf "(%.6g%+.6gi)" z.Complex.re z.Complex.im
