(** Complex scalar helpers on top of [Stdlib.Complex]. *)

type t = Complex.t

val re : float -> t
(** Purely real. *)

val im : float -> t
(** Purely imaginary. *)

val make : float -> float -> t

val zero : t

val one : t

val ( +: ) : t -> t -> t

val ( -: ) : t -> t -> t

val ( *: ) : t -> t -> t

val ( /: ) : t -> t -> t

val smul : float -> t -> t
(** Real scalar times complex. *)

val conj : t -> t

val neg : t -> t

val abs : t -> float

val inv : t -> t

val sqrt : t -> t

val is_finite : t -> bool

val close : ?tol:float -> t -> t -> bool
(** Absolute-difference comparison. *)

val pp : Format.formatter -> t -> unit
