(** Dense symmetric eigendecomposition.

    Householder tridiagonalisation followed by implicit-shift QL,
    accumulating eigenvectors. Used for pole/residue extraction of
    reduced-order models in the definite ([J = I]) case, for
    stability/passivity certificates, and for small SPD kernels. *)

type result = {
  values : Vec.t; (* eigenvalues, ascending *)
  vectors : Mat.t; (* column j is the eigenvector for values.(j) *)
}

val decompose : Mat.t -> result
(** Full eigendecomposition of a symmetric matrix (the lower triangle
    is trusted). Raises [Failure] if QL fails to converge (more than
    50 sweeps per eigenvalue — does not happen for symmetric input). *)

val values : Mat.t -> Vec.t
(** Eigenvalues only (still accumulates internally; convenience). *)

val tridiag : Vec.t -> Vec.t -> result
(** [tridiag d e] decomposes the symmetric tridiagonal matrix with
    diagonal [d] (length n) and subdiagonal [e] (length n-1). *)

val min_eigenvalue : Mat.t -> float
(** Smallest eigenvalue of a symmetric matrix. *)
