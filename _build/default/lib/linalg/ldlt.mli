(** Dense symmetric-indefinite factorisation (Bunch–Kaufman).

    Computes [P A Pᵀ = L D Lᵀ] with unit lower-triangular [L] and
    block-diagonal [D] (1×1 and 2×2 blocks), then exposes the
    sign-split form

      [A = M J Mᵀ],   [M = Pᵀ L S],   [D = S J Sᵀ],  [J = diag(±1)]

    required by the SyMPVL Lanczos process (paper eq. (15)). *)

type t

exception Singular of int
(** Raised when a pivot block is numerically singular; the payload is
    the column index. Use a frequency shift on the input when this
    happens (paper eq. (26)). *)

val factor : ?tol:float -> Mat.t -> t
(** Factor a symmetric matrix; only symmetric inputs give meaningful
    results (checked by assertion up to roundoff). [tol] (default
    [1e-13]) is the relative pivot-breakdown threshold. *)

val dim : t -> int

val solve : t -> Vec.t -> Vec.t
(** Solve [A x = b]. *)

val inertia : t -> int * int
(** [(n_pos, n_neg)] numbers of positive / negative eigenvalues. *)

val j_diag : t -> float array
(** The diagonal of [J] (entries ±1), length [dim]. *)

val is_definite : t -> bool
(** True when [J = I] (A positive definite). *)

val apply_m : t -> Vec.t -> Vec.t
(** [M x]. *)

val apply_m_inv : t -> Vec.t -> Vec.t
(** [M⁻¹ x]. *)

val apply_mt_inv : t -> Vec.t -> Vec.t
(** [M⁻ᵀ x]. *)

val m_dense : t -> Mat.t
(** Materialise [M] (testing / small problems). *)
