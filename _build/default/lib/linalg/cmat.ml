type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  { rows; cols; re = Array.make (rows * cols) 0.0; im = Array.make (rows * cols) 0.0 }

let get m i j =
  let k = (i * m.cols) + j in
  { Complex.re = m.re.(k); im = m.im.(k) }

let set m i j z =
  let k = (i * m.cols) + j in
  m.re.(k) <- z.Complex.re;
  m.im.(k) <- z.Complex.im

let add_to m i j z =
  let k = (i * m.cols) + j in
  m.re.(k) <- m.re.(k) +. z.Complex.re;
  m.im.(k) <- m.im.(k) +. z.Complex.im

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then Cx.one else Cx.zero)

let of_real r = init r.Mat.rows r.Mat.cols (fun i j -> Cx.re (Mat.get r i j))

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let lincomb a ma b mb =
  assert (ma.Mat.rows = mb.Mat.rows && ma.Mat.cols = mb.Mat.cols);
  init ma.Mat.rows ma.Mat.cols (fun i j ->
      Cx.(smul (Mat.get ma i j) a +: smul (Mat.get mb i j) b))

let zip_with f x y =
  assert (x.rows = y.rows && x.cols = y.cols);
  init x.rows x.cols (fun i j -> f (get x i j) (get y i j))

let add x y = zip_with Cx.( +: ) x y

let sub x y = zip_with Cx.( -: ) x y

let scale c m = init m.rows m.cols (fun i j -> Cx.(c *: get m i j))

let mul x y =
  assert (x.cols = y.rows);
  let z = create x.rows y.cols in
  for i = 0 to x.rows - 1 do
    for k = 0 to x.cols - 1 do
      let xik = get x i k in
      if xik.Complex.re <> 0.0 || xik.Complex.im <> 0.0 then
        for j = 0 to y.cols - 1 do
          add_to z i j (Cx.(xik *: get y k j))
        done
    done
  done;
  z

let mul_vec m x =
  assert (m.cols = Array.length x);
  Array.init m.rows (fun i ->
      let s = ref Cx.zero in
      for j = 0 to m.cols - 1 do
        s := Cx.(!s +: (get m i j *: x.(j)))
      done;
      !s)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let dist_max x y =
  assert (x.rows = y.rows && x.cols = y.cols);
  let worst = ref 0.0 in
  for i = 0 to x.rows - 1 do
    for j = 0 to x.cols - 1 do
      worst := Float.max !worst (Cx.abs Cx.(get x i j -: get y i j))
    done
  done;
  !worst

let max_abs m =
  let worst = ref 0.0 in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      worst := Float.max !worst (Cx.abs (get m i j))
    done
  done;
  !worst

let hermitian_part m =
  assert (m.rows = m.cols);
  init m.rows m.cols (fun i j -> Cx.(smul 0.5 (get m i j +: conj (get m j i))))

let min_eig_hermitian m =
  assert (m.rows = m.cols);
  let n = m.rows in
  (* Hermitian H = A + iB (A symmetric, B skew); embed as the real
     symmetric [[A, -B]; [B, A]] whose spectrum doubles H's. *)
  let s =
    Mat.init (2 * n) (2 * n) (fun i j ->
        let bi = i mod n and bj = j mod n in
        let z = get m bi bj in
        match (i < n, j < n) with
        | true, true -> z.Complex.re
        | true, false -> -.z.Complex.im
        | false, true -> z.Complex.im
        | false, false -> z.Complex.re)
  in
  Eig_sym.min_eigenvalue s

type lu = { lu_mat : t; piv : int array }

exception Singular of int

let lu_factor m0 =
  assert (m0.rows = m0.cols);
  let n = m0.rows in
  let m = copy m0 in
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    let p = ref k in
    for i = k + 1 to n - 1 do
      if Cx.abs (get m i k) > Cx.abs (get m !p k) then p := i
    done;
    if !p <> k then begin
      for j = 0 to n - 1 do
        let tkj = get m k j in
        set m k j (get m !p j);
        set m !p j tkj
      done;
      let t = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- t
    end;
    let pivot = get m k k in
    if Cx.abs pivot = 0.0 then raise (Singular k);
    for i = k + 1 to n - 1 do
      let lik = Cx.(get m i k /: pivot) in
      set m i k lik;
      if Cx.abs lik <> 0.0 then
        for j = k + 1 to n - 1 do
          add_to m i j (Cx.(neg (lik *: get m k j)))
        done
    done
  done;
  { lu_mat = m; piv }

let lu_solve_vec f b =
  let n = f.lu_mat.rows in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(f.piv.(i))) in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      x.(i) <- Cx.(x.(i) -: (get f.lu_mat i j *: x.(j)))
    done
  done;
  for i = n - 1 downto 0 do
    for j = i + 1 to n - 1 do
      x.(i) <- Cx.(x.(i) -: (get f.lu_mat i j *: x.(j)))
    done;
    x.(i) <- Cx.(x.(i) /: get f.lu_mat i i)
  done;
  x

let lu_solve_mat f b =
  let x = create b.rows b.cols in
  for j = 0 to b.cols - 1 do
    let cj = Array.init b.rows (fun i -> get b i j) in
    let xj = lu_solve_vec f cj in
    for i = 0 to b.rows - 1 do
      set x i j xj.(i)
    done
  done;
  x

let solve a b = lu_solve_mat (lu_factor a) b

let pp ppf m =
  Format.fprintf ppf "@[<v 0>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<hov 1>[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ";@ ";
      Cx.pp ppf (get m i j)
    done;
    Format.fprintf ppf "]@]";
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
