lib/sparse/triplet.mli: Linalg
