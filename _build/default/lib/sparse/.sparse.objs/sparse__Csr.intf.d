lib/sparse/csr.mli: Linalg Triplet
