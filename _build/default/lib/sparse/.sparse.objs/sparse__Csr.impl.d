lib/sparse/csr.ml: Array Float Linalg Triplet
