lib/sparse/skyline.mli: Complex Csr
