lib/sparse/skyline.ml: Array Complex Csr Float
