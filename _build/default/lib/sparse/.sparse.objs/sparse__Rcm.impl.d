lib/sparse/rcm.ml: Array Csr List
