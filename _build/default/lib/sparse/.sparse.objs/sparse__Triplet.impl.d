lib/sparse/triplet.ml: Array Linalg Printf
